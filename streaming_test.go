package zapc_test

// End-to-end properties of the streaming image pipeline: checkpoint
// records are produced and consumed as bounded-buffer streams (peak
// buffering is a small fraction of the image size), they land chunked
// at rest, and the netstack-backed remote store migrates a job to a
// peer node's store without the image ever existing as one contiguous
// buffer anywhere along the path.

import (
	"testing"

	"zapc"
	"zapc/internal/imagestore"
	"zapc/internal/memfs"
	"zapc/internal/netstack"
)

// TestCheckpointPeakBufferingBounded checkpoints the largest pipeline
// bench workload shape (cpi, eight endpoints) with paper-meaningful
// image sizes and asserts the invariant the version-2 format exists
// for: no serializer ever buffered more than a quarter of its pod's
// image — in practice it holds a chunk plus the largest metadata
// section.
func TestCheckpointPeakBufferingBounded(t *testing.T) {
	c := zapc.New(zapc.Config{Nodes: 8, Seed: 61})
	job, err := c.Launch(zapc.JobSpec{App: "cpi", Endpoints: 8, Work: 0.04, Scale: 0.25, WithDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	driveTo(t, c, job, 0.3)
	res, err := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.Snapshot, FlushTo: "stream/peak"})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Stats.Agents {
		if a.ImageBytes < 512<<10 {
			t.Fatalf("pod %s: image only %d bytes — workload too small for the bound to mean anything", a.Pod, a.ImageBytes)
		}
		if a.PeakBuffered <= 0 {
			t.Fatalf("pod %s: no peak-buffering accounting", a.Pod)
		}
		if 4*a.PeakBuffered >= a.ImageBytes {
			t.Fatalf("pod %s: peak buffered %d bytes is not under 25%% of the %d-byte image",
				a.Pod, a.PeakBuffered, a.ImageBytes)
		}
	}
	// The flushed records are chunked at rest too — they streamed into
	// the store and were never concatenated.
	for _, f := range c.FS.List("stream/peak") {
		fi, err := c.FS.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Chunks < 2 {
			t.Fatalf("%s: stored in %d chunk(s); a streamed image must span several", f, fi.Chunks)
		}
	}
	if _, err := c.RunJob(job, eqDeadline); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteStoreMigration runs the paper's direct
// checkpoint-to-network migration: the manager's image store is a
// netstack-backed remote pointing at a peer node's store, so
// checkpoint records stream over TCP instead of touching the shared
// filesystem, and the job restarts from the peer's store with a result
// identical to an uninterrupted run.
func TestRemoteStoreMigration(t *testing.T) {
	const seed = 73
	want := eqReference(t, seed)

	c := zapc.New(zapc.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(eqSpec())
	if err != nil {
		t.Fatal(err)
	}
	driveTo(t, c, job, 0.5)

	// The receiving side: a store on its own filesystem (the target
	// node's local disk), fronted by an image server on the virtual
	// network.
	peer := imagestore.NewFS(memfs.New())
	srv, err := imagestore.NewServer(c.Net, netstack.IP(0x0a00ff01), 9000, peer)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := imagestore.NewRemote(c.Net, netstack.IP(0x0a00ff02), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Mgr.SetStore(remote)

	const dir = "migrate/g0"
	if _, err := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.MigrateMode, Workers: 4, FlushTo: dir}); err != nil {
		t.Fatal(err)
	}
	// Delivery is asynchronous: drive the simulation until the peer has
	// committed every pod's image.
	pods := eqSpec().Endpoints
	if err := c.Drive(func() bool { return len(srv.Received()) == pods }, 60*zapc.Second); err != nil {
		t.Fatalf("images never arrived (%d/%d): %v; transfer errors: %v", len(srv.Received()), pods, err, srv.Errs())
	}
	if errs := srv.Errs(); len(errs) != 0 {
		t.Fatalf("transfer errors: %v", errs)
	}
	// The shared filesystem never saw the records.
	if files := c.FS.List(dir); len(files) != 0 {
		t.Fatalf("records leaked to the shared filesystem: %v", files)
	}
	// On the peer they are chunked at rest: streamed in, never
	// concatenated.
	files := peer.List(dir)
	if len(files) != pods {
		t.Fatalf("peer store holds %d images, want %d", len(files), pods)
	}
	for _, f := range files {
		info, err := peer.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if info.Chunks < 2 {
			t.Fatalf("%s: %d chunk(s) at rest; a streamed image must span several", f, info.Chunks)
		}
		if info.Size == 0 {
			t.Fatalf("%s: empty image", f)
		}
	}

	// Restart from the peer's local store, as the target node would.
	c.Mgr.SetStore(peer)
	if _, err := c.RestartFromFS(job, dir, c.Nodes); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, eqDeadline); err != nil {
		t.Fatal(err)
	}
	if got := job.Result(); got != want {
		t.Fatalf("migrated result %v != uninterrupted %v", got, want)
	}
}
