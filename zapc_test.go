package zapc_test

import (
	"math"
	"testing"

	"zapc"
)

func TestPublicAPIQuickstart(t *testing.T) {
	c := zapc.New(zapc.Config{Nodes: 4, Seed: 1})
	job, err := c.Launch(zapc.JobSpec{App: "cpi", Endpoints: 4, Work: 0.02, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(func() bool { return job.Progress() > 0.5 }, 10*zapc.Minute); err != nil {
		t.Fatal(err)
	}
	res, err := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total <= 0 {
		t.Fatal("no checkpoint stats")
	}
	if _, err := c.RunJob(job, 10*zapc.Minute); err != nil {
		t.Fatal(err)
	}
	if math.Abs(job.Result()-math.Pi) > 1e-8 {
		t.Fatalf("pi = %v", job.Result())
	}
}

func TestAppsListed(t *testing.T) {
	if len(zapc.Apps()) != 4 {
		t.Fatalf("apps = %v", zapc.Apps())
	}
	for _, app := range zapc.Apps() {
		if len(zapc.NodeCounts(app)) < 4 {
			t.Fatalf("node counts for %s: %v", app, zapc.NodeCounts(app))
		}
	}
}

// smoke-test the figure harness at tiny scale; shape checks only.
func TestFig5Harness(t *testing.T) {
	cfg := zapc.ExperimentConfig{Scale: 0.002, Work: 0.05, Checkpoints: 3}
	row, err := zapc.RunFig5(cfg, "bratu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if row.Base <= 0 || row.ZapC < row.Base {
		t.Fatalf("row = %+v", row)
	}
	if row.OverheadPct > 2.0 {
		t.Fatalf("virtualization overhead %.2f%% too large", row.OverheadPct)
	}
}

func TestFig6Harness(t *testing.T) {
	cfg := zapc.ExperimentConfig{Scale: 0.01, Work: 0.1, Checkpoints: 3, WithDaemons: true}
	row, err := zapc.RunFig6(cfg, "cpi", 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.CkptMean <= 0 || row.Restart <= 0 {
		t.Fatalf("row = %+v", row)
	}
	// Structural claims of §6.2: network ckpt is a small fraction of
	// the checkpoint; the standalone restore dominates the restart.
	if float64(row.NetCkptMax) > 0.5*float64(row.CkptMean) {
		t.Fatalf("net ckpt %v not small vs total %v", row.NetCkptMax, row.CkptMean)
	}
	if row.MaxImage <= 0 || row.ProjectedImage <= row.MaxImage {
		t.Fatalf("sizes: %d / %d", row.MaxImage, row.ProjectedImage)
	}
	if row.NetStateBytes <= 0 || row.NetStateBytes > row.MaxImage/10 {
		t.Fatalf("net-state bytes %d vs image %d", row.NetStateBytes, row.MaxImage)
	}
}

func TestSyncAblationHarness(t *testing.T) {
	cfg := zapc.ExperimentConfig{Scale: 0.05, Work: 0.1}
	row, err := zapc.RunSyncAblation(cfg, "cpi", 4)
	if err != nil {
		t.Fatal(err)
	}
	if row.Naive <= row.Overlapped {
		t.Fatalf("naive %v should exceed overlapped %v", row.Naive, row.Overlapped)
	}
}

func TestRedirectAblationHarness(t *testing.T) {
	cfg := zapc.ExperimentConfig{Scale: 0.002, Work: 0.1}
	row, err := zapc.RunRedirectAblation(cfg, "bt", 4)
	if err != nil {
		t.Fatal(err)
	}
	if row.RedirWireBytes > row.PlainWireBytes {
		t.Fatalf("redirect moved more wire bytes: %d vs %d", row.RedirWireBytes, row.PlainWireBytes)
	}
}

func TestReconnectScalingHarness(t *testing.T) {
	cfg := zapc.ExperimentConfig{Scale: 0.002, Work: 0.1}
	small, err := zapc.RunReconnectScaling(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if small.Connections <= 0 || small.NetRestore <= 0 {
		t.Fatalf("row = %+v", small)
	}
}

func TestTablesRender(t *testing.T) {
	rows5 := []zapc.Fig5Row{{App: "cpi", Endpoints: 4, Base: zapc.Second, ZapC: zapc.Second + zapc.Millisecond}}
	if s := zapc.Fig5Table(rows5); len(s) == 0 {
		t.Fatal("empty fig5 table")
	}
	rows6 := []zapc.Fig6Row{{App: "cpi", Endpoints: 4, CkptMean: zapc.Millisecond}}
	for _, s := range []string{zapc.Fig6aTable(rows6), zapc.Fig6bTable(rows6), zapc.Fig6cTable(rows6, 1)} {
		if len(s) == 0 {
			t.Fatal("empty fig6 table")
		}
	}
}
