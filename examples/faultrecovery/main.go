// Faultrecovery: periodic coordinated checkpoints to shared storage,
// a node failure, and a restart of the whole application from the most
// recent checkpoint on the surviving nodes — the fault-resilience use
// case that motivates the paper.
package main

import (
	"fmt"
	"log"

	"zapc"
)

const deadline = 3600 * zapc.Second

func main() {
	c := zapc.New(zapc.Config{Nodes: 4, Seed: 23})
	job, err := c.Launch(zapc.JobSpec{
		App:         "bratu", // PETSc solid-fuel-ignition solver
		Endpoints:   4,
		Work:        0.25,
		Scale:       1.0 / 16,
		WithDaemons: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reference result from an undisturbed run with the same seed.
	ref := zapc.New(zapc.Config{Nodes: 4, Seed: 23})
	refJob, err := ref.Launch(zapc.JobSpec{
		App: "bratu", Endpoints: 4, Work: 0.25, Scale: 1.0 / 16, WithDaemons: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ref.RunJob(refJob, deadline); err != nil {
		log.Fatal(err)
	}

	// Take a checkpoint every 20% of progress, like a cron-driven
	// checkpointing policy would.
	var last *zapc.CheckpointResult
	for _, pct := range []float64{0.2, 0.4, 0.6} {
		if err := c.Drive(func() bool { return job.Progress() >= pct }, deadline); err != nil {
			log.Fatal(err)
		}
		res, err := c.Checkpoint(job, zapc.CheckpointOptions{
			Mode:    zapc.Snapshot,
			FlushTo: fmt.Sprintf("checkpoints/pct%02.0f", pct*100),
		})
		if err != nil {
			log.Fatal(err)
		}
		last = res
		fmt.Printf("t=%v  checkpoint at %.0f%% took %v (largest image %.1f MB)\n",
			c.W.Now(), 100*pct, res.Stats.Total, float64(res.Stats.MaxImageBytes())/(1<<20))
	}

	// Disaster strikes at ~70%.
	if err := c.Drive(func() bool { return job.Progress() >= 0.7 }, deadline); err != nil {
		log.Fatal(err)
	}
	victim := c.Nodes[2]
	victim.Fail()
	fmt.Printf("t=%v  node %s FAILED — pods on it are gone\n", c.W.Now(), victim.Name())

	// Tear down the crippled application and restart the whole thing
	// from the 60%% checkpoint on the three healthy nodes (pods simply
	// double up; the virtual namespace keeps every PID and address
	// valid).
	for _, p := range job.Pods {
		p.Destroy()
	}
	survivors := append(c.Nodes[:2:2], c.Nodes[3])
	rr, err := c.Restart(job, last, survivors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v  restarted %d pods on %d healthy nodes in %v\n",
		c.W.Now(), len(rr.Pods), len(survivors), rr.Stats.Total)

	if _, err := c.RunJob(job, deadline); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v  done: residual = %v\n", c.W.Now(), job.Result())
	if job.Result() == refJob.Result() {
		fmt.Println("result identical to the undisturbed run: recovery was exact")
	} else {
		log.Fatalf("results diverged: %v vs %v", job.Result(), refJob.Result())
	}
}
