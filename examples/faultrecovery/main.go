// Faultrecovery: the paper's fault-resilience use case, fully
// self-healing. A job runs under a supervisor that takes periodic
// coordinated checkpoints to shared storage and monitors every hosting
// node with heartbeats; a scripted fault kills a node mid-run; the
// supervisor detects the failure by heartbeat timeout, restarts the
// application from the newest valid checkpoint generation on the
// surviving nodes, and the job completes with a result bit-identical to
// an undisturbed run. Nothing after Supervise/Arm is hand-driven.
package main

import (
	"fmt"
	"log"

	"zapc"
)

const deadline = 3600 * zapc.Second

func main() {
	spec := zapc.JobSpec{
		App:         "bratu", // PETSc solid-fuel-ignition solver
		Endpoints:   4,
		Work:        0.25,
		Scale:       1.0 / 16,
		WithDaemons: true,
	}

	// Reference result from an undisturbed run with the same seed.
	ref := zapc.New(zapc.Config{Nodes: 4, Seed: 23})
	refJob, err := ref.Launch(spec)
	if err != nil {
		log.Fatal(err)
	}
	refDur, err := ref.RunJob(refJob, deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference run: %v, residual %v\n", refDur, refJob.Result())

	// The supervised run: same cluster, same seed.
	c := zapc.New(zapc.Config{Nodes: 4, Seed: 23})
	job, err := c.Launch(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Place the job under a self-healing policy: checkpoint every ~10%
	// of the expected runtime, ping every node each 100ms, retain the
	// three newest validated generations, retry aborted checkpoints with
	// exponential backoff.
	sup, err := c.Supervise(job, zapc.SupervisorPolicy{
		CheckpointEvery:   refDur / 10,
		HeartbeatInterval: 100 * zapc.Millisecond,
		Retain:            3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Script the disaster: when the job reaches 55% progress, node02
	// fail-stops — every pod on it dies instantly.
	inj := zapc.NewFaultInjector(c)
	inj.SetProgressProbe(job.Progress, 0)
	if err := inj.Arm([]zapc.FaultStep{{
		Name:     "crash-node02",
		Progress: 0.55,
		Action:   zapc.FaultCrashNode,
		Node:     c.Nodes[2],
	}}); err != nil {
		log.Fatal(err)
	}

	// Drive toward completion. Failure detection, failover, and the
	// restart all happen underneath, on the simulated clock.
	if err := c.Drive(job.Finished, deadline); err != nil {
		log.Fatalf("drive: %v (supervisor: %v)", err, sup.Err())
	}
	c.Drive(func() bool { return !sup.Running() }, zapc.Minute)

	fmt.Println("\nsupervisor activity:")
	for _, e := range sup.Events() {
		fmt.Printf("  %v\n", e)
	}
	fmt.Println("\ninjected faults:")
	for _, r := range inj.Fired() {
		fmt.Printf("  %v\n", r)
	}
	st := sup.Stats()
	fmt.Printf("\ncheckpoints=%d retries=%d declared=%d failovers=%d gc=%d\n",
		st.Checkpoints, st.Retries, st.NodesDeclared, st.Failovers, st.GCCollected)

	fmt.Printf("t=%v  done: residual = %v\n", c.W.Now(), job.Result())
	if job.Result() == refJob.Result() {
		fmt.Println("result identical to the undisturbed run: recovery was exact")
	} else {
		log.Fatalf("results diverged: %v vs %v", job.Result(), refJob.Result())
	}
}
