// Migrate: move a running communication-heavy solver from N nodes onto
// a different, smaller set of nodes (N -> M) without restarting it —
// the paper's direct-migration path, with checkpoint images streamed
// agent-to-agent (no intermediate storage) and the §5 send-queue
// redirect optimization enabled.
//
// The example runs the same job twice (same seed): once uninterrupted
// and once migrated mid-run, and verifies the results are bit-identical
// — the transparency property of the paper.
package main

import (
	"fmt"
	"log"

	"zapc"
)

const (
	endpoints = 4
	work      = 0.25
	deadline  = 3600 * zapc.Second
)

func launch(c *zapc.Cluster) *zapc.Job {
	job, err := c.Launch(zapc.JobSpec{
		App:       "bt", // NAS-style block solver: heavy halo traffic
		Endpoints: endpoints,
		Work:      work,
		Scale:     1.0 / 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	return job
}

func main() {
	// Reference: the uninterrupted run.
	ref := zapc.New(zapc.Config{Nodes: endpoints, Seed: 11})
	refJob := launch(ref)
	if _, err := ref.RunJob(refJob, deadline); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference run:  norm = %v (completed at t=%v)\n", refJob.Result(), ref.W.Now())

	// Migrated: same seed, same workload, but moved mid-run.
	c := zapc.New(zapc.Config{Nodes: endpoints, Seed: 11})
	job := launch(c)
	if err := c.Drive(func() bool { return job.Progress() >= 0.4 }, deadline); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v  job at %.0f%%; migrating %d pods onto 2 dual-CPU nodes\n",
		c.W.Now(), 100*job.Progress(), endpoints)

	// N=4 endpoints consolidate onto M=2 fresh dual-processor nodes:
	// the pod is the unit of migration, so endpoints need not stay 1:1
	// with nodes.
	targets := c.AddNodes(2, 2)
	res, err := c.Migrate(job, targets, true /* send-queue redirect */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v  migration done in %v\n", c.W.Now(), res.Stats.Total)
	fmt.Printf("      checkpoint %v | stream %v (%.1f MB) | restart %v\n",
		res.Stats.Ckpt.Total, res.Stats.Transfer,
		float64(res.Stats.WireBytes)/(1<<20), res.Stats.Restart.Total)
	for _, p := range job.Pods {
		fmt.Printf("      pod %-8s now on %s (virtual IP %v unchanged)\n",
			p.Name(), p.Node().Name(), p.VirtualIP())
	}

	if _, err := c.RunJob(job, deadline); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated run:   norm = %v (completed at t=%v)\n", job.Result(), c.W.Now())

	if job.Result() == refJob.Result() {
		fmt.Println("results identical: migration was transparent")
	} else {
		log.Fatalf("results diverged: %v vs %v", job.Result(), refJob.Result())
	}
}
