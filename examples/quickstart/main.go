// Quickstart: run a distributed MPI application on the virtual cluster,
// take a coordinated checkpoint mid-run, and let it finish — the
// simplest use of the zapc public API.
package main

import (
	"fmt"
	"log"
	"math"

	"zapc"
)

func main() {
	// A four-node cluster with the calibrated 2005-era hardware model.
	c := zapc.New(zapc.Config{Nodes: 4, Seed: 7})

	// Launch the MPICH-2 CPI example: four endpoints, one pod each,
	// plus the middleware daemon the paper's setup runs in every pod.
	job, err := c.Launch(zapc.JobSpec{
		App:         "cpi",
		Endpoints:   4,
		Work:        0.25,
		Scale:       1.0 / 16,
		WithDaemons: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("launched cpi on 4 pods")

	// Run to the halfway point.
	deadline := 3600 * zapc.Second
	if err := c.Drive(func() bool { return job.Progress() >= 0.5 }, deadline); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v  progress %.0f%%\n", c.W.Now(), 100*job.Progress())

	// Coordinated checkpoint: every pod is saved consistently — socket
	// queues, sequence numbers and all — then the application resumes.
	res, err := c.Checkpoint(job, zapc.CheckpointOptions{
		Mode:    zapc.Snapshot,
		FlushTo: "checkpoints/quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v  checkpointed %d pods in %v (network state: %v, largest image %.1f MB)\n",
		c.W.Now(), len(res.Images), res.Stats.Total, res.Stats.MaxNetCkpt(),
		float64(res.Stats.MaxImageBytes())/(1<<20))

	// The application never noticed.
	if _, err := c.RunJob(job, deadline); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v  done: pi = %.15f (error %.2e)\n",
		c.W.Now(), job.Result(), math.Abs(job.Result()-math.Pi))
}
