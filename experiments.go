package zapc

import (
	"fmt"

	"zapc/internal/cluster"
	"zapc/internal/core"
	"zapc/internal/metrics"
	"zapc/internal/sim"
)

// ExperimentConfig tunes the evaluation harness that regenerates the
// paper's figures.
type ExperimentConfig struct {
	// Scale multiplies the paper-scale memory footprints (default 1/16
	// so the suite runs comfortably on a laptop; 1.0 reproduces the
	// paper's absolute image sizes).
	Scale float64
	// Work scales simulated application runtimes (1.0 ≈ tens of
	// simulated seconds per run).
	Work float64
	// Seed drives the deterministic simulation.
	Seed int64
	// Checkpoints per measured run (the paper takes 10).
	Checkpoints int
	// WithDaemons runs a middleware daemon in each pod, as the paper's
	// MPD/PVMD setup does.
	WithDaemons bool
}

func (c ExperimentConfig) defaults() ExperimentConfig {
	if c.Scale == 0 {
		c.Scale = 1.0 / 16
	}
	if c.Work == 0 {
		c.Work = 0.25
	}
	if c.Checkpoints == 0 {
		c.Checkpoints = 10
	}
	if c.Seed == 0 {
		c.Seed = 2005
	}
	return c
}

// NodeCounts returns the cluster sizes the paper evaluates for an app:
// 1, 2, 4, 8, 16 — except BT, which requires square counts (1, 4, 9,
// 16).
func NodeCounts(app string) []int {
	if app == "bt" {
		return []int{1, 4, 9, 16}
	}
	return []int{1, 2, 4, 8, 16}
}

// clusterFor reproduces the paper's hardware configurations: up to
// eight uniprocessor nodes; the sixteen-endpoint configuration uses
// eight dual-processor nodes (two pods per node).
func clusterFor(endpoints int, cfg ExperimentConfig) *cluster.Cluster {
	nodes, cpus := endpoints, 1
	if endpoints > 9 {
		nodes, cpus = (endpoints+1)/2, 2
	}
	costs := sim.DefaultCosts()
	// Charge image-driven costs at paper scale even when the in-memory
	// footprints are shrunk by cfg.Scale.
	costs.ImageCostScale = 1 / cfg.Scale
	return cluster.New(cluster.Config{Nodes: nodes, CPUsPerNode: cpus, Seed: cfg.Seed, Costs: &costs})
}

func (c ExperimentConfig) spec(app string, endpoints int, base bool) cluster.JobSpec {
	return cluster.JobSpec{
		App:         app,
		Endpoints:   endpoints,
		Work:        c.Work,
		Scale:       c.Scale,
		WithDaemons: c.WithDaemons && !base,
		Base:        base,
	}
}

const runDeadline = 4 * 3600 * sim.Second

// Fig5Row is one point of Figure 5: application completion time on
// vanilla nodes (Base) vs inside ZapC pods.
type Fig5Row struct {
	App       string
	Endpoints int
	Base      Duration
	ZapC      Duration
	// OverheadPct is the relative virtualization cost in percent.
	OverheadPct float64
}

// RunFig5 measures one Figure 5 point.
func RunFig5(cfg ExperimentConfig, app string, endpoints int) (Fig5Row, error) {
	cfg = cfg.defaults()
	row := Fig5Row{App: app, Endpoints: endpoints}
	for _, base := range []bool{true, false} {
		c := clusterFor(endpoints, cfg)
		job, err := c.Launch(cfg.spec(app, endpoints, base))
		if err != nil {
			return row, err
		}
		dur, err := c.RunJob(job, runDeadline)
		if err != nil {
			return row, fmt.Errorf("fig5 %s/%d base=%v: %w", app, endpoints, base, err)
		}
		if base {
			row.Base = dur
		} else {
			row.ZapC = dur
		}
	}
	row.OverheadPct = 100 * float64(row.ZapC-row.Base) / float64(row.Base)
	return row, nil
}

// RunFig5All measures the full Figure 5 sweep.
func RunFig5All(cfg ExperimentConfig) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, app := range Apps() {
		for _, n := range NodeCounts(app) {
			row, err := RunFig5(cfg, app, n)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig6Row is one point of Figure 6 (a: checkpoint times, b: restart
// times, c: image sizes) plus the in-text network-state series.
type Fig6Row struct {
	App       string
	Endpoints int

	// Figure 6a: checkpoint times over cfg.Checkpoints snapshots.
	CkptMean Duration
	CkptStd  Duration
	CkptMax  Duration
	// Network-state checkpoint time (per-agent max over the run).
	NetCkptMax Duration

	// Figure 6b: restart time from a mid-run image.
	Restart Duration
	// Network-state restart time (per-agent max).
	NetRestoreMax Duration
	StandaloneMax Duration

	// Figure 6c: largest pod image (mean over snapshots) and the
	// model-projected paper-scale size.
	MaxImage       int64
	ProjectedImage int64
	// Network-state bytes within the checkpoint (max over agents).
	NetStateBytes int64
}

// RunFig6 measures one (app, endpoints) cell of Figure 6: it takes
// cfg.Checkpoints snapshots evenly spread over a run (6a, 6c), then
// re-runs, migrates at mid-run, and reports the restart breakdown (6b).
func RunFig6(cfg ExperimentConfig, app string, endpoints int) (Fig6Row, error) {
	cfg = cfg.defaults()
	row := Fig6Row{App: app, Endpoints: endpoints}

	// --- Snapshot series (Figures 6a, 6c).
	c := clusterFor(endpoints, cfg)
	job, err := c.Launch(cfg.spec(app, endpoints, false))
	if err != nil {
		return row, err
	}
	var tTotal, tNet metrics.Sample
	var imgMax, netBytes metrics.Sample
	for i := 0; i < cfg.Checkpoints; i++ {
		target := float64(i+1) / float64(cfg.Checkpoints+1)
		if err := c.Drive(func() bool { return job.Progress() >= target || job.Finished() }, runDeadline); err != nil {
			return row, err
		}
		if job.Finished() {
			break
		}
		res, err := c.Checkpoint(job, core.Options{Mode: core.Snapshot})
		if err != nil {
			return row, fmt.Errorf("fig6a %s/%d ckpt %d: %w", app, endpoints, i, err)
		}
		tTotal.Add(float64(res.Stats.Total))
		tNet.Add(float64(res.Stats.MaxNetCkpt()))
		imgMax.Add(float64(res.Stats.MaxImageBytes()))
		for _, a := range res.Stats.Agents {
			netBytes.Add(float64(a.NetBytes))
		}
	}
	if _, err := c.RunJob(job, runDeadline); err != nil {
		return row, fmt.Errorf("fig6a %s/%d completion: %w", app, endpoints, err)
	}
	row.CkptMean = Duration(tTotal.Mean())
	row.CkptStd = Duration(tTotal.Std())
	row.CkptMax = Duration(tTotal.Max())
	row.NetCkptMax = Duration(tNet.Max())
	row.MaxImage = int64(imgMax.Mean())
	row.ProjectedImage = int64(imgMax.Mean() / cfg.Scale)
	row.NetStateBytes = int64(netBytes.Max())

	// --- Restart from a mid-run image (Figure 6b). Restarts reuse the
	// same set of nodes, as the paper did.
	c2 := clusterFor(endpoints, cfg)
	job2, err := c2.Launch(cfg.spec(app, endpoints, false))
	if err != nil {
		return row, err
	}
	if err := c2.Drive(func() bool { return job2.Progress() >= 0.5 }, runDeadline); err != nil {
		return row, err
	}
	ck, err := c2.Checkpoint(job2, core.Options{Mode: core.Migrate})
	if err != nil {
		return row, err
	}
	rr, err := c2.Restart(job2, ck, c2.Nodes)
	if err != nil {
		return row, fmt.Errorf("fig6b %s/%d restart: %w", app, endpoints, err)
	}
	row.Restart = rr.Stats.Total
	for _, a := range rr.Stats.Agents {
		if a.NetRestore > row.NetRestoreMax {
			row.NetRestoreMax = a.NetRestore
		}
		if a.Standalone > row.StandaloneMax {
			row.StandaloneMax = a.Standalone
		}
	}
	if _, err := c2.RunJob(job2, runDeadline); err != nil {
		return row, fmt.Errorf("fig6b %s/%d completion: %w", app, endpoints, err)
	}
	return row, nil
}

// RunFig6All measures the full Figure 6 sweep.
func RunFig6All(cfg ExperimentConfig) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, app := range Apps() {
		for _, n := range NodeCounts(app) {
			row, err := RunFig6(cfg, app, n)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SyncAblationRow compares the paper's overlapped single-sync design
// (Figure 2) against the naive wait-for-continue ordering.
type SyncAblationRow struct {
	App        string
	Endpoints  int
	Overlapped Duration
	Naive      Duration
}

// RunSyncAblation measures ablation A1 for one configuration. The
// manager is placed outside the cluster (the paper allows it to "run
// from anywhere"), so the synchronization round trip is a campus-link
// 5 ms rather than a switch hop — the latency the Figure 2 overlap
// hides.
func RunSyncAblation(cfg ExperimentConfig, app string, endpoints int) (SyncAblationRow, error) {
	cfg = cfg.defaults()
	row := SyncAblationRow{App: app, Endpoints: endpoints}
	for _, naive := range []bool{false, true} {
		c := clusterFor(endpoints, cfg)
		c.W.Costs.CtrlLatency = 5 * sim.Millisecond
		job, err := c.Launch(cfg.spec(app, endpoints, false))
		if err != nil {
			return row, err
		}
		if err := c.Drive(func() bool { return job.Progress() >= 0.4 }, runDeadline); err != nil {
			return row, err
		}
		res, err := c.Checkpoint(job, core.Options{Mode: core.Snapshot, NaiveSync: naive})
		if err != nil {
			return row, err
		}
		if naive {
			row.Naive = res.Stats.Total
		} else {
			row.Overlapped = res.Stats.Total
		}
	}
	return row, nil
}

// RedirectAblationRow compares migration with and without the §5
// send-queue redirect optimization.
type RedirectAblationRow struct {
	App             string
	Endpoints       int
	PlainWireBytes  int64
	RedirWireBytes  int64
	PlainRestart    Duration
	RedirectRestart Duration
}

// RunRedirectAblation measures ablation A2: the job is migrated while
// its connections hold unacknowledged send-queue data (a brief network
// outage lets every in-flight halo pile up unacked, the situation the
// optimization targets); wire bytes moved during the migration are
// compared with and without the redirect.
func RunRedirectAblation(cfg ExperimentConfig, app string, endpoints int) (RedirectAblationRow, error) {
	cfg = cfg.defaults()
	row := RedirectAblationRow{App: app, Endpoints: endpoints}
	for _, redirect := range []bool{false, true} {
		c := clusterFor(endpoints, cfg)
		job, err := c.Launch(cfg.spec(app, endpoints, false))
		if err != nil {
			return row, err
		}
		if err := c.Drive(func() bool { return job.Progress() >= 0.4 }, runDeadline); err != nil {
			return row, err
		}
		// Simulate a brief cluster-wide network outage: application
		// sends stay queued unacknowledged in every pod.
		for _, p := range job.Pods {
			p.BlockNetwork()
		}
		c.W.RunUntil(c.W.Now() + sim.Time(300*sim.Millisecond))
		for _, p := range job.Pods {
			p.UnblockNetwork()
		}
		targets := c.AddNodes(endpoints, 1)
		wireBefore := c.Net.BytesSent
		res, err := c.Migrate(job, targets, redirect)
		if err != nil {
			return row, err
		}
		wire := c.Net.BytesSent - wireBefore
		if redirect {
			row.RedirWireBytes = wire
			row.RedirectRestart = res.Stats.Restart.Total
		} else {
			row.PlainWireBytes = wire
			row.PlainRestart = res.Stats.Restart.Total
		}
		if _, err := c.RunJob(job, runDeadline); err != nil {
			return row, err
		}
	}
	return row, nil
}

// ReconnectScalingRow measures how network-state restart time scales
// with the number of connections (ablation A3: the two-actor recovery
// re-establishes a full mesh without any deadlock-avoidance schedule).
type ReconnectScalingRow struct {
	App         string
	Endpoints   int
	Connections int
	NetRestore  Duration
}

// RunReconnectScaling measures one A3 point using the
// communication-heavy BT mesh.
func RunReconnectScaling(cfg ExperimentConfig, endpoints int) (ReconnectScalingRow, error) {
	cfg = cfg.defaults()
	row := ReconnectScalingRow{App: "bt", Endpoints: endpoints}
	c := clusterFor(endpoints, cfg)
	job, err := c.Launch(cfg.spec("bt", endpoints, false))
	if err != nil {
		return row, err
	}
	if err := c.Drive(func() bool { return job.Progress() >= 0.3 }, runDeadline); err != nil {
		return row, err
	}
	// Count live connections before the migration.
	for _, p := range job.Pods {
		for _, s := range p.Stack().Sockets() {
			if s.State().String() == "established" {
				row.Connections++
			}
		}
	}
	row.Connections /= 2 // both ends counted
	targets := c.AddNodes(endpoints, 1)
	res, err := c.Migrate(job, targets, false)
	if err != nil {
		return row, err
	}
	for _, a := range res.Stats.Restart.Agents {
		if a.NetRestore > row.NetRestore {
			row.NetRestore = a.NetRestore
		}
	}
	if _, err := c.RunJob(job, runDeadline); err != nil {
		return row, err
	}
	return row, nil
}

// CoordScalingRow is one point of the coordination-scaling experiment:
// the same stop-and-copy checkpoint coordinated once over the flat
// manager star and once over a fanout-ary tree, with a non-zero
// per-message sender occupancy so the flat root's O(N) serialization
// shows up on the simulated clock.
type CoordScalingRow struct {
	Pods   int
	Fanout int
	Depth  int
	// Barrier / FlatBarrier are the fan-out barrier spans (manager
	// invocation to the last agent's start receipt).
	Barrier     Duration
	FlatBarrier Duration
	// Suspend / FlatSuspend are the worst-pod suspend windows.
	Suspend     Duration
	FlatSuspend Duration
	// RootMsgs / FlatRootMsgs count control messages the root sent or
	// received over the whole operation.
	RootMsgs     int64
	FlatRootMsgs int64
}

// coordScalingPerMsg is the sender occupancy the scaling experiment
// charges per queued control message (~40k msgs/s coordinator capacity,
// 2005-era). The default cost model leaves it zero so every other
// experiment keeps the latency-only legacy control plane.
const coordScalingPerMsg = 25 * sim.Microsecond

// RunCoordScaling measures one coordination-scaling point: pods
// endpoints checkpointed stop-and-copy, flat vs tree-of-fanout, same
// seed. The workload is shrunk hard (tiny footprints, no daemons) so
// the control plane dominates and points up to 1024 pods stay cheap to
// simulate.
func RunCoordScaling(cfg ExperimentConfig, pods, fanout int) (CoordScalingRow, error) {
	cfg = cfg.defaults()
	row := CoordScalingRow{Pods: pods, Fanout: fanout}
	for _, tree := range []bool{false, true} {
		costs := sim.DefaultCosts()
		costs.CtrlPerMsg = coordScalingPerMsg
		costs.ImageCostScale = 1 / cfg.Scale
		ccfg := cluster.Config{Nodes: pods, Seed: cfg.Seed, Costs: &costs}
		if tree {
			ccfg.Fanout = fanout
		}
		c := cluster.New(ccfg)
		job, err := c.Launch(cluster.JobSpec{
			App: "cpi", Endpoints: pods, Work: cfg.Work, Scale: cfg.Scale,
		})
		if err != nil {
			return row, err
		}
		// A short settle puts every endpoint past its setup phase.
		c.W.RunUntil(c.W.Now() + sim.Time(50*sim.Millisecond))
		res, err := c.Checkpoint(job, core.Options{Mode: core.Snapshot})
		if err != nil {
			return row, fmt.Errorf("coord scaling %d/f=%d tree=%v: %w", pods, fanout, tree, err)
		}
		if tree {
			row.Barrier = res.Stats.CoordBarrier
			row.Suspend = res.Stats.MaxSuspendWindow()
			row.RootMsgs = res.Stats.Coord.RootMsgs
			row.Depth = res.Stats.Coord.Depth
		} else {
			row.FlatBarrier = res.Stats.CoordBarrier
			row.FlatSuspend = res.Stats.MaxSuspendWindow()
			row.FlatRootMsgs = res.Stats.Coord.RootMsgs
		}
	}
	return row, nil
}

// Stamp writes the scaling point into a bench trajectory record so
// zapc-benchdiff can gate the coordination barrier across runs.
func (r CoordScalingRow) Stamp(rec *metrics.CkptBenchRecord) {
	rec.CoordPods = r.Pods
	rec.CoordFanout = r.Fanout
	rec.CoordDepth = r.Depth
	rec.CoordRootMsgs = r.RootMsgs
	rec.CoordFlatRootMsgs = r.FlatRootMsgs
	rec.CoordBarrierUs = float64(r.Barrier) / 1e3
	rec.CoordFlatBarrierUs = float64(r.FlatBarrier) / 1e3
}

// CoordScalingCounts is the pod-count sweep of the scaling experiment.
func CoordScalingCounts() []int { return []int{4, 64, 256, 1024} }

// RunCoordScalingAll measures the full sweep at one fan-out.
func RunCoordScalingAll(cfg ExperimentConfig, fanout int) ([]CoordScalingRow, error) {
	var rows []CoordScalingRow
	for _, n := range CoordScalingCounts() {
		row, err := RunCoordScaling(cfg, n, fanout)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CoordScalingTable renders the scaling sweep.
func CoordScalingTable(rows []CoordScalingRow) string {
	t := metrics.NewTable("pods", "fanout", "depth",
		"barrier(tree)", "barrier(flat)", "suspend(tree)", "suspend(flat)",
		"root-msgs(tree)", "root-msgs(flat)")
	for _, r := range rows {
		t.Row(r.Pods, r.Fanout, r.Depth,
			r.Barrier, r.FlatBarrier, r.Suspend, r.FlatSuspend,
			r.RootMsgs, r.FlatRootMsgs)
	}
	return t.String()
}

// Fig5Table renders Figure 5 rows like the paper reports them.
func Fig5Table(rows []Fig5Row) string {
	t := metrics.NewTable("app", "endpoints", "base", "zapc", "overhead")
	for _, r := range rows {
		t.Row(r.App, r.Endpoints, r.Base, r.ZapC, fmt.Sprintf("%.3f%%", r.OverheadPct))
	}
	return t.String()
}

// Fig6aTable renders the checkpoint-time series.
func Fig6aTable(rows []Fig6Row) string {
	t := metrics.NewTable("app", "endpoints", "ckpt(mean)", "ckpt(std)", "ckpt(max)", "net-ckpt(max)")
	for _, r := range rows {
		t.Row(r.App, r.Endpoints, r.CkptMean, r.CkptStd, r.CkptMax, r.NetCkptMax)
	}
	return t.String()
}

// Fig6bTable renders the restart-time series.
func Fig6bTable(rows []Fig6Row) string {
	t := metrics.NewTable("app", "endpoints", "restart", "net-restore(max)", "standalone(max)")
	for _, r := range rows {
		t.Row(r.App, r.Endpoints, r.Restart, r.NetRestoreMax, r.StandaloneMax)
	}
	return t.String()
}

// Fig6cTable renders the image-size series with paper-scale projection.
func Fig6cTable(rows []Fig6Row, scale float64) string {
	t := metrics.NewTable("app", "endpoints", "max-image", "projected(paper-scale)", "net-state")
	for _, r := range rows {
		t.Row(r.App, r.Endpoints,
			metrics.HumanBytes(r.MaxImage),
			metrics.HumanBytes(r.ProjectedImage),
			metrics.HumanBytes(r.NetStateBytes))
	}
	return t.String()
}
