package zapc_test

// Cross-run determinism: the whole checkpoint pipeline — parallel
// serialization included — must be a pure function of the seed. Two
// runs with the same seed produce byte-identical full images and delta
// records, and the worker-pool width must not leak into the bytes of a
// checkpoint taken at the same simulated instant.

import (
	"bytes"
	"fmt"
	"testing"

	"zapc"
)

// grabFlushed reads every record a checkpoint streamed to the shared
// filesystem under prefix, keyed by path (the record is only ever
// materialized here, in the test's read-back).
func grabFlushed(t *testing.T, c *zapc.Cluster, prefix string) map[string][]byte {
	t.Helper()
	paths := c.FS.List(prefix)
	if len(paths) == 0 {
		t.Fatalf("no records flushed under %q", prefix)
	}
	out := make(map[string][]byte, len(paths))
	for _, path := range paths {
		data, err := c.FS.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out[path] = data
	}
	return out
}

// detRun drives one seeded run through a full then an incremental
// checkpoint and returns the serialized records of both generations,
// read back from the shared filesystem they streamed to.
func detRun(t *testing.T, seed int64, workers int) (full, delta map[string][]byte) {
	t.Helper()
	c := zapc.New(zapc.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(eqSpec())
	if err != nil {
		t.Fatal(err)
	}
	incr := zapc.NewIncrSet(10)
	gen := 0
	grab := func(p float64) map[string][]byte {
		driveTo(t, c, job, p)
		prefix := fmt.Sprintf("det/g%d", gen)
		gen++
		if _, err := c.Checkpoint(job, zapc.CheckpointOptions{
			Mode: zapc.Snapshot, Workers: workers, Incr: incr, FlushTo: prefix,
		}); err != nil {
			t.Fatal(err)
		}
		return grabFlushed(t, c, prefix)
	}
	full = grab(0.3)
	delta = grab(0.6)
	if _, err := c.RunJob(job, eqDeadline); err != nil {
		t.Fatal(err)
	}
	return full, delta
}

func diffRecords(t *testing.T, kind string, a, b map[string][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d records", kind, len(a), len(b))
	}
	for vip, ra := range a {
		rb, ok := b[vip]
		if !ok {
			t.Fatalf("%s: pod %s missing in second run", kind, vip)
		}
		if !bytes.Equal(ra, rb) {
			t.Fatalf("%s: pod %s record differs between identically-seeded runs (%d vs %d bytes)",
				kind, vip, len(ra), len(rb))
		}
	}
}

func TestCheckpointDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 2005} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			f1, d1 := detRun(t, seed, 4)
			f2, d2 := detRun(t, seed, 4)
			diffRecords(t, "full image", f1, f2)
			diffRecords(t, "delta record", d1, d2)
		})
	}
}

// TestCheckpointWorkerWidthInvariance pins the property the parallel
// encoder is built on: the pool width changes only timing, never bytes.
// The first checkpoint of a run happens at the same simulated instant
// regardless of Workers, so its records must be byte-identical across
// widths.
func TestCheckpointWorkerWidthInvariance(t *testing.T) {
	grab := func(workers int) map[string][]byte {
		c := zapc.New(zapc.Config{Nodes: 4, Seed: 41})
		job, err := c.Launch(eqSpec())
		if err != nil {
			t.Fatal(err)
		}
		driveTo(t, c, job, 0.5)
		if _, err := c.Checkpoint(job, zapc.CheckpointOptions{
			Mode: zapc.Snapshot, Workers: workers, FlushTo: "det/w",
		}); err != nil {
			t.Fatal(err)
		}
		return grabFlushed(t, c, "det/w")
	}
	seq := grab(1)
	for _, w := range []int{2, 8} {
		diffRecords(t, fmt.Sprintf("workers=%d", w), seq, grab(w))
	}
}
