// Package zapc is a Go reproduction of ZapC — "Transparent
// Checkpoint-Restart of Distributed Applications on Commodity Clusters"
// (Laadan, Phung, Nieh; IEEE CLUSTER 2005) — built on a deterministic
// virtual cluster: a discrete-event simulated network stack, virtual
// operating system, and pod virtualization layer, with the paper's
// coordinated checkpoint-restart and transport-protocol-independent
// network-state mechanisms implemented faithfully on top.
//
// The public surface exposes the virtual testbed (Cluster), application
// deployment (JobSpec/Job — the paper's four workloads are built in),
// and the coordinated operations:
//
//	c := zapc.New(zapc.Config{Nodes: 4, Seed: 1})
//	job, _ := c.Launch(zapc.JobSpec{App: "cpi", Endpoints: 4})
//	c.Drive(func() bool { return job.Progress() > 0.5 }, zapc.Minute)
//	res, _ := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.Snapshot})
//	// ... later, possibly on other nodes:
//	c.Restart(job, res, targets)
//
// Everything is deterministic for a fixed seed: a run that is
// checkpointed, migrated, and resumed produces results bit-identical to
// an uninterrupted run — the property the test suite verifies for every
// workload.
package zapc

import (
	"io"

	"zapc/internal/chaos"
	"zapc/internal/ckpt"
	"zapc/internal/cluster"
	"zapc/internal/coord"
	"zapc/internal/core"
	"zapc/internal/faultinject"
	"zapc/internal/imagestore"
	"zapc/internal/metrics"
	"zapc/internal/sim"
	"zapc/internal/standby"
	"zapc/internal/supervisor"
	"zapc/internal/trace"
)

// Core types re-exported from the implementation. The aliases give
// external users a single import path while the implementation stays in
// internal packages.
type (
	// Config sizes the virtual cluster.
	Config = cluster.Config
	// Cluster is the virtual testbed.
	Cluster = cluster.Cluster
	// JobSpec describes a distributed application deployment.
	JobSpec = cluster.JobSpec
	// Job is a deployed application.
	Job = cluster.Job
	// CheckpointOptions tunes a coordinated checkpoint.
	CheckpointOptions = core.Options
	// CoordConfig selects the coordination-tree topology for coordinated
	// operations (CheckpointOptions.Coord, Config.Fanout,
	// SupervisorPolicy.Fanout). The zero value selects the default
	// fan-out; unset means the legacy flat star.
	CoordConfig = coord.Config
	// CoordStats is the per-link control-plane accounting of one
	// coordinated operation (message, byte, and root-message counts).
	CoordStats = coord.Stats
	// PrecopyOptions selects iterative pre-copy live checkpointing via
	// CheckpointOptions.Precopy: the pod keeps running through the bulk
	// of the serialization and is quiesced only for the residual dirty
	// set. Zero values pick the default round/convergence budgets.
	PrecopyOptions = core.PrecopyOptions
	// CheckpointResult carries images and the timing breakdown.
	CheckpointResult = core.CheckpointResult
	// RestartResult reports a coordinated restart.
	RestartResult = core.RestartResult
	// MigrateResult reports a direct migration.
	MigrateResult = core.MigrateResult
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// Time is a simulated timestamp.
	Time = sim.Time
	// Costs is the calibrated hardware cost model.
	Costs = sim.Costs
)

// Self-healing supervision and fault injection (see internal/supervisor
// and internal/faultinject). A job is placed under supervision with
// c.Supervise(job, policy); faults are scripted with an Injector:
//
//	sup, _ := c.Supervise(job, zapc.SupervisorPolicy{CheckpointEvery: 2 * zapc.Second})
//	inj := zapc.NewFaultInjector(c)
//	inj.SetProgressProbe(job.Progress, 0)
//	_ = inj.Arm([]zapc.FaultStep{{
//		Name: "kill", Progress: 0.5, Action: zapc.FaultCrashNode, Node: c.Nodes[1],
//	}})
//	c.Drive(job.Finished, 10*zapc.Minute) // recovery happens underneath
type (
	// SupervisorPolicy tunes the self-healing loop (heartbeat cadence,
	// checkpoint period, retry/backoff, generation retention).
	SupervisorPolicy = supervisor.Policy
	// Supervisor is the self-healing control loop for one job.
	Supervisor = supervisor.Supervisor
	// SupervisorEvent is one entry of the supervisor's activity log.
	SupervisorEvent = supervisor.Event
	// SupervisorStats counts supervisor activity.
	SupervisorStats = supervisor.Stats
	// FaultInjector schedules deterministic scripted faults.
	FaultInjector = faultinject.Injector
	// FaultStep is one entry of a declarative fault schedule.
	FaultStep = faultinject.Step
	// FaultRecord logs one fired fault.
	FaultRecord = faultinject.Record
)

// Warm-standby continuous replication (see internal/standby). A spare
// node attached with c.AttachStandby(sup, cfg) trails the supervisor's
// checkpoint stream by at most one generation; on failover the
// supervisor promotes its pre-built shadow state in place instead of
// reading the image chain back from the store:
//
//	sup, _ := c.Supervise(job, zapc.SupervisorPolicy{CheckpointEvery: 2 * zapc.Second})
//	plane, _ := c.AttachStandby(sup, zapc.StandbyConfig{})
//	c.Drive(job.Finished, 10*zapc.Minute) // promotion happens underneath
//	_ = plane.Stats().GensApplied
type (
	// StandbyConfig sizes the warm standby (node CPUs, replication
	// port, stall timeout).
	StandbyConfig = cluster.StandbyConfig
	// StandbyPlane is the replication plane on the standby node: the
	// record receiver, the shadow state, and the promotion handover.
	StandbyPlane = standby.Plane
	// StandbyStats counts replication-plane activity.
	StandbyStats = standby.Stats
)

// Parallel + incremental checkpoint pipeline (see internal/ckpt). The
// worker-pool width is selected per checkpoint with
// CheckpointOptions.Workers (0 = sequential, <0 = one per host CPU);
// incremental base+delta capture is enabled by handing the same IncrSet
// to successive checkpoints via CheckpointOptions.Incr, or by setting
// SupervisorPolicy.Incremental:
//
//	incr := zapc.NewIncrSet(4) // full base every 4th generation
//	res, _ := c.Checkpoint(job, zapc.CheckpointOptions{Workers: -1, Incr: incr})
type (
	// IncrSet tracks base+delta checkpoint chains for a set of pods.
	IncrSet = ckpt.IncrSet
	// DeltaImage is one incremental checkpoint record.
	DeltaImage = ckpt.DeltaImage
	// CkptBenchRecord is one BENCH_ckpt.json trajectory entry.
	CkptBenchRecord = metrics.CkptBenchRecord
)

// Streaming image pipeline (see internal/imagestore). Checkpoint records
// stream chunk by chunk into an ImageStore — the shared filesystem by
// default (NewFSImageStore), or a netstack-backed remote store that
// ships each record straight to a peer node for the paper's direct
// checkpoint-to-network migration. The manager's store is swapped with
// c.Mgr.SetStore; records flush when CheckpointOptions.FlushTo names a
// prefix.
type (
	// ImageStore is a named destination checkpoint records stream into.
	ImageStore = imagestore.Store
	// ImageStoreInfo describes one stored record.
	ImageStoreInfo = imagestore.Info
	// DedupImageStore stores image content once per unique block and
	// garbage-collects blocks by reference count; enable it on a cluster
	// with c.EnableDedupStore().
	DedupImageStore = imagestore.DedupStore
	// DedupUsage is a dedup store's physical-footprint accounting.
	DedupUsage = imagestore.DedupUsage
)

// NewFSImageStore wraps a cluster's shared filesystem as an ImageStore
// (the manager's default).
func NewFSImageStore(c *Cluster) ImageStore { return imagestore.NewFS(c.FS) }

// NewDedupImageStore wraps any ImageStore with content-hash block
// dedup: unchanged regions across checkpoint generations are stored
// once and referenced by hash.
func NewDedupImageStore(inner ImageStore) *DedupImageStore { return imagestore.NewDedup(inner) }

// NewIncrSet creates an incremental-checkpoint tracker set that takes a
// full base image every fullEvery generations (<=1 means every
// checkpoint is full).
func NewIncrSet(fullEvery int) *IncrSet { return ckpt.NewIncrSet(fullEvery) }

// AppendBenchRun appends one checkpoint-pipeline benchmark record to a
// BENCH_ckpt.json trajectory buffer.
func AppendBenchRun(existing []byte, rec CkptBenchRecord) []byte {
	return metrics.AppendRun(existing, rec)
}

// DecodeBenchTrajectory parses a BENCH_ckpt.json trajectory.
func DecodeBenchTrajectory(data []byte) ([]CkptBenchRecord, error) {
	return metrics.DecodeTrajectory(data)
}

// HumanBytes formats a byte count the way the paper's tables do.
func HumanBytes(n int64) string { return metrics.HumanBytes(n) }

// CompareBenchThroughput fails when cur's encode throughput regressed
// more than tolPct percent below prev's (zapc-benchdiff's check).
func CompareBenchThroughput(prev, cur CkptBenchRecord, tolPct float64) error {
	return metrics.CompareThroughput(prev, cur, tolPct)
}

// CompareBenchPeakBuffered fails when cur's peak streaming buffer grew
// more than tolPct percent above prev's (zapc-benchdiff's guard that no
// path went back to materializing whole images).
func CompareBenchPeakBuffered(prev, cur CkptBenchRecord, tolPct float64) error {
	return metrics.ComparePeakBuffered(prev, cur, tolPct)
}

// CompareBenchStoredBytes fails when cur's per-generation dedup-store
// growth rose more than tolPct percent above prev's (zapc-benchdiff's
// guard that frame compression and cross-generation dedup keep paying).
func CompareBenchStoredBytes(prev, cur CkptBenchRecord, tolPct float64) error {
	return metrics.CompareStoredBytes(prev, cur, tolPct)
}

// CompareBenchSuspend fails when cur's pre-copy suspension window grew
// more than tolPct percent above prev's (zapc-benchdiff's guard that
// the quiesce window stays O(residual dirty set), not O(image)).
func CompareBenchSuspend(prev, cur CkptBenchRecord, tolPct float64) error {
	return metrics.CompareSuspend(prev, cur, tolPct)
}

// CompareBenchRTO fails when cur's failover recovery window grew more
// than tolPct percent above prev's (zapc-benchdiff's guard that
// automatic recovery keeps its outage-per-failure budget).
func CompareBenchRTO(prev, cur CkptBenchRecord, tolPct float64) error {
	return metrics.CompareRTO(prev, cur, tolPct)
}

// CompareBenchStandbyRTO fails when cur's warm-standby recovery window
// grew more than tolPct percent over prev's, or when the standby's
// store-vs-promotion speedup fell below the order-of-magnitude floor
// (zapc-benchdiff's check).
func CompareBenchStandbyRTO(prev, cur CkptBenchRecord, tolPct float64) error {
	return metrics.CompareStandbyRTO(prev, cur, tolPct)
}

// CompareBenchCoordBarrier fails when cur's tree-coordinated barrier
// time grew more than tolPct percent above prev's (zapc-benchdiff's
// guard that fan-out/fan-in batching keeps the root off the O(N)
// serialization path).
func CompareBenchCoordBarrier(prev, cur CkptBenchRecord, tolPct float64) error {
	return metrics.CompareCoordBarrier(prev, cur, tolPct)
}

// Pipeline observability (see internal/trace). c.EnableTracing() turns
// on span tracing and metrics for the whole checkpoint/restart path —
// coordinated checkpoints, per-worker serialization lanes, store
// streams, network-state restore, supervision, and injected faults all
// appear on one virtual-clock timeline. Off by default; an untraced
// cluster pays only nil checks.
//
//	tr, reg := c.EnableTracing()
//	// ... run checkpoints, failovers, restarts ...
//	tr.WriteJSONL(f)                     // line-per-event log
//	tr.WriteChromeTrace(g)               // open in ui.perfetto.dev
//	fmt.Println(zapc.TracePhaseSummary(tr.Events()))
//	fmt.Println(reg.Summary())
//
// Every timestamp comes from the simulated clock, so two runs with the
// same seed export byte-identical traces.
type (
	// Tracer records spans and instants against the virtual clock.
	Tracer = trace.Tracer
	// TraceSpan is one open span (nil-safe: methods on nil no-op).
	TraceSpan = trace.Span
	// TraceEvent is one emitted begin/end/instant event.
	TraceEvent = trace.Event
	// TraceRegistry holds counters, gauges, and histograms.
	TraceRegistry = trace.Registry
	// TraceMetricPoint is one metric in a registry snapshot.
	TraceMetricPoint = trace.MetricPoint
	// TracePhaseStat aggregates latency for one span name.
	TracePhaseStat = trace.PhaseStat
)

// ErrBadTrace is returned (wrapped, with a line number) when a trace
// log fails to parse; readers reject garbage instead of panicking.
var ErrBadTrace = trace.ErrBadTrace

// ReadTraceJSONL parses a JSONL trace log as written by
// Tracer.WriteJSONL. Malformed input wraps ErrBadTrace.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) { return trace.ReadJSONL(r) }

// ChromeTraceBytes renders events as Chrome trace-event JSON (load in
// ui.perfetto.dev or chrome://tracing).
func ChromeTraceBytes(events []TraceEvent) ([]byte, error) { return trace.ChromeTrace(events) }

// TracePhaseStats aggregates per-phase latency from a trace.
func TracePhaseStats(events []TraceEvent) []TracePhaseStat { return trace.PhaseStats(events) }

// TracePhaseSummary formats the per-phase latency breakdown as a table.
func TracePhaseSummary(events []TraceEvent) string { return trace.PhaseSummary(events) }

// Causal trace analysis (see internal/trace/analyze.go). BuildTraceDAG
// reconstructs the span DAG from an event log — explicit parent links
// plus containment adoption for separately-rooted subsystems — and the
// critical-path functions decompose any operation or window into the
// slowest chain of attributed segments. FailoverRTOReports turns a
// traced crash-and-recover run into per-failover RTO/RPO decompositions.
type (
	// TraceDAG is the reconstructed span graph of one trace.
	TraceDAG = trace.DAG
	// TraceSpanNode is one reconstructed span in the DAG.
	TraceSpanNode = trace.SpanNode
	// TraceSegment is one attributed interval of a critical path.
	TraceSegment = trace.Segment
	// TraceStraggler is one entry of a fan-out straggler ranking.
	TraceStraggler = trace.Straggler
	// TraceRTOReport decomposes one completed failover into RTO/RPO and
	// labeled critical-path segments.
	TraceRTOReport = trace.RTOReport
)

// BuildTraceDAG reconstructs the span DAG from an event log.
func BuildTraceDAG(events []TraceEvent) *TraceDAG { return trace.BuildDAG(events) }

// TraceCriticalPath computes the critical path through one span.
func TraceCriticalPath(root *TraceSpanNode) []TraceSegment { return trace.CriticalPath(root) }

// TraceStragglerRanking ranks a fan-out span's children by completion
// time, slowest first.
func TraceStragglerRanking(parent *TraceSpanNode, childName string) []TraceStraggler {
	return trace.StragglerRanking(parent, childName)
}

// FailoverRTOReports returns one RTO/RPO decomposition per completed
// failover in the event log, in time order.
func FailoverRTOReports(events []TraceEvent) []TraceRTOReport {
	return trace.FailoverReports(events)
}

// ChromeTraceHighlightedBytes is ChromeTraceBytes with the given
// critical path rendered red and mirrored into a dedicated
// "critical-path" lane.
func ChromeTraceHighlightedBytes(events []TraceEvent, path []TraceSegment) ([]byte, error) {
	return trace.ChromeTraceHighlighted(events, path)
}

// FormatTraceCriticalPath renders a critical path as an aligned table.
func FormatTraceCriticalPath(segs []TraceSegment) string { return trace.FormatCriticalPath(segs) }

// FormatTraceStragglers renders a straggler ranking, slowest first.
func FormatTraceStragglers(rank []TraceStraggler) string { return trace.FormatStragglers(rank) }

// BenchSchema is the schema version stamped into new CkptBenchRecord
// trajectory entries.
const BenchSchema = metrics.BenchSchema

// CompareBenchSchema refuses to compare trajectory records written
// under different schema versions (zapc-benchdiff's first check).
func CompareBenchSchema(prev, cur CkptBenchRecord) error {
	return metrics.CompareSchema(prev, cur)
}

// ErrCorruptImage is returned (wrapped, naming the affected pod) when a
// checkpoint image fails CRC validation during LoadImages/RestartFromFS.
var ErrCorruptImage = cluster.ErrCorruptImage

// ErrTruncatedStream is returned (wrapped, naming the affected pod and
// the byte offset) when a checkpoint image stream dies before commit —
// a remote transfer aborted mid-flight or an armed truncation fault.
var ErrTruncatedStream = imagestore.ErrTruncatedStream

// Declarative fault kinds.
const (
	FaultCrashNode      = faultinject.ActCrashNode
	FaultCrashManager   = faultinject.ActCrashManager
	FaultRecoverManager = faultinject.ActRecoverManager
	FaultCorruptImage   = faultinject.ActCorruptImage
	FaultDropControl    = faultinject.ActDropControl
	FaultDelayControl   = faultinject.ActDelayControl
	FaultTruncateStream = faultinject.ActTruncateStream
	FaultTruncateReads  = faultinject.ActTruncateReads
)

// NewFaultInjector creates a fault injector wired to the cluster's
// simulation world, shared filesystem, and manager control plane. If
// the cluster has tracing enabled, fired faults appear on the timeline
// as instants on the "faults" track.
func NewFaultInjector(c *Cluster) *FaultInjector {
	inj := faultinject.New(c.W, c.FS)
	inj.ObservePhases(c.Mgr)
	inj.InterposeCtrl(c.Mgr)
	inj.SetTracer(c.Tracer(), c.Metrics())
	return inj
}

// Seeded chaos fuzzing over the recovery surface (see internal/chaos).
// A seed expands into a fault schedule; the runner executes it against
// a supervised reference workload and classifies the outcome against
// the global invariant (recovered-equivalent | named-error; never a
// hang, never corrupt state). Non-recovered runs minimize into JSON
// fixtures that form the regression corpus under testdata/chaos:
//
//	cfg := zapc.ChaosConfigForSeed(zapc.DefaultChaosConfig(), seed)
//	v, _ := zapc.NewChaosRunner(cfg).Run(seed, zapc.GenerateChaosSchedule(seed, cfg))
//	if v.Bug() { /* minimize, serialize, file a fixture */ }
type (
	// ChaosConfig pins one chaos scenario (workload, supervision
	// policy, watchdog deadline).
	ChaosConfig = chaos.Config
	// ChaosRunner executes (seed, schedule) pairs under one config.
	ChaosRunner = chaos.Runner
	// ChaosVerdict classifies one run against the invariant.
	ChaosVerdict = chaos.Verdict
	// ChaosOutcome is the verdict class.
	ChaosOutcome = chaos.Outcome
	// ChaosFixture is one replayable regression-corpus entry.
	ChaosFixture = chaos.Fixture
	// ChaosSweepResult is one seed's run within a corpus sweep.
	ChaosSweepResult = chaos.SweepResult
	// FaultSchedule is the serializable (JSON) form of a fault
	// schedule: symbolic targets, validated grammar.
	FaultSchedule = faultinject.Schedule
	// FaultSpecStep is one serializable schedule entry.
	FaultSpecStep = faultinject.SpecStep
	// FaultEnv resolves a FaultSchedule's symbolic targets against a
	// live cluster when binding.
	FaultEnv = faultinject.Env
)

// Chaos verdict outcomes.
const (
	ChaosRecovered    = chaos.OutRecovered
	ChaosNamedError   = chaos.OutNamedError
	ChaosHang         = chaos.OutHang
	ChaosCorruptState = chaos.OutCorrupt
	ChaosUnnamedError = chaos.OutUnnamedError
)

// DefaultChaosConfig is the canonical chaos scenario (see chaos.DefaultConfig).
func DefaultChaosConfig() ChaosConfig { return chaos.DefaultConfig() }

// ChaosConfigForSeed derives the per-seed scenario from a base config.
func ChaosConfigForSeed(base ChaosConfig, seed int64) ChaosConfig {
	return chaos.ConfigForSeed(base, seed)
}

// NewChaosRunner builds a runner for one chaos config.
func NewChaosRunner(cfg ChaosConfig) *ChaosRunner { return chaos.NewRunner(cfg) }

// GenerateChaosSchedule expands a seed into its fault schedule.
func GenerateChaosSchedule(seed int64, cfg ChaosConfig) FaultSchedule {
	return chaos.Generate(seed, cfg)
}

// ChaosSweep runs every seed in [lo, hi] and returns verdicts in order.
func ChaosSweep(base ChaosConfig, lo, hi int64) ([]ChaosSweepResult, error) {
	return chaos.Sweep(base, lo, hi)
}

// BuildChaosCorpus minimizes every non-recovered sweep result into a
// regression fixture.
func BuildChaosCorpus(results []ChaosSweepResult) ([]ChaosFixture, error) {
	return chaos.BuildCorpus(results)
}

// WriteChaosFixture writes a fixture under dir with its canonical name.
func WriteChaosFixture(dir string, f ChaosFixture) (string, error) {
	return chaos.WriteFixture(dir, f)
}

// LoadChaosCorpus reads every fixture under dir, sorted by file name.
func LoadChaosCorpus(dir string) ([]ChaosFixture, []string, error) {
	return chaos.LoadCorpus(dir)
}

// EncodeFaultSchedule serializes a validated schedule as deterministic
// indented JSON; DecodeFaultSchedule parses one strictly, with errors
// naming the offending step.
func EncodeFaultSchedule(s FaultSchedule) ([]byte, error) { return faultinject.EncodeSchedule(s) }

// DecodeFaultSchedule parses and validates a JSON fault schedule.
func DecodeFaultSchedule(data []byte) (FaultSchedule, error) {
	return faultinject.DecodeSchedule(data)
}

// Checkpoint modes.
const (
	// Snapshot checkpoints and resumes in place.
	Snapshot = core.Snapshot
	// Migrate checkpoints and destroys the source pods.
	MigrateMode = core.Migrate
)

// Convenient simulated-time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = 60 * sim.Second
)

// New creates a virtual cluster.
func New(cfg Config) *Cluster { return cluster.New(cfg) }

// DefaultCosts returns the calibrated 2005-era hardware model
// (BladeCenter-class nodes, GbE, FC SAN).
func DefaultCosts() Costs { return sim.DefaultCosts() }

// Apps lists the built-in workloads from the paper's evaluation: cpi,
// bt, bratu (PETSc SFI), povray.
func Apps() []string { return []string{"cpi", "bt", "bratu", "povray"} }
