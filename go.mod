module zapc

go 1.23
