package zapc

// TraceScenarioResult is everything RunTraceScenario produced: the
// tracer and registry to export, plus the supervisor and fault-injector
// evidence that the scenario actually exercised the failure path.
type TraceScenarioResult struct {
	Tracer  *Tracer
	Metrics *TraceRegistry
	Stats   SupervisorStats
	Faults  []FaultRecord
	Result  float64
}

// RunTraceScenario runs the canonical observability scenario: a
// four-endpoint job takes one explicit pre-copy live checkpoint early
// on, then runs under a supervisor taking periodic incremental
// checkpoints through the parallel serializer, a scripted fault crashes
// one node at half progress, the supervisor detects the failure and
// restarts the job from the newest valid generation on the survivors,
// and the job runs to completion. The whole story — live copy rounds,
// quiesce, per-worker serialization lanes, store streams, network
// drain/reinject, heartbeats, failover, injected fault — lands on one
// virtual-clock timeline. For a fixed cfg.Seed the exported trace is
// byte-identical across runs.
func RunTraceScenario(cfg ExperimentConfig) (*TraceScenarioResult, error) {
	cfg = cfg.defaults()
	const endpoints = 4
	c := clusterFor(endpoints, cfg)
	c.EnableTracing()
	job, err := c.Launch(cfg.spec("cpi", endpoints, false))
	if err != nil {
		return nil, err
	}
	// One pre-copy checkpoint before supervision starts, so the timeline
	// carries the live-round spans (ckpt/precopy, ckpt/precopy/round-N,
	// the stop decision and the quiesce barrier) next to the
	// stop-and-copy and incremental phases.
	if err := c.Drive(func() bool { return job.Progress() >= 0.15 }, runDeadline); err != nil {
		return nil, err
	}
	if _, err := c.Checkpoint(job, CheckpointOptions{
		Mode: Snapshot, Workers: 3, FlushTo: "trace/pre", Precopy: &PrecopyOptions{},
	}); err != nil {
		return nil, err
	}
	sup, err := c.Supervise(job, SupervisorPolicy{
		HeartbeatInterval: 50 * Millisecond,
		CheckpointEvery:   250 * Millisecond,
		Incremental:       true,
		Workers:           3,
		Retain:            2,
	})
	if err != nil {
		return nil, err
	}
	inj := NewFaultInjector(c)
	inj.SetProgressProbe(job.Progress, 0)
	if err := inj.Arm([]FaultStep{{
		Name: "crash-node", Progress: 0.5, Action: FaultCrashNode, Node: c.Nodes[1],
	}}); err != nil {
		return nil, err
	}
	if err := c.Drive(job.Finished, runDeadline); err != nil {
		return nil, err
	}
	sup.Stop()
	return &TraceScenarioResult{
		Tracer:  c.Tracer(),
		Metrics: c.Metrics(),
		Stats:   sup.Stats(),
		Faults:  inj.Fired(),
		Result:  job.Result(),
	}, nil
}
