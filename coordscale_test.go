package zapc_test

// Coordination-tree scaling: the control-plane refactor's claim is that
// the root's message load is O(N/fanout + fanout) instead of O(N) and
// that the fan-out barrier grows sub-linearly in the pod count. These
// tests measure real coordinated checkpoints (flat vs tree, same seed)
// with a non-zero per-message sender occupancy so the flat coordinator's
// serialization bottleneck is visible on the simulated clock.

import (
	"os"
	"testing"

	"zapc"
)

var coordScaleCfg = zapc.ExperimentConfig{Scale: 0.002, Work: 0.02}

// TestCoordScalingSublinear sweeps N in {4, 64, 256} at fanout 16: flat
// root traffic stays O(N) while the tree root's is bounded by
// O(N/fanout + fanout), and the tree barrier grows far slower than the
// pod count.
func TestCoordScalingSublinear(t *testing.T) {
	const fanout = 16
	var rows []zapc.CoordScalingRow
	for _, n := range []int{4, 64, 256} {
		row, err := zapc.RunCoordScaling(coordScaleCfg, n, fanout)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%+v", row)
		// The protocol exchanges a bounded number of phases, so flat
		// root traffic is a small multiple of N...
		if row.FlatRootMsgs < int64(3*n) {
			t.Errorf("N=%d: flat root messages %d implausibly low (< 3N)", n, row.FlatRootMsgs)
		}
		// ...while the tree root's is bounded by the same multiple of
		// (N/fanout + fanout), independent of N beyond that.
		bound := int64(5 * (n/fanout + fanout))
		if row.RootMsgs > bound {
			t.Errorf("N=%d: tree root messages %d exceed O(N/fanout+fanout) bound %d", n, row.RootMsgs, bound)
		}
		if n > fanout && row.RootMsgs >= row.FlatRootMsgs {
			t.Errorf("N=%d: tree root messages %d not below flat %d", n, row.RootMsgs, row.FlatRootMsgs)
		}
		rows = append(rows, row)
	}
	// 64x the pods must cost far less than 64x the barrier or the
	// suspend window (sub-linear growth), and the tree barrier must
	// beat the flat one outright once N clears the fanout.
	first, last := rows[0], rows[len(rows)-1]
	scale := int64(last.Pods / first.Pods)
	if growth := int64(last.Barrier) / int64(first.Barrier); growth > scale/8 {
		t.Errorf("tree barrier grew %dx over %dx pods — not sub-linear", growth, scale)
	}
	if growth := int64(last.Suspend) / int64(first.Suspend); growth > scale/8 {
		t.Errorf("suspend window grew %dx over %dx pods — not sub-linear", growth, scale)
	}
	if last.Barrier >= last.FlatBarrier/2 {
		t.Errorf("N=%d: tree barrier %v not well under flat %v", last.Pods, last.Barrier, last.FlatBarrier)
	}
}

// TestCoordScaling1024 is the full-scale point behind `make scale-check`
// (ZAPC_SCALE=1): a 1024-pod coordinated checkpoint, flat vs a
// fanout-16 tree. It is opt-in because simulating two 1024-endpoint
// clusters takes minutes under -race.
func TestCoordScaling1024(t *testing.T) {
	if os.Getenv("ZAPC_SCALE") == "" {
		t.Skip("set ZAPC_SCALE=1 to run the 1024-pod scaling point (make scale-check)")
	}
	const n, fanout = 1024, 16
	row, err := zapc.RunCoordScaling(coordScaleCfg, n, fanout)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", row)
	if row.Depth != 3 {
		t.Errorf("1024-pod fanout-16 tree depth = %d, want 3", row.Depth)
	}
	if row.FlatRootMsgs < 4*n {
		t.Errorf("flat root messages %d below 4N", row.FlatRootMsgs)
	}
	if bound := int64(5 * (n/fanout + fanout)); row.RootMsgs > bound {
		t.Errorf("tree root messages %d exceed O(N/fanout+fanout) bound %d", row.RootMsgs, bound)
	}
	if row.Barrier >= row.FlatBarrier/4 {
		t.Errorf("tree barrier %v not under a quarter of flat %v", row.Barrier, row.FlatBarrier)
	}
	// The tree buys its barrier win without costing the pods downtime.
	if row.Suspend > row.FlatSuspend+row.FlatSuspend/20 {
		t.Errorf("tree suspend window %v regressed over flat %v", row.Suspend, row.FlatSuspend)
	}
}
