package zapc

import (
	"fmt"
	"strings"

	"zapc/internal/metrics"
	"zapc/internal/sim"
	"zapc/internal/trace"
)

// FailoverRTORow is one point of the failover-availability experiment:
// a supervised job loses a node mid-run, and the row records how long
// the automatic recovery took (RTO), how much virtual time of work was
// lost (RPO), and the critical-path decomposition of the recovery
// window — which named phase the outage was actually spent in.
type FailoverRTORow struct {
	Pods        int
	Fanout      int // 0 = flat star
	Incremental bool
	// Report is the trace-derived decomposition of the (first)
	// failover: RTO window, RPO, and labeled critical-path segments.
	Report trace.RTOReport
	// SupRTO / SupRPO are the supervisor's own online measurements of
	// the same episode; the trace-derived figures must agree with them.
	SupRTO Duration
	SupRPO Duration
	// Promotions counts failovers served by promoting a warm standby
	// (zero on the store-restore path).
	Promotions int
	// Result is the job's final answer after the recovered run completed
	// (cross-path equivalence: promotion and store restore must converge
	// to the same value as an uninterrupted run).
	Result float64
	// Events is the scenario's full event log, for exports.
	Events []TraceEvent
}

// RunFailoverRTO measures one failover-availability point: a cpi job on
// pods endpoints runs under a supervisor taking periodic checkpoints
// (incremental or full-only chains, flat or fanout-ary coordinated
// restart), a scripted fault crashes one node at half progress, and the
// supervisor detects, decides, reloads the newest valid generation, and
// restarts the job on the survivors. The returned row carries both the
// supervisor's online rto/rpo figures and the trace analyzer's
// critical-path decomposition of the same window; the run is
// deterministic per cfg.Seed.
func RunFailoverRTO(cfg ExperimentConfig, pods, fanout int, incremental bool) (FailoverRTORow, error) {
	return runFailoverRTO(cfg, pods, fanout, incremental, false)
}

func runFailoverRTO(cfg ExperimentConfig, pods, fanout int, incremental, standby bool) (FailoverRTORow, error) {
	cfg = cfg.defaults()
	row := FailoverRTORow{Pods: pods, Fanout: fanout, Incremental: incremental}
	c := clusterFor(pods, cfg)
	c.EnableTracing()
	job, err := c.Launch(cfg.spec("cpi", pods, false))
	if err != nil {
		return row, err
	}
	sup, err := c.Supervise(job, SupervisorPolicy{
		HeartbeatInterval: 50 * Millisecond,
		CheckpointEvery:   250 * Millisecond,
		Incremental:       incremental,
		Workers:           3,
		Retain:            2,
		Fanout:            fanout,
	})
	if err != nil {
		return row, err
	}
	if standby {
		if _, err := c.AttachStandby(sup, StandbyConfig{}); err != nil {
			return row, err
		}
	}
	// The crash must land after the first committed generation or the
	// recovery (correctly) halts with nothing to restore — larger
	// configurations finish faster, so a fixed crash progress races the
	// first commit. Drive to the first commit, then crash at half
	// progress or just past wherever the run already is.
	if err := c.Drive(func() bool {
		return sup.Stats().Checkpoints >= 1 || job.Finished()
	}, runDeadline); err != nil {
		return row, err
	}
	crashAt := job.Progress() + 0.05
	if crashAt < 0.5 {
		crashAt = 0.5
	}
	if job.Finished() || crashAt >= 0.95 {
		return row, fmt.Errorf("rto %d pods: job outran the first checkpoint generation (progress %.2f)", pods, job.Progress())
	}
	inj := NewFaultInjector(c)
	inj.SetProgressProbe(job.Progress, 0)
	if err := inj.Arm([]FaultStep{{
		Name: "crash-node", Progress: crashAt, Action: FaultCrashNode, Node: c.Nodes[1],
	}}); err != nil {
		return row, err
	}
	if err := c.Drive(job.Finished, runDeadline); err != nil {
		return row, err
	}
	sup.Stop()
	stats := sup.Stats()
	if stats.Failovers == 0 {
		return row, fmt.Errorf("rto %d pods: scenario completed without a failover", pods)
	}
	row.SupRTO, row.SupRPO = stats.LastRTO, stats.LastRPO
	row.Promotions = stats.Promotions
	row.Result = job.Result()
	row.Events = c.Tracer().Events()
	reports := trace.FailoverReports(row.Events)
	if len(reports) == 0 {
		return row, fmt.Errorf("rto %d pods: supervisor reported %d failover(s) but the trace analyzer found none", pods, stats.Failovers)
	}
	row.Report = reports[len(reports)-1]
	// The offline decomposition must reconstruct the online measurement:
	// same window, and the named segments must cover (almost) all of it.
	if got, want := row.Report.RTO(), int64(row.SupRTO); got != want {
		return row, fmt.Errorf("rto %d pods: trace window %d ns disagrees with supervisor %d ns", pods, got, want)
	}
	if cov := row.Report.Coverage(); cov < 0.95 {
		return row, fmt.Errorf("rto %d pods: critical-path segments cover only %.1f%% of the failover window", pods, 100*cov)
	}
	if standby {
		if row.Promotions == 0 {
			return row, fmt.Errorf("rto %d pods: standby attached but the failover was not served by promotion", pods)
		}
		if load := row.Report.SegmentTotal(trace.SegLoad) + row.Report.SegmentTotal(trace.SegReconstruct); load != 0 {
			return row, fmt.Errorf("rto %d pods: promoted failover still spent %v loading/reconstructing from the store", pods, sim.Duration(load))
		}
	}
	return row, nil
}

// StandbyRTOResult pairs the warm-standby failover with its same-seed
// store-restore baseline — the standby-vs-store comparison of the
// availability experiment.
type StandbyRTOResult struct {
	Standby FailoverRTORow
	Store   FailoverRTORow
	// Speedup is the store baseline's RTO over the promoted standby's.
	Speedup float64
}

// RunStandbyRTO measures one standby-vs-store availability point: the
// exact RunFailoverRTO scenario run twice on the same seed — once with
// a warm standby attached (the failover must be served by promotion,
// with zero load/reconstruct time) and once restoring from the store.
func RunStandbyRTO(cfg ExperimentConfig, pods, fanout int, incremental bool) (StandbyRTOResult, error) {
	var res StandbyRTOResult
	st, err := runFailoverRTO(cfg, pods, fanout, incremental, true)
	if err != nil {
		return res, fmt.Errorf("standby arm: %w", err)
	}
	base, err := runFailoverRTO(cfg, pods, fanout, incremental, false)
	if err != nil {
		return res, fmt.Errorf("store arm: %w", err)
	}
	res.Standby, res.Store = st, base
	if rto := st.Report.RTO(); rto > 0 {
		res.Speedup = float64(base.Report.RTO()) / float64(rto)
	}
	return res, nil
}

// Stamp writes the standby-vs-store comparison into a bench trajectory
// record so zapc-benchdiff can gate both the absolute standby window
// and the order-of-magnitude speedup floor.
func (r StandbyRTOResult) Stamp(rec *metrics.CkptBenchRecord) {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	rec.StandbyRTOUs = us(r.Standby.Report.RTO())
	rec.StandbyStoreRTOUs = us(r.Store.Report.RTO())
	rec.StandbyCatchUpUs = us(r.Standby.Report.SegmentTotal(trace.SegCatchUp))
	rec.StandbyRTOSpeedup = r.Speedup
}

// StandbyRTOTable renders the standby-vs-store sweep: both arms of each
// configuration with the per-segment decomposition showing where the
// win concentrates (load/reconstruct vanish; catch-up stays bounded).
func StandbyRTOTable(rows []StandbyRTOResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-8s %-6s %-8s  %-12s %-12s  %-10s %-10s %-10s %-10s %-10s  %-8s\n",
		"pods", "coord", "chain", "path", "rto", "rpo", "detect", "load", "reconstr", "catchup", "agent", "speedup")
	line := func(r FailoverRTORow, path, speedup string) {
		coordName := "flat"
		if r.Fanout > 0 {
			coordName = fmt.Sprintf("fan-%d", r.Fanout)
		}
		chain := "full"
		if r.Incremental {
			chain = "incr"
		}
		rpo := sim.Duration(r.Report.RPOUs * 1e3)
		if r.Report.RPOUs < 0 {
			rpo = r.SupRPO
		}
		fmt.Fprintf(&b, "%-5d %-8s %-6s %-8s  %-12v %-12v  %-10v %-10v %-10v %-10v %-10v  %-8s\n",
			r.Pods, coordName, chain, path,
			sim.Duration(r.Report.RTO()), rpo,
			sim.Duration(r.Report.SegmentTotal(trace.SegDetect)),
			sim.Duration(r.Report.SegmentTotal(trace.SegLoad)),
			sim.Duration(r.Report.SegmentTotal(trace.SegReconstruct)),
			sim.Duration(r.Report.SegmentTotal(trace.SegCatchUp)),
			sim.Duration(r.Report.SegmentTotal(trace.SegRestartAgent)),
			speedup)
	}
	for _, row := range rows {
		line(row.Store, "store", "")
		line(row.Standby, "standby", fmt.Sprintf("%.1fx", row.Speedup))
	}
	return b.String()
}

// Stamp writes the availability point into a bench trajectory record so
// zapc-benchdiff can gate RTO regressions alongside the checkpoint-path
// figures.
func (r FailoverRTORow) Stamp(rec *metrics.CkptBenchRecord) {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	rec.RTOUs = us(r.Report.RTO())
	if r.Report.RPOUs >= 0 {
		rec.RPOUs = float64(r.Report.RPOUs)
	} else {
		rec.RPOUs = us(int64(r.SupRPO))
	}
	rec.RTODetectUs = us(r.Report.SegmentTotal(trace.SegDetect))
	rec.RTODecideUs = us(r.Report.SegmentTotal(trace.SegDecide))
	rec.RTOLoadUs = us(r.Report.SegmentTotal(trace.SegLoad))
	rec.RTOReconstructUs = us(r.Report.SegmentTotal(trace.SegReconstruct))
	rec.RTORestartBarrierUs = us(r.Report.SegmentTotal(trace.SegRestartBarrier))
	rec.RTORestartAgentUs = us(r.Report.SegmentTotal(trace.SegRestartAgent))
	rec.RTOResumeUs = us(r.Report.SegmentTotal(trace.SegResume))
	rec.RTOWaitUs = us(r.Report.SegmentTotal(trace.SegWait))
	rec.RTOCoveragePct = 100 * r.Report.Coverage()
}

// FailoverRTOTable renders the availability sweep: one line per
// configuration with the headline rto/rpo and the dominant segments.
func FailoverRTOTable(rows []FailoverRTORow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-8s %-6s  %-12s %-12s  %-10s %-10s %-10s %-10s %-10s\n",
		"pods", "coord", "chain", "rto", "rpo", "detect", "load", "reconstr", "barrier", "agent")
	for _, r := range rows {
		coordName := "flat"
		if r.Fanout > 0 {
			coordName = fmt.Sprintf("fan-%d", r.Fanout)
		}
		chain := "full"
		if r.Incremental {
			chain = "incr"
		}
		rpo := sim.Duration(r.Report.RPOUs * 1e3)
		if r.Report.RPOUs < 0 {
			rpo = r.SupRPO
		}
		fmt.Fprintf(&b, "%-5d %-8s %-6s  %-12v %-12v  %-10v %-10v %-10v %-10v %-10v\n",
			r.Pods, coordName, chain,
			sim.Duration(r.Report.RTO()), rpo,
			sim.Duration(r.Report.SegmentTotal(trace.SegDetect)),
			sim.Duration(r.Report.SegmentTotal(trace.SegLoad)),
			sim.Duration(r.Report.SegmentTotal(trace.SegReconstruct)),
			sim.Duration(r.Report.SegmentTotal(trace.SegRestartBarrier)),
			sim.Duration(r.Report.SegmentTotal(trace.SegRestartAgent)))
	}
	return b.String()
}
