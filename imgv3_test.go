package zapc_test

// Acceptance layer for the version-3 frame format and the
// content-deduplicated image store, exercised end to end through the
// public cluster API:
//
//   - a churn workload's incremental generations land in the dedup
//     store at least 30% smaller than the same records encoded with the
//     uncompressed version-2 framing;
//   - a chain whose records span all three on-disk format versions
//     (v1 base, v2 delta, v3 delta) reconstructs byte-identically to
//     the materialized image and restarts to the exact uninterrupted
//     result;
//   - the encoded bytes are a pure function of the logical image —
//     identical across worker counts, across streaming vs. buffered
//     production, and across runs, in both compression modes.

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"testing"

	"zapc"
	"zapc/internal/ckpt"
	"zapc/internal/imgfmt"
)

// grabStored reads every record under prefix through the given store
// (grabFlushed's analogue for a dedup store, where the filesystem path
// holds a manifest rather than the record bytes).
func grabStored(t *testing.T, st zapc.ImageStore, prefix string) map[string][]byte {
	t.Helper()
	paths := st.List(prefix)
	if len(paths) == 0 {
		t.Fatalf("no records stored under %q", prefix)
	}
	out := make(map[string][]byte, len(paths))
	for _, path := range paths {
		rc, err := st.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatal(err)
		}
		out[path] = data
	}
	return out
}

// reencodeV2 decodes one flushed record (full image or delta) and
// re-encodes it with the uncompressed version-2 framing, returning the
// v2 wire size — the bytes the same generation cost before this format
// version existed.
func reencodeV2(t *testing.T, path string, data []byte) int64 {
	t.Helper()
	v2 := imgfmt.StreamOpts{Version: imgfmt.StreamVersion}
	var buf bytes.Buffer
	if _, delta, err := imgfmt.SniffVersion(data); err != nil {
		t.Fatalf("%s: %v", path, err)
	} else if delta {
		d, err := ckpt.DecodeDeltaFrom(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := d.EncodeStreamWith(&buf, v2); err != nil {
			t.Fatal(err)
		}
	} else {
		img, err := ckpt.DecodeImageFrom(bytes.NewReader(data), 4)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := img.EncodeStreamWith(&buf, v2); err != nil {
			t.Fatal(err)
		}
	}
	return int64(buf.Len())
}

// TestV3ChurnStoredBytesReduction pins the headline storage win: with
// version-3 frames and the dedup store, each incremental generation of
// the write-heavy churn workload adds at least 30% fewer physical bytes
// than the identical records cost under the uncompressed version-2
// framing.
func TestV3ChurnStoredBytesReduction(t *testing.T) {
	c := zapc.New(zapc.Config{Nodes: 4, Seed: 99})
	ded := c.EnableDedupStore()
	job, err := c.Launch(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	incr := zapc.NewIncrSet(100) // one full base, then deltas
	const gens = 4
	var v3Incr, v2Incr int64
	var prevStored int64
	for i := 0; i < gens; i++ {
		driveTo(t, c, job, 0.18*float64(i+1))
		prefix := fmt.Sprintf("v3red/g%d", i)
		if _, err := c.Checkpoint(job, zapc.CheckpointOptions{
			Mode: zapc.Snapshot, Workers: 4, Incr: incr, FlushTo: prefix,
		}); err != nil {
			t.Fatal(err)
		}
		growth := ded.Usage().StoredBytes() - prevStored
		prevStored = ded.Usage().StoredBytes()
		var v2 int64
		for path, data := range grabStored(t, ded, prefix) {
			v2 += reencodeV2(t, path, data)
		}
		if i == 0 {
			continue // the full base is not an incremental generation
		}
		v3Incr += growth
		v2Incr += v2
	}
	if _, err := c.RunJob(job, eqDeadline); err != nil {
		t.Fatal(err)
	}
	if v3Incr <= 0 || v2Incr <= 0 {
		t.Fatalf("degenerate measurement: v3 stored %d, v2 wire %d", v3Incr, v2Incr)
	}
	ratio := float64(v3Incr) / float64(v2Incr)
	t.Logf("incremental generations: v3+dedup stores %d B vs v2 %d B (%.1f%% of baseline)",
		v3Incr, v2Incr, 100*ratio)
	if ratio > 0.7 {
		t.Fatalf("v3 stores only %.1f%% fewer bytes per incremental generation than v2, want >=30%%",
			100*(1-ratio))
	}
}

// TestMixedVersionChainRestore proves every format version decodes
// forever and chains compose across them: a base written in the
// version-1 TLV format, a delta in the version-2 chunked framing, and a
// delta in version-3 compressed frames reconstruct byte-identically to
// the materialized image, and a restart from that chain reproduces the
// exact uninterrupted result.
func TestMixedVersionChainRestore(t *testing.T) {
	const seed = 17
	want := refFor(t, seed, churnSpec())

	c := zapc.New(zapc.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	incr := zapc.NewIncrSet(100)
	var results []*zapc.CheckpointResult
	for i, p := range []float64{0.3, 0.5, 0.7} {
		driveTo(t, c, job, p)
		mode := zapc.Snapshot
		if i == 2 {
			// The last generation tears the pods down so the restart
			// below reinstates them from the chain.
			mode = zapc.MigrateMode
		}
		res, err := c.Checkpoint(job, zapc.CheckpointOptions{
			Mode: mode, Workers: 4, Incr: incr, FlushTo: fmt.Sprintf("mix/g%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	final := results[len(results)-1]
	for vip, img := range final.Images {
		pod := img.PodName
		// Record 0: the flushed v3 base, transcoded to the v1 format.
		base, err := c.FS.ReadFile(fmt.Sprintf("mix/g0/%s.img", pod))
		if err != nil {
			t.Fatalf("pod %v: %v", vip, err)
		}
		baseImg, err := ckpt.DecodeImageFrom(bytes.NewReader(base), 4)
		if err != nil {
			t.Fatalf("pod %v: %v", vip, err)
		}
		v1 := baseImg.Encode()
		// Record 1: the first delta, transcoded to the v2 framing. A
		// real mixed-version writer computes ParentSum over the bytes
		// its parent actually has on disk, so the link is rewritten to
		// the v1 base encoding.
		d1, err := c.FS.ReadFile(fmt.Sprintf("mix/g1/%s.delta", pod))
		if err != nil {
			t.Fatalf("pod %v: %v", vip, err)
		}
		delta1, err := ckpt.DecodeDeltaFrom(bytes.NewReader(d1))
		if err != nil {
			t.Fatalf("pod %v: %v", vip, err)
		}
		delta1.ParentSum = crc32.ChecksumIEEE(v1)
		var v2 bytes.Buffer
		if _, err := delta1.EncodeStreamWith(&v2, imgfmt.StreamOpts{Version: imgfmt.StreamVersion}); err != nil {
			t.Fatal(err)
		}
		// Record 2: the second delta in v3 frames, re-linked to the v2
		// parent the same way.
		d2, err := c.FS.ReadFile(fmt.Sprintf("mix/g2/%s.delta", pod))
		if err != nil {
			t.Fatalf("pod %v: %v", vip, err)
		}
		delta2, err := ckpt.DecodeDeltaFrom(bytes.NewReader(d2))
		if err != nil {
			t.Fatalf("pod %v: %v", vip, err)
		}
		delta2.ParentSum = crc32.ChecksumIEEE(v2.Bytes())
		var v3 bytes.Buffer
		if _, err := delta2.EncodeStream(&v3); err != nil {
			t.Fatal(err)
		}

		rebuilt, err := ckpt.ReconstructChain([][]byte{v1, v2.Bytes(), v3.Bytes()})
		if err != nil {
			t.Fatalf("pod %v: mixed-version chain: %v", vip, err)
		}
		if !bytes.Equal(rebuilt.Encode(), img.Encode()) {
			t.Fatalf("pod %v: mixed v1/v2/v3 chain differs from the materialized image", vip)
		}
	}
	if _, err := c.Restart(job, final, c.Nodes); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, eqDeadline); err != nil {
		t.Fatal(err)
	}
	if got := job.Result(); got != want {
		t.Fatalf("restart from mixed-version chain gave %v, uninterrupted run gave %v", got, want)
	}
}

// TestV3CrossConfigBitIdentity is the cross-configuration property
// test: one seeded checkpoint produces the same stored bytes whatever
// the worker count, whether the record streams into the store or is
// buffered and re-encoded afterward, and — per compression mode — the
// encoding is deterministic, with both modes carrying the identical
// logical image.
func TestV3CrossConfigBitIdentity(t *testing.T) {
	grab := func(workers int) (map[string][]byte, map[string]*ckpt.Image) {
		c := zapc.New(zapc.Config{Nodes: 4, Seed: 41})
		job, err := c.Launch(eqSpec())
		if err != nil {
			t.Fatal(err)
		}
		driveTo(t, c, job, 0.5)
		res, err := c.Checkpoint(job, zapc.CheckpointOptions{
			Mode: zapc.Snapshot, Workers: workers, FlushTo: "xcfg",
		})
		if err != nil {
			t.Fatal(err)
		}
		imgs := make(map[string]*ckpt.Image)
		for _, img := range res.Images {
			imgs["xcfg/"+img.PodName+".img"] = img
		}
		if _, err := c.RunJob(job, eqDeadline); err != nil {
			t.Fatal(err)
		}
		return grabFlushed(t, c, "xcfg"), imgs
	}

	flushed, imgs := grab(1)
	for _, w := range []int{2, 8} {
		other, _ := grab(w)
		diffRecords(t, fmt.Sprintf("workers=%d", w), flushed, other)
	}
	for path, img := range imgs {
		// Streaming vs. buffered: the record the checkpoint streamed
		// into the store equals a buffered re-encode of the image.
		var buf bytes.Buffer
		if _, err := img.EncodeStreamWith(&buf, imgfmt.StreamOpts{}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), flushed[path]) {
			t.Fatalf("%s: streamed record differs from buffered encode (%d vs %d bytes)",
				path, len(flushed[path]), buf.Len())
		}
		// Compression on/off: each mode deterministic, RAW never larger
		// than logical, and both decode to the identical image.
		var raw1, raw2 bytes.Buffer
		if _, err := img.EncodeStreamWith(&raw1, imgfmt.StreamOpts{NoCompress: true}); err != nil {
			t.Fatal(err)
		}
		if _, err := img.EncodeStreamWith(&raw2, imgfmt.StreamOpts{NoCompress: true}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw1.Bytes(), raw2.Bytes()) {
			t.Fatalf("%s: NoCompress encoding is not deterministic", path)
		}
		if buf.Len() >= raw1.Len() {
			t.Fatalf("%s: compressed record (%d B) not smaller than RAW (%d B)", path, buf.Len(), raw1.Len())
		}
		fromC, err := ckpt.DecodeImageFrom(bytes.NewReader(flushed[path]), 4)
		if err != nil {
			t.Fatal(err)
		}
		fromR, err := ckpt.DecodeImageFrom(bytes.NewReader(raw1.Bytes()), 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromC.Encode(), fromR.Encode()) {
			t.Fatalf("%s: compressed and RAW records decode to different images", path)
		}
	}
}
