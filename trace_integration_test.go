package zapc_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"zapc"
)

// runTraced runs the canonical traced crash-and-failover scenario and
// returns its result, mirroring trace events into the test log under
// -v.
func runTraced(t *testing.T, seed int64) *zapc.TraceScenarioResult {
	t.Helper()
	res, err := zapc.RunTraceScenario(zapc.ExperimentConfig{Seed: seed})
	if err != nil {
		t.Fatalf("RunTraceScenario: %v", err)
	}
	if testing.Verbose() {
		for _, ev := range res.Tracer.Events() {
			t.Logf("trace %s %s t=%d args=%v", ev.Ph, ev.Name, ev.T, ev.Args)
		}
	}
	return res
}

func traceJSONL(t *testing.T, res *zapc.TraceScenarioResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Tracer.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestTraceDeterminism is the contract the whole tracer is built
// around: two runs of the same seed export byte-identical JSONL and
// identical metric snapshots.
func TestTraceDeterminism(t *testing.T) {
	a := runTraced(t, 7)
	b := runTraced(t, 7)
	ja, jb := traceJSONL(t, a), traceJSONL(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same-seed trace exports differ (%d vs %d bytes)", len(ja), len(jb))
	}
	sa, _ := json.Marshal(a.Metrics.Snapshot())
	sb, _ := json.Marshal(b.Metrics.Snapshot())
	if !bytes.Equal(sa, sb) {
		t.Fatalf("same-seed metric snapshots differ:\n%s\n%s", sa, sb)
	}
	if len(ja) == 0 {
		t.Fatal("trace export is empty")
	}
}

// TestTraceSpansPresent checks that the scenario's timeline tells the
// whole story: checkpoint phases, per-worker lanes, store streams,
// network restore, supervision, and the injected fault all appear.
func TestTraceSpansPresent(t *testing.T) {
	res := runTraced(t, 2005)
	if res.Stats.Failovers == 0 {
		t.Fatal("scenario produced no failover; the crash fault did not bite")
	}
	if len(res.Faults) == 0 {
		t.Fatal("no faults fired")
	}
	names := map[string]bool{}
	for _, ev := range res.Tracer.Events() {
		names[ev.Name] = true
	}
	for _, want := range []string{
		"ckpt/coordinated",
		"ckpt/quiesce",
		"ckpt/net-ckpt",
		"ckpt/serialize",
		"ckpt/worker",
		"ckpt/precopy",
		"ckpt/precopy/round-1",
		"ckpt/precopy/stop",
		"ckpt/precopy/sync",
		"store/flush",
		"store/create",
		"restart/coordinated",
		"restart/net-restore",
		"supervisor/ckpt-cycle",
		"supervisor/failover",
		"fault/crash-node",
	} {
		if !names[want] {
			t.Errorf("timeline is missing %q", want)
		}
	}
	// The registry counted the same story.
	for _, metric := range []string{
		"ckpt_encode_bytes_total",
		"ckpt_ops_total",
		"ckpt_precopy_rounds_total",
		"store_write_bytes_total",
		"supervisor_heartbeats_total",
		"supervisor_failovers_total",
		"faults_injected_total",
	} {
		if res.Metrics.Counter(metric).Value() == 0 {
			t.Errorf("counter %s is zero", metric)
		}
	}
	if res.Metrics.Gauge("store_peak_buffered_bytes").Value() == 0 {
		t.Error("store_peak_buffered_bytes gauge is zero")
	}
}

// TestTraceExportRoundTrip checks JSONL parses back to the same events
// and the Chrome export is valid JSON with one entry per span/instant.
func TestTraceExportRoundTrip(t *testing.T) {
	res := runTraced(t, 11)
	data := traceJSONL(t, res)
	events, err := zapc.ReadTraceJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadTraceJSONL: %v", err)
	}
	if len(events) != res.Tracer.Len() {
		t.Fatalf("round trip lost events: %d != %d", len(events), res.Tracer.Len())
	}
	chrome, err := zapc.ChromeTraceBytes(events)
	if err != nil {
		t.Fatalf("ChromeTraceBytes: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	summary := zapc.TracePhaseSummary(events)
	for _, phase := range []string{"ckpt/serialize", "restart/net-restore"} {
		if !strings.Contains(summary, phase) {
			t.Errorf("phase summary missing %s:\n%s", phase, summary)
		}
	}
}

// TestTraceReaderRejectsGarbage confirms the named-error contract at
// the facade: corrupt input wraps ErrBadTrace, valid JSONL from a real
// run does not.
func TestTraceReaderRejectsGarbage(t *testing.T) {
	_, err := zapc.ReadTraceJSONL(strings.NewReader("{\"t\":-5,\"ph\":\"B\"}\n"))
	if !errors.Is(err, zapc.ErrBadTrace) {
		t.Fatalf("want ErrBadTrace, got %v", err)
	}
	_, err = zapc.ReadTraceJSONL(strings.NewReader("not json at all\n"))
	if !errors.Is(err, zapc.ErrBadTrace) {
		t.Fatalf("want ErrBadTrace for non-JSON, got %v", err)
	}
}

// TestBenchSchemaGuard exercises the trajectory version gate end to
// end: a fresh record carries the current schema, and mixing it with a
// pre-versioning record is refused.
func TestBenchSchemaGuard(t *testing.T) {
	cur := zapc.CkptBenchRecord{Schema: zapc.BenchSchema, EncodeMBps: 100}
	old := zapc.CkptBenchRecord{EncodeMBps: 100} // schema 0: written before versioning
	if err := zapc.CompareBenchSchema(cur, cur); err != nil {
		t.Fatalf("same-schema records must compare: %v", err)
	}
	err := zapc.CompareBenchSchema(old, cur)
	if err == nil {
		t.Fatal("schema mismatch must be refused")
	}
	if !strings.Contains(err.Error(), "schema") {
		t.Fatalf("refusal should name the schema: %v", err)
	}
	// Round-trip through the trajectory encoding keeps the version.
	data := zapc.AppendBenchRun(nil, cur)
	recs, err := zapc.DecodeBenchTrajectory(data)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Schema != zapc.BenchSchema {
		t.Fatalf("schema lost in round trip: %d", recs[0].Schema)
	}
}
