package zapc_test

// Restore-equivalence property, checked over several seeds: a job that
// is checkpointed — fully or incrementally — and restarted produces
// exactly the observable state of an uninterrupted run, and the
// incremental record chain reconstructs byte-for-byte to the full image
// the restart used.

import (
	"bytes"
	"fmt"
	"testing"

	"zapc"
	"zapc/internal/ckpt"
)

const eqDeadline = 4 * 3600 * zapc.Second

func eqSpec() zapc.JobSpec {
	return zapc.JobSpec{App: "cpi", Endpoints: 4, Work: 0.04, Scale: 0.002, WithDaemons: true}
}

// eqReference runs the job uninterrupted and returns its result.
func eqReference(t *testing.T, seed int64) float64 {
	t.Helper()
	c := zapc.New(zapc.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(eqSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, eqDeadline); err != nil {
		t.Fatal(err)
	}
	return job.Result()
}

func driveTo(t *testing.T, c *zapc.Cluster, job *zapc.Job, p float64) {
	t.Helper()
	if err := c.Drive(func() bool { return job.Progress() >= p }, eqDeadline); err != nil {
		t.Fatal(err)
	}
	if job.Finished() {
		t.Fatalf("job finished before reaching %.0f%% — raise Work", 100*p)
	}
}

func TestRestoreEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := eqReference(t, seed)

			// --- Full checkpoint, migrate, restart.
			c := zapc.New(zapc.Config{Nodes: 4, Seed: seed})
			job, err := c.Launch(eqSpec())
			if err != nil {
				t.Fatal(err)
			}
			driveTo(t, c, job, 0.5)
			ck, err := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.MigrateMode, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Restart(job, ck, c.Nodes); err != nil {
				t.Fatal(err)
			}
			if _, err := c.RunJob(job, eqDeadline); err != nil {
				t.Fatal(err)
			}
			if got := job.Result(); got != want {
				t.Fatalf("full checkpoint+restart result %v != uninterrupted %v", got, want)
			}

			// --- Incremental: full base at 30%, delta at 60%, restart
			// from the delta generation's materialized images.
			c2 := zapc.New(zapc.Config{Nodes: 4, Seed: seed})
			job2, err := c2.Launch(eqSpec())
			if err != nil {
				t.Fatal(err)
			}
			incr := zapc.NewIncrSet(10)
			driveTo(t, c2, job2, 0.3)
			if _, err := c2.Checkpoint(job2, zapc.CheckpointOptions{
				Mode: zapc.Snapshot, Workers: 4, Incr: incr, FlushTo: "eq/base",
			}); err != nil {
				t.Fatal(err)
			}
			driveTo(t, c2, job2, 0.6)
			dck, err := c2.Checkpoint(job2, zapc.CheckpointOptions{
				Mode: zapc.MigrateMode, Workers: 4, Incr: incr, FlushTo: "eq/delta",
			})
			if err != nil {
				t.Fatal(err)
			}

			// The delta chain — as flushed to the shared filesystem —
			// must reconstruct exactly the full image the restart will
			// use.
			for vip, img := range dck.Images {
				rec, err := c2.FS.ReadFile(fmt.Sprintf("eq/delta/%s.delta", img.PodName))
				if err != nil {
					t.Fatalf("pod %v: flushed delta: %v", vip, err)
				}
				full, err := c2.FS.ReadFile(fmt.Sprintf("eq/base/%s.img", img.PodName))
				if err != nil {
					t.Fatalf("pod %v: flushed base: %v", vip, err)
				}
				if _, err := ckpt.DecodeDelta(rec); err != nil {
					t.Fatalf("pod %v: second record is not a delta: %v", vip, err)
				}
				rebuilt, err := ckpt.ReconstructChain([][]byte{full, rec})
				if err != nil {
					t.Fatalf("pod %v: chain: %v", vip, err)
				}
				if !bytes.Equal(rebuilt.Encode(), img.Encode()) {
					t.Fatalf("pod %v: base+delta reconstruction differs from the materialized image", vip)
				}
			}

			if _, err := c2.Restart(job2, dck, c2.Nodes); err != nil {
				t.Fatal(err)
			}
			if _, err := c2.RunJob(job2, eqDeadline); err != nil {
				t.Fatal(err)
			}
			if got := job2.Result(); got != want {
				t.Fatalf("incremental checkpoint+restart result %v != uninterrupted %v", got, want)
			}
		})
	}
}
