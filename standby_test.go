package zapc_test

// Warm-standby replication plane, end to end: the promoted failover
// must be an order of magnitude faster than the store-restore baseline
// with the win concentrated in load/reconstruct (zero on the promoted
// path), the promoted state must be byte-identical to what a same-seed
// store restart would have reconstructed, and both paths must converge
// to the same application result deterministically.

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"zapc"
	"zapc/internal/ckpt"
	"zapc/internal/imagestore"
	"zapc/internal/metrics"
	"zapc/internal/trace"
)

// TestStandbyRTOSpeedup is the headline acceptance gate: on the
// canonical incremental-chain failover point the promoted standby
// serves recovery at least StandbySpeedupFloor times faster than the
// store-restore baseline, and the entire win comes from the vanished
// load/reconstruct segments.
func TestStandbyRTOSpeedup(t *testing.T) {
	res, err := zapc.RunStandbyRTO(zapc.ExperimentConfig{Seed: 11}, 4, 0, true)
	if err != nil {
		t.Fatalf("RunStandbyRTO: %v", err)
	}
	if res.Standby.Promotions < 1 {
		t.Fatal("failover was not served by promotion")
	}
	if res.Speedup < metrics.StandbySpeedupFloor {
		t.Fatalf("standby speedup %.1fx below the %.0fx floor (standby %v, store %v)",
			res.Speedup, metrics.StandbySpeedupFloor,
			zapc.Duration(res.Standby.Report.RTO()), zapc.Duration(res.Store.Report.RTO()))
	}
	if load := res.Standby.Report.SegmentTotal(trace.SegLoad) +
		res.Standby.Report.SegmentTotal(trace.SegReconstruct); load != 0 {
		t.Fatalf("promoted failover spent %v loading/reconstructing", zapc.Duration(load))
	}
	// The win must be where the design says it is: the store arm's
	// load/reconstruct dominates its RTO, and the standby's bounded
	// catch-up stays below one checkpoint period.
	storeLoad := res.Store.Report.SegmentTotal(trace.SegLoad) +
		res.Store.Report.SegmentTotal(trace.SegReconstruct)
	if storeLoad*2 < res.Store.Report.RTO() {
		t.Fatalf("store-arm load/reconstruct %v is not the dominant share of rto %v",
			zapc.Duration(storeLoad), zapc.Duration(res.Store.Report.RTO()))
	}
	if catch := res.Standby.Report.SegmentTotal(trace.SegCatchUp); catch >= int64(250*zapc.Millisecond) {
		t.Fatalf("standby catch-up %v exceeds one checkpoint period", zapc.Duration(catch))
	}
}

// TestStandbyCrossPathEquivalence runs both failover paths on the same
// seed across full/incremental chains and flat/fan-out-16 restart
// topologies: every configuration must be served by promotion with
// zero load/reconstruct, and both paths must land on the identical
// application result.
func TestStandbyCrossPathEquivalence(t *testing.T) {
	for _, tc := range []struct {
		pods, fanout int
		incremental  bool
	}{
		{4, 0, false}, {4, 0, true}, {18, 16, false}, {18, 16, true},
	} {
		tc := tc
		name := fmt.Sprintf("pods=%d/fanout=%d/incr=%v", tc.pods, tc.fanout, tc.incremental)
		t.Run(name, func(t *testing.T) {
			res, err := zapc.RunStandbyRTO(zapc.ExperimentConfig{Seed: 23}, tc.pods, tc.fanout, tc.incremental)
			if err != nil {
				t.Fatalf("RunStandbyRTO: %v", err)
			}
			if res.Standby.Promotions < 1 {
				t.Fatal("standby arm was not served by promotion")
			}
			if res.Standby.Result == 0 || res.Store.Result == 0 {
				t.Fatalf("a recovered run produced a zero result (standby %v, store %v)",
					res.Standby.Result, res.Store.Result)
			}
			if res.Standby.Result != res.Store.Result {
				t.Fatalf("promoted-standby result %v != same-seed store-restart result %v",
					res.Standby.Result, res.Store.Result)
			}
			if res.Speedup <= 1 {
				t.Fatalf("standby arm (%v) not faster than store arm (%v)",
					zapc.Duration(res.Standby.Report.RTO()), zapc.Duration(res.Store.Report.RTO()))
			}
		})
	}
}

// TestStandbyTraceDeterminism pins the replication plane into the
// simulator's determinism contract: two same-seed standby failovers
// produce the identical RTO decomposition and byte-identical event
// logs.
func TestStandbyTraceDeterminism(t *testing.T) {
	run := func() zapc.StandbyRTOResult {
		res, err := zapc.RunStandbyRTO(zapc.ExperimentConfig{Seed: 11}, 4, 0, true)
		if err != nil {
			t.Fatalf("RunStandbyRTO: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Standby.Report.RTO() != b.Standby.Report.RTO() || a.Speedup != b.Speedup {
		t.Fatalf("same-seed standby rto/speedup differ: %d/%.3f vs %d/%.3f",
			a.Standby.Report.RTO(), a.Speedup, b.Standby.Report.RTO(), b.Speedup)
	}
	if a.Standby.Report.Summary() != b.Standby.Report.Summary() {
		t.Fatalf("same-seed standby summaries differ:\n%s\nvs\n%s",
			a.Standby.Report.Summary(), b.Standby.Report.Summary())
	}
	if !reflect.DeepEqual(a.Standby.Events, b.Standby.Events) {
		t.Fatalf("same-seed standby event logs differ (%d vs %d events)",
			len(a.Standby.Events), len(b.Standby.Events))
	}
}

// TestStandbyMetricNamesConform is the observability satellite for the
// replication plane: a traced standby scenario that replicates, suffers
// a feed cut, and serves a promoted failover must register only
// scheme-conforming instruments, the standby_* family must be among
// them, and every one must appear in the Prometheus exposition.
func TestStandbyMetricNamesConform(t *testing.T) {
	c := zapc.New(zapc.Config{Nodes: 4, Seed: 41})
	c.EnableTracing()
	job, err := c.Launch(zapc.JobSpec{App: "cpi", Endpoints: 4, Work: 0.2, Scale: 0.002, WithDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, zapc.SupervisorPolicy{
		HeartbeatInterval: 50 * zapc.Millisecond,
		CheckpointEvery:   150 * zapc.Millisecond,
		Incremental:       true,
		Workers:           3,
		Retain:            2,
		Dir:               "sbmet",
	})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := c.AttachStandby(sup, zapc.StandbyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Exercise every instrument: clean replication first, then a cut
	// (sync-error counters), then a crash that promotion must serve.
	if err := c.Drive(func() bool {
		return plane.AckedSeq() >= 1 || job.Finished()
	}, eqDeadline); err != nil {
		t.Fatal(err)
	}
	if job.Finished() {
		t.Fatal("job finished before replication started — raise Work")
	}
	plane.Trunc().ArmWrites(1)
	if err := c.Drive(func() bool {
		return sup.Stats().ReplicaErrors >= 1 || job.Finished()
	}, eqDeadline); err != nil {
		t.Fatal(err)
	}
	crashAt := job.Progress() + 0.05
	if job.Finished() || crashAt >= 0.95 {
		t.Fatalf("job outran the feed cut (progress %.2f)", job.Progress())
	}
	inj := zapc.NewFaultInjector(c)
	inj.SetProgressProbe(job.Progress, 0)
	if err := inj.Arm([]zapc.FaultStep{{
		Name: "kill", Progress: crashAt, Action: zapc.FaultCrashNode, Node: c.Nodes[1],
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(job.Finished, eqDeadline); err != nil {
		t.Fatal(err)
	}
	sup.Stop()
	if sup.Stats().Promotions == 0 {
		t.Fatal("failover was not served by promotion")
	}

	reg := c.Metrics()
	if errs := reg.CheckNames(); len(errs) != 0 {
		t.Fatalf("metric naming violations: %v", errs)
	}
	want := map[string]bool{
		"standby_replicated_records_total": false,
		"standby_applied_gens_total":       false,
		"standby_applied_bytes_total":      false,
		"standby_sync_errors_total":        false,
		"standby_lag_gens":                 false,
		"supervisor_replica_syncs_total":   false,
		"supervisor_replica_errors_total":  false,
		"supervisor_promotions_total":      false,
	}
	for _, p := range reg.Snapshot() {
		if _, ok := want[p.Name]; ok && p.AliasOf == "" {
			want[p.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("standby scenario did not register %s", name)
		}
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	for name := range want {
		if !strings.Contains(prom.String(), "\n"+name+" ") && !strings.HasPrefix(prom.String(), name+" ") {
			t.Errorf("%s missing from the Prometheus exposition", name)
		}
	}
}

func readStoreFile(t *testing.T, st imagestore.Store, path string) []byte {
	t.Helper()
	rc, err := st.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

// TestStandbyShadowByteIdentity is the replicated-state contract at the
// byte level: after several applied generations, (a) the standby's
// local mirror holds record-for-record identical bytes to the
// primary's store, and (b) the shadow images — built by stepwise delta
// application as records arrived — encode byte-identically to a chain
// reconstruction from the primary's store, i.e. exactly what a store
// restart would have produced.
func TestStandbyShadowByteIdentity(t *testing.T) {
	c := zapc.New(zapc.Config{Nodes: 4, Seed: 31})
	job, err := c.Launch(zapc.JobSpec{App: "cpi", Endpoints: 4, Work: 0.2, Scale: 0.002, WithDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, zapc.SupervisorPolicy{
		HeartbeatInterval: 50 * zapc.Millisecond,
		CheckpointEvery:   120 * zapc.Millisecond,
		Incremental:       true,
		Workers:           3,
		Retain:            2,
		Dir:               "sbyte",
	})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := c.AttachStandby(sup, zapc.StandbyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Six applied generations cross a full-image boundary (FullEvery=4),
	// so the shadows carry a full base plus stepwise-applied deltas.
	if err := c.Drive(func() bool {
		return plane.AckedSeq() >= 5 || job.Finished()
	}, eqDeadline); err != nil {
		t.Fatal(err)
	}
	if job.Finished() {
		t.Fatalf("job finished before 6 generations replicated (acked %d) — raise Work", plane.AckedSeq())
	}
	sup.Stop()

	// The plane prunes its mirror (and generation list) behind the
	// newest applied full image, so what remains is exactly the live
	// chain the shadows were built from.
	gens := plane.AppliedGenerations()
	if len(gens) < 2 {
		t.Fatalf("only %d generations in the applied chain", len(gens))
	}
	primary := c.Mgr.Store()

	// (a) Mirror bytes: every record of every applied generation is on
	// the standby byte-for-byte. (Generations before the newest applied
	// full image may have been pruned from the mirror.)
	fullIdx := -1
	for i, g := range gens {
		if g.Full {
			fullIdx = i
		}
	}
	if fullIdx < 0 {
		t.Fatal("no full generation among the applied ones")
	}
	for _, g := range gens[fullIdx:] {
		files := primary.List(g.Dir)
		if len(files) == 0 {
			t.Fatalf("applied generation %s has no records on the primary", g.Dir)
		}
		for _, f := range files {
			pb := readStoreFile(t, primary, f)
			sb := readStoreFile(t, plane.LocalStore(), f)
			if !bytes.Equal(pb, sb) {
				t.Fatalf("record %s differs between primary (%d B) and standby mirror (%d B)",
					f, len(pb), len(sb))
			}
		}
	}

	// (b) Shadow images == chain reconstruction from the primary store.
	chains := imagestore.PodChains(primary.List(gens[fullIdx].Dir))
	if len(chains) == 0 {
		t.Fatalf("no pod chains in full generation %s", gens[fullIdx].Dir)
	}
	for i := fullIdx + 1; i < len(gens); i++ {
		for name := range chains {
			chains[name] = append(chains[name], fmt.Sprintf("%s/%s.delta", gens[i].Dir, name))
		}
	}
	shadows := plane.ShadowImages()
	byPod := make(map[string]*ckpt.Image, len(shadows))
	for _, img := range shadows {
		byPod[img.PodName] = img
	}
	if len(byPod) != len(chains) {
		t.Fatalf("%d shadow pods vs %d store chains", len(byPod), len(chains))
	}
	for name, paths := range chains {
		rebuilt, err := ckpt.ReconstructChainFrom(len(paths), func(i int) (io.ReadCloser, error) {
			return primary.Open(paths[i])
		})
		if err != nil {
			t.Fatalf("pod %s: store chain: %v", name, err)
		}
		shadow, ok := byPod[name]
		if !ok {
			t.Fatalf("pod %s has a store chain but no shadow image", name)
		}
		if !bytes.Equal(rebuilt.Encode(), shadow.Encode()) {
			t.Fatalf("pod %s: shadow image differs from the store-reconstructed chain", name)
		}
	}

	st := plane.Stats()
	if st.GensApplied < 6 || st.BytesApplied == 0 {
		t.Fatalf("implausible standby stats: %+v", st)
	}
}
