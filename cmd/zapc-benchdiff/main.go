// Command zapc-benchdiff guards the checkpoint pipeline against
// performance regressions. It reads a BENCH_ckpt.json trajectory (as
// appended by `zapc-bench -fig ckpt`) and compares the newest record
// against the one before it, exiting non-zero when the parallel
// encoder's host throughput dropped — or the streaming serializer's
// peak buffering, the pre-copy suspension window, the tree-coordinated
// barrier time, or the failover recovery window (RTO), grew — by more
// than the tolerance. The warm-standby point is gated twice: the
// promoted-failover RTO must not grow past the tolerance, and the
// standby-vs-store speedup must stay above the order-of-magnitude
// floor regardless of the previous record.
//
// Usage:
//
//	zapc-benchdiff [-tol 25] [BENCH_ckpt.json]
//
// With fewer than two records the check passes vacuously (first run of
// a fresh checkout has no baseline). Records carrying different schema
// versions are refused outright — a stale trajectory must be deleted
// and regenerated rather than silently compared across formats.
package main

import (
	"flag"
	"fmt"
	"os"

	"zapc"
)

func main() {
	tol := flag.Float64("tol", 25, "max tolerated encode-throughput regression, percent")
	flag.Parse()
	file := "BENCH_ckpt.json"
	if flag.NArg() > 0 {
		file = flag.Arg(0)
	}

	data, err := os.ReadFile(file)
	if os.IsNotExist(err) {
		fmt.Printf("zapc-benchdiff: %s not found; nothing to compare\n", file)
		return
	}
	if err != nil {
		fatal(err)
	}
	recs, err := zapc.DecodeBenchTrajectory(data)
	if err != nil {
		fatal(err)
	}
	if len(recs) < 2 {
		fmt.Printf("zapc-benchdiff: %s has %d record(s); need two to compare\n", file, len(recs))
		return
	}
	prev, cur := recs[len(recs)-2], recs[len(recs)-1]
	if err := zapc.CompareBenchSchema(prev, cur); err != nil {
		fatal(err)
	}
	fmt.Printf("zapc-benchdiff: %s: encode %.1f -> %.1f MiB/s, decode %.1f -> %.1f MiB/s, sim-speedup %.2fx -> %.2fx, delta reduction %.1fx -> %.1fx, peak buffered %d -> %d B, suspend %.0f -> %.0f us, stored/gen %d -> %d B\n",
		file, prev.EncodeMBps, cur.EncodeMBps, prev.DecodeMBps, cur.DecodeMBps,
		prev.SimSpeedup, cur.SimSpeedup,
		prev.BytesReduction, cur.BytesReduction, prev.PeakBufferedBytes, cur.PeakBufferedBytes,
		prev.SuspendUs, cur.SuspendUs, prev.StoredBytesPerGen, cur.StoredBytesPerGen)
	if prev.CoordBarrierUs > 0 || cur.CoordBarrierUs > 0 {
		fmt.Printf("zapc-benchdiff: coord barrier %.0f -> %.0f us (flat %.0f -> %.0f us), root msgs %d -> %d\n",
			prev.CoordBarrierUs, cur.CoordBarrierUs, prev.CoordFlatBarrierUs, cur.CoordFlatBarrierUs,
			prev.CoordRootMsgs, cur.CoordRootMsgs)
	}
	if prev.RTOUs > 0 || cur.RTOUs > 0 {
		fmt.Printf("zapc-benchdiff: failover rto %.0f -> %.0f us, rpo %.0f -> %.0f us (detect %.0f -> %.0f, load %.0f -> %.0f, barrier %.0f -> %.0f, agent %.0f -> %.0f us; coverage %.1f%%)\n",
			prev.RTOUs, cur.RTOUs, prev.RPOUs, cur.RPOUs,
			prev.RTODetectUs, cur.RTODetectUs, prev.RTOLoadUs, cur.RTOLoadUs,
			prev.RTORestartBarrierUs, cur.RTORestartBarrierUs,
			prev.RTORestartAgentUs, cur.RTORestartAgentUs, cur.RTOCoveragePct)
	}
	if prev.StandbyRTOUs > 0 || cur.StandbyRTOUs > 0 {
		fmt.Printf("zapc-benchdiff: standby rto %.0f -> %.0f us vs store %.0f -> %.0f us (speedup %.1fx -> %.1fx, catch-up %.0f -> %.0f us)\n",
			prev.StandbyRTOUs, cur.StandbyRTOUs, prev.StandbyStoreRTOUs, cur.StandbyStoreRTOUs,
			prev.StandbyRTOSpeedup, cur.StandbyRTOSpeedup, prev.StandbyCatchUpUs, cur.StandbyCatchUpUs)
	}
	if err := zapc.CompareBenchThroughput(prev, cur, *tol); err != nil {
		fatal(err)
	}
	if err := zapc.CompareBenchPeakBuffered(prev, cur, *tol); err != nil {
		fatal(err)
	}
	if err := zapc.CompareBenchSuspend(prev, cur, *tol); err != nil {
		fatal(err)
	}
	if err := zapc.CompareBenchStoredBytes(prev, cur, *tol); err != nil {
		fatal(err)
	}
	if err := zapc.CompareBenchCoordBarrier(prev, cur, *tol); err != nil {
		fatal(err)
	}
	if err := zapc.CompareBenchRTO(prev, cur, *tol); err != nil {
		fatal(err)
	}
	if err := zapc.CompareBenchStandbyRTO(prev, cur, *tol); err != nil {
		fatal(err)
	}
	fmt.Printf("zapc-benchdiff: within %.0f%% tolerance\n", *tol)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zapc-benchdiff: %v\n", err)
	os.Exit(1)
}
