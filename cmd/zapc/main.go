// Command zapc runs a distributed workload on the virtual cluster and
// demonstrates the three coordinated operations of the paper: snapshot
// (checkpoint and continue), migrate (checkpoint, stream, restart on
// other nodes), and recover (restart from the last on-disk checkpoint
// after a node failure).
//
// Usage:
//
//	zapc -app cpi -n 4 -action snapshot
//	zapc -app bt  -n 4 -action migrate
//	zapc -app bratu -n 4 -action recover
//	zapc -app povray -n 4 -action run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zapc"
)

func main() {
	app := flag.String("app", "cpi", "workload: cpi, bt, bratu, povray")
	n := flag.Int("n", 4, "number of application endpoints (pods)")
	action := flag.String("action", "snapshot", "scenario: run, snapshot, migrate, recover")
	work := flag.Float64("work", 0.25, "application runtime scale")
	scale := flag.Float64("scale", 1.0/16, "memory footprint scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 42, "simulation seed")
	export := flag.String("export", "", "directory to export checkpoint images to (snapshot action)")
	flag.Parse()

	if err := run(*app, *n, *action, *work, *scale, *seed, *export); err != nil {
		fmt.Fprintln(os.Stderr, "zapc:", err)
		os.Exit(1)
	}
}

func run(app string, n int, action string, work, scale float64, seed int64, export string) error {
	costs := zapc.DefaultCosts()
	costs.ImageCostScale = 1 / scale
	c := zapc.New(zapc.Config{Nodes: n, Seed: seed, Costs: &costs})
	job, err := c.Launch(zapc.JobSpec{
		App: app, Endpoints: n, Work: work, Scale: scale, WithDaemons: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("launched %s across %d pods on %d nodes\n", app, n, len(c.Nodes))

	deadline := 4 * 3600 * zapc.Second
	if err := c.Drive(func() bool { return job.Progress() >= 0.5 }, deadline); err != nil {
		return err
	}
	fmt.Printf("t=%v: application at %.0f%% progress\n", c.W.Now(), 100*job.Progress())

	switch action {
	case "run":
		// Nothing to coordinate; just finish.

	case "snapshot":
		res, err := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.Snapshot, FlushTo: "ckpt/demo"})
		if err != nil {
			return err
		}
		fmt.Printf("t=%v: coordinated checkpoint of %d pods in %v (network state: %v)\n",
			c.W.Now(), len(res.Images), res.Stats.Total, res.Stats.MaxNetCkpt())
		for _, a := range res.Stats.Agents {
			fmt.Printf("  agent %-12s suspend=%-10v net=%-10v standalone=%-12v image=%.1f MB (net-state %d B)\n",
				a.Pod, a.Suspend, a.NetCkpt, a.Standalone, float64(a.ImageBytes)/(1<<20), a.NetBytes)
		}
		fmt.Printf("  images flushed to shared storage under ckpt/demo/ (%d files)\n",
			len(c.FS.List("ckpt/demo")))
		if export != "" {
			if err := os.MkdirAll(export, 0o755); err != nil {
				return err
			}
			for _, path := range c.FS.List("ckpt/demo") {
				data, err := c.FS.ReadFile(path)
				if err != nil {
					return err
				}
				out := filepath.Join(export, filepath.Base(path))
				if err := os.WriteFile(out, data, 0o644); err != nil {
					return err
				}
				fmt.Printf("  exported %s (%d bytes); inspect with: go run ./cmd/zapc-inspect %s\n",
					out, len(data), out)
			}
		}

	case "migrate":
		targets := c.AddNodes((n+1)/2, 2) // consolidate onto half as many dual-CPU nodes
		res, err := c.Migrate(job, targets, true)
		if err != nil {
			return err
		}
		fmt.Printf("t=%v: migrated %d pods onto %d fresh nodes in %v\n",
			c.W.Now(), len(res.Pods), len(targets), res.Stats.Total)
		fmt.Printf("  checkpoint=%v stream=%v restart=%v (wire %0.1f MB)\n",
			res.Stats.Ckpt.Total, res.Stats.Transfer, res.Stats.Restart.Total,
			float64(res.Stats.WireBytes)/(1<<20))

	case "recover":
		res, err := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.Snapshot, FlushTo: "ckpt/latest"})
		if err != nil {
			return err
		}
		fmt.Printf("t=%v: periodic checkpoint taken (%v)\n", c.W.Now(), res.Stats.Total)
		c.Drive(func() bool { return job.Progress() >= 0.7 }, deadline)
		victim := c.Nodes[0]
		victim.Fail()
		fmt.Printf("t=%v: node %s failed; application lost\n", c.W.Now(), victim.Name())
		for _, p := range job.Pods {
			p.Destroy()
		}
		healthy := c.Nodes[1:]
		rr, err := c.Restart(job, res, healthy)
		if err != nil {
			return err
		}
		fmt.Printf("t=%v: restarted from last checkpoint on %d healthy nodes in %v\n",
			c.W.Now(), len(healthy), rr.Stats.Total)

	default:
		return fmt.Errorf("unknown action %q", action)
	}

	if _, err := c.RunJob(job, deadline); err != nil {
		return err
	}
	fmt.Printf("t=%v: application completed; result=%v\n", c.W.Now(), job.Result())
	return nil
}
