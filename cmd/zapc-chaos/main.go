// Command zapc-chaos drives the seeded chaos fuzzer over the recovery
// surface and maintains the regression corpus under testdata/chaos.
//
// Usage:
//
//	zapc-chaos -from 1 -to 64              # bounded fuzzing sweep
//	zapc-chaos -from 1 -to 64 -out DIR     # also write minimized fixtures
//	zapc-chaos -replay testdata/chaos      # regression gate over the corpus
//	zapc-chaos -from 7 -to 7 -trace DIR    # Perfetto timeline per non-recovered seed
//
// Sweep mode expands every seed into a fault schedule, runs it against
// the supervised reference workload, and checks the global invariant:
// the cluster recovers to a state exactly equivalent to an undisturbed
// reference run, or fails with a named error — never a hang, never
// corrupt state. Runs that do not recover are shrunk by the
// delta-debugging minimizer; with -out, each becomes a byte-
// deterministic JSON fixture (same seeds in, byte-identical files out).
// The exit status is non-zero if any seed violates the invariant.
//
// Replay mode re-runs every fixture in a corpus directory (or a single
// fixture file) and fails if any fixture stops reproducing its recorded
// verdict — the gate `make chaos` runs in CI.
//
// With -trace DIR, every non-recovered sweep seed is re-run with
// tracing enabled and its full story — pipeline spans, supervision
// decisions, fired faults, and the final verdict — is written as
// <dir>/seedNNNN.trace.json, loadable directly in ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"zapc"
	"zapc/internal/chaos"
)

func main() {
	from := flag.Int64("from", 1, "first seed of the sweep")
	to := flag.Int64("to", 24, "last seed of the sweep (inclusive)")
	out := flag.String("out", "", "directory to write minimized fixtures into")
	replay := flag.String("replay", "", "replay a corpus directory (or one fixture file) instead of sweeping")
	traceDir := flag.String("trace", "", "directory for Perfetto timelines of non-recovered seeds")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayCorpus(*replay))
	}
	os.Exit(sweep(*from, *to, *out, *traceDir))
}

func sweep(from, to int64, out, traceDir string) int {
	base := zapc.DefaultChaosConfig()
	results, err := zapc.ChaosSweep(base, from, to)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zapc-chaos: %v\n", err)
		return 1
	}
	counts := map[zapc.ChaosOutcome]int{}
	bugs := 0
	for _, res := range results {
		counts[res.Verdict.Outcome]++
		mark := "  "
		if res.Verdict.Bug() {
			mark = "!!"
			bugs++
		}
		if res.Verdict.Outcome != zapc.ChaosRecovered {
			fmt.Printf("%s seed %4d  %s\n", mark, res.Seed, res.Verdict)
			if res.Verdict.Detail != "" {
				fmt.Printf("     %s\n", res.Verdict.Detail)
			}
		}
	}
	fmt.Printf("swept seeds %d..%d: ", from, to)
	for _, o := range []zapc.ChaosOutcome{zapc.ChaosRecovered, zapc.ChaosNamedError,
		zapc.ChaosHang, zapc.ChaosCorruptState, zapc.ChaosUnnamedError} {
		if counts[o] > 0 {
			fmt.Printf("%s=%d ", o, counts[o])
		}
	}
	fmt.Println()

	if out != "" {
		corpus, err := zapc.BuildChaosCorpus(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zapc-chaos: %v\n", err)
			return 1
		}
		for _, f := range corpus {
			path, err := zapc.WriteChaosFixture(out, f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "zapc-chaos: %v\n", err)
				return 1
			}
			fmt.Printf("wrote %s (%s)\n", path, f.Note)
		}
	}
	if traceDir != "" {
		if err := exportTraces(results, traceDir); err != nil {
			fmt.Fprintf(os.Stderr, "zapc-chaos: %v\n", err)
			return 1
		}
	}
	if bugs > 0 {
		fmt.Fprintf(os.Stderr, "zapc-chaos: %d seed(s) violated the recovery invariant\n", bugs)
		return 1
	}
	return 0
}

// exportTraces re-runs every non-recovered seed traced and writes its
// Perfetto timeline.
func exportTraces(results []zapc.ChaosSweepResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, res := range results {
		if res.Verdict.Outcome == zapc.ChaosRecovered {
			continue
		}
		_, tr, _, err := chaos.NewRunner(res.Config).RunTraced(res.Seed, res.Schedule)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("seed%04d.trace.json", res.Seed))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("traced %s -> %s\n", res.Verdict, path)
	}
	return nil
}

func replayCorpus(path string) int {
	var fixtures []zapc.ChaosFixture
	var names []string
	if info, err := os.Stat(path); err == nil && !info.IsDir() {
		f, err := chaos.LoadFixture(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zapc-chaos: %v\n", err)
			return 1
		}
		fixtures, names = []zapc.ChaosFixture{f}, []string{filepath.Base(path)}
	} else {
		var err error
		fixtures, names, err = zapc.LoadChaosCorpus(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zapc-chaos: %v\n", err)
			return 1
		}
	}
	if len(fixtures) == 0 {
		fmt.Fprintf(os.Stderr, "zapc-chaos: no fixtures under %s\n", path)
		return 1
	}
	failed := 0
	for i, f := range fixtures {
		got, err := f.Replay()
		switch {
		case err != nil:
			fmt.Printf("FAIL %-40s %v\n", names[i], err)
			failed++
		case !got.Same(f.Verdict):
			fmt.Printf("FAIL %-40s replayed %s, recorded %s\n", names[i], got, f.Verdict)
			failed++
		default:
			fmt.Printf("ok   %-40s %s\n", names[i], got)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "zapc-chaos: %d fixture(s) stopped reproducing (%s)\n",
			failed, strings.Join(names, ", "))
		return 1
	}
	fmt.Printf("corpus ok: %d fixture(s) reproduce their recorded verdicts\n", len(fixtures))
	return 0
}
