// Command zapc-bench regenerates every table and figure of the paper's
// evaluation (§6) plus the design-choice ablations from DESIGN.md.
//
// Usage:
//
//	zapc-bench -fig 5          # Figure 5: completion time, Base vs ZapC
//	zapc-bench -fig 6a         # Figure 6a: checkpoint times
//	zapc-bench -fig 6b         # Figure 6b: restart times
//	zapc-bench -fig 6c         # Figure 6c: checkpoint image sizes
//	zapc-bench -fig net        # §6.2 in-text network-state series
//	zapc-bench -fig timeline   # Figure 2: per-agent checkpoint timeline
//	zapc-bench -fig sync       # ablation A1: sync placement
//	zapc-bench -fig redirect   # ablation A2: send-queue redirect
//	zapc-bench -fig reconnect  # ablation A3: reconnection scaling
//	zapc-bench -fig ckpt       # parallel/incremental checkpoint pipeline
//	zapc-bench -fig coord      # coordination-tree scaling, flat vs fan-out 16
//	zapc-bench -fig trace      # traced checkpoint–failover–restart run
//	zapc-bench -fig rto        # failover RTO/RPO sweep + standby-vs-store comparison
//	zapc-bench -fig all        # everything
//
// -fig ckpt additionally appends one record per run to the trajectory
// file named by -out (default BENCH_ckpt.json); zapc-benchdiff compares
// the last two records and fails on an encode-throughput regression.
//
// -fig trace runs the canonical supervised crash-and-failover scenario
// with tracing enabled and writes two artifacts alongside the
// trajectory file: a JSONL event log (-events, default BENCH_trace.jsonl)
// and a Chrome trace-event timeline (-trace, default BENCH_trace.json)
// that loads directly in ui.perfetto.dev. Both are byte-deterministic
// for a fixed -seed.
//
// -scale 1.0 reproduces paper-scale image sizes in memory (expensive);
// the default 1/16 shrinks footprints while the cost model still charges
// paper-scale times, so every reported number is directly comparable to
// the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zapc"
)

// coordBenchCfg shrinks the workload for the coordination-scaling
// points: the control plane is what is being measured, so the
// footprints are tiny and points up to 1024 pods stay cheap.
func coordBenchCfg(cfg zapc.ExperimentConfig) zapc.ExperimentConfig {
	return zapc.ExperimentConfig{Scale: 0.002, Work: 0.02, Seed: cfg.Seed}
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6a, 6b, 6c, net, timeline, sync, redirect, reconnect, ckpt, coord, trace, rto, all")
	scale := flag.Float64("scale", 1.0/16, "memory footprint scale (1.0 = paper scale)")
	work := flag.Float64("work", 0.25, "application runtime scale")
	ckpts := flag.Int("ckpts", 10, "checkpoints per measured run")
	appsFlag := flag.String("apps", "", "comma-separated app subset (default: all four)")
	seed := flag.Int64("seed", 2005, "simulation seed")
	workers := flag.Int("workers", 0, "checkpoint worker-pool width for -fig ckpt (<=0: one per host CPU)")
	out := flag.String("out", "BENCH_ckpt.json", "trajectory file appended by -fig ckpt")
	traceOut := flag.String("trace", "BENCH_trace.json", "Chrome trace-event timeline written by -fig trace")
	eventsOut := flag.String("events", "BENCH_trace.jsonl", "JSONL event log written by -fig trace")
	flag.Parse()

	cfg := zapc.ExperimentConfig{
		Scale:       *scale,
		Work:        *work,
		Checkpoints: *ckpts,
		Seed:        *seed,
		WithDaemons: true,
	}
	appList := zapc.Apps()
	if *appsFlag != "" {
		appList = strings.Split(*appsFlag, ",")
	}

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "zapc-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	var fig6 []zapc.Fig6Row
	fig6For := func() ([]zapc.Fig6Row, error) {
		if fig6 != nil {
			return fig6, nil
		}
		for _, app := range appList {
			for _, n := range zapc.NodeCounts(app) {
				row, err := zapc.RunFig6(cfg, app, n)
				if err != nil {
					return nil, err
				}
				fig6 = append(fig6, row)
			}
		}
		return fig6, nil
	}

	run("5", func() error {
		fmt.Println("== Figure 5: application completion time, Base (vanilla) vs ZapC pods ==")
		var rows []zapc.Fig5Row
		for _, app := range appList {
			for _, n := range zapc.NodeCounts(app) {
				row, err := zapc.RunFig5(cfg, app, n)
				if err != nil {
					return err
				}
				rows = append(rows, row)
			}
		}
		fmt.Println(zapc.Fig5Table(rows))
		return nil
	})

	run("6a", func() error {
		rows, err := fig6For()
		if err != nil {
			return err
		}
		fmt.Println("== Figure 6a: coordinated checkpoint times (10 snapshots/run) ==")
		fmt.Println(zapc.Fig6aTable(rows))
		return nil
	})

	run("6b", func() error {
		rows, err := fig6For()
		if err != nil {
			return err
		}
		fmt.Println("== Figure 6b: coordinated restart times (from a mid-run image) ==")
		fmt.Println(zapc.Fig6bTable(rows))
		return nil
	})

	run("6c", func() error {
		rows, err := fig6For()
		if err != nil {
			return err
		}
		fmt.Println("== Figure 6c: largest-pod checkpoint image sizes ==")
		fmt.Println(zapc.Fig6cTable(rows, cfg.Scale))
		return nil
	})

	run("net", func() error {
		rows, err := fig6For()
		if err != nil {
			return err
		}
		fmt.Println("== §6.2 in-text: network-state checkpoint time and size ==")
		for _, r := range rows {
			fmt.Printf("%-7s n=%-2d  net-ckpt(max)=%-12v net-restore(max)=%-12v net-state=%d B\n",
				r.App, r.Endpoints, r.NetCkptMax, r.NetRestoreMax, r.NetStateBytes)
		}
		fmt.Println()
		return nil
	})

	run("timeline", func() error {
		fmt.Println("== Figure 2: coordinated checkpoint timeline (one bar per agent) ==")
		fmt.Println("   S=suspend+block  N=network ckpt  C=standalone ckpt  .=sync/ctrl wait")
		c := zapc.New(zapc.Config{Nodes: 4, Seed: cfg.Seed})
		job, err := c.Launch(zapc.JobSpec{App: "bt", Endpoints: 4, Work: cfg.Work, Scale: cfg.Scale, WithDaemons: true})
		if err != nil {
			return err
		}
		if err := c.Drive(func() bool { return job.Progress() >= 0.4 }, 3600*zapc.Second); err != nil {
			return err
		}
		res, err := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.Snapshot})
		if err != nil {
			return err
		}
		var maxT zapc.Duration
		for _, a := range res.Stats.Agents {
			if a.Total > maxT {
				maxT = a.Total
			}
		}
		const width = 64
		for _, a := range res.Stats.Agents {
			seg := func(d zapc.Duration, ch byte) string {
				n := int(float64(d) / float64(maxT) * width)
				if d > 0 && n == 0 {
					n = 1
				}
				out := make([]byte, n)
				for i := range out {
					out[i] = ch
				}
				return string(out)
			}
			rest := a.Total - a.Suspend - a.NetCkpt - a.Standalone
			bar := seg(a.Suspend, 'S') + seg(a.NetCkpt, 'N') + seg(a.Standalone, 'C') + seg(rest, '.')
			if len(bar) > width {
				bar = bar[:width]
			}
			fmt.Printf("  %-10s |%-*s| %v\n", a.Pod, width, bar, a.Total)
		}
		fmt.Printf("  manager total %v; single sync overlapped with the standalone save\n\n", res.Stats.Total)
		return nil
	})

	run("sync", func() error {
		fmt.Println("== Ablation A1: single-sync overlap (Figure 2) vs naive ordering ==")
		for _, app := range appList {
			row, err := zapc.RunSyncAblation(cfg, app, 4)
			if err != nil {
				return err
			}
			fmt.Printf("%-7s n=4  overlapped=%-12v naive=%-12v saved=%v\n",
				row.App, row.Overlapped, row.Naive, row.Naive-row.Overlapped)
		}
		fmt.Println()
		return nil
	})

	run("redirect", func() error {
		fmt.Println("== Ablation A2: send-queue redirect during migration (§5) ==")
		row, err := zapc.RunRedirectAblation(cfg, "bt", 4)
		if err != nil {
			return err
		}
		fmt.Printf("bt n=4  restart wire bytes: plain=%d redirect=%d (saved %d)\n",
			row.PlainWireBytes, row.RedirWireBytes, row.PlainWireBytes-row.RedirWireBytes)
		fmt.Printf("        restart time: plain=%v redirect=%v\n\n", row.PlainRestart, row.RedirectRestart)
		return nil
	})

	run("ckpt", func() error {
		fmt.Println("== Parallel + incremental checkpoint pipeline ==")
		var rows []zapc.CkptPipelineRow
		for _, n := range []int{4, 8} {
			row, err := zapc.RunCkptPipeline(cfg, "cpi", n, *workers)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		fmt.Println(zapc.CkptPipelineTable(rows))
		// Append the 8-pod row to the trajectory so successive runs are
		// comparable with zapc-benchdiff. One coordination scaling point
		// (256 pods, fan-out 16) rides along so the benchdiff gate also
		// covers the tree barrier.
		rec := rows[len(rows)-1].Record(cfg, time.Now().UTC().Format(time.RFC3339))
		coordRow, err := zapc.RunCoordScaling(coordBenchCfg(cfg), 256, 16)
		if err != nil {
			return err
		}
		coordRow.Stamp(&rec)
		// One failover-availability point (the canonical 4-pod supervised
		// crash) rides along so the benchdiff gate also covers RTO/RPO —
		// measured as the standby-vs-store pair, so the same run stamps
		// the store-restore decomposition and the promoted-standby
		// speedup that zapc-benchdiff holds to the 10x floor.
		sbRes, err := zapc.RunStandbyRTO(cfg, 4, 0, true)
		if err != nil {
			return err
		}
		sbRes.Store.Stamp(&rec)
		sbRes.Stamp(&rec)
		prev, err := os.ReadFile(*out)
		if err != nil && !os.IsNotExist(err) {
			return err
		}
		if err := os.WriteFile(*out, zapc.AppendBenchRun(prev, rec), 0o644); err != nil {
			return err
		}
		fmt.Printf("appended run to %s (sim-speedup %.2fx, delta reduction %.1fx, encode %.0f MiB/s, peak buffered %d B)\n",
			*out, rec.SimSpeedup, rec.BytesReduction, rec.EncodeMBps, rec.PeakBufferedBytes)
		fmt.Printf("pre-copy downtime: suspend %.0f us vs stop-and-copy %.0f us (%.1fx) in %d rounds, %s resent\n",
			rec.SuspendUs, rec.ScSuspendUs, rec.ScSuspendUs/rec.SuspendUs,
			rec.PrecopyRounds, zapc.HumanBytes(rec.PrecopyResentBytes))
		fmt.Printf("coordination: %d pods fan-out %d barrier %.0f us (flat %.0f us), root msgs %d (flat %d)\n",
			rec.CoordPods, rec.CoordFanout, rec.CoordBarrierUs, rec.CoordFlatBarrierUs,
			rec.CoordRootMsgs, rec.CoordFlatRootMsgs)
		fmt.Printf("availability: failover rto %.0f us, rpo %.0f us (detect %.0f, load %.0f, barrier %.0f, agent %.0f us; coverage %.1f%%)\n",
			rec.RTOUs, rec.RPOUs, rec.RTODetectUs, rec.RTOLoadUs,
			rec.RTORestartBarrierUs, rec.RTORestartAgentUs, rec.RTOCoveragePct)
		fmt.Printf("standby: promoted rto %.0f us vs store %.0f us (%.1fx, catch-up %.0f us)\n\n",
			rec.StandbyRTOUs, rec.StandbyStoreRTOUs, rec.StandbyRTOSpeedup, rec.StandbyCatchUpUs)
		return nil
	})

	run("rto", func() error {
		fmt.Println("== Failover availability: RTO decomposition, flat vs fan-out 16, full vs incremental chains ==")
		var rows []zapc.FailoverRTORow
		for _, pt := range []struct {
			pods, fanout int
			incremental  bool
		}{
			{4, 0, false}, {4, 0, true}, {18, 16, false}, {18, 16, true},
		} {
			row, err := zapc.RunFailoverRTO(cfg, pt.pods, pt.fanout, pt.incremental)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		fmt.Println(zapc.FailoverRTOTable(rows))
		fmt.Println("== Warm standby vs store restore: both failover paths on the same seed ==")
		var pairs []zapc.StandbyRTOResult
		for _, pt := range []struct {
			pods, fanout int
			incremental  bool
		}{
			{4, 0, false}, {4, 0, true}, {18, 16, false}, {18, 16, true},
		} {
			pair, err := zapc.RunStandbyRTO(cfg, pt.pods, pt.fanout, pt.incremental)
			if err != nil {
				return err
			}
			pairs = append(pairs, pair)
		}
		fmt.Println(zapc.StandbyRTOTable(pairs))
		return nil
	})

	run("coord", func() error {
		fmt.Println("== Coordination-tree scaling: flat star vs fan-out 16 tree ==")
		rows, err := zapc.RunCoordScalingAll(coordBenchCfg(cfg), 16)
		if err != nil {
			return err
		}
		fmt.Println(zapc.CoordScalingTable(rows))
		return nil
	})

	run("trace", func() error {
		fmt.Println("== Traced checkpoint–failover–restart pipeline ==")
		res, err := zapc.RunTraceScenario(cfg)
		if err != nil {
			return err
		}
		ef, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		if err := res.Tracer.WriteJSONL(ef); err != nil {
			ef.Close()
			return err
		}
		if err := ef.Close(); err != nil {
			return err
		}
		chrome, err := zapc.ChromeTraceBytes(res.Tracer.Events())
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, chrome, 0o644); err != nil {
			return err
		}
		fmt.Println(zapc.TracePhaseSummary(res.Tracer.Events()))
		fmt.Println(res.Metrics.Summary())
		fmt.Printf("scenario: %d checkpoints, %d failover(s), %d fault(s) fired, result %.6f\n",
			res.Stats.Checkpoints, res.Stats.Failovers, len(res.Faults), res.Result)
		fmt.Printf("wrote %s (%d events) and %s (open in ui.perfetto.dev)\n\n",
			*eventsOut, res.Tracer.Len(), *traceOut)
		return nil
	})

	run("reconnect", func() error {
		fmt.Println("== Ablation A3: two-actor reconnection scaling (no deadlock schedule) ==")
		for _, n := range []int{4, 9, 16} {
			row, err := zapc.RunReconnectScaling(cfg, n)
			if err != nil {
				return err
			}
			fmt.Printf("bt n=%-2d  connections=%-4d net-restore(max)=%v\n",
				row.Endpoints, row.Connections, row.NetRestore)
		}
		fmt.Println()
		return nil
	})
}
