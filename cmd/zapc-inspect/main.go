// Command zapc-inspect decodes a pod checkpoint image (as exported by
// `zapc -action snapshot -export DIR`) and prints its structure: the
// pod header, every process with its program kind, memory regions, and
// descriptor table, and every saved socket with its connection state,
// queue sizes, and protocol-control-block sequence numbers.
//
// It demonstrates the portability of the intermediate image format: the
// image is parsed in a fresh process with no access to the simulation
// that produced it.
//
// With -trace it instead reads JSONL trace logs (as written by
// `zapc-bench -fig trace` or Tracer.WriteJSONL) and prints the
// per-phase latency breakdown plus a report of dangling spans (opened
// but never closed — an abort or a truncated log); -strict exits
// non-zero when any are found. Malformed trace input is rejected with a
// diagnostic naming the offending line — never a panic.
//
// -critpath reconstructs the span DAG and prints the critical path of
// every coordinated operation (checkpoint cycles, suspend windows,
// failovers, restarts) with a per-pod straggler ranking for the fan-out
// phases; -chrome FILE additionally writes a Chrome trace-event export
// with the critical path highlighted red in its own lane (open in
// ui.perfetto.dev). -rto prints the RTO/RPO decomposition of every
// completed failover. All trace-derived output is byte-deterministic
// for a given log.
//
// Usage:
//
//	zapc-inspect pod0.img [pod1.img ...]
//	zapc-inspect -trace BENCH_trace.jsonl [more.jsonl ...]
//	zapc-inspect -trace -strict BENCH_trace.jsonl
//	zapc-inspect -critpath [-chrome crit.json] BENCH_trace.jsonl
//	zapc-inspect -rto BENCH_trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"zapc/internal/ckpt"
	"zapc/internal/metrics"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/trace"
)

func main() {
	traceMode := flag.Bool("trace", false, "inspect JSONL trace logs: phase summary + dangling-span report")
	critMode := flag.Bool("critpath", false, "inspect JSONL trace logs: per-operation critical paths + straggler ranking")
	rtoMode := flag.Bool("rto", false, "inspect JSONL trace logs: RTO/RPO decomposition of completed failovers")
	strict := flag.Bool("strict", false, "exit non-zero when any inspected trace has dangling spans")
	chromeOut := flag.String("chrome", "", "with -critpath: write a Chrome trace-event export with the critical path highlighted to FILE")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: zapc-inspect <image-file> ...")
		fmt.Fprintln(os.Stderr, "       zapc-inspect -trace [-strict] <trace.jsonl> ...")
		fmt.Fprintln(os.Stderr, "       zapc-inspect -critpath [-chrome FILE] [-strict] <trace.jsonl> ...")
		fmt.Fprintln(os.Stderr, "       zapc-inspect -rto [-strict] <trace.jsonl> ...")
		os.Exit(2)
	}
	anyTraceMode := *traceMode || *critMode || *rtoMode
	if *chromeOut != "" && !*critMode {
		fmt.Fprintln(os.Stderr, "zapc-inspect: -chrome requires -critpath")
		os.Exit(2)
	}
	dangling := 0
	for _, path := range args {
		var err error
		if anyTraceMode {
			var n int
			n, err = inspectTraceFile(path, *traceMode, *critMode, *rtoMode, *chromeOut)
			dangling += n
		} else {
			err = inspect(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "zapc-inspect: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	if *strict && dangling > 0 {
		fmt.Fprintf(os.Stderr, "zapc-inspect: strict: %d dangling span(s)\n", dangling)
		os.Exit(1)
	}
}

// critOps are the coordinated operations -critpath decomposes, with the
// fan-out child phase each one ranks stragglers over.
var critOps = []struct{ op, fanout string }{
	{"supervisor/ckpt-cycle", "ckpt/agent"},
	{"supervisor/failover", "restart/agent"},
	{"ckpt/coordinated", "ckpt/agent"},
	{"restart/coordinated", "restart/agent"},
}

// inspectTraceFile runs the selected trace analyses over one JSONL log
// and returns the number of dangling spans found.
func inspectTraceFile(path string, phases, crit, rto bool, chromeOut string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return 0, err
	}
	d := trace.BuildDAG(events)
	dangling := d.DanglingSpans()
	if phases {
		var first, last int64
		instants := 0
		for i, ev := range events {
			if i == 0 || ev.T < first {
				first = ev.T
			}
			if ev.T > last {
				last = ev.T
			}
			if ev.Ph == trace.PhInstant {
				instants++
			}
		}
		fmt.Printf("%s: %d events (%d instants), timeline %s\n",
			path, len(events), instants, sim.Duration(last-first))
		fmt.Println(trace.PhaseSummary(events))
		if len(dangling) > 0 {
			fmt.Printf("dangling spans (%d): opened but never closed — excluded from phase totals\n", len(dangling))
			for _, s := range dangling {
				track := s.Track
				if track == "" {
					track = "-"
				}
				fmt.Printf("  id=%-4d %-10s %s (opened t=%v)\n", s.ID, track, s.Name, sim.Duration(s.Start))
			}
			fmt.Println()
		}
		if len(d.OrphanEnds) > 0 {
			fmt.Printf("orphan end events (%d): log starts mid-span\n\n", len(d.OrphanEnds))
		}
	}
	if crit {
		var allSegs []trace.Segment
		for _, top := range d.Top {
			for _, co := range critOps {
				if top.Name != co.op {
					continue
				}
				segs := trace.CriticalPath(top)
				allSegs = append(allSegs, segs...)
				fmt.Printf("%s: %s @ t=%v (%s)\n", path, top.Name,
					sim.Duration(top.Start), sim.Duration(top.Dur()))
				fmt.Print(trace.FormatCriticalPath(segs))
				if rank := stragglersUnder(top, co.fanout); len(rank) > 0 {
					fmt.Printf("straggler ranking (%s):\n", co.fanout)
					fmt.Print(trace.FormatStragglers(rank))
				}
				fmt.Println()
			}
		}
		if len(allSegs) == 0 {
			fmt.Printf("%s: no coordinated operations found\n", path)
		}
		if chromeOut != "" {
			data, err := trace.ChromeTraceHighlighted(events, allSegs)
			if err != nil {
				return len(dangling), err
			}
			if err := os.WriteFile(chromeOut, data, 0o644); err != nil {
				return len(dangling), err
			}
			fmt.Printf("wrote %s (critical path highlighted; open in ui.perfetto.dev)\n", chromeOut)
		}
	}
	if rto {
		reports := d.FailoverReports()
		if len(reports) == 0 {
			fmt.Printf("%s: no completed failover in trace\n", path)
		}
		for i, r := range reports {
			fmt.Printf("%s: failover %d @ t=%v\n", path, i+1, sim.Duration(r.MissT))
			fmt.Println(r.Summary())
		}
	}
	return len(dangling), nil
}

// stragglersUnder ranks the named fan-out children found under op,
// descending one level into an adopted coordinated operation if the
// agents hang off it rather than off op directly.
func stragglersUnder(op *trace.SpanNode, childName string) []trace.Straggler {
	if rank := trace.StragglerRanking(op, childName); len(rank) > 0 {
		return rank
	}
	for _, c := range op.Children {
		if rank := trace.StragglerRanking(c, childName); len(rank) > 0 {
			return rank
		}
	}
	return nil
}

func inspect(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	img, err := ckpt.DecodeImage(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: pod %q\n", path, img.PodName)
	fmt.Printf("  virtual IP     %v\n", img.VIP)
	fmt.Printf("  virtual clock  %v\n", img.VirtualTime)
	fmt.Printf("  image size     %s (%d bytes)\n", metrics.HumanBytes(int64(len(data))), len(data))
	fmt.Printf("  app payload    %s\n", metrics.HumanBytes(img.MemoryBytes()))

	fmt.Printf("  processes (%d):\n", len(img.Procs))
	for _, p := range img.Procs {
		fmt.Printf("    vpid %-3d kind=%-14s program-state=%s\n",
			p.VPID, p.Kind, metrics.HumanBytes(int64(len(p.ProgData))))
		for _, r := range p.Regions {
			fmt.Printf("      region %-8s %s\n", r.Name, metrics.HumanBytes(int64(len(r.Data))))
		}
		for _, fd := range p.FDs {
			fmt.Printf("      fd %-3d -> socket slot %d\n", fd.FD, fd.Slot)
		}
	}

	fmt.Printf("  sockets (%d):\n", len(img.Net.Sockets))
	for _, s := range img.Net.Sockets {
		switch {
		case s.Proto == netstack.TCP && s.State == netstack.StateListening:
			fmt.Printf("    slot %-2d tcp listening %v (backlog %d)\n", s.Slot, s.Local, s.ListenBacklog)
		case s.Proto == netstack.TCP:
			flags := ""
			if s.ShutWrite {
				flags += " shutW"
			}
			if s.PeerClosed {
				flags += " peerClosed"
			}
			if s.AppClosed {
				flags += " appClosed"
			}
			if s.PendingAcceptOf >= 0 {
				flags += fmt.Sprintf(" pendingAcceptOf=%d", s.PendingAcceptOf)
			}
			var sendBytes int
			for _, c := range s.SendChunks {
				sendBytes += len(c.Data)
			}
			fmt.Printf("    slot %-2d tcp %v %v->%v recvQ=%dB oob=%dB sendQ=%dB pcb{sent=%d acked=%d recv=%d}%s\n",
				s.Slot, s.State, s.Local, s.Remote,
				len(s.RecvData), len(s.OOBData), sendBytes,
				s.PCB.SndNxt, s.PCB.SndUna, s.PCB.RcvNxt, flags)
		case s.Proto == netstack.UDP:
			fmt.Printf("    slot %-2d udp %v->%v datagrams=%d peeked=%v\n",
				s.Slot, s.Local, s.Remote, len(s.Datagrams), s.Peeked)
		case s.Proto == netstack.RAW:
			fmt.Printf("    slot %-2d raw proto=%d datagrams=%d\n",
				s.Slot, s.RawProto, len(s.Datagrams))
		}
		if len(s.Opts) > 0 && s.Proto == netstack.TCP && s.State == netstack.StateEstablished {
			fmt.Printf("      options: %d saved (full get/setsockopt set)\n", len(s.Opts))
		}
	}
	return nil
}
