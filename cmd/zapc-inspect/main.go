// Command zapc-inspect decodes a pod checkpoint image (as exported by
// `zapc -action snapshot -export DIR`) and prints its structure: the
// pod header, every process with its program kind, memory regions, and
// descriptor table, and every saved socket with its connection state,
// queue sizes, and protocol-control-block sequence numbers.
//
// It demonstrates the portability of the intermediate image format: the
// image is parsed in a fresh process with no access to the simulation
// that produced it.
//
// With -trace it instead reads JSONL trace logs (as written by
// `zapc-bench -fig trace` or Tracer.WriteJSONL) and prints the
// per-phase latency breakdown. Malformed trace input is rejected with a
// diagnostic naming the offending line — never a panic.
//
// Usage:
//
//	zapc-inspect pod0.img [pod1.img ...]
//	zapc-inspect -trace BENCH_trace.jsonl [more.jsonl ...]
package main

import (
	"fmt"
	"os"

	"zapc/internal/ckpt"
	"zapc/internal/metrics"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/trace"
)

func main() {
	args := os.Args[1:]
	traceMode := false
	if len(args) > 0 && args[0] == "-trace" {
		traceMode = true
		args = args[1:]
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: zapc-inspect <image-file> ...")
		fmt.Fprintln(os.Stderr, "       zapc-inspect -trace <trace.jsonl> ...")
		os.Exit(2)
	}
	do := inspect
	if traceMode {
		do = inspectTrace
	}
	for _, path := range args {
		if err := do(path); err != nil {
			fmt.Fprintf(os.Stderr, "zapc-inspect: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	var first, last int64
	instants := 0
	for i, ev := range events {
		if i == 0 || ev.T < first {
			first = ev.T
		}
		if ev.T > last {
			last = ev.T
		}
		if ev.Ph == trace.PhInstant {
			instants++
		}
	}
	fmt.Printf("%s: %d events (%d instants), timeline %s\n",
		path, len(events), instants, sim.Duration(last-first))
	fmt.Println(trace.PhaseSummary(events))
	return nil
}

func inspect(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	img, err := ckpt.DecodeImage(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: pod %q\n", path, img.PodName)
	fmt.Printf("  virtual IP     %v\n", img.VIP)
	fmt.Printf("  virtual clock  %v\n", img.VirtualTime)
	fmt.Printf("  image size     %s (%d bytes)\n", metrics.HumanBytes(int64(len(data))), len(data))
	fmt.Printf("  app payload    %s\n", metrics.HumanBytes(img.MemoryBytes()))

	fmt.Printf("  processes (%d):\n", len(img.Procs))
	for _, p := range img.Procs {
		fmt.Printf("    vpid %-3d kind=%-14s program-state=%s\n",
			p.VPID, p.Kind, metrics.HumanBytes(int64(len(p.ProgData))))
		for _, r := range p.Regions {
			fmt.Printf("      region %-8s %s\n", r.Name, metrics.HumanBytes(int64(len(r.Data))))
		}
		for _, fd := range p.FDs {
			fmt.Printf("      fd %-3d -> socket slot %d\n", fd.FD, fd.Slot)
		}
	}

	fmt.Printf("  sockets (%d):\n", len(img.Net.Sockets))
	for _, s := range img.Net.Sockets {
		switch {
		case s.Proto == netstack.TCP && s.State == netstack.StateListening:
			fmt.Printf("    slot %-2d tcp listening %v (backlog %d)\n", s.Slot, s.Local, s.ListenBacklog)
		case s.Proto == netstack.TCP:
			flags := ""
			if s.ShutWrite {
				flags += " shutW"
			}
			if s.PeerClosed {
				flags += " peerClosed"
			}
			if s.AppClosed {
				flags += " appClosed"
			}
			if s.PendingAcceptOf >= 0 {
				flags += fmt.Sprintf(" pendingAcceptOf=%d", s.PendingAcceptOf)
			}
			var sendBytes int
			for _, c := range s.SendChunks {
				sendBytes += len(c.Data)
			}
			fmt.Printf("    slot %-2d tcp %v %v->%v recvQ=%dB oob=%dB sendQ=%dB pcb{sent=%d acked=%d recv=%d}%s\n",
				s.Slot, s.State, s.Local, s.Remote,
				len(s.RecvData), len(s.OOBData), sendBytes,
				s.PCB.SndNxt, s.PCB.SndUna, s.PCB.RcvNxt, flags)
		case s.Proto == netstack.UDP:
			fmt.Printf("    slot %-2d udp %v->%v datagrams=%d peeked=%v\n",
				s.Slot, s.Local, s.Remote, len(s.Datagrams), s.Peeked)
		case s.Proto == netstack.RAW:
			fmt.Printf("    slot %-2d raw proto=%d datagrams=%d\n",
				s.Slot, s.RawProto, len(s.Datagrams))
		}
		if len(s.Opts) > 0 && s.Proto == netstack.TCP && s.State == netstack.StateEstablished {
			fmt.Printf("      options: %d saved (full get/setsockopt set)\n", len(s.Opts))
		}
	}
	return nil
}
