package zapc_test

// Cross-topology bit-identity: the coordination tree changes when each
// agent hears a command, never what gets saved. Freezing the
// application at one simulated instant and checkpointing it under
// different fan-outs (and worker widths) must produce byte-identical
// images — and restarting any of them must land on the same result.
// This is the property that lets the tree be adopted without
// invalidating a single existing checkpoint or determinism contract:
// pod clocks freeze at suspension, so capture-time skew between
// topologies never reaches the image bytes.

import (
	"fmt"
	"testing"

	"zapc"
)

// coordFanRun freezes the seeded workload at half progress, checkpoints
// it through the given topology and worker width, and returns the
// flushed record bytes plus the job's post-restart result.
func coordFanRun(t *testing.T, seed int64, fanout, workers int) (map[string][]byte, float64) {
	t.Helper()
	c := zapc.New(zapc.Config{Nodes: 4, Seed: seed, Fanout: fanout})
	job, err := c.Launch(eqSpec())
	if err != nil {
		t.Fatal(err)
	}
	driveTo(t, c, job, 0.5)
	// Freeze every pod at the same instant, then let in-flight packets
	// settle, so the captured state cannot depend on when each agent's
	// quiesce command arrives under the topology being tested.
	for _, p := range job.Pods {
		p.Suspend()
	}
	c.W.RunUntil(c.W.Now() + zapc.Time(300*zapc.Millisecond))
	ck, err := c.Checkpoint(job, zapc.CheckpointOptions{
		Mode: zapc.MigrateMode, Workers: workers, FlushTo: "fan/img",
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := grabFlushed(t, c, "fan/img")
	if _, err := c.Restart(job, ck, c.Nodes); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, eqDeadline); err != nil {
		t.Fatal(err)
	}
	return recs, job.Result()
}

// TestCoordCrossTopologyBitIdentity pins checkpoint bytes and restart
// results across fanout {flat, 2, N, 16} and worker widths {0, 3} on
// one seed.
func TestCoordCrossTopologyBitIdentity(t *testing.T) {
	const seed = 41
	refRecs, refResult := coordFanRun(t, seed, 0, 0)
	if refResult != eqReference(t, seed) {
		t.Fatalf("restarted result %v != uninterrupted reference", refResult)
	}
	for _, tc := range []struct{ fanout, workers int }{
		{2, 0}, {2, 3}, {4, 0}, {16, 3},
	} {
		recs, result := coordFanRun(t, seed, tc.fanout, tc.workers)
		diffRecords(t, fmt.Sprintf("fanout=%d workers=%d", tc.fanout, tc.workers), refRecs, recs)
		if result != refResult {
			t.Errorf("fanout=%d workers=%d: restart result %v != flat %v",
				tc.fanout, tc.workers, result, refResult)
		}
	}
}
