package zapc_test

import (
	"reflect"
	"strings"
	"testing"

	"zapc"
	"zapc/internal/metrics"
)

// TestFailoverRTODeterminism pins the availability experiment's
// contract: two same-seed runs produce the identical RTO window, RPO,
// and critical-path decomposition, and the rendered report is
// byte-identical.
func TestFailoverRTODeterminism(t *testing.T) {
	run := func() zapc.FailoverRTORow {
		row, err := zapc.RunFailoverRTO(zapc.ExperimentConfig{Seed: 11}, 4, 0, true)
		if err != nil {
			t.Fatalf("RunFailoverRTO: %v", err)
		}
		return row
	}
	a, b := run(), run()
	if a.Report.RTO() != b.Report.RTO() || a.Report.RPOUs != b.Report.RPOUs {
		t.Fatalf("same-seed rto/rpo differ: %d/%d vs %d/%d",
			a.Report.RTO(), a.Report.RPOUs, b.Report.RTO(), b.Report.RPOUs)
	}
	if a.Report.Summary() != b.Report.Summary() {
		t.Fatalf("same-seed summaries differ:\n%s\nvs\n%s", a.Report.Summary(), b.Report.Summary())
	}
	if a.SupRTO != b.SupRTO || a.SupRPO != b.SupRPO {
		t.Fatalf("same-seed supervisor figures differ: %v/%v vs %v/%v",
			a.SupRTO, a.SupRPO, b.SupRTO, b.SupRPO)
	}
	// RunFailoverRTO itself enforces window agreement and >=95% segment
	// coverage; re-assert the headline invariants here so a future
	// loosening of the helper cannot silently weaken the contract.
	if int64(a.SupRTO) != a.Report.RTO() {
		t.Fatalf("trace window %d disagrees with supervisor %v", a.Report.RTO(), a.SupRTO)
	}
	if cov := a.Report.Coverage(); cov < 0.95 {
		t.Fatalf("segment coverage %.3f below 0.95", cov)
	}
	if a.SupRPO < 0 {
		t.Fatalf("negative rpo %v", a.SupRPO)
	}
}

// TestFailoverRTOStampsBenchRecord checks the bench-trajectory plumbing
// end to end: the stamped record carries the decomposition, the segment
// fields sum back to (at least 95% of) the headline RTO, and the
// benchdiff gate trips on a regression past tolerance.
func TestFailoverRTOStampsBenchRecord(t *testing.T) {
	row, err := zapc.RunFailoverRTO(zapc.ExperimentConfig{Seed: 11}, 4, 0, true)
	if err != nil {
		t.Fatalf("RunFailoverRTO: %v", err)
	}
	var rec metrics.CkptBenchRecord
	row.Stamp(&rec)
	if rec.RTOUs <= 0 {
		t.Fatalf("stamped rto_us %f not positive", rec.RTOUs)
	}
	segSum := rec.RTODetectUs + rec.RTODecideUs + rec.RTOLoadUs + rec.RTOReconstructUs +
		rec.RTORestartBarrierUs + rec.RTORestartAgentUs + rec.RTOResumeUs + rec.RTOWaitUs
	if segSum < 0.95*rec.RTOUs {
		t.Fatalf("segments (%.0f us) reconstruct only %.1f%% of rto %.0f us",
			segSum, 100*segSum/rec.RTOUs, rec.RTOUs)
	}
	if rec.RTOCoveragePct < 95 {
		t.Fatalf("stamped coverage %.1f%% below 95%%", rec.RTOCoveragePct)
	}
	good := rec
	bad := rec
	bad.RTOUs = rec.RTOUs * 1.5
	if err := zapc.CompareBenchRTO(good, bad, 25); err == nil {
		t.Fatal("50% RTO regression slipped past the 25% gate")
	}
	if err := zapc.CompareBenchRTO(good, good, 25); err != nil {
		t.Fatalf("unchanged RTO tripped the gate: %v", err)
	}
	// Records predating the RTO fields (zero-valued) pass vacuously.
	if err := zapc.CompareBenchRTO(metrics.CkptBenchRecord{}, bad, 25); err != nil {
		t.Fatalf("pre-RTO baseline must not gate: %v", err)
	}
}

// TestMetricNamesConform is the lint satellite's integration form:
// every instrument the canonical traced scenario registers must follow
// the naming scheme, and the new availability histograms must be among
// them.
func TestMetricNamesConform(t *testing.T) {
	res := runTraced(t, 7)
	if errs := res.Metrics.CheckNames(); len(errs) != 0 {
		t.Fatalf("metric naming violations: %v", errs)
	}
	want := map[string]bool{
		"supervisor_rto_us":           false,
		"supervisor_rpo_us":           false,
		"ckpt_suspend_window_ns":      false,
		"netstack_drained_msgs_total": false,
	}
	for _, p := range res.Metrics.Snapshot() {
		if _, ok := want[p.Name]; ok && p.AliasOf == "" {
			want[p.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("canonical scenario did not register %s", name)
		}
	}
}

// TestFailoverRTOReportsFacade checks the analyzer facade over a real
// scenario trace: the traced crash yields exactly the failovers the
// supervisor counted, and the critical-path render is deterministic
// for the same event log.
func TestFailoverRTOReportsFacade(t *testing.T) {
	res := runTraced(t, 7)
	events := res.Tracer.Events()
	reports := zapc.FailoverRTOReports(events)
	if len(reports) != res.Stats.Failovers {
		t.Fatalf("analyzer found %d failovers, supervisor counted %d", len(reports), res.Stats.Failovers)
	}
	// A crash mid-cycle may truthfully leave the aborted checkpoint
	// spans open; anything else dangling would be a tracer bug. Every
	// dangler must be a checkpoint-path span opened before recovery
	// completed.
	d := zapc.BuildTraceDAG(events)
	for _, s := range d.DanglingSpans() {
		if !strings.HasPrefix(s.Name, "ckpt/") {
			t.Fatalf("non-checkpoint span dangling: %s (track %s)", s.Name, s.Track)
		}
		if s.Start >= reports[0].ServeT {
			t.Fatalf("span %s dangles from after the recovery window", s.Name)
		}
	}
	tops := d.TopByName("supervisor/failover")
	if len(tops) == 0 {
		t.Fatal("no top-level failover span in trace")
	}
	p1 := zapc.FormatTraceCriticalPath(zapc.TraceCriticalPath(tops[0]))
	d2 := zapc.BuildTraceDAG(events)
	p2 := zapc.FormatTraceCriticalPath(zapc.TraceCriticalPath(d2.TopByName("supervisor/failover")[0]))
	if p1 != p2 {
		t.Fatalf("critical-path render not deterministic:\n%s\nvs\n%s", p1, p2)
	}
	if !reflect.DeepEqual(reports[0].Segments, zapc.FailoverRTOReports(events)[0].Segments) {
		t.Fatal("failover decomposition not deterministic")
	}
}
