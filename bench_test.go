package zapc_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). Each benchmark runs the corresponding experiment and
// reports the simulated metrics the paper plots via b.ReportMetric:
//
//   BenchmarkFig5*  — application completion time, Base vs ZapC
//                     (sim-ms per configuration, overhead-pct)
//   BenchmarkFig6a* — coordinated checkpoint time (sim-ms mean/max,
//                     network-checkpoint sim-ms)
//   BenchmarkFig6b* — coordinated restart time (sim-ms, network restore)
//   BenchmarkFig6c* — largest-pod checkpoint image size (MB, projected
//                     paper-scale MB, network-state bytes)
//   BenchmarkAblation* — the design-choice ablations from DESIGN.md
//
// Wall-clock ns/op measures the simulator, not the modeled system; the
// reported custom metrics carry the reproduced results.

import (
	"fmt"
	"testing"

	"zapc"
)

// benchCfg keeps the benchmark suite fast while preserving shape;
// cmd/zapc-bench runs the same harness at full fidelity.
func benchCfg() zapc.ExperimentConfig {
	return zapc.ExperimentConfig{
		Scale:       1.0 / 64,
		Work:        0.1,
		Checkpoints: 5,
		WithDaemons: true,
		Seed:        2005,
	}
}

func benchSizes(app string) []int {
	if app == "bt" {
		return []int{1, 4, 16}
	}
	return []int{1, 4, 16}
}

func BenchmarkFig5(b *testing.B) {
	for _, app := range zapc.Apps() {
		for _, n := range benchSizes(app) {
			b.Run(fmt.Sprintf("%s/n=%d", app, n), func(b *testing.B) {
				var row zapc.Fig5Row
				var err error
				for i := 0; i < b.N; i++ {
					row, err = zapc.RunFig5(benchCfg(), app, n)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(row.Base)/1e6, "base-sim-ms")
				b.ReportMetric(float64(row.ZapC)/1e6, "zapc-sim-ms")
				b.ReportMetric(row.OverheadPct, "overhead-pct")
			})
		}
	}
}

func BenchmarkFig6a(b *testing.B) {
	for _, app := range zapc.Apps() {
		for _, n := range benchSizes(app) {
			b.Run(fmt.Sprintf("%s/n=%d", app, n), func(b *testing.B) {
				var row zapc.Fig6Row
				var err error
				for i := 0; i < b.N; i++ {
					row, err = zapc.RunFig6(benchCfg(), app, n)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(row.CkptMean)/1e6, "ckpt-sim-ms")
				b.ReportMetric(float64(row.CkptStd)/1e6, "ckpt-std-sim-ms")
				b.ReportMetric(float64(row.NetCkptMax)/1e6, "net-ckpt-sim-ms")
			})
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	for _, app := range zapc.Apps() {
		for _, n := range benchSizes(app) {
			b.Run(fmt.Sprintf("%s/n=%d", app, n), func(b *testing.B) {
				var row zapc.Fig6Row
				var err error
				for i := 0; i < b.N; i++ {
					row, err = zapc.RunFig6(benchCfg(), app, n)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(row.Restart)/1e6, "restart-sim-ms")
				b.ReportMetric(float64(row.NetRestoreMax)/1e6, "net-restore-sim-ms")
				b.ReportMetric(float64(row.StandaloneMax)/1e6, "standalone-sim-ms")
			})
		}
	}
}

func BenchmarkFig6c(b *testing.B) {
	for _, app := range zapc.Apps() {
		for _, n := range benchSizes(app) {
			b.Run(fmt.Sprintf("%s/n=%d", app, n), func(b *testing.B) {
				var row zapc.Fig6Row
				var err error
				for i := 0; i < b.N; i++ {
					row, err = zapc.RunFig6(benchCfg(), app, n)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(row.MaxImage)/(1<<20), "image-MB")
				b.ReportMetric(float64(row.ProjectedImage)/(1<<20), "paper-scale-MB")
				b.ReportMetric(float64(row.NetStateBytes), "net-state-bytes")
			})
		}
	}
}

// BenchmarkNetworkState reproduces the in-text §6.2 series: the
// network-state checkpoint is milliseconds and its data a few KB.
func BenchmarkNetworkState(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("cpi/n=%d", n), func(b *testing.B) {
			var row zapc.Fig6Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = zapc.RunFig6(benchCfg(), "cpi", n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.NetCkptMax)/1e6, "net-ckpt-sim-ms")
			b.ReportMetric(float64(row.NetStateBytes), "net-state-bytes")
		})
	}
}

// BenchmarkCkptPipeline measures the parallel + incremental checkpoint
// pipeline: modeled coordinated-checkpoint time sequential vs pooled,
// the wire economics of delta generations, and the host wall-clock
// throughput of the parallel encoder. cmd/zapc-bench -fig ckpt runs the
// same harness and appends the results to the BENCH_ckpt.json
// trajectory.
func BenchmarkCkptPipeline(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("cpi/n=%d", n), func(b *testing.B) {
			var row zapc.CkptPipelineRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = zapc.RunCkptPipeline(benchCfg(), "cpi", n, 4)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.SeqCkpt)/1e6, "seq-ckpt-sim-ms")
			b.ReportMetric(float64(row.ParCkpt)/1e6, "par-ckpt-sim-ms")
			b.ReportMetric(row.SimSpeedup, "sim-speedup")
			b.ReportMetric(float64(row.FullBytes), "full-img-bytes")
			b.ReportMetric(float64(row.DeltaBytes), "delta-img-bytes")
			b.ReportMetric(row.EncodeMBps, "encode-MiBps")
		})
	}
}

// BenchmarkAblationSyncPlacement measures design choice A1: overlapping
// the standalone checkpoint with the manager synchronization (Figure 2)
// vs the naive wait-for-continue ordering.
func BenchmarkAblationSyncPlacement(b *testing.B) {
	for _, app := range []string{"cpi", "bt"} {
		b.Run(app, func(b *testing.B) {
			var row zapc.SyncAblationRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = zapc.RunSyncAblation(benchCfg(), app, 4)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.Overlapped)/1e6, "overlapped-sim-ms")
			b.ReportMetric(float64(row.Naive)/1e6, "naive-sim-ms")
		})
	}
}

// BenchmarkAblationSendQueueRedirect measures design choice A2: folding
// send-queue data into the peer's checkpoint stream during migration.
func BenchmarkAblationSendQueueRedirect(b *testing.B) {
	var row zapc.RedirectAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		row, err = zapc.RunRedirectAblation(benchCfg(), "bt", 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.PlainWireBytes), "plain-wire-bytes")
	b.ReportMetric(float64(row.RedirWireBytes), "redirect-wire-bytes")
}

// BenchmarkAblationReconnect measures design choice A3: two-actor
// connectivity recovery scaling with the number of connections.
func BenchmarkAblationReconnect(b *testing.B) {
	for _, n := range []int{4, 9, 16} {
		b.Run(fmt.Sprintf("bt/n=%d", n), func(b *testing.B) {
			var row zapc.ReconnectScalingRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = zapc.RunReconnectScaling(benchCfg(), n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.Connections), "connections")
			b.ReportMetric(float64(row.NetRestore)/1e6, "net-restore-sim-ms")
		})
	}
}
