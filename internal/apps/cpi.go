package apps

import (
	"math"

	"zapc/internal/imgfmt"
	"zapc/internal/mpi"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// CPI is the parallel π calculation shipped with MPICH-2: midpoint-rule
// integration of 4/(1+x²) over [0,1], intervals strided across ranks,
// followed by a reduce at rank 0 and a broadcast of the result. It is
// almost entirely compute-bound, with communication only at startup and
// completion — the paper's low-communication extreme.
type CPI struct {
	Comm *mpi.Comm

	Cfg       Config
	Intervals uint64
	Block     uint64
	NextI     uint64
	Partial   float64
	Phase     int
	Pi        float64
	Done      bool
	bcastBuf  []byte
}

// NewCPI builds a CPI endpoint. The interval count is fixed (accuracy
// and host cost stay constant); Work scales the simulated duration via
// the per-interval cost, so Work=1 approximates the paper-scale runtime
// shape.
func NewCPI(cfg Config) *CPI {
	block := uint64(250 / cfg.work())
	if block < 10 {
		block = 10
	}
	return &CPI{
		Comm:      cfg.comm(),
		Cfg:       cfg,
		Intervals: 2_000_000,
		Block:     block,
		NextI:     uint64(cfg.Rank),
	}
}

// Step implements vos.Program.
func (c *CPI) Step(ctx *vos.Context) vos.StepResult {
	switch c.Phase {
	case 0:
		if !c.Comm.Init(ctx) {
			return c.Comm.Block()
		}
		ensureBallast(ctx, "cpi", c.Cfg.Size, c.Cfg.scale())
		c.Phase = 1
		return vos.Yield(0)
	case 1: // integrate one block of intervals
		h := 1.0 / float64(c.Intervals)
		n := uint64(0)
		for c.NextI < c.Intervals && n < c.Block {
			x := h * (float64(c.NextI) + 0.5)
			c.Partial += 4.0 / (1.0 + x*x)
			c.NextI += uint64(c.Cfg.Size)
			n++
		}
		cost := sim.Duration(float64(n) * 20000 * c.Cfg.work()) // 20 µs/interval at Work=1
		if c.NextI < c.Intervals {
			return vos.Yield(cost)
		}
		c.Partial *= h
		c.Phase = 2
		return vos.Yield(cost)
	case 2: // reduce partial sums at root
		pi, done := c.Comm.ReduceFloat64(ctx, c.Partial, 0, func(a, b float64) float64 { return a + b })
		if !done {
			return c.Comm.Block()
		}
		if c.Cfg.Rank == 0 {
			c.bcastBuf = f64Bytes([]float64{pi})
		}
		c.Phase = 3
		return vos.Yield(0)
	case 3: // broadcast the result
		if !c.Comm.Bcast(ctx, &c.bcastBuf, 0) {
			return c.Comm.Block()
		}
		c.Pi = bytesF64(c.bcastBuf)[0]
		c.Done = true
		return vos.Exit(0)
	}
	return vos.Exit(9)
}

// Finished implements Status.
func (c *CPI) Finished() bool { return c.Done }

// Result implements Status (the computed π).
func (c *CPI) Result() float64 { return c.Pi }

// Progress implements Status.
func (c *CPI) Progress() float64 {
	if c.Done {
		return 1
	}
	if c.Intervals == 0 {
		return 0
	}
	return math.Min(1, float64(c.NextI)/float64(c.Intervals))
}

// Kind implements vos.Program.
func (c *CPI) Kind() string { return KindCPI }

// Save implements vos.Program.
func (c *CPI) Save(e *imgfmt.Encoder) error {
	e.Begin(1)
	if err := c.Comm.Save(e); err != nil {
		return err
	}
	e.End()
	e.Int(2, int64(c.Cfg.Rank))
	e.Int(3, int64(c.Cfg.Size))
	e.Float64(4, c.Cfg.Scale)
	e.Float64(5, c.Cfg.Work)
	e.Uint(6, c.Intervals)
	e.Uint(7, c.Block)
	e.Uint(8, c.NextI)
	e.Float64(9, c.Partial)
	e.Int(10, int64(c.Phase))
	e.Float64(11, c.Pi)
	e.Bool(12, c.Done)
	e.Bytes(13, c.bcastBuf)
	return nil
}

// Restore implements vos.Program.
func (c *CPI) Restore(d *imgfmt.Decoder) error {
	sec, err := d.Section(1)
	if err != nil {
		return err
	}
	c.Comm = &mpi.Comm{}
	if err := c.Comm.Restore(sec); err != nil {
		return err
	}
	rank, err := d.Int(2)
	if err != nil {
		return err
	}
	size, err := d.Int(3)
	if err != nil {
		return err
	}
	c.Cfg.Rank, c.Cfg.Size = int(rank), int(size)
	if c.Cfg.Scale, err = d.Float64(4); err != nil {
		return err
	}
	if c.Cfg.Work, err = d.Float64(5); err != nil {
		return err
	}
	if c.Intervals, err = d.Uint(6); err != nil {
		return err
	}
	if c.Block, err = d.Uint(7); err != nil {
		return err
	}
	if c.NextI, err = d.Uint(8); err != nil {
		return err
	}
	if c.Partial, err = d.Float64(9); err != nil {
		return err
	}
	ph, err := d.Int(10)
	if err != nil {
		return err
	}
	c.Phase = int(ph)
	if c.Pi, err = d.Float64(11); err != nil {
		return err
	}
	if c.Done, err = d.Bool(12); err != nil {
		return err
	}
	buf, err := d.Bytes(13)
	if err != nil {
		return err
	}
	c.bcastBuf = append([]byte(nil), buf...)
	return nil
}
