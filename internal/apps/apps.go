// Package apps implements miniature but faithful versions of the four
// distributed applications the paper evaluates (§6):
//
//   - CPI — parallel π integration with basic MPI primitives, almost
//     entirely compute-bound (MPICH-2's example program);
//   - BT — a block-structured NAS-style solver with substantial halo
//     communication on a square process grid;
//   - Bratu — the PETSc SFI (solid fuel ignition) example: a Jacobi
//     solver for ∆u + λeᵘ = 0 on a distributed strip-partitioned grid
//     with moderate communication;
//   - POV-Ray — a master/worker parallel ray tracer, CPU-bound, in the
//     PVM style.
//
// Every application is an ordinary message-passing program written
// against internal/mpi and internal/vos with no knowledge of
// checkpointing — transparency comes from the layers below. All state,
// including communicators and solver grids, is explicit and
// serializable, and every run produces a deterministic Result so tests
// can verify bit-exact equivalence between interrupted and
// uninterrupted executions.
//
// Memory footprints follow the paper's Figure 6c shape: per-endpoint
// image mass shrinks roughly linearly in the node count for CPI, BT and
// Bratu, and stays constant for POV-Ray. A Scale factor shrinks the
// paper-scale footprints so the full experiment suite runs on a laptop;
// benchmarks report both measured and scale-projected sizes.
package apps

import (
	"encoding/binary"
	"math"

	"zapc/internal/ckpt"
	"zapc/internal/mpi"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// DefaultScale shrinks paper-scale memory footprints (1.0 = the sizes
// reported in the paper).
const DefaultScale = 1.0 / 16

// Config describes one application endpoint.
type Config struct {
	Rank    int
	Size    int
	Port    netstack.Port
	PeerIPs []netstack.IP
	// Scale multiplies the paper-scale memory ballast.
	Scale float64
	// Work scales the computational problem size (1.0 = default).
	Work float64
}

func (c Config) comm() *mpi.Comm {
	return mpi.New(mpi.Config{Rank: c.Rank, Size: c.Size, Port: c.Port, PeerIPs: c.PeerIPs})
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return DefaultScale
	}
	return c.Scale
}

func (c Config) work() float64 {
	if c.Work <= 0 {
		return 1
	}
	return c.Work
}

// BallastBytes reproduces the paper's Figure 6c image-size shape at
// paper scale for each application.
func BallastBytes(app string, size int, scale float64) int64 {
	var bytes float64
	n := float64(size)
	switch app {
	case "cpi":
		bytes = 6*float64(1<<20) + 10*float64(1<<20)/n
	case "bt":
		bytes = 15*float64(1<<20) + 325*float64(1<<20)/n
	case "bratu":
		bytes = 16*float64(1<<20) + 129*float64(1<<20)/n
	case "povray":
		bytes = 10 * float64(1<<20)
	case "churn":
		bytes = 4 * float64(1<<20) // static ballast; the hot set is separate
	default:
		bytes = float64(1 << 20)
	}
	return int64(bytes * scale)
}

// ensureBallast installs the deterministic memory ballast region once.
func ensureBallast(ctx *vos.Context, app string, size int, scale float64) {
	if _, ok := ctx.Proc().Region("data"); ok {
		return
	}
	n := BallastBytes(app, size, scale)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i * 2654435761)
	}
	ctx.Proc().SetRegion("data", buf)
}

// f64Bytes flattens a float64 slice for serialization.
func f64Bytes(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// bytesF64 parses a float64 slice.
func bytesF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// computeCost converts abstract work units into simulated CPU time
// (2005-era 3 GHz Xeon, a few ns per flop-ish unit).
func computeCost(units float64) sim.Duration {
	return sim.Duration(units * 2.0) // 2 ns per unit
}

// maxSlice bounds a single step's simulated cost so a SIGSTOP reaches a
// quiescent point quickly (the paper's checkpoints suspend pods in
// microseconds-to-milliseconds, not whole compute phases).
const maxSlice = 5 * sim.Millisecond

// drainPending charges pending simulated compute in bounded slices.
// It returns the step result and whether the pending cost is exhausted.
func drainPending(pending *sim.Duration) (vos.StepResult, bool) {
	if *pending > maxSlice {
		*pending -= maxSlice
		return vos.Yield(maxSlice), false
	}
	c := *pending
	*pending = 0
	if c < 0 {
		c = 0
	}
	return vos.Yield(c), true
}

// Kinds of the registered application programs.
const (
	KindCPI    = "apps.cpi"
	KindBT     = "apps.bt"
	KindBratu  = "apps.bratu"
	KindPovray = "apps.povray"
	// KindChurn is the synthetic write-heavy workload (not one of the
	// paper's four apps; used to exercise pre-copy budget termination).
	KindChurn = "apps.churn"
)

func init() {
	ckpt.Register(KindCPI, func() vos.Program { return &CPI{} })
	ckpt.Register(KindBT, func() vos.Program { return &BT{} })
	ckpt.Register(KindBratu, func() vos.Program { return &Bratu{} })
	ckpt.Register(KindPovray, func() vos.Program { return &Povray{} })
	ckpt.Register(KindChurn, func() vos.Program { return &Churn{} })
	ckpt.Register("mpi.daemon", func() vos.Program { return &mpi.Daemon{} })
}

// Names lists the four workloads in the paper's order.
func Names() []string { return []string{"cpi", "bt", "bratu", "povray"} }

// NewByName constructs a workload endpoint by its short name.
func NewByName(name string, cfg Config) vos.Program {
	switch name {
	case "cpi":
		return NewCPI(cfg)
	case "bt":
		return NewBT(cfg)
	case "bratu":
		return NewBratu(cfg)
	case "povray":
		return NewPovray(cfg)
	case "churn":
		return NewChurn(cfg)
	default:
		return nil
	}
}

// Status is the common progress interface every workload implements so
// the harness can observe progress, completion and the deterministic
// result without knowing the app.
type Status interface {
	vos.Program
	Finished() bool
	Result() float64
	Progress() float64 // fraction complete in [0,1], approximate
}

// SquareOK reports whether a size is an admissible BT process count
// (BT requires a perfect square, as in the paper).
func SquareOK(size int) bool {
	r := int(math.Sqrt(float64(size)))
	return r*r == size
}
