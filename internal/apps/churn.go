package apps

import (
	"zapc/internal/imgfmt"
	"zapc/internal/mpi"
	"zapc/internal/vos"
)

// ChurnHotBytes is the size of Churn's hot working set. It is
// deliberately scale-independent (Scale shrinks only the static
// ballast): the point of the workload is its dirty rate, which must
// stay above any realistic pre-copy convergence threshold regardless
// of how small the experiment is scaled.
const ChurnHotBytes = 256 << 10

// Churn is a synthetic write-heavy workload — the adversarial case for
// pre-copy live checkpointing. Each step rewrites its entire hot
// working set in place, so the dirty set never converges: every live
// copy round finds the full hot region dirtied again, and a pre-copy
// checkpoint of churn must terminate on its round (or byte) budget,
// never on convergence. The static ballast installed next to the hot
// region gives the base snapshot something clean to copy, keeping the
// two kinds of memory distinguishable in the round economics.
type Churn struct {
	Comm *mpi.Comm

	Cfg      Config
	Iters    uint64
	NextIt   uint64
	Sum      uint64
	Phase    int
	Out      float64
	Done     bool
	bcastBuf []byte
}

// NewChurn builds a churn endpoint. Work scales the iteration count
// (run length); the per-step cost and write footprint are fixed.
func NewChurn(cfg Config) *Churn {
	iters := uint64(2000 * cfg.work())
	if iters < 50 {
		iters = 50
	}
	return &Churn{Comm: cfg.comm(), Cfg: cfg, Iters: iters}
}

// Step implements vos.Program.
func (c *Churn) Step(ctx *vos.Context) vos.StepResult {
	switch c.Phase {
	case 0:
		if !c.Comm.Init(ctx) {
			return c.Comm.Block()
		}
		ensureBallast(ctx, "churn", c.Cfg.Size, c.Cfg.scale())
		ctx.Proc().SetRegion("hot", make([]byte, ChurnHotBytes))
		c.Phase = 1
		return vos.Yield(0)
	case 1: // rewrite the hot set in place, one sweep per step
		data, ok := ctx.Proc().Region("hot")
		if !ok {
			return vos.Exit(9)
		}
		seed := c.NextIt*2654435761 + uint64(c.Cfg.Rank)*40503
		for i := 0; i < len(data); i += 64 {
			data[i] = byte(seed + uint64(i))
			c.Sum += uint64(data[i])
		}
		if err := ctx.Proc().TouchRegion("hot"); err != nil {
			return vos.Exit(9)
		}
		c.NextIt++
		cost := computeCost(float64(ChurnHotBytes) / 4)
		if c.NextIt < c.Iters {
			return vos.Yield(cost)
		}
		c.Phase = 2
		return vos.Yield(cost)
	case 2: // fold the per-rank write checksums at root
		sum, done := c.Comm.ReduceFloat64(ctx, float64(c.Sum%1000003), 0,
			func(a, b float64) float64 { return a + b })
		if !done {
			return c.Comm.Block()
		}
		if c.Cfg.Rank == 0 {
			c.bcastBuf = f64Bytes([]float64{sum})
		}
		c.Phase = 3
		return vos.Yield(0)
	case 3: // broadcast the folded checksum so Result is rank-independent
		if !c.Comm.Bcast(ctx, &c.bcastBuf, 0) {
			return c.Comm.Block()
		}
		c.Out = bytesF64(c.bcastBuf)[0]
		c.Done = true
		return vos.Exit(0)
	}
	return vos.Exit(9)
}

// Finished implements Status.
func (c *Churn) Finished() bool { return c.Done }

// Result implements Status (the folded checksum, broadcast to every
// rank).
func (c *Churn) Result() float64 { return c.Out }

// Progress implements Status.
func (c *Churn) Progress() float64 {
	if c.Done {
		return 1
	}
	if c.Iters == 0 {
		return 0
	}
	p := float64(c.NextIt) / float64(c.Iters)
	if p > 1 {
		p = 1
	}
	return p
}

// Kind implements vos.Program.
func (c *Churn) Kind() string { return KindChurn }

// Save implements vos.Program.
func (c *Churn) Save(e *imgfmt.Encoder) error {
	e.Begin(1)
	if err := c.Comm.Save(e); err != nil {
		return err
	}
	e.End()
	e.Int(2, int64(c.Cfg.Rank))
	e.Int(3, int64(c.Cfg.Size))
	e.Float64(4, c.Cfg.Scale)
	e.Float64(5, c.Cfg.Work)
	e.Uint(6, c.Iters)
	e.Uint(7, c.NextIt)
	e.Uint(8, c.Sum)
	e.Int(9, int64(c.Phase))
	e.Float64(10, c.Out)
	e.Bool(11, c.Done)
	e.Bytes(12, c.bcastBuf)
	return nil
}

// Restore implements vos.Program.
func (c *Churn) Restore(d *imgfmt.Decoder) error {
	sec, err := d.Section(1)
	if err != nil {
		return err
	}
	c.Comm = &mpi.Comm{}
	if err := c.Comm.Restore(sec); err != nil {
		return err
	}
	rank, err := d.Int(2)
	if err != nil {
		return err
	}
	size, err := d.Int(3)
	if err != nil {
		return err
	}
	c.Cfg.Rank, c.Cfg.Size = int(rank), int(size)
	if c.Cfg.Scale, err = d.Float64(4); err != nil {
		return err
	}
	if c.Cfg.Work, err = d.Float64(5); err != nil {
		return err
	}
	if c.Iters, err = d.Uint(6); err != nil {
		return err
	}
	if c.NextIt, err = d.Uint(7); err != nil {
		return err
	}
	if c.Sum, err = d.Uint(8); err != nil {
		return err
	}
	ph, err := d.Int(9)
	if err != nil {
		return err
	}
	c.Phase = int(ph)
	if c.Out, err = d.Float64(10); err != nil {
		return err
	}
	if c.Done, err = d.Bool(11); err != nil {
		return err
	}
	buf, err := d.Bytes(12)
	if err != nil {
		return err
	}
	c.bcastBuf = append([]byte(nil), buf...)
	return nil
}
