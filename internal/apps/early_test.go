package apps

import (
	"fmt"
	"testing"

	"zapc/internal/core"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// TestMigrateDuringStartup checkpoints the application at the worst
// possible moments — during middleware connection setup, when sockets
// are mid-handshake, rank headers are in flight, and listeners hold
// unaccepted children — and verifies the run still completes with the
// exact reference result.
func TestMigrateDuringStartup(t *testing.T) {
	for _, delay := range []sim.Duration{
		200 * sim.Microsecond, // SYNs in flight
		500 * sim.Microsecond, // partially established mesh
		2 * sim.Millisecond,   // headers exchanged, first sends queued
	} {
		delay := delay
		t.Run(fmt.Sprint(delay), func(t *testing.T) {
			plain := runToCompletion(t, "bratu", 3, 0.05)

			r := launch(t, "bratu", 3, 0.05)
			var targets []*vos.Node
			for i := 0; i < 3; i++ {
				targets = append(targets, vos.NewNode(r.w, fmt.Sprintf("spare%d", i), 1))
			}
			r.w.RunUntil(sim.Time(delay))
			var res *core.MigrateResult
			r.mgr.Migrate(r.pods, targets, true, nil, func(mr *core.MigrateResult) { res = mr })
			r.drive(t, func() bool { return res != nil })
			if res.Err != nil {
				t.Fatalf("migrate during startup (+%v): %v", delay, res.Err)
			}
			newProgs := make([]Status, 0, 3)
			for _, np := range res.Pods {
				proc, ok := np.Lookup(1)
				if !ok {
					t.Fatalf("pod %s lost its process", np.Name())
				}
				newProgs = append(newProgs, proc.Prog.(Status))
			}
			r.progs = newProgs
			r.drive(t, r.finished)
			var got float64
			for _, p := range r.progs {
				if b, ok := p.(*Bratu); ok && b.Cfg.Rank == 0 {
					got = b.Result()
				}
			}
			if got != plain {
				t.Fatalf("startup-migrated result %v != reference %v", got, plain)
			}
		})
	}
}

// TestSnapshotEveryPhase takes snapshots at a dense progress grid to
// catch phase-specific checkpoint bugs (collectives, halo waits, drain
// slices).
func TestSnapshotEveryPhase(t *testing.T) {
	r := launch(t, "bt", 4, 0.05)
	mgrSnapshot := func() {
		var res *core.CheckpointResult
		r.mgr.Checkpoint(r.pods, core.Options{Mode: core.Snapshot}, func(cr *core.CheckpointResult) { res = cr })
		r.drive(t, func() bool { return res != nil })
		if res.Err != nil {
			t.Fatalf("snapshot: %v", res.Err)
		}
	}
	for _, pct := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		r.drive(t, func() bool {
			done := true
			for _, p := range r.progs {
				if !p.Finished() {
					done = false
				}
			}
			return done || r.progs[0].Progress() >= pct
		})
		if r.progs[0].Finished() {
			break
		}
		mgrSnapshot()
	}
	r.drive(t, r.finished)
	ref := runToCompletion(t, "bt", 4, 0.05)
	if r.progs[0].Result() != ref {
		t.Fatalf("ten-snapshot run diverged: %v vs %v", r.progs[0].Result(), ref)
	}
}
