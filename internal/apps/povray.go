package apps

import (
	"encoding/binary"
	"math"

	"zapc/internal/imgfmt"
	"zapc/internal/mpi"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// POV-Ray protocol tags (PVM master/worker style).
const (
	tagReady  uint32 = 31 // worker -> master: give me work
	tagTile   uint32 = 32 // master -> worker: tile index
	tagResult uint32 = 33 // worker -> master: tile checksum
	tagStop   uint32 = 34 // master -> worker: no more tiles
)

// Povray is a miniature of the PVM build of POV-Ray: rank 0 is the
// master handing out image tiles; workers trace their tile (a
// deterministic sphere-field ray march standing in for the renderer's
// inner loop) and return a tile checksum. The final image checksum is
// the XOR of all tile checksums, so it is independent of which worker
// rendered which tile — exactly the property that makes the run
// verifiable across checkpoint/restart and N-to-M migration. It is the
// paper's CPU-bound, embarrassingly parallel extreme.
type Povray struct {
	Comm *mpi.Comm
	Cfg  Config

	Width, Height int
	TileSize      int
	Phase         int

	// master state
	NextTile int
	GotTiles int
	Stopped  int
	Checksum uint64

	// worker state
	CurTile  int          // -1 when idle
	Waiting  bool         // initial READY handshake sent
	Pending  sim.Duration // simulated render cost not yet charged
	Rendered uint64       // checksum of the tile being rendered

	Done bool
}

// NewPovray builds a POV-Ray endpoint. The image is fixed (36 tiles);
// Work scales the simulated per-tile render cost.
func NewPovray(cfg Config) *Povray {
	return &Povray{
		Comm:     cfg.comm(),
		Cfg:      cfg,
		Width:    96,
		Height:   96,
		TileSize: 16,
		CurTile:  -1,
	}
}

// tileCost is the simulated render time of one tile at Work=1.
func (p *Povray) tileCost() sim.Duration {
	return sim.Duration(1.4e9 * p.Cfg.work())
}

func (p *Povray) tiles() int {
	tx := (p.Width + p.TileSize - 1) / p.TileSize
	ty := (p.Height + p.TileSize - 1) / p.TileSize
	return tx * ty
}

// renderTile traces one tile and returns its checksum. The inner loop
// is a deterministic signed-distance ray march over a small sphere
// field — real floating-point work proportional to the pixel count.
func (p *Povray) renderTile(tile int) uint64 {
	tx := (p.Width + p.TileSize - 1) / p.TileSize
	x0 := (tile % tx) * p.TileSize
	y0 := (tile / tx) * p.TileSize
	var sum uint64
	for y := y0; y < y0+p.TileSize && y < p.Height; y++ {
		for x := x0; x < x0+p.TileSize && x < p.Width; x++ {
			u := (float64(x)/float64(p.Width) - 0.5) * 2
			v := (float64(y)/float64(p.Height) - 0.5) * 2
			// March a ray through three spheres.
			pz := -3.0
			d := 0.0
			for step := 0; step < 24; step++ {
				px, py := u*d, v*d
				z := pz + d
				best := math.Inf(1)
				for s := 0; s < 3; s++ {
					cx := math.Cos(float64(s) * 2.1)
					cy := math.Sin(float64(s) * 1.7)
					dist := math.Sqrt((px-cx)*(px-cx)+(py-cy)*(py-cy)+z*z) - 0.8
					if dist < best {
						best = dist
					}
				}
				if best < 1e-3 {
					break
				}
				d += best * 0.9
			}
			shade := uint64(math.Abs(d*1000)) & 0xffff
			sum = sum*1099511628211 + (uint64(x)<<32 | uint64(y)<<16 | shade)
		}
	}
	return sum
}

// Step implements vos.Program.
func (p *Povray) Step(ctx *vos.Context) vos.StepResult {
	switch {
	case p.Phase == 0:
		if !p.Comm.Init(ctx) {
			return p.Comm.Block()
		}
		ensureBallast(ctx, "povray", p.Cfg.Size, p.Cfg.scale())
		p.Phase = 1
		return vos.Yield(0)
	case p.Cfg.Rank == 0:
		return p.masterStep(ctx)
	default:
		return p.workerStep(ctx)
	}
}

func (p *Povray) masterStep(ctx *vos.Context) vos.StepResult {
	if p.Cfg.Size == 1 {
		// Degenerate single-endpoint run: render locally.
		if p.Pending > 0 {
			res, _ := drainPending(&p.Pending)
			return res
		}
		if p.NextTile < p.tiles() {
			p.Checksum ^= p.renderTile(p.NextTile)
			p.NextTile++
			p.Pending = p.tileCost()
			return vos.Yield(0)
		}
		p.Done = true
		return vos.Exit(0)
	}
	workers := p.Cfg.Size - 1
	for {
		m, ok := p.Comm.Recv(ctx, mpi.Any, tagReady)
		if !ok {
			break
		}
		p.assign(ctx, m.From)
	}
	for {
		m, ok := p.Comm.Recv(ctx, mpi.Any, tagResult)
		if !ok {
			break
		}
		p.Checksum ^= binary.BigEndian.Uint64(m.Data[4:])
		p.GotTiles++
		p.assign(ctx, m.From)
	}
	if p.GotTiles >= p.tiles() && p.Stopped >= workers {
		p.Done = true
		return vos.Exit(0)
	}
	return p.Comm.Block()
}

func (p *Povray) assign(ctx *vos.Context, worker int) {
	if p.NextTile < p.tiles() {
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(p.NextTile))
		p.Comm.Send(ctx, worker, tagTile, buf[:])
		p.NextTile++
	} else {
		p.Comm.Send(ctx, worker, tagStop, nil)
		p.Stopped++
	}
}

func (p *Povray) workerStep(ctx *vos.Context) vos.StepResult {
	// One initial READY; thereafter each RESULT implicitly requests the
	// next tile, so exactly one assignment is outstanding per worker.
	if !p.Waiting {
		p.Comm.Send(ctx, 0, tagReady, nil)
		p.Waiting = true
		return vos.Yield(0)
	}
	if p.CurTile < 0 {
		m, ok := p.Comm.Recv(ctx, 0, tagTile)
		if ok {
			p.CurTile = int(binary.BigEndian.Uint32(m.Data))
			return vos.Yield(0)
		}
		if _, stop := p.Comm.Recv(ctx, 0, tagStop); stop {
			p.Done = true
			return vos.Exit(0)
		}
		return p.Comm.Block()
	}
	// Render the assigned tile, charge its simulated cost in slices,
	// then return the checksum.
	if p.Pending == 0 && p.Rendered == 0 {
		p.Rendered = p.renderTile(p.CurTile)
		p.Pending = p.tileCost()
	}
	res, done := drainPending(&p.Pending)
	if !done {
		return res
	}
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(p.CurTile))
	binary.BigEndian.PutUint64(buf[4:], p.Rendered)
	p.Comm.Send(ctx, 0, tagResult, buf[:])
	p.CurTile = -1
	p.Rendered = 0
	return res
}

// Finished implements Status.
func (p *Povray) Finished() bool { return p.Done }

// Result implements Status (the image checksum as float64 bits).
func (p *Povray) Result() float64 { return float64(p.Checksum % (1 << 52)) }

// ChecksumValue returns the raw image checksum (master only).
func (p *Povray) ChecksumValue() uint64 { return p.Checksum }

// Progress implements Status.
func (p *Povray) Progress() float64 {
	if p.Done {
		return 1
	}
	t := p.tiles()
	if t == 0 || p.Cfg.Rank != 0 {
		return 0
	}
	if p.Cfg.Size == 1 {
		return float64(p.NextTile) / float64(t)
	}
	return float64(p.GotTiles) / float64(t)
}

// Kind implements vos.Program.
func (p *Povray) Kind() string { return KindPovray }

// Save implements vos.Program.
func (p *Povray) Save(e *imgfmt.Encoder) error {
	e.Begin(1)
	if err := p.Comm.Save(e); err != nil {
		return err
	}
	e.End()
	e.Int(2, int64(p.Cfg.Rank))
	e.Int(3, int64(p.Cfg.Size))
	e.Float64(4, p.Cfg.Scale)
	e.Float64(5, p.Cfg.Work)
	for i, v := range []int{p.Width, p.Height, p.TileSize, p.Phase, p.NextTile, p.GotTiles, p.Stopped, p.CurTile} {
		e.Int(uint64(6+i), int64(v))
	}
	e.Uint(14, p.Checksum)
	e.Bool(15, p.Waiting)
	e.Bool(16, p.Done)
	e.Int(17, int64(p.Pending))
	e.Uint(18, p.Rendered)
	return nil
}

// Restore implements vos.Program.
func (p *Povray) Restore(d *imgfmt.Decoder) error {
	sec, err := d.Section(1)
	if err != nil {
		return err
	}
	p.Comm = &mpi.Comm{}
	if err := p.Comm.Restore(sec); err != nil {
		return err
	}
	rank, err := d.Int(2)
	if err != nil {
		return err
	}
	size, err := d.Int(3)
	if err != nil {
		return err
	}
	p.Cfg.Rank, p.Cfg.Size = int(rank), int(size)
	if p.Cfg.Scale, err = d.Float64(4); err != nil {
		return err
	}
	if p.Cfg.Work, err = d.Float64(5); err != nil {
		return err
	}
	for i, dst := range []*int{&p.Width, &p.Height, &p.TileSize, &p.Phase, &p.NextTile, &p.GotTiles, &p.Stopped, &p.CurTile} {
		v, err := d.Int(uint64(6 + i))
		if err != nil {
			return err
		}
		*dst = int(v)
	}
	if p.Checksum, err = d.Uint(14); err != nil {
		return err
	}
	if p.Waiting, err = d.Bool(15); err != nil {
		return err
	}
	if p.Done, err = d.Bool(16); err != nil {
		return err
	}
	pend, err := d.Int(17)
	if err != nil {
		return err
	}
	p.Pending = sim.Duration(pend)
	p.Rendered, err = d.Uint(18)
	return err
}
