package apps

import (
	"math"

	"zapc/internal/imgfmt"
	"zapc/internal/mpi"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// Halo message tags (named by the side the receiver integrates them on).
const (
	tagHaloAbove uint32 = 11
	tagHaloBelow uint32 = 12
	tagHaloLeft  uint32 = 13
	tagHaloRight uint32 = 14
)

// BT is a miniature of the NAS Parallel Benchmarks block-tridiagonal
// solver: a dense local block per endpoint on a square process grid,
// alternating relaxation sweeps with four-way halo exchanges every
// iteration. Like the original, it requires a perfect-square process
// count and couples substantial network traffic with the computation —
// the paper's communication-heavy extreme.
type BT struct {
	Comm *mpi.Comm
	Cfg  Config

	N       int // local block is N x N
	Iters   int
	Iter    int
	Phase   int
	Px      int // process grid dimension (Px x Px)
	Grid    []float64
	recvd   [4]bool
	Norm    float64
	Done    bool
	bcast   []byte
	Pending sim.Duration // simulated compute not yet charged
}

// btGlobalDim is the fixed global grid dimension; local blocks shrink
// as the process grid grows, giving the solver its parallel speedup.
const btGlobalDim = 80

// NewBT builds a BT endpoint; cfg.Size must be a perfect square. Work
// scales simulated duration only; the numerical problem is fixed.
func NewBT(cfg Config) *BT {
	px := int(math.Sqrt(float64(cfg.Size)))
	n := btGlobalDim / px
	if n < 4 {
		n = 4
	}
	b := &BT{
		Comm:  cfg.comm(),
		Cfg:   cfg,
		N:     n,
		Iters: 400,
		Px:    px,
	}
	b.Grid = make([]float64, b.N*b.N)
	for i := range b.Grid {
		// Deterministic initial condition varying by rank.
		b.Grid[i] = math.Sin(float64(i+1)*0.01) * float64(cfg.Rank+1)
	}
	return b
}

func (b *BT) at(i, j int) float64     { return b.Grid[i*b.N+j] }
func (b *BT) set(i, j int, v float64) { b.Grid[i*b.N+j] = v }

// neighbor returns the rank of the torus neighbor at (di, dj).
func (b *BT) neighbor(di, dj int) int {
	r, c := b.Cfg.Rank/b.Px, b.Cfg.Rank%b.Px
	r = (r + di + b.Px) % b.Px
	c = (c + dj + b.Px) % b.Px
	return r*b.Px + c
}

// Step implements vos.Program.
func (b *BT) Step(ctx *vos.Context) vos.StepResult {
	switch b.Phase {
	case 0:
		if !b.Comm.Init(ctx) {
			return b.Comm.Block()
		}
		ensureBallast(ctx, "bt", b.Cfg.Size, b.Cfg.scale())
		b.Phase = 1
		return vos.Yield(0)
	case 1: // relaxation sweep + send halos
		n := b.N
		next := make([]float64, len(b.Grid))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				up := b.at((i-1+n)%n, j)
				dn := b.at((i+1)%n, j)
				lf := b.at(i, (j-1+n)%n)
				rt := b.at(i, (j+1)%n)
				v := 0.2495*(up+dn+lf+rt) + 0.001*math.Sin(float64(b.Iter))
				next[i*n+j] = v
			}
		}
		b.Grid = next
		// Charge the sweep's simulated cost in bounded slices, then
		// exchange halos.
		b.Pending = sim.Duration(float64(b.N*b.N) * 31250 * b.Cfg.work()) // 31.25 µs/cell at Work=1
		b.Phase = 5
		return vos.Yield(0)
	case 5:
		res, done := drainPending(&b.Pending)
		if !done {
			return res
		}
		n := b.N
		// Exchange boundary rows/columns with the four torus neighbors.
		top := b.Grid[:n]
		bot := b.Grid[(n-1)*n:]
		left := make([]float64, n)
		right := make([]float64, n)
		for i := 0; i < n; i++ {
			left[i] = b.at(i, 0)
			right[i] = b.at(i, n-1)
		}
		// My top row becomes the "halo from below" of the rank above me,
		// and so on around the torus.
		b.Comm.Send(ctx, b.neighbor(-1, 0), tagHaloBelow, f64Bytes(top))
		b.Comm.Send(ctx, b.neighbor(+1, 0), tagHaloAbove, f64Bytes(bot))
		b.Comm.Send(ctx, b.neighbor(0, -1), tagHaloRight, f64Bytes(left))
		b.Comm.Send(ctx, b.neighbor(0, +1), tagHaloLeft, f64Bytes(right))
		b.recvd = [4]bool{}
		b.Phase = 2
		return res
	case 2: // receive the four halos
		dirs := []struct {
			tag  uint32
			from int
		}{
			{tagHaloAbove, b.neighbor(-1, 0)},
			{tagHaloBelow, b.neighbor(+1, 0)},
			{tagHaloLeft, b.neighbor(0, -1)},
			{tagHaloRight, b.neighbor(0, +1)},
		}
		for i, d := range dirs {
			if b.recvd[i] {
				continue
			}
			m, ok := b.Comm.Recv(ctx, d.from, d.tag)
			if !ok {
				return b.Comm.Block()
			}
			halo := bytesF64(m.Data)
			b.applyHalo(i, halo)
			b.recvd[i] = true
		}
		b.Iter++
		if b.Iter < b.Iters {
			b.Phase = 1
			return vos.Yield(computeCost(float64(b.N) * 4))
		}
		b.Phase = 3
		return vos.Yield(0)
	case 3: // global norm: reduce sum of squares, broadcast
		ss := 0.0
		for _, v := range b.Grid {
			ss += v * v
		}
		norm, done := b.Comm.ReduceFloat64(ctx, ss, 0, func(a, c float64) float64 { return a + c })
		if !done {
			return b.Comm.Block()
		}
		if b.Cfg.Rank == 0 {
			b.bcast = f64Bytes([]float64{math.Sqrt(norm)})
		}
		b.Phase = 4
		return vos.Yield(computeCost(float64(len(b.Grid))))
	case 4:
		if !b.Comm.Bcast(ctx, &b.bcast, 0) {
			return b.Comm.Block()
		}
		b.Norm = bytesF64(b.bcast)[0]
		b.Done = true
		return vos.Exit(0)
	}
	return vos.Exit(9)
}

// applyHalo folds a received boundary into the local block edge.
func (b *BT) applyHalo(dir int, halo []float64) {
	n := b.N
	if len(halo) < n {
		return
	}
	switch dir {
	case 0: // from above -> blend into top row
		for j := 0; j < n; j++ {
			b.set(0, j, 0.5*(b.at(0, j)+halo[j]))
		}
	case 1: // from below -> bottom row
		for j := 0; j < n; j++ {
			b.set(n-1, j, 0.5*(b.at(n-1, j)+halo[j]))
		}
	case 2: // from left -> left column
		for i := 0; i < n; i++ {
			b.set(i, 0, 0.5*(b.at(i, 0)+halo[i]))
		}
	case 3: // from right -> right column
		for i := 0; i < n; i++ {
			b.set(i, n-1, 0.5*(b.at(i, n-1)+halo[i]))
		}
	}
}

// Finished implements Status.
func (b *BT) Finished() bool { return b.Done }

// Result implements Status (the global grid norm).
func (b *BT) Result() float64 { return b.Norm }

// Progress implements Status.
func (b *BT) Progress() float64 {
	if b.Done {
		return 1
	}
	if b.Iters == 0 {
		return 0
	}
	return float64(b.Iter) / float64(b.Iters)
}

// Kind implements vos.Program.
func (b *BT) Kind() string { return KindBT }

// Save implements vos.Program.
func (b *BT) Save(e *imgfmt.Encoder) error {
	e.Begin(1)
	if err := b.Comm.Save(e); err != nil {
		return err
	}
	e.End()
	e.Int(2, int64(b.Cfg.Rank))
	e.Int(3, int64(b.Cfg.Size))
	e.Float64(4, b.Cfg.Scale)
	e.Float64(5, b.Cfg.Work)
	e.Int(6, int64(b.N))
	e.Int(7, int64(b.Iters))
	e.Int(8, int64(b.Iter))
	e.Int(9, int64(b.Phase))
	e.Int(10, int64(b.Px))
	e.Bytes(11, f64Bytes(b.Grid))
	for _, r := range b.recvd {
		e.Bool(12, r)
	}
	e.Float64(13, b.Norm)
	e.Bool(14, b.Done)
	e.Bytes(15, b.bcast)
	e.Int(16, int64(b.Pending))
	return nil
}

// Restore implements vos.Program.
func (b *BT) Restore(d *imgfmt.Decoder) error {
	sec, err := d.Section(1)
	if err != nil {
		return err
	}
	b.Comm = &mpi.Comm{}
	if err := b.Comm.Restore(sec); err != nil {
		return err
	}
	ints := make([]int64, 0, 6)
	for _, tag := range []uint64{2, 3} {
		v, err := d.Int(tag)
		if err != nil {
			return err
		}
		ints = append(ints, v)
	}
	b.Cfg.Rank, b.Cfg.Size = int(ints[0]), int(ints[1])
	if b.Cfg.Scale, err = d.Float64(4); err != nil {
		return err
	}
	if b.Cfg.Work, err = d.Float64(5); err != nil {
		return err
	}
	for _, p := range []struct {
		tag uint64
		dst *int
	}{{6, &b.N}, {7, &b.Iters}, {8, &b.Iter}, {9, &b.Phase}, {10, &b.Px}} {
		v, err := d.Int(p.tag)
		if err != nil {
			return err
		}
		*p.dst = int(v)
	}
	grid, err := d.Bytes(11)
	if err != nil {
		return err
	}
	b.Grid = bytesF64(grid)
	for i := range b.recvd {
		if b.recvd[i], err = d.Bool(12); err != nil {
			return err
		}
	}
	if b.Norm, err = d.Float64(13); err != nil {
		return err
	}
	if b.Done, err = d.Bool(14); err != nil {
		return err
	}
	bc, err := d.Bytes(15)
	if err != nil {
		return err
	}
	b.bcast = append([]byte(nil), bc...)
	pend, err := d.Int(16)
	if err != nil {
		return err
	}
	b.Pending = sim.Duration(pend)
	return nil
}
