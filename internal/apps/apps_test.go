package apps

import (
	"fmt"
	"math"
	"testing"

	"zapc/internal/core"
	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

type rig struct {
	w     *sim.World
	nw    *netstack.Network
	fs    *memfs.FS
	nodes []*vos.Node
	pods  []*pod.Pod
	progs []Status
	mgr   *core.Manager
}

// launch builds a cluster with one pod per endpoint and starts the
// named app at the given size.
func launch(t *testing.T, name string, size int, work float64) *rig {
	t.Helper()
	w := sim.NewWorld(777)
	r := &rig{w: w, nw: netstack.NewNetwork(w), fs: memfs.New()}
	r.mgr = core.NewManager(w, r.nw, r.fs)
	ips := make([]netstack.IP, size)
	for i := range ips {
		ips[i] = netstack.IP(0x0a000001 + i)
	}
	for i := 0; i < size; i++ {
		n := vos.NewNode(w, fmt.Sprintf("n%d", i), 1)
		r.nodes = append(r.nodes, n)
		p, err := pod.New(fmt.Sprintf("%s-%d", name, i), n, r.nw, r.fs, ips[i])
		if err != nil {
			t.Fatal(err)
		}
		prog := NewByName(name, Config{
			Rank: i, Size: size, Port: 7100, PeerIPs: ips,
			Scale: 0.001, Work: work,
		})
		if prog == nil {
			t.Fatalf("unknown app %q", name)
		}
		st := prog.(Status)
		p.AddProcess(prog)
		r.pods = append(r.pods, p)
		r.progs = append(r.progs, st)
	}
	return r
}

func (r *rig) drive(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := r.w.Now() + sim.Time(30*60*sim.Second)
	for !cond() {
		if r.w.Now() > deadline {
			t.Fatal("sim deadline exceeded")
		}
		if !r.w.Step() {
			if cond() {
				return
			}
			t.Fatal("queue drained before condition")
		}
	}
}

func (r *rig) finished() bool {
	for _, p := range r.progs {
		if !p.Finished() {
			return false
		}
	}
	return true
}

// runToCompletion runs the app and returns rank 0's result.
func runToCompletion(t *testing.T, name string, size int, work float64) float64 {
	t.Helper()
	r := launch(t, name, size, work)
	r.drive(t, r.finished)
	return r.progs[0].Result()
}

func TestCPICorrectness(t *testing.T) {
	for _, size := range []int{1, 2, 4} {
		got := runToCompletion(t, "cpi", size, 0.02)
		if math.Abs(got-math.Pi) > 1e-8 {
			t.Fatalf("size %d: pi = %.12f", size, got)
		}
	}
}

func TestBTCompletesAndAgrees(t *testing.T) {
	// BT requires square sizes; the norm depends on the decomposition,
	// so only same-size runs must agree.
	a := runToCompletion(t, "bt", 4, 0.05)
	b := runToCompletion(t, "bt", 4, 0.05)
	if a != b {
		t.Fatalf("nondeterministic BT: %v vs %v", a, b)
	}
	if a == 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("degenerate norm %v", a)
	}
}

func TestBratuConvergesDeterministically(t *testing.T) {
	a := runToCompletion(t, "bratu", 3, 0.05)
	b := runToCompletion(t, "bratu", 3, 0.05)
	if a != b {
		t.Fatalf("nondeterministic Bratu: %v vs %v", a, b)
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("residual blew up: %v", a)
	}
}

func TestPovrayChecksumSizeInvariant(t *testing.T) {
	// The image checksum must not depend on the worker count.
	c1 := runPovray(t, 1, 0.05)
	c3 := runPovray(t, 3, 0.05)
	c5 := runPovray(t, 5, 0.05)
	if c1 != c3 || c3 != c5 {
		t.Fatalf("checksum varies with size: %x %x %x", c1, c3, c5)
	}
	if c1 == 0 {
		t.Fatal("zero checksum")
	}
}

func runPovray(t *testing.T, size int, work float64) uint64 {
	t.Helper()
	r := launch(t, "povray", size, work)
	r.drive(t, func() bool { return r.progs[0].Finished() })
	return r.progs[0].(*Povray).ChecksumValue()
}

func TestBallastShape(t *testing.T) {
	for _, app := range []string{"cpi", "bt", "bratu"} {
		b1 := BallastBytes(app, 1, 1.0)
		b16 := BallastBytes(app, 16, 1.0)
		if b16 >= b1 {
			t.Fatalf("%s: ballast must shrink with node count (%d -> %d)", app, b1, b16)
		}
	}
	if BallastBytes("povray", 1, 1.0) != BallastBytes("povray", 16, 1.0) {
		t.Fatal("povray ballast must be constant")
	}
	// Paper-scale anchors (within 15%).
	anchor := func(app string, size int, wantMB float64) {
		got := float64(BallastBytes(app, size, 1.0)) / (1 << 20)
		if math.Abs(got-wantMB)/wantMB > 0.15 {
			t.Errorf("%s@%d: %1.f MB, paper ~%v MB", app, size, got, wantMB)
		}
	}
	anchor("cpi", 1, 16)
	anchor("cpi", 16, 7)
	anchor("bratu", 1, 145)
	anchor("bratu", 16, 24)
	anchor("bt", 1, 340)
	anchor("bt", 16, 35)
	anchor("povray", 4, 10)
}

func TestSquareOK(t *testing.T) {
	for _, ok := range []int{1, 4, 9, 16} {
		if !SquareOK(ok) {
			t.Errorf("SquareOK(%d) = false", ok)
		}
	}
	for _, bad := range []int{2, 3, 8, 15} {
		if SquareOK(bad) {
			t.Errorf("SquareOK(%d) = true", bad)
		}
	}
}

// migrateMidRun checkpoints the whole app mid-run, migrates it to fresh
// nodes, and returns the final result — which must equal the
// uninterrupted run's result exactly.
func migrateMidRun(t *testing.T, name string, size int, work float64) float64 {
	t.Helper()
	r := launch(t, name, size, work)
	// Add spare nodes to migrate onto.
	var targets []*vos.Node
	for i := 0; i < size; i++ {
		targets = append(targets, vos.NewNode(r.w, fmt.Sprintf("spare%d", i), 1))
	}
	r.drive(t, func() bool {
		for _, p := range r.progs {
			if p.Progress() > 0.3 {
				return true
			}
		}
		return false
	})
	var res *core.MigrateResult
	r.mgr.Migrate(r.pods, targets, true, nil, func(mr *core.MigrateResult) { res = mr })
	r.drive(t, func() bool { return res != nil })
	if res.Err != nil {
		t.Fatalf("migrate: %v", res.Err)
	}
	// Rebind progs to the restored program objects. An endpoint whose
	// process had already exited before the checkpoint is restored as an
	// empty pod; its final state lives in the old program object.
	newProgs := make([]Status, 0, size)
	for _, np := range res.Pods {
		if proc, ok := np.Lookup(1); ok {
			newProgs = append(newProgs, proc.Prog.(Status))
		}
	}
	for _, old := range r.progs {
		if old.Finished() {
			newProgs = append(newProgs, old)
		}
	}
	if len(newProgs) < size {
		t.Fatalf("only %d of %d endpoints accounted for after migration", len(newProgs), size)
	}
	r.progs = newProgs
	r.drive(t, r.finished)
	for _, p := range r.progs {
		if st, ok := p.(*Povray); ok && st.Cfg.Rank == 0 {
			return st.Result()
		}
	}
	// Rank 0 carries the canonical result for the other apps.
	for _, p := range r.progs {
		switch a := p.(type) {
		case *CPI:
			if a.Cfg.Rank == 0 {
				return a.Result()
			}
		case *BT:
			if a.Cfg.Rank == 0 {
				return a.Result()
			}
		case *Bratu:
			if a.Cfg.Rank == 0 {
				return a.Result()
			}
		}
	}
	return r.progs[0].Result()
}

func TestCheckpointEquivalenceAllApps(t *testing.T) {
	cases := []struct {
		name string
		size int
	}{
		{"cpi", 4},
		{"bt", 4},
		{"bratu", 4},
		{"povray", 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			work := 0.05
			if tc.name == "povray" {
				work = 0.6 // enough tiles that the checkpoint lands mid-run
			}
			plain := runToCompletion(t, tc.name, tc.size, work)
			interrupted := migrateMidRun(t, tc.name, tc.size, work)
			if plain != interrupted {
				t.Fatalf("%s: interrupted run diverged: %v vs %v", tc.name, interrupted, plain)
			}
		})
	}
}
