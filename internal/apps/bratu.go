package apps

import (
	"math"

	"zapc/internal/imgfmt"
	"zapc/internal/mpi"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// Bratu tags.
const (
	tagGhostUp   uint32 = 21 // ghost row arriving from the strip above
	tagGhostDown uint32 = 22 // ghost row arriving from the strip below
)

// Bratu is a miniature of the PETSc SFI (solid fuel ignition) example:
// a damped Jacobi solver for the Bratu equation ∆u + λeᵘ = 0 on the
// unit square with Dirichlet boundaries, the domain strip-partitioned
// across ranks using distributed arrays. Each iteration exchanges ghost
// rows with the two strip neighbors; every CheckEvery iterations the
// global residual is reduced and the continue/stop decision broadcast —
// the paper's moderate-communication workload.
type Bratu struct {
	Comm *mpi.Comm
	Cfg  Config

	NX, NY     int // global grid
	Rows       int // rows owned by this rank (excluding ghost rows)
	Row0       int // first owned global row
	Lambda     float64
	U          []float64 // (Rows+2) x NX including ghost rows
	Iter       int
	MaxIters   int
	CheckEvery int
	Phase      int
	recvdUp    bool
	recvdDown  bool
	Pending    sim.Duration // simulated compute not yet charged
	localRes   float64
	Residual   float64
	Tol        float64
	Done       bool
	bcast      []byte
}

// bratuGlobalDim is the fixed global grid dimension.
const bratuGlobalDim = 96

// NewBratu builds a Bratu endpoint. Work scales simulated duration
// only; the numerical problem is fixed.
func NewBratu(cfg Config) *Bratu {
	nx := bratuGlobalDim
	ny := nx
	rows := ny / cfg.Size
	row0 := cfg.Rank * rows
	if cfg.Rank == cfg.Size-1 {
		rows = ny - row0
	}
	b := &Bratu{
		Comm:       cfg.comm(),
		Cfg:        cfg,
		NX:         nx,
		NY:         ny,
		Rows:       rows,
		Row0:       row0,
		Lambda:     6.0,
		MaxIters:   400,
		CheckEvery: 10,
		Tol:        1e-6,
	}
	b.U = make([]float64, (rows+2)*nx)
	return b
}

func (b *Bratu) idx(i, j int) int { return i*b.NX + j }

func (b *Bratu) upRank() int   { return b.Cfg.Rank - 1 }
func (b *Bratu) downRank() int { return b.Cfg.Rank + 1 }

// Step implements vos.Program.
func (b *Bratu) Step(ctx *vos.Context) vos.StepResult {
	switch b.Phase {
	case 0:
		if !b.Comm.Init(ctx) {
			return b.Comm.Block()
		}
		ensureBallast(ctx, "bratu", b.Cfg.Size, b.Cfg.scale())
		b.Phase = 1
		return vos.Yield(0)
	case 1: // Jacobi sweep over owned rows; then post ghost rows
		h2 := 1.0 / float64((b.NX-1)*(b.NX-1))
		res := 0.0
		next := append([]float64(nil), b.U...)
		for i := 1; i <= b.Rows; i++ {
			gi := b.Row0 + i - 1
			if gi == 0 || gi == b.NY-1 {
				continue // Dirichlet boundary rows stay zero
			}
			for j := 1; j < b.NX-1; j++ {
				u := b.U[b.idx(i, j)]
				lap := b.U[b.idx(i-1, j)] + b.U[b.idx(i+1, j)] +
					b.U[b.idx(i, j-1)] + b.U[b.idx(i, j+1)] - 4*u
				f := lap + h2*b.Lambda*math.Exp(u)
				nv := u + 0.2*f
				next[b.idx(i, j)] = nv
				if r := math.Abs(f); r > res {
					res = r
				}
			}
		}
		b.U = next
		b.localRes = res
		// Charge the sweep's simulated cost in bounded slices, then post
		// ghost rows.
		b.Pending = sim.Duration(float64(b.Rows*b.NX) * 17000 * b.Cfg.work()) // 17 µs/cell at Work=1
		b.Phase = 5
		return vos.Yield(0)
	case 5:
		res, done := drainPending(&b.Pending)
		if !done {
			return res
		}
		if up := b.upRank(); up >= 0 {
			b.Comm.Send(ctx, up, tagGhostDown, f64Bytes(b.U[b.idx(1, 0):b.idx(2, 0)]))
		}
		if dn := b.downRank(); dn < b.Cfg.Size {
			b.Comm.Send(ctx, dn, tagGhostUp, f64Bytes(b.U[b.idx(b.Rows, 0):b.idx(b.Rows+1, 0)]))
		}
		b.recvdUp = b.upRank() < 0
		b.recvdDown = b.downRank() >= b.Cfg.Size
		b.Phase = 2
		return res
	case 2: // receive ghost rows
		if !b.recvdUp {
			m, ok := b.Comm.Recv(ctx, b.upRank(), tagGhostUp)
			if !ok {
				return b.Comm.Block()
			}
			copy(b.U[b.idx(0, 0):b.idx(1, 0)], bytesF64(m.Data))
			b.recvdUp = true
		}
		if !b.recvdDown {
			m, ok := b.Comm.Recv(ctx, b.downRank(), tagGhostDown)
			if !ok {
				return b.Comm.Block()
			}
			copy(b.U[b.idx(b.Rows+1, 0):b.idx(b.Rows+2, 0)], bytesF64(m.Data))
			b.recvdDown = true
		}
		b.Iter++
		if b.Iter%b.CheckEvery == 0 || b.Iter >= b.MaxIters {
			b.Phase = 3
		} else {
			b.Phase = 1
		}
		return vos.Yield(computeCost(float64(b.NX) * 2))
	case 3: // global residual reduce
		r, done := b.Comm.ReduceFloat64(ctx, b.localRes, 0, math.Max)
		if !done {
			return b.Comm.Block()
		}
		if b.Cfg.Rank == 0 {
			stop := 0.0
			if r < b.Tol || b.Iter >= b.MaxIters {
				stop = 1
			}
			b.bcast = f64Bytes([]float64{r, stop})
		}
		b.Phase = 4
		return vos.Yield(0)
	case 4: // broadcast residual + continue/stop
		if !b.Comm.Bcast(ctx, &b.bcast, 0) {
			return b.Comm.Block()
		}
		vals := bytesF64(b.bcast)
		b.Residual = vals[0]
		if vals[1] != 0 {
			b.Done = true
			return vos.Exit(0)
		}
		b.Phase = 1
		return vos.Yield(0)
	}
	return vos.Exit(9)
}

// Finished implements Status.
func (b *Bratu) Finished() bool { return b.Done }

// Result implements Status (the final global residual).
func (b *Bratu) Result() float64 { return b.Residual }

// Progress implements Status.
func (b *Bratu) Progress() float64 {
	if b.Done {
		return 1
	}
	if b.MaxIters == 0 {
		return 0
	}
	return float64(b.Iter) / float64(b.MaxIters)
}

// Kind implements vos.Program.
func (b *Bratu) Kind() string { return KindBratu }

// Save implements vos.Program.
func (b *Bratu) Save(e *imgfmt.Encoder) error {
	e.Begin(1)
	if err := b.Comm.Save(e); err != nil {
		return err
	}
	e.End()
	e.Int(2, int64(b.Cfg.Rank))
	e.Int(3, int64(b.Cfg.Size))
	e.Float64(4, b.Cfg.Scale)
	e.Float64(5, b.Cfg.Work)
	for i, v := range []int{b.NX, b.NY, b.Rows, b.Row0, b.Iter, b.MaxIters, b.CheckEvery, b.Phase} {
		e.Int(uint64(6+i), int64(v))
	}
	e.Float64(14, b.Lambda)
	e.Bytes(15, f64Bytes(b.U))
	e.Bool(16, b.recvdUp)
	e.Bool(17, b.recvdDown)
	e.Float64(18, b.localRes)
	e.Float64(19, b.Residual)
	e.Float64(20, b.Tol)
	e.Bool(21, b.Done)
	e.Bytes(22, b.bcast)
	e.Int(23, int64(b.Pending))
	return nil
}

// Restore implements vos.Program.
func (b *Bratu) Restore(d *imgfmt.Decoder) error {
	sec, err := d.Section(1)
	if err != nil {
		return err
	}
	b.Comm = &mpi.Comm{}
	if err := b.Comm.Restore(sec); err != nil {
		return err
	}
	rank, err := d.Int(2)
	if err != nil {
		return err
	}
	size, err := d.Int(3)
	if err != nil {
		return err
	}
	b.Cfg.Rank, b.Cfg.Size = int(rank), int(size)
	if b.Cfg.Scale, err = d.Float64(4); err != nil {
		return err
	}
	if b.Cfg.Work, err = d.Float64(5); err != nil {
		return err
	}
	for i, dst := range []*int{&b.NX, &b.NY, &b.Rows, &b.Row0, &b.Iter, &b.MaxIters, &b.CheckEvery, &b.Phase} {
		v, err := d.Int(uint64(6 + i))
		if err != nil {
			return err
		}
		*dst = int(v)
	}
	if b.Lambda, err = d.Float64(14); err != nil {
		return err
	}
	u, err := d.Bytes(15)
	if err != nil {
		return err
	}
	b.U = bytesF64(u)
	if b.recvdUp, err = d.Bool(16); err != nil {
		return err
	}
	if b.recvdDown, err = d.Bool(17); err != nil {
		return err
	}
	if b.localRes, err = d.Float64(18); err != nil {
		return err
	}
	if b.Residual, err = d.Float64(19); err != nil {
		return err
	}
	if b.Tol, err = d.Float64(20); err != nil {
		return err
	}
	if b.Done, err = d.Bool(21); err != nil {
		return err
	}
	bc, err := d.Bytes(22)
	if err != nil {
		return err
	}
	b.bcast = append([]byte(nil), bc...)
	pend, err := d.Int(23)
	if err != nil {
		return err
	}
	b.Pending = sim.Duration(pend)
	return nil
}
