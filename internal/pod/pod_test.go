package pod

import (
	"testing"

	"zapc/internal/imgfmt"
	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

type spinner struct {
	Done  int
	Limit int
}

func (s *spinner) Step(ctx *vos.Context) vos.StepResult {
	if s.Limit > 0 && s.Done >= s.Limit {
		return vos.Exit(0)
	}
	s.Done++
	return vos.Yield(sim.Millisecond)
}
func (s *spinner) Save(e *imgfmt.Encoder) error    { return nil }
func (s *spinner) Restore(d *imgfmt.Decoder) error { return nil }
func (s *spinner) Kind() string                    { return "test.spinner" }

func setup(t *testing.T) (*sim.World, *vos.Node, *netstack.Network, *memfs.FS) {
	t.Helper()
	w := sim.NewWorld(3)
	nw := netstack.NewNetwork(w)
	n := vos.NewNode(w, "n0", 2)
	return w, n, nw, memfs.New()
}

func TestPodCreateAndVPIDs(t *testing.T) {
	_, n, nw, fs := setup(t)
	p, err := New("pod0", n, nw, fs, 0x0a000001)
	if err != nil {
		t.Fatal(err)
	}
	a := p.AddProcess(&spinner{Limit: 1})
	b := p.AddProcess(&spinner{Limit: 1})
	if a.VPID != 1 || b.VPID != 2 {
		t.Fatalf("vpids = %d, %d", a.VPID, b.VPID)
	}
	if a.RPID == b.RPID {
		t.Fatal("real pids collide")
	}
	got, ok := p.Lookup(2)
	if !ok || got != b {
		t.Fatal("lookup failed")
	}
	if len(p.Procs()) != 2 {
		t.Fatalf("procs = %d", len(p.Procs()))
	}
}

func TestDuplicateVirtualIPRejected(t *testing.T) {
	_, n, nw, fs := setup(t)
	if _, err := New("a", n, nw, fs, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := New("b", n, nw, fs, 1); err == nil {
		t.Fatal("duplicate VIP accepted")
	}
}

func TestSuspendQuiescentResume(t *testing.T) {
	w, n, nw, fs := setup(t)
	p, _ := New("pod0", n, nw, fs, 1)
	s1 := &spinner{}
	s2 := &spinner{}
	p.AddProcess(s1)
	p.AddProcess(s2)
	w.RunUntil(sim.Time(10 * sim.Millisecond))
	if p.Quiescent() {
		t.Fatal("running pod reported quiescent")
	}
	p.Suspend()
	w.RunUntil(w.Now() + sim.Time(5*sim.Millisecond))
	if !p.Quiescent() {
		t.Fatal("pod not quiescent after suspend")
	}
	d1, d2 := s1.Done, s2.Done
	w.RunUntil(w.Now() + sim.Time(50*sim.Millisecond))
	if s1.Done != d1 || s2.Done != d2 {
		t.Fatal("suspended processes progressed")
	}
	p.Resume()
	w.RunUntil(w.Now() + sim.Time(20*sim.Millisecond))
	if s1.Done == d1 || s2.Done == d2 {
		t.Fatal("resume did not restart processes")
	}
}

func TestNetworkBlockUnblock(t *testing.T) {
	_, n, nw, fs := setup(t)
	p, _ := New("pod0", n, nw, fs, 1)
	if p.NetworkBlocked() {
		t.Fatal("new pod blocked")
	}
	p.BlockNetwork()
	if !p.NetworkBlocked() {
		t.Fatal("block had no effect")
	}
	p.UnblockNetwork()
	if p.NetworkBlocked() {
		t.Fatal("unblock had no effect")
	}
}

func TestTimeBias(t *testing.T) {
	w, n, nw, fs := setup(t)
	p, _ := New("pod0", n, nw, fs, 1)
	w.RunUntil(sim.Time(100 * sim.Millisecond))
	// Pretend the pod was checkpointed when its virtual clock read 30ms.
	p.SetTimeBias(sim.Time(30 * sim.Millisecond))
	if got := p.VirtualNow(); got != sim.Time(30*sim.Millisecond) {
		t.Fatalf("VirtualNow = %v", got)
	}
	w.RunUntil(sim.Time(150 * sim.Millisecond))
	if got := p.VirtualNow(); got != sim.Time(80*sim.Millisecond) {
		t.Fatalf("VirtualNow after 50ms = %v", got)
	}
}

func TestAddRestoredProcessPreservesVPID(t *testing.T) {
	_, n, nw, fs := setup(t)
	p, _ := New("pod0", n, nw, fs, 1)
	proc, err := p.AddRestoredProcess(&spinner{Limit: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if proc.VPID != 7 || !proc.Stopped() {
		t.Fatalf("vpid=%d stopped=%v", proc.VPID, proc.Stopped())
	}
	if _, err := p.AddRestoredProcess(&spinner{}, 7); err == nil {
		t.Fatal("duplicate vpid accepted")
	}
	// Subsequent normal adds continue above the restored VPID.
	q := p.AddProcess(&spinner{Limit: 1})
	if q.VPID != 8 {
		t.Fatalf("next vpid = %d", q.VPID)
	}
}

func TestDestroyDetachesStack(t *testing.T) {
	w, n, nw, fs := setup(t)
	p, _ := New("pod0", n, nw, fs, 1)
	s := &spinner{}
	p.AddProcess(s)
	w.RunUntil(sim.Time(5 * sim.Millisecond))
	p.Destroy()
	if !p.Destroyed() {
		t.Fatal("not destroyed")
	}
	if _, ok := nw.Stack(1); ok {
		t.Fatal("stack still attached")
	}
	d := s.Done
	w.RunUntil(w.Now() + sim.Time(50*sim.Millisecond))
	if s.Done != d {
		t.Fatal("destroyed pod's process kept running")
	}
	// The virtual IP is free again: a restored pod can claim it.
	if _, err := New("pod0-restored", n, nw, fs, 1); err != nil {
		t.Fatalf("cannot recreate pod at same VIP: %v", err)
	}
}

func TestProcsDropsExited(t *testing.T) {
	w, n, nw, fs := setup(t)
	p, _ := New("pod0", n, nw, fs, 1)
	p.AddProcess(&spinner{Limit: 2})
	p.AddProcess(&spinner{}) // runs forever
	w.RunUntil(sim.Time(50 * sim.Millisecond))
	if got := len(p.Procs()); got != 1 {
		t.Fatalf("live procs = %d, want 1", got)
	}
}

func TestPodEnvVirtualized(t *testing.T) {
	_, n, nw, fs := setup(t)
	p, _ := New("pod0", n, nw, fs, 1)
	if !p.Env().Virtualized {
		t.Fatal("pod env not virtualized")
	}
	if p.Env().Stack != p.Stack() {
		t.Fatal("env stack mismatch")
	}
	if p.Stack().IPAddr() != p.VirtualIP() {
		t.Fatal("vip mismatch")
	}
}
