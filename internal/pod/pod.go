// Package pod implements the pod (PrOcess Domain) abstraction from Zap
// that ZapC builds on: a self-contained virtual execution environment
// with a private namespace that decouples its member processes from the
// host node.
//
// A pod owns a virtual network stack (its constant virtual IP is
// transparently remapped to wherever the pod currently runs), assigns
// stable virtual PIDs that survive migration even when the destination
// node hands out different real PIDs, and biases application-visible
// time so that timeouts behave across a checkpoint/restart gap. The pod
// is the minimal unit of checkpointing and migration: a distributed
// application running on N nodes is a set of pods, ideally one per
// application endpoint, which is what lets ZapC restart on M != N nodes.
package pod

import (
	"fmt"
	"sort"

	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// Pod is one process domain.
type Pod struct {
	name      string
	node      *vos.Node
	network   *netstack.Network
	stack     *netstack.Stack
	env       *vos.Env
	procs     map[vos.PID]*vos.Process // by virtual PID
	nextVPID  vos.PID
	vip       netstack.IP
	destroyed bool
	frozen    bool
	frozenAt  sim.Time
}

// DefaultVirtOverhead is the per-syscall cost of the thin virtualization
// layer (system-call interposition through a loadable kernel module).
// The paper measures it as negligible against application runtime.
const DefaultVirtOverhead = 150 * sim.Nanosecond

// New creates an empty pod on the given node with the given constant
// virtual IP, attaching a fresh network stack to the cluster network.
func New(name string, node *vos.Node, nw *netstack.Network, fs *memfs.FS, vip netstack.IP) (*Pod, error) {
	st, err := nw.NewStack(vip)
	if err != nil {
		return nil, fmt.Errorf("pod %s: %w", name, err)
	}
	return &Pod{
		name:    name,
		node:    node,
		network: nw,
		stack:   st,
		env: &vos.Env{
			Stack:        st,
			FS:           fs,
			Virtualized:  true,
			VirtOverhead: DefaultVirtOverhead,
		},
		procs:    make(map[vos.PID]*vos.Process),
		nextVPID: 1,
		vip:      vip,
	}, nil
}

// Name returns the pod's name.
func (p *Pod) Name() string { return p.name }

// Node returns the hosting node.
func (p *Pod) Node() *vos.Node { return p.node }

// Stack returns the pod's private network stack.
func (p *Pod) Stack() *netstack.Stack { return p.stack }

// VirtualIP returns the pod's constant virtual address.
func (p *Pod) VirtualIP() netstack.IP { return p.vip }

// Env returns the pod's shared process environment.
func (p *Pod) Env() *vos.Env { return p.env }

// Destroyed reports whether the pod has been torn down.
func (p *Pod) Destroyed() bool { return p.destroyed }

// AddProcess spawns a program inside the pod, assigning the next virtual
// PID. Names within a pod are assigned the way a traditional OS assigns
// them, but localized to the pod.
func (p *Pod) AddProcess(prog vos.Program) *vos.Process {
	return p.addProcess(prog, false)
}

// AddProcessStopped spawns a program in the SIGSTOPped state (restart
// builds the entire pod before anything runs).
func (p *Pod) AddProcessStopped(prog vos.Program) *vos.Process {
	return p.addProcess(prog, true)
}

func (p *Pod) addProcess(prog vos.Program, stopped bool) *vos.Process {
	var proc *vos.Process
	if stopped {
		proc = p.node.SpawnStopped(prog, p.env)
	} else {
		proc = p.node.Spawn(prog, p.env)
	}
	if proc == nil {
		return nil
	}
	proc.VPID = p.nextVPID
	p.nextVPID++
	p.procs[proc.VPID] = proc
	return proc
}

// AddRestoredProcess spawns a stopped process with an explicit virtual
// PID (the restart path preserves VPIDs from the checkpoint image, even
// though the node will generally assign a different real PID).
func (p *Pod) AddRestoredProcess(prog vos.Program, vpid vos.PID) (*vos.Process, error) {
	if _, taken := p.procs[vpid]; taken {
		return nil, fmt.Errorf("pod %s: vpid %d already in use", p.name, vpid)
	}
	proc := p.node.SpawnStopped(prog, p.env)
	if proc == nil {
		return nil, fmt.Errorf("pod %s: node %s refused spawn", p.name, p.node.Name())
	}
	proc.VPID = vpid
	p.procs[vpid] = proc
	if vpid >= p.nextVPID {
		p.nextVPID = vpid + 1
	}
	return proc, nil
}

// Lookup resolves a virtual PID.
func (p *Pod) Lookup(vpid vos.PID) (*vos.Process, bool) {
	proc, ok := p.procs[vpid]
	return proc, ok
}

// Procs returns member processes in virtual-PID order, dropping exited
// ones from the table as a side effect.
func (p *Pod) Procs() []*vos.Process {
	vpids := make([]int, 0, len(p.procs))
	for vpid, proc := range p.procs {
		if proc.Status() == vos.StatusExited {
			delete(p.procs, vpid)
			continue
		}
		vpids = append(vpids, int(vpid))
	}
	sort.Ints(vpids)
	out := make([]*vos.Process, 0, len(vpids))
	for _, vpid := range vpids {
		out = append(out, p.procs[vos.PID(vpid)])
	}
	return out
}

// Suspend sends SIGSTOP to every member process (checkpoint step 1) and
// freezes the pod's virtual clock at the suspension instant: the
// application never observes time passing while stopped, so a
// checkpoint image stamps the quiesce instant rather than whenever the
// coordinator got around to the capture step. That makes image bytes a
// pure function of the frozen pod state, independent of control-plane
// latency (and so identical across coordination topologies).
func (p *Pod) Suspend() {
	if !p.frozen {
		p.frozenAt = p.VirtualNow()
		p.frozen = true
	}
	for _, proc := range p.Procs() {
		proc.Signal(vos.SIGSTOP)
	}
}

// Resume sends SIGCONT to every member process (snapshot continuation)
// and unfreezes the virtual clock.
func (p *Pod) Resume() {
	p.frozen = false
	for _, proc := range p.Procs() {
		proc.Signal(vos.SIGCONT)
	}
}

// Quiescent reports whether every member process is unable to run — the
// condition the checkpoint agent needs before saving state.
func (p *Pod) Quiescent() bool {
	for _, proc := range p.Procs() {
		if !proc.Quiescent() {
			return false
		}
	}
	return true
}

// BlockNetwork installs the netfilter rule freezing all pod traffic.
func (p *Pod) BlockNetwork() { p.stack.Filter().BlockAll() }

// UnblockNetwork removes the freeze rule.
func (p *Pod) UnblockNetwork() { p.stack.Filter().UnblockAll() }

// NetworkBlocked reports whether the pod's traffic is frozen.
func (p *Pod) NetworkBlocked() bool { return p.stack.Filter().Blocked() }

// VirtualNow returns the application-visible time inside the pod. While
// the pod is suspended it holds at the suspension instant (see
// Suspend).
func (p *Pod) VirtualNow() sim.Time {
	if p.frozen {
		return p.frozenAt
	}
	return p.node.World().Now() + sim.Time(p.env.TimeBias)
}

// SetTimeBias adjusts the pod's clock so application-visible time equals
// virtualNow (restart sets it to the virtual time recorded at
// checkpoint, hiding the gap from application timeout logic).
func (p *Pod) SetTimeBias(virtualNow sim.Time) {
	p.env.TimeBias = sim.Duration(virtualNow - p.node.World().Now())
}

// Destroy tears the pod down: members are detached from the node and the
// stack leaves the network (migration after a successful checkpoint, or
// abort cleanup).
func (p *Pod) Destroy() {
	if p.destroyed {
		return
	}
	p.destroyed = true
	for _, proc := range p.Procs() {
		p.node.Remove(proc)
	}
	p.procs = make(map[vos.PID]*vos.Process)
	p.network.Detach(p.stack)
}
