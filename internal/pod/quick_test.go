package pod

import (
	"testing"
	"testing/quick"

	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// Property: for any interleaving of AddProcess and AddRestoredProcess
// calls, virtual PIDs stay unique within the pod and fresh allocations
// never collide with restored ones.
func TestQuickVPIDUniqueness(t *testing.T) {
	f := func(ops []uint8) bool {
		w := sim.NewWorld(2)
		nw := netstack.NewNetwork(w)
		n := vos.NewNode(w, "n", 1)
		p, err := New("q", n, nw, memfs.New(), 1)
		if err != nil {
			return false
		}
		seen := map[vos.PID]bool{}
		for _, op := range ops {
			if op%3 == 0 {
				// Restore at an arbitrary VPID; duplicates must be
				// rejected, non-duplicates recorded.
				vpid := vos.PID(op%32 + 1)
				proc, err := p.AddRestoredProcess(&spinner{}, vpid)
				if seen[vpid] {
					if err == nil {
						return false // accepted duplicate
					}
					continue
				}
				if err != nil || proc.VPID != vpid {
					return false
				}
				seen[vpid] = true
			} else {
				proc := p.AddProcess(&spinner{})
				if proc == nil || seen[proc.VPID] {
					return false
				}
				seen[proc.VPID] = true
			}
		}
		return len(p.Procs()) == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: suspend/resume cycles never lose processes and always reach
// quiescence.
func TestQuickSuspendResumeCycles(t *testing.T) {
	f := func(cycles uint8, procs uint8) bool {
		w := sim.NewWorld(3)
		nw := netstack.NewNetwork(w)
		n := vos.NewNode(w, "n", 2)
		p, err := New("q", n, nw, memfs.New(), 1)
		if err != nil {
			return false
		}
		count := int(procs%5) + 1
		for i := 0; i < count; i++ {
			p.AddProcess(&spinner{})
		}
		for c := 0; c < int(cycles%6); c++ {
			p.Suspend()
			p.BlockNetwork()
			deadline := w.Now() + sim.Time(sim.Second)
			for !p.Quiescent() && w.Now() < deadline {
				if !w.Step() {
					break
				}
			}
			if !p.Quiescent() {
				return false
			}
			p.UnblockNetwork()
			p.Resume()
			w.RunUntil(w.Now() + sim.Time(10*sim.Millisecond))
		}
		return len(p.Procs()) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
