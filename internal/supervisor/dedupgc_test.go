// Refcounted block GC racing a crash mid-commit. With generations
// flowing through the content-deduplicated store, a checkpoint attempt
// whose storage dies between block commit and manifest commit must
// leave the store exactly as it was: no block a retained chain
// references may be deleted, and no block of the dead attempt may
// survive as an orphan. The supervisor's retention GC then removes
// whole chains through DedupStore.Remove, and the Sweep hook collects
// anything left below the image paths — after recovery the store holds
// precisely the blocks the advertised generations reference.
package supervisor_test

import (
	"io"
	"strings"
	"testing"

	"zapc/internal/cluster"
	"zapc/internal/core"
	"zapc/internal/faultinject"
	"zapc/internal/imagestore"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
)

func TestDedupGCNeverStrandsReferencedBlocks(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.03, Scale: 0.001}
	const seed = 5
	want, refDur := reference(t, seed, spec)

	c := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Layering: dedup over the truncation fault over the filesystem, so
	// an armed cut kills a *block* stream under an in-flight manifest —
	// the storage-dies-mid-commit case the pin/ref protocol exists for.
	trunc := imagestore.Truncating(c.Mgr.Store())
	c.Mgr.SetStore(trunc)
	ded := c.EnableDedupStore()

	pol := supervisor.Policy{
		Incremental:       true,
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   refDur / 8,
		Retain:            2,
		Dir:               "dedupgc",
	}
	sup, err := c.Supervise(job, pol)
	if err != nil {
		t.Fatal(err)
	}

	// Arm a write cut on the third checkpoint, after earlier generations
	// committed blocks the dead attempt will share.
	inj := faultinject.New(c.W, c.FS)
	inj.ObservePhases(c.Mgr)
	if err := inj.Arm([]faultinject.Step{{
		Name: "cut", Phase: core.PhaseCheckpointStart, PhaseSkip: 2,
		Action: faultinject.ActTruncateStream, Trunc: trunc, Count: 1,
	}}); err != nil {
		t.Fatal(err)
	}

	// readBack streams every record of every advertised generation
	// through the dedup store — failing if the abort cleanup (or a later
	// GC) deleted a block a retained manifest still references.
	readBack := func(stage string) {
		t.Helper()
		for _, g := range sup.Generations() {
			for _, f := range ded.List(g.Dir) {
				rc, err := ded.Open(f)
				if err == nil {
					_, err = io.ReadAll(rc)
					rc.Close()
				}
				if err != nil {
					t.Fatalf("%s: advertised record %s lost a block: %v", stage, f, err)
				}
			}
		}
	}

	// Stage 1: the cut fires; the flush abort and scrap run in the same
	// event, so once it is observable the cleanup is done.
	if err := c.Drive(func() bool { return len(trunc.Cuts()) == 1 }, deadline); err != nil {
		t.Fatalf("cut never fired: %v (events: %v)", err, sup.Events())
	}
	if len(sup.Generations()) == 0 {
		t.Fatal("no generation committed before the cut")
	}
	readBack("after aborted commit")
	if n := ded.Sweep(); n != 0 {
		t.Fatalf("dead attempt stranded %d orphan blocks (writer release did not run)", n)
	}

	// Stage 2: crash a node so recovery restarts from the newest valid
	// generation and retention GC churns chains through the dedup store.
	kill := faultinject.New(c.W, nil)
	if err := kill.Arm([]faultinject.Step{{
		Name: "kill", After: sim.Millisecond,
		Action: faultinject.ActCrashNode, Node: c.Nodes[1],
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatalf("drive: %v (supervisor: %v, events: %v)", err, sup.Err(), sup.Events())
	}
	if err := c.Drive(func() bool { return !sup.Running() }, 60*sim.Second); err != nil {
		t.Fatalf("supervisor never stood down: %v", err)
	}
	if got := job.Result(); got != want {
		t.Fatalf("recovered result %v != reference %v", got, want)
	}
	if sup.Stats().Failovers < 1 {
		t.Fatalf("no failover happened; events: %v", sup.Events())
	}

	// End state: every advertised generation is whole, and the block
	// namespace holds not one byte beyond what those generations
	// reference — GC plus sweep left no orphans behind.
	readBack("after recovery and GC")
	if n := ded.Sweep(); n != 0 {
		t.Fatalf("retention GC left %d orphan blocks for the sweep", n)
	}
	u := ded.Usage()
	if u.Images == 0 || u.Blocks == 0 {
		t.Fatalf("store emptied out: %+v", u)
	}
	for _, f := range trunc.Cuts() {
		if !strings.HasPrefix(f, "!dedup/") && !strings.HasPrefix(f, "dedupgc/") {
			t.Fatalf("cut landed outside the generation store: %q", f)
		}
	}
}
