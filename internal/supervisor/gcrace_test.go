// Chain GC racing a crash mid-flush. A generation whose flush dies
// between Store.Create and commit (the stream is cut before Close, so
// the atomic store never publishes the file) must never be selected as
// a restart source, its partial sibling records must be scrapped
// immediately, and after recovery the retention GC must leave the
// shared filesystem holding exactly the generations the supervisor
// still advertises — no orphaned directories from the dead attempt.
package supervisor_test

import (
	"path"
	"strings"
	"testing"

	"zapc/internal/cluster"
	"zapc/internal/core"
	"zapc/internal/faultinject"
	"zapc/internal/imagestore"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
)

func TestGCCollectsGenerationDyingMidFlush(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.03, Scale: 0.001}
	for _, tc := range []struct {
		label string
		pol   supervisor.Policy
	}{
		{"stop-and-copy", supervisor.Policy{StopAndCopy: true}},
		{"incremental-chain", supervisor.Policy{Incremental: true}},
	} {
		t.Run(tc.label, func(t *testing.T) {
			const seed = 5
			want, refDur := reference(t, seed, spec)

			c := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
			job, err := c.Launch(spec)
			if err != nil {
				t.Fatal(err)
			}
			trunc := imagestore.Truncating(c.Mgr.Store())
			c.Mgr.SetStore(trunc)
			pol := tc.pol
			pol.HeartbeatInterval = 50 * sim.Millisecond
			pol.CheckpointEvery = refDur / 8
			pol.Retain = 2
			pol.Dir = "gcrace"
			sup, err := c.Supervise(job, pol)
			if err != nil {
				t.Fatal(err)
			}

			// Arm a write cut on the third checkpoint: its first record
			// stream dies mid-flush, after earlier generations committed.
			inj := faultinject.New(c.W, c.FS)
			inj.ObservePhases(c.Mgr)
			if err := inj.Arm([]faultinject.Step{{
				Name: "cut", Phase: core.PhaseCheckpointStart, PhaseSkip: 2,
				Action: faultinject.ActTruncateStream, Trunc: trunc, Count: 1,
			}}); err != nil {
				t.Fatal(err)
			}

			// Stage 1: run until the cut fires. The flush loop, the abort,
			// and the scrap are synchronous within one event, so once the
			// cut is observable the cleanup already ran.
			if err := c.Drive(func() bool { return len(trunc.Cuts()) == 1 }, deadline); err != nil {
				t.Fatalf("cut never fired: %v (events: %v)", err, sup.Events())
			}
			cutDir := path.Dir(trunc.Cuts()[0])
			if !strings.HasPrefix(cutDir, "gcrace/") {
				t.Fatalf("cut landed outside the generation store: %q", trunc.Cuts()[0])
			}
			if files := c.Mgr.Store().List(cutDir); len(files) != 0 {
				t.Fatalf("partial generation %s survived the scrap: %v", cutDir, files)
			}
			gens := sup.Generations()
			if len(gens) == 0 {
				t.Fatal("no generation committed before the cut")
			}
			for _, g := range gens {
				if g.Dir == cutDir {
					t.Fatalf("generation dying mid-flush is advertised as a restart source: %+v", g)
				}
			}
			var retried bool
			for _, ev := range sup.EventsOf(supervisor.EvRetry) {
				if strings.Contains(ev.Detail, "image stream truncated") {
					retried = true
				}
			}
			if !retried {
				t.Fatalf("abort did not carry the named truncation error; events: %v", sup.Events())
			}

			// Stage 2: crash a node before the retry can recommit — the
			// failover must restart from the newest *valid* generation,
			// never even considering the dead attempt.
			kill := faultinject.New(c.W, nil)
			if err := kill.Arm([]faultinject.Step{{
				Name: "kill", After: sim.Millisecond,
				Action: faultinject.ActCrashNode, Node: c.Nodes[1],
			}}); err != nil {
				t.Fatal(err)
			}
			if err := c.Drive(job.Finished, deadline); err != nil {
				t.Fatalf("drive: %v (supervisor: %v, events: %v)", err, sup.Err(), sup.Events())
			}
			if err := c.Drive(func() bool { return !sup.Running() }, 60*sim.Second); err != nil {
				t.Fatalf("supervisor never stood down: %v", err)
			}

			if got := job.Result(); got != want {
				t.Fatalf("recovered result %v != reference %v", got, want)
			}
			st := sup.Stats()
			if st.Failovers < 1 {
				t.Fatalf("no failover happened; events: %v", sup.Events())
			}
			if st.CorruptSkipped != 0 {
				t.Fatalf("recovery considered %d invalid generations; the dead attempt leaked into selection",
					st.CorruptSkipped)
			}

			// Retention GC across the failover: the store holds exactly the
			// directories the supervisor still advertises, each non-empty.
			advertised := make(map[string]bool)
			for _, g := range sup.Generations() {
				advertised[g.Dir] = true
				if len(c.Mgr.Store().List(g.Dir)) == 0 {
					t.Fatalf("advertised generation %s has no records on disk", g.Dir)
				}
			}
			onDisk := make(map[string]bool)
			for _, f := range c.Mgr.Store().List("gcrace") {
				onDisk[path.Dir(f)] = true
			}
			for dir := range onDisk {
				if !advertised[dir] {
					t.Fatalf("orphan generation directory %s not collected by GC (advertised: %v)",
						dir, sup.Generations())
				}
			}
		})
	}
}
