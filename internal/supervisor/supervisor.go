// Package supervisor implements the self-healing layer on top of the
// coordinated checkpoint-restart mechanism of internal/core: the piece
// that turns the paper's headline use case — periodically checkpoint a
// distributed application and restart it on surviving nodes after a
// crash — from a hand-driven script into an autonomous control loop,
// in the spirit of the DMTCP coordinator (Ansel et al.).
//
// The supervisor runs entirely as events on the simulated clock, so a
// caller simply drives the cluster toward job completion and recovery
// happens "underneath" deterministically. It combines four mechanisms:
//
//   - a heartbeat-based failure detector: each monitored node is pinged
//     over the control plane every HeartbeatInterval; a node whose pong
//     has not been seen for HeartbeatTimeout is declared failed — no
//     oracle access to Node.Failed() in the detection decision;
//   - a periodic checkpoint policy: every CheckpointEvery the job is
//     coordinately checkpointed to a fresh generation directory on the
//     shared filesystem, with exponential-backoff retry when an attempt
//     aborts (transient control-plane fault, watchdog timeout);
//   - bounded retention of validated generations: each flushed image is
//     read back and CRC-verified via the imgfmt trailer before the
//     generation is trusted; generations beyond Retain are garbage
//     collected oldest-first;
//   - automatic failover: on a detected node failure the job's pods are
//     torn down and the application is restarted from the newest valid
//     generation onto the surviving (or spare) nodes, re-driving the
//     ordinary coordinated restart path. A generation that got
//     corrupted on storage after it was written is skipped in favor of
//     the previous valid one.
package supervisor

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"zapc/internal/ckpt"
	"zapc/internal/coord"
	"zapc/internal/core"
	"zapc/internal/imagestore"
	"zapc/internal/memfs"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/trace"
	"zapc/internal/vos"
)

// Errors surfaced through Supervisor.Err.
var (
	ErrNoValidCheckpoint = errors.New("supervisor: no valid checkpoint generation to restart from")
	ErrNoSurvivors       = errors.New("supervisor: no surviving nodes to restart onto")
	ErrGivenUp           = errors.New("supervisor: retry budget exhausted")
)

// Policy tunes the supervision loop. Zero values select the defaults
// noted on each field.
type Policy struct {
	// HeartbeatInterval is the failure-detector ping period
	// (default 250ms).
	HeartbeatInterval sim.Duration
	// HeartbeatTimeout declares a node failed when no pong has been
	// seen for this long (default 4x HeartbeatInterval).
	HeartbeatTimeout sim.Duration
	// CheckpointEvery is the periodic checkpoint interval (default 10s;
	// negative disables periodic checkpoints — detector-only mode).
	CheckpointEvery sim.Duration
	// CheckpointTimeout is the per-attempt watchdog handed to the
	// coordinated checkpoint (default 5s).
	CheckpointTimeout sim.Duration
	// MaxRetries bounds checkpoint retry attempts per period and
	// restart attempts per failover (default 4).
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubling per attempt
	// (default 250ms).
	RetryBackoff sim.Duration
	// MaxBackoff caps the exponential backoff (default 8s).
	MaxBackoff sim.Duration
	// Retain is how many validated generations are kept on the shared
	// filesystem; older ones are garbage collected (default 3). With
	// incremental checkpointing, collection is chain-aware: a full
	// generation is only dropped together with every delta that depends
	// on it, so slightly more than Retain generations may be kept.
	Retain int
	// Dir is the filesystem prefix for generation directories
	// (default "supervisor").
	Dir string
	// Incremental enables incremental checkpointing: generations
	// between full images are delta records holding only the state
	// mutated since the previous generation.
	Incremental bool
	// FullEvery is the incremental chain length bound — every
	// FullEvery-th generation is a full image (default 4; only
	// meaningful with Incremental).
	FullEvery int
	// Workers is the serialization worker-pool width handed to the
	// coordinated operations (0 = sequential).
	Workers int
	// StopAndCopy forces classic stop-and-copy checkpoints. By default
	// non-incremental periodic checkpoints run in pre-copy mode — the
	// pods keep executing through the bulk of each serialization and are
	// only quiesced for the residual dirty set, which is what makes
	// frequent checkpoints affordable downtime-wise.
	StopAndCopy bool
	// PrecopyMaxRounds bounds the live pre-copy rounds per checkpoint
	// (0 selects core.DefaultPrecopyMaxRounds).
	PrecopyMaxRounds int
	// PrecopyConvergeBytes is the pre-copy convergence threshold
	// (0 selects core.DefaultPrecopyConvergeBytes).
	PrecopyConvergeBytes int64
	// Fanout selects the coordination-tree arity handed to the
	// coordinated checkpoint and restart operations. Positive values
	// route control traffic through a k-ary tree of sub-coordinators;
	// zero keeps the manager's default (flat) topology.
	Fanout int
}

func (p Policy) withDefaults() Policy {
	if p.HeartbeatInterval <= 0 {
		p.HeartbeatInterval = 250 * sim.Millisecond
	}
	if p.HeartbeatTimeout <= 0 {
		p.HeartbeatTimeout = 4 * p.HeartbeatInterval
	}
	if p.CheckpointEvery == 0 {
		p.CheckpointEvery = 10 * sim.Second
	}
	if p.CheckpointTimeout <= 0 {
		p.CheckpointTimeout = 5 * sim.Second
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 4
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = 250 * sim.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 8 * sim.Second
	}
	if p.Retain <= 0 {
		p.Retain = 3
	}
	if p.Dir == "" {
		p.Dir = "supervisor"
	}
	if p.Incremental && p.FullEvery <= 1 {
		p.FullEvery = 4
	}
	return p
}

// Target is the supervised system, expressed as the narrow adapter the
// cluster layer passes in (the supervisor sits below the cluster
// package so that Cluster can expose a Supervise method).
type Target struct {
	W   *sim.World
	Mgr *core.Manager
	FS  *memfs.FS
	// Store is where generations are validated and loaded from; nil
	// selects the shared filesystem (imagestore.NewFS(FS)). It should
	// match the manager's store, which is where FlushTo streams the
	// records.
	Store imagestore.Store
	// Pods returns the job's current pods (changes after a failover).
	Pods func() []*pod.Pod
	// Nodes returns every node restart placement may consider; the
	// supervisor filters out failed ones, so spares added to the
	// cluster are picked up automatically.
	Nodes func() []*vos.Node
	// Rebind points the job at its restored pods after a failover.
	Rebind func([]*pod.Pod) error
	// Finished reports job completion; the supervisor stands down once
	// it holds.
	Finished func() bool
}

// EventKind classifies supervisor log events.
type EventKind string

// Event kinds recorded by the supervisor.
const (
	EvCheckpoint   EventKind = "checkpoint"    // generation committed
	EvRetry        EventKind = "ckpt-retry"    // attempt aborted, backing off
	EvCkptGiveUp   EventKind = "ckpt-give-up"  // retry budget exhausted this period
	EvNodeDown     EventKind = "node-down"     // heartbeat timeout expired
	EvFailover     EventKind = "failover"      // job restarted on survivors
	EvSkipCorrupt  EventKind = "skip-corrupt"  // generation failed CRC validation
	EvRestartRetry EventKind = "restart-retry" // restart attempt failed, backing off
	EvGC           EventKind = "gc"            // old generation collected
	EvGCPin        EventKind = "gc-pin"        // retention held open by the standby ack watermark
	EvReplicate    EventKind = "replicate"     // standby acknowledged replicated generations
	EvReplicaErr   EventKind = "replica-err"   // replication stream error or promotion fallback
	EvPromote      EventKind = "promote"       // standby promoted on failover
	EvHalt         EventKind = "halt"          // supervisor gave up (see Err)
	EvDone         EventKind = "done"          // job finished, standing down
)

// Event is one entry of the supervisor's activity log.
type Event struct {
	T      sim.Time
	Kind   EventKind
	Detail string
}

func (e Event) String() string { return fmt.Sprintf("t=%v %s: %s", e.T, e.Kind, e.Detail) }

// Stats counts supervisor activity.
type Stats struct {
	Checkpoints    int // generations committed
	Retries        int // checkpoint attempts retried
	Failovers      int // successful automatic restarts
	NodesDeclared  int // node failures declared by the detector
	CorruptSkipped int // generations skipped for failed validation
	GCCollected    int // generations garbage collected
	GCPinned       int // gc passes held open by the standby ack watermark
	Promotions     int // failovers served by promoting the warm standby
	ReplicaErrors  int // replication sync errors and promotion fallbacks
	// LastRTO is the recovery window of the most recent successful
	// failover: heartbeat-miss instant to pods-serving instant (0 before
	// the first failover).
	LastRTO sim.Duration
	// LastRPO is the data-loss window of the most recent successful
	// failover: virtual time between the commit of the generation
	// actually restored from and the heartbeat-miss instant.
	LastRPO sim.Duration
}

// Replica is a warm-standby replication plane attached to the
// supervisor (see internal/standby). The supervisor ships every
// committed generation to it, consults its acknowledgement watermark
// before collecting a chain, and promotes it on failover instead of
// restoring from the store.
type Replica interface {
	// Sync ships every committed generation the replica has not yet
	// acknowledged, oldest first, and applies each into the standby's
	// shadow state. done fires exactly once — nil when the ack
	// watermark reached the newest shipped generation, or the first
	// transport/apply error (a cut stream surfaces as
	// imagestore.ErrTruncatedStream naming the pod). Sync never blocks
	// the caller: all work happens on simulation events, and a failed
	// sync must never abort the primary's checkpoint cycle.
	Sync(gens []Generation, done func(error))
	// AckedSeq is the newest generation sequence the standby has fully
	// received AND applied into its shadows (-1 before the first).
	AckedSeq() int
	// Ready reports whether the standby can still be promoted: its
	// node is alive and no previous promotion consumed it.
	Ready() bool
	// Node is the standby node promotion places the pods onto.
	Node() *vos.Node
	// Promote performs bounded catch-up (applying any generation whose
	// records are fully received but not yet applied), retires the
	// replica, and hands over the shadow images sorted by pod name
	// together with the commit time of the generation they represent.
	Promote(cb func(images []*ckpt.Image, genT sim.Time, err error))
}

// Generation is one committed checkpoint generation.
type Generation struct {
	Seq   int
	Dir   string
	T     sim.Time // commit time
	Bytes int64    // serialized size of all records in the directory
	// Full marks a full-image generation; false means the directory
	// holds delta records whose restore needs the chain back to the
	// nearest full generation.
	Full bool
}

// Supervisor is the self-healing control loop for one job.
type Supervisor struct {
	t   Target
	pol Policy

	running        bool
	done           bool
	haltErr        error
	ckptBusy       bool
	recovering     bool
	pendingRecover bool

	gen     int           // next generation sequence number
	gens    []Generation  // committed generations, oldest first
	attempt int           // current retry attempt (checkpoint or restart)
	incr    *ckpt.IncrSet // non-nil in incremental mode

	monitored []*vos.Node
	lastSeen  map[*vos.Node]sim.Time
	declared  map[*vos.Node]bool

	ctrlHook core.CtrlHook

	replica  Replica
	syncBusy bool

	hbTimer    sim.EventID
	ckptTimer  sim.EventID
	retryTimer sim.EventID // pending checkpoint retry backoff, for preemption

	events []Event
	stats  Stats

	tr        *trace.Tracer
	reg       *trace.Registry
	cycleSpan *trace.Span // supervisor/ckpt-cycle, open across retries
	recSpan   *trace.Span // supervisor/failover, open across retries

	// RTO bookkeeping. pendingMissT/pendingDetectT capture the first
	// unclaimed failure declaration (the heartbeat-miss instant and the
	// declaration instant); the next recovery episode consumes them into
	// recMissT/recDetectT. recGenT is the commit time of the generation
	// the episode actually restored from.
	pendingMissT   sim.Time
	pendingDetectT sim.Time
	recMissT       sim.Time
	recGenT        sim.Time
}

// New builds a supervisor for the target under the given policy. Call
// Start to arm it.
func New(t Target, pol Policy) *Supervisor {
	if t.Store == nil {
		t.Store = imagestore.NewFS(t.FS)
	}
	s := &Supervisor{
		t:        t,
		pol:      pol.withDefaults(),
		lastSeen: make(map[*vos.Node]sim.Time),
		declared: make(map[*vos.Node]bool),
	}
	if s.pol.Incremental {
		s.incr = ckpt.NewIncrSet(s.pol.FullEvery)
	}
	return s
}

// Policy returns the effective (defaulted) policy.
func (s *Supervisor) Policy() Policy { return s.pol }

// SetCtrlHook installs a control-plane perturbation hook applied to the
// supervisor's heartbeat messages (the fault-injection harness shares
// one hook between the supervisor and the core manager).
func (s *Supervisor) SetCtrlHook(h core.CtrlHook) { s.ctrlHook = h }

// SetReplica attaches a warm-standby replication plane: every committed
// generation is streamed to it, retention never collects past its ack
// watermark, and failover promotes it instead of restoring from the
// store (falling back to the store path if the standby is dead or the
// handover fails). Passing nil detaches.
func (s *Supervisor) SetReplica(r Replica) {
	s.replica = r
	s.syncReplica()
}

// Replica returns the attached replication plane (nil when detached).
func (s *Supervisor) Replica() Replica { return s.replica }

// Events returns the activity log.
func (s *Supervisor) Events() []Event { return s.events }

// EventsOf filters the activity log by kind.
func (s *Supervisor) EventsOf(kind EventKind) []Event {
	var out []Event
	for _, e := range s.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Stats returns activity counters.
func (s *Supervisor) Stats() Stats { return s.stats }

// Generations returns the currently retained generations, oldest first.
func (s *Supervisor) Generations() []Generation {
	return append([]Generation(nil), s.gens...)
}

// Err reports why the supervisor halted, if it did.
func (s *Supervisor) Err() error { return s.haltErr }

// Running reports whether the loop is armed.
func (s *Supervisor) Running() bool { return s.running && !s.done }

// SetTracer installs an observability pair: every activity-log event is
// then mirrored as a structured "supervisor/<kind>" instant on the
// supervisor track, control-loop phases become spans, and the registry
// accumulates supervision counters. Either may be nil; the default (both
// nil) keeps the supervisor quiet.
func (s *Supervisor) SetTracer(tr *trace.Tracer, reg *trace.Registry) {
	s.tr = tr
	s.reg = reg
}

// counterOf maps a log-event kind to its registry counter name ("" for
// kinds that are not counted).
func counterOf(kind EventKind) string {
	switch kind {
	case EvCheckpoint:
		return "supervisor_checkpoints_total"
	case EvRetry:
		return "supervisor_ckpt_retries_total"
	case EvNodeDown:
		return "supervisor_nodes_declared_total"
	case EvFailover:
		return "supervisor_failovers_total"
	case EvSkipCorrupt:
		return "supervisor_corrupt_skipped_total"
	case EvRestartRetry:
		return "supervisor_restart_retries_total"
	case EvGC:
		return "supervisor_gc_total"
	case EvGCPin:
		return "supervisor_gc_pins_total"
	case EvReplicate:
		return "supervisor_replica_syncs_total"
	case EvReplicaErr:
		return "supervisor_replica_errors_total"
	case EvPromote:
		return "supervisor_promotions_total"
	}
	return ""
}

func (s *Supervisor) log(kind EventKind, format string, args ...any) {
	s.logA(kind, nil, format, args...)
}

// logA is log with extra structured attributes on the mirrored trace
// instant (the activity-log entry itself stays plain text).
func (s *Supervisor) logA(kind EventKind, attrs []trace.Attr, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	s.events = append(s.events, Event{T: s.t.W.Now(), Kind: kind, Detail: detail})
	all := append([]trace.Attr{trace.Track("supervisor"), trace.Str("detail", detail)}, attrs...)
	s.tr.Instant(nil, "supervisor/"+string(kind), all...)
	if name := counterOf(kind); name != "" {
		s.reg.Counter(name).Add(1)
	}
}

// endCycleSpan closes the current checkpoint-cycle span, if one is open.
func (s *Supervisor) endCycleSpan(outcome string) {
	if s.cycleSpan != nil {
		s.cycleSpan.End(trace.Str("outcome", outcome))
		s.cycleSpan = nil
	}
}

// endRecSpan closes the current failover span, if one is open, with the
// outcome plus any extra attributes.
func (s *Supervisor) endRecSpan(outcome string, attrs ...trace.Attr) {
	if s.recSpan != nil {
		s.recSpan.End(append([]trace.Attr{trace.Str("outcome", outcome)}, attrs...)...)
		s.recSpan = nil
	}
}

// opSpan is the causal parent for supervisor sub-phase spans: the open
// failover span during recovery, the checkpoint-cycle span during a
// cycle, nil otherwise. Nesting the sub-phases keeps the critical-path
// analyzer's DAG explicit instead of relying on containment adoption.
func (s *Supervisor) opSpan() *trace.Span {
	if s.recSpan != nil {
		return s.recSpan
	}
	return s.cycleSpan
}

// Start arms the failure detector and the checkpoint policy.
func (s *Supervisor) Start() {
	if s.running {
		return
	}
	s.running = true
	s.resetMonitoring()
	s.hbTimer = s.t.W.After(s.pol.HeartbeatInterval, s.hbTick)
	if s.pol.CheckpointEvery > 0 {
		s.ckptTimer = s.t.W.After(s.pol.CheckpointEvery, s.ckptTick)
	}
}

// Stop stands the supervisor down and cancels its timers.
func (s *Supervisor) Stop() {
	if !s.running || s.done {
		return
	}
	s.done = true
	s.t.W.Cancel(s.hbTimer)
	s.t.W.Cancel(s.ckptTimer)
	s.endCycleSpan("stopped")
	s.endRecSpan("stopped")
}

// halt is a terminal Stop with a recorded reason.
func (s *Supervisor) halt(err error) {
	s.haltErr = err
	s.log(EvHalt, "%v", err)
	s.endCycleSpan("halt")
	s.endRecSpan("halt")
	s.Stop()
}

// finishIfDone stands down once the job completes; it reports whether
// the supervisor is no longer active.
func (s *Supervisor) finishIfDone() bool {
	if s.done {
		return true
	}
	if s.t.Finished() {
		s.log(EvDone, "job finished, supervisor standing down")
		s.Stop()
		return true
	}
	return false
}

// resetMonitoring points the failure detector at the nodes currently
// hosting the job's pods.
func (s *Supervisor) resetMonitoring() {
	seen := make(map[*vos.Node]bool)
	s.monitored = s.monitored[:0]
	now := s.t.W.Now()
	for _, p := range s.t.Pods() {
		n := p.Node()
		if n == nil || seen[n] || s.declared[n] {
			continue
		}
		seen[n] = true
		s.monitored = append(s.monitored, n)
		s.lastSeen[n] = now
	}
}

// ctrlDelay consults the injected hook for one heartbeat message.
func (s *Supervisor) ctrlDelay() (drop bool, delay sim.Duration) {
	if s.ctrlHook != nil {
		return s.ctrlHook()
	}
	return false, 0
}

// hbTick is one round of the failure detector: expire silent nodes,
// ping the rest, re-arm.
func (s *Supervisor) hbTick() {
	if s.finishIfDone() {
		return
	}
	now := s.t.W.Now()
	lat := s.t.W.Costs.CtrlLatency
	for _, n := range s.monitored {
		n := n
		if s.declared[n] {
			continue
		}
		if sim.Duration(now-s.lastSeen[n]) > s.pol.HeartbeatTimeout {
			s.nodeDown(n)
			continue
		}
		// Ping: one control hop out; the pong comes back one hop later
		// only if the node is actually alive when the ping lands.
		drop, delay := s.ctrlDelay()
		if drop {
			continue
		}
		s.reg.Counter("supervisor_heartbeats_total").Add(1)
		s.t.W.After(lat+delay, func() {
			if n.Failed() {
				return // ping lands on a dead node: no pong
			}
			s.t.W.After(lat, func() {
				if t := s.t.W.Now(); t > s.lastSeen[n] {
					s.lastSeen[n] = t
				}
			})
		})
	}
	if !s.done {
		s.hbTimer = s.t.W.After(s.pol.HeartbeatInterval, s.hbTick)
	}
}

// nodeDown handles a failure declaration from the detector.
func (s *Supervisor) nodeDown(n *vos.Node) {
	if s.declared[n] {
		return
	}
	s.declared[n] = true
	s.stats.NodesDeclared++
	// The unavailability clock starts when the heartbeat became overdue,
	// not when the detector got around to declaring it; the miss instant
	// is stamped on the declaration so offline RTO analysis can recover
	// the detection segment. The first unclaimed declaration seeds the
	// next recovery episode's RTO window.
	missT := s.lastSeen[n] + sim.Time(s.pol.HeartbeatTimeout)
	if s.pendingDetectT == 0 || missT < s.pendingMissT {
		s.pendingMissT = missT
		s.pendingDetectT = s.t.W.Now()
	}
	s.logA(EvNodeDown, []trace.Attr{trace.I64("miss_t", int64(missT)), trace.Str("node", n.Name())},
		"node %s: heartbeat silent for %v", n.Name(), s.pol.HeartbeatTimeout)
	if s.recovering {
		// Recovery is already running; it re-checks survivors itself and
		// the pending flag re-enters it when the current episode ends.
		s.pendingRecover = true
		return
	}
	if s.ckptBusy {
		// A checkpoint cycle is in flight against a dead member, so it
		// can only abort. Preempt it now instead of waiting it out: an
		// in-flight operation is aborted through the manager (its
		// completion callback diverts to recovery synchronously), and a
		// cycle parked in a retry backoff has its timer cancelled and
		// diverts here directly. Either way the doomed cycle's remainder
		// — agent-failure propagation, watchdog, backoff — never lands
		// on the RTO critical path.
		s.pendingRecover = true
		if s.t.Mgr.AbortCheckpoints(fmt.Errorf(
			"supervisor: checkpoint preempted: node %s declared down mid-cycle", n.Name())) == 0 {
			s.t.W.Cancel(s.retryTimer)
			s.ckptBusy = false
			s.endCycleSpan("diverted-to-recovery")
			s.startRecovery()
		}
		return
	}
	s.startRecovery()
}

// ckptTick begins one periodic checkpoint cycle.
func (s *Supervisor) ckptTick() {
	if s.finishIfDone() || s.recovering {
		return
	}
	if s.ckptBusy {
		return // previous cycle still retrying; it re-arms the timer
	}
	s.ckptBusy = true
	s.attempt = 0
	s.cycleSpan = s.tr.Start(nil, "supervisor/ckpt-cycle", trace.Track("supervisor"),
		trace.I64("gen", int64(s.gen)))
	s.checkpointAttempt()
}

func (s *Supervisor) backoff() sim.Duration {
	d := s.pol.RetryBackoff
	for i := 1; i < s.attempt; i++ {
		d *= 2
		if d >= s.pol.MaxBackoff {
			return s.pol.MaxBackoff
		}
	}
	if d > s.pol.MaxBackoff {
		d = s.pol.MaxBackoff
	}
	return d
}

func (s *Supervisor) genDir(seq int) string {
	return fmt.Sprintf("%s/gen%04d", s.pol.Dir, seq)
}

// checkpointAttempt runs one coordinated checkpoint to the next
// generation directory and validates what was flushed.
func (s *Supervisor) checkpointAttempt() {
	if s.done || s.recovering {
		s.ckptBusy = false
		s.endCycleSpan("superseded")
		return
	}
	if s.pendingRecover {
		// The detector declared a node between attempts; stop retrying
		// and fail over instead.
		s.ckptBusy = false
		s.endCycleSpan("diverted-to-recovery")
		s.startRecovery()
		return
	}
	if s.finishIfDone() {
		return
	}
	dir := s.genDir(s.gen)
	opts := core.Options{
		Mode:    core.Snapshot,
		FlushTo: dir,
		Timeout: s.pol.CheckpointTimeout,
		Workers: s.pol.Workers,
		Incr:    s.incr,
	}
	if s.pol.Fanout > 0 {
		opts.Coord = &coord.Config{Fanout: s.pol.Fanout}
	}
	if s.incr == nil && !s.pol.StopAndCopy {
		// Periodic non-incremental checkpoints default to pre-copy: the
		// application keeps running through the bulk of the serialization
		// and only the residual dirty set is captured quiesced.
		opts.Precopy = &core.PrecopyOptions{
			MaxRounds:     s.pol.PrecopyMaxRounds,
			ConvergeBytes: s.pol.PrecopyConvergeBytes,
		}
	}
	s.t.Mgr.Checkpoint(s.t.Pods(), opts, func(res *core.CheckpointResult) {
		s.ckptDone(dir, res)
	})
}

func (s *Supervisor) ckptDone(dir string, res *core.CheckpointResult) {
	if s.done {
		return
	}
	err := res.Err
	if err == nil {
		err = s.validateGeneration(dir)
	}
	full := true
	if err == nil {
		for _, ag := range res.Stats.Agents {
			if ag.Incremental {
				full = false
				break
			}
		}
	}
	if err == nil {
		// End-to-end chain validation: the generation (with its chain
		// back to the nearest full image, for deltas) must reconstruct
		// from what actually landed on the shared filesystem.
		s.gens = append(s.gens, Generation{Seq: s.gen, Dir: dir, T: s.t.W.Now(), Full: full})
		if _, lerr := s.loadGeneration(len(s.gens) - 1); lerr != nil {
			s.gens = s.gens[:len(s.gens)-1]
			err = fmt.Errorf("chain validation: %w", lerr)
			if s.incr != nil {
				// The tracker committed against a record the storage
				// cannot reproduce; restart the chain rather than extend
				// it.
				s.incr.Rebase()
			}
		} else {
			s.gens = s.gens[:len(s.gens)-1]
		}
	}
	switch {
	case err == nil:
		var bytes int64
		for _, f := range s.t.Store.List(dir) {
			if info, e := s.t.Store.Stat(f); e == nil {
				bytes += info.Size
			}
		}
		s.gens = append(s.gens, Generation{Seq: s.gen, Dir: dir, T: s.t.W.Now(), Bytes: bytes, Full: full})
		s.gen++
		s.stats.Checkpoints++
		kind := "full"
		if !full {
			kind = "delta"
		}
		s.log(EvCheckpoint, "generation %s committed (%s, %d records, %.1f KB, took %v)",
			dir, kind, len(res.Images), float64(bytes)/1024, res.Stats.Total)
		s.gc()
		s.syncReplica()
		s.endCkptCycle()
	case s.pendingRecover:
		// The failure detector declared a node while this attempt was in
		// flight; scrap the partial generation and fail over.
		s.scrapGeneration(dir)
		s.log(EvRetry, "checkpoint aborted during failure handling: %v", err)
		s.ckptBusy = false
		s.endCycleSpan("diverted-to-recovery")
		s.startRecovery()
	default:
		// Every other abort — watchdog timeout, lost control message,
		// manager hiccup, even an agent-failure report — is retried with
		// exponential backoff. The heartbeat detector is the sole
		// failover authority: if a node really is down, it declares it
		// within HeartbeatTimeout (well inside one backoff) and the next
		// attempt diverts to recovery instead of retrying.
		s.scrapGeneration(dir)
		s.attempt++
		if s.attempt > s.pol.MaxRetries {
			s.log(EvCkptGiveUp, "checkpoint failed after %d attempts: %v", s.attempt-1, err)
			s.endCkptCycle()
			return
		}
		d := s.backoff()
		s.stats.Retries++
		s.log(EvRetry, "checkpoint attempt %d aborted (%v), retrying in %v", s.attempt, err, d)
		s.retryTimer = s.t.W.After(d, s.checkpointAttempt)
	}
}

// endCkptCycle closes a checkpoint cycle and re-arms the period timer.
func (s *Supervisor) endCkptCycle() {
	s.ckptBusy = false
	s.endCycleSpan("done")
	if s.pendingRecover {
		s.startRecovery()
		return
	}
	if s.done || s.finishIfDone() || s.pol.CheckpointEvery <= 0 {
		return
	}
	s.ckptTimer = s.t.W.After(s.pol.CheckpointEvery, s.ckptTick)
}

// scrapGeneration removes the partial output of a failed attempt.
func (s *Supervisor) scrapGeneration(dir string) {
	for _, f := range s.t.Store.List(dir) {
		_ = s.t.Store.Remove(f)
	}
	s.sweepStore()
}

// sweepStore collects storage orphaned below the image paths — dedup
// blocks left by a writer that died mid-commit. Stores without
// block-level GC (plain FSStore, remote) have nothing to sweep.
func (s *Supervisor) sweepStore() {
	if sw, ok := s.t.Store.(imagestore.Sweeper); ok {
		if n := sw.Sweep(); n > 0 {
			s.log(EvGC, "swept %d orphaned store blocks", n)
		}
	}
}

// validateGeneration streams back every record just flushed and
// decode-checks it (per-chunk CRCs, trailer, and full field walk), so a
// generation is only ever trusted after an end-to-end
// write/read/decode round trip. Records are verified as streams — the
// supervisor never materializes one. Chain linkage of delta records is
// validated separately via loadGeneration.
func (s *Supervisor) validateGeneration(dir string) error {
	files := s.t.Store.List(dir)
	if len(files) == 0 {
		return fmt.Errorf("supervisor: generation %s flushed no images", dir)
	}
	for _, f := range files {
		rc, err := s.t.Store.Open(f)
		if err != nil {
			return err
		}
		if strings.HasSuffix(f, ".delta") {
			_, err = ckpt.DecodeDeltaFrom(rc)
		} else {
			_, err = ckpt.VerifyImageFrom(rc)
		}
		rc.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	return nil
}

// gc drops generations beyond the retention depth, oldest first. A full
// generation and the deltas depending on it form a chain that is only
// ever dropped whole, so every retained delta keeps a restorable base.
// With a live replica attached, collection additionally never passes
// the standby's acknowledgement watermark: a cut replication stream
// resumes by re-shipping everything past the last applied generation,
// and those records must still exist to re-ship. A dead or consumed
// replica releases the pin.
func (s *Supervisor) gc() {
	for len(s.gens) > s.pol.Retain {
		chainLen := 1
		for chainLen < len(s.gens) && !s.gens[chainLen].Full {
			chainLen++
		}
		if len(s.gens)-chainLen < s.pol.Retain {
			return // dropping the chain would dip below the retention depth
		}
		if s.replica != nil && s.replica.Ready() {
			// Generations are ordered and acks are monotone, so the
			// newest member of the candidate chain decides.
			if acked := s.replica.AckedSeq(); s.gens[chainLen-1].Seq > acked {
				s.stats.GCPinned++
				s.logA(EvGCPin, []trace.Attr{trace.I64("acked_seq", int64(acked))},
					"retaining %d generation(s) beyond depth %d: standby acked through seq %d",
					len(s.gens)-s.pol.Retain, s.pol.Retain, acked)
				return
			}
		}
		for i := 0; i < chainLen; i++ {
			g := s.gens[i]
			s.scrapGeneration(g.Dir)
			s.stats.GCCollected++
			s.log(EvGC, "collected generation %s", g.Dir)
		}
		s.gens = s.gens[chainLen:]
	}
	s.sweepStore()
}

// syncReplica ships unacknowledged generations to the standby. At most
// one sync is in flight at a time; each completion chains the next if
// the primary committed further generations meanwhile. Replication
// errors never abort the primary's checkpoint cycle: the stream resumes
// from the replica's acknowledgement watermark when the next committed
// generation re-triggers the sync.
func (s *Supervisor) syncReplica() {
	r := s.replica
	if r == nil || s.done || s.recovering || s.syncBusy || !r.Ready() {
		return
	}
	if len(s.gens) == 0 || s.gens[len(s.gens)-1].Seq <= r.AckedSeq() {
		return
	}
	s.syncBusy = true
	s.logA(EvReplicate, []trace.Attr{trace.I64("from_seq", int64(r.AckedSeq()+1))},
		"replicating generations past seq %d to standby", r.AckedSeq())
	r.Sync(append([]Generation(nil), s.gens...), func(err error) {
		s.syncBusy = false
		if s.done {
			return
		}
		if err != nil {
			s.stats.ReplicaErrors++
			s.logA(EvReplicaErr, nil, "replication sync: %v (will resume past gen seq %d)", err, r.AckedSeq())
			return
		}
		if !s.recovering && len(s.gens) > 0 && s.gens[len(s.gens)-1].Seq > r.AckedSeq() {
			s.syncReplica()
		}
	})
}

// chainPaths collects, for the generation at index gi, each pod's
// record-chain paths: the nearest full generation at or before gi plus
// every delta between it and gi, in order. Records themselves stay in
// the store; reconstruction streams them one at a time.
func (s *Supervisor) chainPaths(gi int) (map[string][]string, error) {
	base := gi
	for base >= 0 && !s.gens[base].Full {
		base--
	}
	if base < 0 {
		return nil, fmt.Errorf("generation %s: no full base generation retained", s.gens[gi].Dir)
	}
	chains := imagestore.PodChains(s.t.Store.List(s.gens[base].Dir))
	for j := base + 1; j <= gi; j++ {
		for name := range chains {
			f := fmt.Sprintf("%s/%s.delta", s.gens[j].Dir, name)
			if _, err := s.t.Store.Stat(f); err != nil {
				return nil, fmt.Errorf("generation %s: pod %s: %w", s.gens[j].Dir, name, err)
			}
			chains[name] = append(chains[name], f)
		}
	}
	return chains, nil
}

// loadGeneration reads and verifies every image of the generation at
// index gi into s.gens, reconstructing base+delta chains for
// incremental generations, and returns the images sorted by pod name
// for deterministic placement. The error names the first pod whose
// record (or chain) fails validation.
func (s *Supervisor) loadGeneration(gi int) ([]*ckpt.Image, error) {
	g := s.gens[gi]
	span := s.tr.Start(s.opSpan(), "supervisor/load-generation", trace.Track("supervisor"),
		trace.Str("dir", g.Dir), trace.I64("seq", int64(g.Seq)))
	images, err := s.loadGenerationRecords(gi)
	if err != nil {
		span.End(trace.Str("err", err.Error()))
		return nil, err
	}
	span.End(trace.I64("images", int64(len(images))))
	return images, nil
}

func (s *Supervisor) loadGenerationRecords(gi int) ([]*ckpt.Image, error) {
	g := s.gens[gi]
	files := s.t.Store.List(g.Dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("generation %s: %w", g.Dir, ErrNoValidCheckpoint)
	}
	// A Full generation is self-contained: each pod is either a single
	// .img (stop-and-copy) or a pre-copy chain base+rounds+residual. A
	// non-Full (incremental) generation chains back through prior
	// generations via chainPaths.
	var chains map[string][]string
	if g.Full {
		chains = imagestore.PodChains(files)
	} else {
		var err error
		chains, err = s.chainPaths(gi)
		if err != nil {
			return nil, err
		}
	}
	// Walk the chains in pod-name order: map iteration order must not
	// decide which pod's error surfaces first or the order trace
	// events are emitted in.
	names := make([]string, 0, len(chains))
	for name := range chains {
		names = append(names, name)
	}
	sort.Strings(names)
	var images []*ckpt.Image
	for _, name := range names {
		paths := chains[name]
		if len(paths) == 1 && strings.HasSuffix(paths[0], ".img") {
			rc, err := s.t.Store.Open(paths[0])
			if err != nil {
				return nil, err
			}
			img, err := ckpt.VerifyImageFrom(rc)
			rc.Close()
			if err != nil {
				return nil, fmt.Errorf("pod %s (%s): %w", name, paths[0], err)
			}
			images = append(images, img)
			continue
		}
		cSpan := s.tr.Start(s.opSpan(), "supervisor/chain-reconstruct", trace.Track("supervisor"),
			trace.Str("pod", name), trace.I64("links", int64(len(paths))))
		img, err := ckpt.ReconstructChainFrom(len(paths), func(i int) (io.ReadCloser, error) {
			return s.t.Store.Open(paths[i])
		})
		if err != nil {
			cSpan.End(trace.Str("err", err.Error()))
			return nil, fmt.Errorf("pod %s: %w", name, err)
		}
		cSpan.End(trace.I64("bytes", img.Bytes()))
		images = append(images, img)
	}
	sort.Slice(images, func(i, j int) bool { return images[i].PodName < images[j].PodName })
	return images, nil
}

// startRecovery begins (or re-enters) failover: tear down the job's
// pods and restart from the newest valid generation on the survivors.
func (s *Supervisor) startRecovery() {
	if s.done {
		return
	}
	s.pendingRecover = false
	if !s.recovering {
		s.recovering = true
		s.attempt = 0
		s.t.W.Cancel(s.ckptTimer)
		// Claim the pending failure declaration as this episode's RTO
		// window start. Recovery entered from a checkpoint abort before
		// the detector fired has no declaration yet; the episode then
		// starts (and the window opens) now.
		s.recMissT = s.pendingMissT
		if s.pendingDetectT == 0 {
			s.recMissT = s.t.W.Now()
		}
		s.pendingMissT, s.pendingDetectT = 0, 0
		s.recSpan = s.tr.Start(nil, "supervisor/failover", trace.Track("supervisor"),
			trace.I64("generations", int64(len(s.gens))))
	}
	// Recovery may be entered from a checkpoint abort before the
	// detector's timeout expires; mark the dead nodes declared so the
	// detector does not trigger a second, redundant failover later.
	for _, n := range s.monitored {
		if n.Failed() {
			s.declared[n] = true
		}
	}
	// Tear down what is left of the job so the virtual addresses are
	// free for the restart (pods on the dead node detach cleanly too).
	for _, p := range s.t.Pods() {
		p.Destroy()
	}
	// A ready standby short-circuits the store path entirely: its shadow
	// pods already hold applied state, so recovery reduces to a bounded
	// catch-up plus warm activation.
	if s.replica != nil && s.replica.Ready() && s.replica.AckedSeq() >= 0 {
		s.promoteStandby()
		return
	}
	// Newest valid generation wins; corrupted ones (or delta chains
	// with a broken link) are skipped with an explicit record,
	// restarting from the previous valid generation.
	s.tryRestore(len(s.gens) - 1)
}

// tryRestore restores from the generation at index gi, falling back to
// older generations when a record is corrupt and halting with
// ErrNoValidCheckpoint when none is left. Reading the state back is
// charged at Costs.StoreReadBandwidth over the *logical* image mass —
// the same byte basis as every other image cost in the model — because
// recovery must stream and rehydrate the full application state
// through the cold store path regardless of how compactly the records
// sit on disk. Unlike checkpoint-time validation, which overlaps the
// running job, this read sits on the failover critical path. Chained
// deltas pay an additional replay charge on top of the read.
func (s *Supervisor) tryRestore(gi int) {
	if s.done {
		return
	}
	if gi < 0 {
		s.halt(ErrNoValidCheckpoint)
		return
	}
	g := s.gens[gi]
	span := s.tr.Start(s.opSpan(), "supervisor/load-generation", trace.Track("supervisor"),
		trace.Str("dir", g.Dir), trace.I64("seq", int64(g.Seq)))
	replayBytes, err := s.chainReplayBytes(gi)
	if err != nil {
		// A chain link is already missing; nothing was read, no cost.
		span.End(trace.Str("err", err.Error()))
		s.skipCorrupt(gi, err)
		return
	}
	// Decode and verify host-side first (free): a corrupt generation is
	// skipped without charging a read that never completes usefully.
	images, err := s.loadGenerationRecords(gi)
	if err != nil {
		span.End(trace.Str("err", err.Error()))
		s.skipCorrupt(gi, err)
		return
	}
	var logical int64
	for _, img := range images {
		logical += img.Bytes()
	}
	costs := s.t.W.Costs
	s.t.W.After(costs.StoreReadTime(costs.EffImageBytes(logical)), func() {
		if s.done {
			return
		}
		span.End(trace.I64("images", int64(len(images))), trace.I64("bytes", logical))
		if replayBytes == 0 {
			s.restartFrom(images, g.T)
			return
		}
		cSpan := s.tr.Start(s.opSpan(), "supervisor/chain-reconstruct", trace.Track("supervisor"),
			trace.Str("dir", g.Dir), trace.I64("bytes", replayBytes))
		s.t.W.After(costs.MemCopyTime(costs.EffImageBytes(replayBytes)), func() {
			if s.done {
				return
			}
			cSpan.End()
			s.restartFrom(images, g.T)
		})
	})
}

// chainReplayBytes sizes the delta-replay work for the generation at
// index gi: the stored bytes of every delta record that must be
// replayed onto its base (pre-copy rounds and incremental deltas). It
// also verifies every chain link still exists; a Stat failure means a
// link is gone before any read happened.
func (s *Supervisor) chainReplayBytes(gi int) (replayBytes int64, err error) {
	g := s.gens[gi]
	var chains map[string][]string
	if g.Full {
		files := s.t.Store.List(g.Dir)
		if len(files) == 0 {
			return 0, fmt.Errorf("generation %s: %w", g.Dir, ErrNoValidCheckpoint)
		}
		chains = imagestore.PodChains(files)
	} else {
		chains, err = s.chainPaths(gi)
		if err != nil {
			return 0, err
		}
	}
	for _, paths := range chains {
		for _, p := range paths {
			info, serr := s.t.Store.Stat(p)
			if serr != nil {
				return 0, fmt.Errorf("generation %s: %s: %w", g.Dir, p, serr)
			}
			if strings.HasSuffix(p, ".delta") {
				replayBytes += info.Size
			}
		}
	}
	return replayBytes, nil
}

// skipCorrupt records a generation that failed validation during
// recovery and falls back to the previous one.
func (s *Supervisor) skipCorrupt(gi int, err error) {
	s.stats.CorruptSkipped++
	s.log(EvSkipCorrupt, "skipping generation %s: %v", s.gens[gi].Dir, err)
	s.tryRestore(gi - 1)
}

// restartFrom places the restored images round-robin over the surviving
// nodes and hands them to the manager. genT is the restored state's
// commit time, the RPO reference point.
func (s *Supervisor) restartFrom(images []*ckpt.Image, genT sim.Time) {
	s.recGenT = genT
	survivors := s.survivors()
	if len(survivors) == 0 {
		s.halt(ErrNoSurvivors)
		return
	}
	placements := make([]core.Placement, len(images))
	for i, img := range images {
		placements[i] = core.Placement{
			Image:   img,
			PodName: img.PodName,
			Node:    survivors[i%len(survivors)],
		}
	}
	s.t.Mgr.SetWorkers(s.pol.Workers)
	if s.pol.Fanout > 0 {
		s.t.Mgr.SetCoord(&coord.Config{Fanout: s.pol.Fanout})
	}
	s.t.Mgr.Restart(placements, nil, s.restartDone)
}

// promoteStandby activates the warm standby: the replica hands over its
// shadow images (finishing any in-flight apply first — the bounded
// catch-up), and the restart runs with Warm placements on the standby
// node, skipping load, reconstruct, and the cold per-pod restore
// entirely. Any failure falls back to the store-restore path; Promote
// consumes the replica either way, so a retried recovery episode takes
// the store path too.
func (s *Supervisor) promoteStandby() {
	rep := s.replica
	pSpan := s.tr.Start(s.opSpan(), "standby/promote", trace.Track("standby"),
		trace.I64("acked_seq", int64(rep.AckedSeq())))
	rep.Promote(func(images []*ckpt.Image, genT sim.Time, err error) {
		if s.done {
			return
		}
		if err == nil && len(images) == 0 {
			err = fmt.Errorf("supervisor: standby handed over no shadow images")
		}
		if err == nil {
			if node := rep.Node(); node == nil || node.Failed() {
				err = fmt.Errorf("supervisor: standby node failed before activation")
			}
		}
		if err != nil {
			pSpan.End(trace.Str("err", err.Error()))
			s.stats.ReplicaErrors++
			s.logA(EvReplicaErr, nil, "promotion failed (%v), falling back to store restore", err)
			s.tryRestore(len(s.gens) - 1)
			return
		}
		pSpan.End(trace.I64("images", int64(len(images))))
		s.stats.Promotions++
		node := rep.Node()
		s.logA(EvPromote, []trace.Attr{trace.I64("gen_t", int64(genT))},
			"promoting standby %s: %d shadow pods, state through t=%v", node.Name(), len(images), genT)
		s.recGenT = genT
		placements := make([]core.Placement, len(images))
		for i, img := range images {
			placements[i] = core.Placement{
				Image:   img,
				PodName: img.PodName,
				Node:    node,
				Warm:    true,
			}
		}
		s.t.Mgr.SetWorkers(s.pol.Workers)
		if s.pol.Fanout > 0 {
			s.t.Mgr.SetCoord(&coord.Config{Fanout: s.pol.Fanout})
		}
		s.t.Mgr.Restart(placements, nil, s.restartDone)
	})
}

// survivors returns the usable restart targets.
func (s *Supervisor) survivors() []*vos.Node {
	var out []*vos.Node
	for _, n := range s.t.Nodes() {
		if !n.Failed() {
			out = append(out, n)
		}
	}
	return out
}

func (s *Supervisor) restartDone(res *core.RestartResult) {
	if s.done {
		return
	}
	if res.Err != nil {
		// Another node may have died mid-restart, or the control plane
		// glitched; core's cleanup released the claims and pods, so a
		// retry from the same images is safe.
		s.attempt++
		if s.attempt > s.pol.MaxRetries {
			s.halt(fmt.Errorf("%w: restart failed %d times, last: %v", ErrGivenUp, s.attempt-1, res.Err))
			return
		}
		d := s.backoff()
		s.log(EvRestartRetry, "restart attempt %d failed (%v), retrying in %v", s.attempt, res.Err, d)
		s.t.W.After(d, s.startRecovery)
		return
	}
	if err := s.t.Rebind(res.Pods); err != nil {
		s.halt(fmt.Errorf("supervisor: rebind after failover: %w", err))
		return
	}
	s.recovering = false
	s.stats.Failovers++
	// Availability figures for this failover: RTO runs from the
	// heartbeat-miss instant to this instant (the pods are serving
	// again); RPO is the virtual time between the restored generation's
	// commit and the miss — the work the job lost.
	now := s.t.W.Now()
	rto := sim.Duration(now - s.recMissT)
	rpo := sim.Duration(s.recMissT - s.recGenT)
	if rpo < 0 {
		rpo = 0
	}
	rtoUs, rpoUs := int64(rto)/1e3, int64(rpo)/1e3
	s.reg.Histogram("supervisor_rto_us").Observe(rtoUs)
	s.reg.Histogram("supervisor_rpo_us").Observe(rpoUs)
	s.stats.LastRTO, s.stats.LastRPO = rto, rpo
	s.logA(EvFailover, []trace.Attr{trace.I64("rto_us", rtoUs), trace.I64("rpo_us", rpoUs)},
		"restarted %d pods on %d surviving nodes in %v (rto %v, rpo %v)",
		len(res.Pods), len(s.survivors()), res.Stats.Total, rto, rpo)
	s.endRecSpan("ok", trace.I64("rto_us", rtoUs), trace.I64("rpo_us", rpoUs))
	if s.incr != nil {
		// The trackers' bases refer to pods that no longer exist; the
		// next generation of every pod starts a fresh chain.
		s.incr.Rebase()
	}
	s.resetMonitoring()
	if s.pol.CheckpointEvery > 0 {
		s.ckptTimer = s.t.W.After(s.pol.CheckpointEvery, s.ckptTick)
	}
	if s.pendingRecover {
		// A further failure was declared while we were restarting.
		s.pendingRecover = false
		s.startRecovery()
	}
}
