// Package supervisor implements the self-healing layer on top of the
// coordinated checkpoint-restart mechanism of internal/core: the piece
// that turns the paper's headline use case — periodically checkpoint a
// distributed application and restart it on surviving nodes after a
// crash — from a hand-driven script into an autonomous control loop,
// in the spirit of the DMTCP coordinator (Ansel et al.).
//
// The supervisor runs entirely as events on the simulated clock, so a
// caller simply drives the cluster toward job completion and recovery
// happens "underneath" deterministically. It combines four mechanisms:
//
//   - a heartbeat-based failure detector: each monitored node is pinged
//     over the control plane every HeartbeatInterval; a node whose pong
//     has not been seen for HeartbeatTimeout is declared failed — no
//     oracle access to Node.Failed() in the detection decision;
//   - a periodic checkpoint policy: every CheckpointEvery the job is
//     coordinately checkpointed to a fresh generation directory on the
//     shared filesystem, with exponential-backoff retry when an attempt
//     aborts (transient control-plane fault, watchdog timeout);
//   - bounded retention of validated generations: each flushed image is
//     read back and CRC-verified via the imgfmt trailer before the
//     generation is trusted; generations beyond Retain are garbage
//     collected oldest-first;
//   - automatic failover: on a detected node failure the job's pods are
//     torn down and the application is restarted from the newest valid
//     generation onto the surviving (or spare) nodes, re-driving the
//     ordinary coordinated restart path. A generation that got
//     corrupted on storage after it was written is skipped in favor of
//     the previous valid one.
package supervisor

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"zapc/internal/ckpt"
	"zapc/internal/coord"
	"zapc/internal/core"
	"zapc/internal/imagestore"
	"zapc/internal/memfs"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/trace"
	"zapc/internal/vos"
)

// Errors surfaced through Supervisor.Err.
var (
	ErrNoValidCheckpoint = errors.New("supervisor: no valid checkpoint generation to restart from")
	ErrNoSurvivors       = errors.New("supervisor: no surviving nodes to restart onto")
	ErrGivenUp           = errors.New("supervisor: retry budget exhausted")
)

// Policy tunes the supervision loop. Zero values select the defaults
// noted on each field.
type Policy struct {
	// HeartbeatInterval is the failure-detector ping period
	// (default 250ms).
	HeartbeatInterval sim.Duration
	// HeartbeatTimeout declares a node failed when no pong has been
	// seen for this long (default 4x HeartbeatInterval).
	HeartbeatTimeout sim.Duration
	// CheckpointEvery is the periodic checkpoint interval (default 10s;
	// negative disables periodic checkpoints — detector-only mode).
	CheckpointEvery sim.Duration
	// CheckpointTimeout is the per-attempt watchdog handed to the
	// coordinated checkpoint (default 5s).
	CheckpointTimeout sim.Duration
	// MaxRetries bounds checkpoint retry attempts per period and
	// restart attempts per failover (default 4).
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubling per attempt
	// (default 250ms).
	RetryBackoff sim.Duration
	// MaxBackoff caps the exponential backoff (default 8s).
	MaxBackoff sim.Duration
	// Retain is how many validated generations are kept on the shared
	// filesystem; older ones are garbage collected (default 3). With
	// incremental checkpointing, collection is chain-aware: a full
	// generation is only dropped together with every delta that depends
	// on it, so slightly more than Retain generations may be kept.
	Retain int
	// Dir is the filesystem prefix for generation directories
	// (default "supervisor").
	Dir string
	// Incremental enables incremental checkpointing: generations
	// between full images are delta records holding only the state
	// mutated since the previous generation.
	Incremental bool
	// FullEvery is the incremental chain length bound — every
	// FullEvery-th generation is a full image (default 4; only
	// meaningful with Incremental).
	FullEvery int
	// Workers is the serialization worker-pool width handed to the
	// coordinated operations (0 = sequential).
	Workers int
	// StopAndCopy forces classic stop-and-copy checkpoints. By default
	// non-incremental periodic checkpoints run in pre-copy mode — the
	// pods keep executing through the bulk of each serialization and are
	// only quiesced for the residual dirty set, which is what makes
	// frequent checkpoints affordable downtime-wise.
	StopAndCopy bool
	// PrecopyMaxRounds bounds the live pre-copy rounds per checkpoint
	// (0 selects core.DefaultPrecopyMaxRounds).
	PrecopyMaxRounds int
	// PrecopyConvergeBytes is the pre-copy convergence threshold
	// (0 selects core.DefaultPrecopyConvergeBytes).
	PrecopyConvergeBytes int64
	// Fanout selects the coordination-tree arity handed to the
	// coordinated checkpoint and restart operations. Positive values
	// route control traffic through a k-ary tree of sub-coordinators;
	// zero keeps the manager's default (flat) topology.
	Fanout int
}

func (p Policy) withDefaults() Policy {
	if p.HeartbeatInterval <= 0 {
		p.HeartbeatInterval = 250 * sim.Millisecond
	}
	if p.HeartbeatTimeout <= 0 {
		p.HeartbeatTimeout = 4 * p.HeartbeatInterval
	}
	if p.CheckpointEvery == 0 {
		p.CheckpointEvery = 10 * sim.Second
	}
	if p.CheckpointTimeout <= 0 {
		p.CheckpointTimeout = 5 * sim.Second
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 4
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = 250 * sim.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 8 * sim.Second
	}
	if p.Retain <= 0 {
		p.Retain = 3
	}
	if p.Dir == "" {
		p.Dir = "supervisor"
	}
	if p.Incremental && p.FullEvery <= 1 {
		p.FullEvery = 4
	}
	return p
}

// Target is the supervised system, expressed as the narrow adapter the
// cluster layer passes in (the supervisor sits below the cluster
// package so that Cluster can expose a Supervise method).
type Target struct {
	W   *sim.World
	Mgr *core.Manager
	FS  *memfs.FS
	// Store is where generations are validated and loaded from; nil
	// selects the shared filesystem (imagestore.NewFS(FS)). It should
	// match the manager's store, which is where FlushTo streams the
	// records.
	Store imagestore.Store
	// Pods returns the job's current pods (changes after a failover).
	Pods func() []*pod.Pod
	// Nodes returns every node restart placement may consider; the
	// supervisor filters out failed ones, so spares added to the
	// cluster are picked up automatically.
	Nodes func() []*vos.Node
	// Rebind points the job at its restored pods after a failover.
	Rebind func([]*pod.Pod) error
	// Finished reports job completion; the supervisor stands down once
	// it holds.
	Finished func() bool
}

// EventKind classifies supervisor log events.
type EventKind string

// Event kinds recorded by the supervisor.
const (
	EvCheckpoint   EventKind = "checkpoint"    // generation committed
	EvRetry        EventKind = "ckpt-retry"    // attempt aborted, backing off
	EvCkptGiveUp   EventKind = "ckpt-give-up"  // retry budget exhausted this period
	EvNodeDown     EventKind = "node-down"     // heartbeat timeout expired
	EvFailover     EventKind = "failover"      // job restarted on survivors
	EvSkipCorrupt  EventKind = "skip-corrupt"  // generation failed CRC validation
	EvRestartRetry EventKind = "restart-retry" // restart attempt failed, backing off
	EvGC           EventKind = "gc"            // old generation collected
	EvHalt         EventKind = "halt"          // supervisor gave up (see Err)
	EvDone         EventKind = "done"          // job finished, standing down
)

// Event is one entry of the supervisor's activity log.
type Event struct {
	T      sim.Time
	Kind   EventKind
	Detail string
}

func (e Event) String() string { return fmt.Sprintf("t=%v %s: %s", e.T, e.Kind, e.Detail) }

// Stats counts supervisor activity.
type Stats struct {
	Checkpoints    int // generations committed
	Retries        int // checkpoint attempts retried
	Failovers      int // successful automatic restarts
	NodesDeclared  int // node failures declared by the detector
	CorruptSkipped int // generations skipped for failed validation
	GCCollected    int // generations garbage collected
	// LastRTO is the recovery window of the most recent successful
	// failover: heartbeat-miss instant to pods-serving instant (0 before
	// the first failover).
	LastRTO sim.Duration
	// LastRPO is the data-loss window of the most recent successful
	// failover: virtual time between the commit of the generation
	// actually restored from and the heartbeat-miss instant.
	LastRPO sim.Duration
}

// Generation is one committed checkpoint generation.
type Generation struct {
	Seq   int
	Dir   string
	T     sim.Time // commit time
	Bytes int64    // serialized size of all records in the directory
	// Full marks a full-image generation; false means the directory
	// holds delta records whose restore needs the chain back to the
	// nearest full generation.
	Full bool
}

// Supervisor is the self-healing control loop for one job.
type Supervisor struct {
	t   Target
	pol Policy

	running        bool
	done           bool
	haltErr        error
	ckptBusy       bool
	recovering     bool
	pendingRecover bool

	gen     int           // next generation sequence number
	gens    []Generation  // committed generations, oldest first
	attempt int           // current retry attempt (checkpoint or restart)
	incr    *ckpt.IncrSet // non-nil in incremental mode

	monitored []*vos.Node
	lastSeen  map[*vos.Node]sim.Time
	declared  map[*vos.Node]bool

	ctrlHook core.CtrlHook

	hbTimer   sim.EventID
	ckptTimer sim.EventID

	events []Event
	stats  Stats

	tr        *trace.Tracer
	reg       *trace.Registry
	cycleSpan *trace.Span // supervisor/ckpt-cycle, open across retries
	recSpan   *trace.Span // supervisor/failover, open across retries

	// RTO bookkeeping. pendingMissT/pendingDetectT capture the first
	// unclaimed failure declaration (the heartbeat-miss instant and the
	// declaration instant); the next recovery episode consumes them into
	// recMissT/recDetectT. recGenT is the commit time of the generation
	// the episode actually restored from.
	pendingMissT   sim.Time
	pendingDetectT sim.Time
	recMissT       sim.Time
	recGenT        sim.Time
}

// New builds a supervisor for the target under the given policy. Call
// Start to arm it.
func New(t Target, pol Policy) *Supervisor {
	if t.Store == nil {
		t.Store = imagestore.NewFS(t.FS)
	}
	s := &Supervisor{
		t:        t,
		pol:      pol.withDefaults(),
		lastSeen: make(map[*vos.Node]sim.Time),
		declared: make(map[*vos.Node]bool),
	}
	if s.pol.Incremental {
		s.incr = ckpt.NewIncrSet(s.pol.FullEvery)
	}
	return s
}

// Policy returns the effective (defaulted) policy.
func (s *Supervisor) Policy() Policy { return s.pol }

// SetCtrlHook installs a control-plane perturbation hook applied to the
// supervisor's heartbeat messages (the fault-injection harness shares
// one hook between the supervisor and the core manager).
func (s *Supervisor) SetCtrlHook(h core.CtrlHook) { s.ctrlHook = h }

// Events returns the activity log.
func (s *Supervisor) Events() []Event { return s.events }

// EventsOf filters the activity log by kind.
func (s *Supervisor) EventsOf(kind EventKind) []Event {
	var out []Event
	for _, e := range s.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Stats returns activity counters.
func (s *Supervisor) Stats() Stats { return s.stats }

// Generations returns the currently retained generations, oldest first.
func (s *Supervisor) Generations() []Generation {
	return append([]Generation(nil), s.gens...)
}

// Err reports why the supervisor halted, if it did.
func (s *Supervisor) Err() error { return s.haltErr }

// Running reports whether the loop is armed.
func (s *Supervisor) Running() bool { return s.running && !s.done }

// SetTracer installs an observability pair: every activity-log event is
// then mirrored as a structured "supervisor/<kind>" instant on the
// supervisor track, control-loop phases become spans, and the registry
// accumulates supervision counters. Either may be nil; the default (both
// nil) keeps the supervisor quiet.
func (s *Supervisor) SetTracer(tr *trace.Tracer, reg *trace.Registry) {
	s.tr = tr
	s.reg = reg
}

// counterOf maps a log-event kind to its registry counter name ("" for
// kinds that are not counted).
func counterOf(kind EventKind) string {
	switch kind {
	case EvCheckpoint:
		return "supervisor_checkpoints_total"
	case EvRetry:
		return "supervisor_ckpt_retries_total"
	case EvNodeDown:
		return "supervisor_nodes_declared_total"
	case EvFailover:
		return "supervisor_failovers_total"
	case EvSkipCorrupt:
		return "supervisor_corrupt_skipped_total"
	case EvRestartRetry:
		return "supervisor_restart_retries_total"
	case EvGC:
		return "supervisor_gc_total"
	}
	return ""
}

func (s *Supervisor) log(kind EventKind, format string, args ...any) {
	s.logA(kind, nil, format, args...)
}

// logA is log with extra structured attributes on the mirrored trace
// instant (the activity-log entry itself stays plain text).
func (s *Supervisor) logA(kind EventKind, attrs []trace.Attr, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	s.events = append(s.events, Event{T: s.t.W.Now(), Kind: kind, Detail: detail})
	all := append([]trace.Attr{trace.Track("supervisor"), trace.Str("detail", detail)}, attrs...)
	s.tr.Instant(nil, "supervisor/"+string(kind), all...)
	if name := counterOf(kind); name != "" {
		s.reg.Counter(name).Add(1)
	}
}

// endCycleSpan closes the current checkpoint-cycle span, if one is open.
func (s *Supervisor) endCycleSpan(outcome string) {
	if s.cycleSpan != nil {
		s.cycleSpan.End(trace.Str("outcome", outcome))
		s.cycleSpan = nil
	}
}

// endRecSpan closes the current failover span, if one is open, with the
// outcome plus any extra attributes.
func (s *Supervisor) endRecSpan(outcome string, attrs ...trace.Attr) {
	if s.recSpan != nil {
		s.recSpan.End(append([]trace.Attr{trace.Str("outcome", outcome)}, attrs...)...)
		s.recSpan = nil
	}
}

// opSpan is the causal parent for supervisor sub-phase spans: the open
// failover span during recovery, the checkpoint-cycle span during a
// cycle, nil otherwise. Nesting the sub-phases keeps the critical-path
// analyzer's DAG explicit instead of relying on containment adoption.
func (s *Supervisor) opSpan() *trace.Span {
	if s.recSpan != nil {
		return s.recSpan
	}
	return s.cycleSpan
}

// Start arms the failure detector and the checkpoint policy.
func (s *Supervisor) Start() {
	if s.running {
		return
	}
	s.running = true
	s.resetMonitoring()
	s.hbTimer = s.t.W.After(s.pol.HeartbeatInterval, s.hbTick)
	if s.pol.CheckpointEvery > 0 {
		s.ckptTimer = s.t.W.After(s.pol.CheckpointEvery, s.ckptTick)
	}
}

// Stop stands the supervisor down and cancels its timers.
func (s *Supervisor) Stop() {
	if !s.running || s.done {
		return
	}
	s.done = true
	s.t.W.Cancel(s.hbTimer)
	s.t.W.Cancel(s.ckptTimer)
	s.endCycleSpan("stopped")
	s.endRecSpan("stopped")
}

// halt is a terminal Stop with a recorded reason.
func (s *Supervisor) halt(err error) {
	s.haltErr = err
	s.log(EvHalt, "%v", err)
	s.endCycleSpan("halt")
	s.endRecSpan("halt")
	s.Stop()
}

// finishIfDone stands down once the job completes; it reports whether
// the supervisor is no longer active.
func (s *Supervisor) finishIfDone() bool {
	if s.done {
		return true
	}
	if s.t.Finished() {
		s.log(EvDone, "job finished, supervisor standing down")
		s.Stop()
		return true
	}
	return false
}

// resetMonitoring points the failure detector at the nodes currently
// hosting the job's pods.
func (s *Supervisor) resetMonitoring() {
	seen := make(map[*vos.Node]bool)
	s.monitored = s.monitored[:0]
	now := s.t.W.Now()
	for _, p := range s.t.Pods() {
		n := p.Node()
		if n == nil || seen[n] || s.declared[n] {
			continue
		}
		seen[n] = true
		s.monitored = append(s.monitored, n)
		s.lastSeen[n] = now
	}
}

// ctrlDelay consults the injected hook for one heartbeat message.
func (s *Supervisor) ctrlDelay() (drop bool, delay sim.Duration) {
	if s.ctrlHook != nil {
		return s.ctrlHook()
	}
	return false, 0
}

// hbTick is one round of the failure detector: expire silent nodes,
// ping the rest, re-arm.
func (s *Supervisor) hbTick() {
	if s.finishIfDone() {
		return
	}
	now := s.t.W.Now()
	lat := s.t.W.Costs.CtrlLatency
	for _, n := range s.monitored {
		n := n
		if s.declared[n] {
			continue
		}
		if sim.Duration(now-s.lastSeen[n]) > s.pol.HeartbeatTimeout {
			s.nodeDown(n)
			continue
		}
		// Ping: one control hop out; the pong comes back one hop later
		// only if the node is actually alive when the ping lands.
		drop, delay := s.ctrlDelay()
		if drop {
			continue
		}
		s.reg.Counter("supervisor_heartbeats_total").Add(1)
		s.t.W.After(lat+delay, func() {
			if n.Failed() {
				return // ping lands on a dead node: no pong
			}
			s.t.W.After(lat, func() {
				if t := s.t.W.Now(); t > s.lastSeen[n] {
					s.lastSeen[n] = t
				}
			})
		})
	}
	if !s.done {
		s.hbTimer = s.t.W.After(s.pol.HeartbeatInterval, s.hbTick)
	}
}

// nodeDown handles a failure declaration from the detector.
func (s *Supervisor) nodeDown(n *vos.Node) {
	if s.declared[n] {
		return
	}
	s.declared[n] = true
	s.stats.NodesDeclared++
	// The unavailability clock starts when the heartbeat became overdue,
	// not when the detector got around to declaring it; the miss instant
	// is stamped on the declaration so offline RTO analysis can recover
	// the detection segment. The first unclaimed declaration seeds the
	// next recovery episode's RTO window.
	missT := s.lastSeen[n] + sim.Time(s.pol.HeartbeatTimeout)
	if s.pendingDetectT == 0 || missT < s.pendingMissT {
		s.pendingMissT = missT
		s.pendingDetectT = s.t.W.Now()
	}
	s.logA(EvNodeDown, []trace.Attr{trace.I64("miss_t", int64(missT)), trace.Str("node", n.Name())},
		"node %s: heartbeat silent for %v", n.Name(), s.pol.HeartbeatTimeout)
	if s.recovering || s.ckptBusy {
		// An operation is in flight; it will abort (agent failure or
		// watchdog) and its completion callback re-enters recovery.
		s.pendingRecover = true
		return
	}
	s.startRecovery()
}

// ckptTick begins one periodic checkpoint cycle.
func (s *Supervisor) ckptTick() {
	if s.finishIfDone() || s.recovering {
		return
	}
	if s.ckptBusy {
		return // previous cycle still retrying; it re-arms the timer
	}
	s.ckptBusy = true
	s.attempt = 0
	s.cycleSpan = s.tr.Start(nil, "supervisor/ckpt-cycle", trace.Track("supervisor"),
		trace.I64("gen", int64(s.gen)))
	s.checkpointAttempt()
}

func (s *Supervisor) backoff() sim.Duration {
	d := s.pol.RetryBackoff
	for i := 1; i < s.attempt; i++ {
		d *= 2
		if d >= s.pol.MaxBackoff {
			return s.pol.MaxBackoff
		}
	}
	if d > s.pol.MaxBackoff {
		d = s.pol.MaxBackoff
	}
	return d
}

func (s *Supervisor) genDir(seq int) string {
	return fmt.Sprintf("%s/gen%04d", s.pol.Dir, seq)
}

// checkpointAttempt runs one coordinated checkpoint to the next
// generation directory and validates what was flushed.
func (s *Supervisor) checkpointAttempt() {
	if s.done || s.recovering {
		s.ckptBusy = false
		s.endCycleSpan("superseded")
		return
	}
	if s.pendingRecover {
		// The detector declared a node between attempts; stop retrying
		// and fail over instead.
		s.ckptBusy = false
		s.endCycleSpan("diverted-to-recovery")
		s.startRecovery()
		return
	}
	if s.finishIfDone() {
		return
	}
	dir := s.genDir(s.gen)
	opts := core.Options{
		Mode:    core.Snapshot,
		FlushTo: dir,
		Timeout: s.pol.CheckpointTimeout,
		Workers: s.pol.Workers,
		Incr:    s.incr,
	}
	if s.pol.Fanout > 0 {
		opts.Coord = &coord.Config{Fanout: s.pol.Fanout}
	}
	if s.incr == nil && !s.pol.StopAndCopy {
		// Periodic non-incremental checkpoints default to pre-copy: the
		// application keeps running through the bulk of the serialization
		// and only the residual dirty set is captured quiesced.
		opts.Precopy = &core.PrecopyOptions{
			MaxRounds:     s.pol.PrecopyMaxRounds,
			ConvergeBytes: s.pol.PrecopyConvergeBytes,
		}
	}
	s.t.Mgr.Checkpoint(s.t.Pods(), opts, func(res *core.CheckpointResult) {
		s.ckptDone(dir, res)
	})
}

func (s *Supervisor) ckptDone(dir string, res *core.CheckpointResult) {
	if s.done {
		return
	}
	err := res.Err
	if err == nil {
		err = s.validateGeneration(dir)
	}
	full := true
	if err == nil {
		for _, ag := range res.Stats.Agents {
			if ag.Incremental {
				full = false
				break
			}
		}
	}
	if err == nil {
		// End-to-end chain validation: the generation (with its chain
		// back to the nearest full image, for deltas) must reconstruct
		// from what actually landed on the shared filesystem.
		s.gens = append(s.gens, Generation{Seq: s.gen, Dir: dir, T: s.t.W.Now(), Full: full})
		if _, lerr := s.loadGeneration(len(s.gens) - 1); lerr != nil {
			s.gens = s.gens[:len(s.gens)-1]
			err = fmt.Errorf("chain validation: %w", lerr)
			if s.incr != nil {
				// The tracker committed against a record the storage
				// cannot reproduce; restart the chain rather than extend
				// it.
				s.incr.Rebase()
			}
		} else {
			s.gens = s.gens[:len(s.gens)-1]
		}
	}
	switch {
	case err == nil:
		var bytes int64
		for _, f := range s.t.Store.List(dir) {
			if info, e := s.t.Store.Stat(f); e == nil {
				bytes += info.Size
			}
		}
		s.gens = append(s.gens, Generation{Seq: s.gen, Dir: dir, T: s.t.W.Now(), Bytes: bytes, Full: full})
		s.gen++
		s.stats.Checkpoints++
		kind := "full"
		if !full {
			kind = "delta"
		}
		s.log(EvCheckpoint, "generation %s committed (%s, %d records, %.1f KB, took %v)",
			dir, kind, len(res.Images), float64(bytes)/1024, res.Stats.Total)
		s.gc()
		s.endCkptCycle()
	case s.pendingRecover:
		// The failure detector declared a node while this attempt was in
		// flight; scrap the partial generation and fail over.
		s.scrapGeneration(dir)
		s.log(EvRetry, "checkpoint aborted during failure handling: %v", err)
		s.ckptBusy = false
		s.endCycleSpan("diverted-to-recovery")
		s.startRecovery()
	default:
		// Every other abort — watchdog timeout, lost control message,
		// manager hiccup, even an agent-failure report — is retried with
		// exponential backoff. The heartbeat detector is the sole
		// failover authority: if a node really is down, it declares it
		// within HeartbeatTimeout (well inside one backoff) and the next
		// attempt diverts to recovery instead of retrying.
		s.scrapGeneration(dir)
		s.attempt++
		if s.attempt > s.pol.MaxRetries {
			s.log(EvCkptGiveUp, "checkpoint failed after %d attempts: %v", s.attempt-1, err)
			s.endCkptCycle()
			return
		}
		d := s.backoff()
		s.stats.Retries++
		s.log(EvRetry, "checkpoint attempt %d aborted (%v), retrying in %v", s.attempt, err, d)
		s.t.W.After(d, s.checkpointAttempt)
	}
}

// endCkptCycle closes a checkpoint cycle and re-arms the period timer.
func (s *Supervisor) endCkptCycle() {
	s.ckptBusy = false
	s.endCycleSpan("done")
	if s.pendingRecover {
		s.startRecovery()
		return
	}
	if s.done || s.finishIfDone() || s.pol.CheckpointEvery <= 0 {
		return
	}
	s.ckptTimer = s.t.W.After(s.pol.CheckpointEvery, s.ckptTick)
}

// scrapGeneration removes the partial output of a failed attempt.
func (s *Supervisor) scrapGeneration(dir string) {
	for _, f := range s.t.Store.List(dir) {
		_ = s.t.Store.Remove(f)
	}
	s.sweepStore()
}

// sweepStore collects storage orphaned below the image paths — dedup
// blocks left by a writer that died mid-commit. Stores without
// block-level GC (plain FSStore, remote) have nothing to sweep.
func (s *Supervisor) sweepStore() {
	if sw, ok := s.t.Store.(imagestore.Sweeper); ok {
		if n := sw.Sweep(); n > 0 {
			s.log(EvGC, "swept %d orphaned store blocks", n)
		}
	}
}

// validateGeneration streams back every record just flushed and
// decode-checks it (per-chunk CRCs, trailer, and full field walk), so a
// generation is only ever trusted after an end-to-end
// write/read/decode round trip. Records are verified as streams — the
// supervisor never materializes one. Chain linkage of delta records is
// validated separately via loadGeneration.
func (s *Supervisor) validateGeneration(dir string) error {
	files := s.t.Store.List(dir)
	if len(files) == 0 {
		return fmt.Errorf("supervisor: generation %s flushed no images", dir)
	}
	for _, f := range files {
		rc, err := s.t.Store.Open(f)
		if err != nil {
			return err
		}
		if strings.HasSuffix(f, ".delta") {
			_, err = ckpt.DecodeDeltaFrom(rc)
		} else {
			_, err = ckpt.VerifyImageFrom(rc)
		}
		rc.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	return nil
}

// gc drops generations beyond the retention depth, oldest first. A full
// generation and the deltas depending on it form a chain that is only
// ever dropped whole, so every retained delta keeps a restorable base.
func (s *Supervisor) gc() {
	for len(s.gens) > s.pol.Retain {
		chainLen := 1
		for chainLen < len(s.gens) && !s.gens[chainLen].Full {
			chainLen++
		}
		if len(s.gens)-chainLen < s.pol.Retain {
			return // dropping the chain would dip below the retention depth
		}
		for i := 0; i < chainLen; i++ {
			g := s.gens[i]
			s.scrapGeneration(g.Dir)
			s.stats.GCCollected++
			s.log(EvGC, "collected generation %s", g.Dir)
		}
		s.gens = s.gens[chainLen:]
	}
	s.sweepStore()
}

// podOf extracts the pod name from a generation record path. Pre-copy
// generations name their round deltas <pod>.rNN.delta; the round suffix
// is stripped along with the extension.
func podOf(f string) string {
	base := f[strings.LastIndex(f, "/")+1:]
	base = strings.TrimSuffix(base, ".img")
	base = strings.TrimSuffix(base, ".delta")
	if i := strings.LastIndex(base, ".r"); i >= 0 {
		if _, err := strconv.Atoi(base[i+2:]); err == nil && len(base) > i+2 {
			base = base[:i]
		}
	}
	return base
}

// chainRank orders one pod's records within a generation for chain
// reconstruction: the full image first, then pre-copy round deltas by
// round number, then the residual delta. Lexicographic store order is
// NOT restore order ("p.delta" < "p.img" < "p.r01.delta"), so the
// ordering must be explicit.
func chainRank(f string) int {
	base := f[strings.LastIndex(f, "/")+1:]
	if strings.HasSuffix(base, ".img") {
		return 0
	}
	trimmed := strings.TrimSuffix(base, ".delta")
	if i := strings.LastIndex(trimmed, ".r"); i >= 0 {
		if n, err := strconv.Atoi(trimmed[i+2:]); err == nil {
			return n
		}
	}
	return 1 << 30 // the residual (plain .delta) closes the chain
}

// podChains groups one generation directory's files into per-pod record
// chains in restore order. A stop-and-copy generation yields one-element
// chains; a pre-copy generation yields base + round deltas + residual.
func podChains(files []string) map[string][]string {
	chains := make(map[string][]string)
	for _, f := range files {
		name := podOf(f)
		chains[name] = append(chains[name], f)
	}
	for name, fs := range chains {
		sort.Slice(fs, func(i, j int) bool { return chainRank(fs[i]) < chainRank(fs[j]) })
		chains[name] = fs
	}
	return chains
}

// chainPaths collects, for the generation at index gi, each pod's
// record-chain paths: the nearest full generation at or before gi plus
// every delta between it and gi, in order. Records themselves stay in
// the store; reconstruction streams them one at a time.
func (s *Supervisor) chainPaths(gi int) (map[string][]string, error) {
	base := gi
	for base >= 0 && !s.gens[base].Full {
		base--
	}
	if base < 0 {
		return nil, fmt.Errorf("generation %s: no full base generation retained", s.gens[gi].Dir)
	}
	chains := podChains(s.t.Store.List(s.gens[base].Dir))
	for j := base + 1; j <= gi; j++ {
		for name := range chains {
			f := fmt.Sprintf("%s/%s.delta", s.gens[j].Dir, name)
			if _, err := s.t.Store.Stat(f); err != nil {
				return nil, fmt.Errorf("generation %s: pod %s: %w", s.gens[j].Dir, name, err)
			}
			chains[name] = append(chains[name], f)
		}
	}
	return chains, nil
}

// loadGeneration reads and verifies every image of the generation at
// index gi into s.gens, reconstructing base+delta chains for
// incremental generations, and returns the images sorted by pod name
// for deterministic placement. The error names the first pod whose
// record (or chain) fails validation.
func (s *Supervisor) loadGeneration(gi int) ([]*ckpt.Image, error) {
	g := s.gens[gi]
	span := s.tr.Start(s.opSpan(), "supervisor/load-generation", trace.Track("supervisor"),
		trace.Str("dir", g.Dir), trace.I64("seq", int64(g.Seq)))
	images, err := s.loadGenerationRecords(gi)
	if err != nil {
		span.End(trace.Str("err", err.Error()))
		return nil, err
	}
	span.End(trace.I64("images", int64(len(images))))
	return images, nil
}

func (s *Supervisor) loadGenerationRecords(gi int) ([]*ckpt.Image, error) {
	g := s.gens[gi]
	files := s.t.Store.List(g.Dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("generation %s: %w", g.Dir, ErrNoValidCheckpoint)
	}
	// A Full generation is self-contained: each pod is either a single
	// .img (stop-and-copy) or a pre-copy chain base+rounds+residual. A
	// non-Full (incremental) generation chains back through prior
	// generations via chainPaths.
	var chains map[string][]string
	if g.Full {
		chains = podChains(files)
	} else {
		var err error
		chains, err = s.chainPaths(gi)
		if err != nil {
			return nil, err
		}
	}
	// Walk the chains in pod-name order: map iteration order must not
	// decide which pod's error surfaces first or the order trace
	// events are emitted in.
	names := make([]string, 0, len(chains))
	for name := range chains {
		names = append(names, name)
	}
	sort.Strings(names)
	var images []*ckpt.Image
	for _, name := range names {
		paths := chains[name]
		if len(paths) == 1 && strings.HasSuffix(paths[0], ".img") {
			rc, err := s.t.Store.Open(paths[0])
			if err != nil {
				return nil, err
			}
			img, err := ckpt.VerifyImageFrom(rc)
			rc.Close()
			if err != nil {
				return nil, fmt.Errorf("pod %s (%s): %w", name, paths[0], err)
			}
			images = append(images, img)
			continue
		}
		cSpan := s.tr.Start(s.opSpan(), "supervisor/chain-reconstruct", trace.Track("supervisor"),
			trace.Str("pod", name), trace.I64("links", int64(len(paths))))
		img, err := ckpt.ReconstructChainFrom(len(paths), func(i int) (io.ReadCloser, error) {
			return s.t.Store.Open(paths[i])
		})
		if err != nil {
			cSpan.End(trace.Str("err", err.Error()))
			return nil, fmt.Errorf("pod %s: %w", name, err)
		}
		cSpan.End(trace.I64("bytes", img.Bytes()))
		images = append(images, img)
	}
	sort.Slice(images, func(i, j int) bool { return images[i].PodName < images[j].PodName })
	return images, nil
}

// startRecovery begins (or re-enters) failover: tear down the job's
// pods and restart from the newest valid generation on the survivors.
func (s *Supervisor) startRecovery() {
	if s.done {
		return
	}
	s.pendingRecover = false
	if !s.recovering {
		s.recovering = true
		s.attempt = 0
		s.t.W.Cancel(s.ckptTimer)
		// Claim the pending failure declaration as this episode's RTO
		// window start. Recovery entered from a checkpoint abort before
		// the detector fired has no declaration yet; the episode then
		// starts (and the window opens) now.
		s.recMissT = s.pendingMissT
		if s.pendingDetectT == 0 {
			s.recMissT = s.t.W.Now()
		}
		s.pendingMissT, s.pendingDetectT = 0, 0
		s.recSpan = s.tr.Start(nil, "supervisor/failover", trace.Track("supervisor"),
			trace.I64("generations", int64(len(s.gens))))
	}
	// Recovery may be entered from a checkpoint abort before the
	// detector's timeout expires; mark the dead nodes declared so the
	// detector does not trigger a second, redundant failover later.
	for _, n := range s.monitored {
		if n.Failed() {
			s.declared[n] = true
		}
	}
	// Tear down what is left of the job so the virtual addresses are
	// free for the restart (pods on the dead node detach cleanly too).
	for _, p := range s.t.Pods() {
		p.Destroy()
	}
	// Newest valid generation wins; corrupted ones (or delta chains
	// with a broken link) are skipped with an explicit record,
	// restarting from the previous valid generation.
	var images []*ckpt.Image
	for i := len(s.gens) - 1; i >= 0; i-- {
		var err error
		images, err = s.loadGeneration(i)
		if err == nil {
			s.recGenT = s.gens[i].T
			break
		}
		s.stats.CorruptSkipped++
		s.log(EvSkipCorrupt, "skipping generation %s: %v", s.gens[i].Dir, err)
		images = nil
	}
	if images == nil {
		s.halt(ErrNoValidCheckpoint)
		return
	}
	survivors := s.survivors()
	if len(survivors) == 0 {
		s.halt(ErrNoSurvivors)
		return
	}
	placements := make([]core.Placement, len(images))
	for i, img := range images {
		placements[i] = core.Placement{
			Image:   img,
			PodName: img.PodName,
			Node:    survivors[i%len(survivors)],
		}
	}
	s.t.Mgr.SetWorkers(s.pol.Workers)
	if s.pol.Fanout > 0 {
		s.t.Mgr.SetCoord(&coord.Config{Fanout: s.pol.Fanout})
	}
	s.t.Mgr.Restart(placements, nil, s.restartDone)
}

// survivors returns the usable restart targets.
func (s *Supervisor) survivors() []*vos.Node {
	var out []*vos.Node
	for _, n := range s.t.Nodes() {
		if !n.Failed() {
			out = append(out, n)
		}
	}
	return out
}

func (s *Supervisor) restartDone(res *core.RestartResult) {
	if s.done {
		return
	}
	if res.Err != nil {
		// Another node may have died mid-restart, or the control plane
		// glitched; core's cleanup released the claims and pods, so a
		// retry from the same images is safe.
		s.attempt++
		if s.attempt > s.pol.MaxRetries {
			s.halt(fmt.Errorf("%w: restart failed %d times, last: %v", ErrGivenUp, s.attempt-1, res.Err))
			return
		}
		d := s.backoff()
		s.log(EvRestartRetry, "restart attempt %d failed (%v), retrying in %v", s.attempt, res.Err, d)
		s.t.W.After(d, s.startRecovery)
		return
	}
	if err := s.t.Rebind(res.Pods); err != nil {
		s.halt(fmt.Errorf("supervisor: rebind after failover: %w", err))
		return
	}
	s.recovering = false
	s.stats.Failovers++
	// Availability figures for this failover: RTO runs from the
	// heartbeat-miss instant to this instant (the pods are serving
	// again); RPO is the virtual time between the restored generation's
	// commit and the miss — the work the job lost.
	now := s.t.W.Now()
	rto := sim.Duration(now - s.recMissT)
	rpo := sim.Duration(s.recMissT - s.recGenT)
	if rpo < 0 {
		rpo = 0
	}
	rtoUs, rpoUs := int64(rto)/1e3, int64(rpo)/1e3
	s.reg.Histogram("supervisor_rto_us").Observe(rtoUs)
	s.reg.Histogram("supervisor_rpo_us").Observe(rpoUs)
	s.stats.LastRTO, s.stats.LastRPO = rto, rpo
	s.logA(EvFailover, []trace.Attr{trace.I64("rto_us", rtoUs), trace.I64("rpo_us", rpoUs)},
		"restarted %d pods on %d surviving nodes in %v (rto %v, rpo %v)",
		len(res.Pods), len(s.survivors()), res.Stats.Total, rto, rpo)
	s.endRecSpan("ok", trace.I64("rto_us", rtoUs), trace.I64("rpo_us", rpoUs))
	if s.incr != nil {
		// The trackers' bases refer to pods that no longer exist; the
		// next generation of every pod starts a fresh chain.
		s.incr.Rebase()
	}
	s.resetMonitoring()
	if s.pol.CheckpointEvery > 0 {
		s.ckptTimer = s.t.W.After(s.pol.CheckpointEvery, s.ckptTick)
	}
	if s.pendingRecover {
		// A further failure was declared while we were restarting.
		s.pendingRecover = false
		s.startRecovery()
	}
}
