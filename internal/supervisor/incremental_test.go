// End-to-end tests of incremental checkpointing under the supervisor:
// delta generations, chain-aware retention, and failover from a
// generation that needs base+delta reconstruction.
package supervisor_test

import (
	"testing"

	"zapc/internal/cluster"
	"zapc/internal/faultinject"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
)

// checkChainInvariant asserts every retained delta generation has its
// full base retained before it (what chain-aware GC must preserve).
func checkChainInvariant(t *testing.T, gens []supervisor.Generation) {
	t.Helper()
	if len(gens) == 0 {
		return
	}
	if !gens[0].Full {
		t.Fatalf("oldest retained generation %s is a delta with no base", gens[0].Dir)
	}
}

func TestSupervisorIncrementalFailoverE2E(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.03, Scale: 0.001}
	seed := int64(5)
	want, refDur := reference(t, seed, spec)

	c := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, supervisor.Policy{
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   refDur / 12,
		Incremental:       true,
		FullEvery:         4,
		Workers:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Nodes[1]
	inj := faultinject.New(c.W, c.FS)
	inj.SetProgressProbe(job.Progress, 0)
	if err := inj.Arm([]faultinject.Step{{
		Name: "kill-node1", Progress: 0.55,
		Action: faultinject.ActCrashNode, Node: victim,
	}}); err != nil {
		t.Fatal(err)
	}

	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatalf("drive: %v (supervisor: %v, events: %v)", err, sup.Err(), sup.Events())
	}
	if err := c.Drive(func() bool { return !sup.Running() }, 60*sim.Second); err != nil {
		t.Fatalf("supervisor never stood down: %v", err)
	}
	if got := job.Result(); got != want {
		t.Fatalf("recovered result %v != reference %v", got, want)
	}
	st := sup.Stats()
	if st.Failovers < 1 {
		t.Fatalf("no failover happened; events: %v", sup.Events())
	}
	if st.Checkpoints < 3 {
		t.Fatalf("only %d generations committed", st.Checkpoints)
	}
	checkChainInvariant(t, sup.Generations())

	// The run must actually have used delta generations, and they must
	// be cheaper on the wire than full ones.
	var fullBytes, deltaBytes, fulls, deltas int64
	for _, g := range sup.Generations() {
		if g.Full {
			fullBytes += g.Bytes
			fulls++
		} else {
			deltaBytes += g.Bytes
			deltas++
		}
	}
	if fulls == 0 {
		t.Fatal("no full generation retained")
	}
	if deltas == 0 {
		t.Fatalf("no delta generation retained; generations: %+v", sup.Generations())
	}
	if deltaBytes/deltas >= fullBytes/fulls {
		t.Fatalf("average delta generation (%d B) not smaller than average full (%d B)",
			deltaBytes/deltas, fullBytes/fulls)
	}
}

// TestSupervisorIncrementalGC runs many checkpoint cycles at a small
// retention depth and asserts the chain invariant holds throughout: GC
// never strands a delta without its full base.
func TestSupervisorIncrementalGC(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.05, Scale: 0.001}
	seed := int64(11)
	_, refDur := reference(t, seed, spec)

	c := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, supervisor.Policy{
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   refDur / 20,
		Retain:            2,
		Incremental:       true,
		FullEvery:         3,
		Workers:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatalf("drive: %v (events: %v)", err, sup.Events())
	}
	if err := c.Drive(func() bool { return !sup.Running() }, 60*sim.Second); err != nil {
		t.Fatal(err)
	}
	st := sup.Stats()
	if st.Checkpoints < 6 {
		t.Fatalf("only %d generations committed; want enough to trigger GC", st.Checkpoints)
	}
	if st.GCCollected == 0 {
		t.Fatal("GC never collected a chain")
	}
	checkChainInvariant(t, sup.Generations())
	// Full chains are dropped whole: collected count must be a multiple
	// of whole chains, i.e. the retained list still starts with a full
	// generation and contains every delta's base (checked above); also
	// retention never dipped below the policy floor.
	if len(sup.Generations()) < 2 {
		t.Fatalf("retained %d generations, want >= Retain", len(sup.Generations()))
	}
}
