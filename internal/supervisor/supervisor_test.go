// End-to-end tests of the self-healing supervisor, driven through the
// cluster layer (an external test package: cluster sits above supervisor
// in the import graph).
package supervisor_test

import (
	"strings"
	"testing"

	"zapc/internal/cluster"
	"zapc/internal/core"
	"zapc/internal/faultinject"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
)

const deadline = 30 * 60 * sim.Second

// reference runs the job undisturbed on a fresh cluster with the same
// seed and returns its result and duration.
func reference(t *testing.T, seed int64, spec cluster.JobSpec) (float64, sim.Duration) {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	dur, err := c.RunJob(job, deadline)
	if err != nil {
		t.Fatal(err)
	}
	return job.Result(), dur
}

// TestSupervisorFailoverE2E is the headline scenario: a job runs under a
// periodic checkpoint policy, fault injection kills a node mid-run, the
// supervisor detects the failure by heartbeat timeout (the test never
// polls Node.Failed), restarts from the newest valid generation on the
// survivors, and the job completes with a result identical to an
// undisturbed reference run — for multiple seeds.
func TestSupervisorFailoverE2E(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.03, Scale: 0.001}
	for _, seed := range []int64{1, 9} {
		want, refDur := reference(t, seed, spec)

		c := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
		job, err := c.Launch(spec)
		if err != nil {
			t.Fatal(err)
		}
		sup, err := c.Supervise(job, supervisor.Policy{
			HeartbeatInterval: 50 * sim.Millisecond,
			CheckpointEvery:   refDur / 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		victim := c.Nodes[1]
		inj := faultinject.New(c.W, c.FS)
		inj.SetProgressProbe(job.Progress, 0)
		if err := inj.Arm([]faultinject.Step{{
			Name: "kill-node1", Progress: 0.5,
			Action: faultinject.ActCrashNode, Node: victim,
		}}); err != nil {
			t.Fatal(err)
		}

		if err := c.Drive(job.Finished, deadline); err != nil {
			t.Fatalf("seed %d: drive: %v (supervisor: %v, events: %v)",
				seed, err, sup.Err(), sup.Events())
		}
		// Let the supervisor notice completion at its next tick.
		if err := c.Drive(func() bool { return !sup.Running() }, 60*sim.Second); err != nil {
			t.Fatalf("seed %d: supervisor never stood down: %v", seed, err)
		}
		if got := job.Result(); got != want {
			t.Fatalf("seed %d: recovered result %v != reference %v", seed, got, want)
		}
		st := sup.Stats()
		if st.Checkpoints < 1 {
			t.Fatalf("seed %d: no generation was ever committed", seed)
		}
		if st.NodesDeclared < 1 || len(sup.EventsOf(supervisor.EvNodeDown)) < 1 {
			t.Fatalf("seed %d: heartbeat detector never declared the failure; events: %v",
				seed, sup.Events())
		}
		if st.Failovers < 1 || len(sup.EventsOf(supervisor.EvFailover)) < 1 {
			t.Fatalf("seed %d: no automatic failover happened; events: %v", seed, sup.Events())
		}
		if fired := inj.Fired(); len(fired) != 1 || fired[0].Name != "kill-node1" {
			t.Fatalf("seed %d: fault record %v", seed, fired)
		}
		for _, p := range job.Pods {
			if p.Node() == victim {
				t.Fatalf("seed %d: pod %s restored onto the failed node", seed, p.Name())
			}
			if p.Node().Failed() {
				t.Fatalf("seed %d: pod %s on a failed node", seed, p.Name())
			}
		}
		if len(sup.EventsOf(supervisor.EvDone)) != 1 {
			t.Fatalf("seed %d: supervisor did not stand down; events: %v", seed, sup.Events())
		}
	}
}

// TestSupervisorHeartbeatLatency bounds the detection delay: the
// detector must declare the node within a few heartbeat periods of the
// crash, not eventually.
func TestSupervisorHeartbeatLatency(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.03, Scale: 0.001}
	_, refDur := reference(t, 2, spec)
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 2})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	pol := supervisor.Policy{
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   refDur / 10,
	}
	sup, err := c.Supervise(job, pol)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(c.W, c.FS)
	var crashed sim.Time
	inj.At(refDur/2, "kill", func() {
		crashed = c.W.Now()
		c.Nodes[1].Fail()
	})
	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatalf("drive: %v (supervisor: %v)", err, sup.Err())
	}
	downs := sup.EventsOf(supervisor.EvNodeDown)
	if len(downs) < 1 {
		t.Fatalf("no node-down event; events: %v", sup.Events())
	}
	eff := sup.Policy()
	bound := eff.HeartbeatTimeout + 3*eff.HeartbeatInterval
	if lat := sim.Duration(downs[0].T - crashed); lat > bound {
		t.Fatalf("detection latency %v exceeds %v", lat, bound)
	}
}

// TestSupervisorRetryBackoff injects a transient control-plane fault
// (the first checkpoint's broadcast is dropped entirely) and verifies
// the supervisor retries with backoff and commits on a later attempt.
func TestSupervisorRetryBackoff(t *testing.T) {
	spec := cluster.JobSpec{App: "bratu", Endpoints: 4, Work: 0.03, Scale: 0.001}
	want, refDur := reference(t, 5, spec)

	c := cluster.New(cluster.Config{Nodes: 4, Seed: 5})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, supervisor.Policy{
		CheckpointEvery:   refDur / 4,
		CheckpointTimeout: 200 * sim.Millisecond,
		RetryBackoff:      50 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The injector owns the manager's control hook; arming the drop at
	// checkpoint-start kills exactly the first attempt's M1 broadcast
	// (one message per pod), stalling it into the watchdog.
	inj := faultinject.New(c.W, c.FS)
	inj.ObservePhases(c.Mgr)
	inj.InterposeCtrl(c.Mgr)
	if err := inj.Arm([]faultinject.Step{{
		Name: "drop-first-broadcast", Phase: core.PhaseCheckpointStart,
		Action: faultinject.ActDropControl, Count: len(job.Pods),
	}}); err != nil {
		t.Fatal(err)
	}

	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatalf("drive: %v (supervisor: %v, events: %v)", err, sup.Err(), sup.Events())
	}
	st := sup.Stats()
	if st.Retries < 1 || len(sup.EventsOf(supervisor.EvRetry)) < 1 {
		t.Fatalf("no retry recorded; stats %+v events %v", st, sup.Events())
	}
	if st.Checkpoints < 1 {
		t.Fatalf("no generation committed despite retries; events: %v", sup.Events())
	}
	if got := job.Result(); got != want {
		t.Fatalf("result %v != reference %v", got, want)
	}
}

// TestSupervisorSkipsCorruptGeneration corrupts the newest committed
// generation on the shared FS; at the next failover the supervisor must
// skip it (with an explicit event) and restart from the previous valid
// generation.
func TestSupervisorSkipsCorruptGeneration(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.03, Scale: 0.001}
	want, refDur := reference(t, 6, spec)

	c := cluster.New(cluster.Config{Nodes: 4, Seed: 6})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, supervisor.Policy{
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   refDur / 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for two committed generations, then corrupt the newest and
	// kill a node; detection (a few hundred ms) far precedes the next
	// checkpoint period.
	if err := c.Drive(func() bool { return sup.Stats().Checkpoints >= 2 }, deadline); err != nil {
		t.Fatalf("drive to second generation: %v", err)
	}
	gens := sup.Generations()
	newest := gens[len(gens)-1]
	files := c.FS.List(newest.Dir)
	if len(files) == 0 {
		t.Fatalf("generation %s has no files", newest.Dir)
	}
	data, err := c.FS.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := c.FS.WriteFile(files[0], data); err != nil {
		t.Fatal(err)
	}
	c.Nodes[1].Fail()

	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatalf("drive: %v (supervisor: %v, events: %v)", err, sup.Err(), sup.Events())
	}
	st := sup.Stats()
	if st.CorruptSkipped < 1 || len(sup.EventsOf(supervisor.EvSkipCorrupt)) < 1 {
		t.Fatalf("corrupt generation was not skipped; stats %+v events %v", st, sup.Events())
	}
	if st.Failovers < 1 {
		t.Fatalf("no failover; events: %v", sup.Events())
	}
	if got := job.Result(); got != want {
		t.Fatalf("result %v != reference %v", got, want)
	}
}

// TestSupervisorRetentionGC verifies the bounded generation store: with
// Retain=2 the supervisor keeps at most two generations on the shared
// FS and collects the rest oldest-first.
func TestSupervisorRetentionGC(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.1, Scale: 0.001}
	_, refDur := reference(t, 8, spec)

	c := cluster.New(cluster.Config{Nodes: 4, Seed: 8})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-copy checkpoints barely delay the job, so the period must be
	// tight for five generations to land before completion.
	sup, err := c.Supervise(job, supervisor.Policy{
		CheckpointEvery: refDur / 40,
		Retain:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(func() bool { return sup.Stats().Checkpoints >= 5 || job.Finished() }, deadline); err != nil {
		t.Fatal(err)
	}
	st := sup.Stats()
	if st.Checkpoints < 5 {
		t.Fatalf("only %d checkpoints before completion; slow down the job", st.Checkpoints)
	}
	gens := sup.Generations()
	if len(gens) > 2 {
		t.Fatalf("%d generations retained, want <= 2", len(gens))
	}
	if st.GCCollected < 3 {
		t.Fatalf("GCCollected = %d, want >= 3", st.GCCollected)
	}
	// Only the retained generations' files remain on the shared FS. A
	// pre-copy generation holds a chain per pod (base image + residual,
	// plus any round deltas), so count per-pod chains, not files.
	files := c.FS.List(sup.Policy().Dir)
	if len(files) < len(gens)*len(job.Pods) {
		t.Fatalf("%d files under %s, want >= %d: %v", len(files), sup.Policy().Dir, len(gens)*len(job.Pods), files)
	}
	for _, f := range files {
		kept := false
		for _, g := range gens {
			if strings.HasPrefix(f, g.Dir+"/") {
				kept = true
				break
			}
		}
		if !kept {
			t.Fatalf("file %s survives outside the retained generations %v", f, gens)
		}
	}
	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorPrecopyGenerationLayout: periodic checkpoints default
// to pre-copy, so each pod's generation record is a chain — a base
// image flushed while the pod ran plus a quiesced residual delta — and
// a failover must restore from that chain to the reference result.
// StopAndCopy opts back into the classic single-image layout.
func TestSupervisorPrecopyGenerationLayout(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.1, Scale: 0.001}
	want, refDur := reference(t, 21, spec)

	c := cluster.New(cluster.Config{Nodes: 4, Seed: 21})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, supervisor.Policy{
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   refDur / 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(func() bool { return sup.Stats().Checkpoints >= 1 || job.Finished() }, deadline); err != nil {
		t.Fatal(err)
	}
	gens := sup.Generations()
	if len(gens) < 1 {
		t.Fatalf("no generation committed; events: %v", sup.Events())
	}
	if !gens[0].Full {
		t.Fatalf("pre-copy generation %s not marked full", gens[0].Dir)
	}
	files := c.FS.List(gens[0].Dir)
	for _, p := range job.Pods {
		var hasImg, hasResidual bool
		for _, f := range files {
			if f == gens[0].Dir+"/"+p.Name()+".img" {
				hasImg = true
			}
			if f == gens[0].Dir+"/"+p.Name()+".delta" {
				hasResidual = true
			}
		}
		if !hasImg || !hasResidual {
			t.Fatalf("pod %s: generation %s lacks a base+residual chain: %v",
				p.Name(), gens[0].Dir, files)
		}
	}
	victim := c.Nodes[2]
	inj := faultinject.New(c.W, c.FS)
	inj.SetProgressProbe(job.Progress, 0)
	if err := inj.Arm([]faultinject.Step{{
		Name: "kill-node2", Progress: 0.6,
		Action: faultinject.ActCrashNode, Node: victim,
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatalf("drive: %v (supervisor: %v, events: %v)", err, sup.Err(), sup.Events())
	}
	if got := job.Result(); got != want {
		t.Fatalf("restored-from-precopy-chain result %v != reference %v", got, want)
	}
	if sup.Stats().Failovers < 1 {
		t.Fatalf("no failover exercised the chain restore; events: %v", sup.Events())
	}

	// StopAndCopy: one .img per pod and nothing else.
	c2 := cluster.New(cluster.Config{Nodes: 4, Seed: 21})
	job2, err := c2.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := c2.Supervise(job2, supervisor.Policy{
		CheckpointEvery: refDur / 20,
		StopAndCopy:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Drive(func() bool { return sup2.Stats().Checkpoints >= 1 || job2.Finished() }, deadline); err != nil {
		t.Fatal(err)
	}
	gens2 := sup2.Generations()
	if len(gens2) < 1 {
		t.Fatalf("no stop-and-copy generation committed; events: %v", sup2.Events())
	}
	files2 := c2.FS.List(gens2[0].Dir)
	if len(files2) != len(job2.Pods) {
		t.Fatalf("stop-and-copy generation %s has %d files, want %d: %v",
			gens2[0].Dir, len(files2), len(job2.Pods), files2)
	}
	for _, f := range files2 {
		if !strings.HasSuffix(f, ".img") {
			t.Fatalf("stop-and-copy generation %s holds a non-image record %s", gens2[0].Dir, f)
		}
	}
}

// TestSupervisorHaltsWithoutGenerations: a node dies before any
// checkpoint was committed; the supervisor must halt with a recorded
// reason instead of hanging or panicking.
func TestSupervisorHaltsWithoutGenerations(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.03, Scale: 0.001}
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 11})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, supervisor.Policy{
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   deadline, // effectively never
	})
	if err != nil {
		t.Fatal(err)
	}
	c.W.After(100*sim.Millisecond, func() { c.Nodes[1].Fail() })
	// The job can never finish (a peer is dead, no recovery possible);
	// drive until the supervisor halts.
	if err := c.Drive(func() bool { return !sup.Running() }, deadline); err != nil {
		t.Fatal(err)
	}
	if sup.Err() == nil {
		t.Fatal("supervisor stood down without a recorded error")
	}
	if len(sup.EventsOf(supervisor.EvHalt)) != 1 {
		t.Fatalf("events: %v", sup.Events())
	}
}

// TestSuperviseRejectsBaseJobs: unvirtualized jobs cannot be
// checkpointed, so supervision must be refused up front.
func TestSuperviseRejectsBaseJobs(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, Seed: 1})
	job, err := c.Launch(cluster.JobSpec{App: "cpi", Endpoints: 2, Work: 0.01, Scale: 0.001, Base: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Supervise(job, supervisor.Policy{}); err == nil {
		t.Fatal("base job accepted for supervision")
	}
}
