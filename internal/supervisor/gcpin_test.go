// Retention GC racing a lagging standby. A generation the replica has
// not acknowledged must never be collected, no matter how far the
// retention depth is exceeded; the pin must release the moment the
// replica acks (or dies), and the store must converge back to exactly
// the advertised generations.
package supervisor_test

import (
	"path"
	"testing"

	"zapc/internal/ckpt"
	"zapc/internal/cluster"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
	"zapc/internal/vos"
)

// stubReplica is a minimal supervisor.Replica whose acknowledgement
// watermark the test controls directly: while hold is set, syncs are
// parked without acking, exactly like a standby whose apply loop has
// stalled behind the primary.
type stubReplica struct {
	ready bool
	hold  bool
	acked int
	// parked syncs: the generations of the last held Sync and its
	// completion callback, released by release().
	heldGens []supervisor.Generation
	heldDone func(error)
}

func (r *stubReplica) Sync(gens []supervisor.Generation, done func(error)) {
	if r.hold {
		r.heldGens, r.heldDone = gens, done
		return
	}
	r.acked = gens[len(gens)-1].Seq
	done(nil)
}

// release acks everything the parked sync carried and completes it.
func (r *stubReplica) release() {
	if r.heldDone == nil {
		return
	}
	r.hold = false
	r.acked = r.heldGens[len(r.heldGens)-1].Seq
	done := r.heldDone
	r.heldGens, r.heldDone = nil, nil
	done(nil)
}

func (r *stubReplica) AckedSeq() int   { return r.acked }
func (r *stubReplica) Ready() bool     { return r.ready }
func (r *stubReplica) Node() *vos.Node { return nil }
func (r *stubReplica) Promote(cb func([]*ckpt.Image, sim.Time, error)) {
	cb(nil, 0, supervisor.ErrNoValidCheckpoint)
}

func TestGCPinsUnackedGenerations(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.25, Scale: 0.001}
	const seed = 9
	_, refDur := reference(t, seed, spec)

	c := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, supervisor.Policy{
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   refDur / 24,
		Retain:            2,
		Dir:               "gcpin",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := &stubReplica{ready: true, hold: true, acked: -1}
	sup.SetReplica(rep)

	checkStoreMatches := func(stage string) {
		t.Helper()
		advertised := make(map[string]bool)
		for _, g := range sup.Generations() {
			advertised[g.Dir] = true
			if len(c.Mgr.Store().List(g.Dir)) == 0 {
				t.Fatalf("%s: advertised generation %s has no records on disk", stage, g.Dir)
			}
		}
		for _, f := range c.Mgr.Store().List("gcpin") {
			if dir := path.Dir(f); !advertised[dir] {
				t.Fatalf("%s: store holds unadvertised generation %s", stage, dir)
			}
		}
	}

	// Stage 1: the replica never acks, so every generation past the
	// retention depth must stay pinned on disk.
	if err := c.Drive(func() bool {
		return sup.Stats().Checkpoints >= 6 || job.Finished()
	}, deadline); err != nil {
		t.Fatal(err)
	}
	if job.Finished() {
		t.Fatal("job finished before the pin could be observed — raise Work")
	}
	st := sup.Stats()
	if st.GCPinned == 0 {
		t.Fatalf("no GC pin recorded with an unacked replica; events: %v", sup.Events())
	}
	if st.GCCollected != 0 {
		t.Fatalf("GC collected %d generation(s) the standby never acked", st.GCCollected)
	}
	if got := len(sup.Generations()); got <= 2 {
		t.Fatalf("retention depth 2 was enforced (%d gens) despite the unacked replica", got)
	}
	checkStoreMatches("pinned")

	// Stage 2: release the parked sync — the watermark jumps to the
	// newest shipped generation and the next checkpoint's GC collects
	// the backlog down to the retention depth.
	rep.release()
	want := sup.Stats().Checkpoints + 2
	if err := c.Drive(func() bool {
		return sup.Stats().Checkpoints >= want || job.Finished()
	}, deadline); err != nil {
		t.Fatal(err)
	}
	if sup.Stats().GCCollected == 0 {
		t.Fatal("acked backlog was never collected")
	}
	checkStoreMatches("released")

	// Stage 3: park the sync again to rebuild a pinned backlog, then
	// kill the replica — a dead (or promoted) standby must not pin GC.
	rep.hold = true
	want = sup.Stats().Checkpoints + 3
	if err := c.Drive(func() bool {
		return sup.Stats().Checkpoints >= want || job.Finished()
	}, deadline); err != nil {
		t.Fatal(err)
	}
	if job.Finished() {
		t.Fatal("job finished before the second pin could be observed — raise Work")
	}
	if got := len(sup.Generations()); got <= 2 {
		t.Fatalf("second backlog never accumulated (%d gens)", got)
	}
	rep.ready = false
	collected := sup.Stats().GCCollected
	want = sup.Stats().Checkpoints + 2
	if err := c.Drive(func() bool {
		return sup.Stats().Checkpoints >= want || job.Finished()
	}, deadline); err != nil {
		t.Fatal(err)
	}
	if sup.Stats().GCCollected <= collected {
		t.Fatal("dead replica still pins GC")
	}
	if got := len(sup.Generations()); got != 2 {
		t.Fatalf("retention depth not restored after replica death: %d gens", got)
	}
	checkStoreMatches("replica-dead")

	sup.Stop()
	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatal(err)
	}
}
