package imagestore

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/sim"
)

func drive(t *testing.T, w *sim.World, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		if !w.Step() {
			break
		}
	}
	if !cond() {
		t.Fatal("condition never reached")
	}
}

func TestFSStoreRoundTrip(t *testing.T) {
	fs := memfs.New()
	st := NewFS(fs)
	wc, err := st.Create("gen0/pod.img")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := wc.Write(bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Not visible until committed.
	if got := st.List("gen0"); len(got) != 0 {
		t.Fatalf("uncommitted image visible: %v", got)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := st.Stat("gen0/pod.img")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 300 || info.Chunks != 3 {
		t.Fatalf("stat: %+v", info)
	}
	rc, err := st.Open("gen0/pod.img")
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(rc)
	if err != nil || len(all) != 300 {
		t.Fatalf("read: %d bytes, %v", len(all), err)
	}
	if err := st.Remove("gen0/pod.img"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Open("gen0/pod.img"); err == nil {
		t.Fatal("open after remove succeeded")
	}
}

// TestRemoteStoreTransfer streams a multi-chunk image over the virtual
// network and checks it commits on the peer — chunked, byte-identical,
// and invisible until complete.
func TestRemoteStoreTransfer(t *testing.T) {
	w := sim.NewWorld(1)
	nw := netstack.NewNetwork(w)
	peerFS := memfs.New()
	srv, err := NewServer(nw, 0x0a00ff02, 9000, NewFS(peerFS))
	if err != nil {
		t.Fatal(err)
	}
	rem, err := NewRemote(nw, 0x0a00ff01, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 700*1024) // well past both socket buffers
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	wc, err := rem.Create("mig/pod-3.img")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for off := 0; off < len(payload); off += 60000 {
		end := off + 60000
		if end > len(payload) {
			end = len(payload)
		}
		if _, err := wc.Write(payload[off:end]); err != nil {
			t.Fatal(err)
		}
		want.Write(payload[off:end])
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if len(srv.Received()) != 0 && peerFS.Exists("mig/pod-3.img") {
		t.Fatal("image committed before the stream could have arrived")
	}
	drive(t, w, func() bool { return len(srv.Received()) == 1 })
	if errs := srv.Errs(); len(errs) != 0 {
		t.Fatalf("server errors: %v", errs)
	}
	got, err := peerFS.ReadFile("mig/pod-3.img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("transferred image differs: %d vs %d bytes", len(got), want.Len())
	}
	info, err := srv.Store().Stat("mig/pod-3.img")
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks <= 1 {
		t.Fatalf("image stored as %d chunk(s); expected streamed chunks", info.Chunks)
	}
}

// TestRemoteStoreAbort kills the connection mid-stream and checks the
// server discards the partial image instead of committing it.
func TestRemoteStoreAbort(t *testing.T) {
	w := sim.NewWorld(2)
	nw := netstack.NewNetwork(w)
	peerFS := memfs.New()
	srv, err := NewServer(nw, 0x0a00ff02, 9000, NewFS(peerFS))
	if err != nil {
		t.Fatal(err)
	}
	rem, err := NewRemote(nw, 0x0a00ff01, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc, err := rem.Create("mig/partial.img")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write(bytes.Repeat([]byte{7}, 4096)); err != nil {
		t.Fatal(err)
	}
	// Close the raw socket without the protocol terminator by reaching
	// through the writer: simulate the checkpointing node dying.
	rw := wc.(*remoteWriter)
	drive(t, w, func() bool { return len(rw.queue) == 0 })
	rw.sock.Close()
	drive(t, w, func() bool { return len(srv.Errs()) == 1 })
	if peerFS.Exists("mig/partial.img") {
		t.Fatal("partial image was committed")
	}
}

// TestRemoteIsWriteOnly pins the read-side contract.
func TestRemoteIsWriteOnly(t *testing.T) {
	w := sim.NewWorld(3)
	nw := netstack.NewNetwork(w)
	rem, err := NewRemote(nw, 0x0a00ff01, netstack.Addr{IP: 0x0a00ff02, Port: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rem.Open("x"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Open: %v", err)
	}
	if _, err := rem.Stat("x"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Stat: %v", err)
	}
	if err := rem.Remove("x"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Remove: %v", err)
	}
	if got := rem.List(""); got != nil {
		t.Fatalf("List: %v", got)
	}
}
