// Content-hash deduplicating image store.
//
// DedupStore wraps any Store and stores image content once per unique
// block: an image written through Create is cut into fixed-size blocks,
// each block is stored under its SHA-256 content hash in a reserved
// namespace, and the image path itself holds a small manifest listing
// the block hashes in order. Unchanged regions across checkpoint
// generations — the common case in a delta chain, where periodic full
// generations repeat almost all of their predecessor — therefore cost
// nothing beyond a manifest entry.
//
// Reference counts track how many committed manifests use each block;
// in-flight writers pin blocks until their manifest commits, so a
// generation dying mid-commit can never strand a block another chain
// still references, and GC (Store.Remove per retired file, plus Sweep
// for orphans) never deletes a live block. Layout is deterministic:
// identical content produces byte-identical blocks, manifests, and
// paths, which the dedup-check CI gate asserts directly.
//
// Manifest wire format (deterministic):
//
//	"ZAPCDMF1" | uvarint logicalSize | uvarint nblocks |
//	( uvarint blockLen | 32-byte SHA-256 )*
//
// Files whose content does not start with the manifest magic (images
// written before the store was wrapped) pass through untouched, so a
// DedupStore can be layered over an existing FSStore at any point.
package imagestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// DedupBlockSize is the content block granularity. It matches the
// frame chunk size: one store block per image frame region keeps the
// hash table small while still splitting unchanged prefixes from
// changed tails.
const DedupBlockSize = 64 << 10

// dedupMagic heads every manifest; image records start with
// "ZAPCIMG"/"ZAPCDLT", so the namespaces cannot collide.
const dedupMagic = "ZAPCDMF1"

// dedupBlockPrefix is the reserved namespace blocks live under. The
// leading '!' keeps it out of every pod/generation prefix the
// supervisor and cluster use.
const dedupBlockPrefix = "!dedup/"

// ErrDedupCorrupt reports an unreadable manifest or a missing block.
var ErrDedupCorrupt = errors.New("imagestore: corrupt dedup manifest")

// Sweeper is implemented by stores that can collect orphaned storage
// left by aborted writers; the supervisor calls it after GC.
type Sweeper interface {
	// Sweep removes unreferenced, unpinned blocks and reports how many
	// were collected.
	Sweep() int
}

// DedupStore wraps an inner Store with content-hash block dedup.
// It is safe for concurrent use.
type DedupStore struct {
	mu    sync.Mutex
	inner Store
	block int
	refs  map[string]int // committed manifest references per block hash
	pins  map[string]int // in-flight writer references per block hash
}

// NewDedup wraps inner with content-hash dedup at the default block
// size. Existing manifests in inner are scanned so reference counts
// survive a supervisor (or whole-cluster) restart over the same store.
func NewDedup(inner Store) *DedupStore { return NewDedupBlockSize(inner, DedupBlockSize) }

// NewDedupBlockSize is NewDedup with an explicit block size.
func NewDedupBlockSize(inner Store, block int) *DedupStore {
	if block <= 0 {
		block = DedupBlockSize
	}
	d := &DedupStore{inner: inner, block: block, refs: map[string]int{}, pins: map[string]int{}}
	d.recoverRefs()
	return d
}

// recoverRefs rebuilds the reference counts from the manifests already
// committed in the inner store.
func (d *DedupStore) recoverRefs() {
	for _, path := range d.inner.List("") {
		if strings.HasPrefix(path, dedupBlockPrefix) {
			continue
		}
		m, err := d.readManifest(path)
		if err != nil || m == nil {
			continue // plain pass-through file (or unreadable: leave refs at zero)
		}
		for _, b := range m.blocks {
			d.refs[b.key]++
		}
	}
}

type dedupBlockRef struct {
	key string // hex SHA-256
	n   int    // block length
}

type dedupManifest struct {
	logical int64
	blocks  []dedupBlockRef
}

func blockPath(key string) string { return dedupBlockPrefix + key }

// readManifest loads and parses the manifest at path, returning
// (nil, nil) when the file exists but is not a manifest.
func (d *DedupStore) readManifest(path string) (*dedupManifest, error) {
	rc, err := d.inner.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(data, []byte(dedupMagic)) {
		return nil, nil
	}
	rest := data[len(dedupMagic):]
	logical, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: %s: bad logical size", ErrDedupCorrupt, path)
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: %s: bad block count", ErrDedupCorrupt, path)
	}
	rest = rest[n:]
	m := &dedupManifest{logical: int64(logical)}
	var total int64
	for i := uint64(0); i < count; i++ {
		bl, n := binary.Uvarint(rest)
		if n <= 0 || len(rest[n:]) < sha256.Size {
			return nil, fmt.Errorf("%w: %s: truncated block entry %d", ErrDedupCorrupt, path, i)
		}
		rest = rest[n:]
		m.blocks = append(m.blocks, dedupBlockRef{key: hex.EncodeToString(rest[:sha256.Size]), n: int(bl)})
		rest = rest[sha256.Size:]
		total += int64(bl)
	}
	if len(rest) != 0 || total != m.logical {
		return nil, fmt.Errorf("%w: %s: size mismatch", ErrDedupCorrupt, path)
	}
	return m, nil
}

func encodeManifest(m *dedupManifest) []byte {
	out := []byte(dedupMagic)
	out = binary.AppendUvarint(out, uint64(m.logical))
	out = binary.AppendUvarint(out, uint64(len(m.blocks)))
	for _, b := range m.blocks {
		out = binary.AppendUvarint(out, uint64(b.n))
		raw, _ := hex.DecodeString(b.key) // keys are produced by EncodeToString
		out = append(out, raw...)
	}
	return out
}

// Create returns a writer that cuts the image into content blocks and
// commits a manifest on Close. Nothing is visible at path until Close
// succeeds; on failure every pin is released and unshared blocks are
// removed.
func (d *DedupStore) Create(path string) (io.WriteCloser, error) {
	if strings.HasPrefix(path, dedupBlockPrefix) {
		return nil, fmt.Errorf("imagestore: path %q is inside the dedup block namespace", path)
	}
	return &dedupWriter{d: d, path: path}, nil
}

type dedupWriter struct {
	d      *DedupStore
	path   string
	buf    []byte
	m      dedupManifest
	err    error
	closed bool
}

func (w *dedupWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, errors.New("imagestore: write to closed dedup writer")
	}
	w.buf = append(w.buf, p...)
	for len(w.buf) >= w.d.block {
		if w.err = w.emit(w.buf[:w.d.block]); w.err != nil {
			w.release()
			return 0, w.err
		}
		w.buf = w.buf[w.d.block:]
	}
	return len(p), nil
}

// emit stores one block (if unseen) and pins it for this writer.
func (w *dedupWriter) emit(b []byte) error {
	sum := sha256.Sum256(b)
	key := hex.EncodeToString(sum[:])
	d := w.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.refs[key]+d.pins[key] == 0 {
		wc, err := d.inner.Create(blockPath(key))
		if err != nil {
			return err
		}
		if _, err := wc.Write(b); err != nil {
			wc.Close()
			return err
		}
		if err := wc.Close(); err != nil {
			return err
		}
	}
	d.pins[key]++
	w.m.blocks = append(w.m.blocks, dedupBlockRef{key: key, n: len(b)})
	w.m.logical += int64(len(b))
	return nil
}

// release drops every pin this writer holds, removing blocks nobody
// else references — an aborted commit leaves no trace.
func (w *dedupWriter) release() {
	d := w.d
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, b := range w.m.blocks {
		d.pins[b.key]--
		if d.pins[b.key] <= 0 {
			delete(d.pins, b.key)
			if d.refs[b.key] == 0 {
				_ = d.inner.Remove(blockPath(b.key))
			}
		}
	}
	w.m.blocks = nil
}

func (w *dedupWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		if w.err = w.emit(w.buf); w.err != nil {
			w.release()
			return w.err
		}
		w.buf = nil
	}
	wc, err := w.d.inner.Create(w.path)
	if err == nil {
		if _, werr := wc.Write(encodeManifest(&w.m)); werr != nil {
			wc.Close()
			err = werr
		} else {
			err = wc.Close()
		}
	}
	if err != nil {
		w.err = err
		w.release()
		return err
	}
	// Manifest committed: convert this writer's pins into references.
	d := w.d
	d.mu.Lock()
	for _, b := range w.m.blocks {
		d.pins[b.key]--
		if d.pins[b.key] <= 0 {
			delete(d.pins, b.key)
		}
		d.refs[b.key]++
	}
	d.mu.Unlock()
	return nil
}

// Open streams the image back block by block; the image is never
// materialized as one buffer. Plain (pre-dedup) files pass through.
func (d *DedupStore) Open(path string) (io.ReadCloser, error) {
	m, err := d.readManifest(path)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return d.inner.Open(path)
	}
	return &dedupReader{d: d, path: path, m: m}, nil
}

type dedupReader struct {
	d    *DedupStore
	path string
	m    *dedupManifest
	i    int           // next block index
	cur  io.ReadCloser // open reader over block i-1
}

func (r *dedupReader) Read(p []byte) (int, error) {
	for {
		if r.cur != nil {
			n, err := r.cur.Read(p)
			if err == io.EOF {
				r.cur.Close()
				r.cur = nil
				if n > 0 {
					return n, nil
				}
				continue
			}
			return n, err
		}
		if r.i >= len(r.m.blocks) {
			return 0, io.EOF
		}
		rc, err := r.d.inner.Open(blockPath(r.m.blocks[r.i].key))
		if err != nil {
			return 0, fmt.Errorf("%w: %s: missing block %d (%s)", ErrDedupCorrupt, r.path, r.i, r.m.blocks[r.i].key)
		}
		r.cur = rc
		r.i++
	}
}

func (r *dedupReader) Close() error {
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	r.i = len(r.m.blocks)
	return nil
}

// List reports committed image paths, hiding the block namespace.
func (d *DedupStore) List(prefix string) []string {
	var out []string
	for _, p := range d.inner.List(prefix) {
		if strings.HasPrefix(p, dedupBlockPrefix) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Stat reports the logical image size and its block count.
func (d *DedupStore) Stat(path string) (Info, error) {
	m, err := d.readManifest(path)
	if err != nil {
		return Info{}, err
	}
	if m == nil {
		return d.inner.Stat(path)
	}
	return Info{Path: path, Size: m.logical, Chunks: len(m.blocks)}, nil
}

// Remove drops the image at path and decrements its block references;
// blocks reaching zero references (and not pinned by an in-flight
// writer) are removed with it. Chain-aware retention in the supervisor
// calls this per retired file, so a block shared with a retained chain
// survives any subset of removals.
func (d *DedupStore) Remove(path string) error {
	m, err := d.readManifest(path)
	if err != nil {
		return err
	}
	if m == nil {
		return d.inner.Remove(path)
	}
	if err := d.inner.Remove(path); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, b := range m.blocks {
		d.refs[b.key]--
		if d.refs[b.key] <= 0 {
			delete(d.refs, b.key)
			if d.pins[b.key] == 0 {
				_ = d.inner.Remove(blockPath(b.key))
			}
		}
	}
	return nil
}

// Sweep removes blocks in the store that no committed manifest
// references and no in-flight writer pins, returning the count — the
// supervisor runs it after GC so storage orphaned by a crash mid-commit
// is eventually collected.
func (d *DedupStore) Sweep() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	swept := 0
	for _, p := range d.inner.List(dedupBlockPrefix) {
		key := strings.TrimPrefix(p, dedupBlockPrefix)
		if d.refs[key] == 0 && d.pins[key] == 0 {
			if d.inner.Remove(p) == nil {
				swept++
			}
		}
	}
	return swept
}

// DedupUsage summarizes the physical footprint of a dedup store.
type DedupUsage struct {
	Images        int   // committed manifests
	Blocks        int   // unique content blocks
	LogicalBytes  int64 // sum of image logical sizes
	BlockBytes    int64 // unique block payload bytes
	ManifestBytes int64 // manifest payload bytes
}

// StoredBytes is the physical footprint: unique blocks plus manifests.
func (u DedupUsage) StoredBytes() int64 { return u.BlockBytes + u.ManifestBytes }

// Usage scans the store and reports its dedup accounting. Paths are
// walked in sorted order so the scan itself is deterministic.
func (d *DedupStore) Usage() DedupUsage {
	var u DedupUsage
	paths := d.inner.List("")
	sort.Strings(paths)
	for _, p := range paths {
		if strings.HasPrefix(p, dedupBlockPrefix) {
			if fi, err := d.inner.Stat(p); err == nil {
				u.Blocks++
				u.BlockBytes += fi.Size
			}
			continue
		}
		m, err := d.readManifest(p)
		if err != nil || m == nil {
			continue
		}
		u.Images++
		u.LogicalBytes += m.logical
		u.ManifestBytes += int64(len(encodeManifest(m)))
	}
	return u
}
