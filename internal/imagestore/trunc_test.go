package imagestore

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/sim"
)

func TestPodOf(t *testing.T) {
	cases := map[string]string{
		"gen0001/cpi-1-0.img":       "cpi-1-0",
		"gen0001/cpi-1-0.delta":     "cpi-1-0",
		"gen0001/cpi-1-0.r03.delta": "cpi-1-0",
		"cpi-1-0.img":               "cpi-1-0",
		"dir/pod.rxx.delta":         "pod.rxx", // non-numeric round suffix stays
		"dir/odd":                   "odd",
	}
	for path, want := range cases {
		if got := PodOf(path); got != want {
			t.Errorf("PodOf(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestTruncStorePassThrough(t *testing.T) {
	st := Truncating(NewFS(memfs.New()))
	wc, err := st.Create("g/pod.img")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write(bytes.Repeat([]byte{1}, 9000)); err != nil {
		t.Fatal(err)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	rc, err := st.Open("g/pod.img")
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(rc)
	if err != nil || len(all) != 9000 {
		t.Fatalf("read back: %d bytes, %v", len(all), err)
	}
	if got := len(st.Cuts()); got != 0 {
		t.Fatalf("unarmed store cut %d streams", got)
	}
}

func TestTruncStoreWriteFault(t *testing.T) {
	st := Truncating(NewFS(memfs.New()))
	st.ArmWrites(1)
	wc, err := st.Create("g/cpi-1-2.img")
	if err != nil {
		t.Fatal(err)
	}
	// The first writes fit the budget; the one crossing it dies named.
	if _, err := wc.Write(bytes.Repeat([]byte{1}, DefaultTruncLimit/2)); err != nil {
		t.Fatal(err)
	}
	_, werr := wc.Write(bytes.Repeat([]byte{2}, DefaultTruncLimit))
	if !errors.Is(werr, ErrTruncatedStream) {
		t.Fatalf("write error = %v, want ErrTruncatedStream", werr)
	}
	if !strings.Contains(werr.Error(), "pod cpi-1-2") {
		t.Fatalf("error does not name the pod: %v", werr)
	}
	if cerr := wc.Close(); !errors.Is(cerr, ErrTruncatedStream) {
		t.Fatalf("close error = %v, want ErrTruncatedStream", cerr)
	}
	// Nothing committed, and the next stream is clean again.
	if got := st.List("g"); len(got) != 0 {
		t.Fatalf("truncated image visible: %v", got)
	}
	wc2, err := st.Create("g/cpi-1-2.img")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wc2.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := wc2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := st.Cuts(); len(got) != 1 || got[0] != "g/cpi-1-2.img" {
		t.Fatalf("cuts = %v", got)
	}
}

// TestTruncStoreWriteFaultUnderBudget pins that an armed truncation
// kills a short stream at Close rather than letting it slip through.
func TestTruncStoreWriteFaultUnderBudget(t *testing.T) {
	st := Truncating(NewFS(memfs.New()))
	st.ArmWrites(1)
	wc, err := st.Create("g/tiny.img")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if cerr := wc.Close(); !errors.Is(cerr, ErrTruncatedStream) {
		t.Fatalf("close error = %v, want ErrTruncatedStream", cerr)
	}
	if st.inner.(*FSStore).FS().Exists("g/tiny.img") {
		t.Fatal("truncated image was committed")
	}
}

func TestTruncStoreReadFault(t *testing.T) {
	st := Truncating(NewFS(memfs.New()))
	wc, _ := st.Create("g/cpi-1-0.delta")
	if _, err := wc.Write(bytes.Repeat([]byte{3}, 2*DefaultTruncLimit)); err != nil {
		t.Fatal(err)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	st.ArmReads(1)
	rc, err := st.Open("g/cpi-1-0.delta")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := io.ReadAll(rc)
	if !errors.Is(rerr, ErrTruncatedStream) {
		t.Fatalf("read error = %v, want ErrTruncatedStream", rerr)
	}
	if !strings.Contains(rerr.Error(), "pod cpi-1-0") {
		t.Fatalf("error does not name the pod: %v", rerr)
	}
	rc.Close()
	// Disarmed again: the record reads back whole.
	rc2, _ := st.Open("g/cpi-1-0.delta")
	all, err := io.ReadAll(rc2)
	if err != nil || len(all) != 2*DefaultTruncLimit {
		t.Fatalf("read after disarm: %d bytes, %v", len(all), err)
	}
}

// TestRemoteStoreAbortNamesPod pins the named error for a remote stream
// cut mid-image: the server's recorded failure wraps ErrTruncatedStream
// and names the pod whose record was lost, not a generic transport or
// decode error.
func TestRemoteStoreAbortNamesPod(t *testing.T) {
	w := sim.NewWorld(7)
	nw := netstack.NewNetwork(w)
	srv, err := NewServer(nw, 0x0a00ff02, 9000, NewFS(memfs.New()))
	if err != nil {
		t.Fatal(err)
	}
	rem, err := NewRemote(nw, 0x0a00ff01, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc, err := rem.Create("mig/bt-2-5.img")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write(bytes.Repeat([]byte{7}, 4096)); err != nil {
		t.Fatal(err)
	}
	rw := wc.(*remoteWriter)
	drive(t, w, func() bool { return len(rw.queue) == 0 })
	rw.sock.Close() // the checkpointing node dies: no terminator
	drive(t, w, func() bool { return len(srv.Errs()) == 1 })
	got := srv.Errs()[0]
	if !errors.Is(got, ErrTruncatedStream) {
		t.Fatalf("server error = %v, want ErrTruncatedStream", got)
	}
	if !strings.Contains(got.Error(), "pod bt-2-5") {
		t.Fatalf("server error does not name the pod: %v", got)
	}
}
