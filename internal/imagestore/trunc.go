// Stream-truncation faults. A checkpoint image that stops arriving
// mid-stream — the writing node died, the migration connection dropped,
// the storage target went away — must surface as a *named* condition
// identifying the affected pod, exactly like CRC corruption does, so
// the recovery layers can classify it instead of reporting a generic
// decode failure. TruncStore is the armable fault: a Store wrapper that
// kills the next N image streams partway through, modeling a mid-flush
// crash (write side) or a restore source vanishing (read side). It is
// the storage analogue of the control-plane drop/delay hooks in
// internal/faultinject and is what the chaos fuzzer arms for its
// stream-truncation fault class.
package imagestore

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrTruncatedStream is returned (wrapped, naming the pod) when an
// image stream is cut before the record was fully written or read.
var ErrTruncatedStream = errors.New("imagestore: image stream truncated")

// PodOf extracts the pod name from an image record path: generation
// records are named <dir>/<pod>.img, <pod>.delta, or <pod>.rNN.delta
// (pre-copy round deltas). Unknown layouts return the path's base name.
func PodOf(path string) string {
	base := path[strings.LastIndex(path, "/")+1:]
	base = strings.TrimSuffix(base, ".img")
	base = strings.TrimSuffix(base, ".delta")
	if i := strings.LastIndex(base, ".r"); i >= 0 && len(base) > i+2 {
		if _, err := strconv.Atoi(base[i+2:]); err == nil {
			base = base[:i]
		}
	}
	return base
}

// truncErr builds the canonical truncation error for one record stream.
func truncErr(path string, after int64) error {
	return fmt.Errorf("pod %s (%s): %w after %d bytes", PodOf(path), path, ErrTruncatedStream, after)
}

// DefaultTruncLimit is how many bytes an armed stream passes through
// before the cut. It is below any real record size in the test
// workloads, so an armed truncation always fires mid-record.
const DefaultTruncLimit = 4096

// TruncStore wraps a Store with armable stream-truncation faults.
// Unarmed it is a transparent pass-through; ArmWrites(n) makes the next
// n Create streams fail with ErrTruncatedStream after Limit bytes
// (committing nothing), and ArmReads(n) does the same for Open streams.
// All other methods delegate to the wrapped store.
type TruncStore struct {
	inner    Store
	writeArm int
	readArm  int
	limit    int64

	cuts []string // paths of streams that were truncated, in order
}

// Truncating wraps a store with the truncation fault harness.
func Truncating(inner Store) *TruncStore {
	return &TruncStore{inner: inner, limit: DefaultTruncLimit}
}

// ArmWrites arms truncation of the next n image write streams.
func (t *TruncStore) ArmWrites(n int) { t.writeArm += n }

// ArmReads arms truncation of the next n image read streams.
func (t *TruncStore) ArmReads(n int) { t.readArm += n }

// SetLimit overrides the bytes passed through before the cut
// (non-positive keeps the default).
func (t *TruncStore) SetLimit(n int64) {
	if n > 0 {
		t.limit = n
	}
}

// Cuts returns the record paths whose streams were truncated, in order.
func (t *TruncStore) Cuts() []string { return append([]string(nil), t.cuts...) }

// Create returns the inner writer, or — while a write fault is armed —
// a writer that dies after the byte budget and never commits.
func (t *TruncStore) Create(path string) (io.WriteCloser, error) {
	wc, err := t.inner.Create(path)
	if err != nil {
		return nil, err
	}
	if t.writeArm <= 0 {
		return wc, nil
	}
	t.writeArm--
	t.cuts = append(t.cuts, path)
	return &truncWriter{inner: wc, path: path, left: t.limit}, nil
}

// Open returns the inner reader, or — while a read fault is armed — a
// reader that dies after the byte budget instead of reaching EOF.
func (t *TruncStore) Open(path string) (io.ReadCloser, error) {
	rc, err := t.inner.Open(path)
	if err != nil {
		return nil, err
	}
	if t.readArm <= 0 {
		return rc, nil
	}
	t.readArm--
	t.cuts = append(t.cuts, path)
	return &truncReader{inner: rc, path: path, left: t.limit}, nil
}

// List delegates to the wrapped store.
func (t *TruncStore) List(prefix string) []string { return t.inner.List(prefix) }

// Remove delegates to the wrapped store.
func (t *TruncStore) Remove(path string) error { return t.inner.Remove(path) }

// Stat delegates to the wrapped store.
func (t *TruncStore) Stat(path string) (Info, error) { return t.inner.Stat(path) }

// truncWriter accepts up to `left` bytes, then fails every subsequent
// write — and the Close — with the named truncation error. The inner
// writer is never closed, so nothing is ever committed: a truncated
// image must not become visible, partially, in the store.
type truncWriter struct {
	inner   io.WriteCloser
	path    string
	left    int64
	written int64
	err     error
}

func (w *truncWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if int64(len(p)) <= w.left {
		n, err := w.inner.Write(p)
		w.left -= int64(n)
		w.written += int64(n)
		return n, err
	}
	n, _ := w.inner.Write(p[:w.left])
	w.written += int64(n)
	w.left = 0
	w.err = truncErr(w.path, w.written)
	return n, w.err
}

// Close reports the truncation without committing. A stream that was
// still under budget is cut here instead: an armed truncation always
// kills its stream, it never silently passes.
func (w *truncWriter) Close() error {
	if w.err == nil {
		w.err = truncErr(w.path, w.written)
	}
	return w.err
}

// truncReader yields up to `left` bytes, then fails with the named
// truncation error instead of delivering the rest of the record.
type truncReader struct {
	inner io.ReadCloser
	path  string
	left  int64
	read  int64
	err   error
}

func (r *truncReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.left == 0 {
		r.err = truncErr(r.path, r.read)
		return 0, r.err
	}
	if int64(len(p)) > r.left {
		p = p[:r.left]
	}
	n, err := r.inner.Read(p)
	r.left -= int64(n)
	r.read += int64(n)
	return n, err
}

func (r *truncReader) Close() error { return r.inner.Close() }
