package imagestore

import (
	"io"

	"zapc/internal/trace"
)

// Traced wraps a store with observability: every Create/Open becomes a
// span on the "store" track carrying byte and chunk counts, and the
// registry accumulates store-wide totals (store_write_bytes_total,
// store_read_bytes_total, store_records_total, store_removes_total).
// The span opens when the stream opens and closes when the stream
// closes, so slow consumers show up as long store spans on the
// timeline. With both tr and reg nil the store is returned unwrapped.
func Traced(s Store, tr *trace.Tracer, reg *trace.Registry) Store {
	if tr == nil && reg == nil {
		return s
	}
	return &tracedStore{inner: s, tr: tr, reg: reg}
}

type tracedStore struct {
	inner Store
	tr    *trace.Tracer
	reg   *trace.Registry
}

func (t *tracedStore) Create(path string) (io.WriteCloser, error) {
	wc, err := t.inner.Create(path)
	if err != nil {
		t.tr.Instant(nil, "store/create-error", trace.Track("store"),
			trace.Str("path", path), trace.Str("err", err.Error()))
		return nil, err
	}
	span := t.tr.Start(nil, "store/create", trace.Track("store"), trace.Str("path", path))
	return &tracedWriter{wc: wc, span: span, reg: t.reg}, nil
}

func (t *tracedStore) Open(path string) (io.ReadCloser, error) {
	rc, err := t.inner.Open(path)
	if err != nil {
		t.tr.Instant(nil, "store/open-error", trace.Track("store"),
			trace.Str("path", path), trace.Str("err", err.Error()))
		return nil, err
	}
	span := t.tr.Start(nil, "store/open", trace.Track("store"), trace.Str("path", path))
	return &tracedReader{rc: rc, span: span, reg: t.reg}, nil
}

func (t *tracedStore) List(prefix string) []string { return t.inner.List(prefix) }

func (t *tracedStore) Remove(path string) error {
	err := t.inner.Remove(path)
	if err == nil {
		t.reg.Counter("store_removes_total").Add(1)
		t.tr.Instant(nil, "store/remove", trace.Track("store"), trace.Str("path", path))
	}
	return err
}

func (t *tracedStore) Stat(path string) (Info, error) { return t.inner.Stat(path) }

// tracedWriter counts bytes and write calls (chunks) through to Close,
// where the span ends with the totals.
type tracedWriter struct {
	wc     io.WriteCloser
	span   *trace.Span
	reg    *trace.Registry
	bytes  int64
	chunks int64
	closed bool
}

func (w *tracedWriter) Write(p []byte) (int, error) {
	n, err := w.wc.Write(p)
	w.bytes += int64(n)
	w.chunks++
	return n, err
}

func (w *tracedWriter) Close() error {
	err := w.wc.Close()
	if w.closed {
		return err
	}
	w.closed = true
	if err != nil {
		w.span.End(trace.Str("err", err.Error()))
		return err
	}
	w.span.End(trace.I64("bytes", w.bytes), trace.I64("chunks", w.chunks))
	w.reg.Counter("store_write_bytes_total").Add(w.bytes)
	w.reg.Counter("store_write_chunks_total").Add(w.chunks)
	w.reg.Counter("store_records_total").Add(1)
	return nil
}

// tracedReader counts bytes read through to Close.
type tracedReader struct {
	rc     io.ReadCloser
	span   *trace.Span
	reg    *trace.Registry
	bytes  int64
	closed bool
}

func (r *tracedReader) Read(p []byte) (int, error) {
	n, err := r.rc.Read(p)
	r.bytes += int64(n)
	return n, err
}

func (r *tracedReader) Close() error {
	err := r.rc.Close()
	if r.closed {
		return err
	}
	r.closed = true
	r.span.End(trace.I64("bytes", r.bytes))
	r.reg.Counter("store_read_bytes_total").Add(r.bytes)
	return err
}
