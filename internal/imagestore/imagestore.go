// Package imagestore defines the pluggable storage behind the
// checkpoint image pipeline.
//
// ZapC streams checkpoint images rather than materializing them: to
// shared storage in the normal case, or straight over the network to
// the target node in the paper's direct-migration mode. Store is the
// seam between the two — producers write images through Create without
// knowing whether bytes land on the shared filesystem (FSStore) or on a
// peer node's store via a socket (Remote/Server in this package), and
// consumers read them back through Open without knowing where they came
// from. Everything above this interface (the coordination manager, the
// supervisor, the cluster restart paths) handles images only as
// streams, never as whole buffers.
package imagestore

import (
	"errors"
	"io"

	"zapc/internal/memfs"
)

// ErrUnsupported is returned by stores that implement only one
// direction of the interface (e.g. the write-only remote store).
var ErrUnsupported = errors.New("imagestore: operation not supported by this store")

// Info is the stored metadata of one image.
type Info struct {
	Path string
	Size int64
	// Chunks is the number of separate buffers backing the stored
	// image: one for a legacy whole-buffer write, one per streamed
	// Write otherwise. Tests assert Chunks > 1 to prove an image was
	// streamed end to end without ever being materialized contiguously.
	Chunks int
}

// Store is a pluggable checkpoint image store. Images are write-once
// blobs: Create returns a streaming writer whose Close commits the
// image atomically (a failed writer must leave no partial image
// visible), and Open returns a streaming reader over a committed image.
type Store interface {
	Create(path string) (io.WriteCloser, error)
	Open(path string) (io.ReadCloser, error)
	// List returns the sorted paths of images under the prefix.
	List(prefix string) []string
	Remove(path string) error
	Stat(path string) (Info, error)
}

// FSStore stores images on the shared in-memory filesystem — the
// paper's SAN/GFS path. It inherits memfs's chunked storage, so
// streamed images stay chunked at rest.
type FSStore struct {
	fs *memfs.FS
}

// NewFS returns a Store backed by the given filesystem.
func NewFS(fs *memfs.FS) *FSStore { return &FSStore{fs: fs} }

// FS returns the backing filesystem.
func (s *FSStore) FS() *memfs.FS { return s.fs }

// Create returns a streaming writer committing to the filesystem on
// Close.
func (s *FSStore) Create(path string) (io.WriteCloser, error) { return s.fs.Create(path) }

// Open returns a streaming reader over a committed image.
func (s *FSStore) Open(path string) (io.ReadCloser, error) { return s.fs.Open(path) }

// List returns the sorted image paths under prefix.
func (s *FSStore) List(prefix string) []string { return s.fs.List(prefix) }

// Remove deletes an image.
func (s *FSStore) Remove(path string) error { return s.fs.Remove(path) }

// Stat returns image metadata.
func (s *FSStore) Stat(path string) (Info, error) {
	fi, err := s.fs.Stat(path)
	if err != nil {
		return Info{}, err
	}
	return Info{Path: fi.Path, Size: fi.Size, Chunks: fi.Chunks}, nil
}
