// Record-chain layout helpers, shared by every consumer that must walk
// a generation directory in restore order: the supervisor's
// chain-validating load path and the warm-standby replication plane
// both reconstruct per-pod base+delta chains from the same file-name
// conventions (<pod>.img, <pod>.rNN.delta pre-copy rounds,
// <pod>.delta residual).
package imagestore

import (
	"sort"
	"strconv"
	"strings"
)

// ChainRank orders one pod's records within a generation for chain
// reconstruction: the full image first, then pre-copy round deltas by
// round number, then the residual delta. Lexicographic store order is
// NOT restore order ("p.delta" < "p.img" < "p.r01.delta"), so the
// ordering must be explicit.
func ChainRank(path string) int {
	base := path[strings.LastIndex(path, "/")+1:]
	if strings.HasSuffix(base, ".img") {
		return 0
	}
	trimmed := strings.TrimSuffix(base, ".delta")
	if i := strings.LastIndex(trimmed, ".r"); i >= 0 {
		if n, err := strconv.Atoi(trimmed[i+2:]); err == nil {
			return n
		}
	}
	return 1 << 30 // the residual (plain .delta) closes the chain
}

// PodChains groups one generation directory's files into per-pod record
// chains in restore order. A stop-and-copy generation yields one-element
// chains; a pre-copy generation yields base + round deltas + residual.
func PodChains(files []string) map[string][]string {
	chains := make(map[string][]string)
	for _, f := range files {
		name := PodOf(f)
		chains[name] = append(chains[name], f)
	}
	for name, fs := range chains {
		sort.Slice(fs, func(i, j int) bool { return ChainRank(fs[i]) < ChainRank(fs[j]) })
		chains[name] = fs
	}
	return chains
}
