package imagestore

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"zapc/internal/memfs"
)

// newDedupT returns a small-block dedup store over a fresh memfs so
// tests exercise multi-block images without megabyte payloads.
func newDedupT() (*DedupStore, *FSStore) {
	inner := NewFS(memfs.New())
	return NewDedupBlockSize(inner, 1<<10), inner
}

func writeImage(t *testing.T, st Store, path string, data []byte) {
	t.Helper()
	wc, err := st.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// Write in uneven slices so block cutting never aligns with Write
	// boundaries.
	for len(data) > 0 {
		n := 300
		if n > len(data) {
			n = len(data)
		}
		if _, err := wc.Write(data[:n]); err != nil {
			t.Fatal(err)
		}
		data = data[n:]
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
}

func readImage(t *testing.T, st Store, path string) []byte {
	t.Helper()
	rc, err := st.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestDedupRoundTrip(t *testing.T) {
	st, _ := newDedupT()
	for _, n := range []int{0, 1, 1023, 1024, 1025, 10_000} {
		path := fmt.Sprintf("gen0/pod%d.img", n)
		data := randBytes(int64(n), n)
		writeImage(t, st, path, data)
		if got := readImage(t, st, path); !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch (%d bytes back)", n, len(got))
		}
		info, err := st.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		wantChunks := (n + 1023) / 1024
		if info.Size != int64(n) || info.Chunks != wantChunks {
			t.Fatalf("size %d: stat %+v, want Size=%d Chunks=%d", n, info, n, wantChunks)
		}
	}
}

// TestDedupSharedRegionsStoredOnce is the headline property: identical
// regions across generations are stored once. Two generations whose
// images share all but one block must grow the store by only the
// changed block plus a manifest.
func TestDedupSharedRegionsStoredOnce(t *testing.T) {
	st, _ := newDedupT()
	base := randBytes(1, 8<<10)
	writeImage(t, st, "gen0/pod.img", base)
	u0 := st.Usage()
	if u0.Blocks != 8 || u0.BlockBytes != 8<<10 {
		t.Fatalf("gen0 usage: %+v", u0)
	}

	// Generation 1: same image with one interior block rewritten.
	next := append([]byte(nil), base...)
	copy(next[3<<10:], randBytes(2, 1<<10))
	writeImage(t, st, "gen1/pod.img", next)
	u1 := st.Usage()
	if u1.Blocks != 9 {
		t.Fatalf("gen1 should add exactly one unique block: %+v", u1)
	}
	if u1.LogicalBytes != 16<<10 || u1.BlockBytes != 9<<10 {
		t.Fatalf("gen1 accounting: %+v", u1)
	}
	if ratio := float64(u1.StoredBytes()) / float64(u1.LogicalBytes); ratio > 0.62 {
		t.Fatalf("dedup saved nothing: stored/logical = %.2f", ratio)
	}

	// Generation 2 repeats generation 1 exactly: zero new blocks.
	writeImage(t, st, "gen2/pod.img", next)
	if u2 := st.Usage(); u2.Blocks != 9 {
		t.Fatalf("identical generation added blocks: %+v", u2)
	}

	// All three still read back correctly.
	if !bytes.Equal(readImage(t, st, "gen0/pod.img"), base) {
		t.Fatal("gen0 corrupted by later writes")
	}
	if !bytes.Equal(readImage(t, st, "gen2/pod.img"), next) {
		t.Fatal("gen2 mismatch")
	}
}

// TestDedupDeterministicLayout: writing the same content twice — in a
// fresh store, or rewriting generations in a long-lived one — produces
// a byte-identical physical layout. This is the CI dedup-check gate's
// property, pinned at unit level.
func TestDedupDeterministicLayout(t *testing.T) {
	layout := func() map[string][]byte {
		st, inner := newDedupT()
		base := randBytes(9, 4<<10)
		next := append(append([]byte(nil), base[:2<<10]...), randBytes(10, 2<<10)...)
		writeImage(t, st, "gen0/pod.img", base)
		writeImage(t, st, "gen1/pod.img", next)
		out := map[string][]byte{}
		for _, p := range inner.List("") {
			out[p] = readImage(t, inner, p)
		}
		return out
	}
	a, b := layout(), layout()
	if len(a) != len(b) {
		t.Fatalf("layouts differ in file count: %d vs %d", len(a), len(b))
	}
	for p, data := range a {
		if !bytes.Equal(data, b[p]) {
			t.Fatalf("store file %s differs between identical runs", p)
		}
	}
}

// TestDedupRemoveRefcounts: removing one generation keeps every block a
// surviving generation references and deletes the rest.
func TestDedupRemoveRefcounts(t *testing.T) {
	st, inner := newDedupT()
	base := randBytes(3, 4<<10)
	next := append(append([]byte(nil), base[:2<<10]...), randBytes(4, 2<<10)...)
	writeImage(t, st, "gen0/pod.img", base)
	writeImage(t, st, "gen1/pod.img", next)
	if u := st.Usage(); u.Blocks != 6 {
		t.Fatalf("setup: %+v", u)
	}

	if err := st.Remove("gen0/pod.img"); err != nil {
		t.Fatal(err)
	}
	// gen0's two unshared blocks die; the two blocks gen1 shares survive.
	if u := st.Usage(); u.Blocks != 4 || u.Images != 1 {
		t.Fatalf("after remove: %+v", u)
	}
	if !bytes.Equal(readImage(t, st, "gen1/pod.img"), next) {
		t.Fatal("surviving generation lost a shared block")
	}

	if err := st.Remove("gen1/pod.img"); err != nil {
		t.Fatal(err)
	}
	if files := inner.List(""); len(files) != 0 {
		t.Fatalf("store not empty after removing every image: %v", files)
	}
}

// TestDedupAbortLeavesNoTrace: a writer that dies before Close leaves
// nothing pinned; one that fails mid-write releases its blocks unless
// a committed image shares them.
func TestDedupAbortLeavesNoTrace(t *testing.T) {
	st, inner := newDedupT()
	data := randBytes(5, 4<<10)
	writeImage(t, st, "gen0/pod.img", data)

	// An in-flight writer sharing gen0's blocks plus one new block.
	wc, err := st.Create("gen1/pod.img")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write(data); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write(randBytes(6, 1<<10)); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close by releasing through a failing second Close
	// path: simulate the abort by removing gen0 first — its blocks are
	// still pinned by the in-flight writer, so they must survive.
	if err := st.Remove("gen0/pod.img"); err != nil {
		t.Fatal(err)
	}
	if u := st.Usage(); u.Blocks != 5 {
		t.Fatalf("pinned blocks were collected with gen0: %+v", u)
	}
	// Commit: pins become refs, gen1 reads back whole.
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), data...), randBytes(6, 1<<10)...)
	if !bytes.Equal(readImage(t, st, "gen1/pod.img"), want) {
		t.Fatal("gen1 mismatch after pinned commit")
	}
	if u := st.Usage(); u.Blocks != 5 || u.Images != 1 {
		t.Fatalf("after commit: %+v", u)
	}
	_ = inner
}

// TestDedupSweepCollectsOrphans: blocks with no manifest and no pin —
// the residue of a crash between block commit and manifest commit — are
// collected by Sweep; referenced and pinned blocks never are.
func TestDedupSweepCollectsOrphans(t *testing.T) {
	st, inner := newDedupT()
	writeImage(t, st, "gen0/pod.img", randBytes(7, 2<<10))

	// Fabricate two orphans directly in the inner store, as a crashed
	// writer (whose in-memory pins died with it) would leave behind.
	for i := 0; i < 2; i++ {
		wc, err := inner.Create(fmt.Sprintf("!dedup/%064x", 0xdead+i))
		if err != nil {
			t.Fatal(err)
		}
		wc.Write([]byte("orphan"))
		if err := wc.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A pinned block from an in-flight writer must survive the sweep.
	wc, err := st.Create("gen1/pod.img")
	if err != nil {
		t.Fatal(err)
	}
	pinned := randBytes(8, 1<<10)
	if _, err := wc.Write(pinned); err != nil {
		t.Fatal(err)
	}

	if n := st.Sweep(); n != 2 {
		t.Fatalf("swept %d blocks, want 2 orphans", n)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readImage(t, st, "gen1/pod.img"), pinned) {
		t.Fatal("sweep collected a pinned block")
	}
	if n := st.Sweep(); n != 0 {
		t.Fatalf("second sweep collected %d live blocks", n)
	}
}

// TestDedupRecoverRefs: a new DedupStore over an existing store (a
// supervisor restart) rebuilds reference counts from the committed
// manifests, so Remove and Sweep keep behaving correctly.
func TestDedupRecoverRefs(t *testing.T) {
	inner := NewFS(memfs.New())
	st := NewDedupBlockSize(inner, 1<<10)
	base := randBytes(11, 3<<10)
	next := append(append([]byte(nil), base[:1<<10]...), randBytes(12, 1<<10)...)
	writeImage(t, st, "gen0/pod.img", base)
	writeImage(t, st, "gen1/pod.img", next)

	// Fresh wrapper over the same inner store.
	st2 := NewDedupBlockSize(inner, 1<<10)
	if n := st2.Sweep(); n != 0 {
		t.Fatalf("recovery lost %d references to live blocks", n)
	}
	if err := st2.Remove("gen0/pod.img"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readImage(t, st2, "gen1/pod.img"), next) {
		t.Fatal("shared block lost after recovered-refcount remove")
	}
	if u := st2.Usage(); u.Blocks != 2 || u.Images != 1 {
		t.Fatalf("after recovered remove: %+v", u)
	}
}

// TestDedupPassThrough: files written beneath the wrapper (or before it
// existed) read, stat, list, and remove through unchanged.
func TestDedupPassThrough(t *testing.T) {
	inner := NewFS(memfs.New())
	wc, _ := inner.Create("legacy/pod.img")
	wc.Write([]byte("plain image bytes"))
	wc.Close()

	st := NewDedup(inner)
	if got := readImage(t, st, "legacy/pod.img"); string(got) != "plain image bytes" {
		t.Fatalf("pass-through read: %q", got)
	}
	info, err := st.Stat("legacy/pod.img")
	if err != nil || info.Size != 17 {
		t.Fatalf("pass-through stat: %+v, %v", info, err)
	}
	if err := st.Remove("legacy/pod.img"); err != nil {
		t.Fatal(err)
	}
	if files := st.List(""); len(files) != 0 {
		t.Fatalf("pass-through remove left %v", files)
	}
}

// TestDedupListHidesBlocks: List never exposes the block namespace,
// and the listing stays sorted like the inner store's.
func TestDedupListHidesBlocks(t *testing.T) {
	st, _ := newDedupT()
	writeImage(t, st, "gen0/b.img", randBytes(13, 2<<10))
	writeImage(t, st, "gen0/a.img", randBytes(14, 2<<10))
	got := st.List("gen0")
	want := []string{"gen0/a.img", "gen0/b.img"}
	if !sort.StringsAreSorted(got) || len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("List = %v, want %v", got, want)
	}
	if inside := st.List(dedupBlockPrefix); len(inside) != 0 {
		t.Fatalf("block namespace leaked through List: %v", inside)
	}
	if _, err := st.Create(dedupBlockPrefix + "x"); err == nil {
		t.Fatal("Create inside the block namespace must fail")
	}
}

// TestDedupCorruptManifest: a truncated or inconsistent manifest (and a
// manifest whose block vanished) surfaces ErrDedupCorrupt, never a
// panic or silent short read.
func TestDedupCorruptManifest(t *testing.T) {
	st, inner := newDedupT()
	writeImage(t, st, "gen0/pod.img", randBytes(15, 2<<10))

	// Delete a referenced block behind the store's back.
	blocks := inner.List(dedupBlockPrefix)
	if len(blocks) != 2 {
		t.Fatalf("setup: %v", blocks)
	}
	if err := inner.Remove(blocks[0]); err != nil {
		t.Fatal(err)
	}
	rc, err := st.Open("gen0/pod.img")
	if err == nil {
		_, err = io.ReadAll(rc)
		rc.Close()
	}
	if err == nil {
		t.Fatal("read through a missing block succeeded")
	}

	// Truncated manifest bytes.
	manifest := readImage(t, inner, "gen0/pod.img")
	for _, cut := range []int{len(dedupMagic) + 1, len(manifest) - 7} {
		wc, _ := inner.Create("bad/pod.img")
		wc.Write(manifest[:cut])
		if err := wc.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Open("bad/pod.img"); err == nil {
			t.Fatalf("truncated manifest (cut %d) opened cleanly", cut)
		}
	}
}
