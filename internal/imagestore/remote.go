// Netstack-backed remote image store: the paper's direct
// checkpoint-to-network migration path. A checkpointing node writes its
// image through Remote.Create, which ships length-prefixed chunks over
// a TCP connection to a Server on the target node; the server spools
// each arriving run of bytes straight into its local Store and commits
// the image when the stream terminator arrives. At no point — client
// staging queue, socket buffers, server spool — does the image exist as
// one contiguous buffer, and nothing is visible in the target store
// until the whole stream has arrived.
//
// Wire protocol, one image per connection:
//
//	uvarint len(path) | path | (uvarint chunkLen | chunk)* | uvarint 0
//
// The netstack is event-driven (no blocking I/O), so the client stages
// chunks and pumps them through the socket on readiness notifications,
// and the server parses incrementally as segments are delivered.
package imagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"zapc/internal/netstack"
)

// ErrRemoteClosed is returned by writes to a closed remote image writer.
var ErrRemoteClosed = errors.New("imagestore: remote writer closed")

// maxRemotePath bounds the path header a server will accept.
const maxRemotePath = 4096

// Remote is a write-only Store that streams images to a Server on a
// peer node. Reads happen against the receiving node's local store, so
// Open/Stat/Remove return ErrUnsupported and List is empty.
type Remote struct {
	stack  *netstack.Stack
	server netstack.Addr
}

// NewRemote creates a network stack at ip and returns a store that
// ships images to the server address.
func NewRemote(nw *netstack.Network, ip netstack.IP, server netstack.Addr) (*Remote, error) {
	st, err := nw.NewStack(ip)
	if err != nil {
		return nil, err
	}
	return &Remote{stack: st, server: server}, nil
}

// DialStack returns a remote store that reuses an existing stack.
func DialStack(st *netstack.Stack, server netstack.Addr) *Remote {
	return &Remote{stack: st, server: server}
}

// Create opens a connection to the server and returns a streaming
// writer for the image at path. Delivery is asynchronous: bytes drain
// as the simulation runs, and the image becomes visible in the server's
// store only once the terminator has been delivered and committed.
func (r *Remote) Create(path string) (io.WriteCloser, error) {
	if path == "" || len(path) > maxRemotePath {
		return nil, fmt.Errorf("imagestore: bad remote path %q", path)
	}
	sock := r.stack.Socket(netstack.TCP)
	if err := sock.Connect(r.server); err != nil {
		return nil, err
	}
	w := &remoteWriter{sock: sock, path: path}
	hdr := putUvarint(nil, uint64(len(path)))
	hdr = append(hdr, path...)
	w.queue = [][]byte{hdr}
	sock.SetNotify(w.pump)
	w.pump()
	return w, nil
}

// Open is unsupported: the remote store is the transmit side of a
// migration; the image is read from the receiving node's local store.
func (r *Remote) Open(string) (io.ReadCloser, error) { return nil, ErrUnsupported }

// List reports nothing; the images live on the peer.
func (r *Remote) List(string) []string { return nil }

// Remove is unsupported.
func (r *Remote) Remove(string) error { return ErrUnsupported }

// Stat is unsupported.
func (r *Remote) Stat(string) (Info, error) { return Info{}, ErrUnsupported }

// remoteWriter stages chunk buffers and pumps them through the socket
// as send-buffer space opens up. The staged queue is a list of
// independent chunk buffers — never one concatenated image.
type remoteWriter struct {
	sock   *netstack.Socket
	path   string
	queue  [][]byte
	qoff   int // bytes of queue[0] already accepted by the socket
	sent   int64
	closed bool
	done   bool
	err    error
}

func (w *remoteWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, ErrRemoteClosed
	}
	if len(p) == 0 {
		return 0, nil
	}
	w.queue = append(w.queue, putUvarint(nil, uint64(len(p))), append([]byte(nil), p...))
	w.pump()
	return len(p), w.err
}

// Close stages the stream terminator. The connection itself closes once
// the queue has drained into the network; any transport error observed
// by then is returned.
func (w *remoteWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.queue = append(w.queue, []byte{0})
	w.pump()
	return w.err
}

// pump pushes staged bytes into the socket until it would block, the
// queue drains, or the transport fails.
func (w *remoteWriter) pump() {
	if w.err != nil || w.done {
		return
	}
	for len(w.queue) > 0 {
		n, err := w.sock.Send(w.queue[0][w.qoff:], false)
		w.qoff += n
		w.sent += int64(n)
		if w.qoff == len(w.queue[0]) {
			w.queue = w.queue[1:]
			w.qoff = 0
			continue
		}
		if err != nil {
			if errors.Is(err, netstack.ErrWouldBlock) {
				return
			}
			// A transport failure mid-image is a truncated stream: name
			// the pod whose record was cut, don't surface a raw socket
			// error.
			w.err = fmt.Errorf("pod %s (%s): %w after %d bytes: %v",
				PodOf(w.path), w.path, ErrTruncatedStream, w.sent, err)
			return
		}
		if n == 0 {
			return
		}
	}
	if w.closed {
		w.done = true
		w.sock.Close()
	}
}

// Server receives images streamed by Remote clients and commits them to
// a local Store. It is entirely event-driven: all parsing happens in
// socket readiness callbacks inside the simulation loop.
type Server struct {
	stack *netstack.Stack
	ls    *netstack.Socket
	local Store
	addr  netstack.Addr

	received []string
	errs     []error
	onImage  func(path string)
	onError  func(path string, err error)
}

// NewServer creates a network stack at ip, listens on port, and commits
// every fully received image to local.
func NewServer(nw *netstack.Network, ip netstack.IP, port netstack.Port, local Store) (*Server, error) {
	st, err := nw.NewStack(ip)
	if err != nil {
		return nil, err
	}
	return ServeStack(st, port, local)
}

// ServeStack starts an image server on an existing stack.
func ServeStack(st *netstack.Stack, port netstack.Port, local Store) (*Server, error) {
	ls := st.Socket(netstack.TCP)
	if err := ls.Bind(port); err != nil {
		return nil, err
	}
	if err := ls.Listen(64); err != nil {
		return nil, err
	}
	s := &Server{stack: st, ls: ls, local: local, addr: netstack.Addr{IP: st.IPAddr(), Port: port}}
	ls.SetNotify(s.acceptLoop)
	return s, nil
}

// Addr returns the address clients dial.
func (s *Server) Addr() netstack.Addr { return s.addr }

// Store returns the server's local backing store.
func (s *Server) Store() Store { return s.local }

// Received returns the committed image paths in arrival order.
func (s *Server) Received() []string {
	return append([]string(nil), s.received...)
}

// Errs returns transport or protocol errors from failed transfers
// (whose partial images were discarded, never committed).
func (s *Server) Errs() []error { return append([]error(nil), s.errs...) }

// SetOnImage registers a callback invoked when an image has been fully
// received and committed.
func (s *Server) SetOnImage(fn func(path string)) { s.onImage = fn }

// SetOnError registers a callback invoked when a transfer dies without
// committing. The path is what the failed stream's header named (""
// when the stream died before the path arrived), so a replication
// sender can resume the affected record instead of polling Errs.
func (s *Server) SetOnError(fn func(path string, err error)) { s.onError = fn }

func (s *Server) acceptLoop() {
	for {
		sock, err := s.ls.Accept()
		if err != nil {
			return
		}
		c := &serverConn{srv: s, sock: sock}
		sock.SetNotify(c.drain)
		c.drain() // data may have arrived before the accept
	}
}

// serverConn incrementally parses one image stream. Payload runs are
// written to the store writer exactly as they arrive from the socket
// (one store chunk per delivery run), so the server never concatenates
// the image either.
type serverConn struct {
	srv    *Server
	sock   *netstack.Socket
	state  int // parser state, see st* constants
	varbuf []byte
	need   uint64 // bytes outstanding for the path or current payload
	path   []byte
	wc     io.WriteCloser
	failed bool
}

const (
	stPathLen = iota
	stPath
	stFrameLen
	stPayload
	stDone
)

func (c *serverConn) drain() {
	if c.failed {
		return
	}
	for {
		data, err := c.sock.Recv(64<<10, false, false)
		if err != nil {
			if errors.Is(err, netstack.ErrWouldBlock) {
				return
			}
			// EOF after a committed image is the clean shutdown; anything
			// else aborts the transfer with nothing committed.
			if !errors.Is(err, netstack.ErrEOF) || c.state != stDone {
				c.fail(c.abortErr(err))
			}
			c.sock.Close()
			return
		}
		if len(data) == 0 {
			return
		}
		if ferr := c.feed(data); ferr != nil {
			c.fail(ferr)
			return
		}
	}
}

// abortErr classifies a dead transfer. Once the image path is known the
// failure is a truncated stream and is named after the affected pod —
// a mid-stream kill must not surface as a generic transport or decode
// error. Before the path has arrived there is no pod to blame.
func (c *serverConn) abortErr(cause error) error {
	if len(c.path) > 0 && c.state != stDone {
		p := string(c.path)
		return fmt.Errorf("pod %s (%s): %w in state %d: %v",
			PodOf(p), p, ErrTruncatedStream, c.state, cause)
	}
	return fmt.Errorf("imagestore: transfer aborted in state %d: %w", c.state, cause)
}

func (c *serverConn) fail(err error) {
	c.failed = true
	c.wc = nil // uncommitted writer is simply dropped; no partial image
	c.srv.errs = append(c.srv.errs, err)
	c.sock.Close()
	if c.srv.onError != nil {
		c.srv.onError(string(c.path), err)
	}
}

func (c *serverConn) feed(data []byte) error {
	for len(data) > 0 {
		switch c.state {
		case stPathLen, stFrameLen:
			c.varbuf = append(c.varbuf, data[0])
			data = data[1:]
			v, n := binary.Uvarint(c.varbuf)
			if n < 0 || (n == 0 && len(c.varbuf) >= binary.MaxVarintLen64) {
				return errors.New("imagestore: malformed length prefix")
			}
			if n == 0 {
				continue
			}
			c.varbuf = c.varbuf[:0]
			if c.state == stPathLen {
				if v == 0 || v > maxRemotePath {
					return fmt.Errorf("imagestore: bad path length %d", v)
				}
				c.need = v
				c.state = stPath
				continue
			}
			if v == 0 { // terminator: commit the image
				if err := c.wc.Close(); err != nil {
					return err
				}
				c.wc = nil
				c.state = stDone
				c.srv.received = append(c.srv.received, string(c.path))
				if c.srv.onImage != nil {
					c.srv.onImage(string(c.path))
				}
				continue
			}
			c.need = v
			c.state = stPayload
		case stPath:
			take := int(c.need)
			if take > len(data) {
				take = len(data)
			}
			c.path = append(c.path, data[:take]...)
			data = data[take:]
			c.need -= uint64(take)
			if c.need == 0 {
				wc, err := c.srv.local.Create(string(c.path))
				if err != nil {
					return err
				}
				c.wc = wc
				c.state = stFrameLen
			}
		case stPayload:
			take := int(c.need)
			if take > len(data) {
				take = len(data)
			}
			if _, err := c.wc.Write(data[:take]); err != nil {
				return err
			}
			data = data[take:]
			c.need -= uint64(take)
			if c.need == 0 {
				c.state = stFrameLen
			}
		case stDone:
			return errors.New("imagestore: data after stream terminator")
		}
	}
	return nil
}

func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}
