package cluster

import (
	"math"
	"testing"

	"zapc/internal/core"
	"zapc/internal/sim"
)

// TestLossyNetworkRunCompletes exercises the whole stack over a lossy
// interconnect: reliable transport recovers, collectives finish, and the
// result is exact.
func TestLossyNetworkRunCompletes(t *testing.T) {
	c := New(Config{Nodes: 4, Seed: 9, LossRate: 0.05})
	job, err := c.Launch(JobSpec{App: "cpi", Endpoints: 4, Work: 0.02, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, 60*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	if math.Abs(job.Result()-math.Pi) > 1e-8 {
		t.Fatalf("pi = %v", job.Result())
	}
}

// TestCheckpointUnderLoss takes a coordinated checkpoint while the
// network is dropping packets: in-flight data is ignored per the paper
// (reliable protocols retransmit it), and the application still
// completes exactly after a migration.
func TestCheckpointUnderLoss(t *testing.T) {
	ref := referenceLossy(t)

	c := New(Config{Nodes: 4, Seed: 9, LossRate: 0.05})
	job, err := c.Launch(JobSpec{App: "bratu", Endpoints: 4, Work: 0.03, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(func() bool { return job.Progress() > 0.3 }, 60*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	targets := c.AddNodes(4, 1)
	if _, err := c.Migrate(job, targets, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, 60*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	if job.Result() != ref {
		t.Fatalf("lossy migrated result %v != reference %v", job.Result(), ref)
	}
}

func referenceLossy(t *testing.T) float64 {
	t.Helper()
	c := New(Config{Nodes: 4, Seed: 9, LossRate: 0.05})
	job, err := c.Launch(JobSpec{App: "bratu", Endpoints: 4, Work: 0.03, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, 60*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	return job.Result()
}

// TestSnapshotWithDaemonsUnderLoss combines every moving part: lossy
// network, daemons with UDP state, repeated snapshots.
func TestSnapshotWithDaemonsUnderLoss(t *testing.T) {
	c := New(Config{Nodes: 4, Seed: 10, LossRate: 0.03})
	job, err := c.Launch(JobSpec{App: "bt", Endpoints: 4, Work: 0.03, Scale: 0.001, WithDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pct := range []float64{0.2, 0.5, 0.8} {
		if err := c.Drive(func() bool { return job.Progress() >= pct }, 60*60*sim.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Checkpoint(job, core.Options{Mode: core.Snapshot}); err != nil {
			t.Fatalf("checkpoint at %.0f%%: %v", pct*100, err)
		}
	}
	if _, err := c.RunJob(job, 60*60*sim.Second); err != nil {
		t.Fatal(err)
	}
}
