package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"zapc/internal/ckpt"
	"zapc/internal/core"
	"zapc/internal/sim"
)

// TestRestartFromFSRefusesCorruptImage corrupts one byte of a flushed
// checkpoint image on the shared FS and asserts that a restart from
// storage refuses it up front with ErrCorruptImage naming the pod —
// before any virtual address is claimed — and that repairing the byte
// makes the same restart succeed exactly.
func TestRestartFromFSRefusesCorruptImage(t *testing.T) {
	c := New(Config{Nodes: 4, Seed: 21})
	job, err := c.Launch(JobSpec{App: "bratu", Endpoints: 4, Work: 0.03, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	ref := New(Config{Nodes: 4, Seed: 21})
	refJob, err := ref.Launch(JobSpec{App: "bratu", Endpoints: 4, Work: 0.03, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.RunJob(refJob, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	want := refJob.Result()

	if err := c.Drive(func() bool { return job.Progress() > 0.3 }, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	const dir = "ckpt/fsr"
	if _, err := c.Checkpoint(job, core.Options{Mode: core.Migrate, FlushTo: dir}); err != nil {
		t.Fatal(err)
	}

	files := c.FS.List(dir)
	if len(files) != 4 {
		t.Fatalf("flushed %d images, want 4", len(files))
	}
	victim := files[0]
	orig, err := c.FS.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), orig...)
	bad[len(bad)/2] ^= 0x01
	if err := c.FS.WriteFile(victim, bad); err != nil {
		t.Fatal(err)
	}

	targets := c.Nodes
	_, err = c.RestartFromFS(job, dir, targets)
	if !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("err = %v, want ErrCorruptImage", err)
	}
	// The error names the pod whose image is corrupt.
	podName := strings.TrimSuffix(victim[strings.LastIndex(victim, "/")+1:], ".img")
	if !strings.Contains(err.Error(), podName) {
		t.Fatalf("error %q does not name pod %s", err, podName)
	}
	// Validation happens before planning: nothing was claimed or built.
	for _, p := range job.Pods {
		if c.Net.Claimed(p.VirtualIP()) {
			t.Fatalf("VIP %v claimed despite refused restart", p.VirtualIP())
		}
	}

	// Repair the image; the same restart now succeeds and the job
	// completes identically to the undisturbed reference.
	if err := c.FS.WriteFile(victim, orig); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartFromFS(job, dir, targets); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := job.Result(); got != want {
		t.Fatalf("result %v != reference %v", got, want)
	}
}

// TestLoadImagesRefusesTruncatedImage truncates a flushed checkpoint
// image mid-stream — in the chunked version-2 format and in the legacy
// version-1 format — and asserts that LoadImages and RestartFromFS
// refuse it with ErrCorruptImage naming the pod, while the intact
// record of either version loads fine.
func TestLoadImagesRefusesTruncatedImage(t *testing.T) {
	c := New(Config{Nodes: 2, Seed: 23})
	job, err := c.Launch(JobSpec{App: "cpi", Endpoints: 2, Work: 0.01, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(func() bool { return job.Progress() > 0.2 }, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	const dir = "ckpt/tr"
	if _, err := c.Checkpoint(job, core.Options{Mode: core.Migrate, FlushTo: dir}); err != nil {
		t.Fatal(err)
	}
	files := c.FS.List(dir)
	if len(files) != 2 {
		t.Fatalf("flushed %d images, want 2", len(files))
	}
	victim := files[0]
	podName := strings.TrimSuffix(victim[strings.LastIndex(victim, "/")+1:], ".img")
	v2, err := c.FS.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	img, err := ckpt.DecodeImage(v2)
	if err != nil {
		t.Fatal(err)
	}
	v1 := img.Encode()

	expectCorrupt := func(label string) {
		t.Helper()
		if _, err := c.LoadImages(dir); !errors.Is(err, ErrCorruptImage) {
			t.Fatalf("%s: LoadImages err = %v, want ErrCorruptImage", label, err)
		} else if !strings.Contains(err.Error(), podName) {
			t.Fatalf("%s: error %q does not name pod %s", label, err, podName)
		}
		if _, err := c.RestartFromFS(job, dir, c.Nodes); !errors.Is(err, ErrCorruptImage) {
			t.Fatalf("%s: RestartFromFS err = %v, want ErrCorruptImage", label, err)
		}
	}

	for _, tc := range []struct {
		label string
		whole []byte
	}{
		{"v2", v2},
		{"v1", v1},
	} {
		// The intact record of either version loads.
		if err := c.FS.WriteFile(victim, tc.whole); err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadImages(dir); err != nil {
			t.Fatalf("%s intact: %v", tc.label, err)
		}
		// Truncations at several depths — inside the header, mid-frame,
		// and just short of the trailer — all refuse with the pod named.
		for _, keep := range []int{4, len(tc.whole) / 2, len(tc.whole) - 1} {
			if err := c.FS.WriteFile(victim, tc.whole[:keep]); err != nil {
				t.Fatal(err)
			}
			expectCorrupt(fmt.Sprintf("%s truncated to %d/%d bytes", tc.label, keep, len(tc.whole)))
		}
	}
}

func TestLoadImagesValidatesEveryFile(t *testing.T) {
	c := New(Config{Nodes: 2, Seed: 22})
	if _, err := c.LoadImages("nope"); err == nil {
		t.Fatal("empty directory accepted")
	}
	job, err := c.Launch(JobSpec{App: "cpi", Endpoints: 2, Work: 0.01, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(func() bool { return job.Progress() > 0.2 }, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(job, core.Options{Mode: core.Snapshot, FlushTo: "ckpt/li"}); err != nil {
		t.Fatal(err)
	}
	images, err := c.LoadImages("ckpt/li")
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 2 {
		t.Fatalf("loaded %d images, want 2", len(images))
	}
	// Sorted by pod name for deterministic placement.
	if images[0].PodName > images[1].PodName {
		t.Fatalf("images not sorted: %s, %s", images[0].PodName, images[1].PodName)
	}
}
