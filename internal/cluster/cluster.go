// Package cluster assembles the full virtual testbed: nodes, the
// interconnect, shared storage, the coordination manager, and
// application deployment. It is the layer the experiment harness and
// the public API drive.
//
// A Job deploys one distributed application across a set of pods
// (one endpoint per pod, pods placed round-robin across nodes — on
// dual-CPU nodes two pods per node, exactly the paper's sixteen-node
// configuration). Jobs can also run in Base mode: the same processes on
// the same nodes without pod virtualization, which is the paper's
// vanilla-Linux baseline for the Figure 5 overhead measurement.
package cluster

import (
	"errors"
	"fmt"

	"zapc/internal/apps"
	"zapc/internal/ckpt"
	"zapc/internal/coord"
	"zapc/internal/core"
	"zapc/internal/imagestore"
	"zapc/internal/memfs"
	"zapc/internal/mpi"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/trace"
	"zapc/internal/vos"
)

// Config sizes the virtual cluster.
type Config struct {
	Nodes       int
	CPUsPerNode int
	Seed        int64
	LossRate    float64
	// Costs optionally overrides the calibrated hardware model.
	Costs *sim.Costs
	// Fanout, when positive, routes coordinated operations through a
	// hierarchical coordination tree of that arity instead of the flat
	// manager star (0: flat; values >= the pod count degenerate to
	// flat). See internal/coord.
	Fanout int
}

// Cluster is a running virtual testbed.
type Cluster struct {
	W     *sim.World
	Net   *netstack.Network
	FS    *memfs.FS
	Nodes []*vos.Node
	Mgr   *core.Manager

	nextVIP       netstack.IP
	nextStandbyIP netstack.IP
	jobSeq        int
	tr            *trace.Tracer
	reg           *trace.Registry
	dedup         *imagestore.DedupStore
}

// EnableTracing turns on pipeline observability for the whole cluster:
// it builds a tracer bound to the virtual clock plus a metrics registry,
// wires both into the coordination manager, and wraps the manager's
// image store so Create/Open streams appear as store spans. Subsequently
// created supervisors and fault injectors pick the pair up through
// Tracer()/Metrics(). Calling it again returns the existing pair.
// Tracing is off by default — an untraced cluster pays only nil checks.
func (c *Cluster) EnableTracing() (*trace.Tracer, *trace.Registry) {
	if c.tr != nil {
		return c.tr, c.reg
	}
	c.tr = trace.New(func() int64 { return int64(c.W.Now()) })
	c.reg = trace.NewRegistry()
	c.Mgr.SetTracer(c.tr, c.reg)
	c.Mgr.SetStore(imagestore.Traced(c.Mgr.Store(), c.tr, c.reg))
	return c.tr, c.reg
}

// EnableDedupStore wraps the coordination manager's image store with
// content-hash block dedup (imagestore.NewDedup): unchanged regions
// across checkpoint generations are stored once and referenced by hash,
// and supervisors GC blocks by reference count. Layering composes with
// EnableTracing in either order — dedup over a traced store emits block
// reads/writes as store spans; tracing over a dedup store emits logical
// image streams. Calling it again returns the existing store.
func (c *Cluster) EnableDedupStore() *imagestore.DedupStore {
	if c.dedup == nil {
		c.dedup = imagestore.NewDedup(c.Mgr.Store())
		c.Mgr.SetStore(c.dedup)
	}
	return c.dedup
}

// DedupStore returns the cluster's dedup store (nil until
// EnableDedupStore).
func (c *Cluster) DedupStore() *imagestore.DedupStore { return c.dedup }

// Tracer returns the cluster's tracer (nil until EnableTracing).
func (c *Cluster) Tracer() *trace.Tracer { return c.tr }

// Metrics returns the cluster's metrics registry (nil until
// EnableTracing).
func (c *Cluster) Metrics() *trace.Registry { return c.reg }

// New builds a cluster.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.CPUsPerNode < 1 {
		cfg.CPUsPerNode = 1
	}
	w := sim.NewWorld(cfg.Seed)
	if cfg.Costs != nil {
		w.Costs = *cfg.Costs
	}
	c := &Cluster{
		W:       w,
		Net:     netstack.NewNetwork(w),
		FS:      memfs.New(),
		nextVIP: 0x0a000001,
	}
	c.Net.SetLossRate(cfg.LossRate)
	for i := 0; i < cfg.Nodes; i++ {
		c.Nodes = append(c.Nodes, vos.NewNode(w, fmt.Sprintf("node%02d", i), cfg.CPUsPerNode))
	}
	c.Mgr = core.NewManager(w, c.Net, c.FS)
	if cfg.Fanout > 0 {
		c.Mgr.SetCoord(&coord.Config{Fanout: cfg.Fanout})
	}
	return c
}

// AddNodes grows the cluster (e.g. spare nodes to migrate onto).
func (c *Cluster) AddNodes(n int, cpus int) []*vos.Node {
	var out []*vos.Node
	for i := 0; i < n; i++ {
		node := vos.NewNode(c.W, fmt.Sprintf("node%02d", len(c.Nodes)), cpus)
		c.Nodes = append(c.Nodes, node)
		out = append(out, node)
	}
	return out
}

// JobSpec describes one distributed application deployment.
type JobSpec struct {
	// App is one of cpi, bt, bratu, povray.
	App string
	// Endpoints is the number of application endpoints (pods). BT
	// requires a perfect square.
	Endpoints int
	// Work and Scale tune problem size and memory ballast.
	Work  float64
	Scale float64
	// WithDaemons adds the middleware daemon (mpd/pvmd stand-in) to
	// every pod, as the paper's setup runs.
	WithDaemons bool
	// Base disables pod virtualization: processes run directly on the
	// host nodes (the vanilla baseline of Figure 5). Base jobs cannot be
	// checkpointed.
	Base bool
	// Port is the application's base port (default 7100).
	Port netstack.Port
}

// Job is a deployed application.
type Job struct {
	Name  string
	Spec  JobSpec
	Pods  []*pod.Pod // nil entries/empty in Base mode
	Progs []apps.Status

	cluster *Cluster
	started sim.Time
	// base-mode environments kept so completion can be observed
	baseEnvs []*vos.Env
}

// Launch deploys a job across the cluster's nodes, pods placed
// round-robin. Job (and thus pod) names are numbered per cluster, not
// per process, so identically-seeded clusters produce byte-identical
// checkpoint images no matter how many clusters ran before them.
func (c *Cluster) Launch(spec JobSpec) (*Job, error) {
	if spec.Endpoints < 1 {
		return nil, errors.New("cluster: need at least one endpoint")
	}
	if spec.App == "bt" && !apps.SquareOK(spec.Endpoints) {
		return nil, fmt.Errorf("cluster: bt requires a square endpoint count, got %d", spec.Endpoints)
	}
	if spec.Port == 0 {
		spec.Port = 7100
	}
	c.jobSeq++
	job := &Job{
		Name:    fmt.Sprintf("%s-%d", spec.App, c.jobSeq),
		Spec:    spec,
		cluster: c,
		started: c.W.Now(),
	}
	ips := make([]netstack.IP, spec.Endpoints)
	for i := range ips {
		ips[i] = c.nextVIP
		c.nextVIP++
	}
	for i := 0; i < spec.Endpoints; i++ {
		node := c.Nodes[i%len(c.Nodes)]
		prog := apps.NewByName(spec.App, apps.Config{
			Rank: i, Size: spec.Endpoints, Port: spec.Port, PeerIPs: ips,
			Work: spec.Work, Scale: spec.Scale,
		})
		if prog == nil {
			return nil, fmt.Errorf("cluster: unknown app %q", spec.App)
		}
		st := prog.(apps.Status)
		if spec.Base {
			stack, err := c.Net.NewStack(ips[i])
			if err != nil {
				return nil, err
			}
			env := &vos.Env{Stack: stack, FS: c.FS}
			node.Spawn(prog, env)
			job.baseEnvs = append(job.baseEnvs, env)
		} else {
			p, err := pod.New(fmt.Sprintf("%s-%d", job.Name, i), node, c.Net, c.FS, ips[i])
			if err != nil {
				return nil, err
			}
			p.AddProcess(prog)
			if spec.WithDaemons {
				p.AddProcess(mpi.NewDaemon(i, spec.Port+1, ips))
			}
			job.Pods = append(job.Pods, p)
		}
		job.Progs = append(job.Progs, st)
	}
	return job, nil
}

// Finished reports whether every endpoint has completed.
func (j *Job) Finished() bool {
	for _, p := range j.Progs {
		if !p.Finished() {
			return false
		}
	}
	return true
}

// Progress reports the maximum endpoint progress (rank 0 is
// authoritative for master/worker apps).
func (j *Job) Progress() float64 {
	best := 0.0
	for _, p := range j.Progs {
		if v := p.Progress(); v > best {
			best = v
		}
	}
	return best
}

// Result returns rank 0's deterministic result.
func (j *Job) Result() float64 { return j.Progs[0].Result() }

// Rebind replaces the job's pods and program references after a restart
// or migration returned new pods.
func (j *Job) Rebind(pods []*pod.Pod) error {
	progs := make([]apps.Status, 0, len(pods))
	for _, np := range pods {
		proc, ok := np.Lookup(1)
		if !ok {
			return fmt.Errorf("cluster: pod %s has no vpid 1 after restore", np.Name())
		}
		st, ok := proc.Prog.(apps.Status)
		if !ok {
			return fmt.Errorf("cluster: pod %s program is not a workload", np.Name())
		}
		progs = append(progs, st)
	}
	j.Pods = pods
	j.Progs = progs
	return nil
}

// Errors from driving the simulation.
var (
	ErrDeadline = errors.New("cluster: simulation deadline exceeded")
	ErrStalled  = errors.New("cluster: event queue drained before condition")
)

// Drive steps the simulation until cond holds, a generous simulated
// deadline passes, or the event queue stalls.
func (c *Cluster) Drive(cond func() bool, deadline sim.Duration) error {
	limit := c.W.Now() + sim.Time(deadline)
	for !cond() {
		if c.W.Now() > limit {
			return ErrDeadline
		}
		if !c.W.Step() {
			if cond() {
				return nil
			}
			return ErrStalled
		}
	}
	return nil
}

// RunJob drives the cluster until the job finishes and returns the
// completion time (launch to finish) — the Figure 5 metric.
func (c *Cluster) RunJob(j *Job, deadline sim.Duration) (sim.Duration, error) {
	if err := c.Drive(j.Finished, deadline); err != nil {
		return 0, err
	}
	return sim.Duration(c.W.Now() - j.started), nil
}

// Checkpoint coordinates a checkpoint of the job's pods.
func (c *Cluster) Checkpoint(j *Job, opts core.Options) (*core.CheckpointResult, error) {
	if j.Spec.Base {
		return nil, errors.New("cluster: base jobs are not virtualized and cannot be checkpointed")
	}
	var res *core.CheckpointResult
	c.Mgr.Checkpoint(j.Pods, opts, func(r *core.CheckpointResult) { res = r })
	if err := c.Drive(func() bool { return res != nil }, 60*sim.Second); err != nil {
		return nil, err
	}
	if res.Err != nil {
		return res, res.Err
	}
	return res, nil
}

// Migrate moves the job to the target nodes and rebinds it.
func (c *Cluster) Migrate(j *Job, targets []*vos.Node, redirect bool) (*core.MigrateResult, error) {
	var res *core.MigrateResult
	c.Mgr.Migrate(j.Pods, targets, redirect, nil, func(r *core.MigrateResult) { res = r })
	if err := c.Drive(func() bool { return res != nil }, 120*sim.Second); err != nil {
		return nil, err
	}
	if res.Err != nil {
		return res, res.Err
	}
	return res, j.Rebind(res.Pods)
}

// Restart restores a job from checkpoint images onto the given nodes
// and rebinds it.
func (c *Cluster) Restart(j *Job, images *core.CheckpointResult, targets []*vos.Node) (*core.RestartResult, error) {
	placements := make([]core.Placement, 0, len(images.Images))
	i := 0
	for _, a := range images.Stats.Agents {
		img := imageByName(images, a.Pod)
		if img == nil {
			return nil, fmt.Errorf("cluster: missing image for %s", a.Pod)
		}
		placements = append(placements, core.Placement{
			Image:   img,
			PodName: a.Pod,
			Node:    targets[i%len(targets)],
		})
		i++
	}
	var res *core.RestartResult
	c.Mgr.Restart(placements, nil, func(r *core.RestartResult) { res = r })
	if err := c.Drive(func() bool { return res != nil }, 120*sim.Second); err != nil {
		return nil, err
	}
	if res.Err != nil {
		return res, res.Err
	}
	return res, j.Rebind(res.Pods)
}

func imageByName(r *core.CheckpointResult, name string) *ckpt.Image {
	for _, img := range r.Images {
		if img.PodName == name {
			return img
		}
	}
	return nil
}
