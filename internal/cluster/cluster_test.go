package cluster

import (
	"errors"
	"math"
	"testing"

	"zapc/internal/core"
	"zapc/internal/sim"
)

func TestLaunchValidation(t *testing.T) {
	c := New(Config{Nodes: 2, Seed: 1})
	if _, err := c.Launch(JobSpec{App: "bt", Endpoints: 3}); err == nil {
		t.Fatal("non-square bt accepted")
	}
	if _, err := c.Launch(JobSpec{App: "nope", Endpoints: 2}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := c.Launch(JobSpec{App: "cpi", Endpoints: 0}); err == nil {
		t.Fatal("zero endpoints accepted")
	}
}

func TestRunJobToCompletion(t *testing.T) {
	c := New(Config{Nodes: 4, Seed: 1})
	job, err := c.Launch(JobSpec{App: "cpi", Endpoints: 4, Work: 0.02, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	dur, err := c.RunJob(job, 30*60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatalf("completion time %v", dur)
	}
	if math.Abs(job.Result()-math.Pi) > 1e-8 {
		t.Fatalf("pi = %v", job.Result())
	}
}

func TestBaseVsPodOverheadSmall(t *testing.T) {
	run := func(base bool) sim.Duration {
		c := New(Config{Nodes: 4, Seed: 1})
		job, err := c.Launch(JobSpec{App: "bratu", Endpoints: 4, Work: 0.03, Scale: 0.001, Base: base})
		if err != nil {
			t.Fatal(err)
		}
		dur, err := c.RunJob(job, 30*60*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return dur
	}
	baseT := run(true)
	podT := run(false)
	if podT < baseT {
		t.Fatalf("pod run faster than base: %v vs %v", podT, baseT)
	}
	overhead := float64(podT-baseT) / float64(baseT)
	if overhead > 0.02 {
		t.Fatalf("virtualization overhead %.2f%% exceeds 2%%", overhead*100)
	}
}

func TestBaseJobCannotCheckpoint(t *testing.T) {
	c := New(Config{Nodes: 2, Seed: 1})
	job, _ := c.Launch(JobSpec{App: "cpi", Endpoints: 2, Work: 0.01, Scale: 0.001, Base: true})
	if _, err := c.Checkpoint(job, core.Options{}); err == nil {
		t.Fatal("base job checkpoint accepted")
	}
}

func TestSnapshotResumeCompletes(t *testing.T) {
	c := New(Config{Nodes: 4, Seed: 2})
	job, err := c.Launch(JobSpec{App: "bratu", Endpoints: 4, Work: 0.03, Scale: 0.001, WithDaemons: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drive(func() bool { return job.Progress() > 0.2 }, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Checkpoint(job, core.Options{Mode: core.Snapshot, FlushTo: "ckpt/snap"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total <= 0 || len(res.Images) != 4 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	// Daemons add a second process per pod.
	for _, img := range res.Images {
		if len(img.Procs) != 2 {
			t.Fatalf("pod image has %d procs, want 2 (app + daemon)", len(img.Procs))
		}
	}
	if _, err := c.RunJob(job, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateNtoM(t *testing.T) {
	// 4 endpoints on 4 nodes -> consolidate onto 2 fresh dual-CPU nodes.
	c := New(Config{Nodes: 4, Seed: 3})
	job, err := c.Launch(JobSpec{App: "cpi", Endpoints: 4, Work: 0.05, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	plain := referenceResult(t, "cpi", 4, 0.05)
	if err := c.Drive(func() bool { return job.Progress() > 0.3 }, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	targets := c.AddNodes(2, 2)
	res, err := c.Migrate(job, targets, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total <= 0 {
		t.Fatal("no migration stats")
	}
	for _, p := range job.Pods {
		if p.Node() != targets[0] && p.Node() != targets[1] {
			t.Fatalf("pod %s not on a target node", p.Name())
		}
	}
	if _, err := c.RunJob(job, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	if job.Result() != plain {
		t.Fatalf("migrated result %v != reference %v", job.Result(), plain)
	}
}

func referenceResult(t *testing.T, app string, n int, work float64) float64 {
	t.Helper()
	c := New(Config{Nodes: n, Seed: 3})
	job, err := c.Launch(JobSpec{App: app, Endpoints: n, Work: work, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	return job.Result()
}

func TestFaultRecoveryFromFlushedImage(t *testing.T) {
	c := New(Config{Nodes: 4, Seed: 4})
	job, err := c.Launch(JobSpec{App: "bratu", Endpoints: 4, Work: 0.03, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	plain := referenceResult(t, "bratu", 4, 0.03)
	if err := c.Drive(func() bool { return job.Progress() > 0.25 }, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Checkpoint(job, core.Options{Mode: core.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	// Let it run a bit further, then a node dies.
	c.Drive(func() bool { return job.Progress() > 0.4 }, 30*60*sim.Second)
	c.Nodes[1].Fail()
	// Surviving pods are stuck (their peer is gone); destroy the whole
	// job and restart from the last checkpoint on the healthy nodes.
	for _, p := range job.Pods {
		p.Destroy()
	}
	targets := c.AddNodes(1, 2)
	restartNodes := append(targets, c.Nodes[0], c.Nodes[2], c.Nodes[3])
	if _, err := c.Restart(job, res, restartNodes); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	if job.Result() != plain {
		t.Fatalf("recovered result %v != reference %v", job.Result(), plain)
	}
}

func TestDriveStallDetection(t *testing.T) {
	c := New(Config{Nodes: 1, Seed: 5})
	err := c.Drive(func() bool { return false }, sim.Second)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v", err)
	}
}

func TestDualCPUSixteenEndpoints(t *testing.T) {
	// The paper's "sixteen node" configuration: 8 dual-CPU nodes, 16
	// pods, two per node.
	c := New(Config{Nodes: 8, CPUsPerNode: 2, Seed: 6})
	job, err := c.Launch(JobSpec{App: "cpi", Endpoints: 16, Work: 0.02, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[string]int{}
	for _, p := range job.Pods {
		perNode[p.Node().Name()]++
	}
	for name, n := range perNode {
		if n != 2 {
			t.Fatalf("node %s hosts %d pods, want 2", name, n)
		}
	}
	if _, err := c.RunJob(job, 30*60*sim.Second); err != nil {
		t.Fatal(err)
	}
	if math.Abs(job.Result()-math.Pi) > 1e-8 {
		t.Fatalf("pi = %v", job.Result())
	}
}
