package cluster

import (
	"fmt"

	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/standby"
	"zapc/internal/supervisor"
)

// standbyIPBase is where standby transport endpoints are allocated.
// Job VIPs grow upward from 10.0.0.1; the 10.254/16 block keeps the
// replication plane's addresses out of their way.
const standbyIPBase netstack.IP = 0x0afe0001

// StandbyConfig sizes a warm standby attached with AttachStandby.
type StandbyConfig struct {
	// CPUs is the standby node's CPU count (default: same as the
	// cluster's first node).
	CPUs int
	// Port is the replication server's listen port (default 7200).
	Port netstack.Port
	// StallTimeout bounds one replication sync before it fails named
	// (default 30s of virtual time).
	StallTimeout sim.Duration
}

// AttachStandby adds a spare node to the cluster, builds a warm-standby
// replication plane on it, and attaches the plane to the supervisor:
// every committed generation then streams to the standby, retention
// respects its acknowledgement watermark, and failover promotes its
// shadow state instead of reading the chain back from the store. Call
// it after Supervise (and after any store wrapping like EnableTracing)
// so the plane reads the same store the supervisor commits to.
func (c *Cluster) AttachStandby(sup *supervisor.Supervisor, cfg StandbyConfig) (*standby.Plane, error) {
	if sup == nil {
		return nil, fmt.Errorf("cluster: attach standby: nil supervisor")
	}
	cpus := cfg.CPUs
	if cpus < 1 {
		cpus = c.Nodes[0].CPUs()
	}
	node := c.AddNodes(1, cpus)[0]
	if c.nextStandbyIP == 0 {
		c.nextStandbyIP = standbyIPBase
	}
	clientIP := c.nextStandbyIP
	serverIP := c.nextStandbyIP + 1
	c.nextStandbyIP += 2
	plane, err := standby.New(c.W, c.Net, node, c.Mgr.Store(), clientIP, serverIP,
		standby.Config{Port: cfg.Port, StallTimeout: cfg.StallTimeout})
	if err != nil {
		return nil, err
	}
	plane.SetTracer(c.tr, c.reg)
	sup.SetReplica(plane)
	return plane, nil
}
