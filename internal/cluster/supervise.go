package cluster

import (
	"fmt"
	"sort"
	"strings"

	"zapc/internal/ckpt"
	"zapc/internal/core"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
	"zapc/internal/vos"
)

// ErrCorruptImage is returned when a checkpoint image read from the
// shared filesystem fails CRC validation. It aliases ckpt.ErrCorruptImage
// so errors.Is works across layers.
var ErrCorruptImage = ckpt.ErrCorruptImage

// LoadImages streams every checkpoint image under the given image-store
// directory through the chunk-verifying decoder before returning it,
// sorted by pod name. Images are never materialized as contiguous
// buffers on the way in. A validation failure names the offending pod
// and wraps ErrCorruptImage.
func (c *Cluster) LoadImages(dir string) ([]*ckpt.Image, error) {
	return c.LoadImagesWith(dir, 1)
}

// LoadImagesWith is LoadImages with legacy version-1 images decoded
// across a bounded worker pool (workers <= 0 selects one per host CPU),
// the restart-side mirror of the parallel checkpoint pipeline.
// Version-2 images decode through the streaming walk.
func (c *Cluster) LoadImagesWith(dir string, workers int) ([]*ckpt.Image, error) {
	store := c.Mgr.Store()
	files := store.List(dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("cluster: no checkpoint images under %q", dir)
	}
	images := make([]*ckpt.Image, 0, len(files))
	for _, f := range files {
		rc, err := store.Open(f)
		if err != nil {
			return nil, err
		}
		img, err := ckpt.DecodeImageFrom(rc, workers)
		rc.Close()
		if err != nil {
			name := strings.TrimSuffix(f[strings.LastIndex(f, "/")+1:], ".img")
			return nil, fmt.Errorf("cluster: pod %s (%s): %w: %v", name, f, ckpt.ErrCorruptImage, err)
		}
		images = append(images, img)
	}
	sort.Slice(images, func(i, j int) bool { return images[i].PodName < images[j].PodName })
	return images, nil
}

// RestartFromFS restores a job from the images flushed to a shared-FS
// directory (a supervisor generation or a Checkpoint FlushTo target),
// validating every image first; a corrupt image refuses the restart with
// ErrCorruptImage before any VIP is claimed or pod built. Placements go
// round-robin across targets.
func (c *Cluster) RestartFromFS(j *Job, dir string, targets []*vos.Node) (*core.RestartResult, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("cluster: restart from %q: no target nodes", dir)
	}
	images, err := c.LoadImages(dir)
	if err != nil {
		return nil, err
	}
	placements := make([]core.Placement, len(images))
	for i, img := range images {
		placements[i] = core.Placement{
			Image:   img,
			PodName: img.PodName,
			Node:    targets[i%len(targets)],
		}
	}
	var res *core.RestartResult
	c.Mgr.Restart(placements, nil, func(r *core.RestartResult) { res = r })
	if err := c.Drive(func() bool { return res != nil }, 120*sim.Second); err != nil {
		return nil, err
	}
	if res.Err != nil {
		return res, res.Err
	}
	return res, j.Rebind(res.Pods)
}

// Supervise places the job under a self-healing supervisor: periodic
// checkpoints with retry/backoff, heartbeat failure detection, and
// automatic restart from the newest valid generation onto surviving
// nodes. The returned supervisor is already started; the caller drives
// the cluster toward job completion as usual and recovery happens
// underneath. Policy.Dir defaults to "supervisor/<job-name>".
func (c *Cluster) Supervise(j *Job, pol supervisor.Policy) (*supervisor.Supervisor, error) {
	if j.Spec.Base {
		return nil, fmt.Errorf("cluster: base job %s is not virtualized and cannot be supervised", j.Name)
	}
	if pol.Dir == "" {
		pol.Dir = "supervisor/" + j.Name
	}
	s := supervisor.New(supervisor.Target{
		W:        c.W,
		Mgr:      c.Mgr,
		FS:       c.FS,
		Store:    c.Mgr.Store(),
		Pods:     func() []*pod.Pod { return j.Pods },
		Nodes:    func() []*vos.Node { return c.Nodes },
		Rebind:   j.Rebind,
		Finished: j.Finished,
	}, pol)
	s.SetTracer(c.tr, c.reg)
	s.Start()
	return s, nil
}
