// Streaming forms of the pod image and delta record.
//
// The version-1 encoders (Encode, EncodeParallel, DeltaImage.Encode)
// materialize the whole record in memory. The version-2 layout keeps
// the same information but flattens bulk payloads to top-level fields
// so they can be framed straight to an io.Writer by imgfmt's
// StreamEncoder: process metadata (vpid, kind, descriptor table) lives
// in a small header section, while program state and every memory
// region follow as top-level Bytes fields that the encoder frames out
// of the caller's buffers without copying. Peak buffering is O(chunk
// size + largest metadata section), never O(image size).
//
// Version-2 full image field order:
//
//	s2PodName s2VIP s2VTime s2Net{...}
//	( s2Proc{vpid kind fd*} s2ProgData (s2RegName s2RegData)* )*
//
// Version-2 delta record field order:
//
//	d2PodName d2VIP d2VTime d2Seq d2ParentSum d2Net{...}
//	( d2Proc{vpid kind new progChanged removedRegion* fd*}
//	  d2ProgData? (d2RegName d2RegData)* )*
//	d2RemovedProc*
//
// Decoders accept both versions (dispatching on the header via
// imgfmt.SniffVersion), so images checkpointed before the streaming
// pipeline still restore.
package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"zapc/internal/imgfmt"
	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// Version-2 pod image root tags.
const (
	s2PodName  = 1
	s2VIP      = 2
	s2VTime    = 3
	s2Net      = 4
	s2Proc     = 5 // process header section (metadata only)
	s2ProgData = 6 // top-level bulk field, owned by the preceding s2Proc
	s2RegName  = 7
	s2RegData  = 8
)

// Tags inside an s2Proc header section.
const (
	p2VPID   = 1
	p2Kind   = 2
	p2FD     = 3
	p2FDNum  = 1
	p2FDSlot = 2
)

// Version-2 delta record root tags.
const (
	d2PodName     = 1
	d2VIP         = 2
	d2VTime       = 3
	d2Seq         = 4
	d2ParentSum   = 5
	d2Net         = 6
	d2Proc        = 7
	d2ProgData    = 8
	d2RegName     = 9
	d2RegData     = 10
	d2RemovedProc = 11
)

// Tags inside a d2Proc header section.
const (
	dp2VPID          = 1
	dp2Kind          = 2
	dp2New           = 3
	dp2ProgChanged   = 4
	dp2RemovedRegion = 5
	dp2FD            = 6
)

// StreamStats reports what a streaming encode produced.
type StreamStats struct {
	// Bytes is the total record size on the wire — after per-frame
	// compression, for version-3 streams.
	Bytes int64
	// Raw is the logical (uncompressed) payload size the frames carry:
	// the size of the version-1 field stream. Bytes/Raw is the
	// compression ratio of the record.
	Raw int64
	// Peak is the maximum bytes the encoder ever buffered at once —
	// the pipeline's peak-memory figure, bounded by the chunk size plus
	// the largest metadata section, not by the image size.
	Peak int64
	// Sum is the CRC-32 (IEEE) of the complete record bytes, the same
	// value crc32.ChecksumIEEE would give over the materialized record.
	// Delta chains link on it via ParentSum.
	Sum uint32
}

// countCRCWriter wraps the destination writer, accumulating the record
// size and whole-record checksum as bytes stream through.
type countCRCWriter struct {
	w   io.Writer
	n   int64
	sum uint32
}

func (c *countCRCWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader mirrors countCRCWriter on the consuming side, so chain
// validation can link ParentSums without re-reading records.
type crcReader struct {
	r   io.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	return n, err
}

// EncodeStream writes the image to w in the default chunked format
// (version 3: per-frame RAW or compressed). Bulk payloads (program
// state, memory regions) are framed directly out of the image's
// buffers; at no point does the encoder hold the record — or any
// process's full state — contiguously.
func (img *Image) EncodeStream(w io.Writer) (StreamStats, error) {
	return img.EncodeStreamWith(w, imgfmt.StreamOpts{})
}

// EncodeStreamWith is EncodeStream with explicit frame-layer options
// (legacy version-2 framing, or version 3 with compression disabled) —
// for baselines, compatibility tooling, and cross-configuration tests.
func (img *Image) EncodeStreamWith(w io.Writer, o imgfmt.StreamOpts) (StreamStats, error) {
	cw := &countCRCWriter{w: w}
	s := imgfmt.NewStreamEncoderOpts(cw, o)
	s.String(s2PodName, img.PodName)
	s.Uint(s2VIP, uint64(img.VIP))
	s.Int(s2VTime, int64(img.VirtualTime))
	ne := imgfmt.NewSectionEncoder()
	img.Net.Encode(ne)
	s.RawSection(s2Net, ne.Body())
	for i := range img.Procs {
		p := &img.Procs[i]
		he := imgfmt.NewSectionEncoder()
		he.Int(p2VPID, int64(p.VPID))
		he.String(p2Kind, p.Kind)
		for _, fd := range p.FDs {
			he.Begin(p2FD)
			he.Int(p2FDNum, int64(fd.FD))
			he.Int(p2FDSlot, int64(fd.Slot))
			he.End()
		}
		s.RawSection(s2Proc, he.Body())
		s.Bytes(s2ProgData, p.ProgData)
		for _, r := range p.Regions {
			s.String(s2RegName, r.Name)
			s.Bytes(s2RegData, r.Data)
		}
	}
	if err := s.Close(); err != nil {
		return StreamStats{}, err
	}
	return StreamStats{Bytes: cw.n, Raw: s.Logical(), Peak: s.Peak(), Sum: cw.sum}, nil
}

// EncodeStream writes the delta record to w in the default chunked
// format, with the same bounded-buffering property as the image form.
func (d *DeltaImage) EncodeStream(w io.Writer) (StreamStats, error) {
	return d.EncodeStreamWith(w, imgfmt.StreamOpts{})
}

// EncodeStreamWith is EncodeStream with explicit frame-layer options.
func (d *DeltaImage) EncodeStreamWith(w io.Writer, o imgfmt.StreamOpts) (StreamStats, error) {
	cw := &countCRCWriter{w: w}
	s := imgfmt.NewStreamDeltaEncoderOpts(cw, o)
	s.String(d2PodName, d.PodName)
	s.Uint(d2VIP, uint64(d.VIP))
	s.Int(d2VTime, int64(d.VirtualTime))
	s.Uint(d2Seq, d.Seq)
	s.Uint(d2ParentSum, uint64(d.ParentSum))
	ne := imgfmt.NewSectionEncoder()
	d.Net.Encode(ne)
	s.RawSection(d2Net, ne.Body())
	for i := range d.Procs {
		p := &d.Procs[i]
		he := imgfmt.NewSectionEncoder()
		he.Int(dp2VPID, int64(p.VPID))
		he.String(dp2Kind, p.Kind)
		he.Bool(dp2New, p.New)
		he.Bool(dp2ProgChanged, p.ProgChanged)
		for _, name := range p.RemovedRegions {
			he.String(dp2RemovedRegion, name)
		}
		for _, fd := range p.FDs {
			he.Begin(dp2FD)
			he.Int(p2FDNum, int64(fd.FD))
			he.Int(p2FDSlot, int64(fd.Slot))
			he.End()
		}
		s.RawSection(d2Proc, he.Body())
		if p.ProgChanged {
			s.Bytes(d2ProgData, p.ProgData)
		}
		for _, r := range p.Regions {
			s.String(d2RegName, r.Name)
			s.Bytes(d2RegData, r.Data)
		}
	}
	for _, vpid := range d.RemovedProcs {
		s.Int(d2RemovedProc, int64(vpid))
	}
	if err := s.Close(); err != nil {
		return StreamStats{}, err
	}
	return StreamStats{Bytes: cw.n, Raw: s.Logical(), Peak: s.Peak(), Sum: cw.sum}, nil
}

// decodeProcHeader parses one s2Proc metadata section.
func decodeProcHeader(sec *imgfmt.Decoder) (ProcImage, error) {
	var p ProcImage
	vpid, err := sec.Int(p2VPID)
	if err != nil {
		return p, err
	}
	p.VPID = vos.PID(vpid)
	if p.Kind, err = sec.String(p2Kind); err != nil {
		return p, err
	}
	for sec.More() {
		tag, _, err := sec.Peek()
		if err != nil {
			return p, err
		}
		if tag != p2FD {
			if err := sec.Skip(); err != nil {
				return p, err
			}
			continue
		}
		fdSec, err := sec.Section(p2FD)
		if err != nil {
			return p, err
		}
		fd, e1 := fdSec.Int(p2FDNum)
		slot, e2 := fdSec.Int(p2FDSlot)
		if err := errors.Join(e1, e2); err != nil {
			return p, err
		}
		p.FDs = append(p.FDs, FDEntry{FD: int(fd), Slot: int(slot)})
	}
	return p, nil
}

// decodeImageV2 walks a version-2 stream, pulling one verified frame at
// a time; the only whole-value allocations are the individual payloads
// the image itself keeps (program state, regions).
func decodeImageV2(d *imgfmt.StreamDecoder) (*Image, error) {
	img := &Image{}
	var err error
	if img.PodName, err = d.String(s2PodName); err != nil {
		return nil, err
	}
	vip, err := d.Uint(s2VIP)
	if err != nil {
		return nil, err
	}
	img.VIP = netstack.IP(vip)
	vt, err := d.Int(s2VTime)
	if err != nil {
		return nil, err
	}
	img.VirtualTime = sim.Time(vt)
	netSec, err := d.Section(s2Net)
	if err != nil {
		return nil, err
	}
	if img.Net, err = netckpt.DecodeImage(netSec); err != nil {
		return nil, err
	}
	cur := -1 // index into img.Procs (indices, not pointers: the slice grows)
	for {
		tag, _, err := d.Peek()
		if errors.Is(err, imgfmt.ErrEndOfSection) {
			break
		}
		if err != nil {
			return nil, err
		}
		switch tag {
		case s2Proc:
			sec, err := d.Section(s2Proc)
			if err != nil {
				return nil, err
			}
			p, err := decodeProcHeader(sec)
			if err != nil {
				return nil, err
			}
			img.Procs = append(img.Procs, p)
			cur = len(img.Procs) - 1
		case s2ProgData:
			b, err := d.Bytes(s2ProgData)
			if err != nil {
				return nil, err
			}
			if cur < 0 {
				return nil, fmt.Errorf("%w: program data before process header", imgfmt.ErrTagMismatch)
			}
			img.Procs[cur].ProgData = b
		case s2RegName:
			name, err := d.String(s2RegName)
			if err != nil {
				return nil, err
			}
			data, err := d.Bytes(s2RegData)
			if err != nil {
				return nil, err
			}
			if cur < 0 {
				return nil, fmt.Errorf("%w: region before process header", imgfmt.ErrTagMismatch)
			}
			img.Procs[cur].Regions = append(img.Procs[cur].Regions, vos.Region{Name: name, Data: data})
		default:
			if err := d.Skip(); err != nil {
				return nil, err
			}
		}
	}
	if err := d.Finished(); err != nil {
		return nil, err
	}
	return img, nil
}

// decodeProcDeltaHeader parses one d2Proc metadata section.
func decodeProcDeltaHeader(sec *imgfmt.Decoder) (ProcDelta, error) {
	var p ProcDelta
	vpid, err := sec.Int(dp2VPID)
	if err != nil {
		return p, err
	}
	p.VPID = vos.PID(vpid)
	if p.Kind, err = sec.String(dp2Kind); err != nil {
		return p, err
	}
	if p.New, err = sec.Bool(dp2New); err != nil {
		return p, err
	}
	if p.ProgChanged, err = sec.Bool(dp2ProgChanged); err != nil {
		return p, err
	}
	for sec.More() {
		tag, _, err := sec.Peek()
		if err != nil {
			return p, err
		}
		switch tag {
		case dp2RemovedRegion:
			name, err := sec.String(dp2RemovedRegion)
			if err != nil {
				return p, err
			}
			p.RemovedRegions = append(p.RemovedRegions, name)
		case dp2FD:
			fdSec, err := sec.Section(dp2FD)
			if err != nil {
				return p, err
			}
			fd, e1 := fdSec.Int(p2FDNum)
			slot, e2 := fdSec.Int(p2FDSlot)
			if err := errors.Join(e1, e2); err != nil {
				return p, err
			}
			p.FDs = append(p.FDs, FDEntry{FD: int(fd), Slot: int(slot)})
		default:
			if err := sec.Skip(); err != nil {
				return p, err
			}
		}
	}
	return p, nil
}

func decodeDeltaV2(dec *imgfmt.StreamDecoder) (*DeltaImage, error) {
	d := &DeltaImage{}
	var err error
	if d.PodName, err = dec.String(d2PodName); err != nil {
		return nil, err
	}
	vip, err := dec.Uint(d2VIP)
	if err != nil {
		return nil, err
	}
	d.VIP = netstack.IP(vip)
	vt, err := dec.Int(d2VTime)
	if err != nil {
		return nil, err
	}
	d.VirtualTime = sim.Time(vt)
	if d.Seq, err = dec.Uint(d2Seq); err != nil {
		return nil, err
	}
	psum, err := dec.Uint(d2ParentSum)
	if err != nil {
		return nil, err
	}
	d.ParentSum = uint32(psum)
	netSec, err := dec.Section(d2Net)
	if err != nil {
		return nil, err
	}
	if d.Net, err = netckpt.DecodeImage(netSec); err != nil {
		return nil, err
	}
	cur := -1
	for {
		tag, _, err := dec.Peek()
		if errors.Is(err, imgfmt.ErrEndOfSection) {
			break
		}
		if err != nil {
			return nil, err
		}
		switch tag {
		case d2Proc:
			sec, err := dec.Section(d2Proc)
			if err != nil {
				return nil, err
			}
			p, err := decodeProcDeltaHeader(sec)
			if err != nil {
				return nil, err
			}
			d.Procs = append(d.Procs, p)
			cur = len(d.Procs) - 1
		case d2ProgData:
			b, err := dec.Bytes(d2ProgData)
			if err != nil {
				return nil, err
			}
			if cur < 0 {
				return nil, fmt.Errorf("%w: program data before process header", imgfmt.ErrTagMismatch)
			}
			d.Procs[cur].ProgData = b
		case d2RegName:
			name, err := dec.String(d2RegName)
			if err != nil {
				return nil, err
			}
			data, err := dec.Bytes(d2RegData)
			if err != nil {
				return nil, err
			}
			if cur < 0 {
				return nil, fmt.Errorf("%w: region before process header", imgfmt.ErrTagMismatch)
			}
			d.Procs[cur].Regions = append(d.Procs[cur].Regions, vos.Region{Name: name, Data: data})
		case d2RemovedProc:
			v, err := dec.Int(d2RemovedProc)
			if err != nil {
				return nil, err
			}
			d.RemovedProcs = append(d.RemovedProcs, vos.PID(v))
		default:
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		}
	}
	if err := dec.Finished(); err != nil {
		return nil, err
	}
	return d, nil
}

// DecodeImageFrom parses a pod image from a reader, handling both
// format versions. A version-2 stream is decoded incrementally with
// per-frame CRC validation; a version-1 stream is read fully (its
// format requires it) and decoded on the worker pool.
func DecodeImageFrom(r io.Reader, workers int) (*Image, error) {
	d, err := imgfmt.NewStreamDecoder(r)
	if err != nil {
		return nil, err
	}
	if d.IsDelta() {
		return nil, fmt.Errorf("%w: delta record where pod image expected", imgfmt.ErrBadMagic)
	}
	if d.Version() == imgfmt.Version {
		return decodeImageV1(d.Raw(), workers)
	}
	return decodeImageV2(d)
}

// DecodeDeltaFrom parses an incremental record from a reader, handling
// both format versions.
func DecodeDeltaFrom(r io.Reader) (*DeltaImage, error) {
	d, err := imgfmt.NewStreamDecoder(r)
	if err != nil {
		return nil, err
	}
	if !d.IsDelta() {
		return nil, fmt.Errorf("%w: pod image where delta record expected", imgfmt.ErrBadMagic)
	}
	if d.Version() == imgfmt.Version {
		return decodeDeltaV1(d.Raw())
	}
	return decodeDeltaV2(d)
}

// VerifyImageFrom is the streaming form of VerifyImage: it
// decode-checks a pod image from a reader, failing with
// ErrCorruptImage on any CRC mismatch, truncation, or malformed field.
func VerifyImageFrom(r io.Reader) (*Image, error) {
	img, err := DecodeImageFrom(r, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptImage, err)
	}
	return img, nil
}

// ReconstructChainFrom validates and materializes a base-plus-deltas
// chain of n records opened one at a time through open — the streaming
// form of ReconstructChain. Record 0 must be a full image, every later
// record a delta whose ParentSum matches the CRC-32 of the preceding
// record's bytes and whose Seq increments by one. Only one record is
// in flight at a time, and each streams through its decoder without
// being materialized.
func ReconstructChainFrom(n int, open func(i int) (io.ReadCloser, error)) (*Image, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrChainBroken)
	}
	readRecord := func(i int) (*Image, *DeltaImage, uint32, error) {
		rc, err := open(i)
		if err != nil {
			return nil, nil, 0, err
		}
		defer rc.Close()
		cr := &crcReader{r: rc}
		if i == 0 {
			img, err := DecodeImageFrom(cr, 1)
			return img, nil, cr.sum, err
		}
		d, err := DecodeDeltaFrom(cr)
		return nil, d, cr.sum, err
	}
	img, _, sum, err := readRecord(0)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		_, d, recSum, err := readRecord(i)
		if err != nil {
			return nil, err
		}
		if d.ParentSum != sum {
			return nil, fmt.Errorf("%w: record %d parent checksum %08x, want %08x",
				ErrChainBroken, i, d.ParentSum, sum)
		}
		if d.Seq != uint64(i) {
			return nil, fmt.Errorf("%w: record %d has sequence %d", ErrChainBroken, i, d.Seq)
		}
		if img, err = ApplyDelta(img, d); err != nil {
			return nil, err
		}
		sum = recSum
	}
	return img, nil
}

// ReconstructChain decodes and validates an in-memory record chain; it
// is ReconstructChainFrom over byte-slice readers.
func ReconstructChain(records [][]byte) (*Image, error) {
	return ReconstructChainFrom(len(records), func(i int) (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(records[i])), nil
	})
}
