package ckpt

import (
	"fmt"
	"io"

	"zapc/internal/imgfmt"
	"zapc/internal/netckpt"
	"zapc/internal/pod"
	"zapc/internal/vos"
)

// Pre-copy live checkpointing (paper §4; CheckSync/pre-copy migration
// lineage): instead of freezing the pod for the whole serialization, the
// coordinator snapshots all memory while the pod keeps running, then
// iterates, re-copying only the regions dirtied since the previous
// round, and quiesces only to capture the residual dirty set plus the
// network state. The rounds are emitted as the existing full-image +
// delta records, so a pre-copy chain restores through
// ReconstructChainFrom unchanged — there is no new on-disk format.
//
// The simulation runs event callbacks atomically (no process is ever
// mid-step while another callback runs), so a live snapshot taken inside
// one callback is read-consistent at its write-clock watermark — the
// simulated stand-in for copy-on-write / soft-dirty page capture.

// captureProcLive serializes one process of a running pod: program
// state, a deep-copied read-consistent snapshot of its memory regions,
// and descriptor bindings, plus the write-clock watermark the snapshot
// is consistent at.
func captureProcLive(proc *vos.Process, slotOf map[sockRef]int) (ProcImage, uint64, error) {
	pi := ProcImage{
		VPID: proc.VPID,
		Kind: proc.Prog.Kind(),
	}
	enc := imgfmt.NewEncoder()
	if err := proc.Prog.Save(enc); err != nil {
		return pi, 0, fmt.Errorf("ckpt: saving %s (vpid %d): %w", pi.Kind, pi.VPID, err)
	}
	pi.ProgData = enc.Finish()
	regions, mark := proc.SnapshotRegions(0)
	pi.Regions = regions
	for _, fd := range proc.FDs() {
		s, _ := proc.SocketFor(fd)
		slot, ok := slotOf[s]
		if !ok {
			return pi, 0, fmt.Errorf("ckpt: fd %d of vpid %d references unknown socket", fd, pi.VPID)
		}
		pi.FDs = append(pi.FDs, FDEntry{FD: fd, Slot: slot})
	}
	return pi, mark, nil
}

// snapshotPod captures a running pod's processes without requiring
// quiescence. The network image is intentionally empty: socket sequence
// numbers and buffer occupancy are inherently quiesce-phase state, and
// restore always applies the final residual record, whose Net — captured
// with the pod frozen and blocked — is authoritative.
func snapshotPod(p *pod.Pod, workers int) (*Image, map[vos.PID]uint64, error) {
	img := &Image{
		PodName:     p.Name(),
		VIP:         p.VirtualIP(),
		VirtualTime: p.VirtualNow(),
		Net:         &netckpt.NetImage{PodIP: p.Stack().IPAddr()},
	}
	slotOf := make(map[sockRef]int)
	for i, s := range p.Stack().Sockets() {
		slotOf[s] = i
	}
	procs := p.Procs()
	pis := make([]ProcImage, len(procs))
	marks := make(map[vos.PID]uint64, len(procs))
	markAt := make([]uint64, len(procs))
	if err := fanOut(len(procs), workers, func(i int) error {
		pi, mark, err := captureProcLive(procs[i], slotOf)
		if err != nil {
			return err
		}
		pis[i] = pi
		markAt[i] = mark
		return nil
	}); err != nil {
		return nil, nil, err
	}
	for i, proc := range procs {
		marks[proc.VPID] = markAt[i]
	}
	img.Procs = pis
	sortProcs(img.Procs)
	return img, marks, nil
}

// PrecopyRecord is one record of a pre-copy chain: the base full image
// (round 1), a round delta, or the residual delta captured at quiesce.
type PrecopyRecord struct {
	// Image is the base full image; nil for delta rounds.
	Image *Image
	// Delta is the round's incremental record; nil for the base.
	Delta *DeltaImage
	// Final marks the residual record captured with the pod quiesced.
	Final bool
	stats *StreamStats
}

// Stream writes the record to w in the version-2 chunked format. The
// encoding is deterministic; repeated calls produce identical bytes.
func (r *PrecopyRecord) Stream(w io.Writer) (StreamStats, error) {
	var st StreamStats
	var err error
	if r.Delta != nil {
		st, err = r.Delta.EncodeStream(w)
	} else {
		st, err = r.Image.EncodeStream(w)
	}
	if err == nil && r.stats == nil {
		cp := st
		r.stats = &cp
	}
	return st, err
}

// Stats returns the record's size/peak/checksum, encoding to a counting
// sink if no Stream has run yet.
func (r *PrecopyRecord) Stats() StreamStats {
	if r.stats == nil {
		_, _ = r.Stream(io.Discard) // io.Discard never errors
	}
	return *r.stats
}

// Precopy drives one pod's iterative pre-copy checkpoint. BeginPrecopy
// takes the live base snapshot; each Round re-copies what was dirtied
// since the previous snapshot; Finalize captures the residual dirty set
// and network state once the coordinator has quiesced the pod. The
// emitted records chain exactly like an incremental base+delta chain:
// record i carries Seq i and the CRC of record i-1, so
// ReconstructChainFrom validates and restores the chain unchanged.
type Precopy struct {
	pod     *pod.Pod
	workers int
	marks   map[vos.PID]uint64
	// lastProg fingerprints each process's program state in the last
	// round, so unchanged program state is not re-sent.
	lastProg map[vos.PID][]byte
	last     *Image
	records  []*PrecopyRecord
	final    *Image
}

// BeginPrecopy snapshots the running pod's full memory at a watermark —
// round 1 of the iteration — and returns the driver plus the base
// record.
func BeginPrecopy(p *pod.Pod, workers int) (*Precopy, *PrecopyRecord, error) {
	img, marks, err := snapshotPod(p, workers)
	if err != nil {
		return nil, nil, err
	}
	pc := &Precopy{pod: p, workers: workers, marks: marks, last: img}
	pc.lastProg = progFingerprints(img)
	rec := &PrecopyRecord{Image: img}
	pc.records = append(pc.records, rec)
	return pc, rec, nil
}

func progFingerprints(img *Image) map[vos.PID][]byte {
	out := make(map[vos.PID][]byte, len(img.Procs))
	for _, pi := range img.Procs {
		out[pi.VPID] = pi.ProgData
	}
	return out
}

// dirtyNames lists, per live process, the regions written since the
// previous round's watermark.
func (pc *Precopy) dirtyNames() map[vos.PID]map[string]bool {
	out := make(map[vos.PID]map[string]bool)
	for _, proc := range pc.pod.Procs() {
		names := make(map[string]bool)
		for _, r := range proc.DirtyRegions(pc.marks[proc.VPID]) {
			names[r.Name] = true
		}
		out[proc.VPID] = names
	}
	return out
}

// DirtyBytes reports the size of the dirty set accumulated since the
// last round — the quantity the coordinator compares against
// ConvergeBytes to decide whether another round is worthwhile.
func (pc *Precopy) DirtyBytes() int64 {
	var n int64
	for _, proc := range pc.pod.Procs() {
		n += proc.DirtyBytes(pc.marks[proc.VPID])
	}
	return n
}

// Rounds reports how many records the chain holds so far (base
// included).
func (pc *Precopy) Rounds() int { return len(pc.records) }

// Records returns the chain's records in restore order: base, round
// deltas, then (after Finalize) the residual.
func (pc *Precopy) Records() []*PrecopyRecord { return pc.records }

// FinalImage returns the materialized image of the quiesced pod, set by
// Finalize — what a stop-and-copy checkpoint at the quiesce point would
// have produced.
func (pc *Precopy) FinalImage() *Image { return pc.final }

// Round re-snapshots the running pod and emits a delta containing only
// the state dirtied since the previous round.
func (pc *Precopy) Round() (*PrecopyRecord, error) {
	img, marks, err := snapshotPod(pc.pod, pc.workers)
	if err != nil {
		return nil, err
	}
	rec := pc.push(img, marks, false)
	return rec, nil
}

// Finalize captures the residual record with the pod quiesced and its
// network blocked: the regions dirtied since the last round, every
// process's registers/FD table, and the full network state. This — plus
// socket drains — is the only work inside the suspend window.
func (pc *Precopy) Finalize() (*PrecopyRecord, error) {
	img, err := CheckpointPodWith(pc.pod, pc.workers)
	if err != nil {
		return nil, err
	}
	marks := make(map[vos.PID]uint64)
	for _, proc := range pc.pod.Procs() {
		marks[proc.VPID] = proc.MemClock()
	}
	rec := pc.push(img, marks, true)
	pc.final = img
	return rec, nil
}

// push diffs img against the previous round, appends the record, and
// advances the driver's watermarks.
func (pc *Precopy) push(img *Image, marks map[vos.PID]uint64, final bool) *PrecopyRecord {
	parentSum := pc.records[len(pc.records)-1].Stats().Sum
	d := buildDelta(img, pc.last, pc.lastProg, pc.dirtyNames(), uint64(len(pc.records)), parentSum)
	rec := &PrecopyRecord{Delta: d, Final: final}
	pc.records = append(pc.records, rec)
	pc.marks = marks
	pc.lastProg = progFingerprints(img)
	pc.last = img
	return rec
}
