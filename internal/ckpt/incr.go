package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"zapc/internal/imgfmt"
	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// ErrChainBroken marks an incremental chain whose records do not link:
// a delta whose ParentSum does not match the preceding record's
// checksum, a sequence gap, or a pod-name mismatch.
var ErrChainBroken = errors.New("ckpt: incremental chain broken")

// Delta record field tags (root).
const (
	dtagPodName     = 1
	dtagVIP         = 2
	dtagVTime       = 3
	dtagSeq         = 4
	dtagParentSum   = 5
	dtagNet         = 6
	dtagProc        = 7
	dtagRemovedProc = 8
)

// ProcDelta field tags.
const (
	dtagVPID          = 1
	dtagKind          = 2
	dtagNew           = 3
	dtagProgChanged   = 4
	dtagProgData      = 5
	dtagRegion        = 6
	dtagRemovedRegion = 7
	dtagFD            = 8
)

// ProcDelta is the incremental record of one process: only what changed
// since the parent generation. A New process carries its full state.
type ProcDelta struct {
	VPID vos.PID
	Kind string
	// New marks a process that did not exist in the parent generation.
	New bool
	// ProgChanged marks that ProgData carries fresh program state; when
	// false the parent's program state is still current.
	ProgChanged bool
	ProgData    []byte
	// Regions holds the full data of every region written since the
	// parent generation's watermark (region granularity, like the
	// page-granularity incremental checkpointing of the paper's Zap
	// layer).
	Regions        []vos.Region
	RemovedRegions []string
	// FDs is the complete descriptor table; it is small enough that
	// diffing it is not worth the bookkeeping.
	FDs []FDEntry
}

// DeltaImage is one incremental checkpoint generation: the pod-level
// header plus per-process deltas against the parent generation. Network
// state is always captured in full — sequence numbers and buffer
// occupancy churn on every exchange, so there is nothing stable to diff
// against.
type DeltaImage struct {
	PodName     string
	VIP         netstack.IP
	VirtualTime sim.Time
	// Seq numbers this delta within its chain: 1 for the first delta
	// after a full image, then monotonically +1.
	Seq uint64
	// ParentSum is the CRC-32 (IEEE) of the parent record's encoded
	// bytes — the full image for Seq 1, the previous delta otherwise.
	// It makes every chain self-validating at the file level.
	ParentSum uint32
	Net       *netckpt.NetImage
	Procs     []ProcDelta
	// RemovedProcs lists virtual PIDs present in the parent generation
	// but gone now (exited processes).
	RemovedProcs []vos.PID
}

// Encode serializes the delta record (ZAPCDLT stream).
func (d *DeltaImage) Encode() []byte {
	e := imgfmt.NewDeltaEncoder()
	e.String(dtagPodName, d.PodName)
	e.Uint(dtagVIP, uint64(d.VIP))
	e.Int(dtagVTime, int64(d.VirtualTime))
	e.Uint(dtagSeq, d.Seq)
	e.Uint(dtagParentSum, uint64(d.ParentSum))
	e.Begin(dtagNet)
	d.Net.Encode(e)
	e.End()
	for _, p := range d.Procs {
		e.Begin(dtagProc)
		e.Int(dtagVPID, int64(p.VPID))
		e.String(dtagKind, p.Kind)
		e.Bool(dtagNew, p.New)
		e.Bool(dtagProgChanged, p.ProgChanged)
		if p.ProgChanged {
			e.Bytes(dtagProgData, p.ProgData)
		}
		for _, r := range p.Regions {
			e.Begin(dtagRegion)
			e.String(tagRegName, r.Name)
			e.Bytes(tagRegData, r.Data)
			e.End()
		}
		for _, name := range p.RemovedRegions {
			e.String(dtagRemovedRegion, name)
		}
		for _, fd := range p.FDs {
			e.Begin(dtagFD)
			e.Int(tagFDNum, int64(fd.FD))
			e.Int(tagFDSlot, int64(fd.Slot))
			e.End()
		}
		e.End()
	}
	for _, vpid := range d.RemovedProcs {
		e.Int(dtagRemovedProc, int64(vpid))
	}
	return e.Finish()
}

// DecodeDelta parses a serialized incremental record of either format
// version.
func DecodeDelta(data []byte) (*DeltaImage, error) {
	ver, delta, err := imgfmt.SniffVersion(data)
	if err != nil {
		return nil, err
	}
	if !delta {
		return nil, fmt.Errorf("%w: pod image where delta record expected", imgfmt.ErrBadMagic)
	}
	if ver == imgfmt.Version {
		return decodeDeltaV1(data)
	}
	dec, err := imgfmt.DecodeStream(data)
	if err != nil {
		return nil, err
	}
	return decodeDeltaV2(dec)
}

func decodeDeltaV1(data []byte) (*DeltaImage, error) {
	dec, err := imgfmt.NewDeltaDecoder(data)
	if err != nil {
		return nil, err
	}
	d := &DeltaImage{}
	if d.PodName, err = dec.String(dtagPodName); err != nil {
		return nil, err
	}
	vip, err := dec.Uint(dtagVIP)
	if err != nil {
		return nil, err
	}
	d.VIP = netstack.IP(vip)
	vt, err := dec.Int(dtagVTime)
	if err != nil {
		return nil, err
	}
	d.VirtualTime = sim.Time(vt)
	if d.Seq, err = dec.Uint(dtagSeq); err != nil {
		return nil, err
	}
	psum, err := dec.Uint(dtagParentSum)
	if err != nil {
		return nil, err
	}
	d.ParentSum = uint32(psum)
	netSec, err := dec.Section(dtagNet)
	if err != nil {
		return nil, err
	}
	if d.Net, err = netckpt.DecodeImage(netSec); err != nil {
		return nil, err
	}
	for dec.More() {
		tag, _, err := dec.Peek()
		if err != nil {
			return nil, err
		}
		switch tag {
		case dtagProc:
			sec, err := dec.Section(dtagProc)
			if err != nil {
				return nil, err
			}
			p, err := decodeProcDelta(sec)
			if err != nil {
				return nil, err
			}
			d.Procs = append(d.Procs, p)
		case dtagRemovedProc:
			v, err := dec.Int(dtagRemovedProc)
			if err != nil {
				return nil, err
			}
			d.RemovedProcs = append(d.RemovedProcs, vos.PID(v))
		default:
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

func decodeProcDelta(dec *imgfmt.Decoder) (ProcDelta, error) {
	var p ProcDelta
	vpid, err := dec.Int(dtagVPID)
	if err != nil {
		return p, err
	}
	p.VPID = vos.PID(vpid)
	if p.Kind, err = dec.String(dtagKind); err != nil {
		return p, err
	}
	if p.New, err = dec.Bool(dtagNew); err != nil {
		return p, err
	}
	if p.ProgChanged, err = dec.Bool(dtagProgChanged); err != nil {
		return p, err
	}
	if p.ProgChanged {
		pd, err := dec.Bytes(dtagProgData)
		if err != nil {
			return p, err
		}
		p.ProgData = append([]byte(nil), pd...)
	}
	for dec.More() {
		tag, _, err := dec.Peek()
		if err != nil {
			return p, err
		}
		switch tag {
		case dtagRegion:
			sec, err := dec.Section(dtagRegion)
			if err != nil {
				return p, err
			}
			name, e1 := sec.String(tagRegName)
			data, e2 := sec.Bytes(tagRegData)
			if err := errors.Join(e1, e2); err != nil {
				return p, err
			}
			p.Regions = append(p.Regions, vos.Region{Name: name, Data: append([]byte(nil), data...)})
		case dtagRemovedRegion:
			name, err := dec.String(dtagRemovedRegion)
			if err != nil {
				return p, err
			}
			p.RemovedRegions = append(p.RemovedRegions, name)
		case dtagFD:
			sec, err := dec.Section(dtagFD)
			if err != nil {
				return p, err
			}
			fd, e1 := sec.Int(tagFDNum)
			slot, e2 := sec.Int(tagFDSlot)
			if err := errors.Join(e1, e2); err != nil {
				return p, err
			}
			p.FDs = append(p.FDs, FDEntry{FD: int(fd), Slot: int(slot)})
		default:
			if err := dec.Skip(); err != nil {
				return p, err
			}
		}
	}
	return p, nil
}

// ApplyDelta materializes the child generation: a full image equal to
// what a full checkpoint at the delta's capture point would have
// produced. The base image is not modified.
func ApplyDelta(base *Image, d *DeltaImage) (*Image, error) {
	if base.PodName != d.PodName {
		return nil, fmt.Errorf("%w: delta for pod %q applied to image of pod %q",
			ErrChainBroken, d.PodName, base.PodName)
	}
	img := &Image{
		PodName:     d.PodName,
		VIP:         d.VIP,
		VirtualTime: d.VirtualTime,
		Net:         d.Net,
	}
	removed := make(map[vos.PID]bool, len(d.RemovedProcs))
	for _, vpid := range d.RemovedProcs {
		removed[vpid] = true
	}
	// Indices, not pointers: img.Procs grows below and a reallocation
	// would strand pointers in the old backing array.
	byVPID := make(map[vos.PID]int, len(base.Procs))
	for _, bp := range base.Procs {
		if removed[bp.VPID] {
			continue
		}
		img.Procs = append(img.Procs, ProcImage{
			VPID:     bp.VPID,
			Kind:     bp.Kind,
			ProgData: bp.ProgData,
			Regions:  append([]vos.Region(nil), bp.Regions...),
			FDs:      append([]FDEntry(nil), bp.FDs...),
		})
		byVPID[bp.VPID] = len(img.Procs) - 1
	}
	for _, pd := range d.Procs {
		idx, known := byVPID[pd.VPID]
		if !known {
			if !pd.New {
				return nil, fmt.Errorf("%w: delta updates unknown vpid %d", ErrChainBroken, pd.VPID)
			}
			img.Procs = append(img.Procs, ProcImage{VPID: pd.VPID, Kind: pd.Kind})
			idx = len(img.Procs) - 1
			byVPID[pd.VPID] = idx
		}
		pi := &img.Procs[idx]
		if pd.ProgChanged {
			pi.ProgData = pd.ProgData
		}
		for _, r := range pd.Regions {
			replaced := false
			for i := range pi.Regions {
				if pi.Regions[i].Name == r.Name {
					pi.Regions[i].Data = r.Data
					replaced = true
					break
				}
			}
			if !replaced {
				pi.Regions = append(pi.Regions, r)
			}
		}
		for _, name := range pd.RemovedRegions {
			for i := range pi.Regions {
				if pi.Regions[i].Name == name {
					pi.Regions = append(pi.Regions[:i], pi.Regions[i+1:]...)
					break
				}
			}
		}
		pi.FDs = append([]FDEntry(nil), pd.FDs...)
	}
	sortProcs(img.Procs)
	return img, nil
}

// Tracker drives incremental checkpointing of one pod: it remembers the
// last committed generation (materialized image, per-process dirty
// watermarks, program-state fingerprints, record checksum) and emits
// delta records containing only what changed since.
//
// Capture is transactional: it returns a Pending that can stream the
// record to a sink, and the tracker state only advances when the caller
// commits — a checkpoint operation that aborts after serializing simply
// drops the Pending and the chain stays anchored at the last durable
// generation.
type Tracker struct {
	seq       uint64 // deltas committed since the last full record
	sinceFull int    // generations committed since the last full record
	marks     map[vos.PID]uint64
	lastProg  map[vos.PID][]byte
	last      *Image // materialized image of the last committed generation
	lastSum   uint32 // CRC-32 of the last committed record's bytes
}

// NewTracker returns an empty tracker; its first capture is always a
// full image.
func NewTracker() *Tracker { return &Tracker{} }

// HasBase reports whether a committed generation exists to delta
// against.
func (t *Tracker) HasBase() bool { return t.last != nil }

// SinceFull reports the number of generations committed since the last
// full record (0 right after a full commit).
func (t *Tracker) SinceFull() int { return t.sinceFull }

// Rebase forgets the chain: the next capture produces a full image.
// Recovery paths call it when a chain fails validation or ownership of
// the pod moved (failover), so the tracker never extends a chain it can
// no longer vouch for.
func (t *Tracker) Rebase() {
	t.seq = 0
	t.sinceFull = 0
	t.marks = nil
	t.lastProg = nil
	t.last = nil
	t.lastSum = 0
}

// Pending is a captured-but-uncommitted checkpoint generation. The
// record is never materialized inside the Pending: callers stream it to
// their sink with Stream.
type Pending struct {
	// Image is the materialized full image of this generation,
	// regardless of record kind — restart never needs to reconstruct
	// in-memory chains.
	Image *Image
	// Delta is the incremental record, nil for a full generation.
	Delta *DeltaImage
	// stats memoizes the first successful Stream; the encoding is
	// deterministic, so every sink observes the same bytes and checksum.
	stats  *StreamStats
	commit func(sum uint32)
}

// Full reports whether this generation is a full image record.
func (pn *Pending) Full() bool { return pn.Delta == nil }

// Stream writes this generation's record — the full image for a full
// generation, the delta record otherwise — to w in the version-2
// chunked format. The encoding is deterministic, so Stream may be
// called any number of times (for a store and for accounting) and every
// call produces identical bytes.
func (pn *Pending) Stream(w io.Writer) (StreamStats, error) {
	var st StreamStats
	var err error
	if pn.Delta != nil {
		st, err = pn.Delta.EncodeStream(w)
	} else {
		st, err = pn.Image.EncodeStream(w)
	}
	if err == nil && pn.stats == nil {
		cp := st
		pn.stats = &cp
	}
	return st, err
}

// Stats returns the record's size, peak-buffering, and checksum
// figures, encoding to a counting sink if no Stream has run yet.
func (pn *Pending) Stats() StreamStats {
	if pn.stats == nil {
		_, _ = pn.Stream(io.Discard) // cannot fail: io.Discard never errors
	}
	return *pn.stats
}

// Commit advances the tracker to this generation. Call exactly once,
// only after the record is durable (the coordinated operation
// completed).
func (pn *Pending) Commit() {
	if pn.commit != nil {
		pn.commit(pn.Stats().Sum)
		pn.commit = nil
	}
}

// buildDelta diffs a freshly captured image against the previous
// generation's materialized image and emits the delta record: every
// process appears (carrying its complete FD table and, when changed, its
// program state), but only the regions whose write watermark or bytes
// changed are included. Shared by the incremental Tracker and the
// pre-copy rounds so both paths emit byte-identical record shapes.
func buildDelta(img, last *Image, lastProg map[vos.PID][]byte,
	dirtyNames map[vos.PID]map[string]bool, seq uint64, parentSum uint32) *DeltaImage {
	d := &DeltaImage{
		PodName:     img.PodName,
		VIP:         img.VIP,
		VirtualTime: img.VirtualTime,
		Seq:         seq,
		ParentSum:   parentSum,
		Net:         img.Net,
	}
	prev := make(map[vos.PID]*ProcImage, len(last.Procs))
	for i := range last.Procs {
		prev[last.Procs[i].VPID] = &last.Procs[i]
	}
	for _, pi := range img.Procs {
		old := prev[pi.VPID]
		pd := ProcDelta{
			VPID: pi.VPID,
			Kind: pi.Kind,
			FDs:  pi.FDs,
		}
		if old == nil {
			pd.New = true
			pd.ProgChanged = true
			pd.ProgData = pi.ProgData
			pd.Regions = pi.Regions
		} else {
			if !bytes.Equal(lastProg[pi.VPID], pi.ProgData) {
				pd.ProgChanged = true
				pd.ProgData = pi.ProgData
			}
			// A region goes into the delta when its write watermark says
			// it was touched — or, as a safety net for programs that
			// mutate region bytes in place without TouchRegion, when its
			// bytes differ from the base generation's copy. The byte
			// comparison only scans; the delta still carries (and the
			// sink only writes) the regions that actually changed.
			names := dirtyNames[pi.VPID]
			oldReg := make(map[string][]byte, len(old.Regions))
			for _, r := range old.Regions {
				oldReg[r.Name] = r.Data
			}
			for _, r := range pi.Regions {
				ob, ok := oldReg[r.Name]
				if !ok || names[r.Name] || !bytes.Equal(ob, r.Data) {
					pd.Regions = append(pd.Regions, r)
				}
			}
			cur := make(map[string]bool, len(pi.Regions))
			for _, r := range pi.Regions {
				cur[r.Name] = true
			}
			for _, r := range old.Regions {
				if !cur[r.Name] {
					pd.RemovedRegions = append(pd.RemovedRegions, r.Name)
				}
			}
		}
		d.Procs = append(d.Procs, pd)
	}
	cur := make(map[vos.PID]bool, len(img.Procs))
	for _, pi := range img.Procs {
		cur[pi.VPID] = true
	}
	for _, bp := range last.Procs {
		if !cur[bp.VPID] {
			d.RemovedProcs = append(d.RemovedProcs, bp.VPID)
		}
	}
	return d
}

// Capture checkpoints the frozen pod and builds either a full record
// (full=true, or no base exists) or a delta record against the last
// committed generation, using the worker pool for serialization.
func (t *Tracker) Capture(p *pod.Pod, workers int, full bool) (*Pending, error) {
	img, err := CheckpointPodWith(p, workers)
	if err != nil {
		return nil, err
	}
	// Snapshot the dirty watermarks and program fingerprints at capture
	// time (the pod is frozen, so these are the watermarks of exactly
	// the state in img).
	marks := make(map[vos.PID]uint64)
	for _, proc := range p.Procs() {
		marks[proc.VPID] = proc.MemClock()
	}
	lastProg := make(map[vos.PID][]byte, len(img.Procs))
	for _, pi := range img.Procs {
		lastProg[pi.VPID] = pi.ProgData
	}
	if full || t.last == nil {
		return &Pending{
			Image: img,
			commit: func(sum uint32) {
				t.seq = 0
				t.sinceFull = 0
				t.marks = marks
				t.lastProg = lastProg
				t.last = img
				t.lastSum = sum
			},
		}, nil
	}
	dirtyNames := make(map[vos.PID]map[string]bool)
	for _, proc := range p.Procs() {
		names := make(map[string]bool)
		for _, r := range proc.DirtyRegions(t.marks[proc.VPID]) {
			names[r.Name] = true
		}
		dirtyNames[proc.VPID] = names
	}
	d := buildDelta(img, t.last, t.lastProg, dirtyNames, t.seq+1, t.lastSum)
	return &Pending{
		Image: img,
		Delta: d,
		commit: func(sum uint32) {
			t.seq++
			t.sinceFull++
			t.marks = marks
			t.lastProg = lastProg
			t.last = img
			t.lastSum = sum
		},
	}, nil
}

// IncrSet manages one Tracker per pod and the full-image cadence: every
// FullEvery-th generation of a pod is a full record, the ones between
// are deltas. FullEvery <= 1 means every generation is full
// (incremental checkpointing off).
type IncrSet struct {
	// FullEvery is the chain length bound: a chain holds one full record
	// followed by at most FullEvery-1 deltas.
	FullEvery int
	trackers  map[string]*Tracker
}

// NewIncrSet returns an IncrSet with the given cadence.
func NewIncrSet(fullEvery int) *IncrSet {
	return &IncrSet{FullEvery: fullEvery, trackers: make(map[string]*Tracker)}
}

// Tracker returns the (created-on-demand) tracker for a pod name.
func (s *IncrSet) Tracker(name string) *Tracker {
	if s.trackers == nil {
		s.trackers = make(map[string]*Tracker)
	}
	t := s.trackers[name]
	if t == nil {
		t = NewTracker()
		s.trackers[name] = t
	}
	return t
}

// Capture checkpoints a frozen pod through its tracker, choosing full
// or delta per the cadence.
func (s *IncrSet) Capture(p *pod.Pod, workers int) (*Pending, error) {
	t := s.Tracker(p.Name())
	full := s.FullEvery <= 1 || t.SinceFull()+1 >= s.FullEvery
	return t.Capture(p, workers, full)
}

// Rebase resets every tracker: the next generation of every pod is a
// full image. Called after failover or when a stored chain fails
// validation.
func (s *IncrSet) Rebase() {
	for _, t := range s.trackers {
		t.Rebase()
	}
}

// Drop forgets the tracker of one pod (the pod left the cluster).
func (s *IncrSet) Drop(name string) {
	delete(s.trackers, name)
}
