package ckpt

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"

	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// mkIdlePod builds a pod whose processes carry a large write-once
// ballast region plus a small hot region, frozen and ready to
// checkpoint — the "mostly idle" shape where incremental checkpoints
// pay off.
func mkIdlePod(t *testing.T, c *cluster, name string, procs, ballast int) *pod.Pod {
	t.Helper()
	p, err := pod.New(name, c.nodes[0], c.nw, c.fs, nextVIP())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < procs; i++ {
		proc := p.AddProcess(&worker{Limit: 10})
		big := make([]byte, ballast)
		for j := range big {
			big[j] = byte(j ^ i)
		}
		proc.SetRegion("ballast", big)
		proc.SetRegion("hot", []byte{byte(i), 0, 0, 0})
	}
	c.w.RunUntil(c.w.Now() + sim.Time(2*sim.Millisecond))
	c.freeze(t, p)
	return p
}

func captureCommit(t *testing.T, tr *Tracker, p *pod.Pod, full bool) *Pending {
	t.Helper()
	pend, err := tr.Capture(p, 2, full)
	if err != nil {
		t.Fatal(err)
	}
	pend.Commit()
	return pend
}

// wireOf streams a pending generation's record into a buffer. Tests
// need the raw bytes; production code streams straight to a store.
func wireOf(t *testing.T, pend *Pending) []byte {
	t.Helper()
	var buf bytes.Buffer
	st, err := pend.Stream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != int64(buf.Len()) || st.Sum != crc32.ChecksumIEEE(buf.Bytes()) {
		t.Fatalf("stream stats disagree with the bytes written: %+v vs %d bytes", st, buf.Len())
	}
	return buf.Bytes()
}

func TestDeltaWireRoundTrip(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkIdlePod(t, c, "rt", 2, 1024)
	tr := NewTracker()
	captureCommit(t, tr, p, true)
	for _, proc := range p.Procs() {
		proc.SetRegion("hot", []byte{9, 9, 9, 9})
	}
	pend := captureCommit(t, tr, p, false)
	if pend.Full() {
		t.Fatal("expected a delta generation")
	}
	wire := wireOf(t, pend)
	got, err := DecodeDelta(wire)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if _, err := got.EncodeStream(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), wire) {
		t.Fatal("delta decode/encode is not a fixed point")
	}
	if got.Seq != 1 || got.PodName != "rt" {
		t.Fatalf("decoded delta header: seq=%d pod=%q", got.Seq, got.PodName)
	}
}

func TestApplyDeltaMatchesFullCheckpoint(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkIdlePod(t, c, "app", 3, 2048)
	tr := NewTracker()
	base := captureCommit(t, tr, p, true)

	// Mutate: one region via SetRegion, program state by running, one
	// region dropped, one added.
	procs := p.Procs()
	procs[0].SetRegion("hot", []byte{0xaa, 0xbb})
	procs[1].DropRegion("hot")
	procs[2].SetRegion("extra", []byte("fresh"))
	p.Resume()
	p.UnblockNetwork()
	c.w.RunUntil(c.w.Now() + sim.Time(3*sim.Millisecond))
	c.freeze(t, p)

	pend := captureCommit(t, tr, p, false)
	if pend.Full() {
		t.Fatal("expected delta")
	}
	d, err := DecodeDelta(wireOf(t, pend))
	if err != nil {
		t.Fatal(err)
	}
	baseImg, err := DecodeImage(wireOf(t, base))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ApplyDelta(baseImg, d)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt.Encode(), full.Encode()) {
		t.Fatal("base+delta reconstruction differs from a full checkpoint")
	}
	if !bytes.Equal(pend.Image.Encode(), full.Encode()) {
		t.Fatal("Pending.Image differs from a full checkpoint")
	}
	// The removed region must be gone from the reconstruction.
	for _, pi := range rebuilt.Procs {
		if pi.VPID == procs[1].VPID {
			for _, r := range pi.Regions {
				if r.Name == "hot" {
					t.Fatal("removed region survived the delta")
				}
			}
		}
	}
}

func TestInPlaceMutationCaughtBySafetyNet(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkIdlePod(t, c, "inplace", 1, 512)
	tr := NewTracker()
	captureCommit(t, tr, p, true)
	// Mutate region bytes in place, bypassing SetRegion/TouchRegion —
	// the watermark never moves, only the byte-compare safety net can
	// see this write.
	proc := p.Procs()[0]
	reg, ok := proc.Region("ballast")
	if !ok {
		t.Fatal("no ballast region")
	}
	reg[0] ^= 0xff
	pend := captureCommit(t, tr, p, false)
	full, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeDelta(wireOf(t, pend))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pd := range d.Procs {
		for _, r := range pd.Regions {
			if r.Name == "ballast" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("in-place write missed by the delta")
	}
	if !bytes.Equal(pend.Image.Encode(), full.Encode()) {
		t.Fatal("delta generation diverged from full checkpoint")
	}
}

func TestIncrementalBytesAtLeast5xSmaller(t *testing.T) {
	c := mkCluster(t, 1)
	// Mostly idle: 4 procs × 64 KiB ballast, only the tiny hot region
	// changes between generations.
	p := mkIdlePod(t, c, "idle", 4, 64<<10)
	tr := NewTracker()
	fullPend := captureCommit(t, tr, p, true)
	for _, proc := range p.Procs() {
		proc.SetRegion("hot", []byte{1, 2, 3, 4})
	}
	deltaPend := captureCommit(t, tr, p, false)
	fullBytes, deltaBytes := int(fullPend.Stats().Bytes), int(deltaPend.Stats().Bytes)
	if deltaBytes*5 > fullBytes {
		t.Fatalf("delta %d bytes vs full %d bytes: less than 5x reduction", deltaBytes, fullBytes)
	}
}

func TestReconstructChain(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkIdlePod(t, c, "chain", 2, 4096)
	tr := NewTracker()
	records := [][]byte{wireOf(t, captureCommit(t, tr, p, true))}
	for gen := 0; gen < 3; gen++ {
		for i, proc := range p.Procs() {
			proc.SetRegion("hot", []byte{byte(gen), byte(i)})
		}
		records = append(records, wireOf(t, captureCommit(t, tr, p, false)))
	}
	rebuilt, err := ReconstructChain(records)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt.Encode(), full.Encode()) {
		t.Fatal("chain reconstruction differs from full checkpoint")
	}

	// Tampering with any link breaks the chain.
	if _, err := ReconstructChain(records[:1]); err != nil {
		t.Fatalf("single full record chain: %v", err)
	}
	bad := [][]byte{records[0], records[2]} // skip a delta
	if _, err := ReconstructChain(bad); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("skipped link: err = %v, want ErrChainBroken", err)
	}
	if _, err := ReconstructChain(nil); !errors.Is(err, ErrChainBroken) {
		t.Fatal("empty chain must be broken")
	}
	// A delta applied to the wrong pod's image is refused.
	other := mkIdlePod(t, c, "other", 1, 64)
	oimg, err := CheckpointPod(other)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeDelta(records[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyDelta(oimg, d); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("cross-pod apply: err = %v, want ErrChainBroken", err)
	}
}

func TestPendingDiscardKeepsChainAnchored(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkIdlePod(t, c, "abort", 1, 1024)
	tr := NewTracker()
	fullPend := captureCommit(t, tr, p, true)

	p.Procs()[0].SetRegion("hot", []byte{7})
	aborted, err := tr.Capture(p, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// The operation aborts: the pending generation is dropped without
	// Commit. A later capture must re-anchor on the committed base and
	// still include the change the aborted record carried.
	retry := captureCommit(t, tr, p, false)
	if retry.Delta.Seq != 1 {
		t.Fatalf("retry seq = %d, want 1 (aborted capture must not advance the chain)", retry.Delta.Seq)
	}
	if retry.Delta.ParentSum != fullPend.Stats().Sum {
		t.Fatal("retry does not link to the committed base")
	}
	if _, err := ReconstructChain([][]byte{wireOf(t, fullPend), wireOf(t, retry)}); err != nil {
		t.Fatal(err)
	}
	// The aborted record, had it been stored, would also have linked —
	// both captures saw the same parent.
	if aborted.Delta.ParentSum != retry.Delta.ParentSum {
		t.Fatal("aborted and retry captures disagree on parent")
	}
	// Double Commit is harmless.
	retry.Commit()
	if tr.SinceFull() != 1 {
		t.Fatalf("SinceFull = %d after one committed delta", tr.SinceFull())
	}
}

func TestTrackerRebase(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkIdlePod(t, c, "rebase", 1, 256)
	tr := NewTracker()
	captureCommit(t, tr, p, true)
	captureCommit(t, tr, p, false)
	tr.Rebase()
	if tr.HasBase() {
		t.Fatal("rebase kept a base")
	}
	pend := captureCommit(t, tr, p, false) // asked for delta, must fall back to full
	if !pend.Full() {
		t.Fatal("capture after rebase must produce a full image")
	}
}

func TestProcessExitProducesRemoval(t *testing.T) {
	c := mkCluster(t, 1)
	p, err := pod.New("exit", c.nodes[0], c.nw, c.fs, nextVIP())
	if err != nil {
		t.Fatal(err)
	}
	shortLived := p.AddProcess(&worker{Limit: 3})
	longLived := p.AddProcess(&worker{Limit: 100000})
	longLived.SetRegion("keep", []byte("x"))
	c.w.RunUntil(c.w.Now() + sim.Time(sim.Millisecond))
	c.freeze(t, p)
	tr := NewTracker()
	captureCommit(t, tr, p, true)

	// Resume; the short-lived worker exits.
	p.Resume()
	p.UnblockNetwork()
	c.drive(t, func() bool { return shortLived.Status() == vos.StatusExited })
	c.freeze(t, p)
	pend := captureCommit(t, tr, p, false)
	d, err := DecodeDelta(wireOf(t, pend))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RemovedProcs) != 1 || d.RemovedProcs[0] != shortLived.VPID {
		t.Fatalf("RemovedProcs = %v, want [%d]", d.RemovedProcs, shortLived.VPID)
	}
	full, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pend.Image.Encode(), full.Encode()) {
		t.Fatal("post-exit delta generation diverged from full checkpoint")
	}
}

func TestIncrSetCadence(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkIdlePod(t, c, "cadence", 1, 128)
	s := NewIncrSet(3)
	var kinds []bool
	for i := 0; i < 7; i++ {
		p.Procs()[0].SetRegion("hot", []byte{byte(i)})
		pend, err := s.Capture(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		pend.Commit()
		kinds = append(kinds, pend.Full())
	}
	want := []bool{true, false, false, true, false, false, true}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("generation kinds = %v, want %v", kinds, want)
		}
	}
	// FullEvery<=1 disables deltas entirely.
	s1 := NewIncrSet(1)
	for i := 0; i < 3; i++ {
		pend, err := s1.Capture(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		pend.Commit()
		if !pend.Full() {
			t.Fatal("FullEvery=1 must always produce full images")
		}
	}
	// Rebase forces the next generation full.
	s.Rebase()
	pend, err := s.Capture(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !pend.Full() {
		t.Fatal("capture after IncrSet.Rebase must be full")
	}
}
