package ckpt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// randImage builds a structurally valid random pod image.
func randImage(r *rand.Rand) *Image {
	img := &Image{
		PodName:     randName(r),
		VIP:         netstack.IP(r.Uint32()),
		VirtualTime: sim.Time(r.Int63n(1 << 40)),
		Net:         &netckpt.NetImage{},
	}
	img.Net.PodIP = img.VIP
	nSock := r.Intn(4)
	for i := 0; i < nSock; i++ {
		img.Net.Sockets = append(img.Net.Sockets, netckpt.SocketRecord{
			Slot:            i,
			Proto:           netstack.TCP,
			State:           netstack.StateEstablished,
			Local:           netstack.Addr{IP: img.VIP, Port: netstack.Port(r.Intn(1 << 16))},
			Remote:          netstack.Addr{IP: netstack.IP(r.Uint32()), Port: netstack.Port(r.Intn(1 << 16))},
			RecvData:        randBytes(r, 64),
			OOBData:         randBytes(r, 8),
			PCB:             netstack.PCB{SndNxt: r.Uint64() % 1000, SndUna: r.Uint64() % 500, RcvNxt: r.Uint64() % 1000},
			PendingAcceptOf: -1,
		})
	}
	nProc := 1 + r.Intn(3)
	for p := 0; p < nProc; p++ {
		pi := ProcImage{
			VPID:     vos.PID(p + 1),
			Kind:     randName(r),
			ProgData: randBytes(r, 128),
		}
		for k := 0; k < r.Intn(3); k++ {
			pi.Regions = append(pi.Regions, vos.Region{Name: randName(r), Data: randBytes(r, 256)})
		}
		for k := 0; k < r.Intn(3) && k < nSock; k++ {
			pi.FDs = append(pi.FDs, FDEntry{FD: k, Slot: k})
		}
		img.Procs = append(img.Procs, pi)
	}
	return img
}

func randName(r *rand.Rand) string {
	const alpha = "abcdefghijklmnop-."
	n := 1 + r.Intn(12)
	out := make([]byte, n)
	for i := range out {
		out[i] = alpha[r.Intn(len(alpha))]
	}
	return string(out)
}

func randBytes(r *rand.Rand, max int) []byte {
	out := make([]byte, r.Intn(max+1))
	r.Read(out)
	return out
}

// Property: any structurally valid pod image survives the intermediate
// format bit-exactly.
func TestQuickImageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img := randImage(r)
		data := img.Encode()
		got, err := DecodeImage(data)
		if err != nil {
			return false
		}
		if got.PodName != img.PodName || got.VIP != img.VIP || got.VirtualTime != img.VirtualTime {
			return false
		}
		if len(got.Procs) != len(img.Procs) || len(got.Net.Sockets) != len(img.Net.Sockets) {
			return false
		}
		for i, p := range img.Procs {
			q := got.Procs[i]
			if q.VPID != p.VPID || q.Kind != p.Kind || !bytes.Equal(q.ProgData, p.ProgData) {
				return false
			}
			if len(q.Regions) != len(p.Regions) || len(q.FDs) != len(p.FDs) {
				return false
			}
			for j, reg := range p.Regions {
				if q.Regions[j].Name != reg.Name || !bytes.Equal(q.Regions[j].Data, reg.Data) {
					return false
				}
			}
			for j, fd := range p.FDs {
				if q.FDs[j] != fd {
					return false
				}
			}
		}
		for i, s := range img.Net.Sockets {
			g := got.Net.Sockets[i]
			if g.Local != s.Local || g.Remote != s.Remote || g.PCB != s.PCB ||
				!bytes.Equal(g.RecvData, s.RecvData) || !bytes.Equal(g.OOBData, s.OOBData) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupting any single byte of an encoded image is always
// detected (checksum) — images are never silently mis-restored.
func TestQuickCorruptionDetected(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	img := randImage(r)
	data := img.Encode()
	for trial := 0; trial < 200; trial++ {
		pos := r.Intn(len(data))
		bit := byte(1) << uint(r.Intn(8))
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= bit
		if _, err := DecodeImage(corrupt); err == nil {
			// A flip in the trailer may cancel out only if the CRC of
			// the body matches by construction — impossible for a
			// single-bit flip.
			t.Fatalf("single-bit corruption at %d undetected", pos)
		}
	}
}
