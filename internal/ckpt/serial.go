package ckpt

import (
	"errors"

	"zapc/internal/imgfmt"
	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// Pod image field tags.
const (
	tagPodName = 1
	tagVIP     = 2
	tagVTime   = 3
	tagNet     = 4
	tagProc    = 5

	tagVPID     = 1
	tagKind     = 2
	tagProgData = 3
	tagRegion   = 4
	tagFD       = 5

	tagRegName = 1
	tagRegData = 2

	tagFDNum  = 1
	tagFDSlot = 2
)

// Encode serializes the image into the intermediate checkpoint format.
// EncodeParallel produces byte-identical output on a worker pool.
func (img *Image) Encode() []byte {
	return img.EncodeParallel(1)
}

// encodeProcBody writes one process's fields (the body of a tagProc
// section) to the given encoder.
func encodeProcBody(e *imgfmt.Encoder, p ProcImage) {
	e.Int(tagVPID, int64(p.VPID))
	e.String(tagKind, p.Kind)
	e.Bytes(tagProgData, p.ProgData)
	for _, r := range p.Regions {
		e.Begin(tagRegion)
		e.String(tagRegName, r.Name)
		e.Bytes(tagRegData, r.Data)
		e.End()
	}
	for _, fd := range p.FDs {
		e.Begin(tagFD)
		e.Int(tagFDNum, int64(fd.FD))
		e.Int(tagFDSlot, int64(fd.Slot))
		e.End()
	}
}

// DecodeImage parses a serialized pod image.
func DecodeImage(data []byte) (*Image, error) {
	return DecodeImageWith(data, 1)
}

// decodeImageHeader parses everything up to the process list and
// collects one sub-decoder per process section for the (possibly
// parallel) second phase.
func decodeImageHeader(data []byte) (*Image, []*imgfmt.Decoder, error) {
	d, err := imgfmt.NewDecoder(data)
	if err != nil {
		return nil, nil, err
	}
	img := &Image{}
	if img.PodName, err = d.String(tagPodName); err != nil {
		return nil, nil, err
	}
	vip, err := d.Uint(tagVIP)
	if err != nil {
		return nil, nil, err
	}
	img.VIP = netstack.IP(vip)
	vt, err := d.Int(tagVTime)
	if err != nil {
		return nil, nil, err
	}
	img.VirtualTime = sim.Time(vt)
	netSec, err := d.Section(tagNet)
	if err != nil {
		return nil, nil, err
	}
	if img.Net, err = netckpt.DecodeImage(netSec); err != nil {
		return nil, nil, err
	}
	var secs []*imgfmt.Decoder
	for d.More() {
		tag, _, err := d.Peek()
		if err != nil {
			return nil, nil, err
		}
		if tag != tagProc {
			if err := d.Skip(); err != nil {
				return nil, nil, err
			}
			continue
		}
		sec, err := d.Section(tagProc)
		if err != nil {
			return nil, nil, err
		}
		secs = append(secs, sec)
	}
	return img, secs, nil
}

func decodeProc(d *imgfmt.Decoder) (ProcImage, error) {
	var p ProcImage
	vpid, err := d.Int(tagVPID)
	if err != nil {
		return p, err
	}
	p.VPID = vos.PID(vpid)
	if p.Kind, err = d.String(tagKind); err != nil {
		return p, err
	}
	pd, err := d.Bytes(tagProgData)
	if err != nil {
		return p, err
	}
	p.ProgData = append([]byte(nil), pd...)
	for d.More() {
		tag, _, err := d.Peek()
		if err != nil {
			return p, err
		}
		switch tag {
		case tagRegion:
			sec, err := d.Section(tagRegion)
			if err != nil {
				return p, err
			}
			name, e1 := sec.String(tagRegName)
			data, e2 := sec.Bytes(tagRegData)
			if err := errors.Join(e1, e2); err != nil {
				return p, err
			}
			p.Regions = append(p.Regions, vos.Region{Name: name, Data: append([]byte(nil), data...)})
		case tagFD:
			sec, err := d.Section(tagFD)
			if err != nil {
				return p, err
			}
			fd, e1 := sec.Int(tagFDNum)
			slot, e2 := sec.Int(tagFDSlot)
			if err := errors.Join(e1, e2); err != nil {
				return p, err
			}
			p.FDs = append(p.FDs, FDEntry{FD: int(fd), Slot: int(slot)})
		default:
			if err := d.Skip(); err != nil {
				return p, err
			}
		}
	}
	return p, nil
}
