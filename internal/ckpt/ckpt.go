// Package ckpt implements the standalone pod checkpoint-restart
// mechanism (the Zap layer ZapC builds on): saving a suspended pod's
// entire per-node state — processes with their program state, memory
// regions, descriptor tables, virtual PIDs, and the pod's virtual clock
// — into a portable image, and reinstating it into a fresh pod on any
// node.
//
// The image uses the intermediate format of internal/imgfmt: it records
// higher-level semantic state (program-defined sections, named memory
// regions, descriptor-to-socket-slot bindings) rather than native kernel
// data, which is what makes images portable across nodes and kernel
// versions. Network state is embedded as a netckpt.NetImage and restored
// by that package's Restorer before descriptors are wired.
package ckpt

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"zapc/internal/imgfmt"
	"zapc/internal/memfs"
	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// Errors returned by checkpoint and restart.
var (
	ErrNotQuiescent   = errors.New("ckpt: pod is not quiescent")
	ErrUnknownProgram = errors.New("ckpt: unknown program kind")
	// ErrCorruptImage marks a serialized pod image that fails integrity
	// validation (imgfmt CRC mismatch, truncation, or a malformed field
	// stream). Restart paths check images read from shared storage
	// before any pod is built from them.
	ErrCorruptImage = errors.New("ckpt: corrupt checkpoint image")
)

// VerifyImage decode-checks a serialized pod image: the imgfmt CRC-32
// trailer, the header, and the full field stream. It returns the decoded
// image, or ErrCorruptImage wrapping the underlying decode failure.
func VerifyImage(data []byte) (*Image, error) {
	img, err := DecodeImage(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptImage, err)
	}
	return img, nil
}

// Program registry: restart must re-instantiate programs from their Kind
// tag before feeding them their saved state.
var (
	regMu    sync.RWMutex
	registry = make(map[string]func() vos.Program)
)

// Register associates a program kind with a factory. Applications
// register their programs at init time; registration is idempotent for
// identical kinds.
func Register(kind string, factory func() vos.Program) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[kind] = factory
}

// NewProgram instantiates a registered program kind.
func NewProgram(kind string) (vos.Program, error) {
	regMu.RLock()
	f, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProgram, kind)
	}
	return f(), nil
}

// FDEntry binds a process descriptor to a socket slot in the pod's
// network image.
type FDEntry struct {
	FD   int
	Slot int
}

// ProcImage is the saved state of one process.
type ProcImage struct {
	VPID     vos.PID
	Kind     string
	ProgData []byte // program-defined state (nested imgfmt stream)
	Regions  []vos.Region
	FDs      []FDEntry
}

// Image is a complete pod checkpoint.
type Image struct {
	PodName     string
	VIP         netstack.IP
	VirtualTime sim.Time
	Net         *netckpt.NetImage
	Procs       []ProcImage

	sizeCache int64 // memoized Bytes(); images are immutable once built
}

// CheckpointPod saves a suspended pod. The pod must be quiescent with
// its network blocked (the coordinated Agent guarantees both before
// calling). The walk has no side effects on the pod. CheckpointPodWith
// performs the same save with a parallel worker pool.
func CheckpointPod(p *pod.Pod) (*Image, error) {
	return CheckpointPodWith(p, 1)
}

// procRef and sockRef name the worker-pool job inputs.
type (
	procRef = *vos.Process
	sockRef = *netstack.Socket
)

// beginCheckpoint performs the sequential prologue every checkpoint
// shares: quiescence check, network-state capture, the image skeleton,
// the frozen process list, and the socket-identity -> slot table (the
// same enumeration order netckpt used; the pod is frozen, so the socket
// table is stable).
func beginCheckpoint(p *pod.Pod) (*Image, []procRef, map[sockRef]int, error) {
	if !p.Quiescent() {
		return nil, nil, nil, ErrNotQuiescent
	}
	netImg, _, err := netckpt.CheckpointStack(p.Stack())
	if err != nil {
		return nil, nil, nil, err
	}
	img := &Image{
		PodName:     p.Name(),
		VIP:         p.VirtualIP(),
		VirtualTime: p.VirtualNow(),
		Net:         netImg,
	}
	slotOf := make(map[sockRef]int)
	for i, s := range p.Stack().Sockets() {
		slotOf[s] = i
	}
	return img, p.Procs(), slotOf, nil
}

// captureProc serializes one frozen process: program state, memory
// regions, and descriptor-to-slot bindings. It reads the process but
// never mutates it, so captures of distinct processes may run
// concurrently.
func captureProc(proc *vos.Process, slotOf map[sockRef]int) (ProcImage, error) {
	pi := ProcImage{
		VPID: proc.VPID,
		Kind: proc.Prog.Kind(),
	}
	enc := imgfmt.NewEncoder()
	if err := proc.Prog.Save(enc); err != nil {
		return pi, fmt.Errorf("ckpt: saving %s (vpid %d): %w", pi.Kind, pi.VPID, err)
	}
	pi.ProgData = enc.Finish()
	for _, r := range proc.Memory() {
		pi.Regions = append(pi.Regions, vos.Region{
			Name: r.Name,
			Data: append([]byte(nil), r.Data...),
		})
	}
	for _, fd := range proc.FDs() {
		s, _ := proc.SocketFor(fd)
		slot, ok := slotOf[s]
		if !ok {
			return pi, fmt.Errorf("ckpt: fd %d of vpid %d references unknown socket", fd, pi.VPID)
		}
		pi.FDs = append(pi.FDs, FDEntry{FD: fd, Slot: slot})
	}
	return pi, nil
}

func sortProcs(procs []ProcImage) {
	sort.Slice(procs, func(i, j int) bool { return procs[i].VPID < procs[j].VPID })
}

// Remap rewrites the image's virtual addresses for a restart at
// different network addresses.
func (img *Image) Remap(remap map[netstack.IP]netstack.IP) {
	if n, ok := remap[img.VIP]; ok {
		img.VIP = n
	}
	netckpt.RemapImage(img.Net, remap)
}

// Bytes reports the logical serialized size of the image (the paper's
// checkpoint image size, Figure 6c): the uncompressed field stream,
// computed by encoding to a counting sink — the image is never
// materialized. Per-frame compression shrinks the bytes on the wire
// (StreamStats.Bytes), not this figure, so size-based invariants stay
// comparable across frame versions. The value is memoized: images are
// treated as immutable once the checkpoint completes.
func (img *Image) Bytes() int64 {
	if img.sizeCache == 0 {
		st, _ := img.EncodeStream(io.Discard) // io.Discard never errors
		img.sizeCache = st.Raw
	}
	return img.sizeCache
}

// ApproxBytes reports the approximate serialized size of one process
// section (program state plus memory regions). The parallel worker-lane
// model divides per-process figures like this across the pool to place
// each process on a modeled worker timeline.
func (p *ProcImage) ApproxBytes() int64 {
	n := int64(len(p.ProgData))
	for _, r := range p.Regions {
		n += int64(len(r.Data))
	}
	return n
}

// MemoryBytes reports just the application memory payload.
func (img *Image) MemoryBytes() int64 {
	var n int64
	for _, p := range img.Procs {
		for _, r := range p.Regions {
			n += int64(len(r.Data))
		}
		n += int64(len(p.ProgData))
	}
	return n
}

// RestorePod reinstates an image into a new pod on the given node,
// following the restart agent's local procedure: create an empty pod,
// recover network connectivity and state (asynchronously, via the
// netckpt Restorer and the manager-provided plan), then perform the
// standalone restart — re-create every process with its preserved
// virtual PID, program state, memory, and descriptors. The restored
// processes are left SIGSTOPped; the caller resumes them once the whole
// operation concludes. onDone receives the new pod or the first error.
//
// The created pod is also returned synchronously (nil when creation
// itself failed) so coordinated restart can track it for cleanup if the
// operation aborts while the restore is still in flight — otherwise a
// stalled restore would leak the pod's stack and keep its virtual
// address busy forever.
func RestorePod(img *Image, name string, node *vos.Node, nw *netstack.Network,
	fs *memfs.FS, plan *netckpt.EndpointPlan, onDone func(*pod.Pod, error)) *pod.Pod {

	newPod, err := pod.New(name, node, nw, fs, img.VIP)
	if err != nil {
		onDone(nil, err)
		return nil
	}
	var restorer *netckpt.Restorer
	restorer = netckpt.NewRestorer(newPod.Stack(), img.Net, plan, func(err error) {
		if err != nil {
			newPod.Destroy()
			onDone(nil, err)
			return
		}
		if err := restoreProcs(img, newPod, restorer.Sockets()); err != nil {
			newPod.Destroy()
			onDone(nil, err)
			return
		}
		// Virtualize time: the pod's clock resumes from its checkpoint
		// value so application timeouts never observe the gap.
		newPod.SetTimeBias(img.VirtualTime)
		onDone(newPod, nil)
	})
	restorer.Start()
	return newPod
}

func restoreProcs(img *Image, newPod *pod.Pod, socks []*netstack.Socket) error {
	for _, pi := range img.Procs {
		prog, err := NewProgram(pi.Kind)
		if err != nil {
			return err
		}
		dec, err := imgfmt.NewDecoder(pi.ProgData)
		if err != nil {
			return fmt.Errorf("ckpt: program data of vpid %d: %w", pi.VPID, err)
		}
		if err := prog.Restore(dec); err != nil {
			return fmt.Errorf("ckpt: restoring %s (vpid %d): %w", pi.Kind, pi.VPID, err)
		}
		proc, err := newPod.AddRestoredProcess(prog, pi.VPID)
		if err != nil {
			return err
		}
		for _, r := range pi.Regions {
			proc.SetRegion(r.Name, append([]byte(nil), r.Data...))
		}
		for _, fe := range pi.FDs {
			if fe.Slot < 0 || fe.Slot >= len(socks) || socks[fe.Slot] == nil {
				return fmt.Errorf("ckpt: fd %d of vpid %d references unrestored socket slot %d",
					fe.FD, pi.VPID, fe.Slot)
			}
			proc.InstallFD(fe.FD, socks[fe.Slot])
		}
	}
	return nil
}
