package ckpt

import (
	"testing"

	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// TestRestartDespitePIDsInUse reproduces the paper's comparison with
// BLCR, which "cannot restart successfully if a resource identifier
// required for the restart, such as a process identifier, is already in
// use". Pod virtualization makes the restart immune: the target node's
// real PID space is already crowded (including the exact real PIDs the
// original processes had), yet the restored processes keep their
// virtual PIDs and run correctly.
func TestRestartDespitePIDsInUse(t *testing.T) {
	c := mkCluster(t, 2)
	p, _ := pod.New("p", c.nodes[0], c.nw, c.fs, 1)
	wk := &worker{Limit: 200}
	orig := p.AddProcess(wk)
	origRPID := orig.RPID
	origVPID := orig.VPID
	c.w.RunUntil(sim.Time(20 * sim.Millisecond))
	c.freeze(t, p)
	img, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Destroy()

	// Crowd the target node's process table so the original real PID is
	// definitely taken there.
	target := c.nodes[1]
	env := &vos.Env{Stack: mustStack(t, c.nw, 99), FS: c.fs}
	var squatter *vos.Process
	for i := 0; i < 50; i++ {
		q := target.Spawn(&worker{Limit: 1 << 30}, env)
		if q.RPID == origRPID {
			squatter = q
		}
	}
	if squatter == nil {
		t.Fatalf("test setup: real pid %d not occupied on target", origRPID)
	}

	plans, err := netckpt.PlanRestart(map[netstack.IP]*netckpt.NetImage{img.VIP: img.Net})
	if err != nil {
		t.Fatal(err)
	}
	var np *pod.Pod
	RestorePod(img, "p2", target, c.nw, c.fs, plans[img.VIP], func(q *pod.Pod, err error) {
		if err != nil {
			t.Fatalf("restore with crowded pid table: %v", err)
		}
		np = q
	})
	c.drive(t, func() bool { return np != nil })
	proc, ok := np.Lookup(origVPID)
	if !ok {
		t.Fatalf("virtual pid %d not preserved", origVPID)
	}
	if proc.RPID == origRPID {
		t.Fatal("restored process reused the occupied real pid")
	}
	if squatter.Status() == vos.StatusExited {
		t.Fatal("restore displaced the existing process")
	}
	np.Resume()
	restored := proc.Prog.(*worker)
	c.drive(t, func() bool { return restored.Done == restored.Limit })
}

func mustStack(t *testing.T, nw *netstack.Network, ip netstack.IP) *netstack.Stack {
	t.Helper()
	st, err := nw.NewStack(ip)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
