package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// mkRawCluster is mkCluster without the testing.T (usable from fuzz
// seeding and benchmarks).
func mkRawCluster(nodes int) *cluster {
	w := sim.NewWorld(99)
	c := &cluster{w: w, nw: netstack.NewNetwork(w), fs: memfs.New()}
	for i := 0; i < nodes; i++ {
		c.nodes = append(c.nodes, vos.NewNode(w, "node"+string(rune('A'+i)), 2))
	}
	return c
}

// rawFreeze suspends a pod and drives the world to quiescence without a
// testing.T.
func rawFreeze(c *cluster, p *pod.Pod) {
	p.Suspend()
	p.BlockNetwork()
	for !p.Quiescent() && c.w.Step() {
	}
}

// testVIP hands out distinct virtual IPs for helper-built pods (VIPs
// are unique per network; tests here never run in parallel).
var testVIP uint32 = 100

func nextVIP() netstack.IP {
	testVIP++
	return netstack.IP(testVIP)
}

// mkBusyPod builds a pod with n worker processes, each owning a private
// heap region, advanced a few virtual milliseconds and then frozen.
func mkBusyPod(t *testing.T, c *cluster, name string, node int, n int) *pod.Pod {
	t.Helper()
	p, err := pod.New(name, c.nodes[node], c.nw, c.fs, nextVIP())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		proc := p.AddProcess(&worker{Limit: 200 + 50*i})
		heap := make([]byte, 256+64*i)
		for j := range heap {
			heap[j] = byte(i*31 + j)
		}
		proc.SetRegion("heap", heap)
	}
	c.w.RunUntil(c.w.Now() + sim.Time(5*sim.Millisecond))
	c.freeze(t, p)
	return p
}

func TestParallelCheckpointMatchesSequential(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkBusyPod(t, c, "par", 0, 6)

	seq, err := CheckpointPodWith(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		par, err := CheckpointPodWith(p, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(seq.Encode(), par.Encode()) {
			t.Fatalf("workers=%d: parallel capture differs from sequential", workers)
		}
	}
}

func TestEncodeParallelByteIdentical(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkBusyPod(t, c, "enc", 0, 5)
	img, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	want := img.EncodeParallel(1)
	for _, workers := range []int{0, 2, 3, 8} {
		if got := img.EncodeParallel(workers); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d: encoding differs", workers)
		}
	}
}

func TestDecodeImageWithParallel(t *testing.T) {
	c := mkCluster(t, 1)
	p := mkBusyPod(t, c, "dec", 0, 5)
	img, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	data := img.Encode()
	want, err := DecodeImageWith(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		got, err := DecodeImageWith(data, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(want.Encode(), got.Encode()) {
			t.Fatalf("workers=%d: decoded image differs", workers)
		}
	}
}

func TestCheckpointPodsSharedPool(t *testing.T) {
	c := mkCluster(t, 2)
	pods := []*pod.Pod{
		mkBusyPod(t, c, "a", 0, 3),
		mkBusyPod(t, c, "b", 1, 1),
		mkBusyPod(t, c, "c", 0, 5),
	}
	imgs, err := CheckpointPods(pods, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != len(pods) {
		t.Fatalf("got %d images for %d pods", len(imgs), len(pods))
	}
	for i, p := range pods {
		want, err := CheckpointPod(p)
		if err != nil {
			t.Fatal(err)
		}
		if imgs[i].PodName != p.Name() {
			t.Fatalf("image %d is for pod %q, want %q", i, imgs[i].PodName, p.Name())
		}
		if !bytes.Equal(want.Encode(), imgs[i].Encode()) {
			t.Fatalf("pod %q: pooled capture differs from sequential", p.Name())
		}
	}
}

func TestCheckpointPodsRejectsRunningPod(t *testing.T) {
	c := mkCluster(t, 1)
	frozen := mkBusyPod(t, c, "f", 0, 2)
	running, err := pod.New("r", c.nodes[0], c.nw, c.fs, nextVIP())
	if err != nil {
		t.Fatal(err)
	}
	running.AddProcess(&worker{Limit: 1000})
	c.w.RunUntil(c.w.Now() + sim.Time(sim.Millisecond))
	if _, err := CheckpointPods([]*pod.Pod{frozen, running}, 4); !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("err = %v, want ErrNotQuiescent", err)
	}
}

func TestFanOutFirstErrorByIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := fanOut(16, workers, func(i int) error {
			switch i {
			case 3:
				return errA
			case 11:
				return errB
			default:
				return nil
			}
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want first error by index", workers, err)
		}
	}
}

func TestFanOutRunsEveryJob(t *testing.T) {
	const n = 100
	hit := make([]bool, n)
	if err := fanOut(n, 7, func(i int) error {
		hit[i] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("job %d never ran", i)
		}
	}
}

func TestNormWorkers(t *testing.T) {
	for _, tc := range []struct{ workers, jobs, want int }{
		{1, 10, 1},
		{4, 2, 2},
		{4, 10, 4},
		{-1, 1, 1},
	} {
		if got := normWorkers(tc.workers, tc.jobs); got != tc.want {
			t.Errorf("normWorkers(%d,%d) = %d, want %d", tc.workers, tc.jobs, got, tc.want)
		}
	}
	if got := normWorkers(0, 1000); got < 1 {
		t.Errorf("normWorkers(0,1000) = %d", got)
	}
}

// FuzzDecodeImage feeds arbitrary bytes to the pod-image and
// delta-record decoders: they must return errors, never panic, and a
// successfully decoded image must re-encode decodably.
func FuzzDecodeImage(f *testing.F) {
	// Seed with genuine records of both kinds.
	c := mkRawCluster(1)
	p, _ := pod.New("seed", c.nodes[0], c.nw, c.fs, 7)
	proc := p.AddProcess(&worker{Limit: 50})
	proc.SetRegion("heap", []byte("0123456789abcdef"))
	c.w.RunUntil(sim.Time(2 * sim.Millisecond))
	rawFreeze(c, p)
	tr := NewTracker()
	fullPend, err := tr.Capture(p, 1, true)
	if err != nil {
		f.Fatal(err)
	}
	fullPend.Commit()
	proc.SetRegion("heap", []byte("fedcba9876543210"))
	deltaPend, err := tr.Capture(p, 1, false)
	if err != nil {
		f.Fatal(err)
	}
	var fullWire, deltaWire bytes.Buffer
	if _, err := fullPend.Stream(&fullWire); err != nil {
		f.Fatal(err)
	}
	if _, err := deltaPend.Stream(&deltaWire); err != nil {
		f.Fatal(err)
	}
	f.Add(fullWire.Bytes())
	f.Add(deltaWire.Bytes())
	// Legacy version-1 records must keep decoding too.
	f.Add(fullPend.Image.Encode())
	f.Add(deltaPend.Delta.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x5a}, 64))
	// A truncated v2 record: every decode path must error, never hang.
	f.Add(fullWire.Bytes()[:fullWire.Len()*2/3])

	f.Fuzz(func(t *testing.T, data []byte) {
		if img, err := DecodeImage(data); err == nil {
			if _, err := DecodeImage(img.Encode()); err != nil {
				t.Fatalf("re-decode of decoded image failed: %v", err)
			}
			var v2 bytes.Buffer
			if _, err := img.EncodeStream(&v2); err != nil {
				t.Fatalf("streaming re-encode failed: %v", err)
			}
			if _, err := DecodeImage(v2.Bytes()); err != nil {
				t.Fatalf("re-decode of streamed image failed: %v", err)
			}
		}
		if d, err := DecodeDelta(data); err == nil {
			if _, err := DecodeDelta(d.Encode()); err != nil {
				t.Fatalf("re-decode of decoded delta failed: %v", err)
			}
			var v2 bytes.Buffer
			if _, err := d.EncodeStream(&v2); err != nil {
				t.Fatalf("streaming re-encode failed: %v", err)
			}
			if _, err := DecodeDelta(v2.Bytes()); err != nil {
				t.Fatalf("re-decode of streamed delta failed: %v", err)
			}
		}
		_, _ = VerifyImage(data)
	})
}

// Benchmarks for the capture+encode pipeline at several pool widths;
// the cmd/zapc-bench trajectory uses the same shape.
func BenchmarkCheckpointEncode(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := mkRawCluster(1)
			p, _ := pod.New("bench", c.nodes[0], c.nw, c.fs, 1)
			for i := 0; i < 8; i++ {
				proc := p.AddProcess(&worker{Limit: 100})
				proc.SetRegion("heap", make([]byte, 256<<10))
			}
			c.w.RunUntil(sim.Time(2 * sim.Millisecond))
			rawFreeze(c, p)
			var bytesOut int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				img, err := CheckpointPodWith(p, workers)
				if err != nil {
					b.Fatal(err)
				}
				bytesOut = int64(len(img.EncodeParallel(workers)))
			}
			b.SetBytes(bytesOut)
		})
	}
}
