package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"zapc/internal/imgfmt"
	"zapc/internal/memfs"
	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// worker is a checkpointable compute program: counts to Limit, touching
// a memory region as it goes.
type worker struct {
	Limit int
	Done  int
}

func (wk *worker) Step(ctx *vos.Context) vos.StepResult {
	if wk.Done >= wk.Limit {
		return vos.Exit(0)
	}
	wk.Done++
	if mem, ok := ctx.Proc().Region("heap"); ok && len(mem) > 0 {
		mem[wk.Done%len(mem)] = byte(wk.Done)
	}
	return vos.Yield(sim.Millisecond)
}
func (wk *worker) Save(e *imgfmt.Encoder) error {
	e.Uint(1, uint64(wk.Limit))
	e.Uint(2, uint64(wk.Done))
	return nil
}
func (wk *worker) Restore(d *imgfmt.Decoder) error {
	l, err := d.Uint(1)
	if err != nil {
		return err
	}
	dn, err := d.Uint(2)
	if err != nil {
		return err
	}
	wk.Limit, wk.Done = int(l), int(dn)
	return nil
}
func (wk *worker) Kind() string { return "ckpttest.worker" }

// producer streams uint32 values 1..Total to a consumer, then shuts
// down its write side.
type producer struct {
	Phase int
	FD    int
	To    netstack.Addr
	Next  uint32
	Total uint32
}

func (p *producer) Step(ctx *vos.Context) vos.StepResult {
	switch p.Phase {
	case 0:
		p.FD = ctx.Socket(netstack.TCP)
		if err := ctx.Connect(p.FD, p.To); err != nil {
			return vos.Exit(1)
		}
		p.Phase = 1
		return vos.Yield(0)
	case 1:
		if ctx.SockState(p.FD) == netstack.StateConnecting {
			return vos.BlockConnect(p.FD)
		}
		if ctx.SockErr(p.FD) != nil {
			return vos.Exit(2)
		}
		p.Phase = 2
		return vos.Yield(0)
	case 2:
		for p.Next <= p.Total {
			var buf [4]byte
			binary.BigEndian.PutUint32(buf[:], p.Next)
			n, err := ctx.Send(p.FD, buf[:], false)
			if errors.Is(err, netstack.ErrWouldBlock) || n == 0 {
				return vos.BlockWrite(p.FD)
			}
			if err != nil {
				return vos.Exit(3)
			}
			p.Next++
		}
		ctx.Shutdown(p.FD, false, true)
		p.Phase = 3
		return vos.Yield(0)
	default:
		ctx.Close(p.FD)
		return vos.Exit(0)
	}
}
func (p *producer) Save(e *imgfmt.Encoder) error {
	e.Uint(1, uint64(p.Phase))
	e.Uint(2, uint64(p.FD))
	e.Uint(3, uint64(p.To.IP))
	e.Uint(4, uint64(p.To.Port))
	e.Uint(5, uint64(p.Next))
	e.Uint(6, uint64(p.Total))
	return nil
}
func (p *producer) Restore(d *imgfmt.Decoder) error {
	vals := make([]uint64, 6)
	for i := range vals {
		v, err := d.Uint(uint64(i + 1))
		if err != nil {
			return err
		}
		vals[i] = v
	}
	p.Phase = int(vals[0])
	p.FD = int(vals[1])
	p.To = netstack.Addr{IP: netstack.IP(vals[2]), Port: netstack.Port(vals[3])}
	p.Next = uint32(vals[4])
	p.Total = uint32(vals[5])
	// A producer checkpointed mid-connect must re-poll rather than
	// assume establishment.
	if p.Phase == 1 {
		p.Phase = 1
	}
	return nil
}
func (p *producer) Kind() string { return "ckpttest.producer" }

// consumer accepts one connection and sums every received uint32 until
// EOF. Partial reads straddle checkpoints, so leftover bytes are state.
type consumer struct {
	Phase   int
	LFD     int
	CFD     int
	Port    netstack.Port
	Sum     uint64
	Partial []byte
	Done    bool
}

func (c *consumer) Step(ctx *vos.Context) vos.StepResult {
	switch c.Phase {
	case 0:
		c.LFD = ctx.Socket(netstack.TCP)
		if err := ctx.Bind(c.LFD, c.Port); err != nil {
			return vos.Exit(1)
		}
		ctx.Listen(c.LFD, 4)
		c.Phase = 1
		return vos.Yield(0)
	case 1:
		fd, err := ctx.Accept(c.LFD)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return vos.BlockRead(c.LFD)
		}
		if err != nil {
			return vos.Exit(2)
		}
		c.CFD = fd
		c.Phase = 2
		return vos.Yield(0)
	case 2:
		data, err := ctx.Recv(c.CFD, 4096, false, false)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return vos.BlockRead(c.CFD)
		}
		if errors.Is(err, netstack.ErrEOF) {
			c.Done = true
			ctx.Close(c.CFD)
			ctx.Close(c.LFD)
			return vos.Exit(0)
		}
		if err != nil {
			return vos.Exit(3)
		}
		c.Partial = append(c.Partial, data...)
		for len(c.Partial) >= 4 {
			c.Sum += uint64(binary.BigEndian.Uint32(c.Partial[:4]))
			c.Partial = c.Partial[4:]
		}
		return vos.Yield(100 * sim.Microsecond)
	default:
		return vos.Exit(9)
	}
}
func (c *consumer) Save(e *imgfmt.Encoder) error {
	e.Uint(1, uint64(c.Phase))
	e.Uint(2, uint64(c.LFD))
	e.Uint(3, uint64(c.CFD))
	e.Uint(4, uint64(c.Port))
	e.Uint(5, c.Sum)
	e.Bytes(6, c.Partial)
	e.Bool(7, c.Done)
	return nil
}
func (c *consumer) Restore(d *imgfmt.Decoder) error {
	ph, err := d.Uint(1)
	if err != nil {
		return err
	}
	lfd, _ := d.Uint(2)
	cfd, _ := d.Uint(3)
	port, _ := d.Uint(4)
	sum, _ := d.Uint(5)
	partial, _ := d.Bytes(6)
	done, err := d.Bool(7)
	if err != nil {
		return err
	}
	c.Phase = int(ph)
	c.LFD = int(lfd)
	c.CFD = int(cfd)
	c.Port = netstack.Port(port)
	c.Sum = sum
	c.Partial = append([]byte(nil), partial...)
	c.Done = done
	return nil
}
func (c *consumer) Kind() string { return "ckpttest.consumer" }

func init() {
	Register("ckpttest.worker", func() vos.Program { return &worker{} })
	Register("ckpttest.producer", func() vos.Program { return &producer{} })
	Register("ckpttest.consumer", func() vos.Program { return &consumer{} })
}

type cluster struct {
	w     *sim.World
	nw    *netstack.Network
	fs    *memfs.FS
	nodes []*vos.Node
}

func mkCluster(t *testing.T, nodes int) *cluster {
	t.Helper()
	w := sim.NewWorld(99)
	c := &cluster{w: w, nw: netstack.NewNetwork(w), fs: memfs.New()}
	for i := 0; i < nodes; i++ {
		c.nodes = append(c.nodes, vos.NewNode(w, "node"+string(rune('A'+i)), 2))
	}
	return c
}

func (c *cluster) drive(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := c.w.Now() + sim.Time(120*sim.Second)
	for !cond() {
		if c.w.Now() > deadline {
			t.Fatal("deadline exceeded")
		}
		if !c.w.Step() {
			if cond() {
				return
			}
			t.Fatal("event queue drained before condition")
		}
	}
}

// freeze suspends pods and blocks their networks, waiting for quiescence.
func (c *cluster) freeze(t *testing.T, pods ...*pod.Pod) {
	t.Helper()
	for _, p := range pods {
		p.Suspend()
		p.BlockNetwork()
	}
	c.drive(t, func() bool {
		for _, p := range pods {
			if !p.Quiescent() {
				return false
			}
		}
		return true
	})
}

func TestRegistry(t *testing.T) {
	if _, err := NewProgram("no.such.kind"); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("err = %v", err)
	}
	p, err := NewProgram("ckpttest.worker")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != "ckpttest.worker" {
		t.Fatal("wrong kind")
	}
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	c := mkCluster(t, 1)
	p, _ := pod.New("p", c.nodes[0], c.nw, c.fs, 1)
	p.AddProcess(&worker{Limit: 1000})
	c.w.RunUntil(sim.Time(5 * sim.Millisecond))
	p.BlockNetwork()
	if _, err := CheckpointPod(p); !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("err = %v", err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	c := mkCluster(t, 1)
	p, _ := pod.New("p", c.nodes[0], c.nw, c.fs, 1)
	proc := p.AddProcess(&worker{Limit: 500})
	c.w.RunUntil(sim.Time(5 * sim.Millisecond))
	proc.SetRegion("heap", []byte{1, 2, 3, 4, 5})
	c.freeze(t, p)
	img, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	data := img.Encode()
	got, err := DecodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.PodName != "p" || got.VIP != 1 || len(got.Procs) != 1 {
		t.Fatalf("decoded: %+v", got)
	}
	pi := got.Procs[0]
	if pi.VPID != 1 || pi.Kind != "ckpttest.worker" || len(pi.Regions) != 1 {
		t.Fatalf("proc image: %+v", pi)
	}
	if string(pi.Regions[0].Data) != string([]byte{1, 2, 3, 4, 5}) {
		t.Fatal("region data corrupted")
	}
	var v2 bytes.Buffer
	st, err := img.EncodeStream(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if int64(v2.Len()) != st.Bytes {
		t.Fatalf("streamed record is %d bytes, stats say %d", v2.Len(), st.Bytes)
	}
	if img.Bytes() != st.Raw {
		t.Fatalf("Bytes() = %d, logical stream size is %d", img.Bytes(), st.Raw)
	}
	if st.Raw < st.Bytes-64 {
		t.Fatalf("logical size %d below wire size %d", st.Raw, st.Bytes)
	}
	if img.MemoryBytes() < 5 {
		t.Fatal("MemoryBytes too small")
	}
}

func TestComputeRestoreContinues(t *testing.T) {
	c := mkCluster(t, 2)
	p, _ := pod.New("p", c.nodes[0], c.nw, c.fs, 1)
	wk := &worker{Limit: 100}
	proc := p.AddProcess(wk)
	proc.SetRegion("heap", make([]byte, 4096))
	c.w.RunUntil(sim.Time(30 * sim.Millisecond)) // ~30 steps in
	c.freeze(t, p)
	if wk.Done == 0 || wk.Done >= wk.Limit {
		t.Fatalf("awkward checkpoint point: %d", wk.Done)
	}
	doneAt := wk.Done
	img, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	data := img.Encode()
	p.Destroy()

	img2, err := DecodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := netckpt.PlanRestart(map[netstack.IP]*netckpt.NetImage{img2.VIP: img2.Net})
	if err != nil {
		t.Fatal(err)
	}
	var newPod *pod.Pod
	RestorePod(img2, "p-restored", c.nodes[1], c.nw, c.fs, plans[img2.VIP], func(np *pod.Pod, err error) {
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		newPod = np
	})
	c.drive(t, func() bool { return newPod != nil })
	// Restored program state picked up where it left off.
	np, ok := newPod.Lookup(1)
	if !ok {
		t.Fatal("vpid 1 missing after restore")
	}
	nw2 := np.Prog.(*worker)
	if nw2.Done != doneAt {
		t.Fatalf("restored Done = %d, want %d", nw2.Done, doneAt)
	}
	if mem, ok := np.Region("heap"); !ok || len(mem) != 4096 {
		t.Fatal("heap region not restored")
	}
	newPod.Resume()
	c.drive(t, func() bool { return nw2.Done == nw2.Limit })
}

func TestDistributedStreamEquivalence(t *testing.T) {
	const total = 5000
	want := uint64(total) * uint64(total+1) / 2

	// Reference: uninterrupted run.
	ref := runStream(t, total, false)
	if ref != want {
		t.Fatalf("reference sum = %d, want %d", ref, want)
	}
	// Checkpointed + migrated run must agree exactly.
	got := runStream(t, total, true)
	if got != want {
		t.Fatalf("checkpointed sum = %d, want %d", got, want)
	}
}

// runStream runs the producer/consumer pair on two pods; if interrupt is
// set, both pods are checkpointed mid-stream, destroyed, and restored on
// different nodes.
func runStream(t *testing.T, total uint32, interrupt bool) uint64 {
	t.Helper()
	c := mkCluster(t, 4)
	podA, _ := pod.New("prod", c.nodes[0], c.nw, c.fs, 1)
	podB, _ := pod.New("cons", c.nodes[1], c.nw, c.fs, 2)
	prod := &producer{To: netstack.Addr{IP: 2, Port: 7777}, Next: 1, Total: total}
	cons := &consumer{Port: 7777}
	podA.AddProcess(prod)
	podB.AddProcess(cons)

	if interrupt {
		// Let roughly half the stream flow.
		c.drive(t, func() bool { return cons.Sum > 0 && prod.Next > total/2 })
		c.freeze(t, podA, podB)
		imgA, err := CheckpointPod(podA)
		if err != nil {
			t.Fatal(err)
		}
		imgB, err := CheckpointPod(podB)
		if err != nil {
			t.Fatal(err)
		}
		// Serialize through the portable format, as a real migration
		// would.
		bytesA, bytesB := imgA.Encode(), imgB.Encode()
		podA.Destroy()
		podB.Destroy()

		imgA2, err := DecodeImage(bytesA)
		if err != nil {
			t.Fatal(err)
		}
		imgB2, err := DecodeImage(bytesB)
		if err != nil {
			t.Fatal(err)
		}
		plans, err := netckpt.PlanRestart(map[netstack.IP]*netckpt.NetImage{
			imgA2.VIP: imgA2.Net, imgB2.VIP: imgB2.Net,
		})
		if err != nil {
			t.Fatal(err)
		}
		restored := 0
		var pods []*pod.Pod
		fail := func(err error) { t.Fatalf("restore: %v", err) }
		RestorePod(imgA2, "prod2", c.nodes[2], c.nw, c.fs, plans[imgA2.VIP], func(np *pod.Pod, err error) {
			if err != nil {
				fail(err)
			}
			restored++
			pods = append(pods, np)
		})
		RestorePod(imgB2, "cons2", c.nodes[3], c.nw, c.fs, plans[imgB2.VIP], func(np *pod.Pod, err error) {
			if err != nil {
				fail(err)
			}
			restored++
			pods = append(pods, np)
		})
		c.drive(t, func() bool { return restored == 2 })
		// The restored program objects are new instances.
		for _, np := range pods {
			if proc, ok := np.Lookup(1); ok {
				switch pg := proc.Prog.(type) {
				case *producer:
					prod = pg
				case *consumer:
					cons = pg
				}
			}
			np.Resume()
		}
	}
	c.drive(t, func() bool { return cons.Done })
	return cons.Sum
}

func TestRestoreUnknownProgramFails(t *testing.T) {
	c := mkCluster(t, 1)
	img := &Image{
		PodName: "x", VIP: 5,
		Net:   &netckpt.NetImage{PodIP: 5},
		Procs: []ProcImage{{VPID: 1, Kind: "never.registered", ProgData: imgfmt.NewEncoder().Finish()}},
	}
	plan := &netckpt.EndpointPlan{PodIP: 5}
	var gotErr error
	done := false
	RestorePod(img, "x2", c.nodes[0], c.nw, c.fs, plan, func(np *pod.Pod, err error) {
		gotErr = err
		done = true
	})
	c.drive(t, func() bool { return done })
	if !errors.Is(gotErr, ErrUnknownProgram) {
		t.Fatalf("err = %v", gotErr)
	}
	// The failed pod must not leak its VIP.
	if _, ok := c.nw.Stack(5); ok {
		t.Fatal("failed restore leaked stack")
	}
}

func TestVirtualTimeContinuity(t *testing.T) {
	c := mkCluster(t, 2)
	p, _ := pod.New("p", c.nodes[0], c.nw, c.fs, 1)
	p.AddProcess(&worker{Limit: 1 << 30})
	c.w.RunUntil(sim.Time(40 * sim.Millisecond))
	c.freeze(t, p)
	img, _ := CheckpointPod(p)
	vAtCkpt := img.VirtualTime
	p.Destroy()
	// A long outage elapses before restart.
	c.w.RunUntil(c.w.Now() + sim.Time(10*sim.Second))
	plans, _ := netckpt.PlanRestart(map[netstack.IP]*netckpt.NetImage{img.VIP: img.Net})
	var np *pod.Pod
	RestorePod(img, "p2", c.nodes[1], c.nw, c.fs, plans[img.VIP], func(q *pod.Pod, err error) {
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		np = q
	})
	c.drive(t, func() bool { return np != nil })
	if got := np.VirtualNow(); got != vAtCkpt {
		t.Fatalf("virtual clock = %v, want %v (gap must be hidden)", got, vAtCkpt)
	}
}
