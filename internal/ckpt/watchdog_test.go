package ckpt

import (
	"testing"

	"zapc/internal/imgfmt"
	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// watchdog models the §5 motivation for time virtualization: an
// application-level timeout that inspects time-stamps periodically and
// triggers (here: exits with failure) if the last activity is older
// than a threshold — the pattern used to detect soft faults, expire
// idle connections, or build reliability over UDP.
type watchdog struct {
	Last      sim.Time // last "activity" timestamp (application-visible time)
	Threshold sim.Duration
	Ticks     int
	MaxTicks  int
	Fired     bool
}

func (wd *watchdog) Step(ctx *vos.Context) vos.StepResult {
	now := ctx.Now()
	if wd.Last != 0 && sim.Duration(now-wd.Last) > wd.Threshold {
		wd.Fired = true
		return vos.Exit(1)
	}
	wd.Last = now
	wd.Ticks++
	if wd.Ticks >= wd.MaxTicks {
		return vos.Exit(0)
	}
	return vos.Sleep(10 * sim.Millisecond)
}
func (wd *watchdog) Save(e *imgfmt.Encoder) error {
	e.Int(1, int64(wd.Last))
	e.Int(2, int64(wd.Threshold))
	e.Int(3, int64(wd.Ticks))
	e.Int(4, int64(wd.MaxTicks))
	e.Bool(5, wd.Fired)
	return nil
}
func (wd *watchdog) Restore(d *imgfmt.Decoder) error {
	last, err := d.Int(1)
	if err != nil {
		return err
	}
	thr, err := d.Int(2)
	if err != nil {
		return err
	}
	ticks, err := d.Int(3)
	if err != nil {
		return err
	}
	maxT, err := d.Int(4)
	if err != nil {
		return err
	}
	wd.Last = sim.Time(last)
	wd.Threshold = sim.Duration(thr)
	wd.Ticks = int(ticks)
	wd.MaxTicks = int(maxT)
	wd.Fired, err = d.Bool(5)
	return err
}
func (wd *watchdog) Kind() string { return "ckpttest.watchdog" }

func init() {
	Register("ckpttest.watchdog", func() vos.Program { return &watchdog{} })
}

// runWatchdogAcrossGap checkpoints a watchdog-carrying pod, waits out a
// long outage, restores it, and optionally disables the pod's time
// virtualization afterwards. It reports whether the watchdog falsely
// fired.
func runWatchdogAcrossGap(t *testing.T, virtualize bool) bool {
	t.Helper()
	c := mkCluster(t, 2)
	p, _ := pod.New("wd", c.nodes[0], c.nw, c.fs, 1)
	wd := &watchdog{Threshold: 100 * sim.Millisecond, MaxTicks: 50}
	p.AddProcess(wd)
	c.w.RunUntil(sim.Time(120 * sim.Millisecond)) // ~12 healthy ticks
	c.freeze(t, p)
	img, err := CheckpointPod(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Destroy()

	// A ten-second outage: far beyond the watchdog threshold.
	c.w.RunUntil(c.w.Now() + sim.Time(10*sim.Second))

	plans, err := netckpt.PlanRestart(map[netstack.IP]*netckpt.NetImage{img.VIP: img.Net})
	if err != nil {
		t.Fatal(err)
	}
	var np *pod.Pod
	RestorePod(img, "wd2", c.nodes[1], c.nw, c.fs, plans[img.VIP], func(q *pod.Pod, err error) {
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		np = q
	})
	c.drive(t, func() bool { return np != nil })
	if !virtualize {
		// The paper notes virtualization is optional per application;
		// exposing the real clock reveals the outage to the watchdog.
		np.SetTimeBias(c.w.Now())
	}
	proc, _ := np.Lookup(1)
	nwd := proc.Prog.(*watchdog)
	np.Resume()
	c.drive(t, func() bool { return nwd.Fired || nwd.Ticks >= nwd.MaxTicks })
	return nwd.Fired
}

// TestTimeVirtualizationPreventsFalseTimeout is the paper's §5 scenario:
// with the pod clock biased to resume from the checkpoint value, the
// application's timeout logic never observes the outage.
func TestTimeVirtualizationPreventsFalseTimeout(t *testing.T) {
	if fired := runWatchdogAcrossGap(t, true); fired {
		t.Fatal("watchdog fired despite time virtualization")
	}
}

// TestWithoutVirtualizationTimeoutFires is the counterfactual: an
// application that sees absolute time observes the gap and trips —
// demonstrating why the bias exists (and why the paper makes it
// optional for apps that genuinely need wall-clock time).
func TestWithoutVirtualizationTimeoutFires(t *testing.T) {
	if fired := runWatchdogAcrossGap(t, false); !fired {
		t.Fatal("watchdog did not fire with virtualization disabled")
	}
}
