package ckpt

import (
	"fmt"
	"runtime"
	"sync"

	"zapc/internal/imgfmt"
	"zapc/internal/pod"
)

// DefaultWorkers is the worker-pool width used when a caller passes 0:
// one worker per host CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// normWorkers clamps a requested pool width to [1, jobs].
func normWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// fanOut runs fn(0..n-1) across a bounded pool of at most workers
// goroutines and returns the first error (by index order). Results must
// be written to index-addressed slots by fn, which keeps the output
// deterministic regardless of scheduling. With one worker (or one job)
// everything runs inline on the calling goroutine.
//
// The checkpointed state is immutable while fanOut runs — the
// coordinated freeze suspends every process and blocks the pod's
// network before serialization starts — so workers share nothing but
// their output slots.
func fanOut(n, workers int, fn func(int) error) error {
	if n == 0 {
		return nil
	}
	workers = normWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CheckpointPodWith saves a suspended pod like CheckpointPod, fanning
// the per-process serialization (program state, memory regions,
// descriptor bindings) across a bounded worker pool. workers <= 0
// selects DefaultWorkers. The output is byte-identical to the
// sequential walk.
func CheckpointPodWith(p *pod.Pod, workers int) (*Image, error) {
	img, procs, slotOf, err := beginCheckpoint(p)
	if err != nil {
		return nil, err
	}
	pis := make([]ProcImage, len(procs))
	if err := fanOut(len(procs), workers, func(i int) error {
		pi, err := captureProc(procs[i], slotOf)
		if err != nil {
			return err
		}
		pis[i] = pi
		return nil
	}); err != nil {
		return nil, err
	}
	img.Procs = pis
	sortProcs(img.Procs)
	return img, nil
}

// CheckpointPods checkpoints several frozen pods through one shared
// bounded worker pool: the processes of all pods are flattened into a
// single job list so the pool stays busy even when pod sizes are
// uneven. Images are returned in input order.
func CheckpointPods(pods []*pod.Pod, workers int) ([]*Image, error) {
	type job struct{ pod, proc int }
	images := make([]*Image, len(pods))
	procTables := make([][]procRef, len(pods))
	slotTables := make([]map[sockRef]int, len(pods))
	results := make([][]ProcImage, len(pods))
	var jobs []job
	for pi, p := range pods {
		img, procs, slotOf, err := beginCheckpoint(p)
		if err != nil {
			return nil, err
		}
		images[pi] = img
		procTables[pi] = procs
		slotTables[pi] = slotOf
		results[pi] = make([]ProcImage, len(procs))
		for qi := range procs {
			jobs = append(jobs, job{pi, qi})
		}
	}
	if err := fanOut(len(jobs), workers, func(i int) error {
		j := jobs[i]
		pi, err := captureProc(procTables[j.pod][j.proc], slotTables[j.pod])
		if err != nil {
			return err
		}
		results[j.pod][j.proc] = pi
		return nil
	}); err != nil {
		return nil, err
	}
	for pi := range images {
		images[pi].Procs = results[pi]
		sortProcs(images[pi].Procs)
	}
	return images, nil
}

// EncodeParallel serializes the image like Encode, encoding each
// process section on the worker pool and splicing the bodies in process
// order, so the result is byte-identical to the sequential encoding.
func (img *Image) EncodeParallel(workers int) []byte {
	e := imgfmt.NewEncoder()
	e.String(tagPodName, img.PodName)
	e.Uint(tagVIP, uint64(img.VIP))
	e.Int(tagVTime, int64(img.VirtualTime))
	e.Begin(tagNet)
	img.Net.Encode(e)
	e.End()
	bodies := make([][]byte, len(img.Procs))
	_ = fanOut(len(img.Procs), workers, func(i int) error {
		se := imgfmt.NewSectionEncoder()
		encodeProcBody(se, img.Procs[i])
		bodies[i] = se.Body()
		return nil
	})
	for _, b := range bodies {
		e.RawSection(tagProc, b)
	}
	return e.Finish()
}

// DecodeImageWith parses a serialized pod image of either format
// version. A version-1 image decodes its process sections on a bounded
// worker pool (the restart path's mirror of CheckpointPodWith); a
// version-2 image decodes through the chunk-verifying stream walk.
// workers <= 0 selects DefaultWorkers.
func DecodeImageWith(data []byte, workers int) (*Image, error) {
	ver, delta, err := imgfmt.SniffVersion(data)
	if err != nil {
		return nil, err
	}
	if delta {
		return nil, fmt.Errorf("%w: delta record where pod image expected", imgfmt.ErrBadMagic)
	}
	if ver == imgfmt.Version {
		return decodeImageV1(data, workers)
	}
	sd, err := imgfmt.DecodeStream(data)
	if err != nil {
		return nil, err
	}
	return decodeImageV2(sd)
}

func decodeImageV1(data []byte, workers int) (*Image, error) {
	img, secs, err := decodeImageHeader(data)
	if err != nil {
		return nil, err
	}
	pis := make([]ProcImage, len(secs))
	if err := fanOut(len(secs), workers, func(i int) error {
		p, err := decodeProc(secs[i])
		if err != nil {
			return err
		}
		pis[i] = p
		return nil
	}); err != nil {
		return nil, err
	}
	img.Procs = pis
	return img, nil
}
