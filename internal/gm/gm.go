// Package gm prototypes the paper's §5 extension of ZapC to
// kernel-bypass, user-level networking (Myrinet with the GM library):
// applications map the NIC directly and the kernel never sees the data
// path, so the socket-based network checkpoint cannot capture it. The
// paper states the approach extends to such environments if two
// requirements are met:
//
//  1. the communication library is decoupled from the device-driver
//     instance by virtualizing the relevant interface (interposing on
//     ioctl and the device memory mapping), and
//  2. there is a way to extract the state kept by the device driver and
//     reinstate it on another device.
//
// This package demonstrates both on the virtual cluster: a Device is a
// NIC-resident endpoint with ports and send/receive rings living
// outside any socket; a Library speaks to its device exclusively
// through a virtualized Handle (requirement 1), so a restored
// application transparently talks to the replacement device; and
// Extract/Reinstate capture and restore complete driver state
// (requirement 2), with unacknowledged ring entries retransmitted by
// the reliable fabric layer after reinstatement.
//
// The prototype is deliberately self-contained — it is the paper's
// sketched extension, not part of the core contribution — but it runs
// against the same simulated interconnect and the same freeze semantics
// as the rest of the system.
package gm

import (
	"errors"
	"fmt"
	"sort"

	"zapc/internal/sim"
)

// Errors.
var (
	ErrPortInUse  = errors.New("gm: port already open")
	ErrNoPort     = errors.New("gm: port not open")
	ErrWouldBlock = errors.New("gm: no message pending")
	ErrDetached   = errors.New("gm: device detached")
	ErrBadNode    = errors.New("gm: unknown node id")
	ErrRingFull   = errors.New("gm: send ring full")
)

// NodeID addresses a device on the Myrinet-like fabric.
type NodeID int

// Message is one user-level message.
type Message struct {
	From NodeID
	Port int
	Data []byte
	Seq  uint64
}

// Fabric is the lossless, in-order interconnect (Myrinet-like: link
// level flow control, no drops). Devices attach under a NodeID.
type Fabric struct {
	w       *sim.World
	devices map[NodeID]*Device
	latency sim.Duration
}

// NewFabric creates an empty fabric on the given world.
func NewFabric(w *sim.World) *Fabric {
	return &Fabric{w: w, devices: make(map[NodeID]*Device), latency: 10 * sim.Microsecond}
}

// Attach creates a device at the given node id.
func (f *Fabric) Attach(id NodeID) (*Device, error) {
	if _, ok := f.devices[id]; ok {
		return nil, fmt.Errorf("gm: node %d already attached", id)
	}
	d := &Device{fabric: f, id: id, ports: make(map[int]*ring)}
	f.devices[id] = d
	return d, nil
}

// Detach removes a device (pod migrating away). In-flight DMA toward it
// is dropped by the fabric; the sender's unacked ring entries survive
// and are replayed after reinstatement.
func (f *Fabric) Detach(d *Device) {
	if f.devices[d.id] == d {
		delete(f.devices, d.id)
	}
	d.detached = true
}

// ring is the per-port driver state: a bounded send ring retaining
// unacknowledged entries and an in-order receive ring.
type ring struct {
	sendQ   []Message // unacknowledged sends, oldest first
	recvQ   []Message
	sendSeq uint64            // next sequence to assign
	recvSeq map[NodeID]uint64 // next expected per source (exactly-once)
}

const sendRingSize = 64

// Device is the NIC-resident endpoint state the kernel never sees.
type Device struct {
	fabric   *Fabric
	id       NodeID
	ports    map[int]*ring
	detached bool
	notify   func()
}

// ID returns the device's fabric address.
func (d *Device) ID() NodeID { return d.id }

// SetNotify registers a wakeup callback fired when a message arrives.
func (d *Device) SetNotify(fn func()) { d.notify = fn }

func (d *Device) open(port int) error {
	if _, ok := d.ports[port]; ok {
		return ErrPortInUse
	}
	d.ports[port] = &ring{recvSeq: make(map[NodeID]uint64)}
	return nil
}

func (d *Device) send(port int, to NodeID, data []byte) error {
	if d.detached {
		return ErrDetached
	}
	r, ok := d.ports[port]
	if !ok {
		return ErrNoPort
	}
	if len(r.sendQ) >= sendRingSize {
		return ErrRingFull
	}
	m := Message{From: d.id, Port: port, Data: append([]byte(nil), data...), Seq: r.sendSeq}
	r.sendSeq++
	r.sendQ = append(r.sendQ, m)
	d.transmit(to, port, m)
	return nil
}

func (d *Device) transmit(to NodeID, port int, m Message) {
	d.fabric.w.After(d.fabric.latency+sim.Duration(len(m.Data))*4, func() {
		dst, ok := d.fabric.devices[to]
		if !ok || dst.detached {
			return // dropped; replayed after reinstatement
		}
		dst.deliver(port, m)
		// Link-level ack: trim the sender's ring.
		src, ok := d.fabric.devices[m.From]
		if ok {
			src.acked(port, m.Seq)
		}
	})
}

func (d *Device) deliver(port int, m Message) {
	r, ok := d.ports[port]
	if !ok {
		return
	}
	// Exactly-once, in-order per source.
	if m.Seq < r.recvSeq[m.From] {
		return // duplicate from a replay
	}
	r.recvSeq[m.From] = m.Seq + 1
	r.recvQ = append(r.recvQ, m)
	if d.notify != nil {
		d.notify()
	}
}

// acked removes exactly the acknowledged entry (selective ack: the ring
// interleaves messages to different destinations, and only this one is
// known delivered).
func (d *Device) acked(port int, seq uint64) {
	r, ok := d.ports[port]
	if !ok {
		return
	}
	for i, m := range r.sendQ {
		if m.Seq == seq {
			r.sendQ = append(r.sendQ[:i], r.sendQ[i+1:]...)
			return
		}
	}
}

func (d *Device) recv(port int) (Message, error) {
	r, ok := d.ports[port]
	if !ok {
		return Message{}, ErrNoPort
	}
	if len(r.recvQ) == 0 {
		return Message{}, ErrWouldBlock
	}
	m := r.recvQ[0]
	r.recvQ = r.recvQ[1:]
	return m, nil
}

// Handle is the virtualized device interface (requirement 1): the
// library's only path to the hardware. The pod layer can swap the
// underlying device at restart without the library noticing — the
// analog of interposing on ioctl and remapping device memory.
type Handle struct {
	dev *Device
}

// NewHandle wraps a device.
func NewHandle(d *Device) *Handle { return &Handle{dev: d} }

// Rebind points the handle at a replacement device (migration restart).
func (h *Handle) Rebind(d *Device) { h.dev = d }

// Device exposes the current binding (for state extraction).
func (h *Handle) Device() *Device { return h.dev }

// Library is the GM-like user-level communication library. It is
// checkpoint-oblivious: all calls route through the virtualized handle.
type Library struct {
	h *Handle
}

// NewLibrary opens the library over a handle.
func NewLibrary(h *Handle) *Library { return &Library{h: h} }

// Open claims a port on the device.
func (l *Library) Open(port int) error { return l.h.dev.open(port) }

// Send posts a message directly to the device send ring (no kernel).
func (l *Library) Send(port int, to NodeID, data []byte) error {
	return l.h.dev.send(port, to, data)
}

// Recv polls the port's receive ring.
func (l *Library) Recv(port int) (Message, error) { return l.h.dev.recv(port) }

// DevImage is the extracted driver state (requirement 2).
type DevImage struct {
	Node  NodeID
	Ports []PortImage
}

// PortImage is one port's rings and sequence state.
type PortImage struct {
	Port    int
	SendQ   []Message
	RecvQ   []Message
	SendSeq uint64
	RecvSeq map[NodeID]uint64
}

// Extract captures the complete driver state of a (quiesced) device.
func Extract(d *Device) *DevImage {
	img := &DevImage{Node: d.id}
	ports := make([]int, 0, len(d.ports))
	for p := range d.ports {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, p := range ports {
		r := d.ports[p]
		pi := PortImage{Port: p, SendSeq: r.sendSeq, RecvSeq: make(map[NodeID]uint64, len(r.recvSeq))}
		pi.SendQ = append(pi.SendQ, r.sendQ...)
		pi.RecvQ = append(pi.RecvQ, r.recvQ...)
		for k, v := range r.recvSeq {
			pi.RecvSeq[k] = v
		}
		img.Ports = append(img.Ports, pi)
	}
	return img
}

// Reinstate loads extracted state into a fresh device and replays the
// unacknowledged send rings toward their destinations (the fabric's
// exactly-once sequence filter discards anything the peer already
// received — the Figure 4 overlap argument, one layer down).
func Reinstate(d *Device, img *DevImage, destOf func(Message) NodeID) error {
	if d.id != img.Node {
		return fmt.Errorf("gm: reinstating node %d state on device %d", img.Node, d.id)
	}
	for _, pi := range img.Ports {
		if err := d.open(pi.Port); err != nil {
			return err
		}
		r := d.ports[pi.Port]
		r.sendSeq = pi.SendSeq
		r.sendQ = append(r.sendQ, pi.SendQ...)
		r.recvQ = append(r.recvQ, pi.RecvQ...)
		for k, v := range pi.RecvSeq {
			r.recvSeq[k] = v
		}
		for _, m := range pi.SendQ {
			d.transmit(destOf(m), pi.Port, m)
		}
	}
	if d.notify != nil {
		d.notify()
	}
	return nil
}
