package gm

import (
	"errors"
	"fmt"
	"testing"

	"zapc/internal/sim"
)

func setup(t *testing.T, nodes int) (*sim.World, *Fabric, []*Device, []*Library) {
	t.Helper()
	w := sim.NewWorld(17)
	f := NewFabric(w)
	devs := make([]*Device, nodes)
	libs := make([]*Library, nodes)
	for i := range devs {
		d, err := f.Attach(NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
		libs[i] = NewLibrary(NewHandle(d))
		if err := libs[i].Open(1); err != nil {
			t.Fatal(err)
		}
	}
	return w, f, devs, libs
}

func TestUserLevelSendRecv(t *testing.T) {
	w, _, _, libs := setup(t, 2)
	if err := libs[0].Send(1, 1, []byte("bypass")); err != nil {
		t.Fatal(err)
	}
	w.Run()
	m, err := libs[1].Recv(1)
	if err != nil || string(m.Data) != "bypass" || m.From != 0 {
		t.Fatalf("m = %+v, %v", m, err)
	}
	if _, err := libs[1].Recv(1); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty recv: %v", err)
	}
}

func TestPortValidation(t *testing.T) {
	_, _, _, libs := setup(t, 1)
	if err := libs[0].Open(1); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("double open: %v", err)
	}
	if err := libs[0].Send(9, 0, nil); !errors.Is(err, ErrNoPort) {
		t.Fatalf("send on closed port: %v", err)
	}
	if _, err := libs[0].Recv(9); !errors.Is(err, ErrNoPort) {
		t.Fatalf("recv on closed port: %v", err)
	}
}

func TestSendRingBackpressure(t *testing.T) {
	w, f, devs, libs := setup(t, 2)
	// Detach the receiver so nothing is ever acknowledged.
	f.Detach(devs[1])
	var err error
	n := 0
	for ; n < sendRingSize+10; n++ {
		if err = libs[0].Send(1, 1, []byte{byte(n)}); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrRingFull) || n != sendRingSize {
		t.Fatalf("ring accepted %d entries, err=%v", n, err)
	}
	_ = w
}

// TestMigrationReplay is the §5 extension end-to-end: a device with
// unacknowledged sends and pending receives is extracted, destroyed,
// reattached at the same node id, reinstated, and the library —
// unmodified, still holding the same virtualized Handle — sees every
// message exactly once.
func TestMigrationReplay(t *testing.T) {
	w, f, devs, libs := setup(t, 3)

	// Node 0 sends to 1 and 2; node 1's device vanishes mid-flight so
	// some messages stay unacknowledged in 0's send ring.
	f.Detach(devs[1])
	for i := 0; i < 5; i++ {
		if err := libs[0].Send(1, 1, []byte{0x10 + byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := libs[0].Send(1, 2, []byte{0x20 + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Run()
	// Node 2 already received its five messages; node 1 received none.
	got2 := drain(libs[2])
	if len(got2) != 5 {
		t.Fatalf("node2 got %d", len(got2))
	}

	// Quiesce + checkpoint node 0's driver state (with five unacked
	// entries toward node 1) and node 1's (empty, device gone — imagine
	// it was extracted before the migration).
	img0 := Extract(devs[0])
	if len(img0.Ports[0].SendQ) != 5 {
		t.Fatalf("unacked ring = %d", len(img0.Ports[0].SendQ))
	}
	// Destroy and re-create node 0's device too (full migration).
	f.Detach(devs[0])
	newDev0, err := f.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	newDev1, err := f.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	// The library keeps its handle; the pod layer rebinds it
	// (requirement 1: virtualized interface).
	libs[0].h.Rebind(newDev0)
	libs[1].h.Rebind(newDev1)
	if err := newDev1.open(1); err != nil { // node 1 restores its (empty) port
		t.Fatal(err)
	}
	// Requirement 2: reinstate driver state; unacked entries replay.
	if err := Reinstate(newDev0, img0, func(m Message) NodeID { return 1 }); err != nil {
		t.Fatal(err)
	}
	w.Run()
	got1 := drain(libs[1])
	if len(got1) != 5 {
		t.Fatalf("node1 got %d after replay", len(got1))
	}
	for i, m := range got1 {
		if m.Data[0] != 0x10+byte(i) {
			t.Fatalf("out of order or corrupted: %x at %d", m.Data, i)
		}
	}
	// The library still works over the rebound handle.
	if err := libs[0].Send(1, 1, []byte("post")); err != nil {
		t.Fatal(err)
	}
	w.Run()
	if m, err := libs[1].Recv(1); err != nil || string(m.Data) != "post" {
		t.Fatalf("post-migration send: %v %v", m, err)
	}
}

// TestReplayExactlyOnce: if the receiver had already gotten some of the
// replayed messages before the checkpoint (the ack was lost to the
// freeze), the sequence filter suppresses duplicates — the kernel-bypass
// analog of the Figure 4 overlap discard.
func TestReplayExactlyOnce(t *testing.T) {
	w, f, devs, libs := setup(t, 2)
	for i := 0; i < 3; i++ {
		libs[0].Send(1, 1, []byte{byte(i)})
	}
	w.Run()
	// Receiver has all three; sender's ring is empty (acked). Fake the
	// paper's race: pretend acks were lost by re-adding entries, then
	// extract and replay.
	img := Extract(devs[0])
	img.Ports[0].SendQ = []Message{
		{From: 0, Port: 1, Data: []byte{1}, Seq: 1},
		{From: 0, Port: 1, Data: []byte{2}, Seq: 2},
	}
	f.Detach(devs[0])
	nd, _ := f.Attach(0)
	libs[0].h.Rebind(nd)
	if err := Reinstate(nd, img, func(Message) NodeID { return 1 }); err != nil {
		t.Fatal(err)
	}
	w.Run()
	got := drain(libs[1])
	if len(got) != 3 {
		t.Fatalf("duplicates delivered: %d messages", len(got))
	}
}

func TestExtractIsDeterministic(t *testing.T) {
	_, _, devs, libs := setup(t, 1)
	for p := 2; p <= 5; p++ {
		libs[0].Open(p)
	}
	a := Extract(devs[0])
	b := Extract(devs[0])
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("extraction not deterministic")
	}
	if len(a.Ports) != 5 {
		t.Fatalf("ports = %d", len(a.Ports))
	}
}

func drain(l *Library) []Message {
	var out []Message
	for {
		m, err := l.Recv(1)
		if err != nil {
			return out
		}
		out = append(out, m)
	}
}
