package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the causal analysis layer over the deterministic trace
// stream: it reconstructs the span DAG from an event log and computes
// the critical path of coordinated operations — the single slowest
// chain of nested spans that determined the wall time of a checkpoint
// cycle, a suspend window, or a failover. The paper's headline numbers
// are windows of unavailability; a scalar window says nothing about
// *where* the time went. The analyzer decomposes each window into
// named, attributed segments whose durations sum exactly to the window,
// so a regression in any figure can be pinned to the coord-tree level,
// agent, serialize lane, or supervisor phase that stretched.
//
// Everything here is pure: it consumes []Event (from a live Tracer or
// ReadJSONL) and produces deterministic structures and byte-identical
// text renderings for a given log. No clock, no host state.

// SpanNode is one reconstructed span of the DAG.
type SpanNode struct {
	ID    uint64
	Name  string
	Track string
	Start int64
	End   int64
	// Args merges begin- and end-event annotations (end wins on
	// collision).
	Args map[string]string
	// Parent is the causal parent: the explicit Par link when the span
	// had one, otherwise the adopting container (see Adopted). Nil for
	// top-level spans.
	Parent *SpanNode
	// Children are causally nested spans, ordered by (Start, emission).
	Children []*SpanNode
	// Dangling marks a span that was opened but never closed — an abort
	// tore the operation down mid-flight, or the trace ends inside it.
	// Its End is pinned to the last timestamp in the log.
	Dangling bool
	// Adopted marks a span recorded without an explicit parent that the
	// DAG builder nested under its tightest containing span. Root spans
	// of separate subsystems (core restart under a supervisor failover)
	// become causally linked this way.
	Adopted bool

	beginIdx int // emission index of the begin event, for determinism
}

// Dur returns the span duration (0 for instant-like spans).
func (s *SpanNode) Dur() int64 { return s.End - s.Start }

// DAG is the reconstructed span graph of one trace.
type DAG struct {
	// Top holds the top-level spans (no parent even after containment
	// adoption), in emission order.
	Top []*SpanNode
	// Spans holds every span in emission order.
	Spans []*SpanNode
	// ByID indexes spans by span id.
	ByID map[uint64]*SpanNode
	// Instants holds the zero-duration events in emission order.
	Instants []Event
	// OrphanEnds are end events whose begin never appeared (a truncated
	// log read from mid-stream).
	OrphanEnds []Event
	// EndT is the largest timestamp in the log; dangling spans are
	// clamped to it.
	EndT int64
}

// BuildDAG reconstructs the span DAG from an event log.
//
// Two linking rules apply. Spans carrying an explicit parent id nest
// under it. Spans recorded as roots are then adopted by containment:
// a root span whose [Start, End] lies inside an earlier-opened span's
// interval becomes a child of the tightest such container. Adoption is
// what stitches separately-rooted subsystems into one causal story —
// the supervisor opens `supervisor/failover`, and the core restart it
// triggers opens a root `restart/coordinated` inside that window.
func BuildDAG(events []Event) *DAG {
	d := &DAG{ByID: map[uint64]*SpanNode{}}
	for i, ev := range events {
		if ev.T > d.EndT {
			d.EndT = ev.T
		}
		switch ev.Ph {
		case PhBegin:
			n := &SpanNode{
				ID: ev.ID, Name: ev.Name, Track: ev.Trk,
				Start: ev.T, End: ev.T, Dangling: true, beginIdx: i,
			}
			if len(ev.Args) > 0 {
				n.Args = make(map[string]string, len(ev.Args))
				for k, v := range ev.Args {
					n.Args[k] = v
				}
			}
			if p, ok := d.ByID[ev.Par]; ok && ev.Par != 0 {
				n.Parent = p
			}
			d.ByID[ev.ID] = n
			d.Spans = append(d.Spans, n)
		case PhEnd:
			n, ok := d.ByID[ev.ID]
			if !ok {
				d.OrphanEnds = append(d.OrphanEnds, ev)
				continue
			}
			n.Dangling = false
			if ev.T > n.End {
				n.End = ev.T
			}
			if len(ev.Args) > 0 {
				if n.Args == nil {
					n.Args = make(map[string]string, len(ev.Args))
				}
				for k, v := range ev.Args {
					n.Args[k] = v
				}
			}
		case PhInstant:
			d.Instants = append(d.Instants, ev)
		}
	}
	// Dangling spans extend to the end of the log.
	for _, n := range d.Spans {
		if n.Dangling && d.EndT > n.End {
			n.End = d.EndT
		}
	}
	// Containment adoption for parentless spans: tightest container
	// wins; ties go to the latest-opened candidate (deepest nesting).
	// Candidates must have opened earlier, so adoption edges always
	// point backwards in emission order and can never form a cycle.
	// Dangling spans never adopt: their clamped End is fabricated, so
	// "containment" in them proves nothing — an aborted checkpoint
	// lane must not swallow the failover that follows it.
	for _, n := range d.Spans {
		if n.Parent != nil {
			continue
		}
		var best *SpanNode
		for _, c := range d.Spans {
			if c.Dangling || c.beginIdx >= n.beginIdx || c.Start > n.Start || c.End < n.End {
				continue
			}
			if best == nil || c.Dur() < best.Dur() ||
				(c.Dur() == best.Dur() && c.beginIdx > best.beginIdx) {
				best = c
			}
		}
		if best != nil {
			n.Parent = best
			n.Adopted = true
		}
	}
	for _, n := range d.Spans {
		if n.Parent == nil {
			d.Top = append(d.Top, n)
		} else {
			n.Parent.Children = append(n.Parent.Children, n)
		}
	}
	for _, n := range d.Spans {
		sort.SliceStable(n.Children, func(i, j int) bool {
			if n.Children[i].Start != n.Children[j].Start {
				return n.Children[i].Start < n.Children[j].Start
			}
			return n.Children[i].beginIdx < n.Children[j].beginIdx
		})
	}
	return d
}

// DanglingSpans returns every span opened but never closed, in emission
// order. A clean trace returns none; an abort or a truncated log leaves
// the torn-down operation's spans here.
func (d *DAG) DanglingSpans() []*SpanNode {
	var out []*SpanNode
	for _, n := range d.Spans {
		if n.Dangling {
			out = append(out, n)
		}
	}
	return out
}

// TopByName returns the top-level spans with the given name, in
// emission order.
func (d *DAG) TopByName(name string) []*SpanNode {
	var out []*SpanNode
	for _, n := range d.Top {
		if n.Name == name {
			out = append(out, n)
		}
	}
	return out
}

// Segment is one attributed interval of a critical path. Segments of
// one path partition the analyzed window exactly: they are contiguous,
// non-overlapping, and sum to the window's duration.
type Segment struct {
	// Span is the span the interval is attributed to (nil for
	// unattributed gaps in a window analysis).
	Span  *SpanNode
	Name  string
	Track string
	Start int64
	End   int64
}

// Dur returns the segment duration.
func (s Segment) Dur() int64 { return s.End - s.Start }

// CriticalPath computes the critical path through a span: the chain of
// nested spans that determined its duration. Walking backwards from the
// span's end, each instant is attributed to the deepest span on the
// slowest chain: among the children overlapping the unexplained prefix,
// the latest-ending one is on the path (its siblings finished earlier
// and were not the bottleneck); time not covered by any child is the
// span's own. Segments are returned in increasing time order and
// partition [Start, End] exactly.
func CriticalPath(root *SpanNode) []Segment {
	if root == nil {
		return nil
	}
	var out []Segment
	critWalk(root, root.Start, root.End, &out)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// critWalk attributes [lo, hi] within s, appending segments in
// *reverse* time order.
func critWalk(s *SpanNode, lo, hi int64, out *[]Segment) {
	t := hi
	for t > lo {
		// Latest-ending child overlapping (lo, t); ties break toward the
		// later-started, then later-emitted child, deterministically.
		var best *SpanNode
		var bestEnd int64
		for _, c := range s.Children {
			if c.Start >= t || c.End <= lo || c.Start == c.End {
				continue
			}
			effEnd := c.End
			if effEnd > t {
				effEnd = t
			}
			if best == nil || effEnd > bestEnd ||
				(effEnd == bestEnd && (c.Start > best.Start ||
					(c.Start == best.Start && c.beginIdx > best.beginIdx))) {
				best, bestEnd = c, effEnd
			}
		}
		if best == nil {
			*out = append(*out, Segment{Span: s, Name: s.Name, Track: s.Track, Start: lo, End: t})
			return
		}
		if bestEnd < t {
			*out = append(*out, Segment{Span: s, Name: s.Name, Track: s.Track, Start: bestEnd, End: t})
		}
		clo := best.Start
		if clo < lo {
			clo = lo
		}
		critWalk(best, clo, bestEnd, out)
		t = clo
	}
}

// WindowCriticalPath computes the critical path of an arbitrary
// [lo, hi] window across the whole DAG: top-level spans overlapping the
// window act as children of a synthetic root, and intervals no span
// covers come back as unattributed gap segments (Span == nil, Name
// "(idle)").
func (d *DAG) WindowCriticalPath(lo, hi int64) []Segment {
	if hi < lo {
		hi = lo
	}
	syn := &SpanNode{Start: lo, End: hi}
	for _, n := range d.Top {
		if n.Start < hi && n.End > lo && n.Start != n.End {
			syn.Children = append(syn.Children, n)
		}
	}
	var out []Segment
	critWalk(syn, lo, hi, &out)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	for i := range out {
		if out[i].Span == syn {
			out[i].Span = nil
			out[i].Name = "(idle)"
			out[i].Track = ""
		}
	}
	return out
}

// Straggler is one entry of a fan-out straggler ranking.
type Straggler struct {
	// Track names the lane (the pod, for agent spans).
	Track string
	Name  string
	Start int64
	End   int64
	// Slack is how much later this member finished than the fastest
	// sibling — the time the operation would save if this straggler
	// matched the front-runner.
	Slack int64
}

// StragglerRanking ranks the children of a fan-out span named childName
// ("" matches all children) by completion time, slowest first — the
// per-pod answer to "who is holding the barrier". Ties order by track
// then emission.
func StragglerRanking(parent *SpanNode, childName string) []Straggler {
	if parent == nil {
		return nil
	}
	var kids []*SpanNode
	for _, c := range parent.Children {
		if childName == "" || c.Name == childName {
			kids = append(kids, c)
		}
	}
	if len(kids) == 0 {
		return nil
	}
	earliest := kids[0].End
	for _, c := range kids[1:] {
		if c.End < earliest {
			earliest = c.End
		}
	}
	out := make([]Straggler, len(kids))
	for i, c := range kids {
		out[i] = Straggler{Track: c.Track, Name: c.Name, Start: c.Start, End: c.End, Slack: c.End - earliest}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End > out[j].End
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// Span and instant names the failover analysis keys on. They are the
// supervisor's and core's stable trace vocabulary, not configuration.
const (
	spanFailover    = "supervisor/failover"
	spanLoadGen     = "supervisor/load-generation"
	spanChainRecon  = "supervisor/chain-reconstruct"
	spanRestartCo   = "restart/coordinated"
	instNodeDown    = "supervisor/node-down"
	argMissT        = "miss_t"
	argOutcome      = "outcome"
	argRPOUs        = "rpo_us"
	outcomeOK       = "ok"
	ckptCoordinated = "ckpt/coordinated"
)

// RTO segment labels: the named phases a failover's recovery time
// decomposes into.
const (
	SegDetect         = "detect"          // heartbeat miss -> declaration
	SegDecide         = "decide"          // teardown + generation choice
	SegLoad           = "load"            // generation read-back and verification
	SegReconstruct    = "reconstruct"     // base+delta chain replay
	SegRestartBarrier = "restart-barrier" // coordinated restart fan-out/fan-in
	SegRestartAgent   = "restart-agent"   // per-pod restore work
	SegCatchUp        = "catch-up"        // standby promotion: apply in-flight records
	SegResume         = "resume"          // rebind to serving
	SegWait           = "wait"            // retry backoff / in-flight abort
	SegOther          = "other"           // anything else on the path
)

// RTOSegment is one labeled interval of a failover's recovery-time
// decomposition.
type RTOSegment struct {
	Label string
	// Span is the trace span name behind the label ("" for the
	// synthesized detect interval).
	Span  string
	Start int64
	End   int64
}

// Dur returns the segment duration.
func (s RTOSegment) Dur() int64 { return s.End - s.Start }

// RTOReport decomposes one completed failover: recovery time (RTO, the
// window from the heartbeat-miss instant to the pods-serving instant)
// and data loss (RPO, virtual time since the generation restored from),
// with the critical-path segments that partition the RTO window.
type RTOReport struct {
	// MissT is the instant the failed node's heartbeat became overdue
	// (its last pong plus the detector timeout).
	MissT int64
	// DetectT is the instant the detector declared the node failed.
	DetectT int64
	// ServeT is the instant the restarted pods were serving again.
	ServeT int64
	// RPOUs is the data-loss window in microseconds as reported by the
	// supervisor (virtual time between the restored generation's commit
	// and the miss instant); -1 when the trace predates the field.
	RPOUs int64
	// Segments partition [MissT, ServeT] exactly, in time order.
	Segments []RTOSegment
	// Path is the raw critical path underlying Segments (the failover
	// span's portion).
	Path []Segment
}

// RTO returns the recovery-time window in nanoseconds.
func (r RTOReport) RTO() int64 { return r.ServeT - r.MissT }

// RTOUs returns the recovery-time window in microseconds.
func (r RTOReport) RTOUs() int64 { return r.RTO() / 1e3 }

// SegmentTotal sums the duration of every segment carrying the label.
func (r RTOReport) SegmentTotal(label string) int64 {
	var t int64
	for _, s := range r.Segments {
		if s.Label == label {
			t += s.Dur()
		}
	}
	return t
}

// Coverage reports the fraction of the RTO window attributed to a named
// phase (everything except SegOther and idle gaps). The decomposition
// contract is that this stays ~1.0: the segment sum always equals the
// window, and on the canonical scenario nothing lands in "other".
func (r RTOReport) Coverage() float64 {
	if r.RTO() <= 0 {
		return 1
	}
	var known int64
	for _, s := range r.Segments {
		if s.Label != SegOther {
			known += s.Dur()
		}
	}
	return float64(known) / float64(r.RTO())
}

// FailoverReports analyzes an event log and returns one report per
// completed failover (a supervisor/failover span that ended with
// outcome "ok"), in time order. Incomplete failovers — the trace ends
// mid-recovery — are not reported; they surface as dangling spans.
func FailoverReports(events []Event) []RTOReport {
	return BuildDAG(events).FailoverReports()
}

// FailoverReports is the DAG form of the package-level helper.
func (d *DAG) FailoverReports() []RTOReport {
	var fails []*SpanNode
	for _, n := range d.Spans {
		if n.Name == spanFailover && !n.Dangling && n.Args[argOutcome] == outcomeOK {
			fails = append(fails, n)
		}
	}
	sort.SliceStable(fails, func(i, j int) bool { return fails[i].Start < fails[j].Start })
	// node-down declarations, in time order, each consumed by the first
	// failover at or after it.
	type decl struct{ missT, t int64 }
	var downs []decl
	for _, ev := range d.Instants {
		if ev.Name != instNodeDown {
			continue
		}
		miss := ev.T
		if v, err := strconv.ParseInt(ev.Args[argMissT], 10, 64); err == nil {
			miss = v
		}
		downs = append(downs, decl{missT: miss, t: ev.T})
	}
	var out []RTOReport
	di := 0
	for _, f := range fails {
		r := RTOReport{MissT: f.Start, DetectT: f.Start, ServeT: f.End, RPOUs: -1}
		first := true
		for di < len(downs) && downs[di].t <= f.Start {
			// Multiple nodes may be declared before one recovery; the
			// earliest miss starts the unavailability clock.
			if first || downs[di].missT < r.MissT {
				r.MissT = downs[di].missT
				r.DetectT = downs[di].t
			}
			first = false
			di++
		}
		if v, err := strconv.ParseInt(f.Args[argRPOUs], 10, 64); err == nil {
			r.RPOUs = v
		}
		r.Path = CriticalPath(f)
		r.Segments = rtoSegments(r, f)
		out = append(out, r)
	}
	return out
}

// rtoSegments labels the failover's critical path into the named RTO
// decomposition, prepending the detection and declaration-to-recovery
// intervals so the segments partition [MissT, ServeT] exactly.
func rtoSegments(r RTOReport, f *SpanNode) []RTOSegment {
	var segs []RTOSegment
	if r.DetectT > r.MissT {
		segs = append(segs, RTOSegment{Label: SegDetect, Start: r.MissT, End: r.DetectT})
	}
	if f.Start > r.DetectT {
		// Declared during an in-flight operation; recovery waited for
		// its abort before the failover span opened.
		segs = append(segs, RTOSegment{Label: SegWait, Start: r.DetectT, End: f.Start})
	}
	// Self-time of the failover span splits positionally: before the
	// first restart activity it is decision work, after the last it is
	// resume/rebind, in between it is retry backoff.
	firstAct, lastAct := int64(-1), int64(-1)
	labelOf := func(s Segment) string {
		if s.Span == nil {
			return SegOther
		}
		switch {
		case s.Name == spanLoadGen:
			return SegLoad
		case s.Name == spanChainRecon:
			return SegReconstruct
		case s.Name == spanRestartCo || strings.HasPrefix(s.Name, "coord/"):
			return SegRestartBarrier
		case strings.HasPrefix(s.Name, "restart/"):
			return SegRestartAgent
		case strings.HasPrefix(s.Name, "standby/"):
			// Promotion catch-up: applying in-flight replication records
			// before activating the shadows.
			return SegCatchUp
		case s.Name == spanFailover:
			return "" // positional, resolved below
		case strings.HasPrefix(s.Name, "ckpt/") || s.Name == "supervisor/ckpt-cycle":
			return SegWait // an aborting checkpoint the recovery waited out
		}
		return SegOther
	}
	for _, s := range r.Path {
		if l := labelOf(s); l != "" && l != SegOther && l != SegWait {
			if firstAct < 0 || s.Start < firstAct {
				firstAct = s.Start
			}
			if s.End > lastAct {
				lastAct = s.End
			}
		}
	}
	for _, s := range r.Path {
		label := labelOf(s)
		if label == "" {
			switch {
			case firstAct < 0 || s.End <= firstAct:
				label = SegDecide
			case s.Start >= lastAct:
				label = SegResume
			default:
				label = SegWait
			}
		}
		name := s.Name
		if s.Span == nil {
			name = ""
		}
		segs = append(segs, RTOSegment{Label: label, Span: name, Start: s.Start, End: s.End})
	}
	return segs
}

// fmtOffset renders a timestamp as an offset from a base, in the same
// unit ladder fmtNs uses.
func fmtOffset(t, base int64) string { return "+" + fmtNs(t-base) }

// FormatCriticalPath renders a critical path as an aligned table of
// offset/duration/track/span rows. Offsets are relative to the path's
// first instant, so renderings of the same log are byte-identical.
func FormatCriticalPath(segs []Segment) string {
	if len(segs) == 0 {
		return "(empty critical path)\n"
	}
	base := segs[0].Start
	var total int64
	for _, s := range segs {
		total += s.Dur()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s  %-12s  %6s  %-10s  %s\n", "offset", "dur", "share", "track", "span")
	for _, s := range segs {
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.Dur()) / float64(total)
		}
		track := s.Track
		if track == "" {
			track = "-"
		}
		fmt.Fprintf(&b, "%-12s  %-12s  %5.1f%%  %-10s  %s\n",
			fmtOffset(s.Start, base), fmtNs(s.Dur()), share, track, s.Name)
	}
	fmt.Fprintf(&b, "critical path total %s over %d segment(s)\n", fmtNs(total), len(segs))
	return b.String()
}

// FormatStragglers renders a straggler ranking, slowest member first.
func FormatStragglers(rank []Straggler) string {
	if len(rank) == 0 {
		return "(no fan-out members)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %-12s  %-12s  %s\n", "track", "dur", "slack", "span")
	for _, s := range rank {
		fmt.Fprintf(&b, "%-10s  %-12s  %-12s  %s\n",
			s.Track, fmtNs(s.End-s.Start), fmtNs(s.Slack), s.Name)
	}
	return b.String()
}

// Summary renders the RTO decomposition as an aligned table plus the
// headline rto/rpo figures.
func (r RTOReport) Summary() string {
	var b strings.Builder
	rpo := "unknown"
	if r.RPOUs >= 0 {
		rpo = fmtNs(r.RPOUs * 1e3)
	}
	fmt.Fprintf(&b, "rto %s (miss -> serving), rpo %s, coverage %.1f%%\n",
		fmtNs(r.RTO()), rpo, 100*r.Coverage())
	fmt.Fprintf(&b, "%-16s  %-12s  %6s  %s\n", "segment", "dur", "share", "span")
	for _, s := range r.Segments {
		share := 0.0
		if r.RTO() > 0 {
			share = 100 * float64(s.Dur()) / float64(r.RTO())
		}
		span := s.Span
		if span == "" {
			span = "-"
		}
		fmt.Fprintf(&b, "%-16s  %-12s  %5.1f%%  %s\n", s.Label, fmtNs(s.Dur()), share, span)
	}
	return b.String()
}
