package trace

import (
	"bytes"
	"strings"
	"testing"
)

// TestCheckMetricName exercises the naming scheme: counters need
// _total, gauges and histograms need a unit suffix, everything must be
// lower_snake_case starting with a letter.
func TestCheckMetricName(t *testing.T) {
	accept := []struct{ kind, name string }{
		{"counter", "ckpt_rounds_total"},
		{"counter", "netstack_drained_bytes_total"},
		{"gauge", "store_used_bytes"},
		{"histogram", "supervisor_rto_us"},
		{"histogram", "ckpt_suspend_window_ns"},
	}
	for _, c := range accept {
		if err := CheckMetricName(c.kind, c.name); err != nil {
			t.Errorf("%s %q should conform: %v", c.kind, c.name, err)
		}
	}
	reject := []struct{ kind, name string }{
		{"counter", "ckpt_rounds"},          // no _total
		{"gauge", "store_used"},             // no unit
		{"histogram", "rto_micros"},         // unknown unit
		{"counter", "Ckpt_Rounds_total"},    // upper case
		{"counter", "_rounds_total"},        // leading underscore
		{"counter", "9_rounds_total"},       // leading digit
		{"counter", ""},                     // empty
		{"widget", "some_thing_total"},      // unknown kind
		{"counter", "rounds-per-sec_total"}, // dashes
	}
	for _, c := range reject {
		if err := CheckMetricName(c.kind, c.name); err == nil {
			t.Errorf("%s %q should be rejected", c.kind, c.name)
		}
	}
}

// TestRegistryCheckNames is the lint satellite's unit form: a registry
// holding only conforming names passes, one bad instrument is reported,
// and alias rows are exempt.
func TestRegistryCheckNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("good_events_total").Add(1)
	r.Gauge("good_depth_bytes").Set(2)
	r.Histogram("good_lat_us").Observe(3)
	if errs := r.CheckNames(); len(errs) != 0 {
		t.Fatalf("conforming registry flagged: %v", errs)
	}
	// A legacy spelling resolves to its canonical instrument, so it must
	// not introduce a violation.
	r.Counter("netstack_drained_msgs").Add(5)
	if errs := r.CheckNames(); len(errs) != 0 {
		t.Fatalf("legacy alias flagged: %v", errs)
	}
	r.Gauge("bare_gauge").Set(1)
	errs := r.CheckNames()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "bare_gauge") {
		t.Fatalf("want exactly the bare_gauge violation, got %v", errs)
	}
}

// TestLegacyAliases checks that legacy spellings and canonical names
// address the same instrument, and that Snapshot carries the alias rows
// with matching values.
func TestLegacyAliases(t *testing.T) {
	r := NewRegistry()
	r.Counter("netstack_drained_msgs").Add(3)
	r.Counter("netstack_drained_msgs_total").Add(4)
	if got := r.Counter("netstack_drained_msgs_total").Value(); got != 7 {
		t.Fatalf("alias and canonical must share a counter: got %d", got)
	}
	snap := r.Snapshot()
	var canon, alias *MetricPoint
	for i := range snap {
		switch snap[i].Name {
		case "netstack_drained_msgs_total":
			canon = &snap[i]
		case "netstack_drained_msgs":
			alias = &snap[i]
		}
	}
	if canon == nil || alias == nil {
		t.Fatalf("snapshot missing canonical or alias row: %+v", snap)
	}
	if canon.AliasOf != "" {
		t.Fatalf("canonical row marked as alias: %+v", canon)
	}
	if alias.AliasOf != "netstack_drained_msgs_total" || alias.Value != canon.Value {
		t.Fatalf("alias row must mirror the canonical instrument: %+v vs %+v", alias, canon)
	}
}

// TestWriteProm checks the exposition format on a fixed registry:
// families sorted, # TYPE lines, cumulative power-of-two buckets with
// +Inf/_sum/_count, aliases excluded, and byte determinism.
func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_events_total").Add(10)
	r.Gauge("aa_depth_bytes").Set(512)
	h := r.Histogram("mid_lat_us")
	h.Observe(1) // bucket 0: v < 2
	h.Observe(3) // bucket 1: v < 4
	h.Observe(3)
	r.Counter("netstack_drained_msgs").Add(9) // via alias

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		"# TYPE aa_depth_bytes gauge",
		"aa_depth_bytes 512",
		"# TYPE mid_lat_us histogram",
		`mid_lat_us_bucket{le="1"} 1`,
		`mid_lat_us_bucket{le="3"} 3`,
		`mid_lat_us_bucket{le="+Inf"} 3`,
		"mid_lat_us_sum 7",
		"mid_lat_us_count 3",
		"# TYPE netstack_drained_msgs_total counter",
		"netstack_drained_msgs_total 9",
		"# TYPE zz_events_total counter",
		"zz_events_total 10",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if strings.Contains(got, "netstack_drained_msgs ") {
		t.Fatal("alias spelling leaked into the exposition")
	}
	var buf2 bytes.Buffer
	if err := r.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteProm not byte-deterministic")
	}
	// A nil registry writes nothing and does not panic.
	var nilReg *Registry
	var buf3 bytes.Buffer
	if err := nilReg.WriteProm(&buf3); err != nil || buf3.Len() != 0 {
		t.Fatalf("nil registry: err=%v len=%d", err, buf3.Len())
	}
}
