package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadJSONL holds the trace reader to its contract on hostile
// input: it either parses the log or returns an error wrapping
// ErrBadTrace — it never panics, and anything it accepts must survive
// a serialize/re-read round trip.
func FuzzReadJSONL(f *testing.F) {
	// A well-formed two-event log.
	f.Add([]byte(`{"t":0,"ph":"B","name":"ckpt/quiesce","id":1,"track":"pod0"}` + "\n" +
		`{"t":150000,"ph":"E","name":"ckpt/quiesce","id":1,"track":"pod0","args":{"procs":"4"}}` + "\n"))
	// An instant event with args.
	f.Add([]byte(`{"t":7,"ph":"I","name":"fault/crash-node","track":"faults","args":{"node":"node01"}}` + "\n"))
	// Corrupted seeds: truncated mid-record, flipped bytes, garbage.
	f.Add([]byte(`{"t":0,"ph":"B","name":"ckpt/qu`))
	f.Add([]byte(`{"t":0,"ph":"B","nam\xff\x00e":"x","id":9}` + "\n"))
	f.Add([]byte("\x89PNG\r\n\x1a\nnot a trace at all"))
	f.Add([]byte(`{"t":-1,"ph":"I","name":"x"}` + "\n"))
	f.Add([]byte(`[{"t":0,"ph":"I","name":"x"}]` + "\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("reader error does not wrap ErrBadTrace: %v", err)
			}
			return
		}
		// Accepted input must round-trip through the writer.
		tr := New(nil)
		tr.events = append(tr.events, evs...)
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatalf("re-serializing accepted events: %v", err)
		}
		again, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading serialized events: %v", err)
		}
		if len(again) != len(evs) {
			t.Fatalf("round trip changed event count: %d -> %d", len(evs), len(again))
		}
	})
}
