package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a lock-cheap metrics registry: counters, gauges, and
// fixed-bucket histograms. Instrument lookup takes a mutex once (call
// sites may cache the returned instrument); updates are atomic, so
// host-parallel serialization workers can bump counters without
// perturbing determinism — aggregated values are order-independent.
//
// A nil *Registry (and the nil instruments it hands out) is a valid
// no-op, mirroring the Tracer's nil fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotone sum.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; no-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-or-extreme value.
type Gauge struct{ v atomic.Int64 }

// Set stores v; no-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger; no-op on nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every histogram: bucket i
// holds observations v with 2^i <= v < 2^(i+1) (bucket 0 additionally
// holds v <= 1). A fixed power-of-two layout keeps the serialized form
// byte-deterministic for a given observation multiset regardless of
// configuration.
const HistBuckets = 48

// Histogram counts observations in fixed power-of-two buckets.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one value; no-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the observation total (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// legacyAliases maps metric names that predate the unit-suffix naming
// scheme (see CheckMetricName) to their canonical replacements. Lookups
// under a legacy name resolve to the canonical instrument, and Snapshot
// emits an extra alias row per legacy name so downstream consumers keyed
// on the old spelling keep working.
var legacyAliases = map[string]string{
	"netstack_drained_msgs":     "netstack_drained_msgs_total",
	"netstack_drained_bytes":    "netstack_drained_bytes_total",
	"netstack_reinjected_msgs":  "netstack_reinjected_msgs_total",
	"netstack_reinjected_bytes": "netstack_reinjected_bytes_total",
}

// canonicalName resolves a possibly-legacy metric name to its canonical
// form.
func canonicalName(name string) string {
	if c, ok := legacyAliases[name]; ok {
		return c
	}
	return name
}

// Counter returns the named counter, creating it on first use. Legacy
// pre-scheme names resolve to their canonical instrument. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = canonicalName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = canonicalName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A
// nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	name = canonicalName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricPoint is one row of a registry snapshot.
type MetricPoint struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge", "histogram"
	// Value is the counter sum, gauge value, or histogram observation
	// count.
	Value int64 `json:"value"`
	// Sum is the histogram observation total (0 otherwise).
	Sum int64 `json:"sum,omitempty"`
	// Buckets holds the non-empty histogram buckets as "2^i:count"
	// strings, ascending (nil otherwise).
	Buckets []string `json:"buckets,omitempty"`
	// AliasOf names the canonical metric this row mirrors when Name is
	// a legacy pre-scheme spelling ("" for canonical rows). Alias rows
	// carry the same values as their canonical row and exist only for
	// consumers keyed on the old name.
	AliasOf string `json:"alias_of,omitempty"`
}

// Snapshot returns every instrument sorted by (kind, name) — a
// deterministic serialization of the registry state.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []MetricPoint
	for name, c := range r.counters {
		out = append(out, MetricPoint{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricPoint{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		p := MetricPoint{Name: name, Kind: "histogram", Value: h.Count(), Sum: h.Sum()}
		for i := 0; i < HistBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				p.Buckets = append(p.Buckets, fmt.Sprintf("2^%d:%d", i, n))
			}
		}
		out = append(out, p)
	}
	// Back-compat alias rows for legacy names whose canonical
	// instrument is registered.
	for legacy, canon := range legacyAliases {
		if c, ok := r.counters[canon]; ok {
			out = append(out, MetricPoint{Name: legacy, Kind: "counter", Value: c.Value(), AliasOf: canon})
		}
		if g, ok := r.gauges[canon]; ok {
			out = append(out, MetricPoint{Name: legacy, Kind: "gauge", Value: g.Value(), AliasOf: canon})
		}
		if h, ok := r.hists[canon]; ok {
			p := MetricPoint{Name: legacy, Kind: "histogram", Value: h.Count(), Sum: h.Sum(), AliasOf: canon}
			for i := 0; i < HistBuckets; i++ {
				if n := h.buckets[i].Load(); n > 0 {
					p.Buckets = append(p.Buckets, fmt.Sprintf("2^%d:%d", i, n))
				}
			}
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Summary renders the registry as an aligned plain-text table.
func (r *Registry) Summary() string {
	snap := r.Snapshot()
	if len(snap) == 0 {
		return "(no metrics recorded)\n"
	}
	nameW, kindW := len("metric"), len("kind")
	for _, p := range snap {
		if len(p.Name) > nameW {
			nameW = len(p.Name)
		}
		if len(p.Kind) > kindW {
			kindW = len(p.Kind)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-*s  %s\n", nameW, "metric", kindW, "kind", "value")
	fmt.Fprintf(&b, "%s  %s  %s\n", strings.Repeat("-", nameW), strings.Repeat("-", kindW), "-----")
	for _, p := range snap {
		switch p.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-*s  %-*s  n=%d sum=%d %s\n",
				nameW, p.Name, kindW, p.Kind, p.Value, p.Sum, strings.Join(p.Buckets, " "))
		default:
			fmt.Fprintf(&b, "%-*s  %-*s  %d\n", nameW, p.Name, kindW, p.Kind, p.Value)
		}
	}
	return b.String()
}
