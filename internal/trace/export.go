package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ErrBadTrace is returned (wrapped, with position detail) by ReadJSONL
// when the input is not a well-formed trace log — truncated lines,
// non-JSON garbage, or records missing required fields. Readers must
// reject such input with this error rather than panicking; the fuzz
// target holds them to it.
var ErrBadTrace = errors.New("trace: malformed trace log")

// maxLine bounds one JSONL record; a longer line means the input is not
// one of ours.
const maxLine = 1 << 20

// WriteJSONL serializes the recorded events one JSON object per line.
// Output is byte-deterministic: emission order, sorted map keys.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range t.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event log produced by WriteJSONL. Any
// malformed input — garbage bytes, a truncated final line, an event
// with no phase or name — returns an error wrapping ErrBadTrace; the
// reader never panics on hostile input.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, lineNo, err)
		}
		// A second JSON value on the line means this is not JSONL.
		if dec.More() {
			return nil, fmt.Errorf("%w: line %d: trailing data after event", ErrBadTrace, lineNo)
		}
		switch ev.Ph {
		case PhBegin, PhEnd, PhInstant:
		default:
			return nil, fmt.Errorf("%w: line %d: unknown phase %q", ErrBadTrace, lineNo, ev.Ph)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("%w: line %d: event without a name", ErrBadTrace, lineNo)
		}
		if ev.T < 0 {
			return nil, fmt.Errorf("%w: line %d: negative timestamp %d", ErrBadTrace, lineNo, ev.T)
		}
		if (ev.Ph == PhBegin || ev.Ph == PhEnd) && ev.ID == 0 {
			return nil, fmt.Errorf("%w: line %d: span event without an id", ErrBadTrace, lineNo)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return events, nil
}

// chromeEvent is one entry of the Chrome trace-event JSON array
// (loadable by about:tracing and ui.perfetto.dev).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"` // microseconds
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"` // instant scope
	// Cname selects a reserved Chrome/Perfetto color ("terrible" renders
	// red) — used to highlight critical-path spans.
	Cname string            `json:"cname,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeTrace converts an event log into Chrome trace-event format.
// Spans become complete ("X") events, instants become thread-scoped
// instant ("i") events, and each track maps to a named tid lane.
func ChromeTrace(events []Event) ([]byte, error) {
	return chromeTrace(events, nil)
}

// ChromeTraceHighlighted is ChromeTrace with critical-path highlighting:
// spans on the given critical path render red (Chrome's "terrible"
// reserved color), and the path's segments additionally appear as a
// dedicated "critical-path" lane so the bottleneck chain reads as one
// contiguous bar in Perfetto.
func ChromeTraceHighlighted(events []Event, path []Segment) ([]byte, error) {
	return chromeTrace(events, path)
}

func chromeTrace(events []Event, path []Segment) ([]byte, error) {
	critical := map[uint64]bool{}
	for _, s := range path {
		if s.Span != nil {
			critical[s.Span.ID] = true
		}
	}
	// Assign tids per track in order of first appearance.
	tids := map[string]int{}
	tidOf := func(track string) int {
		if track == "" {
			track = "main"
		}
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		return id
	}
	type open struct {
		ev  Event
		tid int
	}
	spans := map[uint64]open{}
	var out []chromeEvent
	for _, ev := range events {
		tid := tidOf(ev.Trk)
		switch ev.Ph {
		case PhBegin:
			spans[ev.ID] = open{ev: ev, tid: tid}
		case PhEnd:
			b, ok := spans[ev.ID]
			if !ok {
				continue // end without begin: drop rather than fail the export
			}
			delete(spans, ev.ID)
			args := b.ev.Args
			if len(ev.Args) > 0 {
				merged := make(map[string]string, len(args)+len(ev.Args))
				for k, v := range args {
					merged[k] = v
				}
				for k, v := range ev.Args {
					merged[k] = v
				}
				args = merged
			}
			ce := chromeEvent{
				Name: ev.Name, Ph: "X",
				Ts: float64(b.ev.T) / 1e3, Dur: float64(ev.T-b.ev.T) / 1e3,
				Pid: 1, Tid: b.tid, Args: args,
			}
			if critical[ev.ID] {
				ce.Cname = "terrible"
			}
			out = append(out, ce)
		case PhInstant:
			out = append(out, chromeEvent{
				Name: ev.Name, Ph: "i", Ts: float64(ev.T) / 1e3,
				Pid: 1, Tid: tid, S: "t", Args: ev.Args,
			})
		}
	}
	// Still-open spans export as zero-length markers at their start.
	for _, b := range spans {
		out = append(out, chromeEvent{
			Name: b.ev.Name, Ph: "X", Ts: float64(b.ev.T) / 1e3,
			Pid: 1, Tid: b.tid, Args: b.ev.Args,
		})
	}
	// The critical path gets its own lane: the bottleneck chain rendered
	// as contiguous red bars, one per attributed segment.
	if len(path) > 0 {
		critTid := len(tids) + 1
		tids["critical-path"] = critTid
		for _, s := range path {
			out = append(out, chromeEvent{
				Name: s.Name, Ph: "X",
				Ts: float64(s.Start) / 1e3, Dur: float64(s.Dur()) / 1e3,
				Pid: 1, Tid: critTid, Cname: "terrible",
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	// Lane-name metadata, in tid order so the file is deterministic.
	type lane struct {
		name string
		tid  int
	}
	lanes := make([]lane, 0, len(tids))
	for name, tid := range tids {
		lanes = append(lanes, lane{name, tid})
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].tid < lanes[j].tid })
	meta := make([]chromeEvent, 0, len(lanes))
	for _, l := range lanes {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: l.tid,
			Args: map[string]string{"name": l.name},
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: append(meta, out...)}
	return json.MarshalIndent(doc, "", " ")
}

// WriteChromeTrace writes the tracer's log in Chrome trace-event
// format.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	data, err := ChromeTrace(t.Events())
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// PhaseStat aggregates the completed spans of one name.
type PhaseStat struct {
	Name  string
	Count int
	Total int64 // summed duration, ns
	Max   int64 // longest single span, ns
}

// Mean returns the average span duration in nanoseconds.
func (p PhaseStat) Mean() int64 {
	if p.Count == 0 {
		return 0
	}
	return p.Total / int64(p.Count)
}

// PhaseStats folds an event log into per-span-name latency statistics,
// sorted by total time descending (name ascending on ties). Instants
// count as zero-duration occurrences.
func PhaseStats(events []Event) []PhaseStat {
	begins := map[uint64]Event{}
	agg := map[string]*PhaseStat{}
	obs := func(name string, dur int64) {
		p := agg[name]
		if p == nil {
			p = &PhaseStat{Name: name}
			agg[name] = p
		}
		p.Count++
		p.Total += dur
		if dur > p.Max {
			p.Max = dur
		}
	}
	for _, ev := range events {
		switch ev.Ph {
		case PhBegin:
			begins[ev.ID] = ev
		case PhEnd:
			if b, ok := begins[ev.ID]; ok {
				delete(begins, ev.ID)
				obs(ev.Name, ev.T-b.T)
			}
		case PhInstant:
			obs(ev.Name, 0)
		}
	}
	out := make([]PhaseStat, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// fmtNs renders a nanosecond figure the way the sim package prints
// durations, without importing it (this package stays zero-dependency).
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// PhaseSummary renders the per-phase latency breakdown of an event log
// as an aligned plain-text table.
func PhaseSummary(events []Event) string {
	stats := PhaseStats(events)
	if len(stats) == 0 {
		return "(no spans recorded)\n"
	}
	nameW := len("phase")
	for _, p := range stats {
		if len(p.Name) > nameW {
			nameW = len(p.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %6s  %12s  %12s  %12s\n", nameW, "phase", "count", "total", "mean", "max")
	fmt.Fprintf(&b, "%s  %s  %s  %s  %s\n", strings.Repeat("-", nameW),
		"------", "------------", "------------", "------------")
	for _, p := range stats {
		fmt.Fprintf(&b, "%-*s  %6d  %12s  %12s  %12s\n",
			nameW, p.Name, p.Count, fmtNs(p.Total), fmtNs(p.Mean()), fmtNs(p.Max))
	}
	return b.String()
}
