package trace

import (
	"strings"
	"testing"
)

// TestCriticalPathAttributesSlowestChain checks that the backward walk
// picks the latest-ending child at every level, attributes uncovered
// time to the parent, and that the segments exactly partition the root.
func TestCriticalPathAttributesSlowestChain(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	root := tr.Start(nil, "op", Track("mgr"))
	// Fan-out: fast child [10,30], slow child [20,90]; slow child nests
	// a grandchild [40,80].
	clk.t = 10
	fast := tr.Start(root, "fast", Track("a"))
	clk.t = 20
	slow := tr.Start(root, "slow", Track("b"))
	clk.t = 30
	fast.End()
	clk.t = 40
	grand := tr.Start(slow, "grand")
	clk.t = 80
	grand.End()
	clk.t = 90
	slow.End()
	clk.t = 100
	root.End()

	d := BuildDAG(tr.Events())
	if len(d.Top) != 1 {
		t.Fatalf("want 1 top span, got %d", len(d.Top))
	}
	segs := CriticalPath(d.Top[0])
	// Walking backward from the root's end: the tail belongs to the
	// root, then grand/slow own the middle, and before slow started the
	// running activity was fast — it holds [10,20] and no more.
	want := []struct {
		name   string
		lo, hi int64
	}{
		{"op", 0, 10}, {"fast", 10, 20}, {"slow", 20, 40}, {"grand", 40, 80}, {"slow", 80, 90}, {"op", 90, 100},
	}
	if len(segs) != len(want) {
		t.Fatalf("want %d segments, got %d: %+v", len(want), len(segs), segs)
	}
	var sum int64
	prev := int64(0)
	for i, s := range segs {
		if s.Name != want[i].name || s.Start != want[i].lo || s.End != want[i].hi {
			t.Errorf("segment %d: want %s[%d,%d], got %s[%d,%d]",
				i, want[i].name, want[i].lo, want[i].hi, s.Name, s.Start, s.End)
		}
		if s.Start != prev {
			t.Errorf("segment %d not contiguous: starts at %d, previous ended at %d", i, s.Start, prev)
		}
		prev = s.End
		sum += s.Dur()
	}
	if sum != d.Top[0].Dur() {
		t.Fatalf("segments sum to %d, root duration is %d", sum, d.Top[0].Dur())
	}
}

// TestContainmentAdoption checks that a root span recorded without a
// parent nests under its tightest containing span — the linkage that
// joins the supervisor's failover span to the core's restart span.
func TestContainmentAdoption(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	outer := tr.Start(nil, "supervisor/failover", Track("supervisor"))
	clk.t = 10
	inner := tr.Start(nil, "restart/coordinated", Track("manager")) // no parent link
	clk.t = 50
	inner.End()
	clk.t = 60
	outer.End()

	d := BuildDAG(tr.Events())
	if len(d.Top) != 1 || d.Top[0].Name != "supervisor/failover" {
		t.Fatalf("want one top span (the failover), got %+v", d.Top)
	}
	f := d.Top[0]
	if len(f.Children) != 1 || f.Children[0].Name != "restart/coordinated" {
		t.Fatalf("restart not adopted under failover: %+v", f.Children)
	}
	if !f.Children[0].Adopted {
		t.Fatal("adopted child not marked Adopted")
	}
	segs := CriticalPath(f)
	var restartTime int64
	for _, s := range segs {
		if s.Name == "restart/coordinated" {
			restartTime += s.Dur()
		}
	}
	if restartTime != 40 {
		t.Fatalf("restart should own [10,50] of the failover path, got %d ns", restartTime)
	}
}

// TestWindowCriticalPathGaps checks that window analysis over top-level
// spans reports uncovered intervals as unattributed idle segments.
func TestWindowCriticalPathGaps(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	clk.t = 10
	a := tr.Start(nil, "a")
	clk.t = 30
	a.End()
	clk.t = 50
	b := tr.Start(nil, "b")
	clk.t = 70
	b.End()

	d := BuildDAG(tr.Events())
	segs := d.WindowCriticalPath(0, 80)
	var idle, covered int64
	for _, s := range segs {
		if s.Span == nil {
			if s.Name != "(idle)" {
				t.Fatalf("gap segment not labeled idle: %+v", s)
			}
			idle += s.Dur()
		} else {
			covered += s.Dur()
		}
	}
	if idle != 40 || covered != 40 {
		t.Fatalf("want 40 idle / 40 covered, got %d / %d", idle, covered)
	}
	if sum := idle + covered; sum != 80 {
		t.Fatalf("window segments sum to %d, want 80", sum)
	}
}

// TestStragglerRanking checks ordering (slowest first) and slack
// against the fastest sibling.
func TestStragglerRanking(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	root := tr.Start(nil, "op")
	spans := map[string]*Span{}
	for _, pod := range []string{"pod-0", "pod-1", "pod-2"} {
		spans[pod] = tr.Start(root, "agent", Track(pod))
	}
	clk.t = 30
	spans["pod-1"].End()
	clk.t = 50
	spans["pod-0"].End()
	clk.t = 90
	spans["pod-2"].End()
	clk.t = 95
	root.End()

	d := BuildDAG(tr.Events())
	rank := StragglerRanking(d.Top[0], "agent")
	if len(rank) != 3 {
		t.Fatalf("want 3 entries, got %d", len(rank))
	}
	if rank[0].Track != "pod-2" || rank[0].Slack != 60 {
		t.Fatalf("slowest should be pod-2 with slack 60, got %+v", rank[0])
	}
	if rank[2].Track != "pod-1" || rank[2].Slack != 0 {
		t.Fatalf("fastest should be pod-1 with slack 0, got %+v", rank[2])
	}
}

// TestAnalyzerEdgeCases: empty trace, single-span trace, and a trace
// that ends mid-failover (dangling spans, no completed report).
func TestAnalyzerEdgeCases(t *testing.T) {
	// Empty trace.
	d := BuildDAG(nil)
	if len(d.Top) != 0 || len(d.DanglingSpans()) != 0 || len(d.FailoverReports()) != 0 {
		t.Fatal("empty trace must analyze to nothing")
	}
	if segs := d.WindowCriticalPath(0, 0); len(segs) != 0 {
		t.Fatalf("empty window must have no segments, got %+v", segs)
	}

	// Single-span trace.
	clk := &fakeClock{}
	tr := New(clk.now)
	s := tr.Start(nil, "solo", Track("x"))
	clk.t = 42
	s.End()
	d = BuildDAG(tr.Events())
	segs := CriticalPath(d.Top[0])
	if len(segs) != 1 || segs[0].Name != "solo" || segs[0].Dur() != 42 {
		t.Fatalf("single span path wrong: %+v", segs)
	}
	if CriticalPath(nil) != nil {
		t.Fatal("nil span must have nil path")
	}

	// Trace ending mid-failover: the failover span never closes.
	clk = &fakeClock{}
	tr = New(clk.now)
	tr.Instant(nil, "supervisor/node-down", Track("supervisor"), I64("miss_t", 5))
	clk.t = 10
	fail := tr.Start(nil, "supervisor/failover", Track("supervisor"))
	clk.t = 20
	load := tr.Start(fail, "supervisor/load-generation")
	clk.t = 30
	load.End()
	clk.t = 40
	tr.Instant(nil, "tick") // trace just stops here
	d = BuildDAG(tr.Events())
	if got := d.FailoverReports(); len(got) != 0 {
		t.Fatalf("incomplete failover must not report, got %+v", got)
	}
	dang := d.DanglingSpans()
	if len(dang) != 1 || dang[0].Name != "supervisor/failover" {
		t.Fatalf("want the failover span dangling, got %+v", dang)
	}
	if !dang[0].Dangling || dang[0].End != 40 {
		t.Fatalf("dangling span must extend to the log end (40), got %d", dang[0].End)
	}
}

// TestFailoverReportDecomposition builds a synthetic failover trace and
// checks the RTO window, segment labels, exact partition, and coverage.
func TestFailoverReportDecomposition(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	// Heartbeat missed at t=100, declared at t=150, failover opens at
	// t=200 (an in-flight operation had to abort first).
	clk.t = 150
	tr.Instant(nil, "supervisor/node-down", Track("supervisor"), I64("miss_t", 100))
	clk.t = 200
	fail := tr.Start(nil, "supervisor/failover", Track("supervisor"))
	clk.t = 210
	load := tr.Start(fail, "supervisor/load-generation")
	clk.t = 240
	load.End()
	clk.t = 240
	rec := tr.Start(fail, "supervisor/chain-reconstruct")
	clk.t = 300
	rec.End()
	clk.t = 310
	restart := tr.Start(nil, "restart/coordinated", Track("manager")) // adopted
	clk.t = 320
	agent := tr.Start(restart, "restart/agent", Track("pod-0"))
	clk.t = 480
	agent.End()
	clk.t = 490
	restart.End()
	clk.t = 500
	fail.End(Str("outcome", "ok"), I64("rto_us", 0), I64("rpo_us", 77))

	reports := FailoverReports(tr.Events())
	if len(reports) != 1 {
		t.Fatalf("want 1 report, got %d", len(reports))
	}
	r := reports[0]
	if r.MissT != 100 || r.DetectT != 150 || r.ServeT != 500 {
		t.Fatalf("window wrong: %+v", r)
	}
	if r.RTO() != 400 {
		t.Fatalf("rto want 400, got %d", r.RTO())
	}
	if r.RPOUs != 77 {
		t.Fatalf("rpo_us want 77, got %d", r.RPOUs)
	}
	wantTotals := map[string]int64{
		SegDetect:         50,  // [100,150]
		SegWait:           50,  // [150,200] declaration -> failover open
		SegDecide:         10,  // failover self before load
		SegLoad:           30,  // [210,240]
		SegReconstruct:    60,  // [240,300]
		SegRestartBarrier: 30,  // [300,310] failover self? no: restart self [310,320]+[480,490]
		SegRestartAgent:   160, // [320,480]
		SegResume:         10,  // failover self after restart [490,500]
	}
	// Failover self-time [300,310] sits between reconstruct and the
	// restart activity — positionally it is retry wait.
	wantTotals[SegWait] += 10
	wantTotals[SegRestartBarrier] -= 10
	var sum int64
	for _, s := range r.Segments {
		sum += s.Dur()
	}
	if sum != r.RTO() {
		t.Fatalf("segments sum to %d, want the full window %d", sum, r.RTO())
	}
	for label, want := range wantTotals {
		if got := r.SegmentTotal(label); got != want {
			t.Errorf("segment %s: want %d, got %d (segments: %+v)", label, want, got, r.Segments)
		}
	}
	if cov := r.Coverage(); cov < 0.999 {
		t.Fatalf("coverage want ~1.0, got %f", cov)
	}
	if !strings.Contains(r.Summary(), "rto ") {
		t.Fatalf("summary missing headline: %q", r.Summary())
	}
}

// TestPhaseStatsNestedSameName checks that nested spans sharing a name
// are each counted with their own duration (the per-ID begin map must
// not collapse them).
func TestPhaseStatsNestedSameName(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	outer := tr.Start(nil, "phase")
	clk.t = 10
	inner := tr.Start(outer, "phase")
	clk.t = 30
	inner.End()
	clk.t = 100
	outer.End()

	stats := PhaseStats(tr.Events())
	if len(stats) != 1 {
		t.Fatalf("want one aggregated name, got %+v", stats)
	}
	p := stats[0]
	if p.Count != 2 {
		t.Fatalf("want both nested spans counted, got %d", p.Count)
	}
	if p.Total != 120 || p.Max != 100 {
		t.Fatalf("want total 120 (100+20) and max 100, got total %d max %d", p.Total, p.Max)
	}
}

// TestCriticalPathDeterminism: building and walking the same event log
// twice must render byte-identical output.
func TestCriticalPathDeterminism(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	root := tr.Start(nil, "op")
	for i := 0; i < 5; i++ {
		clk.t = int64(10 + i)
		c := tr.Start(root, "agent", Track("pod"))
		clk.t = int64(50 + 7*i)
		c.End()
	}
	clk.t = 100
	root.End()
	events := tr.Events()

	render := func() string {
		d := BuildDAG(events)
		return FormatCriticalPath(CriticalPath(d.Top[0])) + FormatStragglers(StragglerRanking(d.Top[0], "agent"))
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("non-deterministic render:\n%s\nvs\n%s", a, b)
	}
}
