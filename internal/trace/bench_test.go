package trace

import (
	"testing"
)

// instrumentedWork is a stand-in for a pipeline step: a real unit of
// work (checksumming a buffer, as the serializers do) wrapped in the
// standard instrumentation pattern. With a nil tracer and registry the
// wrapping must cost nothing but a few nil checks.
func instrumentedWork(tr *Tracer, reg *Registry, buf []byte) uint32 {
	s := tr.Start(nil, "bench/step")
	var sum uint32
	for _, b := range buf {
		sum = sum*31 + uint32(b)
	}
	reg.Counter("bench_bytes_total").Add(int64(len(buf)))
	s.End(I64("bytes", int64(len(buf))))
	return sum
}

// rawWork is the same unit of work with no instrumentation at all.
func rawWork(buf []byte) uint32 {
	var sum uint32
	for _, b := range buf {
		sum = sum*31 + uint32(b)
	}
	return sum
}

var benchSink uint32

func benchBuf() []byte {
	buf := make([]byte, 16*1024)
	for i := range buf {
		buf[i] = byte(i)
	}
	return buf
}

// BenchmarkUninstrumented is the baseline for the nil-tracer overhead
// comparison.
func BenchmarkUninstrumented(b *testing.B) {
	buf := benchBuf()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		benchSink = rawWork(buf)
	}
}

// BenchmarkNilTracer measures the instrumented path with tracing off
// (nil tracer, nil registry) — the cost every pipeline run pays when
// observability is disabled. It must stay within 1% of
// BenchmarkUninstrumented.
func BenchmarkNilTracer(b *testing.B) {
	buf := benchBuf()
	b.SetBytes(int64(len(buf)))
	var tr *Tracer
	var reg *Registry
	for i := 0; i < b.N; i++ {
		benchSink = instrumentedWork(tr, reg, buf)
	}
}

// BenchmarkActiveTracer measures the instrumented path with a live
// tracer, for comparison (events accumulate; Reset keeps memory flat).
func BenchmarkActiveTracer(b *testing.B) {
	buf := benchBuf()
	b.SetBytes(int64(len(buf)))
	tr := New(nil)
	reg := NewRegistry()
	for i := 0; i < b.N; i++ {
		benchSink = instrumentedWork(tr, reg, buf)
		if tr.Len() > 1<<16 {
			tr.Reset()
		}
	}
}

// TestNilTracerOverhead holds the nil fast path to the <1% overhead
// contract: the instrumented step with a nil tracer may not run more
// than 1% slower than the bare step. Medians over several interleaved
// trials damp scheduler noise.
func TestNilTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	buf := benchBuf()
	const trials = 5
	timeIt := func(fn func()) int64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		return res.NsPerOp()
	}
	var raw, nilTr []int64
	var tr *Tracer
	var reg *Registry
	for i := 0; i < trials; i++ {
		raw = append(raw, timeIt(func() { benchSink = rawWork(buf) }))
		nilTr = append(nilTr, timeIt(func() { benchSink = instrumentedWork(tr, reg, buf) }))
	}
	median := func(xs []int64) int64 {
		// insertion sort; tiny slice
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return xs[len(xs)/2]
	}
	base, instr := median(raw), median(nilTr)
	if base == 0 {
		t.Skip("workload too fast to time")
	}
	overhead := 100 * float64(instr-base) / float64(base)
	t.Logf("raw=%dns nil-traced=%dns overhead=%.3f%%", base, instr, overhead)
	if overhead > 1.0 {
		t.Fatalf("nil-tracer overhead %.3f%% exceeds the 1%% contract (raw %dns, instrumented %dns)",
			overhead, base, instr)
	}
}
