package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metric naming scheme. Every canonical instrument name must be
// lower_snake_case and carry a suffix declaring its semantics:
//
//   - counters end in "_total" (monotone event/byte sums);
//   - gauges and histograms end in a unit suffix: "_bytes", "_us",
//     or "_ns".
//
// The scheme keeps the exposition self-describing — a consumer can
// tell rates from sizes from latencies without a side-channel schema —
// and CheckMetricName lets a lint test fail the build when a new
// instrument violates it. Legacy spellings live in legacyAliases until
// their consumers migrate.

// promSuffixes are the accepted unit suffixes for gauges and
// histograms. "_gens" counts checkpoint generations (the replication
// lag unit of the warm-standby plane).
var promSuffixes = []string{"_bytes", "_us", "_ns", "_gens"}

// CheckMetricName validates one metric name against the naming scheme
// for its kind ("counter", "gauge", "histogram"). It returns nil for a
// conforming name and a descriptive error otherwise.
func CheckMetricName(kind, name string) error {
	if name == "" {
		return fmt.Errorf("metric name is empty")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return fmt.Errorf("metric %q: invalid character %q (want lower_snake_case starting with a letter)", name, c)
		}
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %q: missing _total suffix", name)
		}
	case "gauge", "histogram":
		for _, s := range promSuffixes {
			if strings.HasSuffix(name, s) {
				return nil
			}
		}
		return fmt.Errorf("%s %q: missing unit suffix (one of %s)", kind, name, strings.Join(promSuffixes, ", "))
	default:
		return fmt.Errorf("metric %q: unknown kind %q", name, kind)
	}
	return nil
}

// CheckNames validates every canonical instrument registered so far
// against the naming scheme, returning one error per violation sorted
// by name. Alias rows are exempt — they exist precisely because the old
// spelling breaks the scheme.
func (r *Registry) CheckNames() []error {
	var errs []error
	for _, p := range r.Snapshot() {
		if p.AliasOf != "" {
			continue
		}
		if err := CheckMetricName(p.Kind, p.Name); err != nil {
			errs = append(errs, err)
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

// WriteProm writes the registry in the Prometheus text exposition
// format: families sorted by name, one # TYPE line each, histograms
// expanded into cumulative power-of-two le-buckets plus _sum/_count.
// Output is byte-deterministic for a given registry state. Alias rows
// are skipped — exposing both spellings would double-count the series.
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	points := make([]MetricPoint, 0, len(snap))
	for _, p := range snap {
		if p.AliasOf == "" {
			points = append(points, p)
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Name != points[j].Name {
			return points[i].Name < points[j].Name
		}
		return points[i].Kind < points[j].Kind
	})
	hists := map[string]*Histogram{}
	if r != nil {
		r.mu.Lock()
		for name, h := range r.hists {
			hists[name] = h
		}
		r.mu.Unlock()
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
			return err
		}
		switch p.Kind {
		case "histogram":
			h := hists[p.Name]
			var cum int64
			for i := 0; i < HistBuckets && h != nil; i++ {
				n := h.buckets[i].Load()
				if n == 0 {
					continue
				}
				cum += n
				// Bucket i holds v < 2^(i+1), i.e. v <= 2^(i+1)-1 for
				// integer observations.
				le := int64(1)<<(i+1) - 1
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", p.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				p.Name, p.Value, p.Name, p.Sum, p.Name, p.Value); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", p.Name, p.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
