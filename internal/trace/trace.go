// Package trace is ZapC's observability subsystem: span-based tracing
// and a lock-cheap metrics registry over the deterministic virtual
// clock, with JSONL, Chrome-trace (Perfetto-loadable), and plain-text
// exporters.
//
// Transparent checkpoint-restart is undebuggable without phase-level
// introspection — DMTCP and CRIU both grew first-class stats and image
// inspectors for exactly this reason. This package gives the whole
// pipeline (coordinated checkpoint/restart, parallel serialization
// workers, incremental chains, image stores, network drain/reinject,
// supervisor failover, fault injection) one shared seam to report what
// happened and when, without perturbing the simulation.
//
// Two properties are load-bearing:
//
//   - Nil fast path. A nil *Tracer (and the nil *Span it returns) is a
//     valid, do-nothing instrument: every method guards itself, so
//     instrumented code pays a nil check and nothing else when tracing
//     is off. The same holds for a nil *Registry and its instruments.
//
//   - Determinism. Timestamps come from the caller-supplied Clock —
//     the simulation's virtual clock — and events are recorded in
//     emission order from the single-threaded event loop, so two runs
//     with the same seed produce byte-identical JSONL logs. Host time
//     must never leak into an event, and nothing may emit events from
//     host-parallel goroutines (order-independent Registry instruments
//     are safe there; spans are not).
package trace

import (
	"strconv"
	"sync"
)

// Clock supplies timestamps in (virtual) nanoseconds. It is typically
// bound to sim.World.Now.
type Clock func() int64

// Phase markers for Event.Ph, matching the Chrome trace-event phase
// letters so the JSONL log reads the same way the timeline does.
const (
	PhBegin   = "B" // span start
	PhEnd     = "E" // span end
	PhInstant = "I" // instant event (faults, decisions)
)

// Attr is one key/value annotation on a span or instant event.
// Construction is allocation- and formatting-free: integer values are
// rendered only when an event is actually emitted, so attaching attrs
// through a nil tracer costs nothing. Serialized values are plain
// strings, keeping the on-disk form deterministic.
type Attr struct {
	K     string
	s     string
	i     int64
	isInt bool
}

// value renders the attribute value (deferred for integers).
func (a Attr) value() string {
	if a.isInt {
		return strconv.FormatInt(a.i, 10)
	}
	return a.s
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{K: k, s: v} }

// I64 builds an integer attribute.
func I64(k string, v int64) Attr { return Attr{K: k, i: v, isInt: true} }

// Track builds the reserved attribute that assigns an event to a named
// timeline lane (a pod, "manager", "supervisor", "faults"). Spans
// inherit their parent's track when none is given.
func Track(v string) Attr { return Attr{K: trackKey, s: v} }

const trackKey = "track"

// Event is one record of the trace log. The JSON field names are the
// stable on-disk JSONL schema; encoding/json marshals the Args map with
// sorted keys, so serialization is deterministic.
type Event struct {
	T    int64             `json:"t"`             // virtual-clock nanoseconds
	Ph   string            `json:"ph"`            // PhBegin, PhEnd, PhInstant
	Name string            `json:"name"`          // "category/point", e.g. "ckpt/quiesce"
	ID   uint64            `json:"id,omitempty"`  // span id (begin/end pairs share it)
	Par  uint64            `json:"par,omitempty"` // parent span id
	Trk  string            `json:"track,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// Span is one in-flight traced operation. A nil *Span is valid: all
// methods no-op, which is what a nil Tracer hands out.
type Span struct {
	tr    *Tracer
	id    uint64
	par   uint64
	name  string
	track string
}

// Tracer records spans and instant events against a virtual clock.
// A nil *Tracer is a valid, zero-overhead no-op instrument. The Tracer
// itself is not safe for concurrent use: events must be emitted from
// the (single-threaded) simulation event loop, which is also what keeps
// the log deterministic.
type Tracer struct {
	clock  Clock
	nextID uint64
	events []Event
	mirror func(Event)
	mu     sync.Mutex
}

// New creates a tracer over the given clock (nil clock pins t=0, useful
// in tests).
func New(clock Clock) *Tracer {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Tracer{clock: clock}
}

// SetMirror installs a callback invoked synchronously for every emitted
// event (nil removes). Tests hook this to t.Logf so -v runs show the
// live event stream while default runs stay quiet.
func (t *Tracer) SetMirror(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.mirror = fn
	t.mu.Unlock()
}

// Events returns a copy of the recorded event log, in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset drops all recorded events (the id counter keeps running so
// span ids stay unique across resets).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	mirror := t.mirror
	t.mu.Unlock()
	if mirror != nil {
		mirror(ev)
	}
}

// args splits the reserved track attribute out of an attr list.
func args(attrs []Attr) (map[string]string, string) {
	var m map[string]string
	track := ""
	for _, a := range attrs {
		if a.K == trackKey {
			track = a.s
			continue
		}
		if m == nil {
			m = make(map[string]string, len(attrs))
		}
		m[a.K] = a.value()
	}
	return m, track
}

// Start opens a span under parent (nil parent starts a root span). The
// span inherits the parent's track unless a Track attribute overrides
// it. On a nil tracer it returns nil, and every method of the returned
// nil span no-ops.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	m, track := args(attrs)
	var par uint64
	if parent != nil {
		par = parent.id
		if track == "" {
			track = parent.track
		}
	}
	t.nextID++
	s := &Span{tr: t, id: t.nextID, par: par, name: name, track: track}
	t.emit(Event{T: t.clock(), Ph: PhBegin, Name: name, ID: s.id, Par: par, Trk: track, Args: m})
	return s
}

// End closes the span at the current clock reading. Closing attributes
// (byte counts, outcomes) land on the end event. Ending a nil span is
// a no-op; ending twice records two end events — don't.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	m, _ := args(attrs)
	s.tr.emit(Event{T: s.tr.clock(), Ph: PhEnd, Name: s.name, ID: s.id, Par: s.par, Trk: s.track, Args: m})
}

// Instant records a zero-duration event (a fault firing, a supervisor
// decision) under parent (nil parent = root).
func (t *Tracer) Instant(parent *Span, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	m, track := args(attrs)
	var par uint64
	if parent != nil {
		par = parent.id
		if track == "" {
			track = parent.track
		}
	}
	t.emit(Event{T: t.clock(), Ph: PhInstant, Name: name, Par: par, Trk: track, Args: m})
}

// SpanBetween records an already-completed span with explicit virtual
// timestamps. The pipeline uses it for modeled sub-phases — per-worker
// serialization lanes whose schedule is computed analytically inside a
// single event callback — where the clock never actually visits the
// sub-span's endpoints. start/end may lie in the past; exporters order
// by timestamp.
func (t *Tracer) SpanBetween(parent *Span, name string, start, end int64, attrs ...Attr) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	m, track := args(attrs)
	var par uint64
	if parent != nil {
		par = parent.id
		if track == "" {
			track = parent.track
		}
	}
	t.nextID++
	id := t.nextID
	t.emit(Event{T: start, Ph: PhBegin, Name: name, ID: id, Par: par, Trk: track, Args: m})
	t.emit(Event{T: end, Ph: PhEnd, Name: name, ID: id, Par: par, Trk: track})
}
