package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// fakeClock is a manually-advanced clock for tests.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { return c.t }

func TestSpanNestingAndAttrs(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	root := tr.Start(nil, "op/root", Track("manager"), I64("pods", 4))
	clk.t = 10
	child := tr.Start(root, "op/child")
	clk.t = 25
	tr.Instant(child, "op/tick", Str("why", "test"))
	child.End(I64("bytes", 99))
	clk.t = 40
	root.End()

	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("want 5 events, got %d", len(evs))
	}
	if evs[0].Ph != PhBegin || evs[0].Name != "op/root" || evs[0].Trk != "manager" {
		t.Fatalf("bad root begin: %+v", evs[0])
	}
	if evs[0].Args["pods"] != "4" {
		t.Fatalf("root attrs lost: %+v", evs[0].Args)
	}
	if evs[1].Par != evs[0].ID {
		t.Fatalf("child not parented: %+v", evs[1])
	}
	if evs[1].Trk != "manager" {
		t.Fatalf("child did not inherit track: %+v", evs[1])
	}
	if evs[2].Ph != PhInstant || evs[2].T != 25 {
		t.Fatalf("bad instant: %+v", evs[2])
	}
	if evs[3].Ph != PhEnd || evs[3].Args["bytes"] != "99" {
		t.Fatalf("bad child end: %+v", evs[3])
	}
	if evs[4].T != 40 {
		t.Fatalf("bad root end time: %+v", evs[4])
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "x")
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	s.End()                         // must not panic
	tr.Instant(s, "y")              // must not panic
	tr.SpanBetween(nil, "z", 0, 10) // must not panic
	tr.SetMirror(func(ev Event) {}) // must not panic
	if tr.Events() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must report no events")
	}
	tr.Reset()
	if err := (&Tracer{clock: func() int64 { return 0 }}).WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestNilRegistryInstruments(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Gauge("b").SetMax(3)
	r.Histogram("c").Observe(4)
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 || r.Histogram("c").Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(5)
	r.Counter("aa_total").Add(2)
	r.Gauge("peak").SetMax(100)
	r.Gauge("peak").SetMax(50) // lower: must not shrink
	h := r.Histogram("lat_ns")
	h.Observe(1)
	h.Observe(3)
	h.Observe(1024)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("want 4 points, got %d: %+v", len(snap), snap)
	}
	if snap[0].Name != "aa_total" || snap[1].Name != "zz_total" {
		t.Fatalf("counters not sorted: %+v", snap)
	}
	if snap[2].Kind != "gauge" || snap[2].Value != 100 {
		t.Fatalf("gauge SetMax broken: %+v", snap[2])
	}
	hp := snap[3]
	if hp.Value != 3 || hp.Sum != 1028 {
		t.Fatalf("histogram totals wrong: %+v", hp)
	}
	want := []string{"2^0:1", "2^1:1", "2^10:1"}
	if len(hp.Buckets) != len(want) {
		t.Fatalf("buckets: %v", hp.Buckets)
	}
	for i := range want {
		if hp.Buckets[i] != want[i] {
			t.Fatalf("bucket %d: got %s want %s", i, hp.Buckets[i], want[i])
		}
	}
	if !strings.Contains(r.Summary(), "aa_total") {
		t.Fatal("summary missing counter")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	s := tr.Start(nil, "a/b", Track("pod0"), I64("n", 1))
	clk.t = 7
	tr.Instant(nil, "fault/kill", Track("faults"))
	s.End(I64("bytes", 12))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip length: got %d want %d", len(got), len(want))
	}
	for i := range want {
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if !bytes.Equal(g, w) {
			t.Fatalf("event %d: got %s want %s", i, g, w)
		}
	}
}

func TestJSONLDeterministic(t *testing.T) {
	mk := func() []byte {
		clk := &fakeClock{}
		tr := New(clk.now)
		s := tr.Start(nil, "x/y", Str("k1", "v1"), Str("k2", "v2"), Str("k0", "v0"))
		clk.t = 3
		s.End(I64("a", 1), I64("b", 2))
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("identical programs must serialize identically")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"binary":        "\x00\x01\x02\xff",
		"not json":      "hello world\n",
		"truncated":     `{"t":1,"ph":"B","na`,
		"no phase":      `{"t":1,"name":"x"}`,
		"bad phase":     `{"t":1,"ph":"Q","name":"x"}`,
		"no name":       `{"t":1,"ph":"I"}`,
		"negative time": `{"t":-5,"ph":"I","name":"x"}`,
		"span no id":    `{"t":1,"ph":"B","name":"x"}`,
		"trailing":      `{"t":1,"ph":"I","name":"x"} {"t":2,"ph":"I","name":"y"}`,
		"unknown field": `{"t":1,"ph":"I","name":"x","wat":3}`,
	}
	for label, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: want ErrBadTrace, got %v", label, err)
		}
	}
	// Blank lines are tolerated.
	evs, err := ReadJSONL(strings.NewReader("\n\n" + `{"t":1,"ph":"I","name":"x"}` + "\n\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("blank lines: %v %v", evs, err)
	}
}

func TestSpanBetweenAndChromeExport(t *testing.T) {
	clk := &fakeClock{t: 100}
	tr := New(clk.now)
	root := tr.Start(nil, "ckpt/serialize", Track("pod0"))
	clk.t = 200
	// Modeled sub-spans with explicit (past) timestamps.
	tr.SpanBetween(root, "ckpt/worker", 110, 150, I64("worker", 0))
	tr.SpanBetween(root, "ckpt/worker", 110, 190, I64("worker", 1))
	root.End()
	tr.Instant(nil, "fault/crash", Track("faults"))

	data, err := ChromeTrace(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var xs, is, ms int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			xs++
		case "i":
			is++
		case "M":
			ms++
		}
	}
	if xs != 3 || is != 1 || ms < 2 {
		t.Fatalf("want 3 spans, 1 instant, >=2 lane names; got X=%d i=%d M=%d", xs, is, ms)
	}
}

func TestPhaseStats(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	for i := 0; i < 3; i++ {
		s := tr.Start(nil, "p/a")
		clk.t += 10
		s.End()
	}
	s := tr.Start(nil, "p/b")
	clk.t += 100
	s.End()
	tr.Instant(nil, "p/i")
	stats := PhaseStats(tr.Events())
	if len(stats) != 3 {
		t.Fatalf("want 3 phases, got %+v", stats)
	}
	if stats[0].Name != "p/b" || stats[0].Total != 100 {
		t.Fatalf("sort by total: %+v", stats)
	}
	if stats[1].Name != "p/a" || stats[1].Count != 3 || stats[1].Mean() != 10 || stats[1].Max != 10 {
		t.Fatalf("aggregation: %+v", stats[1])
	}
	if !strings.Contains(PhaseSummary(tr.Events()), "p/a") {
		t.Fatal("summary missing phase")
	}
}

func TestMirror(t *testing.T) {
	tr := New(nil)
	var seen []string
	tr.SetMirror(func(ev Event) { seen = append(seen, ev.Ph+":"+ev.Name) })
	s := tr.Start(nil, "m/x")
	s.End()
	tr.SetMirror(nil)
	tr.Instant(nil, "m/quiet")
	if len(seen) != 2 || seen[0] != "B:m/x" || seen[1] != "E:m/x" {
		t.Fatalf("mirror stream: %v", seen)
	}
}
