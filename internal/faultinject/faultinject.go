// Package faultinject is a deterministic fault-injection harness for the
// ZapC simulation. It schedules scripted faults against the sim.World
// clock — node crashes at time or progress triggers, manager crashes
// keyed to coordinated-operation phases, control-message drop/delay, and
// checkpoint-image corruption on the shared FS — so that every recovery
// path in internal/supervisor and internal/core has a reproducible,
// seedable test. The approach follows the OS-level failure-injection
// methodology of Coti & Greneche: faults are declared up front as a
// schedule, armed once, and fired by the simulator itself, never by test
// code polling state.
//
// All triggers derive from the simulation clock and the deterministic
// event order of sim.World, so a given (seed, schedule) pair reproduces
// the exact same failure scenario on every run.
package faultinject

import (
	"errors"
	"fmt"
	"sort"

	"zapc/internal/core"
	"zapc/internal/imagestore"
	"zapc/internal/memfs"
	"zapc/internal/sim"
	"zapc/internal/trace"
	"zapc/internal/vos"
)

// Errors returned by schedule validation.
var (
	ErrBadStep  = errors.New("faultinject: invalid schedule step")
	ErrNoTarget = errors.New("faultinject: step has no fault target")
	ErrDupStep  = errors.New("faultinject: duplicate step name in schedule")
)

// Record logs one fired fault: when it fired (simulated time) and the
// name it was armed under.
type Record struct {
	T    sim.Time
	Name string
}

func (r Record) String() string { return fmt.Sprintf("%v %s", r.T, r.Name) }

type progressTrigger struct {
	threshold float64
	name      string
	action    func()
	fired     bool
}

type phaseTrigger struct {
	phase  core.Phase
	skip   int // occurrences to let pass before firing
	name   string
	action func()
	fired  bool
}

// Injector owns a set of armed fault triggers on one simulation world.
// Create it with New, arm faults with At/AtProgress/OnPhase or a
// declarative Arm schedule, and wire its control-plane hook into a
// manager with InterposeCtrl. Zero or one injector per manager.
type Injector struct {
	w  *sim.World
	fs *memfs.FS

	// Progress probing. The probe is application-defined (typically the
	// job's completed fraction); progress triggers poll it on a fixed
	// simulated cadence so firing times are deterministic.
	progress   func() float64
	probeEvery sim.Duration
	probing    bool
	progTrigs  []*progressTrigger

	// Phase dispatch: the injector takes ownership of the manager's
	// phase hook when ObservePhases is called.
	phaseTrigs []*phaseTrigger
	phaseSeen  map[core.Phase]int

	// Control-plane fault state consulted by the CtrlHook.
	dropLeft   int
	delayBy    sim.Duration
	delayUntil sim.Time

	fired []Record

	tr  *trace.Tracer
	reg *trace.Registry
}

// SetTracer installs an observability pair: every fired fault is then
// also recorded as a "fault/<name>" instant on the faults track (so
// injected faults appear on the same timeline as the pipeline spans
// they perturb) and counted in faults_injected_total. Either may be
// nil; the harness is silent by default.
func (inj *Injector) SetTracer(tr *trace.Tracer, reg *trace.Registry) {
	inj.tr = tr
	inj.reg = reg
}

// New creates an injector on the given world. fs may be nil if no
// corruption faults are used.
func New(w *sim.World, fs *memfs.FS) *Injector {
	return &Injector{
		w:          w,
		fs:         fs,
		probeEvery: 50 * sim.Millisecond,
		phaseSeen:  make(map[core.Phase]int),
	}
}

// SetProgressProbe installs the application progress probe used by
// AtProgress triggers, polled every `every` of simulated time (a
// non-positive cadence keeps the 50ms default). The probe should be a
// monotone completed-fraction in [0,1].
func (inj *Injector) SetProgressProbe(probe func() float64, every sim.Duration) {
	inj.progress = probe
	if every > 0 {
		inj.probeEvery = every
	}
}

// Fired returns the faults that have fired so far, in firing order.
func (inj *Injector) Fired() []Record {
	return append([]Record(nil), inj.fired...)
}

func (inj *Injector) record(name string) {
	inj.fired = append(inj.fired, Record{T: inj.w.Now(), Name: name})
	inj.tr.Instant(nil, "fault/"+name, trace.Track("faults"))
	inj.reg.Counter("faults_injected_total").Add(1)
}

// At arms a fault that fires a fixed delay from now on the simulation
// clock.
func (inj *Injector) At(after sim.Duration, name string, action func()) {
	inj.w.After(after, func() {
		inj.record(name)
		action()
	})
}

// AtProgress arms a fault that fires the first time the progress probe
// reaches threshold. Requires SetProgressProbe.
func (inj *Injector) AtProgress(threshold float64, name string, action func()) {
	inj.progTrigs = append(inj.progTrigs, &progressTrigger{
		threshold: threshold, name: name, action: action,
	})
	inj.startProbing()
}

func (inj *Injector) startProbing() {
	if inj.probing || inj.progress == nil {
		return
	}
	inj.probing = true
	inj.w.After(inj.probeEvery, inj.probeTick)
}

func (inj *Injector) probeTick() {
	p := inj.progress()
	live := 0
	for _, t := range inj.progTrigs {
		if t.fired {
			continue
		}
		if p >= t.threshold {
			t.fired = true
			inj.record(t.name)
			t.action()
			continue
		}
		live++
	}
	if live == 0 {
		inj.probing = false
		return
	}
	inj.w.After(inj.probeEvery, inj.probeTick)
}

// ObservePhases installs the injector as the manager's phase observer so
// OnPhase triggers can fire. It takes ownership of the manager's phase
// hook.
func (inj *Injector) ObservePhases(m *core.Manager) {
	m.SetPhaseHook(func(p core.Phase) { inj.phaseEvent(p) })
}

// OnPhase arms a fault that fires when the observed manager reaches the
// given coordinated-operation phase, after letting `skip` earlier
// occurrences pass (skip=0 fires on the first). Requires ObservePhases.
func (inj *Injector) OnPhase(phase core.Phase, skip int, name string, action func()) {
	inj.phaseTrigs = append(inj.phaseTrigs, &phaseTrigger{
		phase: phase, skip: skip, name: name, action: action,
	})
}

func (inj *Injector) phaseEvent(p core.Phase) {
	seen := inj.phaseSeen[p]
	inj.phaseSeen[p] = seen + 1
	for _, t := range inj.phaseTrigs {
		if t.fired || t.phase != p || seen < t.skip {
			continue
		}
		t.fired = true
		inj.record(t.name)
		t.action()
	}
}

// InterposeCtrl wires the injector's control-plane hook into a manager
// so DropControl/DelayControl faults affect its manager↔agent messages.
func (inj *Injector) InterposeCtrl(m *core.Manager) {
	m.SetCtrlHook(inj.CtrlHook())
}

// CtrlHook returns a core.CtrlHook implementing the armed control-plane
// faults: while a drop budget is outstanding each message consumes one
// unit and is lost; while a delay window is open each message is delayed
// by the armed amount.
func (inj *Injector) CtrlHook() core.CtrlHook {
	return func() (bool, sim.Duration) {
		if inj.dropLeft > 0 {
			inj.dropLeft--
			return true, 0
		}
		if inj.w.Now() < inj.delayUntil {
			return false, inj.delayBy
		}
		return false, 0
	}
}

// CrashNode returns an action that fail-stops the node: every process on
// it dies instantly and it answers no further heartbeats.
func CrashNode(n *vos.Node) func() {
	return func() { n.Fail() }
}

// CrashManager returns an action that fail-stops the coordination
// manager. In-flight coordinated operations observe the failure at
// their next step and abort; pods stay suspended until a replacement
// manager (Recover) takes over.
func CrashManager(m *core.Manager) func() {
	return func() { m.Fail() }
}

// CorruptFile returns an action that flips one byte in the middle of
// the named file on the shared FS, modeling silent storage corruption
// of a checkpoint image. Missing or empty files are left untouched.
func (inj *Injector) CorruptFile(path string) func() {
	return func() { inj.corrupt(path) }
}

// CorruptNewest returns an action that corrupts the lexically last file
// under the given FS prefix at firing time — with generation directories
// numbered by zero-padded sequence, that is the newest checkpoint image.
func (inj *Injector) CorruptNewest(prefix string) func() {
	return func() {
		files := inj.fs.List(prefix)
		if len(files) == 0 {
			return
		}
		sort.Strings(files)
		inj.corrupt(files[len(files)-1])
	}
}

func (inj *Injector) corrupt(path string) {
	data, err := inj.fs.ReadFile(path)
	if err != nil || len(data) == 0 {
		return
	}
	data[len(data)/2] ^= 0xFF
	_ = inj.fs.WriteFile(path, data)
}

// DropControl returns an action that arms a drop budget: the next n
// control-plane messages through the interposed manager are lost.
func (inj *Injector) DropControl(n int) func() {
	return func() { inj.dropLeft += n }
}

// DelayControl returns an action that opens a delay window: control
// messages sent within `window` of firing are delayed by d.
func (inj *Injector) DelayControl(d, window sim.Duration) func() {
	return func() {
		inj.delayBy = d
		inj.delayUntil = inj.w.Now() + sim.Time(window)
	}
}

// Action identifies a declarative fault kind for Step schedules.
type Action int

// Declarative fault kinds.
const (
	ActCrashNode Action = iota + 1
	ActCrashManager
	ActCorruptImage // corrupt newest file under Step.Path
	ActDropControl
	ActDelayControl
	ActTruncateStream // truncate the next Count image write streams (Step.Trunc)
	ActTruncateReads  // truncate the next Count image read streams (Step.Trunc)
	ActRecoverManager // a replacement coordination manager takes over
	ActTruncateFeed   // truncate the next Count standby replication-feed streams (Step.Trunc)
)

func (a Action) String() string {
	switch a {
	case ActCrashNode:
		return "crash-node"
	case ActCrashManager:
		return "crash-manager"
	case ActCorruptImage:
		return "corrupt-image"
	case ActDropControl:
		return "drop-control"
	case ActDelayControl:
		return "delay-control"
	case ActTruncateStream:
		return "truncate-stream"
	case ActTruncateReads:
		return "truncate-reads"
	case ActRecoverManager:
		return "recover-manager"
	case ActTruncateFeed:
		return "truncate-feed"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// ParseAction is the inverse of Action.String, used by the declarative
// JSON schedule grammar. Unknown names return zero.
func ParseAction(s string) Action {
	for a := ActCrashNode; a <= ActTruncateFeed; a++ {
		if a.String() == s {
			return a
		}
	}
	return 0
}

// Step is one entry of a declarative fault schedule. Exactly one
// trigger must be set: After (relative simulated time), Progress (probe
// threshold, requires SetProgressProbe), or Phase (requires
// ObservePhases; PhaseSkip lets earlier occurrences pass). The target
// fields required depend on Action.
type Step struct {
	Name string

	// Trigger (exactly one).
	After     sim.Duration
	Progress  float64
	Phase     core.Phase
	PhaseSkip int

	Action  Action
	Node    *vos.Node              // ActCrashNode
	Manager *core.Manager          // ActCrashManager, ActRecoverManager
	Path    string                 // ActCorruptImage: FS prefix of the generation store
	Count   int                    // ActDropControl/ActTruncate*: units (default 1)
	Delay   sim.Duration           // ActDelayControl: per-message delay
	Window  sim.Duration           // ActDelayControl: window length
	Trunc   *imagestore.TruncStore // ActTruncateStream/ActTruncateReads/ActTruncateFeed
}

// triggerKind classifies a step's trigger for canonical ordering:
// time triggers first, then progress, then phase. Steps with no valid
// trigger sort last (compile rejects them anyway).
func triggerKind(s Step) int {
	switch {
	case s.After > 0:
		return 0
	case s.Progress > 0:
		return 1
	case s.Phase != 0:
		return 2
	default:
		return 3
	}
}

// stepLess is the canonical schedule order: by trigger kind, trigger
// value, action, then name. Arming a schedule in canonical order makes
// a (seed, schedule) replay independent of declaration order — ties at
// one simulated instant fire in canonical order, not source order.
func stepLess(a, b Step) bool {
	ka, kb := triggerKind(a), triggerKind(b)
	if ka != kb {
		return ka < kb
	}
	switch ka {
	case 0:
		if a.After != b.After {
			return a.After < b.After
		}
	case 1:
		if a.Progress != b.Progress {
			return a.Progress < b.Progress
		}
	case 2:
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.PhaseSkip != b.PhaseSkip {
			return a.PhaseSkip < b.PhaseSkip
		}
	}
	if a.Action != b.Action {
		return a.Action < b.Action
	}
	return a.Name < b.Name
}

// stepName is the step's armed name: explicit, or synthesized from the
// canonical position so unnamed schedules replay stably too.
func stepName(i int, s Step) string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("step%d:%s", i, s.Action)
}

// Arm validates and registers a declarative schedule. Steps fire
// independently. The schedule is armed in canonical order (trigger
// kind, trigger value, action, name), not declaration order, and
// duplicate step names are rejected — together these make a
// (seed, schedule) pair replay identically no matter how the schedule
// was assembled. A schedule error arms nothing.
func (inj *Injector) Arm(steps []Step) error {
	ordered := append([]Step(nil), steps...)
	sort.SliceStable(ordered, func(i, j int) bool { return stepLess(ordered[i], ordered[j]) })
	actions := make([]func(), len(ordered))
	names := make(map[string]int, len(ordered))
	for i, s := range ordered {
		act, err := inj.compile(i, s)
		if err != nil {
			return err
		}
		actions[i] = act
		name := stepName(i, s)
		if j, dup := names[name]; dup {
			return fmt.Errorf("%w: steps %d and %d are both named %q", ErrDupStep, j, i, name)
		}
		names[name] = i
	}
	for i, s := range ordered {
		name := stepName(i, s)
		switch {
		case s.After > 0:
			inj.At(s.After, name, actions[i])
		case s.Progress > 0:
			inj.AtProgress(s.Progress, name, actions[i])
		case s.Phase != 0:
			inj.OnPhase(s.Phase, s.PhaseSkip, name, actions[i])
		}
	}
	return nil
}

func (inj *Injector) compile(i int, s Step) (func(), error) {
	triggers := 0
	if s.After > 0 {
		triggers++
	}
	if s.Progress > 0 {
		triggers++
	}
	if s.Phase != 0 {
		triggers++
	}
	if triggers != 1 {
		return nil, fmt.Errorf("%w: step %d (%s) needs exactly one trigger, has %d",
			ErrBadStep, i, s.Name, triggers)
	}
	if s.Progress > 0 && inj.progress == nil {
		return nil, fmt.Errorf("%w: step %d (%s) uses a progress trigger but no probe is set",
			ErrBadStep, i, s.Name)
	}
	switch s.Action {
	case ActCrashNode:
		if s.Node == nil {
			return nil, fmt.Errorf("%w: step %d (%s) crash-node without Node", ErrNoTarget, i, s.Name)
		}
		return CrashNode(s.Node), nil
	case ActCrashManager:
		if s.Manager == nil {
			return nil, fmt.Errorf("%w: step %d (%s) crash-manager without Manager", ErrNoTarget, i, s.Name)
		}
		return CrashManager(s.Manager), nil
	case ActCorruptImage:
		if s.Path == "" {
			return nil, fmt.Errorf("%w: step %d (%s) corrupt-image without Path", ErrNoTarget, i, s.Name)
		}
		if inj.fs == nil {
			return nil, fmt.Errorf("%w: step %d (%s) corrupt-image without an FS", ErrBadStep, i, s.Name)
		}
		return inj.CorruptNewest(s.Path), nil
	case ActDropControl:
		n := s.Count
		if n <= 0 {
			n = 1
		}
		return inj.DropControl(n), nil
	case ActDelayControl:
		if s.Delay <= 0 || s.Window <= 0 {
			return nil, fmt.Errorf("%w: step %d (%s) delay-control needs Delay and Window", ErrBadStep, i, s.Name)
		}
		return inj.DelayControl(s.Delay, s.Window), nil
	case ActTruncateStream, ActTruncateReads, ActTruncateFeed:
		if s.Trunc == nil {
			return nil, fmt.Errorf("%w: step %d (%s) %s without a truncating store", ErrNoTarget, i, s.Name, s.Action)
		}
		n := s.Count
		if n <= 0 {
			n = 1
		}
		ts, reads := s.Trunc, s.Action == ActTruncateReads
		return func() {
			if reads {
				ts.ArmReads(n)
			} else {
				ts.ArmWrites(n)
			}
		}, nil
	case ActRecoverManager:
		if s.Manager == nil {
			return nil, fmt.Errorf("%w: step %d (%s) recover-manager without Manager", ErrNoTarget, i, s.Name)
		}
		m := s.Manager
		return func() { m.Recover() }, nil
	default:
		return nil, fmt.Errorf("%w: step %d (%s) unknown action %d", ErrBadStep, i, s.Name, int(s.Action))
	}
}
