package faultinject

import (
	"errors"
	"reflect"
	"testing"

	"zapc/internal/core"
	"zapc/internal/memfs"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

func TestTimeTriggerFiresAndRecords(t *testing.T) {
	w := sim.NewWorld(1)
	inj := New(w, nil)
	hit := false
	inj.At(10*sim.Millisecond, "boom", func() { hit = true })
	w.Run()
	if !hit {
		t.Fatal("action did not fire")
	}
	fired := inj.Fired()
	if len(fired) != 1 || fired[0].Name != "boom" || fired[0].T != sim.Time(10*sim.Millisecond) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestProgressTriggerFiresOnce(t *testing.T) {
	w := sim.NewWorld(1)
	inj := New(w, nil)
	// Progress advances with simulated time: 0 at t=0, 1 at t=1s.
	inj.SetProgressProbe(func() float64 {
		return float64(w.Now()) / float64(sim.Second)
	}, 10*sim.Millisecond)
	count := 0
	inj.AtProgress(0.5, "half", func() { count++ })
	w.RunUntil(sim.Time(2 * sim.Second))
	if count != 1 {
		t.Fatalf("fired %d times, want 1", count)
	}
	fired := inj.Fired()
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	// The 50%% threshold on a 10ms cadence trips at the first poll at or
	// after t=500ms.
	if fired[0].T < sim.Time(500*sim.Millisecond) || fired[0].T > sim.Time(520*sim.Millisecond) {
		t.Fatalf("fired at %v", fired[0].T)
	}
}

func TestCorruptFileFlipsOneByte(t *testing.T) {
	w := sim.NewWorld(1)
	fs := memfs.New()
	orig := []byte("abcdefgh")
	if err := fs.WriteFile("d/x.img", append([]byte(nil), orig...)); err != nil {
		t.Fatal(err)
	}
	inj := New(w, fs)
	inj.CorruptFile("d/x.img")()
	got, _ := fs.ReadFile("d/x.img")
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 || got[len(got)/2] == orig[len(orig)/2] {
		t.Fatalf("corruption changed %d bytes: %q -> %q", diff, orig, got)
	}
}

func TestCorruptNewestPicksLexicallyLast(t *testing.T) {
	w := sim.NewWorld(1)
	fs := memfs.New()
	fs.WriteFile("g/gen0000/a.img", []byte("older-generation"))
	fs.WriteFile("g/gen0001/a.img", []byte("newer-generation"))
	inj := New(w, fs)
	inj.CorruptNewest("g")()
	oldData, _ := fs.ReadFile("g/gen0000/a.img")
	newData, _ := fs.ReadFile("g/gen0001/a.img")
	if string(oldData) != "older-generation" {
		t.Fatal("older generation was touched")
	}
	if string(newData) == "newer-generation" {
		t.Fatal("newest generation was not corrupted")
	}
}

func TestCtrlHookDropBudgetAndDelayWindow(t *testing.T) {
	w := sim.NewWorld(1)
	inj := New(w, nil)
	hook := inj.CtrlHook()

	inj.DropControl(2)()
	for i := 0; i < 2; i++ {
		if drop, _ := hook(); !drop {
			t.Fatalf("message %d not dropped", i)
		}
	}
	if drop, _ := hook(); drop {
		t.Fatal("drop budget did not expire")
	}

	inj.DelayControl(5*sim.Millisecond, 100*sim.Millisecond)()
	if _, d := hook(); d != 5*sim.Millisecond {
		t.Fatalf("delay = %v inside window", d)
	}
	w.After(200*sim.Millisecond, func() {})
	w.Run()
	if _, d := hook(); d != 0 {
		t.Fatalf("delay = %v after window closed", d)
	}
}

func TestPhaseTriggerSkipsOccurrences(t *testing.T) {
	w := sim.NewWorld(1)
	inj := New(w, nil)
	fired := 0
	inj.OnPhase(core.PhaseCheckpointStart, 1, "second-start", func() { fired++ })
	inj.OnPhase(core.PhaseMetaSync, 0, "other-phase", func() { t.Fatal("wrong phase fired") })
	// Deliver phase notifications the way a manager with ObservePhases
	// installed would.
	for i := 0; i < 3; i++ {
		inj.phaseEvent(core.PhaseCheckpointStart)
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly once (on the second occurrence)", fired)
	}
	if recs := inj.Fired(); len(recs) != 1 || recs[0].Name != "second-start" {
		t.Fatalf("records = %v", recs)
	}
}

func TestArmValidation(t *testing.T) {
	w := sim.NewWorld(1)
	fs := memfs.New()
	n := vos.NewNode(w, "n0", 1)
	inj := New(w, fs)

	cases := []struct {
		name string
		step Step
	}{
		{"no trigger", Step{Action: ActCrashNode, Node: n}},
		{"two triggers", Step{After: sim.Second, Progress: 0.5, Action: ActCrashNode, Node: n}},
		{"progress without probe", Step{Progress: 0.5, Action: ActCrashNode, Node: n}},
		{"crash-node without node", Step{After: sim.Second, Action: ActCrashNode}},
		{"crash-manager without manager", Step{After: sim.Second, Action: ActCrashManager}},
		{"corrupt without path", Step{After: sim.Second, Action: ActCorruptImage}},
		{"delay without window", Step{After: sim.Second, Action: ActDelayControl}},
		{"unknown action", Step{After: sim.Second}},
	}
	for _, tc := range cases {
		if err := inj.Arm([]Step{tc.step}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !errors.Is(err, ErrBadStep) && !errors.Is(err, ErrNoTarget) {
			t.Errorf("%s: err = %v", tc.name, err)
		}
	}
	if len(inj.Fired()) != 0 {
		t.Fatal("invalid schedules must arm nothing")
	}
}

// TestDeterministicReplay runs an identical schedule in two fresh worlds
// with the same seed and asserts the fired faults are bit-identical —
// the property that makes injected failures reproducible.
func TestDeterministicReplay(t *testing.T) {
	run := func() []Record {
		w := sim.NewWorld(77)
		fs := memfs.New()
		fs.WriteFile("g/gen0000/a.img", []byte("generation-zero!"))
		n := vos.NewNode(w, "n0", 1)
		inj := New(w, fs)
		inj.SetProgressProbe(func() float64 {
			// Progress with deterministic jitter from the world's RNG.
			p := float64(w.Now()) / float64(sim.Second)
			return p + w.Rand().Float64()*1e-9
		}, 25*sim.Millisecond)
		if err := inj.Arm([]Step{
			{Name: "drop", After: 100 * sim.Millisecond, Action: ActDropControl, Count: 3},
			{Name: "corrupt", Progress: 0.4, Action: ActCorruptImage, Path: "g"},
			{Name: "kill", Progress: 0.8, Action: ActCrashNode, Node: n},
			{Name: "delay", After: 600 * sim.Millisecond, Action: ActDelayControl,
				Delay: sim.Millisecond, Window: 50 * sim.Millisecond},
		}); err != nil {
			t.Fatal(err)
		}
		w.RunUntil(sim.Time(2 * sim.Second))
		return inj.Fired()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%v\n%v", a, b)
	}
	if len(a) != 4 {
		t.Fatalf("fired %d faults, want 4: %v", len(a), a)
	}
}
