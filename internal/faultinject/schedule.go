// Declarative, serializable fault schedules. A Schedule is the
// cluster-independent form of an Injector schedule: targets are
// symbolic (a node index, a store prefix) instead of live pointers, so
// a schedule round-trips through JSON byte-for-byte and a minimized
// failing schedule is a self-contained fixture — decode, Bind against
// a fresh cluster, Arm, replay. Validation errors always name the bad
// step (index and name) so a hand-edited or corrupted fixture fails
// loudly instead of arming a subtly different scenario.
package faultinject

import (
	"bytes"
	"encoding/json"
	"fmt"

	"zapc/internal/core"
	"zapc/internal/imagestore"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// SpecStep is one serializable schedule entry. Exactly one trigger
// must be set: AfterNS (relative simulated time, nanoseconds),
// Progress (probe threshold in (0,1]), or Phase (symbolic coordinated-
// operation phase name, with PhaseSkip occurrences let through first).
// Action is the symbolic fault kind; the target fields required depend
// on it, mirroring Step.
type SpecStep struct {
	Name string `json:"name,omitempty"`

	// Trigger (exactly one).
	AfterNS   int64   `json:"after_ns,omitempty"`
	Progress  float64 `json:"progress,omitempty"`
	Phase     string  `json:"phase,omitempty"`
	PhaseSkip int     `json:"phase_skip,omitempty"`

	Action   string `json:"action"`
	Node     int    `json:"node,omitempty"`      // crash-node: cluster node index
	Path     string `json:"path,omitempty"`      // corrupt-image: generation-store prefix
	Count    int    `json:"count,omitempty"`     // drop-control / truncate-*: units
	DelayNS  int64  `json:"delay_ns,omitempty"`  // delay-control: per-message delay
	WindowNS int64  `json:"window_ns,omitempty"` // delay-control: window length
}

// Schedule is a serializable fault schedule.
type Schedule struct {
	Steps []SpecStep `json:"steps"`
}

// Env resolves a Schedule's symbolic targets when binding it to a live
// cluster. Fields may be nil/empty if no step needs them.
type Env struct {
	Nodes []*vos.Node
	Mgr   *core.Manager
	// Trunc is the armable stream-truncation wrapper around the
	// manager's image store (required by truncate-stream/truncate-reads
	// steps).
	Trunc *imagestore.TruncStore
	// FeedTrunc is the armable truncation wrapper on the warm standby's
	// replication feed (required by truncate-feed steps; only present
	// when the scenario attaches a standby plane).
	FeedTrunc *imagestore.TruncStore
}

func (s SpecStep) describe(i int) string {
	if s.Name != "" {
		return fmt.Sprintf("step %d (%s)", i, s.Name)
	}
	return fmt.Sprintf("step %d", i)
}

// validate checks one step's grammar independent of any cluster.
func (s SpecStep) validate(i int) error {
	triggers := 0
	if s.AfterNS > 0 {
		triggers++
	}
	if s.Progress > 0 {
		triggers++
	}
	if s.Phase != "" {
		triggers++
	}
	if triggers != 1 {
		return fmt.Errorf("%w: %s needs exactly one trigger (after_ns, progress, or phase), has %d",
			ErrBadStep, s.describe(i), triggers)
	}
	if s.Progress > 1 {
		return fmt.Errorf("%w: %s progress %v is outside (0,1]", ErrBadStep, s.describe(i), s.Progress)
	}
	if s.Phase != "" && core.ParsePhase(s.Phase) == 0 {
		return fmt.Errorf("%w: %s names unknown phase %q", ErrBadStep, s.describe(i), s.Phase)
	}
	act := ParseAction(s.Action)
	if act == 0 {
		return fmt.Errorf("%w: %s names unknown action %q", ErrBadStep, s.describe(i), s.Action)
	}
	switch act {
	case ActCrashNode:
		if s.Node < 0 {
			return fmt.Errorf("%w: %s crash-node with negative node index %d", ErrBadStep, s.describe(i), s.Node)
		}
	case ActCorruptImage:
		if s.Path == "" {
			return fmt.Errorf("%w: %s corrupt-image without path", ErrNoTarget, s.describe(i))
		}
	case ActDelayControl:
		if s.DelayNS <= 0 || s.WindowNS <= 0 {
			return fmt.Errorf("%w: %s delay-control needs delay_ns and window_ns", ErrBadStep, s.describe(i))
		}
	}
	return nil
}

// Validate checks the whole schedule grammar: per-step triggers and
// targets, plus schedule-level rules (unique explicit names). The
// error names the first bad step.
func (s Schedule) Validate() error {
	names := make(map[string]int, len(s.Steps))
	for i, st := range s.Steps {
		if err := st.validate(i); err != nil {
			return err
		}
		if st.Name == "" {
			continue
		}
		if j, dup := names[st.Name]; dup {
			return fmt.Errorf("%w: steps %d and %d are both named %q", ErrDupStep, j, i, st.Name)
		}
		names[st.Name] = i
	}
	return nil
}

// EncodeSchedule serializes a validated schedule as deterministic,
// indented JSON (the fixture format under testdata/chaos).
func EncodeSchedule(s Schedule) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSchedule parses and validates a JSON schedule. Unknown fields
// are rejected — a fixture that drifted from the grammar fails loudly,
// naming the problem, rather than arming a different scenario.
func DecodeSchedule(data []byte) (Schedule, error) {
	var s Schedule
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Schedule{}, fmt.Errorf("%w: %v", ErrBadStep, err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// Bind resolves the schedule's symbolic targets against a live cluster,
// returning concrete Steps ready for Arm. Binding re-validates: a node
// index out of range or a missing environment piece errors naming the
// step.
func (s Schedule) Bind(env Env) ([]Step, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	steps := make([]Step, 0, len(s.Steps))
	for i, st := range s.Steps {
		out := Step{
			Name:      st.Name,
			After:     sim.Duration(st.AfterNS),
			Progress:  st.Progress,
			PhaseSkip: st.PhaseSkip,
			Path:      st.Path,
			Count:     st.Count,
			Delay:     sim.Duration(st.DelayNS),
			Window:    sim.Duration(st.WindowNS),
		}
		if st.Phase != "" {
			out.Phase = core.ParsePhase(st.Phase)
		}
		act := ParseAction(st.Action)
		out.Action = act
		switch act {
		case ActCrashNode:
			if st.Node >= len(env.Nodes) {
				return nil, fmt.Errorf("%w: %s crash-node index %d outside cluster of %d nodes",
					ErrNoTarget, st.describe(i), st.Node, len(env.Nodes))
			}
			out.Node = env.Nodes[st.Node]
		case ActCrashManager, ActRecoverManager:
			if env.Mgr == nil {
				return nil, fmt.Errorf("%w: %s %s without a manager in the environment",
					ErrNoTarget, st.describe(i), st.Action)
			}
			out.Manager = env.Mgr
		case ActTruncateStream, ActTruncateReads:
			if env.Trunc == nil {
				return nil, fmt.Errorf("%w: %s %s without a truncating store in the environment",
					ErrNoTarget, st.describe(i), st.Action)
			}
			out.Trunc = env.Trunc
		case ActTruncateFeed:
			if env.FeedTrunc == nil {
				return nil, fmt.Errorf("%w: %s %s without a standby feed in the environment",
					ErrNoTarget, st.describe(i), st.Action)
			}
			out.Trunc = env.FeedTrunc
		}
		steps = append(steps, out)
	}
	return steps, nil
}

// Spec converts a concrete bound Step back to its serializable form.
// Pointer targets become symbolic using the environment (the node's
// index); a target not present in env errors. It is the inverse of
// Bind, used when a generator composes concrete steps and the harness
// needs the fixture form.
func Spec(s Step, env Env) (SpecStep, error) {
	out := SpecStep{
		Name:      s.Name,
		AfterNS:   int64(s.After),
		Progress:  s.Progress,
		PhaseSkip: s.PhaseSkip,
		Action:    s.Action.String(),
		Path:      s.Path,
		Count:     s.Count,
		DelayNS:   int64(s.Delay),
		WindowNS:  int64(s.Window),
	}
	if s.Phase != 0 {
		out.Phase = s.Phase.String()
	}
	if s.Action == ActCrashNode {
		idx := -1
		for i, n := range env.Nodes {
			if n == s.Node {
				idx = i
				break
			}
		}
		if idx < 0 {
			return SpecStep{}, fmt.Errorf("%w: step (%s) crash-node target not in environment", ErrNoTarget, s.Name)
		}
		out.Node = idx
	}
	return out, nil
}
