package faultinject

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"zapc/internal/imagestore"
	"zapc/internal/memfs"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

func sampleSchedule() Schedule {
	return Schedule{Steps: []SpecStep{
		{Name: "kill", Progress: 0.5, Action: "crash-node", Node: 1},
		{Name: "corrupt", AfterNS: int64(2 * sim.Second), Action: "corrupt-image", Path: "chaos"},
		{Name: "drop", Phase: "checkpoint-start", Action: "drop-control", Count: 4},
		{Name: "slow", AfterNS: int64(sim.Second), Action: "delay-control",
			DelayNS: int64(5 * sim.Millisecond), WindowNS: int64(sim.Second)},
		{Name: "cut", Phase: "restart-start", Action: "truncate-reads", Count: 1},
	}}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := sampleSchedule()
	data, err := EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", s, back)
	}
	// Encoding is byte-deterministic — fixtures diff cleanly.
	again, err := EncodeSchedule(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding produced different bytes")
	}
}

func TestScheduleValidationNamesBadStep(t *testing.T) {
	cases := []struct {
		label string
		s     Schedule
		want  string // substring the error must carry
	}{
		{"no trigger", Schedule{Steps: []SpecStep{{Name: "x", Action: "crash-node"}}}, "step 0 (x)"},
		{"two triggers", Schedule{Steps: []SpecStep{
			{Name: "y", AfterNS: 1, Progress: 0.5, Action: "crash-node"}}}, "step 0 (y)"},
		{"unknown action", Schedule{Steps: []SpecStep{
			{AfterNS: 1, Action: "set-on-fire"}}}, `unknown action "set-on-fire"`},
		{"unknown phase", Schedule{Steps: []SpecStep{
			{Phase: "warp", Action: "drop-control"}}}, `unknown phase "warp"`},
		{"corrupt without path", Schedule{Steps: []SpecStep{
			{AfterNS: 1, Action: "corrupt-image"}}}, "without path"},
		{"delay without window", Schedule{Steps: []SpecStep{
			{AfterNS: 1, Action: "delay-control"}}}, "delay_ns and window_ns"},
		{"progress out of range", Schedule{Steps: []SpecStep{
			{Progress: 1.5, Action: "crash-node"}}}, "outside (0,1]"},
		{"duplicate names", Schedule{Steps: []SpecStep{
			{Name: "dup", AfterNS: 1, Action: "drop-control"},
			{Name: "dup", AfterNS: 2, Action: "drop-control"}}}, `both named "dup"`},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.label)
			continue
		}
		if !errors.Is(err, ErrBadStep) && !errors.Is(err, ErrNoTarget) && !errors.Is(err, ErrDupStep) {
			t.Errorf("%s: unnamed error %v", tc.label, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.label, err, tc.want)
		}
	}
}

func TestDecodeScheduleRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSchedule([]byte(`{"steps":[{"action":"drop-control","after_ns":1,"blast_radius":3}]}`))
	if !errors.Is(err, ErrBadStep) {
		t.Fatalf("err = %v, want ErrBadStep", err)
	}
}

func TestScheduleBindResolvesTargets(t *testing.T) {
	w := sim.NewWorld(1)
	nodes := []*vos.Node{vos.NewNode(w, "n0", 1), vos.NewNode(w, "n1", 1)}
	env := Env{Nodes: nodes, Trunc: imagestore.Truncating(imagestore.NewFS(memfs.New()))}
	steps, err := sampleSchedule().Bind(env)
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].Node != nodes[1] {
		t.Fatalf("crash-node bound to %v", steps[0].Node)
	}
	if steps[4].Trunc != env.Trunc {
		t.Fatal("truncate-reads not bound to the env store")
	}

	// Out-of-range node index names the step.
	bad := Schedule{Steps: []SpecStep{{Name: "kill", AfterNS: 1, Action: "crash-node", Node: 7}}}
	if _, err := bad.Bind(env); err == nil || !strings.Contains(err.Error(), "step 0 (kill)") {
		t.Fatalf("bind err = %v", err)
	}
	// Truncation without a store in the env.
	cut := Schedule{Steps: []SpecStep{{AfterNS: 1, Action: "truncate-stream"}}}
	if _, err := cut.Bind(Env{Nodes: nodes}); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("bind err = %v", err)
	}
	// Manager actions without a manager.
	rec := Schedule{Steps: []SpecStep{{AfterNS: 1, Action: "recover-manager"}}}
	if _, err := rec.Bind(env); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("bind err = %v", err)
	}
}

// TestArmRejectsDuplicateNames pins the schedule-level rule on the
// concrete Arm path too (Validate covers the serializable form).
func TestArmRejectsDuplicateNames(t *testing.T) {
	w := sim.NewWorld(1)
	inj := New(w, memfs.New())
	err := inj.Arm([]Step{
		{Name: "same", After: sim.Second, Action: ActDropControl},
		{Name: "same", After: 2 * sim.Second, Action: ActDropControl},
	})
	if !errors.Is(err, ErrDupStep) {
		t.Fatalf("err = %v, want ErrDupStep", err)
	}
	if len(inj.Fired()) != 0 {
		t.Fatal("schedule error must arm nothing")
	}
}

// TestArmOrderIndependent arms the same schedule in two declaration
// orders and asserts the fired records are identical — canonical
// ordering makes (seed, schedule) replay stable.
func TestArmOrderIndependent(t *testing.T) {
	run := func(perm func(s []Step) []Step) []Record {
		w := sim.NewWorld(9)
		inj := New(w, memfs.New())
		steps := []Step{
			// Three faults at the same instant: only canonical ordering
			// keeps their firing (and hence record) order stable.
			{Name: "b-drop", After: 100 * sim.Millisecond, Action: ActDropControl, Count: 1},
			{Name: "a-delay", After: 100 * sim.Millisecond, Action: ActDelayControl,
				Delay: sim.Millisecond, Window: sim.Second},
			{Name: "c-drop", After: 100 * sim.Millisecond, Action: ActDropControl, Count: 2},
			{Name: "later", After: 300 * sim.Millisecond, Action: ActDropControl},
		}
		if err := inj.Arm(perm(steps)); err != nil {
			t.Fatal(err)
		}
		w.RunUntil(sim.Time(sim.Second))
		return inj.Fired()
	}
	fwd := run(func(s []Step) []Step { return s })
	rev := run(func(s []Step) []Step {
		out := make([]Step, len(s))
		for i, st := range s {
			out[len(s)-1-i] = st
		}
		return out
	})
	if !reflect.DeepEqual(fwd, rev) {
		t.Fatalf("declaration order changed the replay:\n%v\n%v", fwd, rev)
	}
	if len(fwd) != 4 {
		t.Fatalf("fired %d faults, want 4", len(fwd))
	}
}

// TestSpecInverseOfBind pins Step -> SpecStep -> Bind round-tripping.
func TestSpecInverseOfBind(t *testing.T) {
	w := sim.NewWorld(1)
	nodes := []*vos.Node{vos.NewNode(w, "n0", 1), vos.NewNode(w, "n1", 1)}
	env := Env{Nodes: nodes}
	step := Step{Name: "kill", Progress: 0.25, Action: ActCrashNode, Node: nodes[1]}
	spec, err := Spec(step, env)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Node != 1 || spec.Action != "crash-node" {
		t.Fatalf("spec = %+v", spec)
	}
	back, err := Schedule{Steps: []SpecStep{spec}}.Bind(env)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back[0], step) {
		t.Fatalf("bind(spec) = %+v, want %+v", back[0], step)
	}
}
