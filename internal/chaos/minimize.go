// Delta-debugging schedule minimization. When a (seed, schedule) run
// violates the invariant — or produces a named error worth pinning —
// the minimizer shrinks the schedule to a locally minimal reproducer:
// the smallest step subset (preserving order) from which no single step
// can be removed without losing the verdict. Every candidate is a full
// deterministic re-run, so the result is exact, not heuristic.
package chaos

import "zapc/internal/faultinject"

// Minimize shrinks sched to a locally minimal schedule that still
// reproduces verdict want (replay equality) under seed. It returns the
// minimized schedule, its verdict, and how many candidate runs the
// search used. The input schedule is not modified.
func (r *Runner) Minimize(seed int64, sched faultinject.Schedule, want Verdict) (faultinject.Schedule, Verdict, int, error) {
	cur, v := sched, want
	runs := 0
	for changed := true; changed && len(cur.Steps) > 1; {
		changed = false
		for i := 0; i < len(cur.Steps); i++ {
			cand := dropStep(cur, i)
			got, err := r.Run(seed, cand)
			if err != nil {
				return cur, v, runs, err
			}
			runs++
			if got.Same(want) {
				cur, v = cand, got
				changed = true
				i-- // the step now at i has not been tried against cur
			}
		}
	}
	return cur, v, runs, nil
}

func dropStep(s faultinject.Schedule, i int) faultinject.Schedule {
	out := make([]faultinject.SpecStep, 0, len(s.Steps)-1)
	out = append(out, s.Steps[:i]...)
	out = append(out, s.Steps[i+1:]...)
	return faultinject.Schedule{Steps: out}
}
