package chaos

import (
	"strings"
	"testing"
)

// TestStandbyBandInvariant sweeps the warm-standby seed band: every
// composed replication-surface fault schedule — standby crashes racing
// promotion, feed cuts, lossy control planes — must end in recovered
// or a named error, never a hang or corrupt state. The band must also
// actually exercise the promotion path: at least one run's failover is
// served by the standby, and at least one run kills the standby.
func TestStandbyBandInvariant(t *testing.T) {
	results, err := Sweep(DefaultConfig(), StandbySeedBase, StandbySeedBase+23)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Outcome]int{}
	promoted, standbyKilled, feedCut := 0, 0, 0
	for _, res := range results {
		if !res.Config.Standby {
			t.Fatalf("seed %d in the standby band ran without a standby", res.Seed)
		}
		if res.Verdict.Bug() {
			t.Errorf("seed %d: invariant violated: %s (%s)", res.Seed, res.Verdict, res.Verdict.Detail)
		}
		counts[res.Verdict.Outcome]++
		if res.Verdict.Promotions > 0 {
			promoted++
		}
		for _, st := range res.Schedule.Steps {
			if st.Action == "crash-node" && st.Node == res.Config.Nodes {
				standbyKilled++
			}
			if st.Action == "truncate-feed" {
				feedCut++
			}
		}
	}
	if counts[OutRecovered] == 0 {
		t.Fatalf("standby band never recovered: %v", counts)
	}
	if promoted == 0 {
		t.Fatal("standby band never exercised the promotion path")
	}
	if standbyKilled == 0 || feedCut == 0 {
		t.Fatalf("standby band compositions not diverse: %d standby kills, %d feed cuts",
			standbyKilled, feedCut)
	}
}

// TestStandbyBandDeterministic pins replayability for the new band:
// identical sweeps yield identical verdicts, and the minimized corpus
// (when a seed pins a named error) is byte-identical.
func TestStandbyBandDeterministic(t *testing.T) {
	one, err := Sweep(DefaultConfig(), StandbySeedBase, StandbySeedBase+11)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Sweep(DefaultConfig(), StandbySeedBase, StandbySeedBase+11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if !one[i].Verdict.Same(two[i].Verdict) {
			t.Fatalf("seed %d verdicts diverged: %s vs %s", one[i].Seed, one[i].Verdict, two[i].Verdict)
		}
	}
}

// TestStandbyBandTemplateShape pins the generator contract for the
// band: every schedule contains a primary-node crash (the promotion
// trigger), and only standby-surface faults ride along.
func TestStandbyBandTemplateShape(t *testing.T) {
	for seed := int64(StandbySeedBase); seed < StandbySeedBase+16; seed++ {
		cfg := ConfigForSeed(DefaultConfig(), seed)
		if !cfg.Standby || cfg.Fanout != 0 {
			t.Fatalf("seed %d config = standby:%v fanout:%d, want standby on a flat plane",
				seed, cfg.Standby, cfg.Fanout)
		}
		s := Generate(seed, cfg)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d generated invalid schedule: %v", seed, err)
		}
		primaryCrash := false
		for _, st := range s.Steps {
			switch {
			case st.Action == "crash-node" && st.Node < cfg.Nodes:
				primaryCrash = true
			case st.Action == "crash-node": // standby kill
			case st.Action == "truncate-feed" || st.Action == "delay-control":
			default:
				t.Fatalf("seed %d: unexpected action in standby template: %+v", seed, st)
			}
		}
		if !primaryCrash {
			t.Fatalf("seed %d: no primary crash to force a promotion decision: %v", seed, s.Steps)
		}
	}
}

// TestStandbyFeedCutFixtureReplays pins a hand-reduced standby-band
// scenario end to end through the runner: a feed cut plus a primary
// crash must still recover (promotion or watermark-resumed replication
// plus store fallback), and the verdict must name zero bugs.
func TestStandbyFeedCutFixtureReplays(t *testing.T) {
	cfg := ConfigForSeed(DefaultConfig(), StandbySeedBase)
	sched := Generate(StandbySeedBase, cfg)
	cut := false
	for _, st := range sched.Steps {
		cut = cut || st.Action == "truncate-feed"
	}
	if !cut {
		t.Fatalf("seed %d no longer draws a feed cut: %v", StandbySeedBase, sched.Steps)
	}
	v, err := NewRunner(cfg).Run(StandbySeedBase, sched)
	if err != nil {
		t.Fatal(err)
	}
	if v.Bug() {
		t.Fatalf("verdict %s (%s)", v, v.Detail)
	}
	if strings.Contains(v.Detail, "hang") {
		t.Fatalf("unexpected hang detail: %s", v.Detail)
	}
}
