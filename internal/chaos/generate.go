// Seeded schedule generation. Each seed deterministically expands into
// one fault schedule drawn from a small set of composition templates,
// so a contiguous seed range is guaranteed to exercise the fault
// compositions the recovery surface must survive — crash landing on
// corrupted images, control-plane drop+delay during the checkpoint
// barrier, stream truncation during failover — plus a free-form
// template that composes arbitrary faults (including manager outages
// and multi-node wipeouts that must end in a *named* error).
package chaos

import (
	"fmt"
	"math/rand"

	"zapc/internal/faultinject"
	"zapc/internal/sim"
)

// TreeSeedBase starts the tree-topology seed band: seeds at or above
// it run with a fanout-2 coordination tree and draw schedules from the
// tree-barrier template, so sub-coordinator crashes and lossy tree
// edges get their own deterministic corner of the seed space without
// perturbing the flat-band seed pins below.
const TreeSeedBase = 10000

// StandbySeedBase starts the warm-standby seed band: seeds at or above
// it attach a standby replication plane and draw schedules from the
// replication-surface template (standby crash mid-apply, feed cuts,
// promotion racing the primary's failure), so the promote-the-standby
// failover path gets its own deterministic corner of the seed space.
const StandbySeedBase = 20000

// ConfigForSeed derives the per-seed scenario: odd seeds run the
// incremental delta-chain pipeline, even seeds the pre-copy pipeline,
// so a contiguous range sweeps both recovery surfaces through every
// template. Seeds in the tree band additionally route coordination
// through a fanout-2 tree (the deepest tree four endpoints allow);
// seeds in the standby band attach a warm standby on a flat control
// plane instead.
func ConfigForSeed(base Config, seed int64) Config {
	c := base.withDefaults()
	c.Incremental = seed%2 == 1
	switch {
	case seed >= StandbySeedBase:
		c.Standby = true
	case seed >= TreeSeedBase:
		c.Fanout = 2
	}
	return c
}

// Generate expands a seed into its fault schedule under cfg. The same
// (seed, cfg) always yields the identical schedule — the generator owns
// its own rand.Source, decoupled from the simulation's.
func Generate(seed int64, cfg Config) faultinject.Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	var steps []faultinject.SpecStep
	switch {
	case seed >= StandbySeedBase:
		steps = genStandby(rng, cfg)
	case seed >= TreeSeedBase:
		steps = genTreeBarrier(rng, cfg)
	default:
		steps = genFlat(rng, cfg, seed)
	}
	// Names are assigned by generation position; Arm's canonical
	// ordering makes firing order independent of this order anyway.
	for i := range steps {
		steps[i].Name = fmt.Sprintf("s%d-%s", i, steps[i].Action)
	}
	return faultinject.Schedule{Steps: steps}
}

func genFlat(rng *rand.Rand, cfg Config, seed int64) []faultinject.SpecStep {
	var steps []faultinject.SpecStep
	switch (seed / 2) % 4 {
	case 0:
		steps = genCrashCorrupt(rng, cfg)
	case 1:
		steps = genBarrierDropDelay(rng, cfg)
	case 2:
		steps = genTruncateFailover(rng, cfg)
	default:
		steps = genFreeform(rng, cfg)
	}
	return steps
}

// genTreeBarrier is the tree-band template: kill the sub-coordinator
// (member 0 — node 0 under round-robin placement — relays for half the
// members at fanout 2) right as a checkpoint barrier opens, while the
// tree edges are lossy. A dropped tree edge loses the whole subtree
// behind it, so the watchdog must abort the attempt and the supervisor
// must retry or fail over — never hang, never serve a half-barriered
// image.
func genTreeBarrier(rng *rand.Rand, cfg Config) []faultinject.SpecStep {
	skip := rng.Intn(3)
	steps := []faultinject.SpecStep{
		{Phase: "checkpoint-start", PhaseSkip: skip, Action: "drop-control", Count: 1 + rng.Intn(4)},
		{Phase: "checkpoint-start", PhaseSkip: skip, Action: "crash-node", Node: 0},
	}
	if rng.Intn(2) == 0 { // and sometimes a slow tree edge on top
		steps = append(steps, faultinject.SpecStep{
			Phase: "checkpoint-start", PhaseSkip: skip, Action: "delay-control",
			DelayNS: msIn(rng, 1, 40), WindowNS: msIn(rng, 200, 1200)})
	}
	return steps
}

// genStandby is the standby-band template: a primary-node crash forces
// a promotion decision while the replication surface is itself under
// attack. The composition rotates through the standby node dying right
// around the primary's failure (promotion must never be attempted
// against a dead or dying standby), a replication-feed cut that the
// plane must resume from, the promoted standby being killed after it
// served a failover (the second recovery falls back to the store with
// the replica consumed), a total wipeout that takes the standby along
// with every primary (the only legal endings are named errors), and a
// lossy control plane delaying the detector across the promotion.
// Whatever fires, the invariant is unchanged: recover exactly — via
// promotion or store fallback — or fail named, never hang.
func genStandby(rng *rand.Rand, cfg Config) []faultinject.SpecStep {
	p := progIn(rng, 0.3, 0.6)
	steps := []faultinject.SpecStep{
		{Progress: p, Action: "crash-node", Node: rng.Intn(cfg.Nodes)},
	}
	standbyNode := cfg.Nodes // AttachStandby appends it after the primaries
	switch rng.Intn(5) {
	case 0:
		// Standby dies just before (or at) the primary crash: promotion
		// races the plane's death and must fall back to the store.
		off := 0.05 * float64(rng.Intn(2))
		steps = append(steps, faultinject.SpecStep{
			Progress: p - off, Action: "crash-node", Node: standbyNode})
	case 1:
		// Feed cut mid-replication before the crash: the plane must
		// resume from its ack watermark and still serve the promotion.
		steps = append(steps, faultinject.SpecStep{
			Progress: progIn(rng, 0.1, 0.25), Action: "truncate-feed", Count: 1 + rng.Intn(2)})
	case 2:
		// Kill the promoted standby after it served the failover: the
		// second recovery runs with the replica consumed.
		steps = append(steps, faultinject.SpecStep{
			Progress: p + 0.1, Action: "crash-node", Node: standbyNode})
	case 3:
		// Total wipeout, standby included: staggered crashes take every
		// node, so promotion (if it wins the race) only buys a doomed
		// reprieve. The run must end in ErrNoSurvivors or ErrGivenUp —
		// a warm replica must not turn an unsurvivable fault set into a
		// hang or a silent wrong answer.
		at := msIn(rng, 300, 1200)
		steps = steps[:0]
		for i := 0; i <= standbyNode; i++ {
			steps = append(steps, faultinject.SpecStep{AfterNS: at, Action: "crash-node", Node: i})
			at += msIn(rng, 10, 250)
		}
	default:
		// Lossy control plane across the promotion window.
		steps = append(steps, faultinject.SpecStep{
			Progress: p, Action: "delay-control",
			DelayNS: msIn(rng, 1, 40), WindowNS: msIn(rng, 200, 1200)})
	}
	if rng.Intn(3) == 0 { // sometimes a feed cut rides along
		steps = append(steps, faultinject.SpecStep{
			Progress: progIn(rng, 0.1, 0.3), Action: "truncate-feed", Count: 1})
	}
	return steps
}

// msIn draws a whole-millisecond duration in [lo, hi] ms. Quantizing to
// 1ms keeps fixtures readable and diffs small.
func msIn(rng *rand.Rand, lo, hi int) int64 {
	return int64(lo+rng.Intn(hi-lo+1)) * int64(sim.Millisecond)
}

// progIn draws a progress threshold in [lo, hi], quantized to 0.05.
func progIn(rng *rand.Rand, lo, hi float64) float64 {
	steps := int((hi-lo)/0.05 + 0.5)
	return lo + 0.05*float64(rng.Intn(steps+1))
}

// genCrashCorrupt: corrupt the newest generation, then crash a node a
// little later — failover must detect the corruption, skip the
// generation, and restart from the previous valid one.
func genCrashCorrupt(rng *rand.Rand, cfg Config) []faultinject.SpecStep {
	p := progIn(rng, 0.25, 0.6)
	steps := []faultinject.SpecStep{
		{Progress: p, Action: "corrupt-image", Path: cfg.Dir},
		{Progress: p + 0.1, Action: "crash-node", Node: rng.Intn(cfg.Nodes)},
	}
	if rng.Intn(3) == 0 { // sometimes the fallback generation is bad too
		steps = append(steps, faultinject.SpecStep{
			Progress: p + 0.05, Action: "corrupt-image", Path: cfg.Dir})
	}
	return steps
}

// genBarrierDropDelay: drop and delay control messages right as a
// checkpoint barrier opens (the pre-copy readiness barrier on the
// non-incremental pipeline), composing both faults on the same phase
// occurrence.
func genBarrierDropDelay(rng *rand.Rand, cfg Config) []faultinject.SpecStep {
	skip := rng.Intn(3)
	steps := []faultinject.SpecStep{
		{Phase: "checkpoint-start", PhaseSkip: skip, Action: "drop-control", Count: 1 + rng.Intn(4)},
		{Phase: "checkpoint-start", PhaseSkip: skip, Action: "delay-control",
			DelayNS: msIn(rng, 1, 40), WindowNS: msIn(rng, 200, 1200)},
	}
	if rng.Intn(2) == 0 { // and sometimes a crash while the plane is lossy
		steps = append(steps, faultinject.SpecStep{
			Phase: "checkpoint-start", PhaseSkip: skip + 1, Action: "crash-node", Node: rng.Intn(cfg.Nodes)})
	}
	return steps
}

// genTruncateFailover: arm image-stream truncation, then crash a node —
// the cuts land on the streams the failover writes or restores, which
// must surface the named truncation error and recover on retry.
func genTruncateFailover(rng *rand.Rand, cfg Config) []faultinject.SpecStep {
	p := progIn(rng, 0.2, 0.7)
	act := "truncate-reads"
	if rng.Intn(2) == 0 {
		act = "truncate-stream"
	}
	return []faultinject.SpecStep{
		{Progress: p, Action: act, Count: 1 + rng.Intn(2)},
		{Progress: p, Action: "crash-node", Node: rng.Intn(cfg.Nodes)},
	}
}

// genFreeform composes 1..MaxSteps arbitrary faults. Manager crashes
// come paired with a recovery most of the time; runs that wipe out
// every node or exhaust the retry budget must still terminate with a
// named error.
func genFreeform(rng *rand.Rand, cfg Config) []faultinject.SpecStep {
	switch rng.Intn(8) {
	case 0:
		// Total wipeout: every node crashes at staggered times. The only
		// legal endings are ErrNoSurvivors (or ErrGivenUp when the last
		// crash lands mid-restart) — and never a hang.
		at := msIn(rng, 300, 1200)
		steps := make([]faultinject.SpecStep, cfg.Nodes)
		for i := range steps {
			steps[i] = faultinject.SpecStep{AfterNS: at, Action: "crash-node", Node: i}
			at += msIn(rng, 10, 250)
		}
		return steps
	case 1:
		// Manager outage straddling a node failure: failover cannot talk
		// to anyone, so the retry budget must run out as ErrGivenUp
		// (unless the crash precedes the first generation).
		at := msIn(rng, 300, 1500)
		return []faultinject.SpecStep{
			{AfterNS: at, Action: "crash-manager"},
			{AfterNS: at + msIn(rng, 10, 100), Action: "crash-node", Node: rng.Intn(cfg.Nodes)},
		}
	}
	n := 1 + rng.Intn(cfg.MaxSteps)
	var steps []faultinject.SpecStep
	for len(steps) < n {
		st := faultinject.SpecStep{}
		switch rng.Intn(3) {
		case 0:
			st.AfterNS = msIn(rng, 100, 1800)
		case 1:
			st.Progress = progIn(rng, 0.1, 0.9)
		default:
			st.Phase = []string{"checkpoint-start", "meta-sync", "checkpoint-done"}[rng.Intn(3)]
			st.PhaseSkip = rng.Intn(3)
		}
		switch rng.Intn(7) {
		case 0:
			st.Action = "crash-node"
			st.Node = rng.Intn(cfg.Nodes)
		case 1:
			st.Action = "drop-control"
			st.Count = 1 + rng.Intn(5)
		case 2:
			st.Action = "delay-control"
			st.DelayNS = msIn(rng, 1, 50)
			st.WindowNS = msIn(rng, 100, 1000)
		case 3:
			st.Action = "corrupt-image"
			st.Path = cfg.Dir
		case 4:
			st.Action = "truncate-stream"
			st.Count = 1 + rng.Intn(2)
		case 5:
			st.Action = "truncate-reads"
			st.Count = 1 + rng.Intn(2)
		default:
			at := msIn(rng, 100, 1500)
			st.AfterNS, st.Progress, st.Phase, st.PhaseSkip = at, 0, "", 0
			st.Action = "crash-manager"
			steps = append(steps, st)
			if rng.Intn(4) != 0 { // usually heal the manager later
				steps = append(steps, faultinject.SpecStep{
					AfterNS: at + msIn(rng, 100, 600), Action: "recover-manager"})
			}
			continue
		}
		steps = append(steps, st)
	}
	return steps
}
