package chaos

import (
	"bytes"
	"testing"

	"zapc/internal/faultinject"
)

// TestTreeBandInvariant sweeps the tree-topology seed band: every run
// coordinates through a fanout-2 tree while the generator crashes the
// member-0 sub-coordinator mid-barrier and drops/delays tree-edge
// control messages. The global invariant must hold exactly as on the
// flat band — recovered or named error, never a hang or corrupt state.
func TestTreeBandInvariant(t *testing.T) {
	results, err := Sweep(DefaultConfig(), TreeSeedBase, TreeSeedBase+12)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Outcome]int{}
	for _, res := range results {
		if res.Config.Fanout != 2 {
			t.Fatalf("seed %d: tree-band config lost its fanout: %+v", res.Seed, res.Config)
		}
		if res.Verdict.Bug() {
			t.Errorf("seed %d: invariant violated: %s (%s)", res.Seed, res.Verdict, res.Verdict.Detail)
		}
		counts[res.Verdict.Outcome]++
	}
	if counts[OutRecovered] == 0 {
		t.Fatalf("tree band never recovered: %v", counts)
	}
}

// TestTreeBandDeterministic: tree-band seeds replay to byte-identical
// schedules and equal verdicts, like the flat band.
func TestTreeBandDeterministic(t *testing.T) {
	one, err := Sweep(DefaultConfig(), TreeSeedBase, TreeSeedBase+6)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Sweep(DefaultConfig(), TreeSeedBase, TreeSeedBase+6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		a, _ := faultinject.EncodeSchedule(one[i].Schedule)
		b, _ := faultinject.EncodeSchedule(two[i].Schedule)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d generated different schedules across sweeps", one[i].Seed)
		}
		if !one[i].Verdict.Same(two[i].Verdict) {
			t.Fatalf("seed %d verdicts diverged: %s vs %s", one[i].Seed, one[i].Verdict, two[i].Verdict)
		}
	}
}

// TestTreeBandTemplate pins the tree-band generator shape: every seed
// in the band crashes the sub-coordinator node (member 0 lands on node
// 0 under round-robin placement) and perturbs the control plane at a
// checkpoint barrier.
func TestTreeBandTemplate(t *testing.T) {
	for seed := int64(TreeSeedBase); seed < TreeSeedBase+16; seed++ {
		cfg := ConfigForSeed(DefaultConfig(), seed)
		if cfg.Fanout != 2 {
			t.Fatalf("seed %d: ConfigForSeed did not select the tree band", seed)
		}
		s := Generate(seed, cfg)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d generated invalid schedule: %v", seed, err)
		}
		var crash, drop bool
		for _, st := range s.Steps {
			if st.Phase != "checkpoint-start" {
				t.Fatalf("seed %d: tree-band fault not barrier-triggered: %+v", seed, st)
			}
			switch st.Action {
			case "crash-node":
				if st.Node != 0 {
					t.Fatalf("seed %d: crash missed the sub-coordinator node: %+v", seed, st)
				}
				crash = true
			case "drop-control":
				drop = true
			}
		}
		if !crash || !drop {
			t.Fatalf("seed %d: template missing crash(%v)/drop(%v)", seed, crash, drop)
		}
	}
	// The flat bands must be untouched by the tree band's existence.
	if cfg := ConfigForSeed(DefaultConfig(), TreeSeedBase-1); cfg.Fanout != 0 {
		t.Fatalf("flat-band seed gained a fanout: %+v", cfg)
	}
}
