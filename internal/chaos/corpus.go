// Corpus sweeps: the bounded fuzzing mode behind `make chaos` and the
// zapc-chaos driver. A sweep expands every seed in a range into its
// schedule, runs it, and turns every non-recovered run into a minimized
// regression fixture — named errors pin the classification gate, bugs
// pin their reproducers.
package chaos

import (
	"fmt"

	"zapc/internal/faultinject"
)

// SweepResult is one seed's run within a sweep.
type SweepResult struct {
	Seed     int64
	Config   Config
	Schedule faultinject.Schedule
	Verdict  Verdict
}

// Sweep runs every seed in [lo, hi] through Generate under
// ConfigForSeed(base, seed) and returns the verdicts in seed order.
func Sweep(base Config, lo, hi int64) ([]SweepResult, error) {
	var out []SweepResult
	for seed := lo; seed <= hi; seed++ {
		cfg := ConfigForSeed(base, seed)
		sched := Generate(seed, cfg)
		v, err := NewRunner(cfg).Run(seed, sched)
		if err != nil {
			return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
		}
		out = append(out, SweepResult{Seed: seed, Config: cfg, Schedule: sched, Verdict: v})
	}
	return out, nil
}

// BuildCorpus minimizes every non-recovered sweep result into a
// fixture. The fixtures are deterministic: the same seed range over the
// same base config always yields byte-identical corpus files.
func BuildCorpus(results []SweepResult) ([]Fixture, error) {
	var out []Fixture
	for _, res := range results {
		if res.Verdict.Outcome == OutRecovered {
			continue
		}
		r := NewRunner(res.Config)
		min, v, runs, err := r.Minimize(res.Seed, res.Schedule, res.Verdict)
		if err != nil {
			return nil, fmt.Errorf("chaos: minimizing seed %d: %w", res.Seed, err)
		}
		out = append(out, Fixture{
			Schema: FixtureSchema,
			Seed:   res.Seed,
			Note: fmt.Sprintf("minimized %d->%d steps in %d runs",
				len(res.Schedule.Steps), len(min.Steps), runs),
			Config:   res.Config,
			Schedule: min,
			Verdict:  v,
		})
	}
	return out, nil
}
