// Package chaos is a seeded fuzzer over the full recovery surface of
// the ZapC reproduction. Where internal/faultinject replays hand-written
// fault schedules, chaos *searches* the schedule space: a seeded
// generator composes random schedules — node and manager crashes at
// time/progress/phase triggers, control-plane drop/delay, checkpoint
// image corruption, image-stream truncation — runs each (seed, schedule)
// pair against a supervised reference workload, and checks one global
// invariant per run:
//
//	The cluster either recovers to a state exactly equivalent to an
//	undisturbed reference run with the same seed, or fails with a
//	named error. It never hangs (a simulated-clock deadline watchdog
//	plus a livelock bound guarantee every run terminates with a
//	verdict) and never serves corrupt state.
//
// The approach follows the bounded randomized fault schedules of
// ByzzFuzz/netrix with a single correctness oracle, built on the
// declare-then-fire injection methodology already used by the
// deterministic harness. On an invariant violation a delta-debugging
// minimizer shrinks the schedule to a locally minimal reproducer and
// serializes it — seed, config, schedule, verdict — as a JSON fixture
// that replays forever in the regression corpus under testdata/chaos.
package chaos

import (
	"errors"
	"fmt"

	"zapc/internal/cluster"
	"zapc/internal/core"
	"zapc/internal/faultinject"
	"zapc/internal/imagestore"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
	"zapc/internal/trace"
)

// Config pins everything about a chaos run except the seed and the
// schedule, and serializes into fixtures so a replay rebuilds the
// identical scenario. Durations are nanoseconds of simulated time.
type Config struct {
	Nodes       int     `json:"nodes"`
	App         string  `json:"app"`
	Endpoints   int     `json:"endpoints"`
	Work        float64 `json:"work"`
	Scale       float64 `json:"scale"`
	WithDaemons bool    `json:"with_daemons,omitempty"`

	// Supervision policy for the run.
	Incremental       bool   `json:"incremental,omitempty"`
	Workers           int    `json:"workers,omitempty"`
	CheckpointEveryNS int64  `json:"checkpoint_every_ns"`
	HeartbeatNS       int64  `json:"heartbeat_ns"`
	Retain            int    `json:"retain"`
	Dir               string `json:"dir"`

	// DeadlineNS is the hang watchdog: simulated time budget for the
	// whole faulted run, sized well past the worst legitimate
	// retry/backoff/restart chain.
	DeadlineNS int64 `json:"deadline_ns"`

	// MaxSteps bounds generated schedule length (the ByzzFuzz-style
	// smallness prior: short schedules localize causes).
	MaxSteps int `json:"max_steps,omitempty"`

	// Fanout routes the run's coordinated operations through a
	// coordination tree of this arity (0 = flat control plane). The
	// tree-band seeds set it so chaos exercises sub-coordinator
	// crashes and lossy tree edges mid-barrier.
	Fanout int `json:"fanout,omitempty"`

	// Standby attaches a warm-standby replication plane to the
	// supervised job. The standby-band seeds set it so promotion racing
	// the primary's failure, replication-feed cuts, and the standby
	// node dying mid-apply get their own deterministic corner of the
	// seed space. The standby node is appended after the primary nodes,
	// so schedules target it as node index Nodes.
	Standby bool `json:"standby,omitempty"`
}

// DefaultConfig is the canonical chaos scenario: the four-endpoint cpi
// workload of the equivalence tests, supervised on a tight checkpoint
// cadence so a run crosses many generations, with GC pressure (small
// Retain) and a deadline far beyond any legitimate recovery chain.
func DefaultConfig() Config {
	return Config{
		Nodes:             4,
		App:               "cpi",
		Endpoints:         4,
		Work:              0.2,
		Scale:             0.002,
		WithDaemons:       true,
		Workers:           3,
		CheckpointEveryNS: int64(200 * sim.Millisecond),
		HeartbeatNS:       int64(50 * sim.Millisecond),
		Retain:            2,
		Dir:               "chaos",
		DeadlineNS:        int64(600 * sim.Second),
		MaxSteps:          5,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Nodes <= 0 {
		c.Nodes = d.Nodes
	}
	if c.App == "" {
		c.App = d.App
	}
	if c.Endpoints <= 0 {
		c.Endpoints = d.Endpoints
	}
	if c.Work <= 0 {
		c.Work = d.Work
	}
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	if c.CheckpointEveryNS <= 0 {
		c.CheckpointEveryNS = d.CheckpointEveryNS
	}
	if c.HeartbeatNS <= 0 {
		c.HeartbeatNS = d.HeartbeatNS
	}
	if c.Retain <= 0 {
		c.Retain = d.Retain
	}
	if c.Dir == "" {
		c.Dir = d.Dir
	}
	if c.DeadlineNS <= 0 {
		c.DeadlineNS = d.DeadlineNS
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = d.MaxSteps
	}
	return c
}

// Outcome classifies one chaos run against the global invariant.
type Outcome string

// Run outcomes. Recovered and NamedError satisfy the invariant; the
// rest are bugs.
const (
	// OutRecovered: the job finished with a result exactly equal to the
	// undisturbed reference run.
	OutRecovered Outcome = "recovered"
	// OutNamedError: recovery terminally failed, but with one of the
	// recovery surface's named errors (no valid checkpoint, no
	// survivors, retry budget exhausted, ...).
	OutNamedError Outcome = "named-error"
	// OutHang: the deadline watchdog, livelock bound, or a drained
	// event queue stopped a run that was never going to produce a
	// verdict on its own. Always a bug.
	OutHang Outcome = "hang"
	// OutCorrupt: the job finished but its result differs from the
	// reference — corrupt state was served. Always a bug.
	OutCorrupt Outcome = "corrupt-state"
	// OutUnnamedError: recovery failed with an error outside the named
	// set. A bug: operators cannot classify it.
	OutUnnamedError Outcome = "unnamed-error"
)

// Verdict is the checked outcome of one (seed, schedule) run.
type Verdict struct {
	Outcome Outcome `json:"outcome"`
	// ErrName identifies the named error class for OutNamedError (and
	// records the closest class for OutUnnamedError, usually empty).
	ErrName string `json:"err_name,omitempty"`
	// Result is the job result for runs that finished.
	Result float64 `json:"result,omitempty"`
	// FaultsFired counts schedule steps that actually fired.
	FaultsFired int `json:"faults_fired"`
	// Checkpoints, Failovers, and Promotions record supervisor activity
	// (informational; not part of replay equality).
	Checkpoints int `json:"checkpoints,omitempty"`
	Failovers   int `json:"failovers,omitempty"`
	Promotions  int `json:"promotions,omitempty"`
	// Detail is a human-readable note (not part of replay equality).
	Detail string `json:"detail,omitempty"`
}

// Bug reports whether the verdict violates the global invariant.
func (v Verdict) Bug() bool {
	return v.Outcome != OutRecovered && v.Outcome != OutNamedError
}

// Same is replay equality: outcome, named-error class, result, and the
// number of fired faults must all reproduce. Detail and activity
// counters are informational.
func (v Verdict) Same(o Verdict) bool {
	return v.Outcome == o.Outcome && v.ErrName == o.ErrName &&
		v.Result == o.Result && v.FaultsFired == o.FaultsFired
}

func (v Verdict) String() string {
	s := string(v.Outcome)
	if v.ErrName != "" {
		s += "/" + v.ErrName
	}
	return fmt.Sprintf("%s faults=%d ckpts=%d failovers=%d", s, v.FaultsFired, v.Checkpoints, v.Failovers)
}

// errName maps an error to its named class, or "" when it is outside
// the named set (which the invariant treats as a bug).
func errName(err error) string {
	switch {
	case errors.Is(err, supervisor.ErrNoValidCheckpoint):
		return "ErrNoValidCheckpoint"
	case errors.Is(err, supervisor.ErrNoSurvivors):
		return "ErrNoSurvivors"
	case errors.Is(err, supervisor.ErrGivenUp):
		return "ErrGivenUp"
	case errors.Is(err, cluster.ErrCorruptImage):
		return "ErrCorruptImage"
	case errors.Is(err, imagestore.ErrTruncatedStream):
		return "ErrTruncatedStream"
	case errors.Is(err, core.ErrTimeout):
		return "ErrTimeout"
	default:
		return ""
	}
}

// Runner executes (seed, schedule) pairs under one Config, caching the
// per-seed reference results the oracle compares against.
type Runner struct {
	cfg Config
	ref map[int64]float64
}

// NewRunner builds a runner (the config is defaulted once, here).
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), ref: make(map[int64]float64)}
}

// Config returns the effective (defaulted) config.
func (r *Runner) Config() Config { return r.cfg }

func (r *Runner) spec() cluster.JobSpec {
	return cluster.JobSpec{
		App:         r.cfg.App,
		Endpoints:   r.cfg.Endpoints,
		Work:        r.cfg.Work,
		Scale:       r.cfg.Scale,
		WithDaemons: r.cfg.WithDaemons,
	}
}

// reference runs the seed undisturbed and returns the oracle result.
func (r *Runner) reference(seed int64) (float64, error) {
	if v, ok := r.ref[seed]; ok {
		return v, nil
	}
	c := cluster.New(cluster.Config{Nodes: r.cfg.Nodes, Seed: seed})
	job, err := c.Launch(r.spec())
	if err != nil {
		return 0, err
	}
	wd := sim.Watchdog{W: c.W, Deadline: sim.Duration(r.cfg.DeadlineNS)}
	if err := wd.Drive(job.Finished); err != nil {
		return 0, fmt.Errorf("chaos: reference run seed %d: %w", seed, err)
	}
	r.ref[seed] = job.Result()
	return job.Result(), nil
}

// Run executes one (seed, schedule) pair and classifies it against the
// invariant. The returned error is a harness failure (bad schedule,
// launch error), never a property violation — those are verdicts.
func (r *Runner) Run(seed int64, sched faultinject.Schedule) (Verdict, error) {
	v, _, _, err := r.run(seed, sched, false)
	return v, err
}

// RunTraced is Run with cluster tracing enabled: every fired fault,
// supervision decision, and pipeline span of the run lands on one
// virtual-clock timeline, and the verdict itself is recorded as a
// chaos/verdict instant. Use it to export a failing seed's story to
// Perfetto.
func (r *Runner) RunTraced(seed int64, sched faultinject.Schedule) (Verdict, *trace.Tracer, *trace.Registry, error) {
	return r.run(seed, sched, true)
}

func (r *Runner) run(seed int64, sched faultinject.Schedule, traced bool) (Verdict, *trace.Tracer, *trace.Registry, error) {
	want, err := r.reference(seed)
	if err != nil {
		return Verdict{}, nil, nil, err
	}

	c := cluster.New(cluster.Config{Nodes: r.cfg.Nodes, Seed: seed, Fanout: r.cfg.Fanout})
	if traced {
		c.EnableTracing()
	}
	job, err := c.Launch(r.spec())
	if err != nil {
		return Verdict{}, nil, nil, err
	}
	// The truncation harness wraps whatever store the manager flushes
	// to (including the traced wrapper), so armed cuts hit the same
	// streams the supervisor validates and restores from.
	trunc := imagestore.Truncating(c.Mgr.Store())
	c.Mgr.SetStore(trunc)

	sup, err := c.Supervise(job, supervisor.Policy{
		HeartbeatInterval: sim.Duration(r.cfg.HeartbeatNS),
		CheckpointEvery:   sim.Duration(r.cfg.CheckpointEveryNS),
		Incremental:       r.cfg.Incremental,
		Workers:           r.cfg.Workers,
		Retain:            r.cfg.Retain,
		Dir:               r.cfg.Dir,
		Fanout:            r.cfg.Fanout,
	})
	if err != nil {
		return Verdict{}, nil, nil, err
	}

	// The standby plane attaches before binding so the schedule can
	// target both its node (appended to c.Nodes by AttachStandby) and
	// its replication feed.
	var feedTrunc *imagestore.TruncStore
	if r.cfg.Standby {
		plane, err := c.AttachStandby(sup, cluster.StandbyConfig{})
		if err != nil {
			return Verdict{}, nil, nil, err
		}
		feedTrunc = plane.Trunc()
	}

	inj := faultinject.New(c.W, c.FS)
	inj.ObservePhases(c.Mgr)
	inj.InterposeCtrl(c.Mgr)
	// Heartbeats share the control plane: drop/delay faults perturb the
	// failure detector too, not just coordinated operations.
	sup.SetCtrlHook(inj.CtrlHook())
	inj.SetTracer(c.Tracer(), c.Metrics())
	inj.SetProgressProbe(job.Progress, 0)

	steps, err := sched.Bind(faultinject.Env{Nodes: c.Nodes, Mgr: c.Mgr, Trunc: trunc, FeedTrunc: feedTrunc})
	if err != nil {
		return Verdict{}, nil, nil, err
	}
	if err := inj.Arm(steps); err != nil {
		return Verdict{}, nil, nil, err
	}

	wd := sim.Watchdog{W: c.W, Deadline: sim.Duration(r.cfg.DeadlineNS)}
	derr := wd.Drive(func() bool { return job.Finished() || sup.Err() != nil })

	v := Verdict{FaultsFired: len(inj.Fired())}
	st := sup.Stats()
	v.Checkpoints, v.Failovers, v.Promotions = st.Checkpoints, st.Failovers, st.Promotions
	switch {
	case derr == nil && job.Finished():
		v.Result = job.Result()
		if v.Result == want {
			v.Outcome = OutRecovered
		} else {
			v.Outcome = OutCorrupt
			v.Detail = fmt.Sprintf("result %v != reference %v", v.Result, want)
		}
	case derr == nil: // supervisor halted
		herr := sup.Err()
		if name := errName(herr); name != "" {
			v.Outcome = OutNamedError
			v.ErrName = name
		} else {
			v.Outcome = OutUnnamedError
		}
		v.Detail = herr.Error()
	default:
		v.Outcome = OutHang
		v.ErrName = ""
		v.Detail = fmt.Sprintf("%v at t=%v (supervisor running=%v)", derr, c.W.Now(), sup.Running())
	}
	if traced {
		c.Tracer().Instant(nil, "chaos/verdict", trace.Track("chaos"),
			trace.Str("outcome", string(v.Outcome)), trace.Str("err", v.ErrName))
	}
	return v, c.Tracer(), c.Metrics(), nil
}
