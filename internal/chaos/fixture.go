// Regression fixtures. A fixture is a self-contained, replayable record
// of one chaos finding: seed, full scenario config, (minimized)
// schedule, and the verdict it must reproduce. Fixtures are
// byte-deterministic JSON so the corpus under testdata/chaos diffs
// cleanly and identical sweeps produce identical files.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"zapc/internal/faultinject"
)

// FixtureSchema is bumped when the fixture format changes incompatibly;
// decoding rejects unknown schemas instead of replaying a different
// scenario than the one recorded.
const FixtureSchema = 1

// Fixture is one corpus entry.
type Fixture struct {
	Schema int    `json:"schema"`
	Seed   int64  `json:"seed"`
	Note   string `json:"note,omitempty"`

	Config   Config               `json:"config"`
	Schedule faultinject.Schedule `json:"schedule"`
	Verdict  Verdict              `json:"verdict"`
}

// Name is the fixture's canonical file name: the seed plus the verdict
// class it pins.
func (f Fixture) Name() string {
	slug := string(f.Verdict.Outcome)
	if f.Verdict.ErrName != "" {
		slug = strings.ToLower(f.Verdict.ErrName)
	}
	return fmt.Sprintf("seed%04d-%s.json", f.Seed, slug)
}

// Replay re-runs the fixture's scenario and returns the fresh verdict;
// callers compare it against f.Verdict with Same.
func (f Fixture) Replay() (Verdict, error) {
	return NewRunner(f.Config).Run(f.Seed, f.Schedule)
}

// EncodeFixture serializes a fixture as deterministic indented JSON,
// validating the embedded schedule first.
func EncodeFixture(f Fixture) ([]byte, error) {
	if f.Schema == 0 {
		f.Schema = FixtureSchema
	}
	if err := f.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: fixture seed %d: %w", f.Seed, err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFixture parses a fixture strictly: unknown fields, unknown
// schema versions, and invalid schedules are all refused loudly.
func DecodeFixture(data []byte) (Fixture, error) {
	var f Fixture
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Fixture{}, fmt.Errorf("chaos: bad fixture: %w", err)
	}
	if f.Schema != FixtureSchema {
		return Fixture{}, fmt.Errorf("chaos: fixture schema %d, this build reads %d", f.Schema, FixtureSchema)
	}
	if err := f.Schedule.Validate(); err != nil {
		return Fixture{}, fmt.Errorf("chaos: fixture seed %d: %w", f.Seed, err)
	}
	return f, nil
}

// LoadFixture reads one fixture file.
func LoadFixture(path string) (Fixture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Fixture{}, err
	}
	f, err := DecodeFixture(data)
	if err != nil {
		return Fixture{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// WriteFixture writes f under dir with its canonical name, creating the
// directory if needed, and returns the path.
func WriteFixture(dir string, f Fixture) (string, error) {
	data, err := EncodeFixture(f)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, f.Name())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus reads every *.json fixture under dir, sorted by file name.
// A missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Fixture, []string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	fixtures := make([]Fixture, 0, len(names))
	for _, name := range names {
		f, err := LoadFixture(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		fixtures = append(fixtures, f)
	}
	return fixtures, names, nil
}
