package chaos

import (
	"bytes"
	"strings"
	"testing"

	"zapc/internal/faultinject"
	"zapc/internal/sim"
)

// TestInvariantHoldsAcrossSweep is the fuzzer itself at small scale:
// every seed must end in recovered or a named error — no hangs, no
// corrupt state, no unnamed failures.
func TestInvariantHoldsAcrossSweep(t *testing.T) {
	results, err := Sweep(DefaultConfig(), 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Outcome]int{}
	for _, res := range results {
		if res.Verdict.Bug() {
			t.Errorf("seed %d: invariant violated: %s (%s)", res.Seed, res.Verdict, res.Verdict.Detail)
		}
		counts[res.Verdict.Outcome]++
	}
	if counts[OutRecovered] == 0 || counts[OutNamedError] == 0 {
		t.Fatalf("sweep outcomes not diverse: %v", counts)
	}
}

// TestSweepDeterministic: the same seed range yields byte-identical
// schedules, equal verdicts, and byte-identical minimized fixtures.
func TestSweepDeterministic(t *testing.T) {
	one, err := Sweep(DefaultConfig(), 25, 40)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Sweep(DefaultConfig(), 25, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		a, _ := faultinject.EncodeSchedule(one[i].Schedule)
		b, _ := faultinject.EncodeSchedule(two[i].Schedule)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d generated different schedules across sweeps", one[i].Seed)
		}
		if !one[i].Verdict.Same(two[i].Verdict) {
			t.Fatalf("seed %d verdicts diverged: %s vs %s", one[i].Seed, one[i].Verdict, two[i].Verdict)
		}
	}
	ca, err := BuildCorpus(one)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := BuildCorpus(two)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca) == 0 {
		t.Fatal("seed range 25..40 found no non-recovered runs to pin")
	}
	for i := range ca {
		a, err := EncodeFixture(ca[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := EncodeFixture(cb[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("fixture %s not byte-identical across sweeps", ca[i].Name())
		}
	}
}

// TestCompositionClassesCovered pins that one template cycle exercises
// the three required fault compositions: crash landing on corruption,
// drop+delay on the checkpoint barrier, and stream truncation during
// failover.
func TestCompositionClassesCovered(t *testing.T) {
	has := func(s faultinject.Schedule, action string) bool {
		for _, st := range s.Steps {
			if strings.HasPrefix(st.Action, action) {
				return true
			}
		}
		return false
	}
	classes := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		cfg := ConfigForSeed(DefaultConfig(), seed)
		s := Generate(seed, cfg)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d generated invalid schedule: %v", seed, err)
		}
		switch {
		case has(s, "corrupt-image") && has(s, "crash-node"):
			classes["crash+corrupt"] = true
		case has(s, "drop-control") && has(s, "delay-control"):
			for _, st := range s.Steps {
				if st.Phase != "checkpoint-start" && st.Action != "crash-node" {
					t.Fatalf("seed %d: barrier fault not phase-triggered: %+v", seed, st)
				}
			}
			classes["barrier-drop+delay"] = true
		case has(s, "truncate-") && has(s, "crash-node"):
			classes["truncate+failover"] = true
		}
	}
	for _, want := range []string{"crash+corrupt", "barrier-drop+delay", "truncate+failover"} {
		if !classes[want] {
			t.Errorf("composition class %s not generated in one template cycle", want)
		}
	}
}

// TestHangClassification drives the watchdog oracle: a deadline tighter
// than crash recovery (but wide enough for the undisturbed reference)
// must classify the run as a hang — a Bug — rather than waiting forever.
func TestHangClassification(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeadlineNS = int64(2100 * sim.Millisecond)
	sched := faultinject.Schedule{Steps: []faultinject.SpecStep{
		{Name: "kill", Progress: 0.5, Action: "crash-node", Node: 1},
	}}
	v, err := NewRunner(cfg).Run(4, sched)
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != OutHang || !v.Bug() {
		t.Fatalf("verdict = %s, want hang", v)
	}
	if !strings.Contains(v.Detail, "deadline") {
		t.Fatalf("hang detail %q does not name the watchdog", v.Detail)
	}
}

// TestMinimizeLocalMinimum minimizes a known named-error seed and
// verifies both reproduction and local minimality: no single remaining
// step can be dropped without losing the verdict.
func TestMinimizeLocalMinimum(t *testing.T) {
	const seed = 40 // ErrNoValidCheckpoint in the default range
	cfg := ConfigForSeed(DefaultConfig(), seed)
	r := NewRunner(cfg)
	sched := Generate(seed, cfg)
	orig, err := r.Run(seed, sched)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Outcome != OutNamedError {
		t.Fatalf("seed %d verdict = %s, want named-error (generator drifted?)", seed, orig)
	}
	min, v, runs, err := r.Minimize(seed, sched, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Same(orig) {
		t.Fatalf("minimized verdict %s does not reproduce %s", v, orig)
	}
	if len(min.Steps) > len(sched.Steps) || runs == 0 {
		t.Fatalf("minimizer did no work: %d -> %d steps in %d runs", len(sched.Steps), len(min.Steps), runs)
	}
	for i := range min.Steps {
		got, err := r.Run(seed, dropStep(min, i))
		if err != nil {
			t.Fatal(err)
		}
		if got.Same(orig) && len(min.Steps) > 1 {
			t.Errorf("dropping step %d still reproduces — schedule not minimal", i)
		}
	}
}

// TestFixtureRoundTripAndReplay writes a minimized fixture, loads it
// back through the corpus loader, and replays it to the recorded
// verdict. Also pins the strict decoding rules.
func TestFixtureRoundTripAndReplay(t *testing.T) {
	results, err := Sweep(DefaultConfig(), 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := BuildCorpus(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 1 {
		t.Fatalf("expected one fixture from seed 40, got %d", len(corpus))
	}
	dir := t.TempDir()
	path, err := WriteFixture(dir, corpus[0])
	if err != nil {
		t.Fatal(err)
	}
	loaded, names, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || names[0] != corpus[0].Name() {
		t.Fatalf("corpus load = %v, want [%s]", names, corpus[0].Name())
	}
	v, err := loaded[0].Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Same(loaded[0].Verdict) {
		t.Fatalf("replay verdict %s != recorded %s", v, loaded[0].Verdict)
	}

	if _, err := DecodeFixture([]byte(`{"schema":99,"seed":1,"config":{},"schedule":{"steps":null},"verdict":{"outcome":"recovered","faults_fired":0}}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema decode err = %v", err)
	}
	if _, err := DecodeFixture([]byte(`{"schema":1,"seed":1,"bogus":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	_ = path
}

// TestRunTracedRecordsStory: a traced run lands fired faults and the
// final verdict on the virtual-clock timeline for Perfetto export.
func TestRunTracedRecordsStory(t *testing.T) {
	cfg := ConfigForSeed(DefaultConfig(), 28)
	r := NewRunner(cfg)
	v, tr, reg, err := r.RunTraced(28, Generate(28, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || reg == nil {
		t.Fatal("traced run returned no tracer")
	}
	var sawFault, sawVerdict bool
	for _, ev := range tr.Events() {
		if strings.HasPrefix(ev.Name, "fault/") {
			sawFault = true
		}
		if ev.Name == "chaos/verdict" {
			sawVerdict = true
			if got := ev.Args["outcome"]; got != string(v.Outcome) {
				t.Fatalf("verdict instant outcome %q != %s", got, v.Outcome)
			}
		}
	}
	if !sawFault || !sawVerdict {
		t.Fatalf("timeline missing story: fault=%v verdict=%v", sawFault, sawVerdict)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("chaos/verdict")) {
		t.Fatal("chrome trace export lost the verdict instant")
	}
}

// TestManagerOutageEndsNamed pins the bug the fuzzer found in core: a
// restart orchestrated by a crashed manager must abort (and the
// supervisor exhaust its budget as ErrGivenUp) instead of a dead
// coordinator silently completing a failover.
func TestManagerOutageEndsNamed(t *testing.T) {
	for _, incr := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Incremental = incr
		sched := faultinject.Schedule{Steps: []faultinject.SpecStep{
			{Name: "mgr", AfterNS: int64(500 * sim.Millisecond), Action: "crash-manager"},
			{Name: "node", AfterNS: int64(560 * sim.Millisecond), Action: "crash-node", Node: 2},
		}}
		v, err := NewRunner(cfg).Run(7, sched)
		if err != nil {
			t.Fatal(err)
		}
		if v.Outcome != OutNamedError || v.ErrName != "ErrGivenUp" {
			t.Fatalf("incr=%v verdict = %s, want named-error/ErrGivenUp", incr, v)
		}
		if v.Failovers != 0 {
			t.Fatalf("incr=%v: a dead manager completed %d failovers", incr, v.Failovers)
		}
	}
}
