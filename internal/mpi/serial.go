package mpi

import (
	"zapc/internal/imgfmt"
	"zapc/internal/netstack"
)

// Comm serialization: the communicator is part of an application's
// checkpointable state, so every field — descriptors, partial frames,
// queued output, collective progress — round-trips through the
// intermediate image format.

const (
	tagRank      = 1
	tagSize      = 2
	tagPort      = 3
	tagPeerIP    = 4
	tagInitPhase = 5
	tagLFD       = 6
	tagFD        = 7
	tagPending   = 8
	tagPendFD    = 1
	tagPendBuf   = 2
	tagHello     = 9
	tagPartial   = 10
	tagMsg       = 11
	tagMsgFrom   = 1
	tagMsgTag    = 2
	tagMsgData   = 3
	tagOutq      = 12
	tagSeq       = 13
	tagBarMid    = 14
	tagGathered  = 15
	tagGathRank  = 1
	tagGathData  = 2
	tagClosed    = 16
	tagArMid     = 17
	tagArBuf     = 18
)

// Save serializes the communicator.
func (c *Comm) Save(e *imgfmt.Encoder) error {
	e.Int(tagRank, int64(c.Cfg.Rank))
	e.Int(tagSize, int64(c.Cfg.Size))
	e.Uint(tagPort, uint64(c.Cfg.Port))
	for _, ip := range c.Cfg.PeerIPs {
		e.Uint(tagPeerIP, uint64(ip))
	}
	e.Int(tagInitPhase, int64(c.InitPhase))
	e.Int(tagLFD, int64(c.LFD))
	for _, fd := range c.FDs {
		e.Int(tagFD, int64(fd))
	}
	for _, pc := range c.pending {
		e.Begin(tagPending)
		e.Int(tagPendFD, int64(pc.FD))
		e.Bytes(tagPendBuf, pc.Buf)
		e.End()
	}
	for _, h := range c.hello {
		e.Int(tagHello, int64(h))
	}
	for _, p := range c.partial {
		e.Bytes(tagPartial, p)
	}
	for _, m := range c.inbox {
		e.Begin(tagMsg)
		e.Int(tagMsgFrom, int64(m.From))
		e.Uint(tagMsgTag, uint64(m.Tag))
		e.Bytes(tagMsgData, m.Data)
		e.End()
	}
	for _, q := range c.outq {
		e.Bytes(tagOutq, q)
	}
	e.Uint(tagSeq, c.Seq)
	e.Bool(tagBarMid, c.barMid)
	for r := 0; r < c.Cfg.Size; r++ {
		if data, ok := c.gathered[r]; ok {
			e.Begin(tagGathered)
			e.Int(tagGathRank, int64(r))
			e.Bytes(tagGathData, data)
			e.End()
		}
	}
	for _, cl := range c.closed {
		e.Bool(tagClosed, cl)
	}
	e.Bool(tagArMid, c.arMid)
	e.Bytes(tagArBuf, c.arBuf)
	return nil
}

// Restore reinstates a communicator saved by Save.
func (c *Comm) Restore(d *imgfmt.Decoder) error {
	rank, err := d.Int(tagRank)
	if err != nil {
		return err
	}
	size, err := d.Int(tagSize)
	if err != nil {
		return err
	}
	port, err := d.Uint(tagPort)
	if err != nil {
		return err
	}
	*c = *New(Config{Rank: int(rank), Size: int(size), Port: netstack.Port(port)})
	repeat := func(tag uint64, fn func() error) error {
		for {
			t, _, err := d.Peek()
			if err != nil || t != tag {
				return nil
			}
			if err := fn(); err != nil {
				return err
			}
		}
	}
	if err := repeat(tagPeerIP, func() error {
		v, err := d.Uint(tagPeerIP)
		c.Cfg.PeerIPs = append(c.Cfg.PeerIPs, netstack.IP(v))
		return err
	}); err != nil {
		return err
	}
	ph, err := d.Int(tagInitPhase)
	if err != nil {
		return err
	}
	c.InitPhase = int(ph)
	lfd, err := d.Int(tagLFD)
	if err != nil {
		return err
	}
	c.LFD = int(lfd)
	i := 0
	if err := repeat(tagFD, func() error {
		v, err := d.Int(tagFD)
		if i < len(c.FDs) {
			c.FDs[i] = int(v)
		}
		i++
		return err
	}); err != nil {
		return err
	}
	if err := repeat(tagPending, func() error {
		sec, err := d.Section(tagPending)
		if err != nil {
			return err
		}
		fd, e1 := sec.Int(tagPendFD)
		buf, e2 := sec.Bytes(tagPendBuf)
		if e1 != nil {
			return e1
		}
		if e2 != nil {
			return e2
		}
		c.pending = append(c.pending, pendingConn{FD: int(fd), Buf: append([]byte(nil), buf...)})
		return nil
	}); err != nil {
		return err
	}
	if err := repeat(tagHello, func() error {
		v, err := d.Int(tagHello)
		c.hello = append(c.hello, int(v))
		return err
	}); err != nil {
		return err
	}
	i = 0
	if err := repeat(tagPartial, func() error {
		b, err := d.Bytes(tagPartial)
		if i < len(c.partial) {
			c.partial[i] = append([]byte(nil), b...)
		}
		i++
		return err
	}); err != nil {
		return err
	}
	if err := repeat(tagMsg, func() error {
		sec, err := d.Section(tagMsg)
		if err != nil {
			return err
		}
		from, e1 := sec.Int(tagMsgFrom)
		tg, e2 := sec.Uint(tagMsgTag)
		data, e3 := sec.Bytes(tagMsgData)
		if e1 != nil || e2 != nil || e3 != nil {
			return firstErr(e1, e2, e3)
		}
		c.inbox = append(c.inbox, Message{From: int(from), Tag: uint32(tg), Data: append([]byte(nil), data...)})
		return nil
	}); err != nil {
		return err
	}
	i = 0
	if err := repeat(tagOutq, func() error {
		b, err := d.Bytes(tagOutq)
		if i < len(c.outq) {
			c.outq[i] = append([]byte(nil), b...)
		}
		i++
		return err
	}); err != nil {
		return err
	}
	if c.Seq, err = d.Uint(tagSeq); err != nil {
		return err
	}
	if c.barMid, err = d.Bool(tagBarMid); err != nil {
		return err
	}
	if err := repeat(tagGathered, func() error {
		sec, err := d.Section(tagGathered)
		if err != nil {
			return err
		}
		r, e1 := sec.Int(tagGathRank)
		data, e2 := sec.Bytes(tagGathData)
		if e1 != nil || e2 != nil {
			return firstErr(e1, e2)
		}
		c.gathered[int(r)] = append([]byte(nil), data...)
		return nil
	}); err != nil {
		return err
	}
	i = 0
	if err := repeat(tagClosed, func() error {
		v, err := d.Bool(tagClosed)
		if i < len(c.closed) {
			c.closed[i] = v
		}
		i++
		return err
	}); err != nil {
		return err
	}
	if c.arMid, err = d.Bool(tagArMid); err != nil {
		return err
	}
	buf, err := d.Bytes(tagArBuf)
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		c.arBuf = append([]byte(nil), buf...)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
