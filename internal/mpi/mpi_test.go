package mpi

import (
	"encoding/binary"
	"fmt"
	"testing"

	"zapc/internal/imgfmt"
	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// ranker is a test program exercising the full Comm API: init, then
// Iters rounds of (barrier, reduce-sum of rank+iter at root, bcast of
// the result), recording every broadcast value.
type ranker struct {
	Comm    *Comm
	Phase   int
	Iter    int
	Iters   int
	Results []float64
	P2PDone bool

	pendingBcast []byte // in-flight broadcast buffer between steps
}

func (r *ranker) Step(ctx *vos.Context) vos.StepResult {
	switch r.Phase {
	case 0:
		if !r.Comm.Init(ctx) {
			return r.Comm.Block()
		}
		r.Phase = 1
		return vos.Yield(0)
	case 1: // point-to-point warmup: ring send
		if !r.P2PDone {
			next := (r.Comm.Cfg.Rank + 1) % r.Comm.Cfg.Size
			r.Comm.Send(ctx, next, 7, []byte(fmt.Sprintf("hi from %d", r.Comm.Cfg.Rank)))
			r.P2PDone = true
		}
		prev := (r.Comm.Cfg.Rank + r.Comm.Cfg.Size - 1) % r.Comm.Cfg.Size
		m, ok := r.Comm.Recv(ctx, prev, 7)
		if !ok {
			return r.Comm.Block()
		}
		if string(m.Data) != fmt.Sprintf("hi from %d", prev) {
			return vos.Exit(10)
		}
		r.Phase = 2
		return vos.Yield(0)
	case 2: // barrier
		if !r.Comm.Barrier(ctx) {
			return r.Comm.Block()
		}
		r.Phase = 3
		return vos.Yield(0)
	case 3: // reduce at root
		val := float64(r.Comm.Cfg.Rank + r.Iter)
		sum, done := r.Comm.ReduceFloat64(ctx, val, 0, func(a, b float64) float64 { return a + b })
		if !done {
			return r.Comm.Block()
		}
		if r.Comm.Cfg.Rank == 0 {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], mathBits(sum))
			b := buf[:]
			r.pendingBcast = b
		}
		r.Phase = 4
		return vos.Yield(0)
	case 4: // broadcast result
		if !r.Comm.Bcast(ctx, &r.pendingBcast, 0) {
			return r.Comm.Block()
		}
		r.Results = append(r.Results, mathFrom(binary.BigEndian.Uint64(r.pendingBcast)))
		r.Iter++
		if r.Iter < r.Iters {
			r.Phase = 2
			return vos.Yield(0)
		}
		return vos.Exit(0)
	}
	return vos.Exit(99)
}

// pendingBcast holds the in-flight broadcast buffer between steps.
func (r *ranker) Save(e *imgfmt.Encoder) error    { return nil }
func (r *ranker) Restore(d *imgfmt.Decoder) error { return nil }
func (r *ranker) Kind() string                    { return "mpitest.ranker" }

func mathBits(f float64) uint64 {
	return uint64(int64(f * 1000)) // fixed-point for test stability
}
func mathFrom(b uint64) float64 { return float64(int64(b)) / 1000 }

type rankHarness struct {
	w    *sim.World
	pods []*pod.Pod
	rs   []*ranker
}

func launchRanks(t *testing.T, size, iters int) *rankHarness {
	t.Helper()
	w := sim.NewWorld(8)
	nw := netstack.NewNetwork(w)
	fs := memfs.New()
	h := &rankHarness{w: w}
	ips := make([]netstack.IP, size)
	for i := range ips {
		ips[i] = netstack.IP(i + 1)
	}
	for i := 0; i < size; i++ {
		node := vos.NewNode(w, fmt.Sprintf("n%d", i), 1)
		p, err := pod.New(fmt.Sprintf("rank%d", i), node, nw, fs, ips[i])
		if err != nil {
			t.Fatal(err)
		}
		r := &ranker{
			Comm:  New(Config{Rank: i, Size: size, Port: 6000, PeerIPs: ips}),
			Iters: iters,
		}
		p.AddProcess(r)
		h.pods = append(h.pods, p)
		h.rs = append(h.rs, r)
	}
	return h
}

func (h *rankHarness) run(t *testing.T) {
	t.Helper()
	deadline := sim.Time(120 * sim.Second)
	for {
		done := true
		for _, p := range h.pods {
			if len(p.Procs()) > 0 {
				done = false
			}
		}
		if done {
			return
		}
		if h.w.Now() > deadline {
			t.Fatal("ranks did not finish")
		}
		if !h.w.Step() {
			t.Fatal("queue drained with live ranks")
		}
	}
}

func TestCollectivesAcrossSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		size := size
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			const iters = 4
			h := launchRanks(t, size, iters)
			h.run(t)
			for rank, r := range h.rs {
				if len(r.Results) != iters {
					t.Fatalf("rank %d: %d results", rank, len(r.Results))
				}
				for it := 0; it < iters; it++ {
					// sum over ranks of (rank+iter)
					want := float64(size*(size-1)/2 + it*size)
					if r.Results[it] != want {
						t.Fatalf("rank %d iter %d: got %v want %v", rank, it, r.Results[it], want)
					}
				}
			}
		})
	}
}

// allreducer exercises AllreduceFloat64 across several iterations.
type allreducer struct {
	Comm    *Comm
	Phase   int
	Iter    int
	Iters   int
	Results []float64
}

func (a *allreducer) Step(ctx *vos.Context) vos.StepResult {
	switch a.Phase {
	case 0:
		if !a.Comm.Init(ctx) {
			return a.Comm.Block()
		}
		a.Phase = 1
		return vos.Yield(0)
	default:
		v, done := a.Comm.AllreduceFloat64(ctx, float64((a.Comm.Cfg.Rank+1)*(a.Iter+1)),
			func(x, y float64) float64 { return x + y })
		if !done {
			return a.Comm.Block()
		}
		a.Results = append(a.Results, v)
		a.Iter++
		if a.Iter < a.Iters {
			return vos.Yield(0)
		}
		return vos.Exit(0)
	}
}
func (a *allreducer) Save(e *imgfmt.Encoder) error    { return nil }
func (a *allreducer) Restore(d *imgfmt.Decoder) error { return nil }
func (a *allreducer) Kind() string                    { return "mpitest.allreducer" }

func TestAllreduceEveryRankGetsResult(t *testing.T) {
	const size, iters = 4, 3
	w := sim.NewWorld(12)
	nw := netstack.NewNetwork(w)
	fs := memfs.New()
	ips := make([]netstack.IP, size)
	for i := range ips {
		ips[i] = netstack.IP(i + 1)
	}
	var ars []*allreducer
	var pods []*pod.Pod
	for i := 0; i < size; i++ {
		node := vos.NewNode(w, fmt.Sprintf("n%d", i), 1)
		p, _ := pod.New(fmt.Sprintf("ar%d", i), node, nw, fs, ips[i])
		a := &allreducer{Comm: New(Config{Rank: i, Size: size, Port: 6100, PeerIPs: ips}), Iters: iters}
		p.AddProcess(a)
		ars = append(ars, a)
		pods = append(pods, p)
	}
	deadline := sim.Time(60 * sim.Second)
	for {
		live := false
		for _, p := range pods {
			if len(p.Procs()) > 0 {
				live = true
			}
		}
		if !live {
			break
		}
		if w.Now() > deadline || !w.Step() {
			t.Fatal("allreduce ranks did not finish")
		}
	}
	// sum over ranks of (rank+1)*(iter+1)
	base := float64(size * (size + 1) / 2)
	for rank, a := range ars {
		if len(a.Results) != iters {
			t.Fatalf("rank %d results = %d", rank, len(a.Results))
		}
		for it, v := range a.Results {
			if v != base*float64(it+1) {
				t.Fatalf("rank %d iter %d: %v want %v", rank, it, v, base*float64(it+1))
			}
		}
	}
}

func TestCommSerializationRoundTrip(t *testing.T) {
	c := New(Config{Rank: 2, Size: 4, Port: 6000, PeerIPs: []netstack.IP{1, 2, 3, 4}})
	c.InitPhase = 1
	c.LFD = 3
	c.FDs = []int{7, 8, -1, 9}
	c.pending = []pendingConn{{FD: 11, Buf: []byte{0, 0}}}
	c.hello = []int{1}
	c.partial[0] = []byte{1, 2, 3}
	c.inbox = []Message{{From: 3, Tag: 42, Data: []byte("msg")}}
	c.outq[1] = []byte{9, 9}
	c.Seq = 17
	c.barMid = true
	c.gathered[0] = []byte("g0")
	c.closed[3] = true

	e := imgfmt.NewEncoder()
	if err := c.Save(e); err != nil {
		t.Fatal(err)
	}
	d, err := imgfmt.NewDecoder(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	c2 := &Comm{}
	if err := c2.Restore(d); err != nil {
		t.Fatal(err)
	}
	if c2.Cfg.Rank != 2 || c2.Cfg.Size != 4 || c2.Cfg.Port != 6000 || len(c2.Cfg.PeerIPs) != 4 {
		t.Fatalf("cfg: %+v", c2.Cfg)
	}
	if c2.InitPhase != 1 || c2.LFD != 3 || c2.FDs[3] != 9 || c2.FDs[2] != -1 {
		t.Fatalf("fds: %+v", c2)
	}
	if len(c2.pending) != 1 || c2.pending[0].FD != 11 || len(c2.pending[0].Buf) != 2 {
		t.Fatalf("pending: %+v", c2.pending)
	}
	if len(c2.hello) != 1 || c2.hello[0] != 1 {
		t.Fatalf("hello: %v", c2.hello)
	}
	if string(c2.partial[0]) != string([]byte{1, 2, 3}) {
		t.Fatal("partial lost")
	}
	if len(c2.inbox) != 1 || c2.inbox[0].Tag != 42 || string(c2.inbox[0].Data) != "msg" {
		t.Fatalf("inbox: %+v", c2.inbox)
	}
	if string(c2.outq[1]) != string([]byte{9, 9}) {
		t.Fatal("outq lost")
	}
	if c2.Seq != 17 || !c2.barMid {
		t.Fatalf("coll state: seq=%d barMid=%v", c2.Seq, c2.barMid)
	}
	if string(c2.gathered[0]) != "g0" {
		t.Fatal("gathered lost")
	}
	if !c2.closed[3] || c2.closed[0] {
		t.Fatal("closed flags lost")
	}
}

func TestDaemonHeartbeats(t *testing.T) {
	w := sim.NewWorld(9)
	nw := netstack.NewNetwork(w)
	fs := memfs.New()
	ips := []netstack.IP{1, 2, 3}
	var daemons []*Daemon
	for i := range ips {
		node := vos.NewNode(w, fmt.Sprintf("n%d", i), 1)
		p, _ := pod.New(fmt.Sprintf("d%d", i), node, nw, fs, ips[i])
		d := NewDaemon(i, 5999, ips)
		p.AddProcess(d)
		daemons = append(daemons, d)
	}
	w.RunUntil(sim.Time(3 * sim.Second))
	for i, d := range daemons {
		if d.Sent < 8 {
			t.Fatalf("daemon %d sent only %d beats", i, d.Sent)
		}
		if d.Seen < 8 {
			t.Fatalf("daemon %d saw only %d beats", i, d.Seen)
		}
	}
}

func TestDaemonSerialization(t *testing.T) {
	d := NewDaemon(1, 5999, []netstack.IP{1, 2})
	d.Phase = 1
	d.FD = 4
	d.Sent = 100
	d.Seen = 99
	e := imgfmt.NewEncoder()
	if err := d.Save(e); err != nil {
		t.Fatal(err)
	}
	dec, _ := imgfmt.NewDecoder(e.Finish())
	d2 := &Daemon{}
	if err := d2.Restore(dec); err != nil {
		t.Fatal(err)
	}
	if d2.Rank != 1 || d2.FD != 4 || d2.Sent != 100 || d2.Seen != 99 ||
		len(d2.PeerIPs) != 2 || d2.Interval != DefaultHeartbeat {
		t.Fatalf("restored: %+v", d2)
	}
}
