// Package mpi implements the message-passing middleware the workloads
// run on, playing the role MPICH-2 and PVM play in the paper's
// evaluation. It offers ranked point-to-point messaging with tags,
// any-source receive, and resumable collectives (broadcast, gather,
// reduce, barrier) over the virtual TCP stack.
//
// Everything about a Comm is explicit, serializable state: connection
// phase, per-peer descriptors, partially parsed frames, queued outbound
// bytes, and collective progress. That is what makes applications built
// on it checkpointable at any instant — the standalone checkpoint saves
// the Comm along with the rest of the program state, and the restored
// descriptors keep working because the network checkpoint restored the
// underlying sockets byte-exactly.
//
// The package is deliberately unaware of checkpointing: like real MPI
// applications under ZapC, it runs unmodified; transparency comes from
// the layers below.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"zapc/internal/netstack"
	"zapc/internal/vos"
)

// Any matches any source rank in Recv.
const Any = -1

// Collective tags live above the user tag space.
const collBase uint32 = 1 << 20

// Message is one received, framed message.
type Message struct {
	From int
	Tag  uint32
	Data []byte
}

// Config describes one rank's view of the job.
type Config struct {
	Rank    int
	Size    int
	Port    netstack.Port // every rank listens on this port on its own pod IP
	PeerIPs []netstack.IP // rank -> pod virtual IP
}

// connState tracks one not-yet-identified inbound connection.
type pendingConn struct {
	FD  int
	Buf []byte
}

// Comm is one rank's communicator. Create with New, then call Init each
// step until it reports true; thereafter use Send/Recv/collectives.
type Comm struct {
	Cfg Config

	InitPhase int
	LFD       int
	FDs       []int // rank -> fd, -1 when not connected
	pending   []pendingConn
	hello     []int // ranks we still must send our rank header to

	partial [][]byte  // rank -> unparsed inbound bytes
	inbox   []Message // parsed, undelivered messages
	outq    [][]byte  // rank -> queued outbound bytes (middleware buffering)

	Seq      uint64 // collective sequence number
	barMid   bool   // barrier is in its broadcast half
	arMid    bool   // allreduce is in its broadcast half
	arBuf    []byte // allreduce broadcast buffer
	gathered map[int][]byte
	closed   []bool // rank -> peer hung up
}

// New creates an uninitialized communicator.
func New(cfg Config) *Comm {
	c := &Comm{Cfg: cfg, LFD: -1}
	c.FDs = make([]int, cfg.Size)
	for i := range c.FDs {
		c.FDs[i] = -1
	}
	c.partial = make([][]byte, cfg.Size)
	c.outq = make([][]byte, cfg.Size)
	c.closed = make([]bool, cfg.Size)
	c.gathered = make(map[int][]byte)
	return c
}

// Init advances connection setup: every rank listens on Cfg.Port, and
// rank i initiates connections to all lower ranks (lower rank accepts),
// identifying itself with a 4-byte rank header. Call it once per step
// until it returns true; when false, return Block().
func (c *Comm) Init(ctx *vos.Context) bool {
	switch c.InitPhase {
	case 0:
		c.LFD = ctx.Socket(netstack.TCP)
		if err := ctx.Bind(c.LFD, c.Cfg.Port); err != nil {
			panic(fmt.Sprintf("mpi rank %d: bind: %v", c.Cfg.Rank, err))
		}
		ctx.Listen(c.LFD, c.Cfg.Size)
		c.InitPhase = 1
		// Initiate to all lower ranks.
		for peer := 0; peer < c.Cfg.Rank; peer++ {
			fd := ctx.Socket(netstack.TCP)
			ctx.Connect(fd, netstack.Addr{IP: c.Cfg.PeerIPs[peer], Port: c.Cfg.Port})
			c.FDs[peer] = fd
			c.hello = append(c.hello, peer)
		}
		return c.Cfg.Size == 1
	default:
		// Send rank headers on connections that completed.
		remaining := c.hello[:0]
		for _, peer := range c.hello {
			fd := c.FDs[peer]
			if ctx.SockState(fd) == netstack.StateConnecting {
				remaining = append(remaining, peer)
				continue
			}
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(c.Cfg.Rank))
			if _, err := ctx.Send(fd, hdr[:], false); err != nil {
				remaining = append(remaining, peer)
				continue
			}
		}
		c.hello = remaining
		// Accept from higher ranks.
		for {
			fd, err := ctx.Accept(c.LFD)
			if err != nil {
				break
			}
			c.pending = append(c.pending, pendingConn{FD: fd})
		}
		// Identify pending inbound connections by their rank header.
		kept := c.pending[:0]
		for _, pc := range c.pending {
			data, err := ctx.Recv(pc.FD, 4-len(pc.Buf), false, false)
			if err == nil {
				pc.Buf = append(pc.Buf, data...)
			}
			if len(pc.Buf) == 4 {
				rank := int(binary.BigEndian.Uint32(pc.Buf))
				if rank >= 0 && rank < c.Cfg.Size {
					c.FDs[rank] = pc.FD
				}
				continue
			}
			kept = append(kept, pc)
		}
		c.pending = kept
		if len(c.hello) > 0 {
			return false
		}
		for r, fd := range c.FDs {
			if r != c.Cfg.Rank && fd < 0 {
				return false
			}
		}
		return true
	}
}

// Block builds the step result that parks the program until any
// communicator descriptor has activity.
func (c *Comm) Block() vos.StepResult {
	r := vos.StepResult{Block: true}
	add := func(fd int, mask netstack.PollMask) {
		if fd >= 0 {
			r.WaitFDs = append(r.WaitFDs, vos.FDWait{FD: fd, Mask: mask})
		}
	}
	add(c.LFD, netstack.PollIn)
	for rank, fd := range c.FDs {
		if rank == c.Cfg.Rank {
			continue
		}
		mask := netstack.PollIn | netstack.PollHUP
		if len(c.outq[rank]) > 0 {
			mask |= netstack.PollOut
		}
		if c.InitPhase > 0 && containsInt(c.hello, rank) {
			mask |= netstack.PollOut | netstack.PollErr
		}
		add(fd, mask)
	}
	for _, pc := range c.pending {
		add(pc.FD, netstack.PollIn)
	}
	return r
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// pump flushes queued outbound bytes and drains every connection's
// inbound bytes into parsed messages.
func (c *Comm) pump(ctx *vos.Context) {
	for rank, q := range c.outq {
		fd := c.FDs[rank]
		for len(q) > 0 && fd >= 0 {
			n, err := ctx.Send(fd, q, false)
			q = q[n:]
			if err != nil {
				break
			}
		}
		c.outq[rank] = q
	}
	for rank, fd := range c.FDs {
		if fd < 0 || rank == c.Cfg.Rank {
			continue
		}
		for {
			data, err := ctx.Recv(fd, 1<<16, false, false)
			if errors.Is(err, netstack.ErrEOF) {
				c.closed[rank] = true
				break
			}
			if err != nil || len(data) == 0 {
				break
			}
			c.partial[rank] = append(c.partial[rank], data...)
		}
		c.parse(rank)
	}
}

// parse extracts complete [len][tag][payload] frames.
func (c *Comm) parse(rank int) {
	buf := c.partial[rank]
	for len(buf) >= 8 {
		n := binary.BigEndian.Uint32(buf[:4])
		tag := binary.BigEndian.Uint32(buf[4:8])
		if uint32(len(buf)-8) < n {
			break
		}
		payload := append([]byte(nil), buf[8:8+n]...)
		c.inbox = append(c.inbox, Message{From: rank, Tag: tag, Data: payload})
		buf = buf[8+n:]
	}
	c.partial[rank] = buf
}

// Send transmits a tagged message to a peer rank. It never blocks: bytes
// the kernel cannot take yet are buffered in the middleware and flushed
// by later pumps (MPI buffered-mode semantics).
func (c *Comm) Send(ctx *vos.Context, to int, tag uint32, data []byte) {
	if to == c.Cfg.Rank {
		c.inbox = append(c.inbox, Message{From: to, Tag: tag, Data: append([]byte(nil), data...)})
		return
	}
	frame := make([]byte, 8+len(data))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(data)))
	binary.BigEndian.PutUint32(frame[4:8], tag)
	copy(frame[8:], data)
	c.outq[to] = append(c.outq[to], frame...)
	c.pump(ctx)
}

// Recv returns the first undelivered message matching (from, tag); from
// may be Any. ok=false means nothing matched yet — block and retry.
func (c *Comm) Recv(ctx *vos.Context, from int, tag uint32) (Message, bool) {
	c.pump(ctx)
	for i, m := range c.inbox {
		if (from == Any || m.From == from) && m.Tag == tag {
			c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// PeerClosed reports whether a peer has hung up (its process exited).
func (c *Comm) PeerClosed(rank int) bool { return c.closed[rank] }

// collective tag helpers

func (c *Comm) collTag(off uint64) uint32 { return collBase + uint32(c.Seq+off) }

// Bcast distributes root's buf to every rank. SPMD programs call it in
// the same order on all ranks; it returns false while waiting (block and
// re-call with the same arguments).
func (c *Comm) Bcast(ctx *vos.Context, buf *[]byte, root int) bool {
	tag := c.collTag(0)
	if c.Cfg.Rank == root {
		for r := 0; r < c.Cfg.Size; r++ {
			if r != root {
				c.Send(ctx, r, tag, *buf)
			}
		}
		c.Seq++
		return true
	}
	m, ok := c.Recv(ctx, root, tag)
	if !ok {
		return false
	}
	*buf = m.Data
	c.Seq++
	return true
}

// Gather collects one buffer from every rank at root. On completion at
// the root, out[rank] holds each contribution; non-roots complete as
// soon as their contribution is sent and get out=nil.
func (c *Comm) Gather(ctx *vos.Context, mine []byte, root int) (out [][]byte, done bool) {
	tag := c.collTag(0)
	if c.Cfg.Rank != root {
		c.Send(ctx, root, tag, mine)
		c.Seq++
		return nil, true
	}
	if _, ok := c.gathered[c.Cfg.Rank]; !ok {
		c.gathered[c.Cfg.Rank] = append([]byte(nil), mine...)
	}
	for {
		m, ok := c.Recv(ctx, Any, tag)
		if !ok {
			break
		}
		c.gathered[m.From] = m.Data
	}
	if len(c.gathered) < c.Cfg.Size {
		return nil, false
	}
	out = make([][]byte, c.Cfg.Size)
	for r := range out {
		out[r] = c.gathered[r]
	}
	c.gathered = make(map[int][]byte)
	c.Seq++
	return out, true
}

// ReduceFloat64 folds float64 contributions at the root with the given
// operator. Non-roots complete immediately after sending; the root
// reports done only once every contribution has arrived.
func (c *Comm) ReduceFloat64(ctx *vos.Context, val float64, root int, op func(a, b float64) float64) (float64, bool) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(val))
	parts, done := c.Gather(ctx, buf[:], root)
	if !done {
		return 0, false
	}
	if c.Cfg.Rank != root {
		return 0, true
	}
	acc := 0.0
	first := true
	for _, p := range parts {
		if len(p) != 8 {
			continue
		}
		v := math.Float64frombits(binary.BigEndian.Uint64(p))
		if first {
			acc = v
			first = false
		} else {
			acc = op(acc, v)
		}
	}
	return acc, true
}

// AllreduceFloat64 folds contributions at rank 0 and broadcasts the
// result to every rank: a reduce followed by a bcast, each resumable.
// Returns (value, done); re-call with the same arguments until done.
func (c *Comm) AllreduceFloat64(ctx *vos.Context, val float64, op func(a, b float64) float64) (float64, bool) {
	if !c.arMid {
		r, done := c.ReduceFloat64(ctx, val, 0, op)
		if !done {
			return 0, false
		}
		if c.Cfg.Rank == 0 {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(r))
			c.arBuf = buf[:]
		}
		c.arMid = true
	}
	if !c.Bcast(ctx, &c.arBuf, 0) {
		return 0, false
	}
	out := math.Float64frombits(binary.BigEndian.Uint64(c.arBuf))
	c.arMid = false
	c.arBuf = nil
	return out, true
}

// Barrier blocks until every rank has arrived: a gather at rank 0
// followed by a broadcast. Return false -> block and re-call.
func (c *Comm) Barrier(ctx *vos.Context) bool {
	if !c.barMid {
		if _, done := c.Gather(ctx, nil, 0); !done {
			return false
		}
		c.barMid = true
	}
	var empty []byte
	if !c.Bcast(ctx, &empty, 0) {
		return false
	}
	c.barMid = false
	return true
}
