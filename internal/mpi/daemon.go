package mpi

import (
	"encoding/binary"

	"zapc/internal/imgfmt"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// Daemon models the per-pod middleware daemon (mpd for MPICH-2, pvmd
// for PVM): each pod in the paper's setup runs one alongside the
// application endpoint. It exchanges periodic UDP heartbeats with its
// peers, which keeps live UDP socket state in every pod so checkpoints
// exercise the unreliable-protocol path of the network-state mechanism.
type Daemon struct {
	Phase    int
	FD       int
	Rank     int
	Port     netstack.Port
	PeerIPs  []netstack.IP
	Interval sim.Duration
	Sent     uint64
	Seen     uint64
}

// DefaultHeartbeat is the daemon heartbeat period.
const DefaultHeartbeat = 250 * sim.Millisecond

// NewDaemon creates a daemon for the given rank.
func NewDaemon(rank int, port netstack.Port, peers []netstack.IP) *Daemon {
	return &Daemon{Rank: rank, Port: port, PeerIPs: peers, Interval: DefaultHeartbeat}
}

// Step implements vos.Program.
func (d *Daemon) Step(ctx *vos.Context) vos.StepResult {
	switch d.Phase {
	case 0:
		d.FD = ctx.Socket(netstack.UDP)
		if err := ctx.Bind(d.FD, d.Port); err != nil {
			return vos.Exit(1)
		}
		d.Phase = 1
		return vos.Yield(0)
	default:
		for {
			if _, err := ctx.RecvFrom(d.FD, false); err != nil {
				break
			}
			d.Seen++
		}
		var beat [8]byte
		binary.BigEndian.PutUint64(beat[:], d.Sent)
		for i, ip := range d.PeerIPs {
			if i == d.Rank {
				continue
			}
			ctx.SendTo(d.FD, beat[:], netstack.Addr{IP: ip, Port: d.Port})
		}
		d.Sent++
		return vos.Sleep(d.Interval)
	}
}

// Save implements vos.Program.
func (d *Daemon) Save(e *imgfmt.Encoder) error {
	e.Int(1, int64(d.Phase))
	e.Int(2, int64(d.FD))
	e.Int(3, int64(d.Rank))
	e.Uint(4, uint64(d.Port))
	for _, ip := range d.PeerIPs {
		e.Uint(5, uint64(ip))
	}
	e.Int(6, int64(d.Interval))
	e.Uint(7, d.Sent)
	e.Uint(8, d.Seen)
	return nil
}

// Restore implements vos.Program.
func (d *Daemon) Restore(dec *imgfmt.Decoder) error {
	ph, err := dec.Int(1)
	if err != nil {
		return err
	}
	fd, err := dec.Int(2)
	if err != nil {
		return err
	}
	rank, err := dec.Int(3)
	if err != nil {
		return err
	}
	port, err := dec.Uint(4)
	if err != nil {
		return err
	}
	d.Phase, d.FD, d.Rank, d.Port = int(ph), int(fd), int(rank), netstack.Port(port)
	for {
		tag, _, perr := dec.Peek()
		if perr != nil || tag != 5 {
			break
		}
		v, err := dec.Uint(5)
		if err != nil {
			return err
		}
		d.PeerIPs = append(d.PeerIPs, netstack.IP(v))
	}
	iv, err := dec.Int(6)
	if err != nil {
		return err
	}
	d.Interval = sim.Duration(iv)
	if d.Sent, err = dec.Uint(7); err != nil {
		return err
	}
	d.Seen, err = dec.Uint(8)
	return err
}

// Kind implements vos.Program.
func (d *Daemon) Kind() string { return "mpi.daemon" }
