package netckpt

import (
	"errors"
	"fmt"

	"zapc/internal/netstack"
	"zapc/internal/sim"
)

// altOps is the interposed socket dispatch vector installed on restored
// sockets whose alternate receive queue holds data. It serves recvmsg
// from the alternate queue first, reports its data through poll, and
// reinstalls the original vector the moment the queue drains — exactly
// the three-method interposition (recvmsg, poll, release) of §5.
type altOps struct {
	orig netstack.Ops
}

func (a altOps) Recvmsg(s *netstack.Socket, n int, peek, oob bool) ([]byte, error) {
	if oob {
		return a.orig.Recvmsg(s, n, peek, oob)
	}
	if s.AltQueueLen() > 0 {
		out := s.ConsumeAlt(n, peek)
		if s.AltQueueLen() == 0 && !peek {
			s.SwapOps(a.orig)
		}
		return out, nil
	}
	// Depleted: uninstall so regular operation pays no overhead.
	s.SwapOps(a.orig)
	return a.orig.Recvmsg(s, n, peek, oob)
}

func (a altOps) Poll(s *netstack.Socket) netstack.PollMask {
	m := a.orig.Poll(s)
	if s.AltQueueLen() > 0 {
		m |= netstack.PollIn
	}
	return m
}

func (a altOps) Release(s *netstack.Socket) {
	// Unconsumed alternate-queue data dies with the socket.
	s.SwapOps(a.orig)
	a.orig.Release(s)
}

// InstallAltQueue loads saved receive data into a socket's alternate
// queue and interposes on its dispatch vector.
func InstallAltQueue(s *netstack.Socket, data []byte) {
	if len(data) == 0 {
		return
	}
	s.LoadAltQueue(data)
	if _, already := s.CurrentOps().(altOps); !already {
		s.SwapOps(altOps{orig: s.CurrentOps()})
	}
}

// entryState tracks one schedule entry through re-establishment.
type entryState struct {
	entry        ScheduleEntry
	rec          *SocketRecord
	sock         *netstack.Socket
	established  bool
	retries      int
	retryPending bool
	// writer state: chunks still to push through the new connection
	pending  []netstack.Chunk
	restored bool
	adjusted bool // status (shutdown flags) reinstated
}

// Reconnection retry policy: a connect may be refused if the peer agent
// has not yet restored its listener (agents start within milliseconds of
// each other but not atomically). Retrying briefly is the event-driven
// analog of the paper's blocking connect call.
const (
	maxConnectRetries = 200
	connectRetryDelay = 5 * sim.Millisecond
)

// Restorer re-creates a pod's network state on a (fresh) stack per the
// manager's schedule. It is event-driven: Start issues the connects and
// arms listener callbacks; completion is signalled through the onDone
// callback once every connection is re-established and every queue
// reloaded. Two logical actors run concurrently — connections are
// initiated immediately while accepts complete as SYNs arrive — which is
// the paper's two-thread scheme that makes deadlock-free ordering
// unnecessary.
type Restorer struct {
	st         *netstack.Stack
	img        *NetImage
	plan       *EndpointPlan
	sockets    []*netstack.Socket // by slot
	entries    []*entryState
	temps      map[netstack.Port]*netstack.Socket
	onDone     func(error)
	done       bool
	inProgress bool
	rerun      bool

	// acceptFirst reproduces the strawman the paper warns against: the
	// agent serves all its accepts before issuing any connect. On cyclic
	// topologies this deadlocks — the reason ZapC uses two concurrent
	// actors instead. For ablation/demonstration only.
	acceptFirst     bool
	deferredConnect []*entryState
}

// SetAcceptFirst switches the restorer to the accept-before-connect
// strawman ordering (see the A3 ablation); call before Start.
func (r *Restorer) SetAcceptFirst(v bool) { r.acceptFirst = v }

// NewRestorer prepares a restore of img onto st following plan.
func NewRestorer(st *netstack.Stack, img *NetImage, plan *EndpointPlan, onDone func(error)) *Restorer {
	return &Restorer{
		st:      st,
		img:     img,
		plan:    plan,
		temps:   make(map[netstack.Port]*netstack.Socket),
		onDone:  onDone,
		sockets: make([]*netstack.Socket, len(img.Sockets)),
	}
}

// Sockets returns the restored sockets indexed by their original slot
// (for descriptor-table wiring by the standalone restart). Valid after
// completion.
func (r *Restorer) Sockets() []*netstack.Socket { return r.sockets }

// Start kicks off the restore.
func (r *Restorer) Start() {
	if err := r.createLocalSockets(); err != nil {
		r.finish(err)
		return
	}
	if err := r.startSchedule(); err != nil {
		r.finish(err)
		return
	}
	r.progress()
}

// scheduledSlots reports which slots the manager's plan re-establishes.
func (r *Restorer) scheduledSlots() map[int]bool {
	m := make(map[int]bool, len(r.plan.Entries))
	for _, e := range r.plan.Entries {
		m[e.Slot] = true
	}
	return m
}

// createLocalSockets restores sockets that need no peer coordination:
// listeners, UDP, raw sockets, and fully-closed or peer-less TCP
// connections (restored detached: remaining data then EOF), in original
// creation order.
func (r *Restorer) createLocalSockets() error {
	scheduled := r.scheduledSlots()
	for i := range r.img.Sockets {
		rec := &r.img.Sockets[i]
		switch {
		case rec.Proto == netstack.TCP && rec.State == netstack.StateEstablished && !scheduled[rec.Slot]:
			if rec.AppClosed {
				// Lingering teardown-only socket with no surviving peer:
				// its obligations die with the gone peer; drop it.
				continue
			}
			s := r.st.Socket(netstack.TCP)
			applyOpts(s, rec.Opts)
			s.RestoreDetached(rec.Local, rec.Remote)
			netckptInstallAlt(s, rec.RecvData)
			s.LoadOOB(rec.OOBData)
			r.sockets[rec.Slot] = s
		case rec.Proto == netstack.TCP && rec.State == netstack.StateListening:
			s := r.st.Socket(netstack.TCP)
			applyOpts(s, rec.Opts)
			if err := s.Bind(rec.Local.Port); err != nil {
				return fmt.Errorf("restore listener %v: %w", rec.Local, err)
			}
			if err := s.Listen(rec.ListenBacklog); err != nil {
				return err
			}
			r.sockets[rec.Slot] = s
		case rec.Proto == netstack.UDP:
			s := r.st.Socket(netstack.UDP)
			applyOpts(s, rec.Opts)
			if rec.Local.Port != 0 {
				if err := s.Bind(rec.Local.Port); err != nil {
					return fmt.Errorf("restore udp %v: %w", rec.Local, err)
				}
			}
			if !rec.Remote.IsZero() {
				if err := s.Connect(rec.Remote); err != nil {
					return err
				}
			}
			s.LoadDatagrams(rec.Datagrams)
			r.sockets[rec.Slot] = s
		case rec.Proto == netstack.RAW:
			s := r.st.Socket(netstack.RAW)
			applyOpts(s, rec.Opts)
			if err := s.BindRaw(rec.RawProto); err != nil {
				return err
			}
			s.LoadDatagrams(rec.Datagrams)
			r.sockets[rec.Slot] = s
		}
	}
	// Temp listeners for accept entries whose original listener is gone.
	for _, port := range r.plan.TempListeners {
		s := r.st.Socket(netstack.TCP)
		if err := s.Bind(port); err != nil {
			return fmt.Errorf("temp listener port %d: %w", port, err)
		}
		if err := s.Listen(64); err != nil {
			return err
		}
		r.temps[port] = s
	}
	return nil
}

// startSchedule issues connects and arms accept callbacks.
func (r *Restorer) startSchedule() error {
	for i := range r.plan.Entries {
		e := r.plan.Entries[i]
		if e.Slot < 0 || e.Slot >= len(r.img.Sockets) {
			return fmt.Errorf("schedule slot %d out of range", e.Slot)
		}
		rec := &r.img.Sockets[e.Slot]
		es := &entryState{entry: e, rec: rec}
		r.entries = append(r.entries, es)

		switch e.Type {
		case EntryConnect:
			if r.acceptFirst {
				r.deferredConnect = append(r.deferredConnect, es)
				continue
			}
			s := r.st.Socket(netstack.TCP)
			if err := s.Bind(e.Local.Port); err != nil {
				return fmt.Errorf("connect-side bind %v: %w", e.Local, err)
			}
			if err := s.Connect(e.Remote); err != nil {
				return err
			}
			es.sock = s
			r.sockets[rec.Slot] = s
			if rec.State == netstack.StateConnecting {
				// The saved socket had not completed its handshake; the
				// re-issued connect reproduces that state as-is.
				es.established = true
				es.restored = true
				applyOpts(s, rec.Opts)
			} else {
				s.SetNotify(func() { r.progress() })
			}
		case EntryAccept:
			l := r.listenerFor(e.Local.Port)
			if l == nil {
				return fmt.Errorf("no listener for accept entry on port %d", e.Local.Port)
			}
			l.SetNotify(func() { r.progress() })
		}
	}
	return nil
}

// listenerFor finds the live or temporary listener on a port.
func (r *Restorer) listenerFor(port netstack.Port) *netstack.Socket {
	for i := range r.img.Sockets {
		rec := &r.img.Sockets[i]
		if rec.Proto == netstack.TCP && rec.State == netstack.StateListening &&
			rec.Local.Port == port && r.sockets[rec.Slot] != nil {
			return r.sockets[rec.Slot]
		}
	}
	return r.temps[port]
}

// progress advances every entry as far as possible; it is the common
// callback for connection events and send-queue drainage. Re-entrant
// invocations (an advance step triggering a socket notification) are
// coalesced into a rerun rather than recursing.
func (r *Restorer) progress() {
	if r.done {
		return
	}
	if r.inProgress {
		r.rerun = true
		return
	}
	r.inProgress = true
	for {
		r.rerun = false
		r.maybeIssueDeferred()
		allDone := true
		for _, es := range r.entries {
			r.advance(es)
			if r.done {
				r.inProgress = false
				return
			}
			if !es.restored || len(es.pending) > 0 || !es.adjusted {
				allDone = false
			}
		}
		if allDone {
			r.inProgress = false
			r.finish(nil)
			return
		}
		if !r.rerun {
			break
		}
	}
	r.inProgress = false
}

func (r *Restorer) advance(es *entryState) {
	// Stage 1: establishment.
	if !es.established {
		switch es.entry.Type {
		case EntryConnect:
			if es.sock == nil {
				return // deferred by the accept-first strawman
			}
			if es.sock.State() == netstack.StateEstablished {
				es.established = true
			} else if err := es.sock.Err(); err != nil {
				if errors.Is(err, netstack.ErrConnRefused) && es.retries < maxConnectRetries {
					if !es.retryPending {
						es.retryPending = true
						es.retries++
						r.st.Network().World().After(connectRetryDelay, func() { r.reconnect(es) })
					}
					return
				}
				r.finish(fmt.Errorf("reconnect %v->%v: %w", es.entry.Local, es.entry.Remote, err))
				return
			}
		case EntryAccept:
			l := r.listenerFor(es.entry.Local.Port)
			if l == nil {
				return
			}
			if child, ok := l.AcceptMatching(es.entry.Remote); ok {
				es.sock = child
				r.sockets[es.rec.Slot] = child
				es.established = true
				child.SetNotify(func() { r.progress() })
			}
		}
		if !es.established {
			return
		}
	}
	// Stage 2: one-time state restore.
	if !es.restored {
		es.restored = true
		rec := es.rec
		applyOpts(es.sock, rec.Opts)
		InstallAltQueue(es.sock, rec.RecvData)
		es.sock.LoadOOB(rec.OOBData)
		if !rec.Redirected {
			chunks := DiscardOverlap(rec.SendChunks, Overlap(rec.PCB, es.entry.PeerRcvNxt))
			es.pending = chunks
		}
		if rec.PendingAcceptOf >= 0 {
			// The application never accepted this connection: put it
			// back on its listener's queue rather than at a descriptor.
			if l := r.sockets[rec.PendingAcceptOf]; l != nil {
				l.PushAccept(es.sock)
			}
		}
	}
	// Stage 3: re-send the saved send queue through the new connection
	// with ordinary writes; the transport delivers it reliably.
	for len(es.pending) > 0 {
		c := es.pending[0]
		if c.FIN {
			es.pending = es.pending[1:]
			continue // half-close is reinstated below via RestoreShutdownState
		}
		n, err := es.sock.Send(c.Data, c.OOB)
		if err != nil {
			if errors.Is(err, netstack.ErrWouldBlock) {
				return // notify will pump again as acks free buffer space
			}
			r.finish(fmt.Errorf("send-queue restore: %w", err))
			return
		}
		if n < len(c.Data) {
			es.pending[0].Data = c.Data[n:]
			return
		}
		es.pending = es.pending[1:]
	}
	// Stage 4: status adjustment (shutdown flags), exactly once, and only
	// after the data is fully queued so the FIN sequences after it. A
	// socket the application had already released is closed again: the
	// kernel finishes delivering its tail and tears it down.
	if !es.adjusted {
		es.adjusted = true
		es.sock.RestoreShutdownState(es.rec.PeerClosed, es.rec.ShutWrite)
		if es.rec.AppClosed {
			es.sock.SetNotify(nil)
			es.sock.Close()
		}
	}
}

// netckptInstallAlt mirrors InstallAltQueue for detached restores.
func netckptInstallAlt(s *netstack.Socket, data []byte) {
	InstallAltQueue(s, data)
}

// reconnect replaces a refused connect-side socket and tries again.
func (r *Restorer) reconnect(es *entryState) {
	es.retryPending = false
	if r.done || es.established {
		return
	}
	s := r.st.Socket(netstack.TCP)
	if err := s.Bind(es.entry.Local.Port); err != nil {
		r.finish(fmt.Errorf("reconnect bind %v: %w", es.entry.Local, err))
		return
	}
	if err := s.Connect(es.entry.Remote); err != nil {
		r.finish(err)
		return
	}
	es.sock = s
	r.sockets[es.rec.Slot] = s
	s.SetNotify(func() { r.progress() })
	r.progress()
}

// maybeIssueDeferred releases strawman-deferred connects once every
// accept entry has been served.
func (r *Restorer) maybeIssueDeferred() {
	if !r.acceptFirst || len(r.deferredConnect) == 0 {
		return
	}
	for _, es := range r.entries {
		if es.entry.Type == EntryAccept && !es.established {
			return
		}
	}
	pending := r.deferredConnect
	r.deferredConnect = nil
	for _, es := range pending {
		s := r.st.Socket(netstack.TCP)
		if err := s.Bind(es.entry.Local.Port); err != nil {
			r.finish(fmt.Errorf("deferred connect bind %v: %w", es.entry.Local, err))
			return
		}
		if err := s.Connect(es.entry.Remote); err != nil {
			r.finish(err)
			return
		}
		es.sock = s
		r.sockets[es.rec.Slot] = s
		s.SetNotify(func() { r.progress() })
	}
}

func (r *Restorer) finish(err error) {
	if r.done {
		return
	}
	r.done = true
	for _, es := range r.entries {
		if es.sock != nil {
			es.sock.SetNotify(nil)
		}
	}
	for i := range r.img.Sockets {
		if s := r.sockets[i]; s != nil {
			s.SetNotify(nil)
		}
	}
	for _, l := range r.temps {
		l.SetNotify(nil)
		l.Close()
	}
	r.onDone(err)
}

func applyOpts(s *netstack.Socket, opts []netstack.OptValue) {
	for _, ov := range opts {
		s.SetOpt(ov.Opt, ov.Val)
	}
}
