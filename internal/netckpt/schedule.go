package netckpt

import (
	"errors"
	"fmt"
	"sort"

	"zapc/internal/netstack"
)

// EntryType says which side of a re-established connection an endpoint
// takes.
type EntryType int

// Schedule entry types.
const (
	EntryConnect EntryType = iota + 1
	EntryAccept
)

func (t EntryType) String() string {
	if t == EntryConnect {
		return "connect"
	}
	return "accept"
}

// ScheduleEntry tells an agent how to re-create one connection: which
// side initiates, the (possibly remapped) endpoint addresses, and the
// peer's recv sequence number used to discard the send-queue overlap of
// Figure 4.
type ScheduleEntry struct {
	Slot       int // socket slot in this pod's image
	Type       EntryType
	Local      netstack.Addr
	Remote     netstack.Addr
	PeerRcvNxt uint64
	// Order reproduces original creation order, which matters when
	// multiple connections share a source port.
	Order int
}

// EndpointPlan is the restart schedule for one pod: the modified
// meta-data the manager sends with the restart command.
type EndpointPlan struct {
	PodIP   netstack.IP
	Entries []ScheduleEntry
	// TempListeners are ports the agent must listen on temporarily to
	// accept re-created connections whose original listener no longer
	// exists.
	TempListeners []netstack.Port
}

// RemapImage rewrites every network address in the image according to
// the old->new virtual IP map (the paper's substitution of destination
// addresses into the meta-data when migrating to a cluster with
// different addresses). IPs absent from the map are kept.
func RemapImage(img *NetImage, remap map[netstack.IP]netstack.IP) {
	tr := func(ip netstack.IP) netstack.IP {
		if n, ok := remap[ip]; ok {
			return n
		}
		return ip
	}
	img.PodIP = tr(img.PodIP)
	for i := range img.Sockets {
		r := &img.Sockets[i]
		r.Local.IP = tr(r.Local.IP)
		r.Remote.IP = tr(r.Remote.IP)
		for j := range r.Datagrams {
			r.Datagrams[j].From.IP = tr(r.Datagrams[j].From.IP)
		}
	}
}

// connRecord indexes one connection-ish socket record during planning.
type connRecord struct {
	img *NetImage
	rec *SocketRecord
}

// PlanRestart derives the connect/accept schedule from the merged images
// of all pods (after any remapping). The rules:
//
//   - an endpoint with a live listener on the connection's local port
//     accepts (the re-created child then inherits the port exactly as
//     the original accept did);
//   - an endpoint where several connections share one source port must
//     accept all of them, in original creation order;
//   - otherwise the side is chosen arbitrarily (lower address connects).
func PlanRestart(images map[netstack.IP]*NetImage) (map[netstack.IP]*EndpointPlan, error) {
	plans := make(map[netstack.IP]*EndpointPlan, len(images))
	listeners := make(map[netstack.Addr]bool) // live listening endpoints
	shared := make(map[netstack.Addr]int)     // local endpoint -> #connections
	type key struct{ a, b netstack.Addr }
	conns := make(map[key][]connRecord)

	ips := make([]int, 0, len(images))
	for ip := range images {
		ips = append(ips, int(ip))
	}
	sort.Ints(ips)

	for _, ipi := range ips {
		img := images[netstack.IP(ipi)]
		plans[img.PodIP] = &EndpointPlan{PodIP: img.PodIP}
		for i := range img.Sockets {
			r := &img.Sockets[i]
			if r.Proto != netstack.TCP {
				continue
			}
			switch r.State {
			case netstack.StateListening:
				listeners[r.Local] = true
			case netstack.StateEstablished, netstack.StateConnecting:
				if r.ShutWrite && r.PeerClosed {
					// Fully closed both ways: nothing to re-establish;
					// the restore agent reinstates it locally (or drops
					// it entirely when the application closed it too).
					continue
				}
				shared[r.Local]++
				k := key{r.Local, r.Remote}
				if r.Remote.IP < r.Local.IP ||
					(r.Remote.IP == r.Local.IP && r.Remote.Port < r.Local.Port) {
					k = key{r.Remote, r.Local}
				}
				conns[k] = append(conns[k], connRecord{img, r})
			}
		}
	}

	keys := make([]key, 0, len(conns))
	for k := range conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.a != b.a {
			return less(a.a, b.a)
		}
		return less(a.b, b.b)
	})

	for _, k := range keys {
		pair := conns[k]
		if len(pair) > 2 {
			return nil, fmt.Errorf("netckpt: %d records for connection %v<->%v", len(pair), k.a, k.b)
		}
		if err := planConnection(plans, listeners, shared, pair); err != nil {
			return nil, err
		}
	}

	// Determine temp listeners and order entries.
	for _, plan := range plans {
		img := images[plan.PodIP]
		live := make(map[netstack.Port]bool)
		for i := range img.Sockets {
			r := &img.Sockets[i]
			if r.Proto == netstack.TCP && r.State == netstack.StateListening {
				live[r.Local.Port] = true
			}
		}
		sort.Slice(plan.Entries, func(i, j int) bool {
			return plan.Entries[i].Order < plan.Entries[j].Order
		})
		seen := make(map[netstack.Port]bool)
		for _, e := range plan.Entries {
			if e.Type == EntryAccept && !live[e.Local.Port] && !seen[e.Local.Port] {
				seen[e.Local.Port] = true
				plan.TempListeners = append(plan.TempListeners, e.Local.Port)
			}
		}
	}
	return plans, nil
}

func less(a, b netstack.Addr) bool {
	if a.IP != b.IP {
		return a.IP < b.IP
	}
	return a.Port < b.Port
}

func planConnection(plans map[netstack.IP]*EndpointPlan, listeners map[netstack.Addr]bool,
	shared map[netstack.Addr]int, pair []connRecord) error {

	a := pair[0]
	var b *connRecord
	if len(pair) == 2 {
		b = &pair[1]
	}

	// Unpaired record: the peer endpoint no longer exists. For a
	// transient connecting socket the connect is simply re-issued; for
	// an established socket whose peer finished (or aborted) its
	// teardown there is nothing to re-establish — the agent restores it
	// detached, delivering any remaining data followed by EOF, or drops
	// it entirely when the application had already closed it too.
	if b == nil {
		if a.rec.State != netstack.StateConnecting {
			return nil // restored locally (detached) by the agent
		}
		plans[a.img.PodIP].Entries = append(plans[a.img.PodIP].Entries, ScheduleEntry{
			Slot: a.rec.Slot, Type: EntryConnect,
			Local: a.rec.Local, Remote: a.rec.Remote,
			Order: int(a.rec.CreateSeq),
		})
		return nil
	}

	aAccept := listeners[a.rec.Local] || shared[a.rec.Local] > 1 || a.rec.PendingAcceptOf >= 0
	bAccept := listeners[b.rec.Local] || shared[b.rec.Local] > 1 || b.rec.PendingAcceptOf >= 0
	if aAccept && bAccept {
		return errors.New("netckpt: both endpoints require the accept role (shared ports on both sides)")
	}
	if !aAccept && !bAccept {
		// Arbitrary: lower address connects.
		if less(a.rec.Local, b.rec.Local) {
			bAccept = true
		} else {
			aAccept = true
		}
	}
	add := func(cr connRecord, t EntryType, peer *SocketRecord) {
		plans[cr.img.PodIP].Entries = append(plans[cr.img.PodIP].Entries, ScheduleEntry{
			Slot: cr.rec.Slot, Type: t,
			Local: cr.rec.Local, Remote: cr.rec.Remote,
			PeerRcvNxt: peer.PCB.RcvNxt,
			Order:      int(cr.rec.CreateSeq),
		})
	}
	if aAccept {
		add(a, EntryAccept, b.rec)
		add(*b, EntryConnect, a.rec)
	} else {
		add(a, EntryConnect, b.rec)
		add(*b, EntryAccept, a.rec)
	}
	return nil
}

// DiscardOverlap removes the first `overlap` sequence units from a send
// queue (Figure 4: data the peer has already received must not be
// re-sent; discarding from the send queue avoids transferring it over
// the network at all).
func DiscardOverlap(chunks []netstack.Chunk, overlap uint64) []netstack.Chunk {
	out := chunks
	for overlap > 0 && len(out) > 0 {
		l := out[0].SeqLen()
		if l > overlap {
			out[0].Data = out[0].Data[overlap:]
			break
		}
		overlap -= l
		out = out[1:]
	}
	return out
}

// Overlap computes how many sequence units of this endpoint's send queue
// the peer has already received: peerRcvNxt - SndUna, clamped to the
// sent-but-unacked window.
func Overlap(pcb netstack.PCB, peerRcvNxt uint64) uint64 {
	if peerRcvNxt <= pcb.SndUna {
		return 0
	}
	ov := peerRcvNxt - pcb.SndUna
	if max := pcb.SndNxt - pcb.SndUna; ov > max {
		ov = max
	}
	return ov
}

// ApplyRedirect performs the migration optimization of §5: move each
// (post-overlap) send queue directly into the peer's checkpoint stream —
// normal bytes appended to the peer's saved receive data, OOB bytes to
// its OOB data — so the data crosses the network once (inside the
// checkpoint image) instead of twice. Returns the number of payload
// bytes redirected.
func ApplyRedirect(images map[netstack.IP]*NetImage) int64 {
	// Index records by (local,remote).
	type ep struct{ l, r netstack.Addr }
	idx := make(map[ep]*SocketRecord)
	for _, img := range images {
		for i := range img.Sockets {
			rec := &img.Sockets[i]
			if rec.Proto == netstack.TCP && rec.State == netstack.StateEstablished {
				idx[ep{rec.Local, rec.Remote}] = rec
			}
		}
	}
	var moved int64
	// Deterministic order.
	eps := make([]ep, 0, len(idx))
	for k := range idx {
		eps = append(eps, k)
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].l != eps[j].l {
			return less(eps[i].l, eps[j].l)
		}
		return less(eps[i].r, eps[j].r)
	})
	for _, k := range eps {
		rec := idx[k]
		peer, ok := idx[ep{k.r, k.l}]
		if !ok || len(rec.SendChunks) == 0 {
			continue
		}
		chunks := DiscardOverlap(rec.SendChunks, Overlap(rec.PCB, peer.PCB.RcvNxt))
		for _, c := range chunks {
			switch {
			case c.FIN:
				peer.PeerClosed = true
			case c.OOB:
				peer.OOBData = append(peer.OOBData, c.Data...)
				moved += int64(len(c.Data))
			default:
				peer.RecvData = append(peer.RecvData, c.Data...)
				moved += int64(len(c.Data))
			}
		}
		rec.SendChunks = nil
		rec.Redirected = true
	}
	return moved
}
