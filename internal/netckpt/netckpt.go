// Package netckpt implements ZapC's network-state checkpoint/restart
// (paper §5): saving and restoring the complete state of every
// communication endpoint of a pod in a transport-protocol-independent
// way, using only the socket abstraction plus the minimal
// protocol-control-block state (the sent/recv/acked sequence numbers).
//
// Checkpoint: with the pod suspended and its traffic frozen by
// netfilter, the agent walks the pod's sockets, saving (1) the full
// socket parameter set through the getsockopt interface, (2) the
// receive-side data — alternate queue, processed receive queue, kernel
// backlog queue, and out-of-band queue — without side effects, (3) the
// send queue read through the in-kernel socket-layer interface, and
// (4) the three PCB sequence numbers. In-flight packets are ignored:
// reliable protocols retransmit them, unreliable protocols may lose
// them by contract.
//
// Restart: the manager derives a connect/accept schedule from the merged
// meta-data (respecting shared source ports and the original creation
// order) and each agent re-establishes its connections with ordinary
// connect and accept calls, using two logical threads — one accepting,
// one connecting — so no deadlock-free ordering is ever needed. Saved
// receive data is loaded into an alternate receive queue behind an
// interposed dispatch vector (recvmsg, poll, release); the send queue is
// re-sent through the new connection after discarding the overlap
// [SndUna, peer.RcvNxt) that the peer has already received.
package netckpt

import (
	"errors"
	"fmt"

	"zapc/internal/imgfmt"
	"zapc/internal/netstack"
)

// ConnState is the connection state recorded in the meta-data table the
// agent reports to the manager, exactly the four states of the paper.
type ConnState int

// Connection states.
const (
	ConnFullDuplex ConnState = iota + 1 // established, both directions open
	ConnHalfDuplex                      // one direction shut down
	ConnClosedData                      // closed, possibly unread data
	ConnConnecting                      // transient: not yet established
)

func (c ConnState) String() string {
	switch c {
	case ConnFullDuplex:
		return "full-duplex"
	case ConnHalfDuplex:
		return "half-duplex"
	case ConnClosedData:
		return "closed"
	case ConnConnecting:
		return "connecting"
	default:
		return fmt.Sprintf("connstate(%d)", int(c))
	}
}

// SocketRecord is the saved state of one socket.
type SocketRecord struct {
	// Slot is the socket's index in the pod's socket table; the
	// standalone checkpoint references sockets by slot when saving
	// descriptor tables.
	Slot int
	// CreateSeq preserves original creation order (needed when several
	// connections share a source port).
	CreateSeq uint64

	Proto  netstack.Proto
	State  netstack.State
	Local  netstack.Addr
	Remote netstack.Addr

	// Opts is the complete socket/protocol option set (paper: "for
	// correctness, the entire set of the parameters is included").
	Opts []netstack.OptValue

	// RecvData is the receive-side byte stream owed to the application:
	// alternate queue + receive queue + backlog queue, in consumption
	// order.
	RecvData []byte
	// OOBData is the pending out-of-band data.
	OOBData []byte
	// SendChunks is the send queue: all unacknowledged (plus unsent)
	// data starting at sequence PCB.SndUna.
	SendChunks []netstack.Chunk
	// PCB carries the minimal protocol-specific state.
	PCB netstack.PCB

	// Datagrams is the queued data of UDP/RAW sockets. Saved regardless
	// of protocol reliability: restoring it avoids artificial packet
	// loss after restart, and peeked data must be preserved for
	// correctness.
	Datagrams []netstack.Datagram
	Peeked    bool
	RawProto  int

	ShutWrite  bool
	PeerClosed bool
	// AppClosed marks a socket the application has already released but
	// which lingers in the kernel to finish reliable teardown (FIN not
	// yet acknowledged). It is restored and closed again, never wired to
	// a descriptor.
	AppClosed bool

	// ListenBacklog is the backlog of a listening socket.
	ListenBacklog int
	// PendingAcceptOf is the slot of the listener whose accept queue
	// held this not-yet-accepted connection (-1 otherwise).
	PendingAcceptOf int

	// Redirected marks a send queue that the migration optimization
	// moved into the peer's checkpoint stream; the restore agent must
	// not re-send it.
	Redirected bool
}

// ConnMeta is one row of the meta-data table: the paper's
// <source, target, state> tuple.
type ConnMeta struct {
	Src, Dst  netstack.Addr
	State     ConnState
	CreateSeq uint64
}

// Meta is the network meta-data one agent reports to the manager after
// its network checkpoint.
type Meta struct {
	PodIP netstack.IP
	Conns []ConnMeta
}

// NetImage is a pod's complete network-state checkpoint.
type NetImage struct {
	PodIP   netstack.IP
	Sockets []SocketRecord
}

// connState derives the paper's meta state from socket flags.
func connState(s *netstack.Socket) ConnState {
	switch {
	case s.State() == netstack.StateConnecting:
		return ConnConnecting
	case s.WriteShut() && s.PeerClosed():
		return ConnClosedData
	case s.WriteShut() || s.PeerClosed():
		return ConnHalfDuplex
	default:
		return ConnFullDuplex
	}
}

// CheckpointStack saves the network state of a pod's stack. The pod must
// be suspended and its network blocked; the walk is side-effect free so
// the checkpoint can be rolled back (or used as a pure snapshot).
func CheckpointStack(st *netstack.Stack) (*NetImage, *Meta, error) {
	if !st.Filter().Blocked() {
		return nil, nil, errors.New("netckpt: pod network not blocked")
	}
	img := &NetImage{PodIP: st.IPAddr()}
	meta := &Meta{PodIP: st.IPAddr()}

	socks := st.Sockets()
	slotOf := make(map[*netstack.Socket]int, len(socks))
	for i, s := range socks {
		slotOf[s] = i
	}
	// Map pending (not yet accepted) children to their listener slot.
	pendingOf := make(map[*netstack.Socket]int)
	for i, s := range socks {
		if s.State() == netstack.StateListening {
			for _, child := range s.AcceptQueue() {
				pendingOf[child] = i
			}
		}
	}

	for i, s := range socks {
		rec := SocketRecord{
			Slot:            i,
			CreateSeq:       s.CreateSeq(),
			Proto:           s.Proto(),
			State:           s.State(),
			Local:           s.LocalAddr(),
			Remote:          s.RemoteAddr(),
			Opts:            s.OptsSnapshot(),
			PendingAcceptOf: -1,
		}
		switch s.Proto() {
		case netstack.TCP:
			switch s.State() {
			case netstack.StateListening:
				rec.ListenBacklog = s.ListenBacklogMax()
			case netstack.StateEstablished, netstack.StateConnecting:
				rec.RecvData = s.CheckpointReceiveData()
				rec.OOBData = s.CheckpointOOB()
				rec.SendChunks = s.SendQueueSnapshot()
				rec.PCB = s.PCBSnapshot()
				rec.ShutWrite = s.WriteShut()
				rec.PeerClosed = s.PeerClosed()
				rec.AppClosed = s.Closed()
				if l, ok := pendingOf[s]; ok {
					rec.PendingAcceptOf = l
				}
				meta.Conns = append(meta.Conns, ConnMeta{
					Src:       rec.Local,
					Dst:       rec.Remote,
					State:     connState(s),
					CreateSeq: rec.CreateSeq,
				})
			}
		case netstack.UDP:
			rec.Datagrams = s.DatagramQueue()
			rec.Peeked = s.Peeked()
		case netstack.RAW:
			rec.RawProto = s.RawProto()
			rec.Datagrams = s.DatagramQueue()
			rec.Peeked = s.Peeked()
		}
		img.Sockets = append(img.Sockets, rec)
	}
	return img, meta, nil
}

// Bytes reports the serialized footprint of the network image (the
// paper's "network-state data" size, a few KB in practice).
func (img *NetImage) Bytes() int64 {
	enc := imgfmt.NewEncoder()
	img.Encode(enc)
	return int64(enc.Len())
}

// QueueBytes reports the total queued payload bytes across all sockets
// (used for the cost model: freezing and copying queue contents).
func (img *NetImage) QueueBytes() int64 {
	var n int64
	for _, r := range img.Sockets {
		n += int64(len(r.RecvData) + len(r.OOBData))
		for _, c := range r.SendChunks {
			n += int64(len(c.Data))
		}
		for _, d := range r.Datagrams {
			n += int64(len(d.Data))
		}
	}
	return n
}

// QueueMsgs counts the discrete queued payloads captured in the image —
// receive streams, out-of-band marks, send chunks, and datagrams. These
// are the units the restart path reinjects into fresh sockets, so the
// figure pairs with QueueBytes in trace attributes and the
// netstack_reinjected_msgs_total counter.
func (img *NetImage) QueueMsgs() int64 {
	var n int64
	for _, r := range img.Sockets {
		if len(r.RecvData) > 0 {
			n++
		}
		if len(r.OOBData) > 0 {
			n++
		}
		n += int64(len(r.SendChunks)) + int64(len(r.Datagrams))
	}
	return n
}

// Image field tags.
const (
	tagPodIP    = 1
	tagSocket   = 2
	tagSlot     = 1
	tagCreate   = 2
	tagProto    = 3
	tagState    = 4
	tagLocalIP  = 5
	tagLocalPt  = 6
	tagRemIP    = 7
	tagRemPt    = 8
	tagOpt      = 9
	tagOptKey   = 1
	tagOptVal   = 2
	tagRecvData = 10
	tagOOBData  = 11
	tagChunk    = 12
	tagChkData  = 1
	tagChkOOB   = 2
	tagChkFIN   = 3
	tagSndNxt   = 13
	tagSndUna   = 14
	tagRcvNxt   = 15
	tagDgram    = 16
	tagDgFromIP = 1
	tagDgFromPt = 2
	tagDgData   = 3
	tagDgRaw    = 4
	tagPeeked   = 17
	tagRawProto = 18
	tagShutW    = 19
	tagPeerCl   = 20
	tagBacklog  = 21
	tagPendOf   = 22
	tagRedir    = 23
	tagAppClose = 24
)

// Encode writes the image into a checkpoint stream.
func (img *NetImage) Encode(e *imgfmt.Encoder) {
	e.Uint(tagPodIP, uint64(img.PodIP))
	for _, r := range img.Sockets {
		e.Begin(tagSocket)
		e.Uint(tagSlot, uint64(r.Slot))
		e.Uint(tagCreate, r.CreateSeq)
		e.Uint(tagProto, uint64(r.Proto))
		e.Uint(tagState, uint64(r.State))
		e.Uint(tagLocalIP, uint64(r.Local.IP))
		e.Uint(tagLocalPt, uint64(r.Local.Port))
		e.Uint(tagRemIP, uint64(r.Remote.IP))
		e.Uint(tagRemPt, uint64(r.Remote.Port))
		for _, ov := range r.Opts {
			// The record carries the entire option set; zero values are
			// the defaults and need no wire representation (a decoder
			// treats an absent option as zero), keeping the
			// network-state footprint at the paper's few-hundred-byte
			// scale.
			if ov.Val == 0 {
				continue
			}
			e.Begin(tagOpt)
			e.Uint(tagOptKey, uint64(ov.Opt))
			e.Int(tagOptVal, ov.Val)
			e.End()
		}
		e.Bytes(tagRecvData, r.RecvData)
		e.Bytes(tagOOBData, r.OOBData)
		for _, c := range r.SendChunks {
			e.Begin(tagChunk)
			e.Bytes(tagChkData, c.Data)
			e.Bool(tagChkOOB, c.OOB)
			e.Bool(tagChkFIN, c.FIN)
			e.End()
		}
		e.Uint(tagSndNxt, r.PCB.SndNxt)
		e.Uint(tagSndUna, r.PCB.SndUna)
		e.Uint(tagRcvNxt, r.PCB.RcvNxt)
		for _, d := range r.Datagrams {
			e.Begin(tagDgram)
			e.Uint(tagDgFromIP, uint64(d.From.IP))
			e.Uint(tagDgFromPt, uint64(d.From.Port))
			e.Bytes(tagDgData, d.Data)
			e.Uint(tagDgRaw, uint64(d.RawProto))
			e.End()
		}
		e.Bool(tagPeeked, r.Peeked)
		e.Uint(tagRawProto, uint64(r.RawProto))
		e.Bool(tagShutW, r.ShutWrite)
		e.Bool(tagPeerCl, r.PeerClosed)
		e.Uint(tagBacklog, uint64(r.ListenBacklog))
		e.Int(tagPendOf, int64(r.PendingAcceptOf))
		e.Bool(tagRedir, r.Redirected)
		e.Bool(tagAppClose, r.AppClosed)
		e.End()
	}
}

// DecodeImage reads a network image from a checkpoint stream.
func DecodeImage(d *imgfmt.Decoder) (*NetImage, error) {
	img := &NetImage{}
	ip, err := d.Uint(tagPodIP)
	if err != nil {
		return nil, err
	}
	img.PodIP = netstack.IP(ip)
	for d.More() {
		tag, _, err := d.Peek()
		if err != nil {
			return nil, err
		}
		if tag != tagSocket {
			break
		}
		sec, err := d.Section(tagSocket)
		if err != nil {
			return nil, err
		}
		r, err := decodeSocketRecord(sec)
		if err != nil {
			return nil, err
		}
		img.Sockets = append(img.Sockets, r)
	}
	return img, nil
}

func decodeSocketRecord(d *imgfmt.Decoder) (SocketRecord, error) {
	var r SocketRecord
	var err error
	u := func(tag uint64) uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = d.Uint(tag)
		return v
	}
	r.Slot = int(u(tagSlot))
	r.CreateSeq = u(tagCreate)
	r.Proto = netstack.Proto(u(tagProto))
	r.State = netstack.State(u(tagState))
	r.Local = netstack.Addr{IP: netstack.IP(u(tagLocalIP)), Port: netstack.Port(u(tagLocalPt))}
	r.Remote = netstack.Addr{IP: netstack.IP(u(tagRemIP)), Port: netstack.Port(u(tagRemPt))}
	if err != nil {
		return r, err
	}
	for {
		tag, _, perr := d.Peek()
		if perr != nil || tag != tagOpt {
			break
		}
		sec, serr := d.Section(tagOpt)
		if serr != nil {
			return r, serr
		}
		k, e1 := sec.Uint(tagOptKey)
		v, e2 := sec.Int(tagOptVal)
		if e1 != nil || e2 != nil {
			return r, errors.Join(e1, e2)
		}
		r.Opts = append(r.Opts, netstack.OptValue{Opt: netstack.Opt(k), Val: v})
	}
	rd, err := d.Bytes(tagRecvData)
	if err != nil {
		return r, err
	}
	r.RecvData = append([]byte(nil), rd...)
	ob, err := d.Bytes(tagOOBData)
	if err != nil {
		return r, err
	}
	r.OOBData = append([]byte(nil), ob...)
	for {
		tag, _, perr := d.Peek()
		if perr != nil || tag != tagChunk {
			break
		}
		sec, serr := d.Section(tagChunk)
		if serr != nil {
			return r, serr
		}
		var c netstack.Chunk
		data, e1 := sec.Bytes(tagChkData)
		c.Data = append([]byte(nil), data...)
		c.OOB, _ = sec.Bool(tagChkOOB)
		c.FIN, _ = sec.Bool(tagChkFIN)
		if e1 != nil {
			return r, e1
		}
		r.SendChunks = append(r.SendChunks, c)
	}
	r.PCB.SndNxt = u(tagSndNxt)
	r.PCB.SndUna = u(tagSndUna)
	r.PCB.RcvNxt = u(tagRcvNxt)
	if err != nil {
		return r, err
	}
	for {
		tag, _, perr := d.Peek()
		if perr != nil || tag != tagDgram {
			break
		}
		sec, serr := d.Section(tagDgram)
		if serr != nil {
			return r, serr
		}
		var dg netstack.Datagram
		fip, e1 := sec.Uint(tagDgFromIP)
		fpt, e2 := sec.Uint(tagDgFromPt)
		data, e3 := sec.Bytes(tagDgData)
		raw, e4 := sec.Uint(tagDgRaw)
		if e := errors.Join(e1, e2, e3, e4); e != nil {
			return r, e
		}
		dg.From = netstack.Addr{IP: netstack.IP(fip), Port: netstack.Port(fpt)}
		dg.Data = append([]byte(nil), data...)
		dg.RawProto = int(raw)
		r.Datagrams = append(r.Datagrams, dg)
	}
	r.Peeked, err = d.Bool(tagPeeked)
	if err != nil {
		return r, err
	}
	r.RawProto = int(u(tagRawProto))
	if err != nil {
		return r, err
	}
	if r.ShutWrite, err = d.Bool(tagShutW); err != nil {
		return r, err
	}
	if r.PeerClosed, err = d.Bool(tagPeerCl); err != nil {
		return r, err
	}
	r.ListenBacklog = int(u(tagBacklog))
	if err != nil {
		return r, err
	}
	po, err := d.Int(tagPendOf)
	if err != nil {
		return r, err
	}
	r.PendingAcceptOf = int(po)
	if r.Redirected, err = d.Bool(tagRedir); err != nil {
		return r, err
	}
	if r.AppClosed, err = d.Bool(tagAppClose); err != nil {
		return r, err
	}
	return r, nil
}
