package netckpt

import (
	"testing"

	"zapc/internal/netstack"
	"zapc/internal/sim"
)

// buildRing creates n stacks connected in a ring (each pod has one
// listener on port 80, one outbound connection to the next pod, and one
// accepted child from the previous pod), checkpoints all of them, and
// returns the images plus the network.
func buildRing(t *testing.T, n int) (*sim.World, *netstack.Network, map[netstack.IP]*NetImage, []*netstack.Stack) {
	t.Helper()
	w, nw := mkWorld(31)
	stacks := make([]*netstack.Stack, n)
	for i := range stacks {
		stacks[i] = mkStack(t, nw, netstack.IP(i+1))
		l := stacks[i].Socket(netstack.TCP)
		if err := l.Bind(80); err != nil {
			t.Fatal(err)
		}
		l.Listen(4)
	}
	conns := make([]*netstack.Socket, n)
	for i := range stacks {
		next := netstack.IP((i+1)%n + 1)
		c := stacks[i].Socket(netstack.TCP)
		if err := c.Connect(netstack.Addr{IP: next, Port: 80}); err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	drive(t, w, func() bool {
		for _, c := range conns {
			if c.State() != netstack.StateEstablished {
				return false
			}
		}
		return true
	})
	// Each node accepts its inbound neighbor and sends a token so every
	// connection carries queue data.
	for i := range stacks {
		for _, s := range stacks[i].Sockets() {
			if s.State() == netstack.StateListening {
				for s.AcceptPending() > 0 {
					s.Accept()
				}
			}
		}
		conns[i].Send([]byte{byte(i + 1)}, false)
	}
	w.RunUntil(w.Now() + sim.Time(50*sim.Millisecond))
	images := freezeCheckpoint(t, stacks...)
	return w, nw, images, stacks
}

// TestAcceptFirstDeadlocks demonstrates the paper's §4 warning: if every
// agent first waits to accept before issuing its connects, a ring
// topology deadlocks. The two-actor scheme (default) restores the same
// ring without any schedule analysis.
func TestAcceptFirstDeadlocks(t *testing.T) {
	const n = 4
	w, nw, images, stacks := buildRing(t, n)
	for _, st := range stacks {
		nw.Detach(st)
	}
	plans, err := PlanRestart(images)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the ring gives every pod exactly one accept and one
	// connect entry, the shape that deadlocks under accept-first.
	for ip, plan := range plans {
		var acc, con int
		for _, e := range plan.Entries {
			if e.Type == EntryAccept {
				acc++
			} else {
				con++
			}
		}
		if acc != 1 || con != 1 {
			t.Fatalf("pod %v: accepts=%d connects=%d, want 1/1", ip, acc, con)
		}
	}
	done := 0
	for ip, img := range images {
		st := mkStack(t, nw, ip)
		r := NewRestorer(st, img, plans[ip], func(err error) {
			if err != nil {
				t.Fatalf("restore error: %v", err)
			}
			done++
		})
		r.SetAcceptFirst(true)
		r.Start()
	}
	// Drive a long simulated interval: nothing can complete — every
	// agent waits to accept a SYN that no agent will ever send.
	w.RunUntil(w.Now() + sim.Time(30*sim.Second))
	if done != 0 {
		t.Fatalf("accept-first ring restore completed %d pods; expected deadlock", done)
	}
}

// TestTwoActorRestoresRing is the counterpart: the default two-actor
// scheme restores the identical ring, token intact.
func TestTwoActorRestoresRing(t *testing.T) {
	const n = 4
	w, nw, images, stacks := buildRing(t, n)
	socks := restoreAll(t, w, nw, images, stacks...)
	// Every pod got its token back exactly once.
	for ip := netstack.IP(1); ip <= n; ip++ {
		found := false
		for _, s := range socks[ip] {
			if s == nil || s.State() != netstack.StateEstablished {
				continue
			}
			d, err := s.Recv(16, false, false)
			if err == nil && len(d) == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("pod %v lost its ring token", ip)
		}
	}
}

// TestAcceptFirstWorksOnStarTopology shows the strawman is not always
// wrong — an acyclic accept/connect graph (pure client-server star)
// completes even accept-first — underlining that the failure is
// topology-dependent, which is why the paper avoids depending on
// topology at all.
func TestAcceptFirstWorksOnStarTopology(t *testing.T) {
	w, nw := mkWorld(33)
	hub := mkStack(t, nw, 1)
	l := hub.Socket(netstack.TCP)
	l.Bind(80)
	l.Listen(8)
	var leaves []*netstack.Stack
	for i := 0; i < 3; i++ {
		leaf := mkStack(t, nw, netstack.IP(i+2))
		c := leaf.Socket(netstack.TCP)
		if err := c.Connect(netstack.Addr{IP: 1, Port: 80}); err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, leaf)
	}
	drive(t, w, func() bool { return l.AcceptPending() == 3 })
	for l.AcceptPending() > 0 {
		l.Accept()
	}
	all := append([]*netstack.Stack{hub}, leaves...)
	images := freezeCheckpoint(t, all...)
	for _, st := range all {
		nw.Detach(st)
	}
	plans, err := PlanRestart(images)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for ip, img := range images {
		st := mkStack(t, nw, ip)
		r := NewRestorer(st, img, plans[ip], func(err error) {
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			done++
		})
		r.SetAcceptFirst(true)
		r.Start()
	}
	drive(t, w, func() bool { return done == len(images) })
}
