package netckpt

import (
	"testing"

	"zapc/internal/netstack"
)

// naivePeekCheckpoint is the Cruz-style capture the paper criticizes
// (§2, §5): read the receive queue with MSG_PEEK through the standard
// application interface. It sees only data the kernel has already
// processed into the receive queue — nothing in the backlog queue, and
// nothing in the out-of-band queue.
func naivePeekCheckpoint(s *netstack.Socket) (recv, oob []byte) {
	if d, err := s.Recv(1<<20, true, false); err == nil {
		recv = d
	}
	// MSG_PEEK on the normal stream does not reach OOB data; Cruz's
	// technique has no way to see it (the paper: "will fail to capture
	// ... crucial out-of-band, urgent, and backlog queue data").
	return recv, nil
}

// TestNaivePeekMissesBacklogAndOOB contrasts the naive technique with
// the full network-state checkpoint at the same frozen instant: the
// naive capture is short by exactly the backlog and OOB bytes.
func TestNaivePeekMissesBacklogAndOOB(t *testing.T) {
	w, nw := mkWorld(21)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)

	// Processed data, then urgent data, then data that will still be in
	// the kernel backlog when we freeze.
	cli.Send([]byte("processed."), false)
	drive(t, w, func() bool { return srv.RecvQueueLen() == 10 })
	cli.Send([]byte("U"), true)
	drive(t, w, func() bool { return srv.OOBLen() == 1 })
	cli.Send([]byte("in-backlog"), false)
	drive(t, w, func() bool { return srv.BacklogLen() > 0 })

	// Freeze the pod exactly as a checkpoint would.
	a.Filter().BlockAll()
	b.Filter().BlockAll()

	naiveRecv, naiveOOB := naivePeekCheckpoint(srv)
	img, _, err := CheckpointStack(b)
	if err != nil {
		t.Fatal(err)
	}
	var rec *SocketRecord
	for i := range img.Sockets {
		if img.Sockets[i].State == netstack.StateEstablished {
			rec = &img.Sockets[i]
		}
	}

	// ZapC's capture is complete.
	if string(rec.RecvData) != "processed.in-backlog" {
		t.Fatalf("full capture = %q", rec.RecvData)
	}
	if string(rec.OOBData) != "U" {
		t.Fatalf("full oob capture = %q", rec.OOBData)
	}
	// The naive capture lost the backlog and the urgent byte.
	if string(naiveRecv) != "processed." {
		t.Fatalf("naive capture = %q (expected it to miss the backlog)", naiveRecv)
	}
	if len(naiveOOB) != 0 {
		t.Fatalf("naive oob = %q", naiveOOB)
	}
	lost := (len(rec.RecvData) - len(naiveRecv)) + (len(rec.OOBData) - len(naiveOOB))
	if lost != len("in-backlog")+1 {
		t.Fatalf("naive technique lost %d bytes, want %d", lost, len("in-backlog")+1)
	}
}
