package netckpt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"zapc/internal/netstack"
	"zapc/internal/sim"
)

// streamRig drives a bidirectional connection with scripted writes and
// partial reads, checkpoints both pods at an arbitrary instant, restores
// them onto fresh stacks, and drains the remainder.
type streamRig struct {
	w        *sim.World
	nw       *netstack.Network
	a, b     *netstack.Stack
	cli, srv *netstack.Socket
}

func newStreamRig(seed int64, loss float64) (*streamRig, bool) {
	w := sim.NewWorld(seed)
	nw := netstack.NewNetwork(w)
	a, _ := nw.NewStack(1)
	b, _ := nw.NewStack(2)
	nw.SetLossRate(loss)
	l := b.Socket(netstack.TCP)
	l.Bind(80)
	l.Listen(4)
	c := a.Socket(netstack.TCP)
	c.Connect(netstack.Addr{IP: 2, Port: 80})
	for c.State() != netstack.StateEstablished {
		if c.Err() != nil {
			c = a.Socket(netstack.TCP)
			c.Connect(netstack.Addr{IP: 2, Port: 80})
		}
		if !w.Step() && c.State() != netstack.StateEstablished {
			return nil, false
		}
	}
	srv, ok := func() (*netstack.Socket, bool) {
		for l.AcceptPending() > 0 {
			s, err := l.Accept()
			if err != nil {
				return nil, false
			}
			if s.RemoteAddr() == c.LocalAddr() {
				return s, true
			}
			s.Close()
		}
		return nil, false
	}()
	if !ok {
		return nil, false
	}
	return &streamRig{w: w, nw: nw, a: a, b: b, cli: c, srv: srv}, true
}

// Property: for any pair of write scripts, any partial pre-checkpoint
// consumption, any loss rate up to 30%, and any checkpoint instant, the
// two applications observe both byte streams exactly once, in order,
// across a full checkpoint/restore of both endpoints.
func TestQuickCheckpointPreservesStreams(t *testing.T) {
	f := func(seed int64, c2s, s2c [][]byte, preRead uint16, lossPct, stepsByte uint8) bool {
		rig, ok := newStreamRig(seed, float64(lossPct%31)/100)
		if !ok {
			return false
		}
		w := rig.w
		var wantC2S, wantS2C []byte
		send := func(s *netstack.Socket, bufs [][]byte, want *[]byte) {
			for _, buf := range bufs {
				if len(buf) > 2*netstack.MSS {
					buf = buf[:2*netstack.MSS]
				}
				*want = append(*want, buf...)
				sent := 0
				for sent < len(buf) {
					n, err := s.Send(buf[sent:], false)
					sent += n
					if err != nil && !errors.Is(err, netstack.ErrWouldBlock) {
						return
					}
					if n == 0 {
						w.RunUntil(w.Now() + sim.Time(300*sim.Millisecond))
					}
				}
			}
		}
		send(rig.cli, c2s, &wantC2S)
		send(rig.srv, s2c, &wantS2C)

		// Run an arbitrary number of steps so the checkpoint lands at an
		// arbitrary protocol instant (mid-flight, mid-backlog, ...).
		for i := 0; i < int(stepsByte)*4; i++ {
			if !w.Step() {
				break
			}
		}
		// Partially consume before the checkpoint.
		var gotC2S, gotS2C []byte
		if d, err := rig.srv.Recv(int(preRead), false, false); err == nil {
			gotC2S = append(gotC2S, d...)
		}
		if d, err := rig.cli.Recv(int(preRead)/2, false, false); err == nil {
			gotS2C = append(gotS2C, d...)
		}

		// Freeze, checkpoint, restore on fresh stacks.
		rig.a.Filter().BlockAll()
		rig.b.Filter().BlockAll()
		imgA, _, err := CheckpointStack(rig.a)
		if err != nil {
			return false
		}
		imgB, _, err := CheckpointStack(rig.b)
		if err != nil {
			return false
		}
		rig.nw.Detach(rig.a)
		rig.nw.Detach(rig.b)
		images := map[netstack.IP]*NetImage{1: imgA, 2: imgB}
		plans, err := PlanRestart(images)
		if err != nil {
			return false
		}
		restored := 0
		failed := false
		socks := make(map[netstack.IP][]*netstack.Socket)
		for ip, img := range images {
			st, err := rig.nw.NewStack(ip)
			if err != nil {
				return false
			}
			r := NewRestorer(st, img, plans[ip], func(err error) {
				if err != nil {
					failed = true
				}
				restored++
			})
			socks[ip] = r.Sockets()
			r.Start()
		}
		deadline := w.Now() + sim.Time(5*60*sim.Second)
		for restored < 2 && !failed && w.Now() < deadline {
			if !w.Step() {
				break
			}
		}
		if failed || restored < 2 {
			return false
		}
		newCli := firstEstablished(socks[1])
		newSrv := firstEstablished(socks[2])
		if newCli == nil || newSrv == nil {
			return false
		}
		// Drain everything still owed.
		deadline = w.Now() + sim.Time(10*60*sim.Second)
		for w.Now() < deadline {
			if d, err := newSrv.Recv(1<<20, false, false); err == nil {
				gotC2S = append(gotC2S, d...)
			}
			if d, err := newCli.Recv(1<<20, false, false); err == nil {
				gotS2C = append(gotS2C, d...)
			}
			if len(gotC2S) == len(wantC2S) && len(gotS2C) == len(wantS2C) &&
				newCli.SendQueueSeqLen() == 0 && newSrv.SendQueueSeqLen() == 0 {
				break
			}
			if !w.Step() {
				break
			}
		}
		return bytes.Equal(gotC2S, wantC2S) && bytes.Equal(gotS2C, wantS2C)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func firstEstablished(socks []*netstack.Socket) *netstack.Socket {
	for _, s := range socks {
		if s != nil && s.State() == netstack.StateEstablished {
			return s
		}
	}
	return nil
}

// TestDoubleCheckpointCycle checkpoints, restores, exchanges more data
// while the alternate queue is only partially drained, checkpoints
// again (the second image must include the remaining alternate-queue
// data, per §5), restores again, and verifies the full stream.
func TestDoubleCheckpointCycle(t *testing.T) {
	rig, ok := newStreamRig(99, 0)
	if !ok {
		t.Fatal("setup failed")
	}
	w := rig.w
	var want []byte
	msg1 := bytes.Repeat([]byte("first"), 200)
	want = append(want, msg1...)
	rig.cli.Send(msg1, false)
	drive(t, w, func() bool { return rig.srv.RecvQueueLen() == len(msg1) })

	// Cycle 1.
	rig.a.Filter().BlockAll()
	rig.b.Filter().BlockAll()
	images := map[netstack.IP]*NetImage{}
	for ip, st := range map[netstack.IP]*netstack.Stack{1: rig.a, 2: rig.b} {
		img, _, err := CheckpointStack(st)
		if err != nil {
			t.Fatal(err)
		}
		images[ip] = img
	}
	socks := restoreAll(t, w, rig.nw, images, rig.a, rig.b)
	cli1 := firstEstablished(socks[1])
	srv1 := firstEstablished(socks[2])

	// Drain only part of the restored data; send more.
	var got []byte
	d, err := srv1.Recv(300, false, false)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, d...)
	if srv1.AltQueueLen() == 0 {
		t.Fatal("alternate queue already empty; test needs leftovers")
	}
	msg2 := bytes.Repeat([]byte("second"), 100)
	want = append(want, msg2...)
	cli1.Send(msg2, false)
	drive(t, w, func() bool { return srv1.RecvQueueLen() >= len(msg2) })

	// Cycle 2: stacks of the restored pods.
	stA, _ := rig.nw.Stack(1)
	stB, _ := rig.nw.Stack(2)
	stA.Filter().BlockAll()
	stB.Filter().BlockAll()
	images2 := map[netstack.IP]*NetImage{}
	for ip, st := range map[netstack.IP]*netstack.Stack{1: stA, 2: stB} {
		img, _, err := CheckpointStack(st)
		if err != nil {
			t.Fatal(err)
		}
		images2[ip] = img
	}
	socks2 := restoreAll(t, w, rig.nw, images2, stA, stB)
	srv2 := firstEstablished(socks2[2])
	drive(t, w, func() bool {
		for {
			d, err := srv2.Recv(1<<20, false, false)
			if err != nil || len(d) == 0 {
				break
			}
			got = append(got, d...)
		}
		return len(got) >= len(want)
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("double-cycle stream mismatch: got %d want %d bytes (first diff %d)",
			len(got), len(want), firstDiff(got, want))
	}
}
