package netckpt

import (
	"bytes"
	"errors"
	"testing"

	"zapc/internal/imgfmt"
	"zapc/internal/netstack"
	"zapc/internal/sim"
)

func mkWorld(seed int64) (*sim.World, *netstack.Network) {
	w := sim.NewWorld(seed)
	return w, netstack.NewNetwork(w)
}

func mkStack(t *testing.T, nw *netstack.Network, ip netstack.IP) *netstack.Stack {
	t.Helper()
	st, err := nw.NewStack(ip)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func drive(t *testing.T, w *sim.World, cond func() bool) {
	t.Helper()
	deadline := w.Now() + sim.Time(60*sim.Second)
	for !cond() {
		if w.Now() > deadline {
			t.Fatal("condition not reached before deadline")
		}
		if !w.Step() {
			if cond() {
				return
			}
			t.Fatal("event queue drained before condition")
		}
	}
}

// establish builds a client-server connection between two stacks.
func establish(t *testing.T, w *sim.World, a, b *netstack.Stack, port netstack.Port) (cli, srv, listener *netstack.Socket) {
	t.Helper()
	l := b.Socket(netstack.TCP)
	if err := l.Bind(port); err != nil {
		t.Fatal(err)
	}
	l.Listen(16)
	c := a.Socket(netstack.TCP)
	if err := c.Connect(netstack.Addr{IP: b.IPAddr(), Port: port}); err != nil {
		t.Fatal(err)
	}
	drive(t, w, func() bool { return c.State() == netstack.StateEstablished && l.AcceptPending() > 0 })
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return c, s, l
}

// freezeCheckpoint blocks both stacks and checkpoints them.
func freezeCheckpoint(t *testing.T, stacks ...*netstack.Stack) map[netstack.IP]*NetImage {
	t.Helper()
	for _, st := range stacks {
		st.Filter().BlockAll()
	}
	images := make(map[netstack.IP]*NetImage)
	for _, st := range stacks {
		img, meta, err := CheckpointStack(st)
		if err != nil {
			t.Fatal(err)
		}
		if meta.PodIP != st.IPAddr() {
			t.Fatal("meta pod ip mismatch")
		}
		images[st.IPAddr()] = img
	}
	return images
}

// restoreAll detaches old stacks, creates fresh ones under the same IPs,
// and runs the restorers to completion. Returns slot-indexed sockets per
// pod.
func restoreAll(t *testing.T, w *sim.World, nw *netstack.Network,
	images map[netstack.IP]*NetImage, old ...*netstack.Stack) map[netstack.IP][]*netstack.Socket {
	t.Helper()
	for _, st := range old {
		nw.Detach(st)
	}
	plans, err := PlanRestart(images)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[netstack.IP][]*netstack.Socket)
	pending := 0
	var firstErr error
	for ip, img := range images {
		st := mkStack(t, nw, ip)
		r := NewRestorer(st, img, plans[ip], func(err error) {
			pending--
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
		pending++
		out[ip] = r.Sockets()
		r.Start()
	}
	drive(t, w, func() bool { return pending == 0 || firstErr != nil })
	if firstErr != nil {
		t.Fatalf("restore failed: %v", firstErr)
	}
	return out
}

func TestCheckpointRequiresBlockedNetwork(t *testing.T) {
	_, nw := mkWorld(1)
	st := mkStack(t, nw, 1)
	if _, _, err := CheckpointStack(st); err == nil {
		t.Fatal("checkpoint of unblocked stack must fail")
	}
}

func TestCheckpointCapturesQueues(t *testing.T) {
	w, nw := mkWorld(2)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)
	cli.Send([]byte("hello world"), false)
	cli.Send([]byte("!"), true) // OOB
	srv.Send([]byte("reply"), false)
	drive(t, w, func() bool {
		return srv.RecvQueueLen()+srv.BacklogLen() == 11 && srv.OOBLen() == 1 && cli.RecvQueueLen()+cli.BacklogLen() == 5
	})
	images := freezeCheckpoint(t, a, b)

	imgB := images[2]
	var srvRec *SocketRecord
	for i := range imgB.Sockets {
		if imgB.Sockets[i].State == netstack.StateEstablished {
			srvRec = &imgB.Sockets[i]
		}
	}
	if srvRec == nil {
		t.Fatal("no established record on server pod")
	}
	if string(srvRec.RecvData) != "hello world" {
		t.Fatalf("recv data = %q", srvRec.RecvData)
	}
	if string(srvRec.OOBData) != "!" {
		t.Fatalf("oob = %q", srvRec.OOBData)
	}
	if srvRec.PCB.RcvNxt != 12 { // 11 normal + 1 oob
		t.Fatalf("rcvnxt = %d", srvRec.PCB.RcvNxt)
	}
	// Checkpoint is side-effect free.
	if srv.RecvQueueLen()+srv.BacklogLen() != 11 || srv.OOBLen() != 1 {
		t.Fatal("checkpoint mutated socket queues")
	}
	if imgB.QueueBytes() == 0 || imgB.Bytes() < imgB.QueueBytes() {
		t.Fatalf("size accounting wrong: %d / %d", imgB.Bytes(), imgB.QueueBytes())
	}
}

func TestMetaStates(t *testing.T) {
	w, nw := mkWorld(3)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)
	cli.Shutdown(false, true) // half-duplex
	drive(t, w, func() bool { return srv.PeerClosed() })

	// A connecting socket: SYN to a blocked-off peer.
	c2 := a.Socket(netstack.TCP)
	c2.Connect(netstack.Addr{IP: 99, Port: 9}) // no such host: stays connecting
	images := freezeCheckpoint(t, a, b)
	_ = images

	a.Filter().UnblockAll()
	b.Filter().UnblockAll()
	a.Filter().BlockAll()
	b.Filter().BlockAll()
	_, metaA, err := CheckpointStack(a)
	if err != nil {
		t.Fatal(err)
	}
	states := map[ConnState]int{}
	for _, cm := range metaA.Conns {
		states[cm.State]++
	}
	if states[ConnHalfDuplex] != 1 {
		t.Fatalf("half-duplex count = %d (%v)", states[ConnHalfDuplex], metaA.Conns)
	}
	if states[ConnConnecting] != 1 {
		t.Fatalf("connecting count = %d", states[ConnConnecting])
	}
}

func TestImageEncodeDecodeRoundTrip(t *testing.T) {
	img := &NetImage{
		PodIP: 7,
		Sockets: []SocketRecord{
			{
				Slot: 0, CreateSeq: 3, Proto: netstack.TCP, State: netstack.StateEstablished,
				Local: netstack.Addr{IP: 7, Port: 80}, Remote: netstack.Addr{IP: 9, Port: 1234},
				Opts:     []netstack.OptValue{{Opt: netstack.SO_RCVBUF, Val: 4096}, {Opt: netstack.SO_KEEPALIVE, Val: 1}},
				RecvData: []byte("recv"), OOBData: []byte("o"),
				SendChunks: []netstack.Chunk{{Data: []byte("abc")}, {Data: []byte("d"), OOB: true}, {FIN: true}},
				PCB:        netstack.PCB{SndNxt: 10, SndUna: 6, RcvNxt: 22},
				ShutWrite:  true, PeerClosed: false, PendingAcceptOf: -1,
			},
			{
				Slot: 1, Proto: netstack.UDP, Local: netstack.Addr{IP: 7, Port: 53},
				Datagrams: []netstack.Datagram{{From: netstack.Addr{IP: 9, Port: 5353}, Data: []byte("q")}},
				Peeked:    true, PendingAcceptOf: -1,
			},
			{
				Slot: 2, Proto: netstack.RAW, RawProto: 89, PendingAcceptOf: -1,
				Local: netstack.Addr{IP: 7},
			},
			{
				Slot: 3, Proto: netstack.TCP, State: netstack.StateListening,
				Local: netstack.Addr{IP: 7, Port: 80}, ListenBacklog: 16, PendingAcceptOf: -1,
			},
		},
	}
	e := imgfmt.NewEncoder()
	img.Encode(e)
	d, err := imgfmt.NewDecoder(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImage(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.PodIP != img.PodIP || len(got.Sockets) != len(img.Sockets) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	r0 := got.Sockets[0]
	if r0.PCB != img.Sockets[0].PCB || !bytes.Equal(r0.RecvData, []byte("recv")) ||
		len(r0.SendChunks) != 3 || !r0.SendChunks[1].OOB || !r0.SendChunks[2].FIN ||
		!r0.ShutWrite || r0.Remote.Port != 1234 || len(r0.Opts) != 2 {
		t.Fatalf("record 0 mismatch: %+v", r0)
	}
	if !got.Sockets[1].Peeked || len(got.Sockets[1].Datagrams) != 1 {
		t.Fatalf("record 1 mismatch: %+v", got.Sockets[1])
	}
	if got.Sockets[2].RawProto != 89 {
		t.Fatalf("record 2 mismatch: %+v", got.Sockets[2])
	}
	if got.Sockets[3].ListenBacklog != 16 {
		t.Fatalf("record 3 mismatch: %+v", got.Sockets[3])
	}
}

func TestFullRestoreCycle(t *testing.T) {
	w, nw := mkWorld(5)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)

	// Client writes 30 KB; server consumes only the first 10 KB before
	// the checkpoint.
	payload := make([]byte, 30<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	sent := 0
	for sent < len(payload) {
		n, err := cli.Send(payload[sent:], false)
		if err != nil && !errors.Is(err, netstack.ErrWouldBlock) {
			t.Fatal(err)
		}
		sent += n
		w.RunUntil(w.Now() + sim.Time(sim.Millisecond))
	}
	var consumed []byte
	drive(t, w, func() bool { return srv.RecvQueueLen() >= 10<<10 })
	got, _ := srv.Recv(10<<10, false, false)
	consumed = append(consumed, got...)

	images := freezeCheckpoint(t, a, b)
	socks := restoreAll(t, w, nw, images, a, b)

	// Find the restored server-side socket (established, on pod 2).
	var newSrv *netstack.Socket
	for _, s := range socks[2] {
		if s != nil && s.State() == netstack.StateEstablished {
			newSrv = s
		}
	}
	if newSrv == nil {
		t.Fatal("no restored established socket on pod 2")
	}
	// Read everything the application is still owed.
	drive(t, w, func() bool {
		for {
			d, err := newSrv.Recv(1<<20, false, false)
			if err != nil || len(d) == 0 {
				break
			}
			consumed = append(consumed, d...)
		}
		return len(consumed) >= len(payload)
	})
	if !bytes.Equal(consumed, payload) {
		t.Fatalf("stream mismatch after restore: got %d bytes, want %d (first diff at %d)",
			len(consumed), len(payload), firstDiff(consumed, payload))
	}
	// No duplicate tail.
	w.RunUntil(w.Now() + sim.Time(500*sim.Millisecond))
	if d, err := newSrv.Recv(1<<20, false, false); err == nil && len(d) > 0 {
		t.Fatalf("received %d duplicate bytes after full stream", len(d))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestOverlapDiscardNoDuplicates(t *testing.T) {
	w, nw := mkWorld(6)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)

	// Engineer recv_1 > acked_2: data reaches the server but the acks
	// never make it back (block the server's egress only).
	msg := bytes.Repeat([]byte("overlap!"), 512) // 4 KB
	// Block only the client's ingress so its data still flows to the
	// server but the server's acks are dropped at the client.
	a.Filter().BlockIn(2)
	cli.Send(msg, false)
	drive(t, w, func() bool { return srv.RecvQueueLen()+srv.BacklogLen() == len(msg) })
	pcbC, pcbS := cli.PCBSnapshot(), srv.PCBSnapshot()
	if pcbS.RcvNxt <= pcbC.SndUna {
		t.Fatalf("failed to create overlap: rcvnxt=%d snduná=%d", pcbS.RcvNxt, pcbC.SndUna)
	}
	if pcbC.SndUna != 0 {
		t.Fatalf("acks leaked: snduna=%d", pcbC.SndUna)
	}

	images := freezeCheckpoint(t, a, b)
	socks := restoreAll(t, w, nw, images, a, b)

	var newSrv *netstack.Socket
	for _, s := range socks[2] {
		if s != nil && s.State() == netstack.StateEstablished {
			newSrv = s
		}
	}
	var consumed []byte
	drive(t, w, func() bool {
		for {
			d, err := newSrv.Recv(1<<20, false, false)
			if err != nil || len(d) == 0 {
				break
			}
			consumed = append(consumed, d...)
		}
		return len(consumed) >= len(msg)
	})
	if !bytes.Equal(consumed, msg) {
		t.Fatalf("duplicate or lost data: got %d want %d", len(consumed), len(msg))
	}
	w.RunUntil(w.Now() + sim.Time(500*sim.Millisecond))
	if d, err := newSrv.Recv(1<<20, false, false); err == nil && len(d) > 0 {
		t.Fatalf("got %d duplicated bytes (overlap not discarded)", len(d))
	}
}

func TestAltQueueInterposition(t *testing.T) {
	w, nw := mkWorld(7)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)

	InstallAltQueue(srv, []byte("OLD-"))
	if srv.Poll()&netstack.PollIn == 0 {
		t.Fatal("interposed poll hides alternate data")
	}
	// New data arriving is served only after the alternate queue drains.
	cli.Send([]byte("NEW"), false)
	drive(t, w, func() bool { return srv.RecvQueueLen() == 3 })
	d1, err := srv.Recv(100, false, false)
	if err != nil || string(d1) != "OLD-" {
		t.Fatalf("first read = %q, %v", d1, err)
	}
	// Dispatch vector must be back to the default now.
	if _, isAlt := srv.CurrentOps().(altOps); isAlt {
		t.Fatal("alt ops still installed after drain")
	}
	d2, _ := srv.Recv(100, false, false)
	if string(d2) != "NEW" {
		t.Fatalf("second read = %q", d2)
	}
}

func TestAltQueuePeekKeepsInterposition(t *testing.T) {
	_, nw := mkWorld(8)
	a := mkStack(t, nw, 1)
	s := a.Socket(netstack.TCP)
	InstallAltQueue(s, []byte("xyz"))
	d, err := s.Recv(3, true, false)
	if err != nil || string(d) != "xyz" {
		t.Fatalf("peek = %q, %v", d, err)
	}
	if _, isAlt := s.CurrentOps().(altOps); !isAlt {
		t.Fatal("peek uninstalled interposition")
	}
	if s.AltQueueLen() != 3 {
		t.Fatal("peek consumed alt data")
	}
}

func TestSecondCheckpointSavesAltQueue(t *testing.T) {
	w, nw := mkWorld(9)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)
	_ = cli
	InstallAltQueue(srv, []byte("restored-but-unread-"))
	cli.Send([]byte("tail"), false)
	drive(t, w, func() bool { return srv.RecvQueueLen() == 4 })
	images := freezeCheckpoint(t, a, b)
	var rec *SocketRecord
	for i := range images[2].Sockets {
		if images[2].Sockets[i].State == netstack.StateEstablished {
			rec = &images[2].Sockets[i]
		}
	}
	if string(rec.RecvData) != "restored-but-unread-tail" {
		t.Fatalf("second checkpoint recv data = %q", rec.RecvData)
	}
}

func TestSharedSourcePortSchedule(t *testing.T) {
	w, nw := mkWorld(10)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	// Two clients from pod 1 to the same listener on pod 2: the two
	// server-side children share source port 80.
	c1, s1, l := establish(t, w, a, b, 80)
	c2 := a.Socket(netstack.TCP)
	c2.Connect(netstack.Addr{IP: 2, Port: 80})
	drive(t, w, func() bool { return c2.State() == netstack.StateEstablished && l.AcceptPending() > 0 })
	s2, _ := l.Accept()

	c1.Send([]byte("one"), false)
	c2.Send([]byte("two"), false)
	drive(t, w, func() bool { return s1.RecvQueueLen() == 3 && s2.RecvQueueLen() == 3 })

	images := freezeCheckpoint(t, a, b)
	plans, err := PlanRestart(images)
	if err != nil {
		t.Fatal(err)
	}
	// Pod 2 must accept both (shared source port), pod 1 connects.
	for _, e := range plans[2].Entries {
		if e.Type != EntryAccept {
			t.Fatalf("pod2 entry %v not accept-type", e)
		}
	}
	for _, e := range plans[1].Entries {
		if e.Type != EntryConnect {
			t.Fatalf("pod1 entry %v not connect-type", e)
		}
	}
	socks := restoreAll(t, w, nw, images, a, b)
	// Both children restored with their queues.
	var got []string
	for _, s := range socks[2] {
		if s != nil && s.State() == netstack.StateEstablished {
			d, err := s.Recv(100, false, false)
			if err == nil {
				got = append(got, string(d))
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("restored children = %v", got)
	}
	if !(got[0] == "one" && got[1] == "two" || got[0] == "two" && got[1] == "one") {
		t.Fatalf("queues mixed up: %v", got)
	}
}

func TestRingTopologyNoDeadlock(t *testing.T) {
	w, nw := mkWorld(11)
	const n = 4
	stacks := make([]*netstack.Stack, n)
	for i := range stacks {
		stacks[i] = mkStack(t, nw, netstack.IP(i+1))
	}
	// Ring: each node listens and connects to the next.
	type conn struct{ c, s *netstack.Socket }
	conns := make([]conn, n)
	for i := range stacks {
		l := stacks[i].Socket(netstack.TCP)
		l.Bind(80)
		l.Listen(4)
	}
	for i := range stacks {
		next := (i + 1) % n
		c := stacks[i].Socket(netstack.TCP)
		c.Connect(netstack.Addr{IP: netstack.IP(next + 1), Port: 80})
		conns[i].c = c
	}
	drive(t, w, func() bool {
		for i := range conns {
			if conns[i].c.State() != netstack.StateEstablished {
				return false
			}
		}
		return true
	})
	for i := range stacks {
		for _, s := range stacks[i].Sockets() {
			if s.State() == netstack.StateListening {
				for s.AcceptPending() > 0 {
					child, _ := s.Accept()
					conns[i].s = child
				}
			}
		}
	}
	// Send a token around the ring so every connection has queue data.
	for i := range conns {
		conns[i].c.Send([]byte{byte(i)}, false)
	}
	drive(t, w, func() bool {
		for i := range conns {
			if conns[i].s == nil || conns[i].s.RecvQueueLen() == 0 {
				return false
			}
		}
		return true
	})
	images := freezeCheckpoint(t, stacks...)
	socks := restoreAll(t, w, nw, images, stacks...)
	// Every pod must end with 1 restored listener + 2 established ends.
	for ip := netstack.IP(1); ip <= n; ip++ {
		est := 0
		for _, s := range socks[ip] {
			if s != nil && s.State() == netstack.StateEstablished {
				est++
			}
		}
		if est != 2 {
			t.Fatalf("pod %v restored %d established sockets, want 2", ip, est)
		}
	}
}

func TestPendingAcceptRestoredToQueue(t *testing.T) {
	w, nw := mkWorld(12)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	l := b.Socket(netstack.TCP)
	l.Bind(80)
	l.Listen(8)
	c := a.Socket(netstack.TCP)
	c.Connect(netstack.Addr{IP: 2, Port: 80})
	drive(t, w, func() bool { return c.State() == netstack.StateEstablished && l.AcceptPending() == 1 })
	c.Send([]byte("early"), false)
	drive(t, w, func() bool { return l.AcceptQueue()[0].RecvQueueLen() == 5 })

	images := freezeCheckpoint(t, a, b)
	socks := restoreAll(t, w, nw, images, a, b)

	var newL *netstack.Socket
	for _, s := range socks[2] {
		if s != nil && s.State() == netstack.StateListening {
			newL = s
		}
	}
	if newL == nil {
		t.Fatal("listener not restored")
	}
	if newL.AcceptPending() != 1 {
		t.Fatalf("accept queue = %d, want 1", newL.AcceptPending())
	}
	child, err := newL.Accept()
	if err != nil {
		t.Fatal(err)
	}
	d, err := child.Recv(100, false, false)
	if err != nil || string(d) != "early" {
		t.Fatalf("pending child data = %q, %v", d, err)
	}
}

func TestHalfDuplexRestored(t *testing.T) {
	w, nw := mkWorld(13)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)
	cli.Send([]byte("final"), false)
	cli.Shutdown(false, true)
	drive(t, w, func() bool { return srv.PeerClosed() })

	images := freezeCheckpoint(t, a, b)
	socks := restoreAll(t, w, nw, images, a, b)

	var newSrv *netstack.Socket
	for _, s := range socks[2] {
		if s != nil && s.State() == netstack.StateEstablished {
			newSrv = s
		}
	}
	var data []byte
	drive(t, w, func() bool {
		d, err := newSrv.Recv(100, false, false)
		if err == nil {
			data = append(data, d...)
		}
		return newSrv.PeerClosed() && len(data) == 5
	})
	if string(data) != "final" {
		t.Fatalf("data = %q", data)
	}
	if _, err := newSrv.Recv(100, false, false); !errors.Is(err, netstack.ErrEOF) {
		t.Fatalf("want EOF after drained half-closed stream, got %v", err)
	}
	// The client side must still be able to receive (half duplex).
	var newCli *netstack.Socket
	for _, s := range socks[1] {
		if s != nil && s.State() == netstack.StateEstablished {
			newCli = s
		}
	}
	newSrv.Send([]byte("back"), false)
	drive(t, w, func() bool { return newCli.RecvQueueLen() == 4 })
}

func TestUDPRestore(t *testing.T) {
	w, nw := mkWorld(14)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	rx := b.Socket(netstack.UDP)
	rx.Bind(53)
	tx := a.Socket(netstack.UDP)
	tx.Bind(5000)
	tx.SendTo([]byte("q1"), netstack.Addr{IP: 2, Port: 53})
	tx.SendTo([]byte("q2"), netstack.Addr{IP: 2, Port: 53})
	drive(t, w, func() bool { return len(rx.DatagramQueue()) == 2 })
	rx.RecvFrom(true) // peek obliges preservation

	images := freezeCheckpoint(t, a, b)
	var rec *SocketRecord
	for i := range images[2].Sockets {
		if images[2].Sockets[i].Proto == netstack.UDP {
			rec = &images[2].Sockets[i]
		}
	}
	if !rec.Peeked || len(rec.Datagrams) != 2 {
		t.Fatalf("udp record: peeked=%v n=%d", rec.Peeked, len(rec.Datagrams))
	}
	socks := restoreAll(t, w, nw, images, a, b)
	var newRx *netstack.Socket
	for _, s := range socks[2] {
		if s != nil && s.Proto() == netstack.UDP {
			newRx = s
		}
	}
	d1, _ := newRx.RecvFrom(false)
	d2, _ := newRx.RecvFrom(false)
	if string(d1.Data) != "q1" || string(d2.Data) != "q2" {
		t.Fatalf("restored datagrams: %q %q", d1.Data, d2.Data)
	}
	if d1.From.Port != 5000 {
		t.Fatalf("source address lost: %v", d1.From)
	}
	// New traffic still flows to the restored socket.
	var newTx *netstack.Socket
	for _, s := range socks[1] {
		if s != nil && s.Proto() == netstack.UDP {
			newTx = s
		}
	}
	newTx.SendTo([]byte("fresh"), netstack.Addr{IP: 2, Port: 53})
	drive(t, w, func() bool { return len(newRx.DatagramQueue()) == 1 })
}

func TestRawRestore(t *testing.T) {
	w, nw := mkWorld(15)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	rx := b.Socket(netstack.RAW)
	rx.BindRaw(89)
	tx := a.Socket(netstack.RAW)
	tx.BindRaw(89)
	tx.SendRaw(2, []byte("pkt"))
	drive(t, w, func() bool { return len(rx.DatagramQueue()) == 1 })

	images := freezeCheckpoint(t, a, b)
	socks := restoreAll(t, w, nw, images, a, b)
	var newRx *netstack.Socket
	for _, s := range socks[2] {
		if s != nil && s.Proto() == netstack.RAW {
			newRx = s
		}
	}
	if newRx.RawProto() != 89 {
		t.Fatalf("raw proto = %d", newRx.RawProto())
	}
	d, err := newRx.RecvFrom(false)
	if err != nil || string(d.Data) != "pkt" {
		t.Fatalf("restored raw dgram = %v, %v", d, err)
	}
}

func TestRemapImage(t *testing.T) {
	img := &NetImage{
		PodIP: 1,
		Sockets: []SocketRecord{{
			Proto: netstack.TCP, State: netstack.StateEstablished,
			Local:           netstack.Addr{IP: 1, Port: 80},
			Remote:          netstack.Addr{IP: 2, Port: 999},
			Datagrams:       []netstack.Datagram{{From: netstack.Addr{IP: 2, Port: 1}}},
			PendingAcceptOf: -1,
		}},
	}
	RemapImage(img, map[netstack.IP]netstack.IP{1: 10, 2: 20})
	if img.PodIP != 10 {
		t.Fatalf("pod ip = %v", img.PodIP)
	}
	r := img.Sockets[0]
	if r.Local.IP != 10 || r.Remote.IP != 20 || r.Datagrams[0].From.IP != 20 {
		t.Fatalf("remap incomplete: %+v", r)
	}
	if r.Local.Port != 80 || r.Remote.Port != 999 {
		t.Fatal("ports must be preserved")
	}
}

func TestRestartOnNewAddresses(t *testing.T) {
	w, nw := mkWorld(16)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)
	cli.Send([]byte("migrate me"), false)
	drive(t, w, func() bool { return srv.RecvQueueLen() == 10 })

	images := freezeCheckpoint(t, a, b)
	nw.Detach(a)
	nw.Detach(b)
	// Migrate to a different subnet: 1->101, 2->102.
	remap := map[netstack.IP]netstack.IP{1: 101, 2: 102}
	remapped := make(map[netstack.IP]*NetImage)
	for _, img := range images {
		RemapImage(img, remap)
		remapped[img.PodIP] = img
	}
	socks := restoreAll(t, w, nw, remapped)
	var newSrv *netstack.Socket
	for _, s := range socks[102] {
		if s != nil && s.State() == netstack.StateEstablished {
			newSrv = s
		}
	}
	if newSrv.LocalAddr().IP != 102 || newSrv.RemoteAddr().IP != 101 {
		t.Fatalf("addresses not remapped: %v <- %v", newSrv.LocalAddr(), newSrv.RemoteAddr())
	}
	d, err := newSrv.Recv(100, false, false)
	if err != nil || string(d) != "migrate me" {
		t.Fatalf("data after remapped restore = %q, %v", d, err)
	}
}

func TestRedirectOptimization(t *testing.T) {
	w, nw := mkWorld(17)
	a := mkStack(t, nw, 1)
	b := mkStack(t, nw, 2)
	cli, srv, _ := establish(t, w, a, b, 80)
	// Block everything so the send queue retains all data unacked.
	a.Filter().BlockAll()
	b.Filter().BlockAll()
	msg := bytes.Repeat([]byte("redirect"), 1024)
	cli.Send(msg, false)
	images := freezeCheckpoint(t, a, b)

	moved := ApplyRedirect(images)
	if moved != int64(len(msg)) {
		t.Fatalf("moved = %d, want %d", moved, len(msg))
	}
	// Sender record emptied and flagged; receiver record carries data.
	for i := range images[1].Sockets {
		r := &images[1].Sockets[i]
		if r.State == netstack.StateEstablished {
			if !r.Redirected || len(r.SendChunks) != 0 {
				t.Fatalf("sender record not redirected: %+v", r)
			}
		}
	}
	wireBefore := nw.BytesSent
	socks := restoreAll(t, w, nw, images, a, b)
	var newSrv *netstack.Socket
	for _, s := range socks[2] {
		if s != nil && s.State() == netstack.StateEstablished {
			newSrv = s
		}
	}
	d, err := newSrv.Recv(1<<20, false, false)
	if err != nil || !bytes.Equal(d, msg) {
		t.Fatalf("redirected data mismatch: %d bytes, %v", len(d), err)
	}
	// The data never crossed the wire during restore (only handshakes).
	wireDelta := nw.BytesSent - wireBefore
	if wireDelta > int64(len(msg))/2 {
		t.Fatalf("redirect still transferred %d wire bytes", wireDelta)
	}
	_ = srv
}

func TestDiscardOverlapUnit(t *testing.T) {
	chunks := []netstack.Chunk{
		{Data: []byte("aaaa")},
		{Data: []byte("bb"), OOB: true},
		{FIN: true},
	}
	out := DiscardOverlap(chunks, 0)
	if len(out) != 3 {
		t.Fatal("zero overlap must not trim")
	}
	out = DiscardOverlap(append([]netstack.Chunk(nil), chunks...), 4)
	if len(out) != 2 || !out[0].OOB {
		t.Fatalf("out = %+v", out)
	}
	fresh := []netstack.Chunk{{Data: []byte("aaaa")}, {Data: []byte("bb"), OOB: true}, {FIN: true}}
	out = DiscardOverlap(fresh, 5)
	if len(out) != 2 || string(out[0].Data) != "b" {
		t.Fatalf("mid-chunk trim failed: %+v", out)
	}
	fresh2 := []netstack.Chunk{{Data: []byte("aaaa")}, {FIN: true}}
	out = DiscardOverlap(fresh2, 5)
	if len(out) != 0 {
		t.Fatalf("full trim failed: %+v", out)
	}
}

func TestOverlapClamp(t *testing.T) {
	pcb := netstack.PCB{SndUna: 100, SndNxt: 150}
	if Overlap(pcb, 90) != 0 {
		t.Fatal("peer behind acked should be zero")
	}
	if Overlap(pcb, 120) != 20 {
		t.Fatal("plain overlap")
	}
	if Overlap(pcb, 1000) != 50 {
		t.Fatal("overlap must clamp to the sent window")
	}
}
