// Package coord implements the hierarchical coordination control plane
// for coordinated checkpoint-restart operations.
//
// The paper's manager is a single coordinator doing a flat O(N)
// broadcast/collect per protocol phase — fine at the paper's 32 nodes,
// a bottleneck at 1000+ pods. This package generalizes the star into a
// deterministic k-ary coordination tree: the manager is a virtual root,
// the first fanout members are its children, and member i's children
// are members (i+1)*fanout .. (i+1)*fanout+fanout-1. Sub-coordinators
// (interior members) relay fan-out commands to their children and
// aggregate fan-in reports from their whole subtree into one batched
// message per link per phase, so the root handles O(N/fanout + fanout)
// wire messages per phase instead of O(N).
//
// The flat star survives as the degenerate fanout=N tree: with no
// topology configured, a Plane schedules exactly the per-member control
// messages the legacy manager did — same count, same order, same
// latency math, same perturbation-hook consults — so every existing
// byte-determinism and chaos-replay contract holds unchanged.
//
// Control cost is modeled per link: each wire message charges the
// world's CtrlLatency, and a sender transmitting k messages back to
// back charges an additional CtrlPerMsg occupancy per queued message.
// CtrlPerMsg defaults to zero (the legacy model); scaling experiments
// set it non-zero to expose the flat root's serialization bottleneck
// on the sim clock.
package coord

import (
	"sort"

	"zapc/internal/sim"
	"zapc/internal/trace"
)

// DefaultFanout is the tree arity used when a topology is requested
// without an explicit fan-out.
const DefaultFanout = 16

// Config selects the coordination topology for coordinated operations.
type Config struct {
	// Fanout is the number of children per coordinator. 0 selects
	// DefaultFanout; negative (or a value >= the member count) selects
	// the flat star, i.e. the degenerate fanout=N tree.
	Fanout int
}

// Topology is a deterministic k-ary coordination tree over members
// 0..N-1 with the manager as virtual root (index -1). Member i's
// parent is i/fanout - 1 (the root for i < fanout); its children are
// (i+1)*fanout .. (i+1)*fanout+fanout-1, clipped to N.
type Topology struct {
	n      int
	fanout int
}

// NewTopology derives the tree over n members from cfg. A nil cfg is
// the flat star (the legacy control plane).
func NewTopology(n int, cfg *Config) Topology {
	if n < 0 {
		n = 0
	}
	f := n // flat star
	if cfg != nil {
		switch {
		case cfg.Fanout > 0:
			f = cfg.Fanout
		case cfg.Fanout == 0:
			f = DefaultFanout
		}
	}
	if f > n {
		f = n
	}
	if f < 1 {
		f = 1
	}
	return Topology{n: n, fanout: f}
}

// N returns the member count.
func (t Topology) N() int { return t.n }

// Fanout returns the effective tree arity (N when flat).
func (t Topology) Fanout() int { return t.fanout }

// IsFlat reports whether the tree is the degenerate star: every member
// is a direct child of the root.
func (t Topology) IsFlat() bool { return t.n <= 1 || t.fanout >= t.n }

// Parent returns member i's parent, or -1 when its parent is the root.
func (t Topology) Parent(i int) int {
	if i < t.fanout {
		return -1
	}
	return i/t.fanout - 1
}

// Children returns member i's children in ascending order.
func (t Topology) Children(i int) []int {
	first := (i + 1) * t.fanout
	if first >= t.n {
		return nil
	}
	last := first + t.fanout
	if last > t.n {
		last = t.n
	}
	out := make([]int, 0, last-first)
	for c := first; c < last; c++ {
		out = append(out, c)
	}
	return out
}

// RootChildren returns the root's direct children: members 0..min(F,N).
func (t Topology) RootChildren() []int {
	k := t.fanout
	if k > t.n {
		k = t.n
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// Level returns member i's depth below the root (root children are
// level 1).
func (t Topology) Level(i int) int {
	lvl := 1
	for i >= t.fanout {
		i = i/t.fanout - 1
		lvl++
	}
	return lvl
}

// Depth returns the deepest member level — the tree's barrier depth.
// Members are laid out breadth-first, so the last member is deepest.
func (t Topology) Depth() int {
	if t.n == 0 {
		return 0
	}
	return t.Level(t.n - 1)
}

// RootAncestor returns the root child whose subtree contains member i.
func (t Topology) RootAncestor(i int) int {
	for {
		p := t.Parent(i)
		if p < 0 {
			return i
		}
		i = p
	}
}

// subtreeSizes returns, for every member, the size of the subtree it
// roots (itself included) — the aggregation count a sub-coordinator
// waits for before sending its batched report up.
func (t Topology) subtreeSizes() []int {
	sizes := make([]int, t.n)
	for i := range sizes {
		sizes[i] = 1
	}
	for i := t.n - 1; i >= t.fanout; i-- {
		sizes[i/t.fanout-1] += sizes[i]
	}
	return sizes
}

// Modeled control-message wire sizes: a fixed header plus one payload
// entry per member the message covers (the command and per-pod
// arguments going down, the aggregated per-pod report coming up). The
// sim charges latency per message, not per byte — these feed only the
// ctrl_bytes_total accounting.
const (
	msgHeaderBytes = 64
	msgMemberBytes = 32
)

// Stats is the per-link control-plane accounting of one coordinated
// operation.
type Stats struct {
	// Fanout and Depth describe the effective topology.
	Fanout int
	Depth  int
	// Msgs and Bytes count every wire message on every tree link.
	Msgs  int64
	Bytes int64
	// RootMsgs counts only messages the root sent or received — the
	// coordinator's serialization bottleneck. O(phases x N) flat,
	// O(phases x (N/fanout + fanout)) in a tree.
	RootMsgs int64
	// Dropped counts messages the perturbation hook discarded.
	Dropped int64
}

// Hook is consulted once per wire message; it may drop the message or
// stretch its latency (the fault injector's control-plane surface).
type Hook func() (drop bool, delay sim.Duration)

// Plane schedules one coordinated operation's control traffic over a
// topology. It reads the world's cost model at each send, so mid-run
// cost changes (as the sync ablation does) take effect immediately.
type Plane struct {
	w     *sim.World
	topo  Topology
	hook  Hook
	reg   *trace.Registry
	sizes []int
	st    Stats
	wins  []*phaseWindows
}

// NewPlane builds the control plane for one operation. hook must be
// non-nil (return false, 0 for no perturbation); reg may be nil.
func NewPlane(w *sim.World, topo Topology, hook Hook, reg *trace.Registry) *Plane {
	return &Plane{w: w, topo: topo, hook: hook, reg: reg, sizes: topo.subtreeSizes()}
}

// Topology returns the plane's tree.
func (p *Plane) Topology() Topology { return p.topo }

// Flat reports whether the plane degenerates to the legacy star.
func (p *Plane) Flat() bool { return p.topo.IsFlat() }

// Stats returns the accounting so far, stamped with the topology shape.
func (p *Plane) Stats() Stats {
	s := p.st
	s.Fanout = p.topo.Fanout()
	s.Depth = p.topo.Depth()
	return s
}

func (p *Plane) account(members int, atRoot bool) {
	b := int64(msgHeaderBytes + msgMemberBytes*members)
	p.st.Msgs++
	p.st.Bytes += b
	if atRoot {
		p.st.RootMsgs++
	}
	if p.reg != nil {
		p.reg.Counter("ctrl_msgs_total").Add(1)
		p.reg.Counter("ctrl_bytes_total").Add(b)
		if atRoot {
			p.reg.Counter("ctrl_root_msgs_total").Add(1)
		}
	}
}

// Broadcast fans deliver out to every member. In the flat star this is
// exactly the legacy loop: one control message per member in member
// order, each charging CtrlLatency (plus the sender-occupancy stagger
// when CtrlPerMsg is non-zero) and consulting the hook once. In a tree
// the root sends one batched message per child; a child relays to its
// own children the moment the batch arrives, then delivers locally.
//
// extra (optional) adds a per-member delay on that member's final hop
// only — e.g. a restart placement's staged image transfer.
func (p *Plane) Broadcast(phase string, extra func(int) sim.Duration, deliver func(int)) {
	ex := func(i int) sim.Duration {
		if extra == nil {
			return 0
		}
		return extra(i)
	}
	if p.topo.IsFlat() {
		for i := 0; i < p.topo.n; i++ {
			i := i
			p.account(1, true)
			d := p.w.Costs.CtrlLatency + ex(i) + sim.Duration(i)*p.w.Costs.CtrlPerMsg
			drop, delay := p.hook()
			if drop {
				p.st.Dropped++
				continue
			}
			d += delay
			p.w.After(d, func() { deliver(i) })
		}
		return
	}
	win := p.newWindows(phase)
	for j, c := range p.topo.RootChildren() {
		p.relay(win, c, j, 1, ex, deliver)
	}
}

// relay sends the batch covering member c's subtree over one link (from
// c's parent), then on arrival forwards to c's children and delivers to
// c itself. sib is c's position among its siblings: a sender pushing
// its per-child messages back to back occupies its link for CtrlPerMsg
// per queued message, which is what bounds a coordinator's useful
// fan-out.
func (p *Plane) relay(win *phaseWindows, c, sib, level int, ex func(int) sim.Duration, deliver func(int)) {
	p.account(p.sizes[c], level == 1)
	d := p.w.Costs.CtrlLatency + sim.Duration(sib)*p.w.Costs.CtrlPerMsg
	drop, delay := p.hook()
	if drop {
		// The whole subtree misses the command; the operation watchdog
		// converts the silence into a named abort.
		p.st.Dropped++
		return
	}
	d += delay
	p.w.After(d, func() {
		for j, k := range p.topo.Children(c) {
			p.relay(win, k, j, level+1, ex, deliver)
		}
		if e := ex(c); e > 0 {
			p.w.After(e, func() {
				win.mark(level, p.w.Now())
				deliver(c)
			})
			return
		}
		win.mark(level, p.w.Now())
		deliver(c)
	})
}

// Gather returns a fan-in collector for one phase. onArrive(i) runs at
// the instant member i's report — or, in a tree, the batched report
// covering it — reaches the root.
func (p *Plane) Gather(phase string, onArrive func(int)) *Gather {
	g := &Gather{p: p, phase: phase, onArrive: onArrive}
	if !p.topo.IsFlat() {
		g.got = make([]int, p.topo.n)
		g.pend = make([][]int, p.topo.n)
	}
	return g
}

// Gather aggregates member reports up the tree: each sub-coordinator
// holds its children's batches until its whole subtree has reported,
// then sends one batched message per link toward the root.
type Gather struct {
	p        *Plane
	phase    string
	onArrive func(int)
	got      []int
	pend     [][]int
}

// Report routes member i's report toward the root. extra is the
// member-local cost of producing the report (e.g. serializing its
// network meta-data) and is charged before the report leaves the
// member.
func (g *Gather) Report(i int, extra sim.Duration) {
	p := g.p
	if p.topo.IsFlat() {
		p.account(1, true)
		d := p.w.Costs.CtrlLatency + extra
		drop, delay := p.hook()
		if drop {
			p.st.Dropped++
			return
		}
		d += delay
		p.w.After(d, func() { g.onArrive(i) })
		return
	}
	if extra > 0 {
		p.w.After(extra, func() { g.credit(i, []int{i}) })
		return
	}
	g.credit(i, []int{i})
}

// credit books the given members' reports at sub-coordinator n; once
// n's subtree is complete the batch moves one link up.
func (g *Gather) credit(n int, members []int) {
	p := g.p
	g.got[n] += len(members)
	g.pend[n] = append(g.pend[n], members...)
	if g.got[n] < p.sizes[n] {
		return
	}
	batch := g.pend[n]
	g.pend[n] = nil
	sort.Ints(batch)
	parent := p.topo.Parent(n)
	p.account(len(batch), parent < 0)
	d := p.w.Costs.CtrlLatency
	drop, delay := p.hook()
	if drop {
		p.st.Dropped++
		return
	}
	d += delay
	if parent < 0 {
		p.w.After(d, func() {
			for _, m := range batch {
				g.onArrive(m)
			}
		})
		return
	}
	p.w.After(d, func() { g.credit(parent, batch) })
}

// AccountAbort books the control cost of propagating an abort decision
// down every tree link. The simulation applies abort effects
// synchronously at decision time (paper §4: agents also detect
// manager failure independently), so this only feeds the counters.
func (p *Plane) AccountAbort() {
	for c := 0; c < p.topo.n; c++ {
		p.account(p.sizes[c], p.topo.Parent(c) < 0)
	}
}

// phaseWindows records, per tree level, the first and last delivery
// instants of one broadcast — the per-level barrier collapse.
type phaseWindows struct {
	phase  string
	levels []levelWindow
}

type levelWindow struct {
	first, last sim.Time
	n           int
}

func (p *Plane) newWindows(phase string) *phaseWindows {
	w := &phaseWindows{phase: phase}
	p.wins = append(p.wins, w)
	return w
}

func (w *phaseWindows) mark(level int, t sim.Time) {
	for len(w.levels) < level {
		w.levels = append(w.levels, levelWindow{})
	}
	e := &w.levels[level-1]
	if e.n == 0 || t < e.first {
		e.first = t
	}
	if t > e.last {
		e.last = t
	}
	e.n++
}

// EmitLevelSpans emits one span per tree level per broadcast phase,
// showing the barrier collapsing level by level in the trace timeline.
// A flat plane (or a nil tracer) emits nothing, keeping legacy traces
// byte-identical.
func (p *Plane) EmitLevelSpans(tr *trace.Tracer, parent *trace.Span) {
	if tr == nil || p.topo.IsFlat() {
		return
	}
	for _, w := range p.wins {
		for lvl, e := range w.levels {
			if e.n == 0 {
				continue
			}
			tr.SpanBetween(parent, "coord/"+w.phase+"/level",
				int64(e.first), int64(e.last),
				trace.I64("level", int64(lvl+1)),
				trace.I64("deliveries", int64(e.n)))
		}
	}
}
