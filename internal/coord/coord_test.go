package coord

import (
	"testing"

	"zapc/internal/sim"
	"zapc/internal/trace"
)

func noHook() (bool, sim.Duration) { return false, 0 }

// TestTopologyShape pins the deterministic tree layout: parent/child
// inverses, breadth-first levels, and subtree sizes that sum to N.
func TestTopologyShape(t *testing.T) {
	for _, tc := range []struct{ n, fanout, depth int }{
		{1, 2, 1},
		{4, 2, 2},
		{16, 2, 4},
		{64, 16, 2},
		{256, 16, 2},
		{1024, 16, 3},
		{1000, 3, 6},
	} {
		topo := NewTopology(tc.n, &Config{Fanout: tc.fanout})
		if got := topo.Depth(); got != tc.depth {
			t.Errorf("n=%d f=%d: depth %d, want %d", tc.n, tc.fanout, got, tc.depth)
		}
		seen := 0
		for i := 0; i < tc.n; i++ {
			for _, c := range topo.Children(i) {
				if topo.Parent(c) != i {
					t.Fatalf("n=%d f=%d: Parent(%d)=%d, want %d", tc.n, tc.fanout, c, topo.Parent(c), i)
				}
				if topo.Level(c) != topo.Level(i)+1 {
					t.Fatalf("n=%d f=%d: level(%d) not one below parent", tc.n, tc.fanout, c)
				}
			}
			if topo.Parent(i) == -1 {
				seen++
				if topo.RootAncestor(i) != i {
					t.Fatalf("root child %d not its own root ancestor", i)
				}
			}
		}
		if want := len(topo.RootChildren()); seen != want {
			t.Errorf("n=%d f=%d: %d root children found, RootChildren says %d", tc.n, tc.fanout, seen, want)
		}
		total := 0
		for _, c := range topo.RootChildren() {
			total += topo.subtreeSizes()[c]
		}
		if total != tc.n {
			t.Errorf("n=%d f=%d: root subtrees cover %d members, want %d", tc.n, tc.fanout, total, tc.n)
		}
	}
}

// TestTopologyDegenerate pins the flat-star fallbacks: nil config,
// negative fanout, fanout >= N, and the zero-value default.
func TestTopologyDegenerate(t *testing.T) {
	if topo := NewTopology(8, nil); !topo.IsFlat() || topo.Fanout() != 8 {
		t.Errorf("nil config not flat: %+v", topo)
	}
	if topo := NewTopology(8, &Config{Fanout: -1}); !topo.IsFlat() {
		t.Errorf("negative fanout not flat: %+v", topo)
	}
	if topo := NewTopology(8, &Config{Fanout: 64}); !topo.IsFlat() {
		t.Errorf("fanout>=N not flat: %+v", topo)
	}
	if topo := NewTopology(64, &Config{Fanout: 0}); topo.Fanout() != DefaultFanout {
		t.Errorf("zero fanout did not select DefaultFanout: %+v", topo)
	}
	if topo := NewTopology(0, &Config{Fanout: 4}); topo.Depth() != 0 || len(topo.RootChildren()) != 0 {
		t.Errorf("empty topology not empty: %+v", topo)
	}
}

// deliverAll runs one broadcast plus one gather round trip and returns
// the plane's stats — the message pattern of one protocol exchange.
func deliverAll(t *testing.T, n int, cfg *Config, reg *trace.Registry) Stats {
	t.Helper()
	w := sim.NewWorld(1)
	p := NewPlane(w, NewTopology(n, cfg), noHook, reg)
	down := make([]bool, n)
	up := make([]bool, n)
	g := p.Gather("report", func(i int) { up[i] = true })
	p.Broadcast("cmd", nil, func(i int) {
		down[i] = true
		g.Report(i, 0)
	})
	w.Run()
	for i := 0; i < n; i++ {
		if !down[i] || !up[i] {
			t.Fatalf("member %d: delivered=%v reported=%v", i, down[i], up[i])
		}
	}
	return p.Stats()
}

// TestRootMessageComplexity is the scaling claim at the message level:
// one broadcast+gather exchange costs the flat root 2N messages but a
// tree root only 2*min(fanout, N) — O(N/fanout + fanout) across a full
// checkpoint's O(1) exchanges.
func TestRootMessageComplexity(t *testing.T) {
	const n = 256
	flat := deliverAll(t, n, nil, nil)
	if flat.RootMsgs != 2*n {
		t.Errorf("flat root messages = %d, want %d", flat.RootMsgs, 2*n)
	}
	if flat.Msgs != flat.RootMsgs {
		t.Errorf("flat plane has non-root traffic: %+v", flat)
	}
	tree := deliverAll(t, n, &Config{Fanout: 16}, nil)
	if want := int64(2 * 16); tree.RootMsgs != want {
		t.Errorf("tree root messages = %d, want %d", tree.RootMsgs, want)
	}
	// Total tree traffic is one message per link per direction: N links.
	if want := int64(2 * n); tree.Msgs != want {
		t.Errorf("tree total messages = %d, want %d", tree.Msgs, want)
	}
	if tree.Depth != 2 || tree.Fanout != 16 {
		t.Errorf("tree stats shape wrong: %+v", tree)
	}
}

// TestCounters wires a registry in and checks the ctrl_* counters match
// the plane's own accounting, bytes scaling with batch size.
func TestCounters(t *testing.T) {
	reg := trace.NewRegistry()
	st := deliverAll(t, 64, &Config{Fanout: 4}, reg)
	if got := reg.Counter("ctrl_msgs_total").Value(); got != st.Msgs {
		t.Errorf("ctrl_msgs_total = %d, stats say %d", got, st.Msgs)
	}
	if got := reg.Counter("ctrl_bytes_total").Value(); got != st.Bytes {
		t.Errorf("ctrl_bytes_total = %d, stats say %d", got, st.Bytes)
	}
	if got := reg.Counter("ctrl_root_msgs_total").Value(); got != st.RootMsgs {
		t.Errorf("ctrl_root_msgs_total = %d, stats say %d", got, st.RootMsgs)
	}
	// Every message carries the fixed header; batched messages carry one
	// member entry each, so bytes exceed the header-only floor.
	if st.Bytes <= st.Msgs*msgHeaderBytes {
		t.Errorf("batched messages lost their member payloads: %+v", st)
	}
}

// TestFlatBroadcastTiming pins the legacy schedule: member i's command
// arrives at CtrlLatency + i*CtrlPerMsg (+ its extra delay), in member
// order.
func TestFlatBroadcastTiming(t *testing.T) {
	w := sim.NewWorld(1)
	w.Costs.CtrlPerMsg = 10 * sim.Microsecond
	p := NewPlane(w, NewTopology(4, nil), noHook, nil)
	var at []sim.Time
	var order []int
	p.Broadcast("cmd", func(i int) sim.Duration {
		if i == 2 {
			return sim.Millisecond
		}
		return 0
	}, func(i int) {
		at = append(at, w.Now())
		order = append(order, i)
	})
	w.Run()
	lat := w.Costs.CtrlLatency
	want := []sim.Time{
		sim.Time(lat),
		sim.Time(lat + 10*sim.Microsecond),
		sim.Time(lat + 30*sim.Microsecond),
		sim.Time(lat + sim.Millisecond + 20*sim.Microsecond),
	}
	wantOrder := []int{0, 1, 3, 2}
	for k := range want {
		if at[k] != want[k] || order[k] != wantOrder[k] {
			t.Fatalf("delivery %d: member %d at %v, want member %d at %v",
				k, order[k], at[k], wantOrder[k], want[k])
		}
	}
}

// TestTreeBarrierFasterUnderOccupancy is the latency half of the
// scaling claim: with per-message sender occupancy, the tree's last
// delivery lands well before the flat star's.
func TestTreeBarrierFasterUnderOccupancy(t *testing.T) {
	const n = 1024
	last := func(cfg *Config) sim.Time {
		w := sim.NewWorld(1)
		w.Costs.CtrlPerMsg = 25 * sim.Microsecond
		p := NewPlane(w, NewTopology(n, cfg), noHook, nil)
		var end sim.Time
		p.Broadcast("cmd", nil, func(int) { end = w.Now() })
		w.Run()
		return end
	}
	flat := last(nil)
	tree := last(&Config{Fanout: 16})
	if tree*4 >= flat {
		t.Errorf("tree barrier %v not well under flat %v", tree, flat)
	}
}

// TestDroppedSubtree: a dropped tree edge silences the whole subtree
// behind it — exactly what the operation watchdog must catch.
func TestDroppedSubtree(t *testing.T) {
	w := sim.NewWorld(1)
	calls := 0
	hook := func() (bool, sim.Duration) {
		calls++
		return calls == 1, 0 // drop the first link: root -> member 0
	}
	p := NewPlane(w, NewTopology(8, &Config{Fanout: 2}), noHook, nil)
	p.hook = hook
	got := make(map[int]bool)
	p.Broadcast("cmd", nil, func(i int) { got[i] = true })
	w.Run()
	topo := p.Topology()
	lost := map[int]bool{}
	var mark func(int)
	mark = func(i int) {
		lost[i] = true
		for _, c := range topo.Children(i) {
			mark(c)
		}
	}
	mark(0)
	for i := 0; i < 8; i++ {
		if lost[i] && got[i] {
			t.Errorf("member %d behind the dropped edge still got the command", i)
		}
		if !lost[i] && !got[i] {
			t.Errorf("member %d outside the dropped subtree missed the command", i)
		}
	}
	if st := p.Stats(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
}
