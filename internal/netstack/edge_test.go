package netstack

import (
	"errors"
	"testing"

	"zapc/internal/sim"
)

func TestOOBInline(t *testing.T) {
	w, _, st := testNet(t, 2)
	cli, srv, _ := func() (*Socket, *Socket, *Socket) {
		return connectPairHelper(t, w, st[0], st[1], 5000)
	}()
	srv.SetOpt(SO_OOBINLINE, 1)
	cli.Send([]byte("AB"), false)
	cli.Send([]byte("!"), true)
	cli.Send([]byte("CD"), false)
	run(t, w, func() bool { return srv.RecvQueueLen() == 5 })
	if srv.OOBLen() != 0 {
		t.Fatal("inline option still queued OOB separately")
	}
	d, _ := srv.Recv(16, false, false)
	if string(d) != "AB!CD" {
		t.Fatalf("inline stream = %q", d)
	}
}

// connectPairHelper mirrors connectPair for files that need it locally.
func connectPairHelper(t *testing.T, w *sim.World, a, b *Stack, port Port) (*Socket, *Socket, *Socket) {
	t.Helper()
	l := b.Socket(TCP)
	if err := l.Bind(port); err != nil {
		t.Fatal(err)
	}
	l.Listen(8)
	c := a.Socket(TCP)
	if err := c.Connect(Addr{b.IPAddr(), port}); err != nil {
		t.Fatal(err)
	}
	run(t, w, func() bool { return c.State() == StateEstablished && l.AcceptPending() > 0 })
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return c, srv, l
}

func TestShutdownReadDiscardsArrivals(t *testing.T) {
	w, _, st := testNet(t, 2)
	cli, srv, _ := connectPairHelper(t, w, st[0], st[1], 5000)
	srv.Shutdown(true, false)
	cli.Send([]byte("late"), false)
	w.RunUntil(w.Now() + sim.Time(100*sim.Millisecond))
	if srv.RecvQueueLen() != 0 {
		t.Fatal("data queued after read shutdown")
	}
	if _, err := srv.Recv(16, false, false); !errors.Is(err, ErrEOF) {
		t.Fatalf("recv after read shutdown = %v", err)
	}
	// The sender's data must still be acknowledged (discarded, not
	// deadlocked).
	run(t, w, func() bool { return cli.SendQueueSeqLen() == 0 })
}

func TestDoubleCloseIsIdempotent(t *testing.T) {
	w, _, st := testNet(t, 2)
	cli, srv, _ := connectPairHelper(t, w, st[0], st[1], 5000)
	cli.Close()
	cli.Close() // must not panic or send twice
	run(t, w, func() bool { return srv.PeerClosed() })
	srv.Close()
	srv.Close()
	run(t, w, func() bool { return cli.State() == StateClosed && srv.State() == StateClosed })
}

func TestConnectTwiceRejected(t *testing.T) {
	_, _, st := testNet(t, 2)
	c := st[0].Socket(TCP)
	if err := c.Connect(Addr{st[1].IPAddr(), 80}); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(Addr{st[1].IPAddr(), 81}); !errors.Is(err, ErrBadState) {
		t.Fatalf("second connect: %v", err)
	}
}

func TestListenOnUDPRejected(t *testing.T) {
	_, _, st := testNet(t, 1)
	u := st[0].Socket(UDP)
	if err := u.Listen(4); !errors.Is(err, ErrBadState) {
		t.Fatalf("udp listen: %v", err)
	}
}

func TestAcceptOnNonListener(t *testing.T) {
	_, _, st := testNet(t, 1)
	s := st[0].Socket(TCP)
	if _, err := s.Accept(); !errors.Is(err, ErrNotListening) {
		t.Fatalf("accept: %v", err)
	}
}

func TestSendOnUnconnected(t *testing.T) {
	_, _, st := testNet(t, 1)
	s := st[0].Socket(TCP)
	if _, err := s.Send([]byte("x"), false); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("send: %v", err)
	}
}

func TestDirectionalFilters(t *testing.T) {
	w, _, st := testNet(t, 2)
	cli, srv, _ := connectPairHelper(t, w, st[0], st[1], 5000)
	// Block only what stack 0 sends toward stack 1.
	st[0].Filter().BlockOut(st[1].IPAddr())
	cli.Send([]byte("x"), false)
	srv.Send([]byte("y"), false)
	w.RunUntil(w.Now() + sim.Time(100*sim.Millisecond))
	if srv.RecvQueueLen() != 0 {
		t.Fatal("egress rule leaked")
	}
	if cli.RecvQueueLen() != 1 {
		t.Fatal("reverse direction should still flow")
	}
	st[0].Filter().UnblockOut(st[1].IPAddr())
	run(t, w, func() bool { return srv.RecvQueueLen() == 1 })

	// Now ingress-only on stack 0.
	st[0].Filter().BlockIn(st[1].IPAddr())
	srv.Send([]byte("z"), false)
	cli.Send([]byte("w"), false)
	w.RunUntil(w.Now() + sim.Time(50*sim.Millisecond))
	if cli.RecvQueueLen() != 1 {
		t.Fatalf("ingress rule leaked: %d", cli.RecvQueueLen())
	}
	st[0].Filter().UnblockIn(st[1].IPAddr())
	run(t, w, func() bool { return cli.RecvQueueLen() == 2 })
	if got := srv.RecvQueueLen() + srv.BacklogLen(); got != 2 {
		t.Fatalf("srv got %d bytes", got)
	}
}

func TestFilterRuleCountAndBlocked(t *testing.T) {
	var f Filter
	if f.Blocked() || f.RuleCount() != 0 {
		t.Fatal("fresh filter not clean")
	}
	f.BlockAll()
	f.Block(5)
	f.BlockIn(6)
	f.BlockOut(7)
	if !f.Blocked() || f.RuleCount() != 4 {
		t.Fatalf("rules = %d", f.RuleCount())
	}
	f.UnblockAll()
	f.Unblock(5)
	f.UnblockIn(6)
	f.UnblockOut(7)
	if f.Blocked() {
		t.Fatal("filter still blocked after clearing")
	}
}

func TestAllOptsStableAndComplete(t *testing.T) {
	opts := AllOpts()
	if len(opts) < 15 {
		t.Fatalf("only %d options defined", len(opts))
	}
	seen := map[Opt]bool{}
	for _, o := range opts {
		if seen[o] {
			t.Fatalf("duplicate option %d", o)
		}
		seen[o] = true
	}
	if !seen[SO_RCVBUF] || !seen[TCP_STDURG] || !seen[SO_OOBINLINE] {
		t.Fatal("expected options missing")
	}
}

func TestDefaultBuffersPresent(t *testing.T) {
	_, _, st := testNet(t, 1)
	s := st[0].Socket(TCP)
	if s.GetOpt(SO_RCVBUF) <= 0 || s.GetOpt(SO_SNDBUF) <= 0 {
		t.Fatal("default buffer sizes missing")
	}
	if s.GetOpt(TCP_MAXSEG) != MSS {
		t.Fatalf("default MSS = %d", s.GetOpt(TCP_MAXSEG))
	}
}

func TestNetworkClaimRefusesTCPOnly(t *testing.T) {
	w, nw, st := testNet(t, 1)
	nw.Claim(IP(50))
	c := st[0].Socket(TCP)
	c.Connect(Addr{IP: 50, Port: 80})
	run(t, w, func() bool { return c.Err() != nil })
	if !errors.Is(c.Err(), ErrConnRefused) {
		t.Fatalf("err = %v", c.Err())
	}
	// UDP to a claimed address is silently dropped, as on a real host
	// with no socket (no ICMP in the model).
	u := st[0].Socket(UDP)
	if _, err := u.SendTo([]byte("x"), Addr{IP: 50, Port: 80}); err != nil {
		t.Fatal(err)
	}
	w.RunUntil(w.Now() + sim.Time(10*sim.Millisecond))
	// Claim is consumed when a real stack attaches.
	if _, err := nw.NewStack(50); err != nil {
		t.Fatal(err)
	}
	c2 := st[0].Socket(TCP)
	c2.Connect(Addr{IP: 50, Port: 80})
	run(t, w, func() bool { return c2.Err() != nil })
	// Refused by the real stack now (no listener), not by the claim.
	if !errors.Is(c2.Err(), ErrConnRefused) {
		t.Fatalf("err = %v", c2.Err())
	}
}

func TestDuplicateSYNAfterEstablishment(t *testing.T) {
	// A SYN retransmission arriving after the child is established must
	// elicit a fresh SYNACK, not silence (lost-SYNACK recovery).
	w, nw, st := testNet(t, 2)
	l := st[1].Socket(TCP)
	l.Bind(80)
	l.Listen(4)
	// Lose every packet from server to client once: the SYNACK dies.
	st[1].Filter().BlockOut(st[0].IPAddr())
	c := st[0].Socket(TCP)
	c.Connect(Addr{st[1].IPAddr(), 80})
	run(t, w, func() bool { return l.AcceptPending() == 1 })
	if c.State() == StateEstablished {
		t.Fatal("client established without SYNACK")
	}
	st[1].Filter().UnblockOut(st[0].IPAddr())
	// The client's SYN retry now reaches the established child, which
	// must re-acknowledge.
	run(t, w, func() bool { return c.State() == StateEstablished })
	_ = nw
}
