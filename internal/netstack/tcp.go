package netstack

import (
	"zapc/internal/sim"
)

// Timing constants of the TCP-like transport.
const (
	rtoInterval   = 200 * sim.Millisecond // retransmission timeout
	synRetryEvery = 500 * sim.Millisecond
	synMaxTries   = 12
	backlogDelay  = 20 * sim.Microsecond // kernel softirq: backlog -> recvQ
)

// Connect initiates a connection. For TCP the handshake completes
// asynchronously: the socket enters StateConnecting and becomes
// established (or errors) via the notify callback / Poll. For UDP it
// simply fixes the default destination.
func (s *Socket) Connect(remote Addr) error {
	switch s.proto {
	case UDP:
		if s.state == StateClosed {
			if err := s.Bind(0); err != nil {
				return err
			}
		}
		s.remote = remote
		s.state = StateEstablished
		return nil
	case TCP:
	default:
		return ErrBadState
	}
	if s.state == StateClosed {
		if err := s.Bind(0); err != nil {
			return err
		}
	}
	if s.state != StateBound {
		return ErrBadState
	}
	k := connKey{TCP, s.local.Port, remote}
	if _, ok := s.stack.conns[k]; ok {
		return ErrAddrInUse
	}
	s.remote = remote
	s.state = StateConnecting
	s.stack.conns[k] = s
	s.sendSYN()
	return nil
}

func (s *Socket) sendSYN() {
	s.stack.net.send(s.stack, &packet{
		kind: pktSYN, proto: TCP, src: s.local, dst: s.remote,
	})
	s.synTries++
	if s.synTries >= synMaxTries {
		s.synTimer = s.stack.net.w.After(synRetryEvery, func() {
			if s.state == StateConnecting {
				s.teardown(ErrConnRefused)
			}
		})
		return
	}
	s.synTimer = s.stack.net.w.After(synRetryEvery, func() {
		if s.state == StateConnecting {
			s.sendSYN()
		}
	})
}

// Send queues stream data for reliable delivery. oob routes the bytes to
// the peer's out-of-band queue (TCP urgent data). It returns the number
// of bytes accepted; zero with ErrWouldBlock when the send buffer is
// full.
func (s *Socket) Send(p []byte, oob bool) (int, error) {
	if s.proto != TCP {
		return s.sendDatagram(p)
	}
	switch s.state {
	case StateEstablished:
	case StateConnecting:
		return 0, ErrWouldBlock
	default:
		return 0, ErrNotConnected
	}
	if s.shutWrite || s.finSent {
		return 0, ErrShutdown
	}
	if s.sockErr != nil {
		return 0, s.sockErr
	}
	space := s.sendSpace()
	if space == 0 {
		return 0, ErrWouldBlock
	}
	n := len(p)
	if n > space {
		n = space
	}
	for off := 0; off < n; off += MSS {
		end := off + MSS
		if end > n {
			end = n
		}
		s.sendQ = append(s.sendQ, Chunk{Data: append([]byte(nil), p[off:end]...), OOB: oob})
	}
	s.pump()
	return n, nil
}

// Shutdown closes the write side (write=true) and/or read side of the
// connection, sending a FIN as TCP's shutdown(2) does.
func (s *Socket) Shutdown(read, write bool) error {
	if s.proto != TCP {
		if read {
			s.shutRead = true
		}
		if write {
			s.shutWrite = true
		}
		return nil
	}
	if s.state != StateEstablished && s.state != StateConnecting {
		return ErrNotConnected
	}
	if read {
		s.shutRead = true
		s.recvQ = nil
		s.backlogQ = nil
	}
	if write {
		s.shutdownWrite()
	}
	s.notify()
	return nil
}

func (s *Socket) shutdownWrite() {
	if s.shutWrite {
		return
	}
	s.shutWrite = true
	s.sendQ = append(s.sendQ, Chunk{FIN: true})
	s.pump()
}

// pump transmits every queued, not-yet-sent chunk. The model transmits
// eagerly (the send buffer bounds total queued data), so the send queue
// holds exactly the unacknowledged window [SndUna, SndNxt) plus any FIN,
// matching the invariant the paper's Figure 4 relies on.
func (s *Socket) pump() {
	for s.nextSend < len(s.sendQ) {
		c := s.sendQ[s.nextSend]
		s.transmitChunk(c, s.pcb.SndNxt)
		s.pcb.SndNxt += c.SeqLen()
		s.nextSend++
	}
	s.armRTO()
}

func (s *Socket) transmitChunk(c Chunk, seq uint64) {
	s.stack.net.send(s.stack, &packet{
		kind: pktData, proto: TCP, src: s.local, dst: s.remote,
		seq: seq, ack: s.pcb.RcvNxt, data: c.Data, oob: c.OOB, fin: c.FIN,
	})
	if c.FIN {
		s.finSent = true
	}
}

func (s *Socket) armRTO() {
	if s.rtoArmed || s.pcb.SndUna == s.pcb.SndNxt {
		return
	}
	s.rtoArmed = true
	s.rtoTimer = s.stack.net.w.After(rtoInterval, s.rtoFire)
}

func (s *Socket) rtoFire() {
	s.rtoArmed = false
	if s.pcb.SndUna == s.pcb.SndNxt || s.state != StateEstablished {
		return
	}
	// Go-back-N: retransmit every sent-but-unacked chunk.
	seq := s.pcb.SndUna
	for i := 0; i < s.nextSend && i < len(s.sendQ); i++ {
		c := s.sendQ[i]
		s.transmitChunk(c, seq)
		seq += c.SeqLen()
	}
	s.armRTO()
}

// handleSYN runs on a listening socket.
func (s *Socket) handleSYN(p *packet) {
	// Duplicate SYN for an already-accepted connection: resend SYNACK.
	if child, ok := s.stack.conns[connKey{TCP, p.dst.Port, p.src}]; ok {
		child.sendSYNACK()
		return
	}
	s.purgeDeadAccepts()
	if len(s.acceptQ) >= s.listenerMax {
		return // silently drop; connector retries
	}
	child := s.stack.Socket(TCP)
	child.local = Addr{s.stack.ip, s.local.Port} // inherits the listening port
	child.remote = p.src
	child.state = StateEstablished
	s.stack.conns[connKey{TCP, child.local.Port, child.remote}] = child
	s.acceptQ = append(s.acceptQ, child)
	child.sendSYNACK()
	s.notify()
}

func (s *Socket) sendSYNACK() {
	s.stack.net.send(s.stack, &packet{
		kind: pktSYNACK, proto: TCP, src: s.local, dst: s.remote,
	})
}

func (s *Socket) sendRST() {
	s.stack.net.send(s.stack, &packet{
		kind: pktRST, proto: TCP, src: s.local, dst: s.remote,
	})
}

func (s *Socket) sendAck() {
	s.stack.net.send(s.stack, &packet{
		kind: pktAck, proto: TCP, src: s.local, dst: s.remote, ack: s.pcb.RcvNxt,
	})
}

// keepaliveDefault is the probe interval when TCP_KEEPALIVE is unset
// (Linux's 7200 s scaled to the simulation's compressed runtimes).
const keepaliveDefault = 30 * sim.Second

// armKeepalive starts the keep-alive probe timer when the option is on.
func (s *Socket) armKeepalive() {
	if s.kaArmed || s.opts[SO_KEEPALIVE] == 0 || s.state != StateEstablished {
		return
	}
	s.kaArmed = true
	s.kaTimer = s.stack.net.w.After(s.kaInterval(), s.kaFire)
}

func (s *Socket) kaInterval() sim.Duration {
	if ms := s.opts[TCP_KEEPALIVE]; ms > 0 {
		return sim.Duration(ms) * sim.Millisecond
	}
	return keepaliveDefault
}

func (s *Socket) kaFire() {
	s.kaArmed = false
	if s.state != StateEstablished || s.opts[SO_KEEPALIVE] == 0 {
		return
	}
	idle := s.stack.net.w.Now() - s.lastRecv
	if idle < sim.Time(s.kaInterval()) {
		s.kaMissed = 0
		s.armKeepalive()
		return
	}
	s.kaMissed++
	if s.kaMissed > 3 {
		// Peer unresponsive: the timer "detects broken connections".
		s.teardown(ErrConnReset)
		return
	}
	s.stack.net.send(s.stack, &packet{
		kind: pktKeepalive, proto: TCP, src: s.local, dst: s.remote,
	})
	s.armKeepalive()
}

// tcpReceive handles a packet demultiplexed to this connection.
func (s *Socket) tcpReceive(p *packet) {
	s.lastRecv = s.stack.net.w.Now()
	s.kaMissed = 0
	switch p.kind {
	case pktSYN:
		// Duplicate SYN: our SYNACK was lost (or the peer re-issued its
		// connect after timing out). Re-acknowledge the handshake.
		if s.state == StateEstablished {
			s.sendSYNACK()
		}
	case pktSYNACK:
		if s.state == StateConnecting {
			s.stack.net.w.Cancel(s.synTimer)
			s.state = StateEstablished
			s.sendAck()
			s.notify()
			s.pump()
		}
	case pktRST:
		if s.state == StateConnecting {
			s.teardown(ErrConnRefused)
		} else {
			s.teardown(ErrConnReset)
		}
	case pktAck:
		s.handleAck(p.ack)
	case pktKeepalive:
		s.sendAck() // liveness answer
	case pktData:
		s.handleData(p)
		s.handleAck(p.ack)
	}
}

func (s *Socket) handleAck(ack uint64) {
	if ack <= s.pcb.SndUna {
		return
	}
	advance := ack - s.pcb.SndUna
	s.pcb.SndUna = ack
	// Trim acknowledged chunks; acks land on chunk boundaries because
	// delivery and cumulative acknowledgment are whole-segment.
	for advance > 0 && len(s.sendQ) > 0 {
		c := s.sendQ[0]
		l := c.SeqLen()
		if l > advance {
			// Partial ack inside a chunk (possible after a restart
			// reloaded coarser chunks): split it.
			s.sendQ[0].Data = c.Data[advance:]
			advance = 0
			break
		}
		advance -= l
		if c.FIN {
			s.finAcked = true
		}
		s.sendQ = s.sendQ[1:]
		s.nextSend--
		if s.nextSend < 0 {
			s.nextSend = 0
		}
	}
	s.stack.net.w.Cancel(s.rtoTimer)
	s.rtoArmed = false
	s.armRTO()
	s.maybeReap()
	s.notify()
}

func (s *Socket) handleData(p *packet) {
	seqLen := uint64(len(p.data))
	if p.fin {
		seqLen = 1
	}
	if seqLen == 0 {
		return
	}
	switch {
	case p.seq == s.pcb.RcvNxt:
		if !s.acceptSegment(p) {
			return // receive buffer full: drop, no ack, sender retries
		}
		// Drain any out-of-order segments now contiguous.
		for {
			next, ok := s.ooseg[s.pcb.RcvNxt]
			if !ok {
				break
			}
			delete(s.ooseg, next.seq)
			if !s.acceptSegment(next) {
				s.ooseg[next.seq] = next
				break
			}
		}
		s.sendAck()
	case p.seq > s.pcb.RcvNxt:
		if _, dup := s.ooseg[p.seq]; !dup {
			s.ooseg[p.seq] = p
		}
		s.sendAck() // duplicate ack signals the gap
	default:
		s.sendAck() // stale retransmission
	}
}

// acceptSegment integrates an in-sequence segment, returning false if the
// receive buffer cannot hold it.
func (s *Socket) acceptSegment(p *packet) bool {
	switch {
	case p.fin:
		s.pcb.RcvNxt++
		s.peerClosed = true
		s.maybeReap()
		s.notify()
	case p.oob:
		if s.opts[SO_OOBINLINE] != 0 {
			// SO_OOBINLINE: urgent data is delivered in the normal
			// stream instead of the out-of-band queue.
			s.pcb.RcvNxt += uint64(len(p.data))
			s.backlogQ = append(s.backlogQ, append([]byte(nil), p.data...))
			s.stack.net.w.After(backlogDelay, s.processBacklog)
			return true
		}
		s.oobQ = append(s.oobQ, p.data...)
		s.pcb.RcvNxt += uint64(len(p.data))
		s.notify()
	default:
		if s.shutRead || s.closed {
			// Data after read shutdown is discarded but still acked.
			s.pcb.RcvNxt += uint64(len(p.data))
			return true
		}
		if int64(len(s.recvQ)+s.BacklogLen()+len(p.data)) > s.opts[SO_RCVBUF] {
			return false
		}
		s.pcb.RcvNxt += uint64(len(p.data))
		s.backlogQ = append(s.backlogQ, append([]byte(nil), p.data...))
		s.stack.net.w.After(backlogDelay, s.processBacklog)
	}
	return true
}

// processBacklog is the deferred kernel step that moves backlog data into
// the receive queue where recvmsg can see it.
func (s *Socket) processBacklog() {
	if len(s.backlogQ) == 0 {
		return
	}
	for _, b := range s.backlogQ {
		s.recvQ = append(s.recvQ, b...)
	}
	s.backlogQ = nil
	s.notify()
}

// stack-side demultiplexing

func (st *Stack) receive(p *packet) {
	switch p.proto {
	case TCP:
		st.receiveTCP(p)
	case UDP:
		st.receiveUDP(p)
	case RAW:
		st.receiveRaw(p)
	}
}

func (st *Stack) receiveTCP(p *packet) {
	if s, ok := st.conns[connKey{TCP, p.dst.Port, p.src}]; ok {
		s.tcpReceive(p)
		return
	}
	if p.kind == pktSYN {
		if l, ok := st.bound[boundKey{TCP, p.dst.Port}]; ok && l.state == StateListening {
			l.handleSYN(p)
			return
		}
	}
	if p.kind != pktRST {
		// No socket: refuse.
		st.net.send(st, &packet{kind: pktRST, proto: TCP, src: p.dst, dst: p.src})
	}
}
