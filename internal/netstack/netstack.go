// Package netstack implements the virtual network substrate of the ZapC
// reproduction: a cluster-wide Network connecting per-pod Stacks, each
// offering BSD-style sockets over three transports — a reliable TCP-like
// byte-stream protocol (sequence numbers, cumulative acknowledgments,
// go-back-N retransmission, out-of-band/urgent data, a kernel backlog
// queue), an unreliable UDP-like datagram protocol, and raw IP.
//
// The stack deliberately reproduces the structures the paper's network
// checkpoint/restart mechanism depends on:
//
//   - socket parameters readable and writable through GetOpt/SetOpt
//     (the getsockopt/setsockopt interface ZapC leverages),
//   - a receive queue, a kernel backlog queue, and an out-of-band queue
//     (the data a naive read-with-MSG_PEEK checkpoint misses — the
//     paper's critique of Cruz),
//   - an alternate receive queue installed by interposing on the socket
//     dispatch vector (recvmsg, poll, release),
//   - a protocol control block exposing exactly the sent/recv/acked
//     sequence numbers ZapC extracts, and
//   - netfilter-style hooks used to freeze a pod's traffic during a
//     coordinated checkpoint.
//
// Everything is event-driven on a sim.World; the package has no
// goroutines and is fully deterministic.
package netstack

import (
	"errors"
	"fmt"

	"zapc/internal/sim"
)

// IP is a virtual network address. Pods keep their virtual IP across
// migrations; the Network routes to wherever the owning Stack currently
// is, which models ZapC's transparent remapping of virtual addresses.
type IP uint32

func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Port is a transport port number.
type Port uint16

// Addr is a transport endpoint.
type Addr struct {
	IP   IP
	Port Port
}

func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.IP == 0 && a.Port == 0 }

// Proto selects a transport protocol.
type Proto int

// Supported protocols.
const (
	TCP Proto = iota + 1
	UDP
	RAW
)

func (p Proto) String() string {
	switch p {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	case RAW:
		return "raw"
	default:
		return fmt.Sprintf("proto(%d)", int(p))
	}
}

// Errors returned by socket operations.
var (
	ErrWouldBlock   = errors.New("netstack: operation would block")
	ErrNotConnected = errors.New("netstack: socket not connected")
	ErrConnRefused  = errors.New("netstack: connection refused")
	ErrConnReset    = errors.New("netstack: connection reset by peer")
	ErrAddrInUse    = errors.New("netstack: address already in use")
	ErrClosed       = errors.New("netstack: socket closed")
	ErrShutdown     = errors.New("netstack: socket shut down")
	ErrNotListening = errors.New("netstack: socket not listening")
	ErrBadState     = errors.New("netstack: invalid socket state")
	ErrMsgSize      = errors.New("netstack: message too long")
	ErrEOF          = errors.New("netstack: end of stream")
	ErrNoRoute      = errors.New("netstack: no route to host")
)

// MSS is the maximum segment size of the TCP-like transport.
const MSS = 1460

// MaxDatagram is the largest UDP payload.
const MaxDatagram = 65507

type pktKind int

const (
	pktSYN pktKind = iota + 1
	pktSYNACK
	pktRST
	pktData      // carries stream bytes and/or OOB/FIN flags
	pktAck       // pure acknowledgment
	pktKeepalive // liveness probe; peer answers with pktAck
	pktUDP
	pktRaw
)

type packet struct {
	kind     pktKind
	proto    Proto
	from     *Stack // sending incarnation; packets from detached stacks die in flight
	src, dst Addr
	seq, ack uint64
	data     []byte
	oob      bool
	fin      bool
	rawProto int // raw IP protocol number
}

func (p *packet) wireSize() int64 {
	return int64(len(p.data)) + 48 // headers
}

// Network is the cluster interconnect: a single switch connecting all
// attached stacks, with uniform latency and bandwidth plus an optional
// packet-loss rate. It routes by virtual IP at delivery time so that
// migrated stacks receive traffic at their new location.
type Network struct {
	w       *sim.World
	stacks  map[IP]*Stack
	claimed map[IP]bool
	loss    float64
	nextEph Port

	// Stats counters for experiments.
	Delivered int64
	Dropped   int64
	BytesSent int64
}

// NewNetwork creates an empty network on the given world.
func NewNetwork(w *sim.World) *Network {
	return &Network{w: w, stacks: make(map[IP]*Stack), claimed: make(map[IP]bool)}
}

// Claim records that a virtual IP has been routed to a live host whose
// pod is still being created (the restart manager updates routing before
// the agents build their pods). TCP packets arriving for a claimed but
// not-yet-attached IP are refused by the host instead of vanishing, so
// reconnecting peers retry immediately rather than waiting out a SYN
// retransmission timeout.
func (n *Network) Claim(ip IP) {
	if _, ok := n.stacks[ip]; !ok {
		n.claimed[ip] = true
	}
}

// Release drops a routing claim that never materialized into a stack
// (an aborted restart). Releasing an unclaimed address is a no-op.
func (n *Network) Release(ip IP) { delete(n.claimed, ip) }

// Claimed reports whether an address is claimed but not yet attached.
func (n *Network) Claimed(ip IP) bool { return n.claimed[ip] }

// World returns the simulation world the network runs on.
func (n *Network) World() *sim.World { return n.w }

// SetLossRate sets the probability in [0,1) that any packet is dropped in
// flight. Loss exercises the retransmission path and the paper's claim
// that in-flight data can be safely ignored by checkpoints.
func (n *Network) SetLossRate(p float64) { n.loss = p }

// NewStack creates and attaches a stack with the given virtual IP.
func (n *Network) NewStack(ip IP) (*Stack, error) {
	if _, ok := n.stacks[ip]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, ip)
	}
	s := &Stack{
		net:     n,
		ip:      ip,
		bound:   make(map[boundKey]*Socket),
		conns:   make(map[connKey]*Socket),
		raws:    make(map[int][]*Socket),
		nextEph: 32768,
	}
	n.stacks[ip] = s
	delete(n.claimed, ip)
	return s, nil
}

// Detach removes a stack from the network (pod destroyed or migrating).
// Packets in flight toward it are dropped on delivery.
func (n *Network) Detach(s *Stack) {
	if n.stacks[s.ip] == s {
		delete(n.stacks, s.ip)
	}
	s.detached = true
}

// Reattach inserts a previously created stack (a restored pod) under its
// virtual IP.
func (n *Network) Reattach(s *Stack) error {
	if cur, ok := n.stacks[s.ip]; ok && cur != s {
		return fmt.Errorf("%w: %s", ErrAddrInUse, s.ip)
	}
	s.detached = false
	n.stacks[s.ip] = s
	return nil
}

// Stack returns the stack currently owning ip, if any.
func (n *Network) Stack(ip IP) (*Stack, bool) {
	s, ok := n.stacks[ip]
	return s, ok
}

// send queues a packet for delivery after the link latency plus
// serialization delay. Loss and netfilter egress hooks are applied here;
// ingress hooks at delivery.
func (n *Network) send(from *Stack, p *packet) {
	if from.filter.blocksEgress(p) {
		n.Dropped++
		return
	}
	n.BytesSent += p.wireSize()
	if n.loss > 0 && n.w.Rand().Float64() < n.loss {
		n.Dropped++
		return
	}
	p.from = from
	c := n.w.Costs
	d := c.NetLatency + c.NetTransferTime(p.wireSize())
	n.w.After(d, func() { n.deliver(p) })
}

func (n *Network) deliver(p *packet) {
	// A packet whose sending stack has since been detached belongs to a
	// dead incarnation (its pod was checkpointed and destroyed); it can
	// never legitimately reach the restored successor.
	if p.from != nil && p.from.detached {
		n.Dropped++
		return
	}
	dst, ok := n.stacks[p.dst.IP]
	if !ok {
		if n.claimed[p.dst.IP] && p.proto == TCP && p.kind != pktRST {
			// The host is up but the pod is still being restored:
			// refuse, as a real machine with no listener would.
			rst := &packet{kind: pktRST, proto: TCP, src: p.dst, dst: p.src}
			c := n.w.Costs
			n.w.After(c.NetLatency+c.NetTransferTime(rst.wireSize()), func() { n.deliver(rst) })
			n.Dropped++
			return
		}
		if PacketTrace != nil {
			PacketTrace("drop-nostack", int(p.kind), p.src, p.dst, len(p.data))
		}
		n.Dropped++
		return
	}
	if dst.filter.blocksIngress(p) {
		if PacketTrace != nil {
			PacketTrace("drop-ingress", int(p.kind), p.src, p.dst, len(p.data))
		}
		n.Dropped++
		return
	}
	if PacketTrace != nil {
		PacketTrace("deliver", int(p.kind), p.src, p.dst, len(p.data))
	}
	n.Delivered++
	dst.receive(p)
}

// PacketTrace, when set by tests, logs every delivery decision.
var PacketTrace func(event string, kind int, src, dst Addr, n int)
