package netstack

import (
	"errors"
	"testing"

	"zapc/internal/sim"
)

func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	w, nw, st := testNet(t, 2)
	cli, srv, _ := connectPairHelper(t, w, st[0], st[1], 5000)
	_ = srv
	cli.SetOpt(TCP_KEEPALIVE, 50) // 50 ms probes
	cli.SetOpt(SO_KEEPALIVE, 1)
	// The peer's whole stack vanishes (node crash).
	nw.Detach(st[1])
	run(t, w, func() bool { return cli.Err() != nil })
	if !errors.Is(cli.Err(), ErrConnReset) {
		t.Fatalf("err = %v", cli.Err())
	}
	// Detection took a handful of probe intervals, not forever.
	if w.Now() > sim.Time(2*sim.Second) {
		t.Fatalf("keepalive detection too slow: %v", w.Now())
	}
}

func TestKeepaliveQuietOnLiveIdleConnection(t *testing.T) {
	w, _, st := testNet(t, 2)
	cli, srv, _ := connectPairHelper(t, w, st[0], st[1], 5000)
	cli.SetOpt(TCP_KEEPALIVE, 50)
	cli.SetOpt(SO_KEEPALIVE, 1)
	// The connection idles for many intervals; the peer answers probes,
	// so it must never be torn down.
	w.RunUntil(w.Now() + sim.Time(3*sim.Second))
	if cli.Err() != nil {
		t.Fatalf("live idle connection reset: %v", cli.Err())
	}
	if cli.State() != StateEstablished || srv.State() != StateEstablished {
		t.Fatal("connection state changed")
	}
}

func TestKeepaliveQuietWithTraffic(t *testing.T) {
	w, _, st := testNet(t, 2)
	cli, srv, _ := connectPairHelper(t, w, st[0], st[1], 5000)
	cli.SetOpt(TCP_KEEPALIVE, 50)
	cli.SetOpt(SO_KEEPALIVE, 1)
	for i := 0; i < 40; i++ {
		srv.Send([]byte("tick"), false)
		w.RunUntil(w.Now() + sim.Time(40*sim.Millisecond))
		cli.Recv(16, false, false)
	}
	if cli.Err() != nil {
		t.Fatalf("active connection reset: %v", cli.Err())
	}
}

func TestKeepaliveDisabledByDefault(t *testing.T) {
	w, nw, st := testNet(t, 2)
	cli, _, _ := connectPairHelper(t, w, st[0], st[1], 5000)
	nw.Detach(st[1])
	w.RunUntil(w.Now() + sim.Time(5*sim.Second))
	// Without keepalive and without traffic, the dead peer goes
	// unnoticed — exactly why applications deploy the timers.
	if cli.Err() != nil {
		t.Fatalf("unexpected teardown: %v", cli.Err())
	}
}

func TestKeepaliveSurvivesRestore(t *testing.T) {
	// A restored socket has its full option set reapplied by the
	// restart agent; SetOpt must re-arm the probe timer so the restored
	// connection keeps its fault-detection behavior.
	w, nw, st := testNet(t, 2)
	cli, _, _ := connectPairHelper(t, w, st[0], st[1], 5000)
	cli.SetOpt(TCP_KEEPALIVE, 50)
	cli.SetOpt(SO_KEEPALIVE, 1)
	snap := cli.OptsSnapshot()

	// Fresh connection standing in for the restored one.
	cli2, _, _ := connectPairHelper(t, w, st[0], st[1], 5001)
	for _, ov := range snap {
		cli2.SetOpt(ov.Opt, ov.Val)
	}
	nw.Detach(st[1])
	run(t, w, func() bool { return cli2.Err() != nil })
	if !errors.Is(cli2.Err(), ErrConnReset) {
		t.Fatalf("restored keepalive inert: %v", cli2.Err())
	}
}
