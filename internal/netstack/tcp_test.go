package netstack

import (
	"bytes"
	"errors"
	"testing"

	"zapc/internal/sim"
)

// testNet builds a world with n stacks at IPs 10.0.0.1..n.
func testNet(t *testing.T, n int) (*sim.World, *Network, []*Stack) {
	t.Helper()
	w := sim.NewWorld(12345)
	nw := NewNetwork(w)
	stacks := make([]*Stack, n)
	for i := range stacks {
		st, err := nw.NewStack(IP(0x0a000001 + i))
		if err != nil {
			t.Fatal(err)
		}
		stacks[i] = st
	}
	return w, nw, stacks
}

// run drives the world until cond holds or the deadline passes.
func run(t *testing.T, w *sim.World, cond func() bool) {
	t.Helper()
	deadline := w.Now() + sim.Time(30*sim.Second)
	for !cond() {
		if w.Now() > deadline {
			t.Fatal("condition not reached before deadline")
		}
		if !w.Step() {
			if !cond() {
				t.Fatal("event queue drained before condition")
			}
			return
		}
	}
}

// connectPair establishes a TCP connection between two stacks and returns
// (client, serverSide).
func connectPair(t *testing.T, w *sim.World, a, b *Stack, port Port) (*Socket, *Socket) {
	t.Helper()
	l := b.Socket(TCP)
	if err := l.Bind(port); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(8); err != nil {
		t.Fatal(err)
	}
	c := a.Socket(TCP)
	if err := c.Connect(Addr{b.IPAddr(), port}); err != nil {
		t.Fatal(err)
	}
	run(t, w, func() bool { return c.State() == StateEstablished && l.AcceptPending() > 0 })
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func TestHandshake(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	if c.RemoteAddr() != (Addr{st[1].IPAddr(), 5000}) {
		t.Fatalf("client remote = %v", c.RemoteAddr())
	}
	if srv.LocalAddr().Port != 5000 {
		t.Fatalf("server side did not inherit listening port: %v", srv.LocalAddr())
	}
	if srv.RemoteAddr() != c.LocalAddr() {
		t.Fatalf("addr mismatch: %v vs %v", srv.RemoteAddr(), c.LocalAddr())
	}
}

func TestConnectRefused(t *testing.T) {
	w, _, st := testNet(t, 2)
	c := st[0].Socket(TCP)
	if err := c.Connect(Addr{st[1].IPAddr(), 9999}); err != nil {
		t.Fatal(err)
	}
	run(t, w, func() bool { return c.Err() != nil })
	if !errors.Is(c.Err(), ErrConnRefused) {
		t.Fatalf("err = %v", c.Err())
	}
}

func TestStreamTransfer(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	msg := bytes.Repeat([]byte("abcdefgh"), 1000) // 8 KB, multiple segments
	n, err := c.Send(msg, false)
	if err != nil || n != len(msg) {
		t.Fatalf("Send = %d, %v", n, err)
	}
	run(t, w, func() bool { return srv.RecvQueueLen() == len(msg) })
	got, err := srv.Recv(len(msg), false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted")
	}
	// Sender's queue drains after acks.
	run(t, w, func() bool { return c.SendQueueSeqLen() == 0 })
	pcb := c.PCBSnapshot()
	if pcb.SndUna != pcb.SndNxt || pcb.SndNxt != uint64(len(msg)) {
		t.Fatalf("pcb = %+v", pcb)
	}
}

func TestBidirectional(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	c.Send([]byte("ping"), false)
	srv.Send([]byte("pong"), false)
	run(t, w, func() bool { return srv.RecvQueueLen() == 4 && c.RecvQueueLen() == 4 })
	a, _ := srv.Recv(16, false, false)
	b, _ := c.Recv(16, false, false)
	if string(a) != "ping" || string(b) != "pong" {
		t.Fatalf("got %q, %q", a, b)
	}
}

func TestBacklogQueueAsynchrony(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	c.Send([]byte("data"), false)
	// Run until the segment has arrived but before the kernel processes
	// the backlog: at that instant the data is invisible to recvmsg.
	run(t, w, func() bool { return srv.BacklogLen() > 0 })
	if srv.RecvQueueLen() != 0 {
		t.Fatal("data skipped backlog queue")
	}
	if _, err := srv.Recv(16, false, false); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("recv during backlog = %v", err)
	}
	// CheckpointReceiveData sees it even in the backlog.
	if got := srv.CheckpointReceiveData(); string(got) != "data" {
		t.Fatalf("checkpoint read = %q", got)
	}
	run(t, w, func() bool { return srv.RecvQueueLen() == 4 })
}

func TestRetransmissionUnderLoss(t *testing.T) {
	w, nw, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	nw.SetLossRate(0.3)
	msg := bytes.Repeat([]byte{0x5a}, 20*MSS)
	sent := 0
	for sent < len(msg) {
		n, err := c.Send(msg[sent:], false)
		if err != nil && !errors.Is(err, ErrWouldBlock) {
			t.Fatal(err)
		}
		sent += n
		w.RunUntil(w.Now() + sim.Time(50*sim.Millisecond))
	}
	run(t, w, func() bool { return srv.RecvQueueLen() == len(msg) })
	got, _ := srv.Recv(len(msg), false, false)
	if !bytes.Equal(got, msg) {
		t.Fatal("stream corrupted under loss")
	}
}

func TestOutOfBandData(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	c.Send([]byte("normal"), false)
	c.Send([]byte("!"), true)
	run(t, w, func() bool { return srv.OOBLen() == 1 && srv.RecvQueueLen() == 6 })
	if srv.Poll()&PollPRI == 0 {
		t.Fatal("PollPRI not set with pending OOB")
	}
	oob, err := srv.Recv(1, false, true)
	if err != nil || string(oob) != "!" {
		t.Fatalf("oob = %q, %v", oob, err)
	}
	norm, _ := srv.Recv(16, false, false)
	if string(norm) != "normal" {
		t.Fatalf("normal = %q", norm)
	}
}

func TestFINAndEOF(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	c.Send([]byte("bye"), false)
	c.Shutdown(false, true)
	run(t, w, func() bool { return srv.PeerClosed() && srv.RecvQueueLen() == 3 })
	// Remaining data still readable, then EOF.
	got, _ := srv.Recv(16, false, false)
	if string(got) != "bye" {
		t.Fatalf("got %q", got)
	}
	if _, err := srv.Recv(16, false, false); !errors.Is(err, ErrEOF) {
		t.Fatalf("want EOF, got %v", err)
	}
	if srv.Poll()&PollHUP == 0 {
		t.Fatal("PollHUP not set")
	}
	// Writing after local shutdown fails.
	if _, err := c.Send([]byte("x"), false); !errors.Is(err, ErrShutdown) {
		t.Fatalf("send after shutdown = %v", err)
	}
}

func TestCloseWithUnreadDataResets(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	c.Send([]byte("pending"), false)
	run(t, w, func() bool { return srv.RecvQueueLen() == 7 })
	srv.Close()
	run(t, w, func() bool { return c.Err() != nil })
	if !errors.Is(c.Err(), ErrConnReset) {
		t.Fatalf("err = %v", c.Err())
	}
}

func TestGracefulCloseBothSides(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	c.Close()
	run(t, w, func() bool { return srv.PeerClosed() })
	srv.Close()
	run(t, w, func() bool { return c.State() == StateClosed && srv.State() == StateClosed })
	if len(st[0].Sockets()) != 0 {
		t.Fatalf("client stack leaks sockets: %d", len(st[0].Sockets()))
	}
}

func TestSendBufferBackpressure(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	// Block the network so nothing is acked; the send buffer must fill.
	st[0].Filter().BlockAll()
	big := make([]byte, 1<<20)
	total := 0
	for {
		n, err := c.Send(big, false)
		total += n
		if errors.Is(err, ErrWouldBlock) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if total > 1<<21 {
			t.Fatal("no backpressure")
		}
	}
	if int64(total) > c.GetOpt(SO_SNDBUF) {
		t.Fatalf("accepted %d > sndbuf", total)
	}
	if c.Poll()&PollOut != 0 {
		t.Fatal("PollOut set on full buffer")
	}
	// Unblock; retransmission drains the queue to the peer.
	st[0].Filter().UnblockAll()
	run(t, w, func() bool { return c.SendQueueSeqLen() == 0 })
	if srv.RecvQueueLen()+srv.BacklogLen() != total {
		t.Fatalf("peer got %d, want %d", srv.RecvQueueLen()+srv.BacklogLen(), total)
	}
}

func TestNetfilterBlocksBothDirections(t *testing.T) {
	w, nw, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	st[1].Filter().BlockAll()
	before := nw.Delivered
	c.Send([]byte("x"), false)
	srv.Send([]byte("y"), false)
	w.RunUntil(w.Now() + sim.Time(100*sim.Millisecond))
	if srv.RecvQueueLen() != 0 || srv.BacklogLen() != 0 {
		t.Fatal("ingress not blocked")
	}
	if c.RecvQueueLen() != 0 {
		t.Fatal("egress not blocked")
	}
	if nw.Delivered != before {
		t.Fatalf("packets delivered through filter: %d", nw.Delivered-before)
	}
	// Unblock: retransmission recovers both directions, as the paper
	// relies on for in-flight data.
	st[1].Filter().UnblockAll()
	run(t, w, func() bool { return srv.RecvQueueLen() == 1 && c.RecvQueueLen() == 1 })
}

func TestPeekDoesNotConsume(t *testing.T) {
	w, _, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	c.Send([]byte("peekable"), false)
	run(t, w, func() bool { return srv.RecvQueueLen() == 8 })
	p1, err := srv.Recv(4, true, false)
	if err != nil || string(p1) != "peek" {
		t.Fatalf("peek = %q, %v", p1, err)
	}
	if !srv.Peeked() {
		t.Fatal("peeked flag not set")
	}
	got, _ := srv.Recv(8, false, false)
	if string(got) != "peekable" {
		t.Fatalf("read after peek = %q", got)
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	_, _, st := testNet(t, 1)
	seen := map[Port]bool{}
	for i := 0; i < 100; i++ {
		s := st[0].Socket(TCP)
		if err := s.Bind(0); err != nil {
			t.Fatal(err)
		}
		p := s.LocalAddr().Port
		if seen[p] {
			t.Fatalf("duplicate ephemeral port %d", p)
		}
		seen[p] = true
	}
}

func TestBindConflict(t *testing.T) {
	_, _, st := testNet(t, 1)
	a := st[0].Socket(TCP)
	if err := a.Bind(80); err != nil {
		t.Fatal(err)
	}
	b := st[0].Socket(TCP)
	if err := b.Bind(80); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestAcceptBacklogLimit(t *testing.T) {
	w, _, st := testNet(t, 2)
	l := st[1].Socket(TCP)
	l.Bind(5000)
	l.Listen(2)
	var clients []*Socket
	for i := 0; i < 5; i++ {
		c := st[0].Socket(TCP)
		if err := c.Connect(Addr{st[1].IPAddr(), 5000}); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	w.RunUntil(w.Now() + sim.Time(200*sim.Millisecond))
	if l.AcceptPending() > 2 {
		t.Fatalf("backlog exceeded: %d", l.AcceptPending())
	}
	// Draining the queue lets retrying clients in eventually.
	run(t, w, func() bool {
		for l.AcceptPending() > 0 {
			l.Accept()
		}
		n := 0
		for _, c := range clients {
			if c.State() == StateEstablished {
				n++
			}
		}
		return n == len(clients)
	})
}

func TestMigrationStalePacketsDropped(t *testing.T) {
	w, nw, st := testNet(t, 2)
	c, _ := connectPair(t, w, st[0], st[1], 5000)
	c.Send([]byte("in flight"), false)
	nw.Detach(st[1]) // pod leaves before delivery
	w.RunUntil(w.Now() + sim.Time(10*sim.Millisecond))
	if err := nw.Reattach(st[1]); err != nil {
		t.Fatal(err)
	}
	// The stream recovers by retransmission after reattach.
	run(t, w, func() bool {
		s := st[1].Sockets()
		for _, x := range s {
			if x.RecvQueueLen() == 9 {
				return true
			}
		}
		return false
	})
}

func TestPCBInvariantRecvGEAcked(t *testing.T) {
	w, nw, st := testNet(t, 2)
	c, srv := connectPair(t, w, st[0], st[1], 5000)
	nw.SetLossRate(0.2)
	for i := 0; i < 50; i++ {
		c.Send(bytes.Repeat([]byte{byte(i)}, 100), false)
		srv.Send(bytes.Repeat([]byte{byte(i)}, 50), false)
		w.RunUntil(w.Now() + sim.Time(5*sim.Millisecond))
		// The paper's invariant: recv_1 >= acked_2 on both pairings.
		if srv.PCBSnapshot().RcvNxt < c.PCBSnapshot().SndUna {
			t.Fatal("invariant violated: srv.recv < c.acked")
		}
		if c.PCBSnapshot().RcvNxt < srv.PCBSnapshot().SndUna {
			t.Fatal("invariant violated: c.recv < srv.acked")
		}
	}
}

func TestSocketOptionsRoundTrip(t *testing.T) {
	_, _, st := testNet(t, 1)
	s := st[0].Socket(TCP)
	s.SetOpt(SO_KEEPALIVE, 1)
	s.SetOpt(TCP_NODELAY, 1)
	s.SetOpt(SO_RCVBUF, 128<<10)
	snap := s.OptsSnapshot()
	m := map[Opt]int64{}
	for _, ov := range snap {
		m[ov.Opt] = ov.Val
	}
	if m[SO_KEEPALIVE] != 1 || m[TCP_NODELAY] != 1 || m[SO_RCVBUF] != 128<<10 {
		t.Fatalf("snapshot = %v", snap)
	}
}
