package netstack

import (
	"fmt"

	"zapc/internal/sim"
)

// State is a socket's lifecycle state.
type State int

// Socket states. Flags (shutdown, peer-closed, pending error) are kept
// separately; the checkpoint layer derives the paper's connection states
// (full-duplex / half-duplex / closed / connecting) from both.
const (
	StateClosed State = iota
	StateBound
	StateListening
	StateConnecting
	StateEstablished
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateBound:
		return "bound"
	case StateListening:
		return "listening"
	case StateConnecting:
		return "connecting"
	case StateEstablished:
		return "established"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Opt identifies a socket or protocol option, mirroring the get/setsockopt
// parameter space the paper saves in its entirety during checkpoint.
type Opt int

// Socket-level and protocol-level options. The set follows the
// comprehensive list in Stevens that the paper cites.
const (
	SO_RCVBUF Opt = iota + 1
	SO_SNDBUF
	SO_KEEPALIVE
	SO_REUSEADDR
	SO_LINGER
	SO_OOBINLINE
	SO_BROADCAST
	SO_DONTROUTE
	SO_PRIORITY
	SO_RCVLOWAT
	SO_SNDLOWAT
	SO_RCVTIMEO
	SO_SNDTIMEO
	SO_NONBLOCK
	TCP_NODELAY
	TCP_KEEPALIVE
	TCP_STDURG
	TCP_MAXSEG
	optMax // sentinel for iteration
)

// AllOpts lists every defined option in stable order (the checkpoint saves
// the entire set, per the paper).
func AllOpts() []Opt {
	out := make([]Opt, 0, int(optMax)-1)
	for o := Opt(1); o < optMax; o++ {
		out = append(out, o)
	}
	return out
}

func defaultOpts(proto Proto) map[Opt]int64 {
	m := map[Opt]int64{
		SO_RCVBUF:  256 << 10,
		SO_SNDBUF:  256 << 10,
		TCP_MAXSEG: MSS,
	}
	return m
}

// PCB is the protocol control block of a reliable connection. It exposes
// exactly the three sequence numbers the paper identifies as the minimal
// protocol-specific state: last data sent, last data received, and last
// data acknowledged by the peer.
type PCB struct {
	SndNxt uint64 // "sent": next sequence unit to transmit
	SndUna uint64 // "acked": oldest unacknowledged sequence unit
	RcvNxt uint64 // "recv": next sequence unit expected from the peer
}

// Chunk is one run of send-queue data. FIN chunks occupy one sequence unit
// and carry no bytes; OOB chunks deliver into the peer's out-of-band queue.
type Chunk struct {
	Data []byte
	OOB  bool
	FIN  bool
}

// SeqLen is the number of sequence units the chunk occupies.
func (c Chunk) SeqLen() uint64 {
	if c.FIN {
		return 1
	}
	return uint64(len(c.Data))
}

// Datagram is one queued UDP or raw-IP message.
type Datagram struct {
	From     Addr
	Data     []byte
	RawProto int
}

// PollMask is the readiness bitmask returned by the poll socket operation.
type PollMask int

// Poll readiness bits.
const (
	PollIn  PollMask = 1 << iota // data (or a pending accept / EOF) to read
	PollOut                      // space to write
	PollErr                      // pending socket error
	PollHUP                      // peer closed
	PollPRI                      // out-of-band data pending
)

// Ops is the socket dispatch vector: the kernel functions invoked for the
// application-facing interface. The network-restart code interposes on
// exactly the three methods the paper names — recvmsg, poll, and release —
// by swapping this vector, and reinstalls the original once the alternate
// receive queue drains.
type Ops interface {
	Recvmsg(s *Socket, n int, peek, oob bool) ([]byte, error)
	Poll(s *Socket) PollMask
	Release(s *Socket)
}

type boundKey struct {
	proto Proto
	port  Port
}

type connKey struct {
	proto  Proto
	local  Port
	remote Addr
}

// Stack is one pod's network namespace: its virtual IP, port space,
// sockets, and netfilter hook table.
type Stack struct {
	net      *Network
	ip       IP
	filter   Filter
	bound    map[boundKey]*Socket
	conns    map[connKey]*Socket
	raws     map[int][]*Socket
	sockets  []*Socket // creation order; live (not yet released) sockets
	nextEph  Port
	sockSeq  uint64
	detached bool
}

// IPAddr returns the stack's virtual IP.
func (st *Stack) IPAddr() IP { return st.ip }

// Filter returns the stack's netfilter hook table.
func (st *Stack) Filter() *Filter { return &st.filter }

// Network returns the owning network.
func (st *Stack) Network() *Network { return st.net }

// Sockets returns the stack's live sockets in creation order.
func (st *Stack) Sockets() []*Socket {
	out := make([]*Socket, len(st.sockets))
	copy(out, st.sockets)
	return out
}

// Socket creates a new unbound socket of the given protocol.
func (st *Stack) Socket(proto Proto) *Socket {
	s := &Socket{
		stack:     st,
		proto:     proto,
		opts:      defaultOpts(proto),
		ops:       baseOps{},
		createSeq: st.sockSeq,
		ooseg:     make(map[uint64]*packet),
	}
	st.sockSeq++
	st.sockets = append(st.sockets, s)
	return s
}

func (st *Stack) removeSocket(s *Socket) {
	for i, cur := range st.sockets {
		if cur == s {
			st.sockets = append(st.sockets[:i], st.sockets[i+1:]...)
			break
		}
	}
}

func (st *Stack) allocEphemeral(proto Proto) Port {
	for i := 0; i < 65536; i++ {
		p := st.nextEph
		st.nextEph++
		if st.nextEph == 0 {
			st.nextEph = 32768
		}
		if _, ok := st.bound[boundKey{proto, p}]; !ok {
			return p
		}
	}
	panic("netstack: ephemeral port space exhausted")
}

// Socket is a virtual BSD-style socket. All methods must be called from
// within the simulation loop.
type Socket struct {
	stack     *Stack
	proto     Proto
	state     State
	local     Addr
	remote    Addr
	opts      map[Opt]int64
	createSeq uint64

	// Stream receive path. Arriving in-sequence bytes land in the kernel
	// backlog queue and are moved to the receive queue by a deferred
	// kernel event — the asynchrony that makes a naive MSG_PEEK-based
	// checkpoint incomplete.
	recvQ    []byte
	backlogQ [][]byte
	oobQ     []byte
	altQ     []byte // alternate receive queue installed at restart
	ooseg    map[uint64]*packet
	peeked   bool

	// Datagram receive path (UDP/RAW).
	dgrams     []Datagram
	dgramBytes int
	rawProto   int

	// Stream send path. sendQ holds every chunk not yet acknowledged
	// (transmitted-but-unacked plus queued-unsent); acks trim it from
	// the front, so it always covers [SndUna, ...).
	sendQ    []Chunk
	sendSeq  uint64 // total seq units ever appended to sendQ
	nextSend int    // index of first not-yet-transmitted chunk

	pcb         PCB
	rtoTimer    sim.EventID
	rtoArmed    bool
	kaTimer     sim.EventID
	kaArmed     bool
	kaMissed    int
	lastRecv    sim.Time
	synTimer    sim.EventID
	synTries    int
	listenerMax int
	acceptQ     []*Socket

	shutWrite  bool
	shutRead   bool
	peerClosed bool
	finSent    bool
	finAcked   bool
	sockErr    error
	closed     bool

	ops     Ops
	onEvent func()
}

// Proto returns the socket's protocol.
func (s *Socket) Proto() Proto { return s.proto }

// State returns the socket's lifecycle state.
func (s *Socket) State() State { return s.state }

// LocalAddr returns the bound local address.
func (s *Socket) LocalAddr() Addr { return s.local }

// RemoteAddr returns the connected peer address.
func (s *Socket) RemoteAddr() Addr { return s.remote }

// CreateSeq returns the socket's creation sequence number within its
// stack, used to reconstruct original creation order at restart.
func (s *Socket) CreateSeq() uint64 { return s.createSeq }

// Err returns the pending socket error (e.g. ECONNRESET), if any.
func (s *Socket) Err() error { return s.sockErr }

// PeerClosed reports whether a FIN has been received.
func (s *Socket) PeerClosed() bool { return s.peerClosed }

// WriteShut reports whether the write side has been shut down locally.
func (s *Socket) WriteShut() bool { return s.shutWrite }

// Closed reports whether the application has released the socket.
func (s *Socket) Closed() bool { return s.closed }

// SetNotify registers the wait-queue callback invoked whenever socket
// readiness may have changed. The virtual OS uses it to wake blocked
// processes.
func (s *Socket) SetNotify(fn func()) { s.onEvent = fn }

func (s *Socket) notify() {
	if s.onEvent != nil {
		s.onEvent()
	}
}

// SwapOps replaces the socket's dispatch vector and returns the previous
// one. This is the interposition primitive the network-restart mechanism
// uses for its alternate receive queue.
func (s *Socket) SwapOps(ops Ops) Ops {
	old := s.ops
	s.ops = ops
	return old
}

// CurrentOps returns the installed dispatch vector.
func (s *Socket) CurrentOps() Ops { return s.ops }

// GetOpt reads a socket/protocol option (getsockopt).
func (s *Socket) GetOpt(o Opt) int64 { return s.opts[o] }

// SetOpt writes a socket/protocol option (setsockopt).
func (s *Socket) SetOpt(o Opt, v int64) {
	s.opts[o] = v
	if o == SO_KEEPALIVE || o == TCP_KEEPALIVE {
		// (Re)arm the keep-alive probe timer with the current interval;
		// a restored socket gets its full option set replayed, which
		// re-enables fault detection on the new connection.
		s.stack.net.w.Cancel(s.kaTimer)
		s.kaArmed = false
		s.armKeepalive()
	}
}

// OptsSnapshot returns the complete socket/protocol option set in
// stable order — the paper saves the entire set "for correctness", not
// just options an application has touched.
func (s *Socket) OptsSnapshot() []OptValue {
	all := AllOpts()
	out := make([]OptValue, 0, len(all))
	for _, o := range all {
		out = append(out, OptValue{o, s.opts[o]})
	}
	return out
}

// OptValue is one saved socket option.
type OptValue struct {
	Opt Opt
	Val int64
}

// Bind assigns the local port (the IP is always the stack's virtual IP).
// Port 0 allocates an ephemeral port.
func (s *Socket) Bind(port Port) error {
	if s.state != StateClosed {
		return ErrBadState
	}
	if port == 0 {
		port = s.stack.allocEphemeral(s.proto)
	} else if _, ok := s.stack.bound[boundKey{s.proto, port}]; ok {
		return ErrAddrInUse
	}
	s.local = Addr{s.stack.ip, port}
	s.stack.bound[boundKey{s.proto, port}] = s
	s.state = StateBound
	return nil
}

// Listen marks a bound TCP socket as accepting connections.
func (s *Socket) Listen(backlog int) error {
	if s.proto != TCP {
		return ErrBadState
	}
	if s.state == StateClosed {
		if err := s.Bind(0); err != nil {
			return err
		}
	}
	if s.state != StateBound {
		return ErrBadState
	}
	if backlog < 1 {
		backlog = 1
	}
	s.listenerMax = backlog
	s.state = StateListening
	return nil
}

// purgeDeadAccepts drops children that were torn down (e.g. by an RST)
// while waiting in the accept queue.
func (s *Socket) purgeDeadAccepts() {
	live := s.acceptQ[:0]
	for _, c := range s.acceptQ {
		if c.state != StateClosed {
			live = append(live, c)
		}
	}
	s.acceptQ = live
}

// Accept dequeues an established connection from a listening socket,
// returning ErrWouldBlock when none is pending.
func (s *Socket) Accept() (*Socket, error) {
	if s.state != StateListening {
		return nil, ErrNotListening
	}
	s.purgeDeadAccepts()
	if len(s.acceptQ) == 0 {
		return nil, ErrWouldBlock
	}
	c := s.acceptQ[0]
	s.acceptQ = s.acceptQ[1:]
	return c, nil
}

// AcceptPending reports the number of queued, not-yet-accepted
// connections.
func (s *Socket) AcceptPending() int {
	s.purgeDeadAccepts()
	return len(s.acceptQ)
}

// Recv reads up to n bytes through the socket's dispatch vector. peek
// examines without consuming (MSG_PEEK); oob reads the out-of-band queue
// (MSG_OOB).
func (s *Socket) Recv(n int, peek, oob bool) ([]byte, error) {
	return s.ops.Recvmsg(s, n, peek, oob)
}

// Poll reports readiness through the dispatch vector.
func (s *Socket) Poll() PollMask { return s.ops.Poll(s) }

// Close releases the socket through the dispatch vector.
func (s *Socket) Close() {
	s.ops.Release(s)
}

// RecvFrom dequeues one datagram (UDP/RAW sockets).
func (s *Socket) RecvFrom(peek bool) (Datagram, error) {
	if s.proto == TCP {
		return Datagram{}, ErrBadState
	}
	if len(s.dgrams) == 0 {
		if s.closed {
			return Datagram{}, ErrClosed
		}
		return Datagram{}, ErrWouldBlock
	}
	d := s.dgrams[0]
	if peek {
		s.peeked = true
		return d, nil
	}
	s.dgrams = s.dgrams[1:]
	s.dgramBytes -= len(d.Data)
	if len(s.dgrams) == 0 {
		s.peeked = false
	}
	return d, nil
}

// baseOps is the default kernel dispatch vector.
type baseOps struct{}

func (baseOps) Recvmsg(s *Socket, n int, peek, oob bool) ([]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if oob {
		if len(s.oobQ) == 0 {
			return nil, ErrWouldBlock
		}
		if n > len(s.oobQ) {
			n = len(s.oobQ)
		}
		out := append([]byte(nil), s.oobQ[:n]...)
		if !peek {
			s.oobQ = s.oobQ[n:]
		} else {
			s.peeked = true
		}
		return out, nil
	}
	if s.proto != TCP {
		d, err := s.RecvFrom(peek)
		if err != nil {
			return nil, err
		}
		if n < len(d.Data) && !peek {
			// Datagram semantics: excess is discarded.
			return append([]byte(nil), d.Data[:n]...), nil
		}
		if n > len(d.Data) {
			n = len(d.Data)
		}
		return append([]byte(nil), d.Data[:n]...), nil
	}
	if s.shutRead {
		return nil, ErrEOF
	}
	if len(s.recvQ) == 0 {
		if s.sockErr != nil {
			return nil, s.sockErr
		}
		if s.peerClosed && len(s.backlogQ) == 0 {
			return nil, ErrEOF
		}
		if s.state != StateEstablished {
			return nil, ErrNotConnected
		}
		return nil, ErrWouldBlock
	}
	if n > len(s.recvQ) {
		n = len(s.recvQ)
	}
	out := append([]byte(nil), s.recvQ[:n]...)
	if peek {
		s.peeked = true
		return out, nil
	}
	s.recvQ = s.recvQ[n:]
	if len(s.recvQ) == 0 {
		s.peeked = false
	}
	return out, nil
}

func (baseOps) Poll(s *Socket) PollMask {
	var m PollMask
	if s.sockErr != nil {
		m |= PollErr
	}
	switch {
	case s.state == StateListening:
		if len(s.acceptQ) > 0 {
			m |= PollIn
		}
	case s.proto == TCP:
		if len(s.recvQ) > 0 || (s.peerClosed && len(s.backlogQ) == 0) {
			m |= PollIn
		}
		if s.state == StateEstablished && !s.shutWrite && s.sendSpace() > 0 {
			m |= PollOut
		}
	default:
		if len(s.dgrams) > 0 {
			m |= PollIn
		}
		m |= PollOut
	}
	if len(s.oobQ) > 0 {
		m |= PollPRI
	}
	if s.peerClosed {
		m |= PollHUP
	}
	return m
}

func (baseOps) Release(s *Socket) {
	if s.closed {
		return
	}
	s.closed = true
	s.shutRead = true
	switch {
	case s.state == StateListening:
		for _, c := range s.acceptQ {
			c.reset(ErrConnReset)
		}
		s.acceptQ = nil
		s.deregister()
	case s.proto == TCP && s.state == StateEstablished:
		if len(s.recvQ) > 0 || len(s.backlogQ) > 0 {
			// Unread data at close: abort the connection, as TCP does.
			s.sendRST()
			s.teardown(nil)
			return
		}
		s.recvQ = nil // data arriving from here on is discarded
		s.shutdownWrite()
		s.maybeReap()
	case s.proto == TCP && s.state == StateConnecting:
		s.stack.net.w.Cancel(s.synTimer)
		s.teardown(nil)
	default:
		s.deregister()
	}
}

// debugTeardown, when set by tests, traces connection teardowns.
var debugTeardown func(*Socket, error)

// deregister removes the socket from all stack tables.
func (s *Socket) deregister() {
	st := s.stack
	if s.local.Port != 0 {
		if st.bound[boundKey{s.proto, s.local.Port}] == s {
			delete(st.bound, boundKey{s.proto, s.local.Port})
		}
	}
	if !s.remote.IsZero() {
		k := connKey{s.proto, s.local.Port, s.remote}
		if st.conns[k] == s {
			delete(st.conns, k)
		}
	}
	s.removeRaw()
	st.removeSocket(s)
	s.state = StateClosed
}

// maybeReap deregisters a closed TCP socket once its FIN has been
// acknowledged and the peer has closed too (no TIME_WAIT in the model).
func (s *Socket) maybeReap() {
	if s.closed && s.finSent && s.finAcked && s.peerClosed {
		s.teardown(nil)
	}
}

func (s *Socket) teardown(err error) {
	if debugTeardown != nil {
		debugTeardown(s, err)
	}
	if err != nil && s.sockErr == nil {
		s.sockErr = err
	}
	s.stack.net.w.Cancel(s.rtoTimer)
	s.rtoArmed = false
	s.stack.net.w.Cancel(s.synTimer)
	s.stack.net.w.Cancel(s.kaTimer)
	s.kaArmed = false
	s.deregister()
	s.notify()
}

func (s *Socket) reset(err error) {
	s.teardown(err)
}

// sendSpace reports how many more sequence units the send queue accepts.
func (s *Socket) sendSpace() int {
	queued := uint64(0)
	for _, c := range s.sendQ {
		queued += c.SeqLen()
	}
	sp := s.opts[SO_SNDBUF] - int64(queued)
	if sp < 0 {
		return 0
	}
	return int(sp)
}

// RecvQueueLen reports bytes in the (processed) receive queue.
func (s *Socket) RecvQueueLen() int { return len(s.recvQ) }

// BacklogLen reports bytes sitting in the kernel backlog queue.
func (s *Socket) BacklogLen() int {
	n := 0
	for _, b := range s.backlogQ {
		n += len(b)
	}
	return n
}

// OOBLen reports bytes in the out-of-band queue.
func (s *Socket) OOBLen() int { return len(s.oobQ) }

// AltQueueLen reports bytes remaining in the alternate receive queue.
func (s *Socket) AltQueueLen() int { return len(s.altQ) }

// SendQueueSeqLen reports the sequence-unit length of the send queue.
func (s *Socket) SendQueueSeqLen() uint64 {
	n := uint64(0)
	for _, c := range s.sendQ {
		n += c.SeqLen()
	}
	return n
}

// PCBSnapshot returns the protocol control block. Reading it is the
// "trivial per-implementation adjustment" the paper concedes to
// portability.
func (s *Socket) PCBSnapshot() PCB { return s.pcb }

// Peeked reports whether queued data has been examined with MSG_PEEK
// (which obliges even unreliable-protocol checkpoints to preserve it).
func (s *Socket) Peeked() bool { return s.peeked }

// DatagramQueue returns the queued datagrams (checkpoint read).
func (s *Socket) DatagramQueue() []Datagram {
	out := make([]Datagram, len(s.dgrams))
	copy(out, s.dgrams)
	return out
}

// LoadDatagrams replaces the datagram queue (restart).
func (s *Socket) LoadDatagrams(ds []Datagram) {
	s.dgrams = append([]Datagram(nil), ds...)
	s.dgramBytes = 0
	for _, d := range ds {
		s.dgramBytes += len(d.Data)
	}
	if len(ds) > 0 {
		s.notify()
	}
}
