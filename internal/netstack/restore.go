package netstack

// This file contains the kernel-side primitives the network
// checkpoint/restart mechanism (internal/netckpt) builds on: reading the
// receive/send queues without side effects, and loading saved data back
// into a freshly re-established socket.

// CheckpointReceiveData returns every byte the application is still owed,
// in the order it must be consumed: first the alternate receive queue (a
// previous restart's data, which the paper notes a second checkpoint must
// also save), then the processed receive queue, then the kernel backlog
// queue. The read is side-effect free; the socket is unchanged.
func (s *Socket) CheckpointReceiveData() []byte {
	n := len(s.altQ) + len(s.recvQ) + s.BacklogLen()
	out := make([]byte, 0, n)
	out = append(out, s.altQ...)
	out = append(out, s.recvQ...)
	for _, b := range s.backlogQ {
		out = append(out, b...)
	}
	return out
}

// CheckpointOOB returns the pending out-of-band bytes without consuming
// them.
func (s *Socket) CheckpointOOB() []byte {
	return append([]byte(nil), s.oobQ...)
}

// SendQueueSnapshot returns a deep copy of the send queue: every chunk
// not yet acknowledged by the peer, in sequence order starting at
// PCB.SndUna. This is the "standard in-kernel interface to the socket
// layer" read the paper performs, with no side effects.
func (s *Socket) SendQueueSnapshot() []Chunk {
	out := make([]Chunk, len(s.sendQ))
	for i, c := range s.sendQ {
		out[i] = Chunk{Data: append([]byte(nil), c.Data...), OOB: c.OOB, FIN: c.FIN}
	}
	return out
}

// LoadAltQueue appends saved receive-queue bytes to the alternate receive
// queue of a restored socket. The caller (netckpt) interposes on the
// dispatch vector so the application consumes this data before anything
// newly arriving.
func (s *Socket) LoadAltQueue(data []byte) {
	s.altQ = append(s.altQ, data...)
	if len(data) > 0 {
		s.notify()
	}
}

// AltQueue exposes the alternate queue contents (used by the interposed
// recvmsg/poll implementations and by a second checkpoint).
func (s *Socket) AltQueue() []byte { return s.altQ }

// ConsumeAlt reads up to n bytes from the alternate queue, consuming them
// unless peek is set. It returns nil when the queue is empty.
func (s *Socket) ConsumeAlt(n int, peek bool) []byte {
	if len(s.altQ) == 0 {
		return nil
	}
	if n > len(s.altQ) {
		n = len(s.altQ)
	}
	out := append([]byte(nil), s.altQ[:n]...)
	if !peek {
		s.altQ = s.altQ[n:]
	} else {
		s.peeked = true
	}
	return out
}

// LoadOOB restores saved out-of-band data into the socket.
func (s *Socket) LoadOOB(data []byte) {
	s.oobQ = append(s.oobQ, data...)
	if len(data) > 0 {
		s.notify()
	}
}

// AcceptQueue returns the listener's pending, not-yet-accepted children
// (checkpoint enumeration: these connections exist in the kernel but
// have no application descriptor yet).
func (s *Socket) AcceptQueue() []*Socket {
	out := make([]*Socket, len(s.acceptQ))
	copy(out, s.acceptQ)
	return out
}

// ListenBacklogMax returns the backlog limit of a listening socket.
func (s *Socket) ListenBacklogMax() int { return s.listenerMax }

// AcceptMatching dequeues the pending child connected to the given
// remote address, leaving other children queued. The restart agent uses
// it to pair each re-established connection with its saved record
// without depending on SYN arrival order.
func (s *Socket) AcceptMatching(remote Addr) (*Socket, bool) {
	s.purgeDeadAccepts()
	for i, c := range s.acceptQ {
		if c.RemoteAddr() == remote {
			s.acceptQ = append(s.acceptQ[:i], s.acceptQ[i+1:]...)
			return c, true
		}
	}
	return nil, false
}

// PushAccept re-enqueues a child onto the listener's accept queue (a
// restored connection that the application had not yet accepted at
// checkpoint time must reappear in the queue, not at a descriptor).
func (s *Socket) PushAccept(child *Socket) {
	s.acceptQ = append(s.acceptQ, child)
	s.notify()
}

// RestoreShutdownState reinstates half-close flags on a re-established
// connection (the paper adjusts connection status with shutdown after the
// rest of the state is recovered).
func (s *Socket) RestoreShutdownState(peerClosed, writeShut bool) {
	if peerClosed {
		s.peerClosed = true
	}
	if writeShut && !s.shutWrite {
		// Reinstate our half-close by actually sending a FIN on the new
		// connection, so the peer's read side terminates as before.
		s.shutdownWrite()
	}
	s.notify()
}

// RestoreDetached turns a fresh socket into the restored image of a
// fully closed connection whose peer endpoint no longer exists: the
// local application may still hold the descriptor and drain remaining
// data (loaded into the alternate queue by the caller), after which it
// observes EOF. The socket never transmits — both FINs are treated as
// exchanged and acknowledged.
func (s *Socket) RestoreDetached(local, remote Addr) {
	s.local = local
	s.remote = remote
	s.state = StateEstablished
	s.peerClosed = true
	s.shutWrite = true
	s.finSent = true
	s.finAcked = true
}

// SetTeardownTrace installs a test-only hook tracing connection
// teardowns.
func SetTeardownTrace(fn func(*Socket, error)) { debugTeardown = fn }
