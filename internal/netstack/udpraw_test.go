package netstack

import (
	"bytes"
	"errors"
	"testing"

	"zapc/internal/sim"
)

func TestUDPSendRecv(t *testing.T) {
	w, _, st := testNet(t, 2)
	rx := st[1].Socket(UDP)
	if err := rx.Bind(7000); err != nil {
		t.Fatal(err)
	}
	tx := st[0].Socket(UDP)
	if _, err := tx.SendTo([]byte("datagram"), Addr{st[1].IPAddr(), 7000}); err != nil {
		t.Fatal(err)
	}
	run(t, w, func() bool { return len(rx.DatagramQueue()) == 1 })
	d, err := rx.RecvFrom(false)
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Data) != "datagram" || d.From != tx.LocalAddr() {
		t.Fatalf("d = %+v", d)
	}
	if _, err := rx.RecvFrom(false); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty recv = %v", err)
	}
}

func TestUDPConnectedFiltersSource(t *testing.T) {
	w, _, st := testNet(t, 3)
	rx := st[2].Socket(UDP)
	rx.Bind(7000)
	peer := st[0].Socket(UDP)
	peer.Bind(100)
	stranger := st[1].Socket(UDP)
	stranger.Bind(200)
	if err := rx.Connect(Addr{st[0].IPAddr(), 100}); err != nil {
		t.Fatal(err)
	}
	peer.SendTo([]byte("friend"), Addr{st[2].IPAddr(), 7000})
	stranger.SendTo([]byte("stranger"), Addr{st[2].IPAddr(), 7000})
	w.RunUntil(w.Now() + sim.Time(10*sim.Millisecond))
	q := rx.DatagramQueue()
	if len(q) != 1 || string(q[0].Data) != "friend" {
		t.Fatalf("queue = %v", q)
	}
}

func TestUDPLoss(t *testing.T) {
	w, nw, st := testNet(t, 2)
	nw.SetLossRate(0.5)
	rx := st[1].Socket(UDP)
	rx.Bind(7000)
	tx := st[0].Socket(UDP)
	const sent = 200
	for i := 0; i < sent; i++ {
		tx.SendTo([]byte{byte(i)}, Addr{st[1].IPAddr(), 7000})
	}
	w.RunUntil(w.Now() + sim.Time(100*sim.Millisecond))
	got := len(rx.DatagramQueue())
	if got == 0 || got == sent {
		t.Fatalf("loss rate not applied: got %d of %d", got, sent)
	}
}

func TestUDPQueueOverflowDrops(t *testing.T) {
	w, _, st := testNet(t, 2)
	rx := st[1].Socket(UDP)
	rx.Bind(7000)
	rx.SetOpt(SO_RCVBUF, 1000)
	tx := st[0].Socket(UDP)
	for i := 0; i < 10; i++ {
		tx.SendTo(make([]byte, 400), Addr{st[1].IPAddr(), 7000})
	}
	w.RunUntil(w.Now() + sim.Time(50*sim.Millisecond))
	if n := len(rx.DatagramQueue()); n != 2 {
		t.Fatalf("queued %d datagrams, want 2 (rcvbuf limit)", n)
	}
}

func TestUDPPeekSetsFlag(t *testing.T) {
	w, _, st := testNet(t, 2)
	rx := st[1].Socket(UDP)
	rx.Bind(7000)
	tx := st[0].Socket(UDP)
	tx.SendTo([]byte("peeky"), Addr{st[1].IPAddr(), 7000})
	run(t, w, func() bool { return len(rx.DatagramQueue()) == 1 })
	d, err := rx.RecvFrom(true)
	if err != nil || string(d.Data) != "peeky" {
		t.Fatalf("peek = %v, %v", d, err)
	}
	if !rx.Peeked() {
		t.Fatal("peeked flag not set — UDP checkpoint must preserve the queue")
	}
	if len(rx.DatagramQueue()) != 1 {
		t.Fatal("peek consumed the datagram")
	}
	d2, _ := rx.RecvFrom(false)
	if string(d2.Data) != "peeky" {
		t.Fatal("consume after peek lost data")
	}
}

func TestUDPOversizeRejected(t *testing.T) {
	_, _, st := testNet(t, 2)
	tx := st[0].Socket(UDP)
	if _, err := tx.SendTo(make([]byte, MaxDatagram+1), Addr{st[1].IPAddr(), 7000}); !errors.Is(err, ErrMsgSize) {
		t.Fatalf("err = %v", err)
	}
}

func TestRawSockets(t *testing.T) {
	w, _, st := testNet(t, 2)
	rx := st[1].Socket(RAW)
	if err := rx.BindRaw(89); err != nil { // e.g. OSPF
		t.Fatal(err)
	}
	rx2 := st[1].Socket(RAW)
	rx2.BindRaw(89)
	other := st[1].Socket(RAW)
	other.BindRaw(47)

	tx := st[0].Socket(RAW)
	tx.BindRaw(89)
	if _, err := tx.SendRaw(st[1].IPAddr(), []byte("lsa")); err != nil {
		t.Fatal(err)
	}
	run(t, w, func() bool { return len(rx.DatagramQueue()) == 1 && len(rx2.DatagramQueue()) == 1 })
	if len(other.DatagramQueue()) != 0 {
		t.Fatal("raw packet crossed protocol numbers")
	}
	d := rx.DatagramQueue()[0]
	if string(d.Data) != "lsa" || d.RawProto != 89 {
		t.Fatalf("d = %+v", d)
	}
	rx.Close()
	tx.SendRaw(st[1].IPAddr(), []byte("again"))
	run(t, w, func() bool { return len(rx2.DatagramQueue()) == 2 })
	if len(rx.DatagramQueue()) != 1 {
		t.Fatal("closed raw socket still receiving")
	}
}

func TestDatagramLoadRestore(t *testing.T) {
	_, _, st := testNet(t, 1)
	s := st[0].Socket(UDP)
	s.Bind(9)
	saved := []Datagram{
		{From: Addr{1, 2}, Data: []byte("a")},
		{From: Addr{3, 4}, Data: []byte("bb")},
	}
	s.LoadDatagrams(saved)
	q := s.DatagramQueue()
	if len(q) != 2 || !bytes.Equal(q[0].Data, []byte("a")) || !bytes.Equal(q[1].Data, []byte("bb")) {
		t.Fatalf("q = %v", q)
	}
	d, _ := s.RecvFrom(false)
	if string(d.Data) != "a" {
		t.Fatal("restored order wrong")
	}
}
