package netstack

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"zapc/internal/sim"
)

// acceptPeerOf drains the accept queue until it finds the server-side
// socket paired with c, closing children of abandoned connection
// attempts.
func acceptPeerOf(l *Socket, c *Socket) *Socket {
	for l.AcceptPending() > 0 {
		srv, err := l.Accept()
		if err != nil {
			return nil
		}
		if srv.RemoteAddr() == c.LocalAddr() {
			return srv
		}
		srv.Close()
	}
	return nil
}

// Property: for any sequence of writes (arbitrary sizes, arbitrary OOB
// interleaving) and any loss rate up to 40%, the receiver observes the
// normal bytes in order, exactly once, and the OOB bytes in order,
// exactly once.
func TestQuickStreamIntegrity(t *testing.T) {
	f := func(seed int64, writes [][]byte, oobEvery uint8, lossPct uint8) bool {
		w := sim.NewWorld(seed)
		nw := NewNetwork(w)
		a, _ := nw.NewStack(1)
		b, _ := nw.NewStack(2)
		nw.SetLossRate(float64(lossPct%41) / 100)

		l := b.Socket(TCP)
		l.Bind(80)
		l.Listen(4)
		c := a.Socket(TCP)
		c.Connect(Addr{2, 80})
		for c.State() != StateEstablished {
			if c.Err() != nil {
				// Refused under extreme loss: reconnect from scratch.
				c = a.Socket(TCP)
				c.Connect(Addr{2, 80})
			}
			if !w.Step() && c.State() != StateEstablished {
				return false
			}
		}
		srv := acceptPeerOf(l, c)
		if srv == nil {
			return false
		}

		var wantNorm, wantOOB []byte
		interval := int(oobEvery%5) + 2
		for i, buf := range writes {
			if len(buf) > 4*MSS {
				buf = buf[:4*MSS]
			}
			oob := i%interval == 0 && len(buf) > 0 && len(buf) <= 64
			if oob {
				wantOOB = append(wantOOB, buf...)
			} else {
				wantNorm = append(wantNorm, buf...)
			}
			sent := 0
			for sent < len(buf) {
				n, err := c.Send(buf[sent:], oob)
				if err != nil && !errors.Is(err, ErrWouldBlock) {
					return false
				}
				sent += n
				if n == 0 {
					w.RunUntil(w.Now() + sim.Time(300*sim.Millisecond))
				}
			}
		}
		// Drive until everything is delivered (retransmission recovers
		// losses), with a generous deadline.
		deadline := w.Now() + sim.Time(5*60*sim.Second)
		var gotNorm, gotOOB []byte
		for w.Now() < deadline {
			if d, err := srv.Recv(1<<20, false, false); err == nil {
				gotNorm = append(gotNorm, d...)
			}
			if d, err := srv.Recv(1<<20, false, true); err == nil {
				gotOOB = append(gotOOB, d...)
			}
			if len(gotNorm) == len(wantNorm) && len(gotOOB) == len(wantOOB) &&
				c.SendQueueSeqLen() == 0 {
				break
			}
			if !w.Step() {
				break
			}
		}
		return bytes.Equal(gotNorm, wantNorm) && bytes.Equal(gotOOB, wantOOB)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the reliable-protocol invariant recv_1 >= acked_2 holds at
// every event-step under arbitrary traffic and loss.
func TestQuickPCBInvariant(t *testing.T) {
	f := func(seed int64, msgs []uint16, lossPct uint8) bool {
		w := sim.NewWorld(seed)
		nw := NewNetwork(w)
		a, _ := nw.NewStack(1)
		b, _ := nw.NewStack(2)
		nw.SetLossRate(float64(lossPct%31) / 100)

		l := b.Socket(TCP)
		l.Bind(80)
		l.Listen(4)
		c := a.Socket(TCP)
		c.Connect(Addr{2, 80})
		for c.State() != StateEstablished {
			if c.Err() != nil {
				// Refused under extreme loss: reconnect from scratch.
				c = a.Socket(TCP)
				c.Connect(Addr{2, 80})
			}
			if !w.Step() && c.State() != StateEstablished {
				return false
			}
		}
		srv := acceptPeerOf(l, c)
		if srv == nil {
			return false
		}

		check := func() bool {
			return srv.PCBSnapshot().RcvNxt >= c.PCBSnapshot().SndUna &&
				c.PCBSnapshot().RcvNxt >= srv.PCBSnapshot().SndUna
		}
		for _, m := range msgs {
			c.Send(make([]byte, int(m%2000)+1), false)
			srv.Send(make([]byte, int(m%500)+1), false)
			for i := 0; i < 20; i++ {
				if !w.Step() {
					break
				}
				if !check() {
					return false
				}
			}
			// Drain receivers so buffers do not fill.
			srv.Recv(1<<20, false, false)
			c.Recv(1<<20, false, false)
		}
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
