package netstack

// sendDatagram transmits on a connected UDP socket (Send path).
func (s *Socket) sendDatagram(p []byte) (int, error) {
	if s.proto != UDP {
		return 0, ErrBadState
	}
	if s.remote.IsZero() {
		return 0, ErrNotConnected
	}
	return s.SendTo(p, s.remote)
}

// SendTo transmits one datagram to the given address (UDP sockets).
func (s *Socket) SendTo(p []byte, to Addr) (int, error) {
	if s.proto != UDP {
		return 0, ErrBadState
	}
	if s.closed {
		return 0, ErrClosed
	}
	if len(p) > MaxDatagram {
		return 0, ErrMsgSize
	}
	if s.state == StateClosed {
		if err := s.Bind(0); err != nil {
			return 0, err
		}
	}
	s.stack.net.send(s.stack, &packet{
		kind: pktUDP, proto: UDP, src: s.local, dst: to,
		data: append([]byte(nil), p...),
	})
	return len(p), nil
}

func (st *Stack) receiveUDP(p *packet) {
	s, ok := st.bound[boundKey{UDP, p.dst.Port}]
	if !ok || s.closed {
		return // no ICMP in the model; silently dropped
	}
	// Connected UDP sockets filter by source.
	if !s.remote.IsZero() && s.remote != p.src {
		return
	}
	if int64(s.dgramBytes+len(p.data)) > s.opts[SO_RCVBUF] {
		return // queue overflow: datagram lost, as UDP allows
	}
	s.dgrams = append(s.dgrams, Datagram{From: p.src, Data: p.data})
	s.dgramBytes += len(p.data)
	s.notify()
}

// BindRaw attaches a RAW socket to an IP protocol number; all raw packets
// carrying that protocol arriving at the stack are delivered to it.
func (s *Socket) BindRaw(ipProto int) error {
	if s.proto != RAW {
		return ErrBadState
	}
	if s.state != StateClosed {
		return ErrBadState
	}
	s.rawProto = ipProto
	s.local = Addr{IP: s.stack.ip}
	s.state = StateBound
	s.stack.raws[ipProto] = append(s.stack.raws[ipProto], s)
	return nil
}

// RawProto returns the bound raw IP protocol number.
func (s *Socket) RawProto() int { return s.rawProto }

// SendRaw transmits a raw IP packet to the destination host.
func (s *Socket) SendRaw(dst IP, p []byte) (int, error) {
	if s.proto != RAW {
		return 0, ErrBadState
	}
	if s.state != StateBound {
		return 0, ErrBadState
	}
	if s.closed {
		return 0, ErrClosed
	}
	s.stack.net.send(s.stack, &packet{
		kind: pktRaw, proto: RAW, src: s.local, dst: Addr{IP: dst},
		rawProto: s.rawProto, data: append([]byte(nil), p...),
	})
	return len(p), nil
}

func (st *Stack) receiveRaw(p *packet) {
	for _, s := range st.raws[p.rawProto] {
		if s.closed {
			continue
		}
		if int64(s.dgramBytes+len(p.data)) > s.opts[SO_RCVBUF] {
			continue
		}
		s.dgrams = append(s.dgrams, Datagram{
			From: p.src, Data: append([]byte(nil), p.data...), RawProto: p.rawProto,
		})
		s.dgramBytes += len(p.data)
		s.notify()
	}
}

func (s *Socket) removeRaw() {
	if s.proto != RAW {
		return
	}
	list := s.stack.raws[s.rawProto]
	for i, cur := range list {
		if cur == s {
			s.stack.raws[s.rawProto] = append(list[:i], list[i+1:]...)
			break
		}
	}
}
