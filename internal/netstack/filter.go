package netstack

// Filter is the netfilter-style hook table attached to every stack. The
// checkpoint Agent uses it to disable all network activity to and from a
// pod while its state is saved, exactly as ZapC leverages Linux Netfilter
// to block the links listed in the pod's connection table. Rules can
// block everything (pod freeze), individual remote IPs, or a single
// direction (INPUT/OUTPUT chains), the latter used for failure injection
// in tests and experiments.
type Filter struct {
	all     bool
	remotes map[IP]bool
	ingress map[IP]bool
	egress  map[IP]bool
}

// BlockAll installs a drop-everything rule.
func (f *Filter) BlockAll() { f.all = true }

// UnblockAll removes the drop-everything rule (targeted rules persist).
func (f *Filter) UnblockAll() { f.all = false }

// Block drops all traffic exchanged with the given remote IP.
func (f *Filter) Block(remote IP) {
	if f.remotes == nil {
		f.remotes = make(map[IP]bool)
	}
	f.remotes[remote] = true
}

// Unblock removes a targeted rule.
func (f *Filter) Unblock(remote IP) { delete(f.remotes, remote) }

// BlockIn drops only traffic arriving from the given remote IP.
func (f *Filter) BlockIn(remote IP) {
	if f.ingress == nil {
		f.ingress = make(map[IP]bool)
	}
	f.ingress[remote] = true
}

// UnblockIn removes an ingress rule.
func (f *Filter) UnblockIn(remote IP) { delete(f.ingress, remote) }

// BlockOut drops only traffic leaving toward the given remote IP.
func (f *Filter) BlockOut(remote IP) {
	if f.egress == nil {
		f.egress = make(map[IP]bool)
	}
	f.egress[remote] = true
}

// UnblockOut removes an egress rule.
func (f *Filter) UnblockOut(remote IP) { delete(f.egress, remote) }

// Blocked reports whether any rule is active.
func (f *Filter) Blocked() bool {
	return f.all || len(f.remotes) > 0 || len(f.ingress) > 0 || len(f.egress) > 0
}

// RuleCount reports how many rules are installed (1 for the all rule
// plus one per targeted entry), used for cost accounting.
func (f *Filter) RuleCount() int {
	n := len(f.remotes) + len(f.ingress) + len(f.egress)
	if f.all {
		n++
	}
	return n
}

func (f *Filter) blocksEgress(p *packet) bool {
	return f.all || f.remotes[p.dst.IP] || f.egress[p.dst.IP]
}

func (f *Filter) blocksIngress(p *packet) bool {
	return f.all || f.remotes[p.src.IP] || f.ingress[p.src.IP]
}
