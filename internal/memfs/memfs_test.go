package memfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWriteRead(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("ckpt/pod1.img", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("ckpt/pod1.img")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	if _, err := fs.ReadFile("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteCopiesData(t *testing.T) {
	fs := New()
	buf := []byte("abc")
	fs.WriteFile("f", buf)
	buf[0] = 'x'
	got, _ := fs.ReadFile("f")
	if string(got) != "abc" {
		t.Fatalf("stored data aliased caller buffer: %q", got)
	}
}

func TestOverwrite(t *testing.T) {
	fs := New()
	fs.WriteFile("f", []byte("one"))
	fs.WriteFile("f", []byte("two"))
	got, _ := fs.ReadFile("f")
	if string(got) != "two" {
		t.Fatalf("got %q", got)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	fs.WriteFile("f", []byte("x"))
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("f") {
		t.Fatal("file still exists")
	}
	if err := fs.Remove("f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("second remove: %v", err)
	}
}

func TestCleanPaths(t *testing.T) {
	good := map[string]string{
		"a/b/c":   "a/b/c",
		"/a/b/":   "a/b",
		"a//b":    "a/b",
		"./a/./b": "a/b",
	}
	for in, want := range good {
		got, err := Clean(in)
		if err != nil || got != want {
			t.Errorf("Clean(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, in := range []string{"", "/", "..", "a/../b", "."} {
		if _, err := Clean(in); err == nil {
			t.Errorf("Clean(%q) should fail", in)
		}
	}
}

func TestEquivalentPathsAlias(t *testing.T) {
	fs := New()
	fs.WriteFile("/a/b", []byte("x"))
	got, err := fs.ReadFile("a//b")
	if err != nil || string(got) != "x" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestList(t *testing.T) {
	fs := New()
	fs.WriteFile("ckpt/a", []byte("1"))
	fs.WriteFile("ckpt/b", []byte("2"))
	fs.WriteFile("other/c", []byte("3"))
	got := fs.List("ckpt")
	if len(got) != 2 || got[0] != "ckpt/a" || got[1] != "ckpt/b" {
		t.Fatalf("List = %v", got)
	}
	if all := fs.List(""); len(all) != 3 {
		t.Fatalf("List all = %v", all)
	}
}

func TestSizeAndTotal(t *testing.T) {
	fs := New()
	fs.WriteFile("a", make([]byte, 100))
	fs.WriteFile("b", make([]byte, 50))
	if n, _ := fs.Size("a"); n != 100 {
		t.Fatalf("Size = %d", n)
	}
	if fs.TotalBytes() != 150 {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	fs := New()
	fs.WriteFile("f", []byte("before"))
	snap := fs.Snapshot()
	fs.WriteFile("f", []byte("after"))
	fs.WriteFile("g", []byte("new"))
	fs.Remove("f")

	got, err := snap.ReadFile("f")
	if err != nil || string(got) != "before" {
		t.Fatalf("snapshot f = %q, %v", got, err)
	}
	if snap.Exists("g") {
		t.Fatal("snapshot sees post-snapshot file")
	}
}

func TestSnapshotIndependentWrites(t *testing.T) {
	fs := New()
	fs.WriteFile("f", []byte("v0"))
	snap := fs.Snapshot()
	snap.WriteFile("f", []byte("snap-side"))
	got, _ := fs.ReadFile("f")
	if string(got) != "v0" {
		t.Fatalf("origin affected by snapshot write: %q", got)
	}
}

// Property: write/read round-trips arbitrary contents for arbitrary valid
// paths.
func TestQuickRoundTrip(t *testing.T) {
	fs := New()
	f := func(name string, data []byte) bool {
		p, err := Clean("q/" + name)
		if err != nil {
			return true // invalid path; nothing to check
		}
		if err := fs.WriteFile(p, data); err != nil {
			return false
		}
		got, err := fs.ReadFile(p)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Streamed writes: one chunk per Write, atomic commit on Close, and
// metadata reads that never touch the contents.
func TestCreateOpenStat(t *testing.T) {
	fs := New()
	w, err := fs.Create("img/a")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("hello "))
	w.Write([]byte("world"))
	if fs.Exists("img/a") {
		t.Fatal("file visible before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("img/a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 11 || info.Chunks != 2 {
		t.Fatalf("stat: %+v", info)
	}
	if n, err := fs.Size("img/a"); err != nil || n != 11 {
		t.Fatalf("size: %d %v", n, err)
	}
	r, err := fs.Open("img/a")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello world" {
		t.Fatalf("streamed read: %q", buf.String())
	}
	// Multi-chunk whole-file read concatenates correctly too.
	got, err := fs.ReadFile("img/a")
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile: %q %v", got, err)
	}
	// A reader opened before replacement keeps its snapshot.
	r2, _ := fs.Open("img/a")
	fs.WriteFile("img/a", []byte("new"))
	var buf2 bytes.Buffer
	buf2.ReadFrom(r2)
	if buf2.String() != "hello world" {
		t.Fatalf("snapshot read after replace: %q", buf2.String())
	}
	if info, _ := fs.Stat("img/a"); info.Chunks != 1 || info.Size != 3 {
		t.Fatalf("replaced stat: %+v", info)
	}
}
