// Package memfs implements the virtual shared filesystem that stands in
// for the paper's SAN/GFS storage infrastructure. Every node in the
// virtual cluster mounts the same FS, which is what lets ZapC assume
// shared storage and exclude file-system state from checkpoint images.
//
// The FS supports whole-file read/write (checkpoint images are write-once
// blobs), directory listing, and cheap copy-on-write snapshots standing in
// for the file-system snapshot functionality the paper points at (NetApp,
// unionfs) for capturing a consistent file-system image alongside a pod
// checkpoint.
package memfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Common errors.
var (
	ErrNotExist = errors.New("memfs: file does not exist")
	ErrExist    = errors.New("memfs: file already exists")
	ErrBadPath  = errors.New("memfs: invalid path")
)

type file struct {
	data []byte // treated as immutable once stored; writes replace the slice
	ver  uint64
}

// FS is an in-memory filesystem shared by all cluster nodes. It is safe
// for concurrent use (the coordination layer may be exercised from real
// goroutines in tests).
type FS struct {
	mu    sync.RWMutex
	files map[string]*file
	ver   uint64
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string]*file)}
}

// Clean validates and canonicalizes a path: must be non-empty, use '/'
// separators, no "." or ".." components.
func Clean(path string) (string, error) {
	if path == "" {
		return "", ErrBadPath
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			return "", fmt.Errorf("%w: %q", ErrBadPath, path)
		default:
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return "", fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	return strings.Join(out, "/"), nil
}

// WriteFile stores data at path, replacing any existing file. The data
// slice is copied.
func (fs *FS) WriteFile(path string, data []byte) error {
	p, err := Clean(path)
	if err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ver++
	fs.files[p] = &file{data: cp, ver: fs.ver}
	return nil
}

// ReadFile returns the contents stored at path. The returned slice must
// not be modified by the caller.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	p, err := Clean(path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[p]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return f.data, nil
}

// Remove deletes the file at path.
func (fs *FS) Remove(path string) error {
	p, err := Clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	delete(fs.files, p)
	return nil
}

// Exists reports whether a file is stored at path.
func (fs *FS) Exists(path string) bool {
	p, err := Clean(path)
	if err != nil {
		return false
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[p]
	return ok
}

// Size returns the length of the file at path.
func (fs *FS) Size(path string) (int64, error) {
	b, err := fs.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return int64(len(b)), nil
}

// List returns the sorted paths of all files under the given directory
// prefix ("" lists everything).
func (fs *FS) List(prefix string) []string {
	var want string
	if prefix != "" {
		p, err := Clean(prefix)
		if err != nil {
			return nil
		}
		want = p + "/"
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if want == "" || strings.HasPrefix(p, want) || p == strings.TrimSuffix(want, "/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes reports the sum of all file sizes (for storage accounting in
// experiments).
func (fs *FS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, f := range fs.files {
		n += int64(len(f.data))
	}
	return n
}

// Snapshot returns a point-in-time copy of the filesystem. File contents
// are shared copy-on-write: since WriteFile replaces slices rather than
// mutating them, sharing is safe and snapshots are O(files), standing in
// for the SAN-level snapshot the paper takes immediately prior to
// reactivating a pod.
func (fs *FS) Snapshot() *FS {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	clone := &FS{files: make(map[string]*file, len(fs.files)), ver: fs.ver}
	for p, f := range fs.files {
		clone.files[p] = &file{data: f.data, ver: f.ver}
	}
	return clone
}
