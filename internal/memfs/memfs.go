// Package memfs implements the virtual shared filesystem that stands in
// for the paper's SAN/GFS storage infrastructure. Every node in the
// virtual cluster mounts the same FS, which is what lets ZapC assume
// shared storage and exclude file-system state from checkpoint images.
//
// The FS supports whole-file read/write (checkpoint images are write-once
// blobs), streamed create/open for the image pipeline, directory listing,
// and cheap copy-on-write snapshots standing in for the file-system
// snapshot functionality the paper points at (NetApp, unionfs) for
// capturing a consistent file-system image alongside a pod checkpoint.
//
// Files are stored as an ordered chunk list — one chunk per streamed
// Write (or a single chunk for WriteFile) — so a checkpoint image
// streamed through Create never exists as one contiguous buffer inside
// the store, and readers can consume it chunk by chunk.
package memfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Common errors.
var (
	ErrNotExist = errors.New("memfs: file does not exist")
	ErrExist    = errors.New("memfs: file already exists")
	ErrBadPath  = errors.New("memfs: invalid path")
	ErrClosed   = errors.New("memfs: closed")
)

type file struct {
	chunks [][]byte // treated as immutable once stored; writes replace the list
	size   int64
	ver    uint64
}

// FileInfo is the stored metadata of one file.
type FileInfo struct {
	Path string
	Size int64
	// Chunks is the number of separate buffers backing the file: 1 for
	// a whole-file WriteFile, one per Write for a streamed Create. The
	// image pipeline asserts on this to prove an image was never
	// materialized contiguously.
	Chunks int
	// Ver is the filesystem version at which the file was committed.
	Ver uint64
}

// FS is an in-memory filesystem shared by all cluster nodes. It is safe
// for concurrent use (the coordination layer may be exercised from real
// goroutines in tests).
type FS struct {
	mu    sync.RWMutex
	files map[string]*file
	ver   uint64
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string]*file)}
}

// Clean validates and canonicalizes a path: must be non-empty, use '/'
// separators, no "." or ".." components.
func Clean(path string) (string, error) {
	if path == "" {
		return "", ErrBadPath
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			return "", fmt.Errorf("%w: %q", ErrBadPath, path)
		default:
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return "", fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	return strings.Join(out, "/"), nil
}

func (fs *FS) commit(p string, chunks [][]byte, size int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ver++
	fs.files[p] = &file{chunks: chunks, size: size, ver: fs.ver}
}

// WriteFile stores data at path, replacing any existing file. The data
// slice is copied.
func (fs *FS) WriteFile(path string, data []byte) error {
	p, err := Clean(path)
	if err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	fs.commit(p, [][]byte{cp}, int64(len(cp)))
	return nil
}

// ReadFile returns the contents stored at path. The returned slice must
// not be modified by the caller. Multi-chunk files (streamed writes)
// are concatenated into a fresh buffer; single-chunk files are returned
// without copying.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	p, err := Clean(path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	f, ok := fs.files[p]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if len(f.chunks) == 1 {
		return f.chunks[0], nil
	}
	out := make([]byte, 0, f.size)
	for _, c := range f.chunks {
		out = append(out, c...)
	}
	return out, nil
}

// Create returns a streaming writer for path. Every Write becomes its
// own stored chunk; nothing is visible at path until Close commits the
// file atomically (a crashed writer leaves no partial file behind).
func (fs *FS) Create(path string) (io.WriteCloser, error) {
	p, err := Clean(path)
	if err != nil {
		return nil, err
	}
	return &fileWriter{fs: fs, path: p}, nil
}

type fileWriter struct {
	fs     *FS
	path   string
	chunks [][]byte
	size   int64
	closed bool
}

func (w *fileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	if len(p) > 0 {
		w.chunks = append(w.chunks, append([]byte(nil), p...))
		w.size += int64(len(p))
	}
	return len(p), nil
}

func (w *fileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.chunks == nil {
		w.chunks = [][]byte{}
	}
	w.fs.commit(w.path, w.chunks, w.size)
	return nil
}

// Open returns a streaming reader over the file at path. The reader
// holds a point-in-time snapshot of the chunk list, so concurrent
// replacement of the file does not disturb it.
func (fs *FS) Open(path string) (io.ReadCloser, error) {
	p, err := Clean(path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	f, ok := fs.files[p]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return &fileReader{chunks: f.chunks}, nil
}

type fileReader struct {
	chunks [][]byte
	idx    int
	off    int
	closed bool
}

func (r *fileReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, ErrClosed
	}
	for r.idx < len(r.chunks) {
		c := r.chunks[r.idx]
		if r.off < len(c) {
			n := copy(p, c[r.off:])
			r.off += n
			return n, nil
		}
		r.idx++
		r.off = 0
	}
	return 0, io.EOF
}

func (r *fileReader) Close() error {
	r.closed = true
	return nil
}

// Remove deletes the file at path.
func (fs *FS) Remove(path string) error {
	p, err := Clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	delete(fs.files, p)
	return nil
}

// Exists reports whether a file is stored at path.
func (fs *FS) Exists(path string) bool {
	p, err := Clean(path)
	if err != nil {
		return false
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[p]
	return ok
}

// Size returns the length of the file at path from its metadata, without
// touching the contents.
func (fs *FS) Size(path string) (int64, error) {
	info, err := fs.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

// Stat returns the stored metadata of the file at path.
func (fs *FS) Stat(path string) (FileInfo, error) {
	p, err := Clean(path)
	if err != nil {
		return FileInfo{}, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[p]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return FileInfo{Path: p, Size: f.size, Chunks: len(f.chunks), Ver: f.ver}, nil
}

// List returns the sorted paths of all files under the given directory
// prefix ("" lists everything).
func (fs *FS) List(prefix string) []string {
	var want string
	if prefix != "" {
		p, err := Clean(prefix)
		if err != nil {
			return nil
		}
		want = p + "/"
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if want == "" || strings.HasPrefix(p, want) || p == strings.TrimSuffix(want, "/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes reports the sum of all file sizes (for storage accounting in
// experiments).
func (fs *FS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, f := range fs.files {
		n += f.size
	}
	return n
}

// Snapshot returns a point-in-time copy of the filesystem. File contents
// are shared copy-on-write: since writes replace chunk lists rather than
// mutating them, sharing is safe and snapshots are O(files), standing in
// for the SAN-level snapshot the paper takes immediately prior to
// reactivating a pod.
func (fs *FS) Snapshot() *FS {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	clone := &FS{files: make(map[string]*file, len(fs.files)), ver: fs.ver}
	for p, f := range fs.files {
		clone.files[p] = &file{chunks: f.chunks, size: f.size, ver: f.ver}
	}
	return clone
}
