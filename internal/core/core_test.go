package core

import (
	"encoding/binary"
	"errors"
	"testing"

	"zapc/internal/ckpt"
	"zapc/internal/imgfmt"
	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// pinger and ponger bounce an incrementing counter until Rounds is
// reached; both record every value they saw so equivalence can be
// verified bit-exactly across checkpoint/restart.
type pinger struct {
	Phase  int
	FD     int
	To     netstack.Addr
	Rounds uint32
	Val    uint32
	Seen   []uint32
	Done   bool
}

func sendU32(ctx *vos.Context, fd int, v uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	_, err := ctx.Send(fd, b[:], false)
	return err
}

func recvU32(ctx *vos.Context, fd int) (uint32, error) {
	d, err := ctx.Recv(fd, 4, false, false)
	if err != nil {
		return 0, err
	}
	for len(d) < 4 {
		more, err := ctx.Recv(fd, 4-len(d), false, false)
		if err != nil && !errors.Is(err, netstack.ErrWouldBlock) {
			return 0, err
		}
		d = append(d, more...)
	}
	return binary.BigEndian.Uint32(d), nil
}

func (p *pinger) Step(ctx *vos.Context) vos.StepResult {
	switch p.Phase {
	case 0:
		p.FD = ctx.Socket(netstack.TCP)
		if err := ctx.Connect(p.FD, p.To); err != nil {
			return vos.Exit(1)
		}
		p.Phase = 1
		return vos.Yield(0)
	case 1:
		if ctx.SockState(p.FD) == netstack.StateConnecting {
			return vos.BlockConnect(p.FD)
		}
		if ctx.SockErr(p.FD) != nil {
			return vos.Exit(2)
		}
		p.Phase = 2
		return vos.Yield(0)
	case 2: // send current value
		if p.Val >= p.Rounds {
			ctx.Shutdown(p.FD, false, true)
			p.Done = true
			return vos.Exit(0)
		}
		if err := sendU32(ctx, p.FD, p.Val+1); err != nil {
			if errors.Is(err, netstack.ErrWouldBlock) {
				return vos.BlockWrite(p.FD)
			}
			return vos.Exit(3)
		}
		p.Phase = 3
		return vos.Yield(50 * sim.Microsecond)
	default: // await echo+1
		v, err := recvU32(ctx, p.FD)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return vos.BlockRead(p.FD)
		}
		if err != nil {
			return vos.Exit(4)
		}
		p.Val = v
		p.Seen = append(p.Seen, v)
		p.Phase = 2
		return vos.Yield(50 * sim.Microsecond)
	}
}

func (p *pinger) Save(e *imgfmt.Encoder) error {
	e.Uint(1, uint64(p.Phase))
	e.Uint(2, uint64(p.FD))
	e.Uint(3, uint64(p.To.IP))
	e.Uint(4, uint64(p.To.Port))
	e.Uint(5, uint64(p.Rounds))
	e.Uint(6, uint64(p.Val))
	e.Begin(7)
	for _, v := range p.Seen {
		e.Uint(1, uint64(v))
	}
	e.End()
	return nil
}
func (p *pinger) Restore(d *imgfmt.Decoder) error {
	var vals [6]uint64
	for i := range vals {
		v, err := d.Uint(uint64(i + 1))
		if err != nil {
			return err
		}
		vals[i] = v
	}
	p.Phase = int(vals[0])
	p.FD = int(vals[1])
	p.To = netstack.Addr{IP: netstack.IP(vals[2]), Port: netstack.Port(vals[3])}
	p.Rounds = uint32(vals[4])
	p.Val = uint32(vals[5])
	sec, err := d.Section(7)
	if err != nil {
		return err
	}
	for sec.More() {
		v, err := sec.Uint(1)
		if err != nil {
			return err
		}
		p.Seen = append(p.Seen, uint32(v))
	}
	return nil
}
func (p *pinger) Kind() string { return "coretest.pinger" }

type ponger struct {
	Phase int
	LFD   int
	CFD   int
	Port  netstack.Port
	Seen  []uint32
	Done  bool
}

func (p *ponger) Step(ctx *vos.Context) vos.StepResult {
	switch p.Phase {
	case 0:
		p.LFD = ctx.Socket(netstack.TCP)
		if err := ctx.Bind(p.LFD, p.Port); err != nil {
			return vos.Exit(1)
		}
		ctx.Listen(p.LFD, 4)
		p.Phase = 1
		return vos.Yield(0)
	case 1:
		fd, err := ctx.Accept(p.LFD)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return vos.BlockRead(p.LFD)
		}
		if err != nil {
			return vos.Exit(2)
		}
		p.CFD = fd
		p.Phase = 2
		return vos.Yield(0)
	default:
		v, err := recvU32(ctx, p.CFD)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return vos.BlockRead(p.CFD)
		}
		if errors.Is(err, netstack.ErrEOF) {
			p.Done = true
			ctx.Close(p.CFD)
			ctx.Close(p.LFD)
			return vos.Exit(0)
		}
		if err != nil {
			return vos.Exit(3)
		}
		p.Seen = append(p.Seen, v)
		if err := sendU32(ctx, p.CFD, v); err != nil && !errors.Is(err, netstack.ErrWouldBlock) {
			return vos.Exit(4)
		}
		return vos.Yield(50 * sim.Microsecond)
	}
}

func (p *ponger) Save(e *imgfmt.Encoder) error {
	e.Uint(1, uint64(p.Phase))
	e.Uint(2, uint64(p.LFD))
	e.Uint(3, uint64(p.CFD))
	e.Uint(4, uint64(p.Port))
	e.Begin(5)
	for _, v := range p.Seen {
		e.Uint(1, uint64(v))
	}
	e.End()
	return nil
}
func (p *ponger) Restore(d *imgfmt.Decoder) error {
	var vals [4]uint64
	for i := range vals {
		v, err := d.Uint(uint64(i + 1))
		if err != nil {
			return err
		}
		vals[i] = v
	}
	p.Phase = int(vals[0])
	p.LFD = int(vals[1])
	p.CFD = int(vals[2])
	p.Port = netstack.Port(vals[3])
	sec, err := d.Section(5)
	if err != nil {
		return err
	}
	for sec.More() {
		v, err := sec.Uint(1)
		if err != nil {
			return err
		}
		p.Seen = append(p.Seen, uint32(v))
	}
	return nil
}
func (p *ponger) Kind() string { return "coretest.ponger" }

func init() {
	ckpt.Register("coretest.pinger", func() vos.Program { return &pinger{} })
	ckpt.Register("coretest.ponger", func() vos.Program { return &ponger{} })
}

type harness struct {
	w     *sim.World
	nw    *netstack.Network
	fs    *memfs.FS
	nodes []*vos.Node
	mgr   *Manager
}

func mkHarness(t *testing.T, nodes int) *harness {
	t.Helper()
	w := sim.NewWorld(4242)
	h := &harness{w: w, nw: netstack.NewNetwork(w), fs: memfs.New()}
	for i := 0; i < nodes; i++ {
		h.nodes = append(h.nodes, vos.NewNode(w, "node"+string(rune('A'+i)), 2))
	}
	h.mgr = NewManager(w, h.nw, h.fs)
	return h
}

func (h *harness) drive(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := h.w.Now() + sim.Time(300*sim.Second)
	for !cond() {
		if h.w.Now() > deadline {
			t.Fatal("deadline exceeded")
		}
		if !h.w.Step() {
			if cond() {
				return
			}
			t.Fatal("queue drained before condition")
		}
	}
}

// launchPair places a pinger pod and ponger pod on the first two nodes.
func (h *harness) launchPair(t *testing.T, rounds uint32) (*pod.Pod, *pod.Pod, *pinger, *ponger) {
	t.Helper()
	podA, err := pod.New("ping", h.nodes[0], h.nw, h.fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	podB, err := pod.New("pong", h.nodes[1], h.nw, h.fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	pi := &pinger{To: netstack.Addr{IP: 2, Port: 9000}, Rounds: rounds}
	po := &ponger{Port: 9000}
	podA.AddProcess(pi)
	podB.AddProcess(po)
	return podA, podB, pi, po
}

func expectSeen(t *testing.T, seen []uint32, rounds uint32) {
	t.Helper()
	if len(seen) != int(rounds) {
		t.Fatalf("seen %d values, want %d", len(seen), rounds)
	}
	for i, v := range seen {
		if v != uint32(i+1) {
			t.Fatalf("seen[%d] = %d (duplicate or lost message)", i, v)
		}
	}
}

func TestSnapshotCheckpointAndContinue(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, po := h.launchPair(t, 200)
	h.drive(t, func() bool { return pi.Val > 50 })

	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if res.Err != nil {
		t.Fatalf("checkpoint: %v", res.Err)
	}
	if len(res.Images) != 2 || len(res.Stats.Agents) != 2 {
		t.Fatalf("images=%d agents=%d", len(res.Images), len(res.Stats.Agents))
	}
	// Timing structure: sub-second totals; network ckpt a small fraction.
	if res.Stats.Total <= 0 || res.Stats.Total > sim.Second {
		t.Fatalf("total checkpoint time %v", res.Stats.Total)
	}
	for _, a := range res.Stats.Agents {
		if a.NetCkpt >= a.Standalone {
			t.Fatalf("agent %s: net ckpt %v >= standalone %v", a.Pod, a.NetCkpt, a.Standalone)
		}
		if a.NetBytes <= 0 || a.ImageBytes <= a.NetBytes {
			t.Fatalf("agent %s: sizes net=%d img=%d", a.Pod, a.NetBytes, a.ImageBytes)
		}
	}
	// The application must run to completion untouched.
	h.drive(t, func() bool { return pi.Done && po.Done })
	expectSeen(t, pi.Seen, 200)
	expectSeen(t, po.Seen, 200)
}

func TestCheckpointToSharedStorage(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, _ := h.launchPair(t, 100)
	h.drive(t, func() bool { return pi.Val > 10 })
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot, FlushTo: "ckpt/run1"},
		func(r *CheckpointResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, name := range []string{"ping", "pong"} {
		path := "ckpt/run1/" + name + ".img"
		if !h.fs.Exists(path) {
			t.Fatalf("image %s not flushed", path)
		}
		data, _ := h.fs.ReadFile(path)
		if _, err := ckpt.DecodeImage(data); err != nil {
			t.Fatalf("flushed image corrupt: %v", err)
		}
	}
}

func TestMigrateToFreshNodes(t *testing.T) {
	h := mkHarness(t, 4)
	podA, podB, pi, _ := h.launchPair(t, 300)
	h.drive(t, func() bool { return pi.Val > 60 })

	var res *MigrateResult
	h.mgr.Migrate([]*pod.Pod{podA, podB}, []*vos.Node{h.nodes[2], h.nodes[3]}, false, nil,
		func(r *MigrateResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if res.Err != nil {
		t.Fatalf("migrate: %v", res.Err)
	}
	if len(res.Pods) != 2 {
		t.Fatalf("pods = %d", len(res.Pods))
	}
	// Old pods destroyed; new ones on the target nodes.
	if !podA.Destroyed() || !podB.Destroyed() {
		t.Fatal("source pods not destroyed")
	}
	for _, np := range res.Pods {
		if np.Node() != h.nodes[2] && np.Node() != h.nodes[3] {
			t.Fatalf("pod %s restored on %s", np.Name(), np.Node().Name())
		}
	}
	// Track the restored program objects and verify exact completion.
	var npi *pinger
	var npo *ponger
	for _, np := range res.Pods {
		proc, _ := np.Lookup(1)
		switch pg := proc.Prog.(type) {
		case *pinger:
			npi = pg
		case *ponger:
			npo = pg
		}
	}
	h.drive(t, func() bool { return npi.Done && npo.Done })
	expectSeen(t, npi.Seen, 300)
	expectSeen(t, npo.Seen, 300)
	if res.Stats.Restart.Total <= 0 || res.Stats.Transfer <= 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestMigrateNtoM(t *testing.T) {
	// Two pods consolidated onto one node (N=2 -> M=1).
	h := mkHarness(t, 3)
	podA, podB, pi, _ := h.launchPair(t, 150)
	h.drive(t, func() bool { return pi.Val > 20 })
	var res *MigrateResult
	h.mgr.Migrate([]*pod.Pod{podA, podB}, []*vos.Node{h.nodes[2]}, false, nil,
		func(r *MigrateResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, np := range res.Pods {
		if np.Node() != h.nodes[2] {
			t.Fatal("pod not consolidated")
		}
	}
	var npi *pinger
	var npo *ponger
	for _, np := range res.Pods {
		proc, _ := np.Lookup(1)
		switch pg := proc.Prog.(type) {
		case *pinger:
			npi = pg
		case *ponger:
			npo = pg
		}
	}
	h.drive(t, func() bool { return npi.Done && npo.Done })
	expectSeen(t, npi.Seen, 150)
	expectSeen(t, npo.Seen, 150)
}

func TestNaiveSyncIsSlower(t *testing.T) {
	run := func(naive bool) sim.Duration {
		h := mkHarness(t, 2)
		podA, podB, pi, _ := h.launchPair(t, 1<<30)
		// Give both pods real image mass so the standalone save matters.
		h.drive(t, func() bool { return pi.Val > 10 })
		for _, p := range []*pod.Pod{podA, podB} {
			proc, _ := p.Lookup(1)
			proc.SetRegion("heap", make([]byte, 32<<20))
		}
		var res *CheckpointResult
		h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot, NaiveSync: naive},
			func(r *CheckpointResult) { res = r })
		h.drive(t, func() bool { return res != nil })
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Stats.Total
	}
	overlapped := run(false)
	naive := run(true)
	if naive <= overlapped {
		t.Fatalf("naive sync %v not slower than overlapped %v", naive, overlapped)
	}
}

func TestAbortOnNodeFailure(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, _ := h.launchPair(t, 1<<30)
	h.drive(t, func() bool { return pi.Val > 5 })
	// Fail node B the instant the checkpoint begins.
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res = r })
	h.nodes[1].Fail()
	h.drive(t, func() bool { return res != nil })
	if !errors.Is(res.Err, ErrAgentFailure) {
		t.Fatalf("err = %v", res.Err)
	}
	// The surviving pod must have been resumed (graceful abort). The
	// resumed pinger may have already observed the peer's death and
	// exited — which itself proves it was resumed.
	if podA.NetworkBlocked() {
		t.Fatal("survivor's network still blocked after abort")
	}
	if proc, ok := podA.Lookup(1); ok && proc.Stopped() {
		t.Fatal("survivor still stopped after abort")
	}
}

func TestRedirectReducesRestartWireTraffic(t *testing.T) {
	run := func(redirect bool) int64 {
		h := mkHarness(t, 4)
		podA, podB, pi, _ := h.launchPair(t, 1<<30)
		h.drive(t, func() bool { return pi.Val > 5 })
		// Stuff the pinger's send queue: block the pong pod's ingress so
		// acks stop and data accumulates unacked.
		procA, _ := podA.Lookup(1)
		sock, _ := procA.SocketFor(pi.FD)
		podB.BlockNetwork()
		for i := 0; i < 50; i++ {
			sock.Send(make([]byte, 4096), false)
		}
		podB.UnblockNetwork()
		podB.BlockNetwork() // freeze again; data now sits unacked
		podB.UnblockNetwork()

		var res *MigrateResult
		h.mgr.Migrate([]*pod.Pod{podA, podB}, []*vos.Node{h.nodes[2], h.nodes[3]}, redirect, nil,
			func(r *MigrateResult) { res = r })
		wireBefore := h.nw.BytesSent
		h.drive(t, func() bool { return res != nil })
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return h.nw.BytesSent - wireBefore
	}
	plain := run(false)
	redirected := run(true)
	if redirected >= plain {
		t.Fatalf("redirect did not reduce restart wire traffic: %d vs %d", redirected, plain)
	}
}

func TestRestartWithRemap(t *testing.T) {
	h := mkHarness(t, 4)
	podA, podB, pi, _ := h.launchPair(t, 120)
	h.drive(t, func() bool { return pi.Val > 30 })
	var cres *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Migrate}, func(r *CheckpointResult) { cres = r })
	h.drive(t, func() bool { return cres != nil })
	if cres.Err != nil {
		t.Fatal(cres.Err)
	}
	placements := []Placement{
		{Image: cres.imageByName("ping"), PodName: "ping2", Node: h.nodes[2]},
		{Image: cres.imageByName("pong"), PodName: "pong2", Node: h.nodes[3]},
	}
	remap := map[netstack.IP]netstack.IP{1: 51, 2: 52}
	var rres *RestartResult
	h.mgr.Restart(placements, remap, func(r *RestartResult) { rres = r })
	h.drive(t, func() bool { return rres != nil })
	if rres.Err != nil {
		t.Fatal(rres.Err)
	}
	var npi *pinger
	var npo *ponger
	for _, np := range rres.Pods {
		if np.VirtualIP() != 51 && np.VirtualIP() != 52 {
			t.Fatalf("pod %s VIP %v not remapped", np.Name(), np.VirtualIP())
		}
		proc, _ := np.Lookup(1)
		switch pg := proc.Prog.(type) {
		case *pinger:
			npi = pg
		case *ponger:
			npo = pg
		}
	}
	h.drive(t, func() bool { return npi.Done && npo.Done })
	expectSeen(t, npi.Seen, 120)
	expectSeen(t, npo.Seen, 120)
}

func TestRepeatedSnapshots(t *testing.T) {
	// Ten checkpoints evenly spread across a run, as in the paper's
	// methodology; the application must be unaffected by all of them.
	h := mkHarness(t, 2)
	podA, podB, pi, po := h.launchPair(t, 500)
	for i := 0; i < 10; i++ {
		target := uint32((i + 1) * 45)
		h.drive(t, func() bool { return pi.Val >= target || pi.Done })
		if pi.Done {
			break
		}
		var res *CheckpointResult
		h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res = r })
		h.drive(t, func() bool { return res != nil })
		if res.Err != nil {
			t.Fatalf("checkpoint %d: %v", i, res.Err)
		}
	}
	h.drive(t, func() bool { return pi.Done && po.Done })
	expectSeen(t, pi.Seen, 500)
	expectSeen(t, po.Seen, 500)
}
