package core

import (
	"errors"
	"testing"

	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
)

// checkpointMigrate takes a Migrate-mode checkpoint of the pair so the
// tests below have images to restart from.
func checkpointMigrate(t *testing.T, h *harness, podA, podB *pod.Pod) *CheckpointResult {
	t.Helper()
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Migrate}, func(r *CheckpointResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if res.Err != nil {
		t.Fatalf("checkpoint: %v", res.Err)
	}
	return res
}

// TestRestartFailureCleanup is the regression test for restartOp.fail:
// a restart aborted by a target-node crash must release every claimed
// virtual address and destroy every pod it already built, leaving the
// network and the surviving nodes reusable for a retry from the same
// images.
func TestRestartFailureCleanup(t *testing.T) {
	h := mkHarness(t, 4)
	podA, podB, pi, _ := h.launchPair(t, 120)
	h.drive(t, func() bool { return pi.Val > 30 })
	cres := checkpointMigrate(t, h, podA, podB)

	placements := []Placement{
		{Image: cres.imageByName("ping"), PodName: "ping", Node: h.nodes[2]},
		{Image: cres.imageByName("pong"), PodName: "pong", Node: h.nodes[3]},
	}
	var rres *RestartResult
	h.mgr.Restart(placements, nil, func(r *RestartResult) { rres = r })
	// The target of the second placement dies before its agent runs.
	h.nodes[3].Fail()
	h.drive(t, func() bool { return rres != nil })

	if !errors.Is(rres.Err, ErrAborted) || !errors.Is(rres.Err, ErrAgentFailure) {
		t.Fatalf("err = %v, want ErrAborted wrapping ErrAgentFailure", rres.Err)
	}
	if len(rres.Pods) != 0 {
		t.Fatalf("failed restart returned %d pods", len(rres.Pods))
	}
	// Claims released: both virtual addresses must be free again.
	for _, ip := range []netstack.IP{1, 2} {
		if h.nw.Claimed(ip) {
			t.Fatalf("VIP %v still claimed after aborted restart", ip)
		}
		if _, ok := h.nw.Stack(ip); ok {
			t.Fatalf("VIP %v still attached after aborted restart", ip)
		}
	}

	// A retry from the same images onto the surviving node must succeed
	// and run the application to completion.
	retry := []Placement{
		{Image: cres.imageByName("ping"), PodName: "ping", Node: h.nodes[2]},
		{Image: cres.imageByName("pong"), PodName: "pong", Node: h.nodes[2]},
	}
	var rres2 *RestartResult
	h.mgr.Restart(retry, nil, func(r *RestartResult) { rres2 = r })
	h.drive(t, func() bool { return rres2 != nil })
	if rres2.Err != nil {
		t.Fatalf("retry restart: %v", rres2.Err)
	}
	var npi *pinger
	var npo *ponger
	for _, np := range rres2.Pods {
		proc, _ := np.Lookup(1)
		switch pg := proc.Prog.(type) {
		case *pinger:
			npi = pg
		case *ponger:
			npo = pg
		}
	}
	h.drive(t, func() bool { return npi.Done && npo.Done })
	expectSeen(t, npi.Seen, 120)
	expectSeen(t, npo.Seen, 120)
}

// TestRestartFailureMidRestore crashes a target node while its restore
// is in flight (after pod creation); the operation must abort and clean
// up rather than hang or leak the partially built pods.
func TestRestartFailureMidRestore(t *testing.T) {
	h := mkHarness(t, 4)
	podA, podB, pi, _ := h.launchPair(t, 120)
	h.drive(t, func() bool { return pi.Val > 30 })
	cres := checkpointMigrate(t, h, podA, podB)

	placements := []Placement{
		{Image: cres.imageByName("ping"), PodName: "ping", Node: h.nodes[2]},
		{Image: cres.imageByName("pong"), PodName: "pong", Node: h.nodes[3]},
	}
	var rres *RestartResult
	h.mgr.Restart(placements, nil, func(r *RestartResult) { rres = r })
	// Standalone restart alone takes >=RestartFixed (180ms); landing the
	// crash at 100ms hits the window between pod creation and completion.
	h.w.After(100*sim.Millisecond, func() { h.nodes[3].Fail() })
	h.drive(t, func() bool { return rres != nil })

	if !errors.Is(rres.Err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", rres.Err)
	}
	for _, ip := range []netstack.IP{1, 2} {
		if h.nw.Claimed(ip) {
			t.Fatalf("VIP %v still claimed after aborted restart", ip)
		}
		if _, ok := h.nw.Stack(ip); ok {
			t.Fatalf("VIP %v still attached after aborted restart", ip)
		}
	}
}

// TestCheckpointWatchdogTimeout drops the manager's initial 'checkpoint'
// broadcast so no agent ever starts; the Options.Timeout watchdog must
// abort the operation instead of hanging until the caller's deadline,
// and the application must be unaffected.
func TestCheckpointWatchdogTimeout(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, po := h.launchPair(t, 200)
	h.drive(t, func() bool { return pi.Val > 20 })

	drops := 2 // the M1 broadcast: one message per agent
	h.mgr.SetCtrlHook(func() (bool, sim.Duration) {
		if drops > 0 {
			drops--
			return true, 0
		}
		return false, 0
	})
	began := h.w.Now()
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot, Timeout: sim.Second},
		func(r *CheckpointResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", res.Err)
	}
	if waited := sim.Duration(h.w.Now() - began); waited < sim.Second || waited > 2*sim.Second {
		t.Fatalf("watchdog fired after %v, want ~1s", waited)
	}

	// With the fault gone, a fresh checkpoint succeeds and the
	// application still completes exactly.
	h.mgr.SetCtrlHook(nil)
	var res2 *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res2 = r })
	h.drive(t, func() bool { return res2 != nil })
	if res2.Err != nil {
		t.Fatalf("retry checkpoint: %v", res2.Err)
	}
	h.drive(t, func() bool { return pi.Done && po.Done })
	expectSeen(t, pi.Seen, 200)
	expectSeen(t, po.Seen, 200)
}

// TestManagerFailureBetweenSyncAndDone injects a manager crash exactly
// at the meta-data synchronization point — after every agent reported
// meta-data, before any done-report is collected. Agents must abort
// gracefully (pods resumed, application completes), and a replacement
// manager must be able to checkpoint the same pods afterwards.
func TestManagerFailureBetweenSyncAndDone(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, po := h.launchPair(t, 200)
	h.drive(t, func() bool { return pi.Val > 20 })

	h.mgr.SetPhaseHook(func(p Phase) {
		if p == PhaseMetaSync {
			h.mgr.Fail()
		}
	})
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if !errors.Is(res.Err, ErrManagerFailure) {
		t.Fatalf("err = %v, want ErrManagerFailure", res.Err)
	}
	for _, p := range []*pod.Pod{podA, podB} {
		if p.NetworkBlocked() {
			t.Fatalf("pod %s network still blocked after manager crash", p.Name())
		}
	}

	// Replacement manager client: recovery is a fresh client against the
	// same substrate, and the next checkpoint succeeds.
	h.mgr.SetPhaseHook(nil)
	h.mgr.Recover()
	var res2 *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res2 = r })
	h.drive(t, func() bool { return res2 != nil })
	if res2.Err != nil {
		t.Fatalf("post-recovery checkpoint: %v", res2.Err)
	}
	h.drive(t, func() bool { return pi.Done && po.Done })
	expectSeen(t, pi.Seen, 200)
	expectSeen(t, po.Seen, 200)
}

// TestNodeFailureDuringRestartResumable: after an aborted restart the
// images remain valid — a manager crash during restart must also clean
// up via the watchdog rather than wedge the claimed addresses.
func TestRestartWatchdogOnLostControl(t *testing.T) {
	h := mkHarness(t, 4)
	podA, podB, pi, _ := h.launchPair(t, 120)
	h.drive(t, func() bool { return pi.Val > 30 })
	cres := checkpointMigrate(t, h, podA, podB)

	// Drop the R1 dispatches: no agent ever runs, the restart watchdog
	// must fire and release the claims.
	drops := 2
	h.mgr.SetCtrlHook(func() (bool, sim.Duration) {
		if drops > 0 {
			drops--
			return true, 0
		}
		return false, 0
	})
	placements := []Placement{
		{Image: cres.imageByName("ping"), PodName: "ping", Node: h.nodes[2]},
		{Image: cres.imageByName("pong"), PodName: "pong", Node: h.nodes[3]},
	}
	var rres *RestartResult
	h.mgr.Restart(placements, nil, func(r *RestartResult) { rres = r })
	h.drive(t, func() bool { return rres != nil })
	if !errors.Is(rres.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", rres.Err)
	}
	for _, ip := range []netstack.IP{1, 2} {
		if h.nw.Claimed(ip) {
			t.Fatalf("VIP %v still claimed after watchdog abort", ip)
		}
	}
}
